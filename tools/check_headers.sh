#!/usr/bin/env bash
# Public-header hygiene: every header under src/ must compile standalone
# (catches missing includes that only surface for external consumers of the
# public API). Run from anywhere; CXX overrides the compiler.
set -u
cd "$(dirname "$0")/.."

CXX="${CXX:-c++}"
fail=0
checked=0
for h in $(find src -name '*.h' | sort); do
  if ! "$CXX" -std=c++20 -fsyntax-only -Wall -Wextra -Werror -Isrc -x c++ "$h"; then
    echo "NOT SELF-CONTAINED: $h" >&2
    fail=1
  fi
  checked=$((checked + 1))
done
echo "header hygiene: $checked headers checked$([ $fail -eq 0 ] && echo ', all self-contained')"
exit $fail
