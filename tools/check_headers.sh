#!/usr/bin/env bash
# Public-header hygiene: every header under src/ must compile standalone
# (catches missing includes that only surface for external consumers of the
# public API). Run from anywhere; CXX overrides the compiler.
#
# Second pass (clang only): each header is additionally compiled with
# -Wthread-safety, so a GUARDED_BY/REQUIRES annotation that is malformed or
# references an undeclared capability fails header hygiene even before the
# full build-tsa preset runs. Skipped gracefully on gcc-only machines.
set -u
cd "$(dirname "$0")/.."

CXX="${CXX:-c++}"
fail=0
checked=0
for h in $(find src -name '*.h' | sort); do
  if ! "$CXX" -std=c++20 -fsyntax-only -Wall -Wextra -Werror -Isrc -x c++ "$h"; then
    echo "NOT SELF-CONTAINED: $h" >&2
    fail=1
  fi
  checked=$((checked + 1))
done
echo "header hygiene: $checked headers checked$([ $fail -eq 0 ] && echo ', all self-contained')"

# Thread-safety pass. Prefer an explicit clang++ if the configured CXX is not
# clang; skip (successfully) when no clang is available at all.
TSA_CXX=""
if "$CXX" --version 2>/dev/null | grep -qi clang; then
  TSA_CXX="$CXX"
elif command -v clang++ >/dev/null 2>&1; then
  TSA_CXX="clang++"
fi
if [ -z "$TSA_CXX" ]; then
  echo "header hygiene: no clang found, skipping -Wthread-safety pass"
  exit $fail
fi
tsa_checked=0
for h in $(find src -name '*.h' | sort); do
  if ! "$TSA_CXX" -std=c++20 -fsyntax-only -Wthread-safety -Wthread-safety-beta \
      -Werror=thread-safety-analysis -Werror=thread-safety-attributes \
      -Isrc -x c++ "$h"; then
    echo "THREAD-SAFETY ANNOTATIONS BROKEN: $h" >&2
    fail=1
  fi
  tsa_checked=$((tsa_checked + 1))
done
echo "header hygiene: $tsa_checked headers passed -Wthread-safety"
exit $fail
