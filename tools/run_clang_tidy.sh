#!/usr/bin/env bash
# Runs clang-tidy (config in .clang-tidy, warnings promoted to errors) over
# every translation unit in src/, using a compile_commands.json produced by a
# clang configure. Creates the build directory if needed. Usage:
#
#   tools/run_clang_tidy.sh [build-dir]     # default: build-tidy
#
# Requires clang-tidy and clang; exits 2 (distinct from "findings") when the
# toolchain is missing so CI can tell environment failures from regressions.
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tidy}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY not found" >&2
  exit 2
fi
if ! command -v clang++ >/dev/null 2>&1; then
  echo "run_clang_tidy: clang++ not found (needed for compile_commands)" >&2
  exit 2
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2
fi

# Library + harness sources; tests and benches follow the same config but
# are tidied only when TIDY_ALL=1 (they dominate wall time).
mapfile -t sources < <(find src -name '*.cc' | sort)
if [ "${TIDY_ALL:-0}" = "1" ]; then
  mapfile -t -O "${#sources[@]}" sources < <(find tests bench -name '*.cc' 2>/dev/null | sort)
fi

fail=0
for f in "${sources[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet "$f"; then
    fail=1
  fi
done
if [ $fail -eq 0 ]; then
  echo "clang-tidy: ${#sources[@]} files clean"
else
  echo "clang-tidy: findings above must be fixed (warnings are errors)" >&2
fi
exit $fail
