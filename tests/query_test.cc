// Unit tests for src/query: predicate evaluation/canonicalization, planner
// schemas and signatures, result comparison.

#include <gtest/gtest.h>

#include "query/plan.h"
#include "query/predicate.h"
#include "query/result.h"
#include "ssb/ssb_queries.h"
#include "ssb/ssb_schema.h"
#include "test_util.h"

namespace sdw::query {
namespace {

using storage::Schema;

Schema PredSchema() {
  return Schema({Schema::Int32("x"), Schema::Int64("y"),
                 Schema::Char("s", 6), Schema::Double("d")});
}

std::vector<std::byte> MakeTuple(const Schema& schema, int32_t x, int64_t y,
                                 std::string_view s, double d) {
  std::vector<std::byte> t(schema.tuple_size());
  schema.SetInt32(t.data(), 0, x);
  schema.SetInt64(t.data(), 1, y);
  schema.SetChar(t.data(), 2, s);
  schema.SetDouble(t.data(), 3, d);
  return t;
}

TEST(Predicate, TrueAcceptsEverything) {
  const Schema s = PredSchema();
  const auto t = MakeTuple(s, 1, 2, "a", 3.0);
  EXPECT_TRUE(Predicate::True().Eval(s, t.data()));
  EXPECT_TRUE(Predicate::True().IsTrue());
}

TEST(Predicate, IntComparisons) {
  const Schema s = PredSchema();
  const auto t = MakeTuple(s, 10, -5, "a", 0);
  auto eval = [&](CompareOp op, int64_t v) {
    Predicate p;
    p.And(AtomicPred::Int("x", op, v));
    return p.Eval(s, t.data());
  };
  EXPECT_TRUE(eval(CompareOp::kEq, 10));
  EXPECT_FALSE(eval(CompareOp::kEq, 11));
  EXPECT_TRUE(eval(CompareOp::kNe, 11));
  EXPECT_TRUE(eval(CompareOp::kLt, 11));
  EXPECT_TRUE(eval(CompareOp::kLe, 10));
  EXPECT_FALSE(eval(CompareOp::kGt, 10));
  EXPECT_TRUE(eval(CompareOp::kGe, 10));
}

TEST(Predicate, StringComparisonsIgnoreTrailingPadding) {
  const Schema s = PredSchema();
  const auto t = MakeTuple(s, 0, 0, "abc", 0);
  Predicate p;
  p.And(AtomicPred::Str("s", CompareOp::kEq, "abc"));
  EXPECT_TRUE(p.Eval(s, t.data()));
}

TEST(Predicate, ConjunctionAndDisjunction) {
  const Schema s = PredSchema();
  const auto t = MakeTuple(s, 10, 20, "abc", 0);
  Predicate p;
  p.AndAnyOf({AtomicPred::Int("x", CompareOp::kEq, 99),
              AtomicPred::Int("y", CompareOp::kEq, 20)});  // true via y
  p.And(AtomicPred::Str("s", CompareOp::kEq, "abc"));
  EXPECT_TRUE(p.Eval(s, t.data()));
  p.And(AtomicPred::Int("x", CompareOp::kGt, 50));
  EXPECT_FALSE(p.Eval(s, t.data()));
}

TEST(Predicate, DoubleColumnComparesAgainstIntLiteral) {
  const Schema s = PredSchema();
  const auto t = MakeTuple(s, 0, 0, "", 2.5);
  Predicate p;
  p.And(AtomicPred::Int("d", CompareOp::kGt, 2));
  EXPECT_TRUE(p.Eval(s, t.data()));
}

TEST(Predicate, SignatureIsOrderCanonical) {
  Predicate a;
  a.And(AtomicPred::Int("x", CompareOp::kGe, 1));
  a.AndAnyOf({AtomicPred::Str("s", CompareOp::kEq, "u"),
              AtomicPred::Str("s", CompareOp::kEq, "v")});
  Predicate b;  // same predicate, different construction order
  b.AndAnyOf({AtomicPred::Str("s", CompareOp::kEq, "v"),
              AtomicPred::Str("s", CompareOp::kEq, "u")});
  b.And(AtomicPred::Int("x", CompareOp::kGe, 1));
  EXPECT_EQ(a.Signature(), b.Signature());

  Predicate c;
  c.And(AtomicPred::Int("x", CompareOp::kGe, 2));
  EXPECT_NE(a.Signature(), c.Signature());
}

TEST(Predicate, ReferencedColumnsDeduplicated) {
  Predicate p;
  p.And(AtomicPred::Int("x", CompareOp::kGe, 1));
  p.And(AtomicPred::Int("x", CompareOp::kLe, 9));
  p.And(AtomicPred::Int("y", CompareOp::kEq, 0));
  EXPECT_EQ(p.ReferencedColumns(),
            (std::vector<std::string>{"x", "y"}));
}

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : planner_(&sdw::testing::SharedSsbDb()->catalog) {}
  Planner planner_;
};

TEST_F(PlannerTest, Q32PlanShape) {
  const StarQuery q = ssb::MakeQ32({});
  const auto plan = planner_.BuildPlan(q);
  // sort <- agg <- join(date) <- join(cust) <- join(supp) <- scan(fact)
  ASSERT_EQ(plan->kind, PlanNode::Kind::kSort);
  const PlanNode* agg = plan->child(0);
  ASSERT_EQ(agg->kind, PlanNode::Kind::kAggregate);
  const PlanNode* j3 = agg->child(0);
  ASSERT_EQ(j3->kind, PlanNode::Kind::kHashJoin);
  const PlanNode* j2 = j3->child(0);
  ASSERT_EQ(j2->kind, PlanNode::Kind::kHashJoin);
  const PlanNode* j1 = j2->child(0);
  ASSERT_EQ(j1->kind, PlanNode::Kind::kHashJoin);
  EXPECT_EQ(j1->child(0)->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(j1->child(1)->table->name(), ssb::kSupplier);
  EXPECT_EQ(j2->child(1)->table->name(), ssb::kCustomer);
  EXPECT_EQ(j3->child(1)->table->name(), ssb::kDate);

  // Output schema: group columns then the aggregate.
  EXPECT_EQ(plan->out_schema.column(0).name, "c_city");
  EXPECT_EQ(plan->out_schema.column(1).name, "s_city");
  EXPECT_EQ(plan->out_schema.column(2).name, "d_year");
  EXPECT_EQ(plan->out_schema.column(3).name, "revenue");
  EXPECT_EQ(plan->out_schema.column(3).type, storage::ColumnType::kInt64);
}

TEST_F(PlannerTest, JoinOutputSchemaMatchesJoinPlan) {
  for (const StarQuery& q :
       {ssb::MakeQ32({}), ssb::MakeQ11({}), ssb::MakeQ21({})}) {
    const auto join_plan = planner_.BuildJoinPlan(q);
    EXPECT_EQ(join_plan->out_schema.ToString(),
              planner_.JoinOutputSchema(q).ToString());
  }
}

TEST_F(PlannerTest, IdenticalQueriesShareSignatures) {
  const StarQuery a = ssb::MakeQ32({});
  const StarQuery b = ssb::MakeQ32({});
  EXPECT_EQ(planner_.BuildPlan(a)->signature, planner_.BuildPlan(b)->signature);
  ssb::Q32Params p;
  p.cust_nation = 3;
  const StarQuery c = ssb::MakeQ32(p);
  EXPECT_NE(planner_.BuildPlan(a)->signature, planner_.BuildPlan(c)->signature);
}

TEST_F(PlannerTest, CommonSubPlanSignaturesMatchAcrossDifferentQueries) {
  // Same supplier nation, different customer nation: the first join's
  // signature must match (what QPipe-SP shares), the second must not.
  ssb::Q32Params pa, pb;
  pa.cust_nation = 1;
  pb.cust_nation = 2;
  const auto plan_a = planner_.BuildPlan(ssb::MakeQ32(pa));
  const auto plan_b = planner_.BuildPlan(ssb::MakeQ32(pb));
  const PlanNode* j1a = plan_a->child(0)->child(0)->child(0)->child(0);
  const PlanNode* j1b = plan_b->child(0)->child(0)->child(0)->child(0);
  EXPECT_EQ(j1a->signature, j1b->signature);
  const PlanNode* j2a = plan_a->child(0)->child(0)->child(0);
  const PlanNode* j2b = plan_b->child(0)->child(0)->child(0);
  EXPECT_NE(j2a->signature, j2b->signature);
}

TEST_F(PlannerTest, FactProjectionCoversNeeds) {
  const StarQuery q = ssb::MakeQ11({});
  const auto cols = planner_.FactProjection(q);
  const auto& fact =
      sdw::testing::SharedSsbDb()->catalog.MustGetTable(ssb::kLineorder)->schema();
  std::vector<std::string> names;
  for (size_t c : cols) names.push_back(fact.column(c).name);
  // FK + fact predicate columns + aggregate inputs, in schema order.
  EXPECT_EQ(names, (std::vector<std::string>{"lo_orderdate", "lo_quantity",
                                             "lo_extendedprice",
                                             "lo_discount"}));
}

TEST(ResultSet, DiffDetectsMismatches) {
  Schema s({Schema::Int64("a"), Schema::Double("b")});
  ResultSet x(s), y(s), z(s);
  std::vector<std::byte> row(s.tuple_size());
  s.SetInt64(row.data(), 0, 1);
  s.SetDouble(row.data(), 1, 1.0);
  x.AddRow(row.data());
  y.AddRow(row.data());
  EXPECT_EQ(DiffResults(x, y), "");
  // Tolerant double comparison.
  s.SetDouble(row.data(), 1, 1.0 + 1e-12);
  z.AddRow(row.data());
  EXPECT_EQ(DiffResults(x, z, 1e-9), "");
  // Row count mismatch.
  y.AddRow(row.data());
  EXPECT_NE(DiffResults(x, y), "");
  // Value mismatch.
  ResultSet w(s);
  s.SetInt64(row.data(), 0, 2);
  w.AddRow(row.data());
  EXPECT_NE(DiffResults(x, w), "");
}

TEST(ResultSet, CanonicalRowsSorted) {
  Schema s({Schema::Int32("a")});
  ResultSet r(s);
  for (int32_t v : {3, 1, 2}) {
    std::vector<std::byte> row(s.tuple_size());
    s.SetInt32(row.data(), 0, v);
    r.AddRow(row.data());
  }
  EXPECT_EQ(r.CanonicalRows(), (std::vector<std::string>{"1", "2", "3"}));
}

TEST(StarQuerySig, SignatureCoversAllParts) {
  StarQuery a = ssb::MakeQ32({});
  StarQuery b = a;
  EXPECT_EQ(a.Signature(), b.Signature());
  b.group_by.pop_back();
  EXPECT_NE(a.Signature(), b.Signature());
  StarQuery c = a;
  c.order_by[0].ascending = false;
  EXPECT_NE(a.Signature(), c.Signature());
}

// Regression for the AggSignature header/impl contradiction: the aggregation
// SHAPE depends on the join-output schema, which dimension predicates do not
// touch (their verdicts ride the filter bitmaps). Two queries differing only
// in dimension predicate COLUMNS must share one AggSignature — that is what
// lets shared aggregation (and query folding, which keys on the same
// signature) group shifted-constant dashboard queries. Fact-predicate
// columns DO widen the canonical fact projection, so they must split it.
TEST(StarQuerySig, AggSignatureIgnoresDimPredicates) {
  StarQuery a = ssb::MakeQ32({});
  StarQuery b = a;
  // Different dim predicate CONSTANTS: same shape.
  b.dims[0].pred = Predicate();
  b.dims[0].pred.And(AtomicPred::Str("s_nation", CompareOp::kEq, "PERU"));
  EXPECT_EQ(a.AggSignature(), b.AggSignature());
  // Different dim predicate COLUMNS: still the same shape.
  StarQuery c = a;
  c.dims[0].pred = Predicate();
  c.dims[0].pred.And(AtomicPred::Str("s_region", CompareOp::kEq, "ASIA"));
  EXPECT_EQ(a.AggSignature(), c.AggSignature());
  // But the full plan signature must split all three.
  EXPECT_NE(a.Signature(), b.Signature());
  EXPECT_NE(a.Signature(), c.Signature());

  // Fact predicate columns widen the join-output schema: distinct shapes.
  StarQuery d = a;
  d.fact_pred.And(AtomicPred::Int("lo_quantity", CompareOp::kLt, 25));
  EXPECT_NE(a.AggSignature(), d.AggSignature());
  // Fact predicate CONSTANTS do not.
  StarQuery e = d;
  e.fact_pred = Predicate();
  e.fact_pred.And(AtomicPred::Int("lo_quantity", CompareOp::kGe, 40));
  EXPECT_EQ(d.AggSignature(), e.AggSignature());
}

// Signatures are grouping keys, so adversarial identifiers that embed the
// delimiter grammar must not collide ({"a,b"} vs {"a","b"} and friends).
// Before EscapeSigToken these pairs were byte-identical.
TEST(StarQuerySig, AdversarialNamesDoNotCollide) {
  auto base = [] {
    StarQuery q;
    q.fact_table = "f";
    DimJoin d;
    d.dim_table = "dim";
    d.fact_fk_column = "fk";
    d.dim_pk_column = "pk";
    q.dims.push_back(std::move(d));
    AggSpec a;
    a.kind = AggSpec::Kind::kCount;
    a.out_name = "n";
    q.aggregates.push_back(std::move(a));
    return q;
  };

  // One payload column named "a,b" vs two named "a" and "b".
  StarQuery one = base();
  one.dims[0].payload_columns = {"a,b"};
  StarQuery two = base();
  two.dims[0].payload_columns = {"a", "b"};
  EXPECT_NE(one.Signature(), two.Signature());
  EXPECT_NE(one.AggSignature(), two.AggSignature());

  // Group-by list with an embedded comma.
  StarQuery g1 = base();
  g1.group_by = {"x,y"};
  StarQuery g2 = base();
  g2.group_by = {"x", "y"};
  EXPECT_NE(g1.AggSignature(), g2.AggSignature());

  // A table name that embeds the section delimiter and the next section's
  // prefix must not impersonate it.
  StarQuery t1 = base();
  t1.fact_table = "f;group=x";
  StarQuery t2 = base();
  t2.fact_table = "f";
  t2.group_by = {"x"};
  EXPECT_NE(t1.AggSignature(), t2.AggSignature());

  // Escaping is deterministic: equal queries still collide (that's the
  // point of a signature).
  EXPECT_EQ(one.Signature(), StarQuery(one).Signature());
}

}  // namespace
}  // namespace sdw::query
