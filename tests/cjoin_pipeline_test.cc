// End-to-end CJOIN pipeline test over a small SSB instance: results must
// match the query-centric Volcano comparator, and a warmed pipeline must be
// allocation-free in steady state (batch recycling pool hit rate ~1).

#include <cstdio>

#include "core/engine.h"
#include "harness/driver.h"
#include "ssb/ssb_generator.h"
#include "ssb/workload.h"
#include "storage/buffer_pool.h"
#include "storage/storage_device.h"

using namespace sdw;

static void RunConfig(core::EngineConfig config, storage::Catalog* catalog,
                      storage::BufferPool* pool,
                      const baseline::VolcanoEngine* volcano) {
  core::EngineOptions opts;
  opts.config = config;
  opts.cjoin.max_queries = 64;  // exercise the one-word bitmap fast path
  core::Engine engine(catalog, pool, opts);

  const auto queries = ssb::RandomQ32Workload(4, /*seed=*/11);

  // First batch: results verified against the unshared comparator; the
  // batch pool warms up here (misses allowed).
  harness::RunMetrics m1 =
      harness::RunBatch(&engine, pool, queries, /*clear_caches=*/true,
                        volcano);
  SDW_CHECK(m1.completed == queries.size());
  SDW_CHECK(m1.cjoin.queries_completed == queries.size());
  SDW_CHECK(m1.cjoin.fact_pages_scanned > 0);

  // Second batch on the warm pipeline: batches must come from the recycling
  // pool. Misses are legitimate up to the max-alive bound — a run that backs
  // the pipeline up deeper than any run before it allocates new high-water
  // batches, and how deep the backlog gets is scheduling-dependent (under
  // sanitizers on a loaded machine, several batches deeper than a quiet
  // run). The structural claim is that recycling dominates: misses stay an
  // order of magnitude below hits, never one allocation per batch.
  harness::RunMetrics m2 =
      harness::RunBatch(&engine, pool, queries, /*clear_caches=*/true,
                        volcano);
  SDW_CHECK(m2.completed == queries.size());
  SDW_CHECK_MSG(m2.cjoin.batch_pool_hits > 0, "pool never hit on warm run");
  SDW_CHECK_MSG(
      m2.cjoin.batch_pool_misses * 10 <= m2.cjoin.batch_pool_hits,
      "warm pipeline allocated %llu batches (%llu recycled)",
      static_cast<unsigned long long>(m2.cjoin.batch_pool_misses),
      static_cast<unsigned long long>(m2.cjoin.batch_pool_hits));
  std::printf("%s: %llu pages, pool hits=%llu misses=%llu\n",
              core::EngineConfigName(config),
              static_cast<unsigned long long>(m2.cjoin.fact_pages_scanned),
              static_cast<unsigned long long>(m2.cjoin.batch_pool_hits),
              static_cast<unsigned long long>(m2.cjoin.batch_pool_misses));
}

int main() {
  storage::Catalog catalog;
  ssb::SsbOptions ssb_opts;
  ssb_opts.scale_factor = 0.01;
  ssb::BuildSsbDatabase(&catalog, ssb_opts);

  storage::DeviceOptions dev_opts;
  storage::StorageDevice device(dev_opts);
  storage::BufferPool pool(&device, 0);
  const baseline::VolcanoEngine volcano(&catalog, &pool);

  RunConfig(core::EngineConfig::kCjoin, &catalog, &pool, &volcano);
  RunConfig(core::EngineConfig::kCjoinSp, &catalog, &pool, &volcano);
  std::printf("cjoin_pipeline_test: OK\n");
  return 0;
}
