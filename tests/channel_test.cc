// Tests for FIFO buffers, exchanges (push tee vs pull SPL) and the circular
// scan service.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>

#include "qpipe/circular_scan.h"
#include "qpipe/exchange.h"
#include "storage/catalog.h"

namespace sdw::qpipe {
namespace {

storage::PagePtr MakePage(int64_t value) {
  auto page = storage::Page::Make(8);
  std::memcpy(page->AppendTuple(), &value, 8);
  return page;
}

int64_t PageValue(const storage::PagePtr& page) {
  int64_t v;
  std::memcpy(&v, page->tuple(0), 8);
  return v;
}

TEST(FifoBuffer, OrderedDelivery) {
  FifoBuffer fifo(0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fifo.Put(MakePage(i)));
  fifo.Close();
  for (int i = 0; i < 5; ++i) {
    auto page = fifo.Next();
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(PageValue(page), i);
  }
  EXPECT_EQ(fifo.Next(), nullptr);
}

TEST(FifoBuffer, BoundedBlocksProducer) {
  FifoBuffer fifo(2 * storage::kPageSize);
  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      fifo.Put(MakePage(i));
      produced.fetch_add(1);
    }
    fifo.Close();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_LE(produced.load(), 2);
  int count = 0;
  while (fifo.Next() != nullptr) ++count;
  EXPECT_EQ(count, 6);
  producer.join();
}

TEST(FifoBuffer, CancelUnblocksProducer) {
  FifoBuffer fifo(storage::kPageSize);
  std::thread producer([&] {
    int i = 0;
    while (fifo.Put(MakePage(i))) ++i;
  });
  fifo.CancelReader();
  producer.join();
}

TEST(Exchange, PullSatelliteSharesWithoutCopies) {
  SplExchange ex(0);
  auto primary = ex.OpenPrimaryReader();
  auto satellite = ex.TryAttachSatellite();
  ASSERT_NE(satellite, nullptr);
  auto page = MakePage(7);
  EXPECT_TRUE(ex.sink()->Put(page));
  ex.sink()->Close();
  // Both consumers observe the *same* page object (no deep copy).
  auto p1 = primary->Next();
  auto p2 = satellite->Next();
  EXPECT_EQ(p1.get(), page.get());
  EXPECT_EQ(p2.get(), page.get());
}

TEST(Exchange, PushSatelliteReceivesDeepCopies) {
  FifoExchange ex(0);
  auto primary = ex.OpenPrimaryReader();
  auto satellite = ex.TryAttachSatellite();
  ASSERT_NE(satellite, nullptr);
  auto page = MakePage(7);
  EXPECT_TRUE(ex.sink()->Put(page));
  ex.sink()->Close();
  auto p1 = primary->Next();
  auto p2 = satellite->Next();
  EXPECT_EQ(p1.get(), page.get());   // primary gets the original
  ASSERT_NE(p2, nullptr);
  EXPECT_NE(p2.get(), page.get());   // satellite gets a copy...
  EXPECT_EQ(PageValue(p2), 7);       // ...with equal contents
}

class ExchangeWop : public ::testing::TestWithParam<core::CommModel> {};

TEST_P(ExchangeWop, SatelliteAttachFailsAfterFirstEmission) {
  auto ex = MakeExchange(GetParam(), 0);
  auto primary = ex->OpenPrimaryReader();
  EXPECT_NE(ex->TryAttachSatellite(), nullptr);  // window open
  ex->sink()->Put(MakePage(0));
  EXPECT_EQ(ex->TryAttachSatellite(), nullptr);  // window closed
  ex->sink()->Close();
}

INSTANTIATE_TEST_SUITE_P(Both, ExchangeWop,
                         ::testing::Values(core::CommModel::kPull,
                                           core::CommModel::kPush));

class CircularScanTest : public ::testing::TestWithParam<core::CommModel> {
 protected:
  CircularScanTest() {
    auto table = std::make_unique<storage::Table>(
        "t", storage::Schema({storage::Schema::Int64("x")}));
    const size_t rows = static_cast<size_t>(table->rows_per_page()) * 7 + 11;
    for (size_t i = 0; i < rows; ++i) {
      table->schema().SetInt64(table->AppendRow(), 0, static_cast<int64_t>(i));
    }
    table_ = catalog_.AddTable(std::move(table));
    device_ = std::make_unique<storage::StorageDevice>(
        storage::DeviceOptions{.memory_resident = true});
    pool_ = std::make_unique<storage::BufferPool>(device_.get(), 0);
  }

  storage::Catalog catalog_;
  storage::Table* table_;
  std::unique_ptr<storage::StorageDevice> device_;
  std::unique_ptr<storage::BufferPool> pool_;
};

TEST_P(CircularScanTest, SingleConsumerSeesEveryPageOnce) {
  CircularScanService service(table_, pool_.get(), GetParam(), 256 * 1024);
  auto src = service.Attach();
  std::set<uint64_t> seen;
  while (auto page = src->Next()) seen.insert(page->seq());
  EXPECT_EQ(seen.size(), table_->num_pages());
}

TEST_P(CircularScanTest, ConcurrentConsumersEachSeeFullCycle) {
  CircularScanService service(table_, pool_.get(), GetParam(), 256 * 1024);
  constexpr int kConsumers = 6;
  std::vector<std::thread> threads;
  std::vector<std::set<uint64_t>> seen(kConsumers);
  std::vector<size_t> counts(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      // Staggered attach: consumers enter mid-cycle (linear WoP).
      std::this_thread::sleep_for(std::chrono::microseconds(100 * c));
      auto src = service.Attach();
      while (auto page = src->Next()) {
        seen[static_cast<size_t>(c)].insert(page->seq());
        ++counts[static_cast<size_t>(c)];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kConsumers; ++c) {
    EXPECT_EQ(counts[static_cast<size_t>(c)], table_->num_pages())
        << "consumer " << c << " page count";
    EXPECT_EQ(seen[static_cast<size_t>(c)].size(), table_->num_pages())
        << "consumer " << c << " distinct pages";
  }
}

TEST_P(CircularScanTest, CancellingConsumerDoesNotBlockOthers) {
  CircularScanService service(table_, pool_.get(), GetParam(), 256 * 1024);
  auto quitter = service.Attach();
  auto keeper = service.Attach();
  quitter->Next();
  quitter->CancelReader();
  size_t n = 0;
  while (keeper->Next() != nullptr) ++n;
  EXPECT_EQ(n, table_->num_pages());
}

TEST_P(CircularScanTest, SharedScanFetchesEachPageOnceForManyConsumers) {
  CircularScanService service(table_, pool_.get(), GetParam(), 256 * 1024);
  pool_->Clear();
  // Attach all four consumers up front (before anything drains) so they
  // share one cycle by construction; attaching inside the threads made the
  // bound depend on thread-startup skew, which sanitizer slowdowns amplify
  // into spurious extra cycles.
  std::vector<std::unique_ptr<core::PageSource>> sources;
  for (int c = 0; c < 4; ++c) sources.push_back(service.Attach());
  std::vector<std::thread> threads;
  for (auto& src : sources) {
    threads.emplace_back([&src] {
      while (src->Next() != nullptr) {
      }
    });
  }
  for (auto& t : threads) t.join();
  // All four consumers attached in quick succession: the service should
  // have fetched each page far fewer than 4x times (close to once per
  // distinct cycle position).
  EXPECT_LT(pool_->misses() + pool_->hits(), 4 * table_->num_pages());
}

INSTANTIATE_TEST_SUITE_P(Both, CircularScanTest,
                         ::testing::Values(core::CommModel::kPull,
                                           core::CommModel::kPush));

}  // namespace
}  // namespace sdw::qpipe
