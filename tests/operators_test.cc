// Unit tests for the query-centric operators (scan / hash join / aggregate /
// sort) via the synchronous VectorChannel, independent of the staged engine.

#include <gtest/gtest.h>

#include <cstring>

#include "baseline/volcano.h"
#include "qpipe/hash_table.h"
#include "qpipe/operators.h"
#include "query/plan.h"
#include "storage/catalog.h"

namespace sdw::qpipe {
namespace {

using baseline::VectorChannel;
using query::PlanNode;
using storage::Schema;

// A tiny two-table database: edges(src, dst, w) and nodes(id, label).
class OperatorTest : public ::testing::Test {
 protected:
  OperatorTest() {
    auto edges = std::make_unique<storage::Table>(
        "edges", Schema({Schema::Int32("src"), Schema::Int32("dst"),
                         Schema::Int64("w")}));
    for (int i = 0; i < 100; ++i) {
      std::byte* r = edges->AppendRow();
      edges->schema().SetInt32(r, 0, i % 10);
      edges->schema().SetInt32(r, 1, i % 7);
      edges->schema().SetInt64(r, 2, i);
    }
    edges_ = catalog_.AddTable(std::move(edges));

    auto nodes = std::make_unique<storage::Table>(
        "nodes", Schema({Schema::Int32("id"), Schema::Char("label", 4)}));
    for (int i = 0; i < 7; ++i) {
      std::byte* r = nodes->AppendRow();
      nodes->schema().SetInt32(r, 0, i);
      nodes->schema().SetChar(r, 1, i % 2 == 0 ? "even" : "odd");
    }
    nodes_ = catalog_.AddTable(std::move(nodes));

    device_ = std::make_unique<storage::StorageDevice>(
        storage::DeviceOptions{.memory_resident = true});
    pool_ = std::make_unique<storage::BufferPool>(device_.get(), 0);
  }

  std::unique_ptr<PlanNode> ScanNode(const storage::Table* table,
                                     query::Predicate pred,
                                     std::vector<size_t> proj) {
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanNode::Kind::kScan;
    node->table = table;
    node->pred = std::move(pred);
    node->scan_proj = std::move(proj);
    std::vector<storage::Column> cols;
    for (size_t c : node->scan_proj) cols.push_back(table->schema().column(c));
    node->out_schema = Schema(std::move(cols));
    return node;
  }

  storage::Catalog catalog_;
  storage::Table* edges_;
  storage::Table* nodes_;
  std::unique_ptr<storage::StorageDevice> device_;
  std::unique_ptr<storage::BufferPool> pool_;
};

TEST_F(OperatorTest, ScanAppliesPredicateAndProjection) {
  query::Predicate pred;
  pred.And(query::AtomicPred::Int("src", query::CompareOp::kEq, 3));
  auto node = ScanNode(edges_, std::move(pred), {2});
  VectorChannel out;
  RunScan(*node, nullptr, pool_.get(), &out);
  size_t n = 0;
  while (auto page = out.Next()) {
    for (uint32_t i = 0; i < page->tuple_count(); ++i) {
      const int64_t w = node->out_schema.GetInt64(page->tuple(i), 0);
      EXPECT_EQ(w % 10, 3);
      ++n;
    }
  }
  EXPECT_EQ(n, 10u);  // 100 edges, 10 with src==3
}

TEST_F(OperatorTest, ScanEmptyResult) {
  query::Predicate pred;
  pred.And(query::AtomicPred::Int("src", query::CompareOp::kEq, 12345));
  auto node = ScanNode(edges_, std::move(pred), {0, 1, 2});
  VectorChannel out;
  RunScan(*node, nullptr, pool_.get(), &out);
  EXPECT_EQ(out.Next(), nullptr);
}

std::unique_ptr<PlanNode> JoinNode(std::unique_ptr<PlanNode> probe,
                                   std::unique_ptr<PlanNode> build,
                                   size_t probe_key, size_t build_key,
                                   std::vector<size_t> payload) {
  auto join = std::make_unique<PlanNode>();
  join->kind = PlanNode::Kind::kHashJoin;
  join->probe_key = probe_key;
  join->build_key = build_key;
  join->build_payload = std::move(payload);
  std::vector<storage::Column> cols;
  for (size_t i = 0; i < probe->out_schema.num_columns(); ++i) {
    cols.push_back(probe->out_schema.column(i));
  }
  for (size_t c : join->build_payload) {
    cols.push_back(build->out_schema.column(c));
  }
  join->out_schema = Schema(std::move(cols));
  join->children.push_back(std::move(probe));
  join->children.push_back(std::move(build));
  return join;
}

TEST_F(OperatorTest, HashJoinMatchesNestedLoopSemantics) {
  auto probe = ScanNode(edges_, query::Predicate::True(), {0, 1, 2});
  auto build = ScanNode(nodes_, query::Predicate::True(), {0, 1});
  auto join = JoinNode(std::move(probe), std::move(build), /*probe_key=*/1,
                       /*build_key=*/0, /*payload=*/{1});

  VectorChannel probe_out, build_out, out;
  RunScan(*join->child(0), nullptr, pool_.get(), &probe_out);
  RunScan(*join->child(1), nullptr, pool_.get(), &build_out);
  RunHashJoin(*join, &probe_out, &build_out, &out);

  size_t n = 0;
  while (auto page = out.Next()) {
    for (uint32_t i = 0; i < page->tuple_count(); ++i) {
      const std::byte* t = page->tuple(i);
      const int32_t dst = join->out_schema.GetInt32(t, 1);
      const auto label = join->out_schema.GetChar(t, 3);
      EXPECT_EQ(label, dst % 2 == 0 ? "even" : "odd");
      ++n;
    }
  }
  EXPECT_EQ(n, 100u);  // every edge matches exactly one node
}

TEST_F(OperatorTest, HashJoinDuplicateBuildKeys) {
  // Build side with duplicate keys: join output multiplies matches.
  auto probe = ScanNode(nodes_, query::Predicate::True(), {0, 1});
  auto build = ScanNode(edges_, query::Predicate::True(), {1, 2});
  auto join = JoinNode(std::move(probe), std::move(build), /*probe_key=*/0,
                       /*build_key=*/0, /*payload=*/{1});
  VectorChannel probe_out, build_out, out;
  RunScan(*join->child(0), nullptr, pool_.get(), &probe_out);
  RunScan(*join->child(1), nullptr, pool_.get(), &build_out);
  RunHashJoin(*join, &probe_out, &build_out, &out);
  size_t n = 0;
  while (auto page = out.Next()) n += page->tuple_count();
  EXPECT_EQ(n, 100u);  // each edge joins its dst node exactly once
}

TEST_F(OperatorTest, HashJoinEmptyBuildYieldsNothing) {
  query::Predicate none;
  none.And(query::AtomicPred::Int("id", query::CompareOp::kLt, 0));
  auto probe = ScanNode(edges_, query::Predicate::True(), {0, 1, 2});
  auto build = ScanNode(nodes_, std::move(none), {0, 1});
  auto join = JoinNode(std::move(probe), std::move(build), 1, 0, {1});
  VectorChannel probe_out, build_out, out;
  RunScan(*join->child(0), nullptr, pool_.get(), &probe_out);
  RunScan(*join->child(1), nullptr, pool_.get(), &build_out);
  RunHashJoin(*join, &probe_out, &build_out, &out);
  EXPECT_EQ(out.Next(), nullptr);
}

std::unique_ptr<PlanNode> AggNode(std::unique_ptr<PlanNode> child,
                                  std::vector<size_t> group_cols,
                                  std::vector<query::BoundAgg> aggs) {
  auto agg = std::make_unique<PlanNode>();
  agg->kind = PlanNode::Kind::kAggregate;
  agg->group_cols = std::move(group_cols);
  agg->aggs = std::move(aggs);
  std::vector<storage::Column> cols;
  for (size_t c : agg->group_cols) {
    cols.push_back(child->out_schema.column(c));
  }
  for (const auto& a : agg->aggs) {
    if (a.integer_exact || a.kind == query::AggSpec::Kind::kCount) {
      cols.push_back(Schema::Int64(a.out_name));
    } else {
      cols.push_back(Schema::Double(a.out_name));
    }
  }
  agg->out_schema = Schema(std::move(cols));
  agg->children.push_back(std::move(child));
  return agg;
}

TEST_F(OperatorTest, AggregateGroupsAndSums) {
  auto scan = ScanNode(edges_, query::Predicate::True(), {0, 2});
  query::BoundAgg sum;
  sum.kind = query::AggSpec::Kind::kSum;
  sum.col_a = 1;
  sum.integer_exact = true;
  sum.out_name = "total";
  query::BoundAgg count;
  count.kind = query::AggSpec::Kind::kCount;
  count.out_name = "n";
  auto agg = AggNode(std::move(scan), {0}, {sum, count});

  VectorChannel in, out;
  RunScan(*agg->child(0), nullptr, pool_.get(), &in);
  RunAggregate(*agg, &in, &out);

  size_t groups = 0;
  while (auto page = out.Next()) {
    for (uint32_t i = 0; i < page->tuple_count(); ++i) {
      const std::byte* t = page->tuple(i);
      const int32_t src = agg->out_schema.GetInt32(t, 0);
      const int64_t total = agg->out_schema.GetInt64(t, 1);
      const int64_t n = agg->out_schema.GetInt64(t, 2);
      // w values for src s: s, s+10, ..., s+90 -> sum = 10s + 450.
      EXPECT_EQ(total, 10 * src + 450);
      EXPECT_EQ(n, 10);
      ++groups;
    }
  }
  EXPECT_EQ(groups, 10u);
}

TEST_F(OperatorTest, GlobalAggregateOnEmptyInputEmitsOneRow) {
  query::Predicate none;
  none.And(query::AtomicPred::Int("src", query::CompareOp::kLt, 0));
  auto scan = ScanNode(edges_, std::move(none), {2});
  query::BoundAgg sum;
  sum.kind = query::AggSpec::Kind::kSum;
  sum.col_a = 0;
  sum.integer_exact = true;
  sum.out_name = "total";
  auto agg = AggNode(std::move(scan), {}, {sum});
  VectorChannel in, out;
  RunScan(*agg->child(0), nullptr, pool_.get(), &in);
  RunAggregate(*agg, &in, &out);
  auto page = out.Next();
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->tuple_count(), 1u);
  EXPECT_EQ(agg->out_schema.GetInt64(page->tuple(0), 0), 0);
}

TEST_F(OperatorTest, AvgAndDiscountAggregates) {
  auto scan = ScanNode(edges_, query::Predicate::True(), {2});
  query::BoundAgg avg;
  avg.kind = query::AggSpec::Kind::kAvg;
  avg.col_a = 0;
  avg.out_name = "avg_w";
  auto agg = AggNode(std::move(scan), {}, {avg});
  VectorChannel in, out;
  RunScan(*agg->child(0), nullptr, pool_.get(), &in);
  RunAggregate(*agg, &in, &out);
  auto page = out.Next();
  ASSERT_NE(page, nullptr);
  EXPECT_DOUBLE_EQ(agg->out_schema.GetDouble(page->tuple(0), 0), 49.5);
}

TEST_F(OperatorTest, SortOrdersByKeysWithDirections) {
  auto scan = ScanNode(edges_, query::Predicate::True(), {0, 2});
  auto sort = std::make_unique<PlanNode>();
  sort->kind = PlanNode::Kind::kSort;
  sort->out_schema = scan->out_schema;
  sort->sort_keys = {{0, true}, {1, false}};  // src asc, w desc
  sort->children.push_back(std::move(scan));

  VectorChannel in, out;
  RunScan(*sort->child(0), nullptr, pool_.get(), &in);
  RunSort(*sort, &in, &out);

  int32_t prev_src = -1;
  int64_t prev_w = 0;
  size_t n = 0;
  while (auto page = out.Next()) {
    for (uint32_t i = 0; i < page->tuple_count(); ++i) {
      const int32_t src = sort->out_schema.GetInt32(page->tuple(i), 0);
      const int64_t w = sort->out_schema.GetInt64(page->tuple(i), 1);
      EXPECT_GE(src, prev_src);
      if (src == prev_src) {
        EXPECT_LE(w, prev_w);
      }
      prev_src = src;
      prev_w = w;
      ++n;
    }
  }
  EXPECT_EQ(n, 100u);
}

TEST(HashTable, InsertBuildProbe) {
  Int64HashTable ht;
  for (int64_t k = 0; k < 100; ++k) {
    ht.Insert(HashKey(k % 10), k % 10, static_cast<uint64_t>(k));
  }
  ht.Build();
  EXPECT_EQ(ht.CountMatches(HashKey(3), 3), 10u);
  EXPECT_EQ(ht.CountMatches(HashKey(42), 42), 0u);
  // Incremental growth: insert more, rebuild, probe again.
  ht.Insert(HashKey(42), 42, 1);
  ht.Build();
  EXPECT_EQ(ht.CountMatches(HashKey(42), 42), 1u);
  EXPECT_EQ(ht.CountMatches(HashKey(3), 3), 10u);
}

TEST(HashTable, EmptyTableProbeIsSafe) {
  Int64HashTable ht;
  ht.Build();
  EXPECT_EQ(ht.CountMatches(HashKey(1), 1), 0u);
}

TEST(PageWriterTest, SpillsAcrossPages) {
  baseline::VectorChannel out;
  const uint32_t tuple_size = 1000;
  PageWriter writer(&out, tuple_size);
  const uint32_t per_page = storage::PageCapacityFor(tuple_size);
  const uint32_t total = per_page * 2 + 3;
  for (uint32_t i = 0; i < total; ++i) {
    ASSERT_NE(writer.AppendTuple(), nullptr);
  }
  writer.Flush();
  size_t pages = 0, tuples = 0;
  while (auto page = out.Next()) {
    ++pages;
    tuples += page->tuple_count();
  }
  EXPECT_EQ(pages, 3u);
  EXPECT_EQ(tuples, total);
}

}  // namespace
}  // namespace sdw::qpipe
