// Chaos suite: the engine under injected storage faults, overload and
// stalls. Four phases, all seeded and replayable (the schedule seed is
// printed before each randomized run — rerun with --seed=N to reproduce):
//
//  A. Deterministic fault isolation. A one-shot *permanent* fact-page error
//     fails exactly the queries attached to the scan at that epoch
//     (kDataLoss) while the scan skips the poisoned page and keeps serving:
//     the next batch completes kOk and matches the Volcano oracle. The same
//     fault under an active shared aggregation group fails only the group's
//     members and leaves the aggregator clean for same-signature
//     readmissions. A one-shot *transient* error is absorbed by the
//     cursor's retry/backoff and never reaches a client.
//  B. Overload shedding. With an admission memory budget of 4 queries, a
//     12-query batch sees exactly 4 admitted and 8 shed kResourceExhausted
//     with a machine-readable retry_after hint; resubmitting after the
//     survivors complete succeeds (the budget was released).
//  C. Stall watchdog. A latency fault freezes every fact-page read; the
//     watchdog detects busy-without-progress and converts the stall into
//     kDeadlineExceeded cancels instead of a hang.
//  D. Randomized schedules. Mixed priority/deadline/cancel workloads under
//     probabilistic transient/permanent/latency faults: every ticket
//     reaches exactly one terminal status from the documented taxonomy,
//     every kOk result equals the oracle, nothing hangs (the ctest timeout
//     is the hang guard) and teardown is clean. Run under ASAN/TSAN in CI.
//
// Usage: chaos_test [--seed=N] [--schedules=N]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "baseline/volcano.h"
#include "common/fault_injector.h"
#include "common/macros.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/timing.h"
#include "core/engine.h"
#include "core/query_ticket.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "ssb/workload.h"
#include "storage/buffer_pool.h"
#include "storage/storage_device.h"

using namespace sdw;

namespace {

struct Db {
  storage::Catalog catalog;
  std::unique_ptr<storage::StorageDevice> device;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<baseline::VolcanoEngine> oracle;
  uint16_t fact_id = 0;
};

std::unique_ptr<Db> MakeDb() {
  auto db = std::make_unique<Db>();
  ssb::SsbOptions opts;
  opts.scale_factor = 0.01;
  ssb::BuildSsbDatabase(&db->catalog, opts);
  db->device =
      std::make_unique<storage::StorageDevice>(storage::DeviceOptions{});
  db->pool = std::make_unique<storage::BufferPool>(db->device.get(), 0);
  db->oracle =
      std::make_unique<baseline::VolcanoEngine>(&db->catalog, db->pool.get());
  db->fact_id = db->catalog.MustGetTable("lineorder")->id();
  return db;
}

/// Disarms the process-wide injector on every exit path of a phase.
class ScopedFaults {
 public:
  explicit ScopedFaults(uint64_t seed) { FaultInjector::Global().Enable(seed); }
  ~ScopedFaults() { FaultInjector::Global().Disable(); }
};

/// The "storage.read" key range covering every page of the fact table and
/// nothing else — dimension scans and the oracle stay untouched.
void RestrictToFactTable(FaultSpec* spec, const Db& db) {
  spec->key_lo = static_cast<uint64_t>(db.fact_id) << 48;
  spec->key_hi = (static_cast<uint64_t>(db.fact_id) << 48) | 0xFFFFFFFFFFFFull;
}

core::EngineOptions CjoinOpts() {
  core::EngineOptions o;
  o.config = core::EngineConfig::kCjoin;
  return o;
}

void CheckOracleEqual(Db* db, const query::StarQuery& q,
                      const core::QueryTicket& t, const char* what) {
  const std::string diff =
      query::DiffResults(db->oracle->Execute(q), t.result());
  SDW_CHECK_MSG(diff.empty(), "%s: result mismatch: %s", what, diff.c_str());
}

// Phase A1: a permanent fact-page error fails ONLY the queries attached at
// that scan epoch; the scan skips the poisoned page and the next batch is
// served correctly.
void TestPermanentFaultFailsOnlyAttachedEpoch(Db* db) {
  core::Engine engine(&db->catalog, db->pool.get(), CjoinOpts());
  ScopedFaults faults(101);
  FaultSpec spec;
  spec.kind = FaultKind::kPermanent;
  spec.one_shot_at = 1;  // the scan's first fact-page read
  spec.message = "chaos: simulated media error";
  RestrictToFactTable(&spec, *db);
  FaultInjector::Global().Arm("storage.read", spec);

  const auto queries = ssb::RandomQ32Workload(4, 9100);
  const auto tickets = engine.SubmitBatch(queries);
  for (const auto& t : tickets) {
    const Status s = t.Wait();
    SDW_CHECK_MSG(s.code() == StatusCode::kDataLoss,
                  "epoch query finished %s (want kDataLoss)",
                  s.ToString().c_str());
    SDW_CHECK_MSG(
        s.message().find("simulated media error") != std::string::npos,
        "fault detail lost from message: %s", s.message().c_str());
  }
  engine.WaitAll();
  const cjoin::CjoinStats mid = engine.cjoin_stats();
  SDW_CHECK_MSG(mid.queries_failed == 4, "want 4 failed, got %llu",
                static_cast<unsigned long long>(mid.queries_failed));
  SDW_CHECK(mid.scan_read_errors >= 1);
  SDW_CHECK(FaultInjector::Global().injected("storage.read") == 1);

  // Fault isolation: the one-shot is spent, the scan survived — a new batch
  // on the SAME engine completes and matches the oracle.
  FaultInjector::Global().ClearSite("storage.read");
  const auto queries2 = ssb::RandomQ32Workload(4, 9200);
  const auto tickets2 = engine.SubmitBatch(queries2);
  for (size_t i = 0; i < tickets2.size(); ++i) {
    const Status s = tickets2[i].Wait();
    SDW_CHECK_MSG(s.ok(), "post-fault query finished %s", s.ToString().c_str());
    CheckOracleEqual(db, queries2[i], tickets2[i], "post-fault batch");
  }
  engine.WaitAll();
  SDW_CHECK(engine.cjoin_stats().queries_completed == 4);
}

// Phase A3: a permanent fact-page fault under an ACTIVE shared aggregation
// group. All queries share one group (same Q3.2 shape — one AggSignature);
// the fault must fail exactly the attached members (kDataLoss) and retire
// them through the group's fault path (RetireSlot on a poisoned stream must
// not corrupt the aggregator), after which a second wave binding the SAME
// signature completes oracle-equal on the same engine.
void TestSharedAggFaultIsolation(Db* db) {
  core::Engine engine(&db->catalog, db->pool.get(), CjoinOpts());
  ScopedFaults faults(104);
  FaultSpec spec;
  spec.kind = FaultKind::kPermanent;
  spec.one_shot_at = 1;
  spec.message = "chaos: simulated media error";
  RestrictToFactTable(&spec, *db);
  FaultInjector::Global().Arm("storage.read", spec);

  // distinct_plans=1: every instance is plan-identical, so with CJOIN (no
  // SP) all 6 bind as members of ONE shared aggregation group.
  const auto queries = ssb::SimilarQ32Workload(6, 1, 9600);
  const auto tickets = engine.SubmitBatch(queries);
  for (const auto& t : tickets) {
    const Status s = t.Wait();
    SDW_CHECK_MSG(s.code() == StatusCode::kDataLoss,
                  "shared-agg member finished %s (want kDataLoss)",
                  s.ToString().c_str());
  }
  engine.WaitAll();
  const cjoin::CjoinStats mid = engine.cjoin_stats();
  SDW_CHECK_MSG(mid.agg_groups_shared >= 5,
                "6 same-shape queries shared %llu times (want >= 5)",
                static_cast<unsigned long long>(mid.agg_groups_shared));
  SDW_CHECK(mid.queries_failed == 6);

  // Same signature, fresh members: the group was fully retired with its
  // last member, so a new wave re-binds cleanly and completes oracle-equal.
  FaultInjector::Global().ClearSite("storage.read");
  const auto queries2 = ssb::SimilarQ32Workload(6, 1, 9700);
  const auto tickets2 = engine.SubmitBatch(queries2);
  for (size_t i = 0; i < tickets2.size(); ++i) {
    const Status s = tickets2[i].Wait();
    SDW_CHECK_MSG(s.ok(), "post-fault shared-agg query finished %s",
                  s.ToString().c_str());
    CheckOracleEqual(db, queries2[i], tickets2[i], "shared-agg second wave");
  }
  engine.WaitAll();
  const cjoin::CjoinStats after = engine.cjoin_stats();
  SDW_CHECK(after.queries_completed == 6);
  SDW_CHECK(after.agg_slice_emits >= 6);
}

// Phase A4: a permanent fact-page fault under ACTIVE dynamic query folding.
// A wide host query is admitted first; two provably-contained satellites
// arrive mid-cycle and fold onto its slot (no slots of their own). The
// fault then poisons the tail of the epoch: host AND riders must fail with
// the host's kDataLoss together — a satellite must never hang waiting on a
// scan that died, and never emit a partial result. Resubmitting the same
// satellites on the same engine must complete oracle-equal: the fold bits
// and the shared aggregation group recycle cleanly after a faulted fold.
void TestFoldedSatellitesShareHostFault(Db* db) {
  core::EngineOptions opts = CjoinOpts();
  opts.query_folding = true;
  opts.cjoin.fold_bits = 64;
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  ScopedFaults faults(105);
  FaultSpec spec;
  spec.kind = FaultKind::kPermanent;
  // Fire on the LAST fact page of the host's cycle: the satellites fold at
  // an admission pause within the first few pages, so by then every rider
  // is attached and mid-cycle (pages_remaining > 0) — all take the fault.
  spec.one_shot_at =
      db->catalog.MustGetTable("lineorder")->num_pages();
  spec.message = "chaos: simulated media error under folding";
  RestrictToFactTable(&spec, *db);
  FaultInjector::Global().Arm("storage.read", spec);

  ssb::Q32SelectivityParams wide;
  wide.cust_nations = {0, 1, 2, 3, 4, 5};
  wide.supp_nations = {0, 1, 2, 3, 4, 5};
  wide.year_lo = 1992;
  wide.year_hi = 1998;
  ssb::Q32SelectivityParams n1;
  n1.cust_nations = {1, 3};
  n1.supp_nations = {0, 2, 4};
  n1.year_lo = 1993;
  n1.year_hi = 1996;
  ssb::Q32SelectivityParams n2;
  n2.cust_nations = {5};
  n2.supp_nations = {1, 5};
  n2.year_lo = 1995;
  n2.year_hi = 1995;
  const std::vector<query::StarQuery> sats = {ssb::MakeQ32Selectivity(n1),
                                              ssb::MakeQ32Selectivity(n2)};

  core::QueryTicket host = engine.Submit(ssb::MakeQ32Selectivity(wide));
  auto sat_tickets = engine.SubmitBatch(sats);

  const Status host_status = host.Wait();
  SDW_CHECK_MSG(host_status.code() == StatusCode::kDataLoss,
                "faulted fold host finished %s (want kDataLoss)",
                host_status.ToString().c_str());
  for (const auto& t : sat_tickets) {
    const Status s = t.Wait();
    SDW_CHECK_MSG(s.code() == StatusCode::kDataLoss,
                  "folded satellite finished %s (want host's kDataLoss)",
                  s.ToString().c_str());
  }
  engine.WaitAll();
  const cjoin::CjoinStats mid = engine.cjoin_stats();
  SDW_CHECK_MSG(mid.queries_folded == sats.size(),
                "expected %zu folds before the fault, saw %llu", sats.size(),
                static_cast<unsigned long long>(mid.queries_folded));
  SDW_CHECK(mid.queries_failed == 1 + sats.size());

  // Re-admission after the fault: same satellites, same engine, clean run.
  FaultInjector::Global().ClearSite("storage.read");
  auto tickets2 = engine.SubmitBatch(sats);
  for (size_t i = 0; i < tickets2.size(); ++i) {
    const Status s = tickets2[i].Wait();
    SDW_CHECK_MSG(s.ok(), "post-fault satellite resubmission finished %s",
                  s.ToString().c_str());
    CheckOracleEqual(db, sats[i], tickets2[i], "post-fault fold resubmit");
  }
  engine.WaitAll();
}

// Phase A2: a transient read error is retried inside the cursor and never
// surfaces — queries complete kOk, the retry telemetry shows the absorb.
void TestTransientFaultAbsorbedByRetry(Db* db) {
  core::Engine engine(&db->catalog, db->pool.get(), CjoinOpts());
  ScopedFaults faults(102);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.one_shot_at = 1;
  spec.message = "chaos: simulated I/O timeout";
  RestrictToFactTable(&spec, *db);
  FaultInjector::Global().Arm("storage.read", spec);

  const auto queries = ssb::RandomQ32Workload(2, 9300);
  const auto tickets = engine.SubmitBatch(queries);
  for (size_t i = 0; i < tickets.size(); ++i) {
    const Status s = tickets[i].Wait();
    SDW_CHECK_MSG(s.ok(), "transient-fault query finished %s",
                  s.ToString().c_str());
    CheckOracleEqual(db, queries[i], tickets[i], "transient batch");
  }
  engine.WaitAll();
  const cjoin::CjoinStats stats = engine.cjoin_stats();
  SDW_CHECK_MSG(stats.scan_read_retries >= 1,
                "transient fault was not retried (retries=%llu)",
                static_cast<unsigned long long>(stats.scan_read_retries));
  SDW_CHECK(stats.scan_read_errors == 0);  // never surfaced past the cursor
  SDW_CHECK(stats.queries_failed == 0);
}

// Phase B: memory-budget overload shedding with a retry_after hint, and
// successful resubmission once the budget frees up.
void TestOverloadSheddingAndResubmit(Db* db) {
  core::EngineOptions opts = CjoinOpts();
  opts.resilience.memory_budget_bytes =
      4 * cjoin::CjoinPipeline::kAdmissionCostBytes;
  opts.resilience.overload_retry_after_nanos = 2'000'000;
  core::Engine engine(&db->catalog, db->pool.get(), opts);

  const auto queries = ssb::RandomQ32Workload(12, 9400);
  const auto tickets = engine.SubmitBatch(queries);
  std::vector<size_t> shed;
  size_t ok = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    const Status s = tickets[i].Wait();
    if (s.ok()) {
      ++ok;
      CheckOracleEqual(db, queries[i], tickets[i], "overload survivor");
    } else {
      SDW_CHECK_MSG(s.code() == StatusCode::kResourceExhausted,
                    "shed query finished %s", s.ToString().c_str());
      SDW_CHECK_MSG(RetryAfterNanosFrom(s) > 0,
                    "overload rejection carries no retry_after hint: %s",
                    s.message().c_str());
      shed.push_back(i);
    }
  }
  SDW_CHECK_MSG(ok == 4 && shed.size() == 8,
                "budget of 4: %zu admitted, %zu shed", ok, shed.size());
  engine.WaitAll();
  SDW_CHECK(engine.cjoin_stats().queries_rejected_overload == 8);
  SDW_CHECK(engine.memory_budget() != nullptr &&
            engine.memory_budget()->used() == 0);

  // The hint is honest: shed queries eventually complete by resubmitting
  // after waiting it out. Each round frees the whole budget (WaitAll), so
  // each round admits at least 4 of the remainder — 2 rounds here.
  std::vector<query::StarQuery> again;
  for (const size_t i : shed) again.push_back(queries[i]);
  int rounds = 0;
  while (!again.empty()) {
    SDW_CHECK_MSG(++rounds <= 10, "overload resubmission did not converge");
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(opts.resilience.overload_retry_after_nanos));
    const auto tickets2 = engine.SubmitBatch(again);
    std::vector<query::StarQuery> still_shed;
    for (size_t i = 0; i < tickets2.size(); ++i) {
      const Status s = tickets2[i].Wait();
      if (s.ok()) {
        CheckOracleEqual(db, again[i], tickets2[i], "overload resubmit");
      } else {
        SDW_CHECK_MSG(s.code() == StatusCode::kResourceExhausted,
                      "resubmitted query finished %s", s.ToString().c_str());
        still_shed.push_back(again[i]);
      }
    }
    engine.WaitAll();
    again = std::move(still_shed);
  }
  SDW_CHECK_MSG(rounds >= 2, "12 queries through a budget of 4 in one round");
}

// Phase C: a latency fault freezes fact-page reads; the stall watchdog
// converts busy-without-progress into kDeadlineExceeded instead of a hang.
void TestWatchdogConvertsStallIntoDeadline(Db* db) {
  core::EngineOptions opts = CjoinOpts();
  opts.resilience.scan_stall_nanos = 100'000'000;  // 100 ms flat
  opts.resilience.watchdog_check_interval_nanos = 20'000'000;
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  SDW_CHECK(engine.watchdog() != nullptr);

  ScopedFaults faults(103);
  FaultSpec spec;
  spec.kind = FaultKind::kLatency;
  spec.latency_nanos = 250'000'000;  // every fact read sleeps 250 ms
  spec.every_nth = 1;
  RestrictToFactTable(&spec, *db);
  FaultInjector::Global().Arm("storage.read", spec);

  const auto queries = ssb::RandomQ32Workload(2, 9500);
  const auto tickets = engine.SubmitBatch(queries);
  for (const auto& t : tickets) {
    const Status s = t.Wait();
    SDW_CHECK_MSG(s.code() == StatusCode::kDeadlineExceeded,
                  "stalled query finished %s (want kDeadlineExceeded)",
                  s.ToString().c_str());
  }
  SDW_CHECK(engine.watchdog()->stalls_fired() >= 1);
  // Un-freeze the scan so the cancelled slots retire promptly.
  FaultInjector::Global().ClearSite("storage.read");
  engine.WaitAll();
}

// Phase D: one randomized schedule — mixed priorities, deadlines and
// mid-flight cancels under probabilistic transient/permanent/latency
// faults. Invariants: every ticket terminal with a taxonomy status, kOk
// results equal the oracle, accounting balances, clean teardown.
void RunRandomSchedule(Db* db, uint64_t seed) {
  std::printf("chaos schedule seed=%llu\n",
              static_cast<unsigned long long>(seed));
  Rng rng(seed);
  core::Engine engine(&db->catalog, db->pool.get(), CjoinOpts());
  ScopedFaults faults(seed);
  {
    FaultSpec transient;
    transient.kind = FaultKind::kTransient;
    transient.probability = 0.02;
    transient.message = "chaos: random transient";
    FaultInjector::Global().Arm("storage.read", transient);

    FaultSpec permanent;  // rare, anywhere: fact pages AND dimension scans
    permanent.kind = FaultKind::kPermanent;
    permanent.probability = 0.001;
    permanent.message = "chaos: random permanent";
    FaultInjector::Global().Arm("storage.read", permanent);

    FaultSpec latency;
    latency.kind = FaultKind::kLatency;
    latency.probability = 0.01;
    latency.latency_nanos = 500'000;  // 0.5 ms hiccup
    FaultInjector::Global().Arm("storage.read", latency);
  }

  // Two arrival waves of 8, different priorities; wave 2 carries a deadline
  // generous enough to normally complete but breachable under faults.
  const auto wave1 = ssb::RandomQ32Workload(8, seed ^ 0x9e3779b97f4a7c15ull);
  const auto wave2 =
      ssb::SimilarQ32Workload(8, 3, seed ^ 0xbf58476d1ce4e5b9ull);
  std::vector<core::SubmitRequest> requests;
  for (const auto& q : wave1) {
    core::SubmitRequest r;
    r.q = q;
    r.opts.priority = static_cast<int>(rng.Uniform(0, 3));
    requests.push_back(r);
  }
  for (const auto& q : wave2) {
    core::SubmitRequest r;
    r.q = q;
    r.opts.priority = 5;
    r.opts.deadline_nanos = NowNanos() + 10'000'000'000;  // 10 s
    requests.push_back(r);
  }
  const auto tickets = engine.SubmitRequests(requests);

  // Cancel a random quarter mid-flight.
  std::vector<bool> cancelled(tickets.size(), false);
  for (const size_t i : rng.SampleDistinct(tickets.size(), 4)) {
    tickets[i].Cancel();
    cancelled[i] = true;
  }

  size_t ok = 0, faulted = 0, cancelled_seen = 0, other = 0;
  std::vector<size_t> ok_idx;
  for (size_t i = 0; i < tickets.size(); ++i) {
    const Status s = tickets[i].Wait();  // every ticket must turn terminal
    switch (s.code()) {
      case StatusCode::kOk:
        ++ok;
        ok_idx.push_back(i);
        break;
      case StatusCode::kUnavailable:
      case StatusCode::kDataLoss:
        ++faulted;
        break;
      case StatusCode::kCancelled:
        SDW_CHECK_MSG(cancelled[i], "uncancelled ticket %zu got kCancelled",
                      i);
        ++cancelled_seen;
        break;
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kResourceExhausted:
        ++other;
        break;
      default:
        SDW_CHECK_MSG(false, "ticket %zu: status outside the taxonomy: %s", i,
                      s.ToString().c_str());
    }
  }
  engine.WaitAll();

  // Exactly-once completion accounting: every admitted query retired
  // through exactly one of the terminal paths.
  const cjoin::CjoinStats stats = engine.cjoin_stats();
  SDW_CHECK_MSG(
      stats.queries_admitted <= stats.queries_completed +
                                    stats.queries_cancelled +
                                    stats.queries_failed,
      "admission accounting leak: admitted=%llu done=%llu cancelled=%llu "
      "failed=%llu",
      static_cast<unsigned long long>(stats.queries_admitted),
      static_cast<unsigned long long>(stats.queries_completed),
      static_cast<unsigned long long>(stats.queries_cancelled),
      static_cast<unsigned long long>(stats.queries_failed));

  // Oracle equality for every kOk ticket, with injection OFF (the oracle
  // must not itself run under faults).
  FaultInjector::Global().Disable();
  for (const size_t i : ok_idx) {
    CheckOracleEqual(db, requests[i].q, tickets[i], "random schedule");
  }
  std::printf(
      "  seed=%llu: %zu ok, %zu faulted, %zu cancelled, %zu other; "
      "retries=%llu giveups=%llu injected=%llu\n",
      static_cast<unsigned long long>(seed), ok, faulted, cancelled_seen,
      other, static_cast<unsigned long long>(stats.scan_read_retries),
      static_cast<unsigned long long>(stats.scan_retry_giveups),
      static_cast<unsigned long long>(
          FaultInjector::Global().injected_total()));
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 20260808;
  size_t schedules = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--schedules=", 12) == 0) {
      schedules = std::strtoull(argv[i] + 12, nullptr, 10);
    }
  }

  auto db = MakeDb();
  TestPermanentFaultFailsOnlyAttachedEpoch(db.get());
  TestSharedAggFaultIsolation(db.get());
  TestFoldedSatellitesShareHostFault(db.get());
  TestTransientFaultAbsorbedByRetry(db.get());
  TestOverloadSheddingAndResubmit(db.get());
  TestWatchdogConvertsStallIntoDeadline(db.get());
  for (size_t s = 0; s < schedules; ++s) {
    RunRandomSchedule(db.get(), seed + s * 7919);
  }
  std::printf("chaos_test: OK (base seed=%llu, %zu random schedules)\n",
              static_cast<unsigned long long>(seed), schedules);
  return 0;
}
