// Unit tests for src/storage: schemas, pages, tables, the simulated storage
// device (sequential vs seek cost, OS cache, direct I/O) and the buffer pool.

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/timing.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/scan.h"
#include "storage/schema.h"
#include "storage/storage_device.h"
#include "storage/table.h"

namespace sdw::storage {
namespace {

Schema TestSchema() {
  return Schema({Schema::Int32("a"), Schema::Int64("b"), Schema::Double("c"),
                 Schema::Char("d", 8)});
}

TEST(Schema, OffsetsAndWidths) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 4u);
  EXPECT_EQ(s.offset(2), 12u);
  EXPECT_EQ(s.offset(3), 20u);
  EXPECT_EQ(s.tuple_size(), 28u);
}

TEST(Schema, FieldRoundTrip) {
  const Schema s = TestSchema();
  std::vector<std::byte> buf(s.tuple_size());
  s.SetInt32(buf.data(), 0, -42);
  s.SetInt64(buf.data(), 1, 1234567890123LL);
  s.SetDouble(buf.data(), 2, 2.5);
  s.SetChar(buf.data(), 3, "hi");
  EXPECT_EQ(s.GetInt32(buf.data(), 0), -42);
  EXPECT_EQ(s.GetInt64(buf.data(), 1), 1234567890123LL);
  EXPECT_DOUBLE_EQ(s.GetDouble(buf.data(), 2), 2.5);
  EXPECT_EQ(s.GetChar(buf.data(), 3), "hi");           // trimmed
  EXPECT_EQ(s.GetCharRaw(buf.data(), 3), "hi      ");  // padded
}

TEST(Schema, CharTruncation) {
  const Schema s = TestSchema();
  std::vector<std::byte> buf(s.tuple_size());
  s.SetChar(buf.data(), 3, "exactly-eight-plus");
  EXPECT_EQ(s.GetChar(buf.data(), 3), "exactly-");
}

TEST(Schema, ColumnIndexLookup) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.ColumnIndex("c"), 2);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
  EXPECT_EQ(s.MustColumnIndex("d"), 3u);
}

TEST(Page, AppendUntilFull) {
  auto page = Page::Make(100);
  const uint32_t cap = page->capacity();
  EXPECT_EQ(cap, PageCapacityFor(100));
  EXPECT_GT(cap, 300u);  // 32KB / 100B
  uint32_t n = 0;
  while (page->AppendTuple() != nullptr) ++n;
  EXPECT_EQ(n, cap);
  EXPECT_TRUE(page->full());
}

TEST(Page, CloneIsDeep) {
  auto page = Page::Make(8);
  std::byte* t = page->AppendTuple();
  int64_t v = 99;
  std::memcpy(t, &v, 8);
  page->set_seq(7);
  auto copy = Page::Clone(*page);
  v = 11;
  std::memcpy(t, &v, 8);
  int64_t got;
  std::memcpy(&got, copy->tuple(0), 8);
  EXPECT_EQ(got, 99);
  EXPECT_EQ(copy->seq(), 7u);
  EXPECT_EQ(copy->tuple_count(), 1u);
}

TEST(Table, RowIndexingAcrossPages) {
  Table t("t", Schema({Schema::Int64("x")}));
  const size_t n = static_cast<size_t>(t.rows_per_page()) * 3 + 5;
  for (size_t i = 0; i < n; ++i) {
    std::byte* row = t.AppendRow();
    t.schema().SetInt64(row, 0, static_cast<int64_t>(i));
  }
  EXPECT_EQ(t.num_rows(), n);
  EXPECT_EQ(t.num_pages(), 4u);
  for (size_t i : {size_t{0}, static_cast<size_t>(t.rows_per_page()) + 1,
                   n - 1}) {
    EXPECT_EQ(t.schema().GetInt64(t.row(i), 0), static_cast<int64_t>(i));
  }
}

TEST(Catalog, RegisterAndLookup) {
  Catalog c;
  auto* t1 = c.AddTable(std::make_unique<Table>("one", TestSchema()));
  auto* t2 = c.AddTable(std::make_unique<Table>("two", TestSchema()));
  EXPECT_EQ(c.GetTable("one"), t1);
  EXPECT_EQ(c.GetTable("absent"), nullptr);
  EXPECT_EQ(c.GetTableById(t2->id()), t2);
  EXPECT_EQ(c.num_tables(), 2u);
}

TEST(StorageDevice, MemoryResidentIsFree) {
  StorageDevice dev({.memory_resident = true});
  const int64_t start = NowNanos();
  for (int i = 0; i < 100; ++i) dev.ReadPage(1, static_cast<uint64_t>(i), kPageSize);
  EXPECT_LT(NowNanos() - start, 50'000'000);  // far under any disk time
  EXPECT_EQ(dev.device_bytes_read(), 0u);
  EXPECT_EQ(dev.logical_reads(), 100u);
}

TEST(StorageDevice, SequentialFasterThanRandom) {
  DeviceOptions opts;
  opts.memory_resident = false;
  opts.seq_bandwidth_mbps = 5000;  // make seeks dominate
  opts.seek_latency_us = 2000;
  {
    StorageDevice dev(opts);
    WallTimer t;
    for (int i = 0; i < 20; ++i) dev.ReadPage(1, static_cast<uint64_t>(i), kPageSize);
    const double seq = t.ElapsedSeconds();
    EXPECT_LT(seq, 0.02);  // one seek + cheap transfers
  }
  {
    StorageDevice dev(opts);
    WallTimer t;
    for (int i = 0; i < 20; ++i) {
      dev.ReadPage(1, static_cast<uint64_t>((i * 7) % 20), kPageSize);
    }
    const double random = t.ElapsedSeconds();
    EXPECT_GT(random, 0.03);  // ~20 seeks at 2ms
  }
}

TEST(StorageDevice, OsCacheAbsorbsRereads) {
  DeviceOptions opts;
  opts.memory_resident = false;
  opts.seq_bandwidth_mbps = 10000;
  opts.seek_latency_us = 100;
  opts.os_cache_bytes = 100 * kPageSize;
  StorageDevice dev(opts);
  for (int i = 0; i < 10; ++i) dev.ReadPage(1, static_cast<uint64_t>(i), kPageSize);
  const uint64_t cold = dev.device_bytes_read();
  for (int i = 0; i < 10; ++i) dev.ReadPage(1, static_cast<uint64_t>(i), kPageSize);
  EXPECT_EQ(dev.device_bytes_read(), cold);  // all hits
  EXPECT_EQ(dev.cache_hit_bytes(), 10 * kPageSize);
}

TEST(StorageDevice, DirectIoBypassesCache) {
  DeviceOptions opts;
  opts.memory_resident = false;
  opts.seq_bandwidth_mbps = 10000;
  opts.seek_latency_us = 10;
  opts.os_cache_bytes = 100 * kPageSize;
  opts.direct_io = true;
  StorageDevice dev(opts);
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < 10; ++i) dev.ReadPage(1, static_cast<uint64_t>(i), kPageSize);
  }
  EXPECT_EQ(dev.device_bytes_read(), 20 * kPageSize);
  EXPECT_EQ(dev.cache_hit_bytes(), 0u);
}

TEST(StorageDevice, CacheEvictsAtCapacity) {
  DeviceOptions opts;
  opts.memory_resident = false;
  opts.seq_bandwidth_mbps = 10000;
  opts.seek_latency_us = 10;
  opts.os_cache_bytes = 4 * kPageSize;
  StorageDevice dev(opts);
  for (int i = 0; i < 8; ++i) dev.ReadPage(1, static_cast<uint64_t>(i), kPageSize);
  // Page 0 was evicted; re-reading misses.
  const uint64_t before = dev.device_bytes_read();
  dev.ReadPage(1, 0, kPageSize);
  EXPECT_EQ(dev.device_bytes_read(), before + kPageSize);
}

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() {
    table_ = std::make_unique<Table>("t", Schema({Schema::Int64("x")}));
    const size_t rows = static_cast<size_t>(table_->rows_per_page()) * 10;
    for (size_t i = 0; i < rows; ++i) {
      table_->schema().SetInt64(table_->AppendRow(), 0,
                                static_cast<int64_t>(i));
    }
    table_->set_id(3);
  }
  std::unique_ptr<Table> table_;
};

TEST_F(BufferPoolTest, HitsAfterFirstTouch) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 0);
  for (int r = 0; r < 2; ++r) {
    for (uint64_t p = 0; p < table_->num_pages(); ++p) {
      EXPECT_EQ(pool.FetchPage(*table_, p).value(), table_->page(p));
    }
  }
  EXPECT_EQ(pool.misses(), table_->num_pages());
  EXPECT_EQ(pool.hits(), table_->num_pages());
}

TEST_F(BufferPoolTest, BoundedPoolEvicts) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 4 * kPageSize);
  for (int r = 0; r < 2; ++r) {
    for (uint64_t p = 0; p < 10; ++p) pool.FetchPage(*table_, p);
  }
  // With capacity 4 over a 10-page cyclic scan, every access misses.
  EXPECT_EQ(pool.misses(), 20u);
  EXPECT_EQ(pool.hits(), 0u);
}

TEST_F(BufferPoolTest, ClearForgetsResidency) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 0);
  pool.FetchPage(*table_, 0);
  pool.Clear();
  pool.FetchPage(*table_, 0);
  EXPECT_EQ(pool.misses(), 1u);  // counters were reset by Clear
}

TEST_F(BufferPoolTest, CursorsIterateAllPages) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 0);
  TableScanCursor cursor(table_.get(), &pool);
  size_t pages = 0;
  while (cursor.Next().value() != nullptr) ++pages;
  EXPECT_EQ(pages, table_->num_pages());

  CircularPageCursor circular(table_.get(), &pool, /*start_page=*/7);
  std::set<uint64_t> seen;
  for (size_t i = 0; i < table_->num_pages(); ++i) {
    EXPECT_EQ(circular.position(), (7 + i) % table_->num_pages());
    const Page* p = circular.Next().value();
    ASSERT_NE(p, nullptr);
    seen.insert(p->seq());
  }
  EXPECT_EQ(seen.size(), table_->num_pages());  // full wrap, each page once
}

// ----------------------------------------------------------- failure paths

/// Arms the process-wide injector for one test and guarantees it is
/// disarmed (and all schedules forgotten) on every exit path.
class ScopedFaults {
 public:
  explicit ScopedFaults(uint64_t seed) { FaultInjector::Global().Enable(seed); }
  ~ScopedFaults() { FaultInjector::Global().Disable(); }
};

TEST_F(BufferPoolTest, FetchPageRejectsOutOfRangePageId) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 0);
  const Result<const Page*> r = pool.FetchPage(*table_, table_->num_pages());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BufferPoolTest, PersistentTransientFaultSurfacesAndLeavesNoResidency) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 0);
  ScopedFaults faults(7);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.every_nth = 1;  // every read fails
  spec.message = "short read: 512 of 32768 bytes";
  FaultInjector::Global().Arm("storage.read", spec);
  const Result<const Page*> r = pool.FetchPage(*table_, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("short read"), std::string::npos);
  EXPECT_GE(pool.read_errors(), 1u);
  // Admit-after-read: the failed fetch must not have left false residency —
  // once the fault clears, the page is fetched as a miss, not a hit.
  FaultInjector::Global().ClearSite("storage.read");
  ASSERT_TRUE(pool.FetchPage(*table_, 0).ok());
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST_F(BufferPoolTest, CursorRetriesAbsorbOneShotTransientFault) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 0);
  ScopedFaults faults(7);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.one_shot_at = 1;  // first read fails once, the retry succeeds
  FaultInjector::Global().Arm("storage.read", spec);
  TableScanCursor cursor(table_.get(), &pool);
  const Result<const Page*> r = cursor.Next();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), table_->page(0));
  EXPECT_GE(cursor.retry_stats().retries.load(), 1u);
  EXPECT_EQ(cursor.retry_stats().giveups.load(), 0u);
}

TEST_F(BufferPoolTest, AllocFailureReturnsResourceExhausted) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 4 * kPageSize);
  ScopedFaults faults(7);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.code = StatusCode::kResourceExhausted;  // frame allocation failure
  spec.one_shot_at = 1;
  FaultInjector::Global().Arm("bufferpool.alloc", spec);
  const Result<const Page*> r = pool.FetchPage(*table_, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // The failure is a Status, not an abort, and the pool stays usable.
  EXPECT_TRUE(pool.FetchPage(*table_, 0).ok());
}

TEST_F(BufferPoolTest, CircularCursorSkipsPermanentlyPoisonedPage) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 0);
  ScopedFaults faults(7);
  FaultSpec spec;
  spec.kind = FaultKind::kPermanent;
  spec.one_shot_at = 1;
  FaultInjector::Global().Arm("storage.read", spec);
  CircularPageCursor cursor(table_.get(), &pool, /*start_page=*/2);
  const Result<const Page*> r = cursor.Next();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  // Permanent errors are not retried...
  EXPECT_EQ(cursor.retry_stats().retries.load(), 0u);
  // ...and the cursor has advanced past the poisoned page: the next call
  // serves the following page instead of failing forever.
  EXPECT_EQ(cursor.position(), 3u);
  const Result<const Page*> next = cursor.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), table_->page(3));
}

TEST_F(BufferPoolTest, LatencyFaultDelaysButSucceeds) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 0);
  ScopedFaults faults(7);
  FaultSpec spec;
  spec.kind = FaultKind::kLatency;
  spec.latency_nanos = 20'000'000;  // 20 ms
  spec.one_shot_at = 1;
  FaultInjector::Global().Arm("storage.read", spec);
  WallTimer t;
  ASSERT_TRUE(pool.FetchPage(*table_, 0).ok());
  EXPECT_GT(t.ElapsedSeconds(), 0.015);
}

TEST_F(BufferPoolTest, KeyRangeRestrictsFaultToTargetPages) {
  StorageDevice dev({.memory_resident = true});
  BufferPool pool(&dev, 0);
  ScopedFaults faults(7);
  // The storage.read key is (table_id << 48) | page_idx; restricting the
  // spec to page 5 of table 3 leaves every other page untouched.
  FaultSpec spec;
  spec.kind = FaultKind::kPermanent;
  spec.every_nth = 1;
  spec.key_lo = (uint64_t{3} << 48) | 5;
  spec.key_hi = (uint64_t{3} << 48) | 5;
  FaultInjector::Global().Arm("storage.read", spec);
  for (uint64_t p = 0; p < table_->num_pages(); ++p) {
    const Result<const Page*> r = pool.FetchPage(*table_, p);
    if (p == 5) {
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
    } else {
      EXPECT_TRUE(r.ok());
    }
  }
}

}  // namespace
}  // namespace sdw::storage
