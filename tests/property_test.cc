// Property tests over randomized query structures: star queries with
// randomly generated predicate shapes (random columns, operators,
// disjunction widths, dimension subsets) must produce identical results on
// every engine configuration and the Volcano oracle. This explores corners
// of the predicate/plan space that the fixed SSB templates never hit.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baseline/volcano.h"
#include "cjoin/filter.h"
#include "cjoin/pipeline.h"
#include "cjoin/shared_agg.h"
#include "cjoin/tuple_batch.h"
#include "common/bitmap.h"
#include "common/rng.h"
#include "core/engine.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "test_util.h"

namespace sdw {
namespace {

using core::CommModel;
using core::EngineConfig;
using testing::SharedSsbDb;
using testing::TestDb;

// Random atomic predicate on one of the (queryable) columns of `table`.
query::AtomicPred RandomAtom(const storage::Table* table, Rng* rng) {
  const storage::Schema& s = table->schema();
  // Restrict to columns with enough duplication to make predicates
  // interesting (skip wide uniques like names/addresses/phones).
  std::vector<size_t> candidates;
  for (size_t c = 0; c < s.num_columns(); ++c) {
    const std::string& n = s.column(c).name;
    if (n.find("name") != std::string::npos ||
        n.find("address") != std::string::npos ||
        n.find("phone") != std::string::npos ||
        n.find("date") == 0) {
      continue;
    }
    candidates.push_back(c);
  }
  const size_t col = candidates[rng->Index(candidates.size())];
  const auto op = static_cast<query::CompareOp>(rng->Index(6));
  if (s.column(col).type == storage::ColumnType::kChar) {
    // Sample a live value from the table so equality predicates can hit.
    const size_t row = rng->Index(table->num_rows());
    return query::AtomicPred::Str(s.column(col).name, op,
                                  std::string(s.GetChar(table->row(row), col)));
  }
  const size_t row = rng->Index(table->num_rows());
  const int64_t v = s.GetIntAny(table->row(row), col);
  return query::AtomicPred::Int(s.column(col).name, op, v);
}

query::Predicate RandomPredicate(const storage::Table* table, Rng* rng) {
  query::Predicate p;
  const size_t clauses = rng->Index(3);  // 0..2 (0 = always true)
  for (size_t c = 0; c < clauses; ++c) {
    std::vector<query::AtomicPred> clause;
    const size_t atoms = 1 + rng->Index(3);
    for (size_t a = 0; a < atoms; ++a) {
      clause.push_back(RandomAtom(table, rng));
    }
    p.AndAnyOf(std::move(clause));
  }
  return p;
}

// A random star query over a random subset of dimensions, with random
// predicates, random payload columns and random grouping.
query::StarQuery RandomStarQuery(const storage::Catalog& catalog, Rng* rng) {
  query::StarQuery q;
  q.fact_table = ssb::kLineorder;

  struct DimSpec {
    const char* table;
    const char* fk;
    const char* pk;
    const char* payload;  // a groupable payload column
  };
  const DimSpec specs[] = {
      {ssb::kSupplier, "lo_suppkey", "s_suppkey", "s_nation"},
      {ssb::kCustomer, "lo_custkey", "c_custkey", "c_region"},
      {ssb::kDate, "lo_orderdate", "d_datekey", "d_year"},
      {ssb::kPart, "lo_partkey", "p_partkey", "p_mfgr"},
  };
  for (const auto& spec : specs) {
    if (!rng->Bernoulli(0.6)) continue;
    const storage::Table* dim = catalog.MustGetTable(spec.table);
    query::DimJoin join;
    join.dim_table = spec.table;
    join.fact_fk_column = spec.fk;
    join.dim_pk_column = spec.pk;
    join.pred = RandomPredicate(dim, rng);
    if (rng->Bernoulli(0.7)) join.payload_columns.push_back(spec.payload);
    q.dims.push_back(std::move(join));
  }

  // Random fact predicate on quantity/discount.
  if (rng->Bernoulli(0.5)) {
    q.fact_pred.And(query::AtomicPred::Int(
        "lo_quantity",
        rng->Bernoulli(0.5) ? query::CompareOp::kLt : query::CompareOp::kGe,
        rng->Uniform(1, 50)));
  }

  // Group by the payload columns we carried (if any), plus an aggregate.
  for (const auto& d : q.dims) {
    for (const auto& p : d.payload_columns) q.group_by.push_back(p);
  }
  query::AggSpec agg;
  if (rng->Bernoulli(0.5)) {
    agg.kind = query::AggSpec::Kind::kSum;
    agg.col_a = "lo_revenue";
  } else {
    agg.kind = query::AggSpec::Kind::kCount;
  }
  agg.out_name = "m";
  q.aggregates.push_back(std::move(agg));
  if (!q.group_by.empty() && rng->Bernoulli(0.5)) {
    q.order_by.push_back({q.group_by.front(), rng->Bernoulli(0.5)});
  }
  return q;
}

class RandomQueryProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomQueryProperty, AllEnginesAgreeWithOracle) {
  TestDb* db = SharedSsbDb();
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);

  std::vector<query::StarQuery> queries;
  for (int i = 0; i < 4; ++i) {
    query::StarQuery q = RandomStarQuery(db->catalog, &rng);
    if (q.dims.empty()) continue;  // CJOIN needs at least one join
    queries.push_back(std::move(q));
  }
  if (queries.empty()) GTEST_SKIP() << "no joinable queries drawn";

  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  std::vector<query::ResultSet> expected;
  expected.reserve(queries.size());
  for (const auto& q : queries) expected.push_back(oracle.Execute(q));

  for (EngineConfig config :
       {EngineConfig::kQpipeSp, EngineConfig::kCjoin,
        EngineConfig::kCjoinSp}) {
    for (CommModel comm : {CommModel::kPull, CommModel::kPush}) {
      core::EngineOptions opts;
      opts.config = config;
      opts.comm = comm;
      opts.cjoin.max_queries = 32;
      core::Engine engine(&db->catalog, db->pool.get(), opts);
      const auto handles = engine.SubmitBatch(queries);
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_TRUE(handles[i].Wait().ok());
        EXPECT_EQ(query::DiffResults(expected[i], handles[i].result()), "")
            << core::EngineConfigName(config) << "/"
            << core::CommModelName(comm) << " query " << i << " sig "
            << queries[i].Signature();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryProperty, ::testing::Range(0, 10));

// Live-tuple mask invariants through the filter→distributor hot path: after
// a chain of filters, (a) a tuple is live iff its bitmap is non-empty, (b)
// the distributor's grouping covers exactly the live tuples — dead tuples
// never reach an output group, and the number of distinct distributed tuples
// equals the popcount of the live mask — and (c) every (slot, tuple) pair
// the grouping emits is backed by that tuple's bitmap bit.
class DistributorLiveMaskProperty : public ::testing::TestWithParam<int> {};

TEST_P(DistributorLiveMaskProperty, LiveMaskMatchesDistribution) {
  TestDb* db = SharedSsbDb();
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  const storage::Table* fact = db->catalog.MustGetTable(ssb::kLineorder);
  const storage::Schema& fs = fact->schema();
  constexpr size_t kSlots = 64;

  // Two filters with randomized per-slot predicates; unreferenced slots
  // pass. Batched admission: all of a filter's queries share one scan.
  cjoin::Filter f1(db->catalog.MustGetTable(ssb::kSupplier), "lo_suppkey",
                   "s_suppkey", 0, kSlots);
  cjoin::Filter f2(db->catalog.MustGetTable(ssb::kCustomer), "lo_custkey",
                   "c_custkey", 1, kSlots);
  f1.BindFactColumn(fs);
  f2.BindFactColumn(fs);
  std::vector<query::Predicate> preds(2 * kSlots);
  std::vector<cjoin::Filter::AdmitRequest> reqs1, reqs2;
  for (size_t s = 0; s < kSlots; ++s) {
    for (size_t which = 0; which < 2; ++which) {
      cjoin::Filter& f = which == 0 ? f1 : f2;
      if (!rng.Bernoulli(0.5)) {
        f.SetPass(static_cast<uint32_t>(s));
        continue;
      }
      query::Predicate& p = preds[which * kSlots + s];
      p.And(query::AtomicPred::Str(
          which == 0 ? "s_region" : "c_region", query::CompareOp::kEq,
          std::string(ssb::RegionName(rng.Index(5)))));
      (which == 0 ? reqs1 : reqs2)
          .push_back({static_cast<uint32_t>(s), &p});
    }
  }
  f1.AdmitQueryBatch(reqs1.data(), reqs1.size(), db->pool.get());
  f2.AdmitQueryBatch(reqs2.data(), reqs2.size(), db->pool.get());
  EXPECT_EQ(f1.admission_scans(), 1u);
  EXPECT_EQ(f2.admission_scans(), 1u);

  cjoin::FilterScratch fscratch;
  cjoin::DistributorScratch dscratch;
  const size_t pages = std::min<size_t>(fact->num_pages(), 8);
  for (size_t pi = 0; pi < pages; ++pi) {
    cjoin::TupleBatch batch;
    batch.fact_page = fact->SharePage(pi);
    batch.ResetFor(batch.fact_page->tuple_count(), /*words=*/1,
                   /*filters=*/2);
    bits::FillOnes(batch.bits.data(), batch.bits.size() * 64);
    f1.Process(&batch, &fscratch);
    f2.Process(&batch, &fscratch);

    // (a) live bit iff non-empty bitmap.
    for (uint32_t i = 0; i < batch.num_tuples; ++i) {
      ASSERT_EQ(batch.tuple_live(i),
                bits::Any(batch.tuple_bits(i), batch.words_per_tuple))
          << "page " << pi << " tuple " << i;
    }

    const size_t pairs = cjoin::DistributePartBatched(batch, &dscratch);
    std::set<uint32_t> distributed;
    size_t seen_pairs = 0;
    for (size_t g = 0; g < dscratch.num_groups(); ++g) {
      const uint32_t slot = dscratch.group_slot(g);
      for (size_t k = 0; k < dscratch.group_size(g); ++k) {
        const uint32_t i = dscratch.group_begin(g)[k];
        ++seen_pairs;
        distributed.insert(i);
        // (c) the pair is backed by the tuple's bitmap, and the tuple is
        // live — a dead tuple never reaches an output group.
        ASSERT_TRUE(batch.tuple_live(i)) << "dead tuple distributed";
        ASSERT_TRUE(bits::Test(batch.tuple_bits(i), slot));
      }
    }
    EXPECT_EQ(seen_pairs, pairs);

    // (b) distributed tuples == live tuples, exactly.
    const size_t live_count =
        bits::Popcount(batch.live_words(), bits::WordsFor(batch.num_tuples));
    EXPECT_EQ(distributed.size(), live_count) << "page " << pi;
    for (uint32_t i = 0; i < batch.num_tuples; ++i) {
      EXPECT_EQ(distributed.count(i) != 0, batch.tuple_live(i))
          << "page " << pi << " tuple " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributorLiveMaskProperty,
                         ::testing::Range(0, 6));

// Shared-aggregation slice invariant (the bitmap ∧ group property): for any
// member of a shared aggregation group, SliceSlot over the folded table must
// equal a direct aggregation of EXACTLY that member's qualifying tuples —
// live, bitmap bit set, fact predicate satisfied — computed here by brute
// force per tuple, with no batching, partials or bitmap keying involved.
class SharedAggSliceProperty : public ::testing::TestWithParam<int> {};

TEST_P(SharedAggSliceProperty, SliceEqualsQualifyingTuples) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 52711 + 3);
  const storage::Schema fs({storage::Schema::Int32("g"),
                            storage::Schema::Int32("v"),
                            storage::Schema::Double("d")});
  constexpr size_t kSlots = 96;  // straddles two bitmap words
  constexpr size_t kParts = 2;

  cjoin::SharedAggregator agg(kParts, bits::WordsFor(kSlots));
  cjoin::SharedAggregator::Group* g = agg.CreateGroup("prop");
  g->join_schema = fs;
  g->join_row_size = fs.tuple_size();
  g->moves = {{/*from_fact=*/true, 0, /*src_col=*/0, 0, 0, fs.tuple_size()}};
  g->group_cols = {0};
  g->aggs = {{query::AggSpec::Kind::kSum, 1, -1, -1, /*integer_exact=*/true,
              "s"},
             {query::AggSpec::Kind::kAvg, 2, -1, -1, false, "a"}};
  g->out_schema = storage::Schema({storage::Schema::Int32("g"),
                                   storage::Schema::Int64("s"),
                                   storage::Schema::Double("a")});
  g->key_width = fs.column(0).width();

  std::vector<query::Predicate::Bound> preds(kSlots);
  for (size_t s = 0; s < kSlots; ++s) {
    query::Predicate p;
    if (rng.Bernoulli(0.5)) {
      p.And(query::AtomicPred::Int(
          "v", static_cast<query::CompareOp>(rng.Index(6)),
          rng.Uniform(0, 50)));
    }
    preds[s] = p.Bind(fs);
    agg.AddMember(g, static_cast<uint32_t>(s), preds[s]);
  }

  // Fold random batches, retaining every batch for the brute-force pass.
  std::vector<cjoin::TupleBatch> history(4);
  cjoin::SharedAggregator::FoldScratch scratch;
  for (size_t b = 0; b < history.size(); ++b) {
    cjoin::TupleBatch& batch = history[b];
    const uint32_t n = static_cast<uint32_t>(rng.Uniform(0, 200));
    batch.fact_page = storage::Page::Make(fs.tuple_size());
    for (uint32_t i = 0; i < n; ++i) {
      std::byte* t = batch.fact_page->AppendTuple();
      fs.SetInt32(t, 0, static_cast<int32_t>(rng.Uniform(0, 5)));
      fs.SetInt32(t, 1, static_cast<int32_t>(rng.Uniform(0, 50)));
      fs.SetDouble(t, 2, rng.NextDouble());
    }
    batch.ResetFor(n, bits::WordsFor(kSlots), /*filters=*/1);
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t* tb = batch.tuple_bits(i);
      bits::Zero(tb, batch.words_per_tuple);
      for (size_t s = 0; s < kSlots; ++s) {
        if (rng.Bernoulli(0.4)) bits::Set(tb, s);
      }
      if (!bits::Any(tb, batch.words_per_tuple)) batch.kill_tuple(i);
    }
    agg.FoldBatch(g, batch, fs, nullptr, b % kParts,
                  /*preds_pre_applied=*/false, &scratch);
  }
  cjoin::SharedAggregator::MergePartials(g);

  for (size_t s = 0; s < kSlots; ++s) {
    cjoin::SharedAggregator::AccTable slice;
    cjoin::SharedAggregator::SliceSlot(*g, static_cast<uint32_t>(s), &slice);

    // Brute force: one accumulator table over exactly the qualifying tuples.
    cjoin::SharedAggregator::AccTable want;
    for (const cjoin::TupleBatch& batch : history) {
      for (uint32_t i = 0; i < batch.num_tuples; ++i) {
        if (!batch.tuple_live(i)) continue;
        if (!bits::Test(batch.tuple_bits(i), s)) continue;
        const std::byte* t = batch.fact_tuple(i);
        if (!preds[s].IsTrue() && !preds[s].Eval(fs, t)) continue;
        std::string key(reinterpret_cast<const char*>(t + fs.offset(0)),
                        fs.column(0).width());
        auto& accs = want[key];
        accs.resize(g->aggs.size());
        for (size_t a = 0; a < g->aggs.size(); ++a) {
          query::UpdateAcc(g->aggs[a], fs, t, &accs[a]);
        }
      }
    }

    ASSERT_EQ(slice.size(), want.size()) << "slot " << s;
    for (const auto& [key, accs] : want) {
      auto it = slice.find(key);
      ASSERT_NE(it, slice.end()) << "slot " << s;
      ASSERT_EQ(it->second.size(), accs.size());
      for (size_t a = 0; a < accs.size(); ++a) {
        EXPECT_EQ(it->second[a].i, accs[a].i) << "slot " << s << " agg " << a;
        EXPECT_EQ(it->second[a].count, accs[a].count)
            << "slot " << s << " agg " << a;
        EXPECT_NEAR(it->second[a].d, accs[a].d,
                    1e-9 * std::max(1.0, std::fabs(accs[a].d)))
            << "slot " << s << " agg " << a;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedAggSliceProperty,
                         ::testing::Range(0, 6));

// Mid-cycle detachment property: cancelling a random subset of the members
// of a live shared aggregation group (same-shape Q3.2 instances bound to one
// group) must never perturb the survivors — every uncancelled query still
// matches the oracle exactly.
class SharedAggCancelProperty : public ::testing::TestWithParam<int> {};

TEST_P(SharedAggCancelProperty, CancelNeverPerturbsSurvivors) {
  TestDb* db = SharedSsbDb();
  Rng rng(static_cast<uint64_t>(GetParam()) * 9851 + 17);

  const auto queries =
      ssb::SimilarQ32Workload(12, /*distinct_plans=*/3,
                              static_cast<uint64_t>(GetParam()) * 31 + 5);
  core::EngineOptions opts;
  opts.config = core::EngineConfig::kCjoin;
  opts.cjoin.max_queries = 32;
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  auto tickets = engine.SubmitBatch(queries);

  std::vector<bool> cancelled(queries.size(), false);
  for (size_t i = 0; i < tickets.size(); ++i) {
    if (rng.Bernoulli(0.4)) {
      tickets[i].Cancel();
      cancelled[i] = true;
    }
  }
  engine.WaitAll();

  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  for (size_t i = 0; i < tickets.size(); ++i) {
    const Status st = tickets[i].Wait();
    if (cancelled[i]) continue;  // a cancel may land before or after finish
    ASSERT_TRUE(st.ok()) << "survivor " << i << ": " << st.ToString();
    EXPECT_EQ(query::DiffResults(oracle.Execute(queries[i]),
                                 tickets[i].result()),
              "")
        << "survivor " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedAggCancelProperty,
                         ::testing::Range(0, 6));

// --------------------------------------------------- predicate containment

// Soundness oracle for query::PredicateContains: sweep every row of `table`
// and refute the claim "every tuple satisfying p2 satisfies p1" if any row
// disagrees. The prover must never claim containment this sweep refutes —
// that is the invariant the folding admission pass stands on.
bool SweepContains(const storage::Table* table, const query::Predicate& p1,
                   const query::Predicate& p2) {
  const storage::Schema& schema = table->schema();
  const query::Predicate::Bound b1 = p1.Bind(schema);
  const query::Predicate::Bound b2 = p2.Bind(schema);
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (b2.Eval(schema, table->row(r)) && !b1.Eval(schema, table->row(r))) {
      return false;
    }
  }
  return true;
}

class PredicateContainsProperty : public ::testing::TestWithParam<int> {};

TEST_P(PredicateContainsProperty, NeverClaimsWhatASweepRefutes) {
  TestDb* db = SharedSsbDb();
  Rng rng(static_cast<uint64_t>(GetParam()) * 7717 + 3);

  const char* tables[] = {ssb::kSupplier, ssb::kCustomer, ssb::kDate,
                          ssb::kPart};
  size_t claims = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const storage::Table* table =
        db->catalog.MustGetTable(tables[rng.Index(4)]);
    query::Predicate p1 = RandomPredicate(table, &rng);
    query::Predicate p2;
    if (rng.Bernoulli(0.5)) {
      // Biased pair: p2 strengthens p1 with extra clauses, so the claim
      // p2 ⊆ p1 is semantically true and often provable — this drives the
      // prover down its "claim" path instead of vacuous conservative-false.
      p2 = p1;
      const size_t extra = 1 + rng.Index(2);
      for (size_t e = 0; e < extra; ++e) p2.And(RandomAtom(table, &rng));
    } else {
      p2 = RandomPredicate(table, &rng);
    }
    const bool claimed = query::PredicateContains(p1, p2);
    if (claimed) {
      ++claims;
      EXPECT_TRUE(SweepContains(table, p1, p2))
          << "unsound claim (trial " << trial
          << "): p1=" << p1.Signature() << " p2=" << p2.Signature();
    }
  }
  // The prover is allowed to be conservative, not vacuous: the biased pairs
  // must produce real claims or this test proves nothing.
  EXPECT_GT(claims, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateContainsProperty,
                         ::testing::Range(0, 8));

// The exact narrowing shapes the folding workload relies on (IN-list subset
// and interval inclusion) must be PROVABLE — conservative-false here would
// silently disable folding for its headline use case.
TEST(PredicateContains, ProvesWorkloadNarrowing) {
  // Wide: s_nation IN {A,B,C}; narrow: s_nation IN {A,C}.
  query::Predicate wide_in;
  wide_in.AndAnyOf({query::AtomicPred::Str("s_nation", query::CompareOp::kEq,
                                           "UNITED STATES"),
                    query::AtomicPred::Str("s_nation", query::CompareOp::kEq,
                                           "FRANCE"),
                    query::AtomicPred::Str("s_nation", query::CompareOp::kEq,
                                           "CHINA")});
  query::Predicate narrow_in;
  narrow_in.AndAnyOf({query::AtomicPred::Str("s_nation", query::CompareOp::kEq,
                                             "UNITED STATES"),
                      query::AtomicPred::Str("s_nation", query::CompareOp::kEq,
                                             "CHINA")});
  EXPECT_TRUE(query::PredicateContains(wide_in, narrow_in));
  EXPECT_FALSE(query::PredicateContains(narrow_in, wide_in));

  // Wide: d_year in [1992, 1998]; narrow: [1994, 1995].
  query::Predicate wide_year;
  wide_year.And(query::AtomicPred::Int("d_year", query::CompareOp::kGe, 1992));
  wide_year.And(query::AtomicPred::Int("d_year", query::CompareOp::kLe, 1998));
  query::Predicate narrow_year;
  narrow_year.And(
      query::AtomicPred::Int("d_year", query::CompareOp::kGe, 1994));
  narrow_year.And(
      query::AtomicPred::Int("d_year", query::CompareOp::kLe, 1995));
  EXPECT_TRUE(query::PredicateContains(wide_year, narrow_year));
  EXPECT_FALSE(query::PredicateContains(narrow_year, wide_year));

  // Reflexivity on the provable shapes, and TRUE's special role: the empty
  // predicate contains everything; nothing non-trivial contains TRUE.
  EXPECT_TRUE(query::PredicateContains(wide_in, wide_in));
  EXPECT_TRUE(query::PredicateContains(wide_year, wide_year));
  const query::Predicate always_true;
  EXPECT_TRUE(query::PredicateContains(always_true, wide_year));
  EXPECT_TRUE(query::PredicateContains(always_true, always_true));
  EXPECT_FALSE(query::PredicateContains(wide_year, always_true));
}

}  // namespace
}  // namespace sdw
