// Cancellation stress test for the QueryTicket lifecycle across all three
// execution layers, verified against the Volcano oracle:
//  * the acceptance scenario: a 64-query CJOIN batch with half the tickets
//    cancelled mid-flight — survivors produce exactly the oracle's results,
//    every ticket's Wait() returns (no future left unsatisfied), and every
//    cancelled slot is recycled by the next batch (slot_recycles stat);
//  * CJOIN-SP host cancelled while satellites are live: the shared packet
//    keeps producing (the host merely detaches) and every satellite's
//    result still matches the oracle;
//  * cancellation racing the admission pause (pending-query rejection) and
//    cancellation after completion (a no-op: the ticket stays kOk);
//  * QPipe configurations under both communication models: cancel half a
//    batch, survivors stay correct (consumer-driven cascade through
//    PageSink::Abandoned);
//  * row_limit streaming truncation (kOk with exactly the requested rows)
//    and CJOIN slot-capacity exhaustion (kResourceExhausted, deterministic);
//  * a deadline that expires before submission (rejected pre-wiring).
//
// Run under ASAN and TSAN in CI: the cancel/complete races are the point.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "baseline/volcano.h"
#include "common/macros.h"
#include "core/engine.h"
#include "core/query_ticket.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "storage/buffer_pool.h"
#include "storage/storage_device.h"

using namespace sdw;

namespace {

struct Db {
  storage::Catalog catalog;
  std::unique_ptr<storage::StorageDevice> device;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<baseline::VolcanoEngine> oracle;
};

std::unique_ptr<Db> MakeDb() {
  auto db = std::make_unique<Db>();
  ssb::SsbOptions opts;
  opts.scale_factor = 0.01;
  ssb::BuildSsbDatabase(&db->catalog, opts);
  db->device =
      std::make_unique<storage::StorageDevice>(storage::DeviceOptions{});
  db->pool = std::make_unique<storage::BufferPool>(db->device.get(), 0);
  db->oracle =
      std::make_unique<baseline::VolcanoEngine>(&db->catalog, db->pool.get());
  return db;
}

core::EngineOptions Opts(core::EngineConfig config,
                         core::CommModel comm = core::CommModel::kPull,
                         size_t max_queries = 64) {
  core::EngineOptions o;
  o.config = config;
  o.comm = comm;
  o.cjoin.max_queries = max_queries;
  return o;
}

/// Cancelled tickets may still win the race and complete: their status must
/// be kOk or kCancelled, and a kOk result must be the full correct result.
void CheckCancelledOrCorrect(Db* db, const query::StarQuery& q,
                             const core::QueryTicket& t, const char* what) {
  const Status s = t.Wait();
  if (s.ok()) {
    const std::string diff =
        query::DiffResults(db->oracle->Execute(q), t.result());
    SDW_CHECK_MSG(diff.empty(), "%s: completed-despite-cancel mismatch: %s",
                  what, diff.c_str());
  } else {
    SDW_CHECK_MSG(s.code() == StatusCode::kCancelled,
                  "%s: cancelled ticket finished %s", what,
                  s.ToString().c_str());
  }
}

void CheckSurvivor(Db* db, const query::StarQuery& q,
                   const core::QueryTicket& t, const char* what) {
  const Status s = t.Wait();
  SDW_CHECK_MSG(s.ok(), "%s: survivor finished %s", what,
                s.ToString().c_str());
  const std::string diff =
      query::DiffResults(db->oracle->Execute(q), t.result());
  SDW_CHECK_MSG(diff.empty(), "%s: survivor mismatch: %s", what, diff.c_str());
}

// The acceptance scenario. 64 concurrent CJOIN queries fill the slot
// capacity exactly; half are cancelled mid-flight. Survivors must match the
// oracle, every Wait() must return, and a follow-up batch must recycle the
// retired slots (free pool is empty, so every admission recycles).
void TestCjoinBatch64HalfCancelled(Db* db) {
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(core::EngineConfig::kCjoin));
  const auto queries = ssb::RandomQ32Workload(64, 6400);
  const auto tickets = engine.SubmitBatch(queries);
  // Cancel strictly mid-flight: after the (single) admission epoch placed
  // all 64 queries in slots — which also makes the free pool deterministically
  // empty for the recycling assertion below.
  while (engine.cjoin_stats().queries_admitted < 64) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (size_t i = 0; i < tickets.size(); i += 2) tickets[i].Cancel();
  for (size_t i = 0; i < tickets.size(); ++i) {
    if (i % 2 == 0) {
      CheckCancelledOrCorrect(db, queries[i], tickets[i], "batch64");
    } else {
      CheckSurvivor(db, queries[i], tickets[i], "batch64");
    }
  }
  engine.WaitAll();  // every slot retired (cancelled ones at a pause)

  const cjoin::CjoinStats after = engine.cjoin_stats();
  SDW_CHECK_MSG(after.queries_cancelled + after.queries_completed == 64,
                "batch64 accounting: %llu cancelled + %llu completed != 64",
                static_cast<unsigned long long>(after.queries_cancelled),
                static_cast<unsigned long long>(after.queries_completed));

  // Slot recycling: batch 1 consumed all 64 free slots, so this batch can
  // only be admitted from recycled (dirty) ones.
  const auto queries2 = ssb::RandomQ32Workload(8, 6500);
  const auto tickets2 = engine.SubmitBatch(queries2);
  for (size_t i = 0; i < tickets2.size(); ++i) {
    CheckSurvivor(db, queries2[i], tickets2[i], "batch64-recycle");
  }
  engine.WaitAll();
  const cjoin::CjoinStats recycled = engine.cjoin_stats();
  SDW_CHECK_MSG(recycled.slot_recycles >= 8,
                "freed slots were not reused: %llu recycles",
                static_cast<unsigned long long>(recycled.slot_recycles));
}

// CJOIN-SP: 6 identical queries share one CJOIN packet (1 host + 5
// satellites). Cancelling the host must not starve the satellites — the
// registry keeps the packet alive until every consumer detaches.
void TestHostCancelWithLiveSatellites(Db* db) {
  for (const auto comm : {core::CommModel::kPull, core::CommModel::kPush}) {
    core::Engine engine(&db->catalog, db->pool.get(),
                        Opts(core::EngineConfig::kCjoinSp, comm));
    const auto queries = ssb::SimilarQ32Workload(6, 1, 6600);
    const auto tickets = engine.SubmitBatch(queries);
    tickets[0].Cancel();  // the first query wired is the packet's host
    CheckCancelledOrCorrect(db, queries[0], tickets[0], "host-cancel");
    for (size_t i = 1; i < tickets.size(); ++i) {
      CheckSurvivor(db, queries[i], tickets[i], "host-cancel satellite");
    }
    engine.WaitAll();
    SDW_CHECK(engine.cjoin_stats().queries_admitted == 1);
  }
}

// CJOIN-SP: cancelling EVERY consumer of a shared packet retires its slot
// early (all-detached group signal) and all waits return.
void TestAllConsumersCancelled(Db* db) {
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(core::EngineConfig::kCjoinSp));
  const auto queries = ssb::SimilarQ32Workload(4, 1, 6700);
  const auto tickets = engine.SubmitBatch(queries);
  for (const auto& t : tickets) t.Cancel();
  for (size_t i = 0; i < tickets.size(); ++i) {
    CheckCancelledOrCorrect(db, queries[i], tickets[i], "all-cancelled");
  }
  engine.WaitAll();
}

// Cancellation racing the admission pause: batch B is cancelled right after
// submission, while batch A keeps the pipeline busy — B's queries are
// either rejected while pending, retired after admission, or (rarely)
// complete. All waits must return with a sane status either way.
void TestCancelDuringAdmissionPause(Db* db) {
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(core::EngineConfig::kCjoin));
  const auto batch_a = ssb::RandomQ32Workload(4, 6800);
  const auto batch_b = ssb::RandomQ32Workload(4, 6900);
  const auto tickets_a = engine.SubmitBatch(batch_a);
  const auto tickets_b = engine.SubmitBatch(batch_b);
  for (const auto& t : tickets_b) t.Cancel();
  for (size_t i = 0; i < tickets_a.size(); ++i) {
    CheckSurvivor(db, batch_a[i], tickets_a[i], "pause-race A");
  }
  for (size_t i = 0; i < tickets_b.size(); ++i) {
    CheckCancelledOrCorrect(db, batch_b[i], tickets_b[i], "pause-race B");
  }
  engine.WaitAll();
}

// Cancel after completion is a no-op: the ticket keeps kOk and its result.
void TestCancelAfterCompletionIsNoOp(Db* db) {
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(core::EngineConfig::kCjoinSp));
  const query::StarQuery q = ssb::MakeQ32({});
  const auto ticket = engine.Submit(q);
  SDW_CHECK(ticket.Wait().ok());
  const size_t rows = ticket.result().num_rows();
  ticket.Cancel();
  SDW_CHECK(ticket.status().ok());
  SDW_CHECK(ticket.result().num_rows() == rows);
  const std::string diff =
      query::DiffResults(db->oracle->Execute(q), ticket.result());
  SDW_CHECK_MSG(diff.empty(), "post-cancel result changed: %s", diff.c_str());
}

// QPipe configurations: cancel half a batch under both communication
// models; survivors must stay correct through the SP sharing graph.
void TestQpipeCancelHalf(Db* db) {
  for (const auto config :
       {core::EngineConfig::kQpipe, core::EngineConfig::kQpipeSp}) {
    for (const auto comm : {core::CommModel::kPull, core::CommModel::kPush}) {
      core::Engine engine(&db->catalog, db->pool.get(), Opts(config, comm));
      const auto queries = ssb::SimilarQ32Workload(8, 2, 7000);
      const auto tickets = engine.SubmitBatch(queries);
      for (size_t i = 0; i < tickets.size(); i += 2) tickets[i].Cancel();
      for (size_t i = 0; i < tickets.size(); ++i) {
        if (i % 2 == 0) {
          CheckCancelledOrCorrect(db, queries[i], tickets[i], "qpipe-half");
        } else {
          CheckSurvivor(db, queries[i], tickets[i], "qpipe-half survivor");
        }
      }
      engine.WaitAll();
    }
  }
}

// row_limit: the drain truncates at exactly the requested row count,
// completes kOk, and (CJOIN) the detached slot retires early.
void TestRowLimitStreamingTruncation(Db* db) {
  // A high-selectivity query with thousands of result rows, so the limit
  // genuinely truncates the stream.
  const query::StarQuery q = ssb::SelectivityQ32Workload(1, 0.3, 7300)[0];
  SDW_CHECK(db->oracle->Execute(q).num_rows() > 100);
  for (const auto config :
       {core::EngineConfig::kQpipeSp, core::EngineConfig::kCjoin}) {
    core::Engine engine(&db->catalog, db->pool.get(), Opts(config));
    core::SubmitOptions opts;
    opts.row_limit = 100;
    const auto ticket = engine.Submit(q, opts);
    const Status s = ticket.Wait();
    SDW_CHECK_MSG(s.ok(), "row-limited query finished %s",
                  s.ToString().c_str());
    SDW_CHECK(ticket.result().num_rows() == 100);
    SDW_CHECK(ticket.rows_so_far() == 100);
    engine.WaitAll();
  }
}

// Slot-capacity exhaustion: 4 concurrent queries against capacity 2 land in
// one admission epoch — exactly 2 admitted, 2 rejected kResourceExhausted,
// and the rejected tickets' waits return (the silent-hang fix).
void TestSlotCapacityRejection(Db* db) {
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(core::EngineConfig::kCjoin, core::CommModel::kPull,
                           /*max_queries=*/2));
  const auto queries = ssb::RandomQ32Workload(4, 7100);
  const auto tickets = engine.SubmitBatch(queries);
  size_t ok = 0, rejected = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    const Status s = tickets[i].Wait();
    if (s.ok()) {
      ++ok;
      CheckSurvivor(db, queries[i], tickets[i], "capacity survivor");
    } else {
      SDW_CHECK_MSG(s.code() == StatusCode::kResourceExhausted,
                    "over-capacity query finished %s", s.ToString().c_str());
      ++rejected;
    }
  }
  SDW_CHECK_MSG(ok == 2 && rejected == 2,
                "capacity 2 with 4 queries: %zu ok, %zu rejected", ok,
                rejected);
  engine.WaitAll();
  SDW_CHECK(engine.cjoin_stats().queries_rejected == 2);
}

// A deadline that already expired rejects at submission, before any packet
// wiring, and metrics still carry the submission timestamp.
void TestExpiredDeadlineRejectedAtSubmit(Db* db) {
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(core::EngineConfig::kQpipeSp));
  core::SubmitOptions opts;
  opts.deadline_nanos = 1;
  const auto tickets = engine.SubmitBatch(ssb::RandomQ32Workload(3, 7200), opts);
  for (const auto& t : tickets) {
    SDW_CHECK(t.Wait().code() == StatusCode::kDeadlineExceeded);
    SDW_CHECK(t.metrics().submit_nanos > 0);
  }
  engine.WaitAll();
}

}  // namespace

int main() {
  auto db = MakeDb();
  TestCjoinBatch64HalfCancelled(db.get());
  TestHostCancelWithLiveSatellites(db.get());
  TestAllConsumersCancelled(db.get());
  TestCancelDuringAdmissionPause(db.get());
  TestCancelAfterCompletionIsNoOp(db.get());
  TestQpipeCancelHalf(db.get());
  TestRowLimitStreamingTruncation(db.get());
  TestSlotCapacityRejection(db.get());
  TestExpiredDeadlineRejectedAtSubmit(db.get());
  std::printf("cancellation_stress_test: OK\n");
  return 0;
}
