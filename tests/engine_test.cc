// Tests for the QPipe staged engine and the core facade: SP attach
// accounting, sharing behavior per configuration, policy rules, and harness
// metrics plumbing.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/sharing_policy.h"
#include "harness/driver.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "test_util.h"

namespace sdw {
namespace {

using core::CommModel;
using core::EngineConfig;
using testing::SharedSsbDb;
using testing::SharedTpchDb;
using testing::TestDb;

core::EngineOptions Opts(EngineConfig config,
                         CommModel comm = CommModel::kPull) {
  core::EngineOptions o;
  o.config = config;
  o.comm = comm;
  o.cjoin.max_queries = 64;
  return o;
}

TEST(QpipeEngine, NoSharingConfigNeverShares) {
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(), Opts(EngineConfig::kQpipe));
  const auto handles =
      engine.SubmitBatch(ssb::SimilarQ32Workload(6, 1, 50));
  for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());
  const qpipe::SpCounters c = engine.sp_counters();
  EXPECT_EQ(c.scan_shares, 0u);
  EXPECT_EQ(c.join_shares_total(), 0u);
}

TEST(QpipeEngine, CsSharesScansButNotJoins) {
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(EngineConfig::kQpipeCs));
  const auto handles = engine.SubmitBatch(ssb::SimilarQ32Workload(6, 1, 51));
  for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());
  const qpipe::SpCounters c = engine.sp_counters();
  EXPECT_GT(c.scan_shares, 0u);
  EXPECT_EQ(c.join_shares_total(), 0u);
}

TEST(QpipeEngine, SpSharesJoinsByDepth) {
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(EngineConfig::kQpipeSp));
  // Two distinct plans x several instances: the deepest shared stage is the
  // full 3-join sub-plan for instances of the same plan.
  const auto handles = engine.SubmitBatch(ssb::SimilarQ32Workload(8, 2, 52));
  for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());
  const qpipe::SpCounters c = engine.sp_counters();
  EXPECT_EQ(c.join_shares_by_depth[2], 6u);  // 8 queries - 2 hosts
}

TEST(QpipeEngine, PartialOverlapSharesShallowerJoin) {
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(EngineConfig::kQpipeSp));
  // Same supplier nation and year range, different customer nation: only
  // the first join (fact ⋈ supplier) is common.
  ssb::Q32Params a, b;
  a.cust_nation = 1;
  b.cust_nation = 2;
  const auto handles =
      engine.SubmitBatch({ssb::MakeQ32(a), ssb::MakeQ32(b)});
  for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());
  const qpipe::SpCounters c = engine.sp_counters();
  EXPECT_EQ(c.join_shares_by_depth[0], 1u);
  EXPECT_EQ(c.join_shares_by_depth[1], 0u);
  EXPECT_EQ(c.join_shares_by_depth[2], 0u);
}

TEST(QpipeEngine, WopClosedForLateArrivals) {
  // Submitting sequentially with waits: the host finishes before the
  // second arrives; no sharing, correct results (verified by integration
  // tests), and counters stay at zero.
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(EngineConfig::kQpipeSp));
  const auto q = ssb::SimilarQ32Workload(1, 1, 53)[0];
  auto h1 = engine.Submit(q);
  ASSERT_TRUE(h1.Wait().ok());
  auto h2 = engine.Submit(q);
  ASSERT_TRUE(h2.Wait().ok());
  EXPECT_EQ(engine.sp_counters().join_shares_total(), 0u);
}

TEST(QpipeEngine, AggregationSpWhenEnabled) {
  // SP at the aggregation stage is off in the paper's experiments but
  // implemented; identical full queries then share at the agg/sort level.
  TestDb* db = SharedSsbDb();
  core::EngineOptions opts = Opts(EngineConfig::kQpipeSp);
  opts.sp_agg = true;
  opts.sp_sort = true;
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  const auto handles = engine.SubmitBatch(ssb::SimilarQ32Workload(4, 1, 54));
  for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());
  const qpipe::SpCounters c = engine.sp_counters();
  EXPECT_EQ(c.sort_shares, 3u);  // topmost stage absorbs the satellites
}

TEST(CjoinEngine, AdmissionBatchesSingleSubmissionBatch) {
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(), Opts(EngineConfig::kCjoin));
  const auto handles = engine.SubmitBatch(ssb::RandomQ32Workload(6, 55));
  for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());
  const cjoin::CjoinStats stats = engine.cjoin_stats();
  EXPECT_EQ(stats.queries_admitted, 6u);
  // All queries arrive before the pipeline starts: one admission batch.
  EXPECT_EQ(stats.admission_batches, 1u);
}

TEST(CjoinEngine, SharesOnlyIdenticalPackets) {
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(EngineConfig::kCjoinSp));
  // 3 distinct plans over 9 queries: 6 CJOIN packets are satellites.
  const auto handles = engine.SubmitBatch(ssb::SimilarQ32Workload(9, 3, 56));
  for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());
  EXPECT_EQ(engine.cjoin_shares(), 6u);
  EXPECT_EQ(engine.cjoin_stats().queries_admitted, 3u);
}

TEST(SharingPolicy, Table1Rules) {
  core::WorkloadProfile low;
  low.concurrent_queries = 2;
  low.hardware_contexts = 24;
  const auto d1 = core::RecommendSharing(low);
  EXPECT_EQ(d1.config, EngineConfig::kQpipeSp);
  EXPECT_TRUE(d1.shared_scans);

  core::WorkloadProfile high;
  high.concurrent_queries = 256;
  high.hardware_contexts = 24;
  const auto d2 = core::RecommendSharing(high);
  EXPECT_EQ(d2.config, EngineConfig::kCjoinSp);
  EXPECT_TRUE(d2.shared_scans);

  core::WorkloadProfile oltp;
  oltp.concurrent_queries = 256;
  oltp.hardware_contexts = 24;
  oltp.scan_heavy = false;
  EXPECT_EQ(core::RecommendSharing(oltp).config, EngineConfig::kQpipeSp);
}

TEST(Harness, RunBatchCollectsMetricsAndVerifies) {
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(EngineConfig::kQpipeSp));
  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  const auto queries = ssb::RandomQ32Workload(4, 57);
  const harness::RunMetrics m =
      harness::RunBatch(&engine, db->pool.get(), queries, true, &oracle);
  EXPECT_EQ(m.completed, 4u);
  EXPECT_EQ(m.response_seconds.count(), 4u);
  EXPECT_GT(m.makespan_seconds, 0.0);
  EXPECT_GT(m.response_seconds.Mean(), 0.0);
  EXPECT_LE(m.response_seconds.Max(), m.makespan_seconds * 1.5);
}

TEST(Harness, ClosedLoopCompletesQueries) {
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(EngineConfig::kQpipeSp));
  const auto m = harness::RunClosedLoop(
      &engine, db->pool.get(),
      [](size_t i) {
        return ssb::RandomQ32Workload(1, 60 + i)[0];
      },
      /*clients=*/2, /*duration_seconds=*/0.5);
  EXPECT_GT(m.completed, 0u);
  EXPECT_GT(m.throughput_qph, 0.0);
}

TEST(Harness, VolcanoBackendRunsThroughGenericDrivers) {
  // The Volcano comparator is an ExecutorClient too: the SAME RunBatch that
  // measures the integrated engine drives it (one thread per query).
  TestDb* db = SharedSsbDb();
  baseline::VolcanoEngine volcano(&db->catalog, db->pool.get());
  const auto m = harness::RunBatch(&volcano, db->pool.get(),
                                   ssb::RandomQ32Workload(3, 58));
  EXPECT_EQ(m.completed, 3u);
  EXPECT_EQ(m.response_seconds.count(), 3u);
}

TEST(Harness, ClosedLoopClientDeadlineReportsTailBehavior) {
  // A 1 ns per-client deadline expires every request at admission: the run
  // reports them as expired, not completed, and nothing hangs.
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(EngineConfig::kQpipeSp));
  harness::ClosedLoopOptions opts;
  opts.clients = 2;
  opts.duration_seconds = 0.2;
  opts.client_deadline_nanos = 1;
  const auto m = harness::RunClosedLoop(
      &engine, db->pool.get(),
      [](size_t i) { return ssb::RandomQ32Workload(1, 70 + i)[0]; }, opts);
  EXPECT_EQ(m.completed, 0u);
  EXPECT_GT(m.expired, 0u);
  EXPECT_EQ(m.response_seconds.count(), 0u);
}

TEST(Device, DiskResidentEngineChargesIo) {
  // Disk-mode run reports a nonzero read rate; circular scans make a
  // multi-query batch read each table roughly once.
  auto db = testing::MakeSsbDb(0.01, 42, /*memory_resident=*/false);
  core::Engine engine(&db->catalog, db->pool.get(),
                      Opts(EngineConfig::kQpipeCs));
  const auto queries = ssb::RandomQ32Workload(4, 59);
  const auto m = harness::RunBatch(&engine, db->pool.get(), queries);
  EXPECT_GT(m.device_bytes, 0u);
  const size_t total = db->catalog.total_bytes();
  EXPECT_LT(m.device_bytes, total * 2);  // ~one pass, not 4 passes
}

}  // namespace
}  // namespace sdw
