// Differential tests for Int64HashTable::ProbeBatch against the scalar
// ForEachMatch path, across hits, misses, rebuilds and ragged batch sizes.

#include "qpipe/hash_table.h"

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

using namespace sdw;
using qpipe::HashKey;
using qpipe::Int64HashTable;

static void ProbeAndCompare(const Int64HashTable& ht,
                            const std::vector<int64_t>& keys) {
  std::vector<uint64_t> batched(keys.size());
  ht.ProbeBatch(keys.data(), keys.size(), batched.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    // Scalar reference: first match in chain order.
    uint64_t expected = Int64HashTable::kMissValue;
    bool first = true;
    ht.ForEachMatch(HashKey(keys[i]), keys[i], [&](uint64_t v) {
      if (first) {
        expected = v;
        first = false;
      }
    });
    SDW_CHECK_MSG(batched[i] == expected,
                  "probe %zu key %lld: batched %llu != scalar %llu", i,
                  static_cast<long long>(keys[i]),
                  static_cast<unsigned long long>(batched[i]),
                  static_cast<unsigned long long>(expected));
  }
}

static void TestEmptyTable() {
  Int64HashTable ht;
  ht.Build();
  const std::vector<int64_t> keys = {0, 1, -5, 1 << 20};
  std::vector<uint64_t> out(keys.size(), 0);
  ht.ProbeBatch(keys.data(), keys.size(), out.data());
  for (uint64_t v : out) SDW_CHECK(v == Int64HashTable::kMissValue);
  ht.ProbeBatch(keys.data(), 0, out.data());  // n == 0 is a no-op
}

static void TestUniqueKeys() {
  Rng rng(123);
  Int64HashTable ht;
  std::unordered_map<int64_t, uint64_t> model;
  for (uint64_t v = 0; v < 5000; ++v) {
    const int64_t key = rng.Uniform(-1000000, 1000000);
    if (model.count(key) != 0) continue;
    model[key] = v;
    ht.Insert(HashKey(key), key, v);
  }
  ht.Build();

  // Ragged batch sizes around the prefetch group size.
  for (size_t n : {size_t{1}, size_t{15}, size_t{16}, size_t{17}, size_t{100},
                   size_t{1000}}) {
    std::vector<int64_t> keys;
    for (size_t i = 0; i < n; ++i) {
      keys.push_back(rng.Uniform(-1100000, 1100000));
    }
    ProbeAndCompare(ht, keys);
    // Cross-check against the model for exactness, not just agreement.
    std::vector<uint64_t> out(n);
    ht.ProbeBatch(keys.data(), n, out.data());
    for (size_t i = 0; i < n; ++i) {
      auto it = model.find(keys[i]);
      const uint64_t expected =
          it == model.end() ? Int64HashTable::kMissValue : it->second;
      SDW_CHECK(out[i] == expected);
    }
  }
}

static void TestIncrementalRebuild() {
  // CJOIN filters re-Build after every admission pause; ProbeBatch must see
  // entries added across rebuilds.
  Int64HashTable ht;
  std::vector<int64_t> keys;
  uint64_t next_value = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 200; ++i) {
      const int64_t key = static_cast<int64_t>(next_value) * 3 + 1;
      ht.Insert(HashKey(key), key, next_value++);
      keys.push_back(key);
    }
    ht.Build();
    std::vector<int64_t> probe = keys;
    probe.push_back(-1);  // guaranteed miss
    ProbeAndCompare(ht, probe);
  }
  SDW_CHECK(ht.size() == 1000);
}

int main() {
  TestEmptyTable();
  TestUniqueKeys();
  TestIncrementalRebuild();
  std::printf("hash_table_test: OK\n");
  return 0;
}
