// The full SSB query flight (all 13 queries) must run correctly on every
// engine configuration — including the 4-join Q4.x profit queries, which
// exercise SUM(a-b) aggregates and the widest GQP.

#include <gtest/gtest.h>

#include <set>

#include "baseline/volcano.h"
#include "core/engine.h"
#include "ssb/ssb_flight.h"
#include "test_util.h"

namespace sdw {
namespace {

using core::EngineConfig;
using testing::SharedSsbDb;
using testing::TestDb;

TEST(FullFlight, ThirteenDistinctTemplates) {
  const auto flight = ssb::FullFlight();
  ASSERT_EQ(flight.size(), 13u);
  std::set<std::string> sigs;
  for (const auto& q : flight) sigs.insert(q.Signature());
  EXPECT_EQ(sigs.size(), 13u);
  // Flight shapes: Q1.x one join, Q2.x/Q3.x three joins, Q4.x four joins.
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(flight[i].dims.size(), 1u);
  for (size_t i = 3; i < 10; ++i) EXPECT_EQ(flight[i].dims.size(), 3u);
  for (size_t i = 10; i < 13; ++i) EXPECT_EQ(flight[i].dims.size(), 4u);
}

TEST(FullFlight, EveryQueryMatchesOracleOnEveryEngine) {
  TestDb* db = SharedSsbDb();
  const auto flight = ssb::FullFlight();
  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  std::vector<query::ResultSet> expected;
  expected.reserve(flight.size());
  for (const auto& q : flight) expected.push_back(oracle.Execute(q));

  for (EngineConfig config :
       {EngineConfig::kQpipe, EngineConfig::kQpipeSp, EngineConfig::kCjoin,
        EngineConfig::kCjoinSp}) {
    core::EngineOptions opts;
    opts.config = config;
    opts.cjoin.max_queries = 32;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto handles = engine.SubmitBatch(flight);
    for (size_t i = 0; i < flight.size(); ++i) {
      ASSERT_TRUE(handles[i].Wait().ok());
      EXPECT_EQ(query::DiffResults(expected[i], handles[i].result()), "")
          << "Q-flight index " << i << " under "
          << core::EngineConfigName(config);
    }
  }
}

TEST(FullFlight, ProfitQueriesUseExactIntegerAccumulation) {
  // SUM(lo_revenue - lo_supplycost) over int64 columns must be exact, so
  // the planner types the output column as int64.
  TestDb* db = SharedSsbDb();
  const query::Planner planner(&db->catalog);
  const auto plan = planner.BuildPlan(ssb::MakeQ41());
  const auto& out = plan->out_schema;
  EXPECT_EQ(out.column(out.MustColumnIndex("profit")).type,
            storage::ColumnType::kInt64);
}

TEST(FullFlight, FlightWorkloadCoversAllTemplatesAndRuns) {
  TestDb* db = SharedSsbDb();
  const auto workload = ssb::FullFlightWorkload(13, 9);
  ASSERT_EQ(workload.size(), 13u);

  core::EngineOptions opts;
  opts.config = EngineConfig::kCjoinSp;
  opts.cjoin.max_queries = 32;
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  const auto handles = engine.SubmitBatch(workload);
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_TRUE(handles[i].Wait().ok());
    EXPECT_EQ(query::DiffResults(oracle.Execute(workload[i]),
                                 handles[i].result()),
              "")
        << "workload query " << i;
  }
  // The GQP grew to cover all four dimensions.
  EXPECT_EQ(engine.cjoin_pipeline()->num_filters(), 4u);
}

}  // namespace
}  // namespace sdw
