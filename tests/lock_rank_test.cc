// Runtime lock-rank checker tests (common/lock_rank.h, common/mutex.h).
//
// With SDW_LOCK_RANK_CHECKS on (the default in non-Release builds) the
// checker must catch rank inversions, recursive acquisition and waits on a
// non-innermost lock — observed here through a throwing violation handler,
// which the checker invokes BEFORE touching the underlying mutex so the
// offending Lock() unwinds cleanly. With checks off, the same binary proves
// the checker is fully compiled out: sdw::Mutex is layout-identical to
// std::mutex and the lock path records nothing.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/macros.h"
#include "common/mutex.h"

namespace {

using sdw::CondVar;
using sdw::Mutex;
using sdw::MutexLock;
using sdw::lock_rank::HeldDepthForTest;
using sdw::lock_rank::Rank;
using sdw::lock_rank::SetViolationHandlerForTest;
using sdw::lock_rank::Violation;

#if SDW_LOCK_RANK_CHECKS

struct ViolationError {
  Violation v;
};

void ThrowingHandler(const Violation& v) { throw ViolationError{v}; }

/// Runs `fn` expecting exactly one violation of `kind`; returns it.
template <typename Fn>
Violation ExpectViolation(Violation::Kind kind, Fn&& fn) {
  auto prev = SetViolationHandlerForTest(&ThrowingHandler);
  bool caught = false;
  Violation got{};
  try {
    fn();
  } catch (const ViolationError& e) {
    caught = true;
    got = e.v;
  }
  SetViolationHandlerForTest(prev);
  SDW_CHECK_MSG(caught, "expected a lock-rank violation, none fired");
  SDW_CHECK(got.kind == kind);
  return got;
}

/// Runs `fn` expecting NO violation.
template <typename Fn>
void ExpectClean(Fn&& fn) {
  auto prev = SetViolationHandlerForTest(&ThrowingHandler);
  try {
    fn();
  } catch (const ViolationError&) {
    SDW_CHECK_MSG(false, "unexpected lock-rank violation");
  }
  SetViolationHandlerForTest(prev);
}

void TestCorrectOrderPasses() {
  Mutex low(Rank::kThreadPool);
  Mutex high(Rank::kSpRegistry);
  ExpectClean([&] {
    MutexLock a(low);
    MutexLock b(high);
    SDW_CHECK(HeldDepthForTest() == 2);
  });
  SDW_CHECK(HeldDepthForTest() == 0);
}

void TestOrderInversionDetected() {
  Mutex low(Rank::kThreadPool);
  Mutex high(Rank::kSpRegistry);
  const Violation v = ExpectViolation(Violation::Kind::kOrder, [&] {
    MutexLock b(high);
    MutexLock a(low);  // 30 after 50: inversion
  });
  SDW_CHECK(v.rank == static_cast<int>(Rank::kThreadPool));
  SDW_CHECK(v.depth == 1);
  SDW_CHECK(v.held[0].rank == static_cast<int>(Rank::kSpRegistry));
  SDW_CHECK(HeldDepthForTest() == 0);  // the offending lock was never taken
}

void TestEqualRankDetected() {
  // Two locks of the same rank may never nest (>= is a violation, not >).
  Mutex a(Rank::kChannel);
  Mutex b(Rank::kChannel);
  ExpectViolation(Violation::Kind::kOrder, [&] {
    MutexLock la(a);
    MutexLock lb(b);
  });
  SDW_CHECK(HeldDepthForTest() == 0);
}

void TestRecursionDetected() {
  Mutex mu(Rank::kLeaf);
  const Violation v = ExpectViolation(Violation::Kind::kRecursion, [&] {
    MutexLock outer(mu);
    mu.Lock();  // same mutex, same thread
  });
  SDW_CHECK(v.mutex == &mu);
  // Unranked mutexes are exempt from ordering but NOT from recursion.
  Mutex plain;
  ExpectViolation(Violation::Kind::kRecursion, [&] {
    MutexLock outer(plain);
    plain.Lock();
  });
  SDW_CHECK(HeldDepthForTest() == 0);
}

void TestUnrankedExemptFromOrder() {
  Mutex ranked(Rank::kStorageDevice);
  Mutex plain;  // unranked: out of the hierarchy
  ExpectClean([&] {
    MutexLock a(ranked);
    MutexLock b(plain);  // unranked under ranked: fine
  });
  ExpectClean([&] {
    MutexLock a(plain);
    MutexLock b(ranked);  // ranked under unranked: fine
  });
  SDW_CHECK(HeldDepthForTest() == 0);
}

void TestTryLockExemptFromOrder() {
  Mutex low(Rank::kThreadPool);
  Mutex high(Rank::kSpRegistry);
  ExpectClean([&] {
    MutexLock b(high);
    // A try-lock cannot deadlock on an inversion, so taking the lower rank
    // is allowed...
    SDW_CHECK(low.TryLock());
    SDW_CHECK(HeldDepthForTest() == 2);  // ...but it still counts as held.
    low.Unlock();
  });
  SDW_CHECK(HeldDepthForTest() == 0);
}

void TestRelockableMutexLock() {
  // ThreadPool::WorkerLoop pattern: unlock, run outside, re-lock.
  Mutex mu(Rank::kThreadPool);
  ExpectClean([&] {
    MutexLock lock(mu);
    lock.Unlock();
    SDW_CHECK(HeldDepthForTest() == 0);
    lock.Lock();
    SDW_CHECK(HeldDepthForTest() == 1);
  });
  SDW_CHECK(HeldDepthForTest() == 0);
}

void TestWaitOnInnermostLockOk() {
  Mutex low(Rank::kThreadPool);
  Mutex high(Rank::kSpRegistry);
  CondVar cv;
  bool ready = false;  // guarded by high
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    MutexLock lb(high);
    ready = true;
    cv.NotifyAll();
  });
  ExpectClean([&] {
    MutexLock la(low);
    MutexLock lb(high);
    while (!ready) cv.Wait(high);  // innermost lock: legal
    // The wait re-acquired and re-recorded the lock.
    SDW_CHECK(HeldDepthForTest() == 2);
  });
  setter.join();
  SDW_CHECK(HeldDepthForTest() == 0);
}

void TestWaitOnNonInnermostLockReports() {
  // Waiting on `low` while still holding the higher-ranked `high` releases
  // only `low`; the re-acquire after the wait is a fresh acquisition below
  // `high` — an inversion the checker reports on wake-up.
  Mutex low(Rank::kThreadPool);
  Mutex high(Rank::kSpRegistry);
  CondVar cv;
  std::atomic<bool> stop{false};
  std::thread notifier([&] {
    while (!stop.load()) {
      cv.NotifyAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  ExpectViolation(Violation::Kind::kOrder, [&] {
    MutexLock la(low);
    MutexLock lb(high);
    cv.Wait(low);  // low is NOT the innermost lock
  });
  stop.store(true);
  notifier.join();
  SDW_CHECK(HeldDepthForTest() == 0);
}

void TestHeldStackOverflowDetected() {
  constexpr int kMax = Violation::kMaxHeld;
  // Unranked so ordering cannot fire first; distinct so recursion cannot.
  std::vector<std::unique_ptr<Mutex>> mus;
  for (int i = 0; i < kMax + 1; ++i) mus.push_back(std::make_unique<Mutex>());
  ExpectViolation(Violation::Kind::kOverflow, [&] {
    for (auto& mu : mus) mu->Lock();
  });
  // The overflowing acquisition never locked; release the rest.
  for (int i = 0; i < kMax; ++i) mus[i]->Unlock();
  SDW_CHECK(HeldDepthForTest() == 0);
}

#else  // !SDW_LOCK_RANK_CHECKS

// Release-mode proof that the checker costs nothing: no extra state in the
// mutex (also static_assert'd in mutex.h) and no tracking on the lock path.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "rank checking must add no per-mutex state when disabled");

void TestCheckerCompiledOut() {
  Mutex mu(Rank::kThreadPool);
  MutexLock lock(mu);
  SDW_CHECK(HeldDepthForTest() == 0);  // nothing recorded
}

void TestInversionIgnoredWhenDisabled() {
  Mutex low(Rank::kThreadPool);
  Mutex high(Rank::kSpRegistry);
  MutexLock b(high);
  MutexLock a(low);  // would report with checks on; must be silent here
  SDW_CHECK(HeldDepthForTest() == 0);
}

#endif  // SDW_LOCK_RANK_CHECKS

}  // namespace

int main() {
#if SDW_LOCK_RANK_CHECKS
  TestCorrectOrderPasses();
  TestOrderInversionDetected();
  TestEqualRankDetected();
  TestRecursionDetected();
  TestUnrankedExemptFromOrder();
  TestTryLockExemptFromOrder();
  TestRelockableMutexLock();
  TestWaitOnInnermostLockOk();
  TestWaitOnNonInnermostLockReports();
  TestHeldStackOverflowDetected();
  std::printf("lock_rank_test: all checks passed (checker ON)\n");
#else
  TestCheckerCompiledOut();
  TestInversionIgnoredWhenDisabled();
  std::printf("lock_rank_test: all checks passed (checker compiled out)\n");
#endif
  return 0;
}
