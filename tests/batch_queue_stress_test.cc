// Stress and semantics tests for the ring-buffer BatchQueue:
//  * multi-producer / multi-consumer delivery with no loss or duplication,
//  * FIFO order per producer stream under a single consumer,
//  * Put-after-Close reports the drop (returns false),
//  * Take drains enqueued batches after Close, then returns nullptr,
//  * drop reports after a mid-stream Close rebalance pipeline-style
//    in-flight accounting exactly (delivered + dropped == produced),
//  * the precise notify protocol holds quiescent waiters asleep: zero
//    futile wakeups while the queue is idle (no timed-wait backstop).

#include "cjoin/tuple_batch.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/macros.h"

using namespace sdw;
using cjoin::BatchPool;
using cjoin::BatchPtr;
using cjoin::BatchQueue;
using cjoin::TupleBatch;

static BatchPtr MakeBatch(uint64_t id) {
  auto b = std::make_shared<TupleBatch>();
  b->page_index = id;
  return b;
}

static void TestSingleThreadFifo() {
  BatchQueue q(4);
  for (uint64_t i = 0; i < 4; ++i) SDW_CHECK(q.Put(MakeBatch(i)));
  for (uint64_t i = 0; i < 4; ++i) {
    BatchPtr b = q.Take();
    SDW_CHECK(b != nullptr && b->page_index == i);
  }
}

static void TestPutAfterCloseReportsDrop() {
  BatchQueue q(4);
  SDW_CHECK(q.Put(MakeBatch(1)));
  q.Close();
  // The drop must be visible to the caller so in-flight accounting can be
  // rebalanced (the seed silently swallowed the batch).
  SDW_CHECK(!q.Put(MakeBatch(2)));
  // Close still drains what was enqueued before it.
  BatchPtr b = q.Take();
  SDW_CHECK(b != nullptr && b->page_index == 1);
  SDW_CHECK(q.Take() == nullptr);
  SDW_CHECK(q.Take() == nullptr);  // idempotent after drain
}

static void TestBlockedPutWakesOnClose() {
  BatchQueue q(2);
  SDW_CHECK(q.Put(MakeBatch(0)));
  SDW_CHECK(q.Put(MakeBatch(1)));
  std::atomic<int> result{-1};
  std::thread blocked([&] {
    // Queue is full: this blocks until Close, then must report the drop.
    result.store(q.Put(MakeBatch(2)) ? 1 : 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  SDW_CHECK(result.load() == -1);  // still blocked
  q.Close();
  blocked.join();
  SDW_CHECK(result.load() == 0);
}

static void TestMpmcStress() {
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 4;
  constexpr uint64_t kPerProducer = 20000;
  BatchQueue q(8);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        SDW_CHECK(q.Put(MakeBatch(p * kPerProducer + i)));
      }
    });
  }

  std::vector<std::vector<uint64_t>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &received, c] {
      while (BatchPtr b = q.Take()) received[c].push_back(b->page_index);
    });
  }

  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  // Every id delivered exactly once.
  std::vector<uint64_t> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  SDW_CHECK_MSG(all.size() == kProducers * kPerProducer,
                "delivered %zu of %llu batches", all.size(),
                static_cast<unsigned long long>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (uint64_t i = 0; i < all.size(); ++i) SDW_CHECK(all[i] == i);
}

static void TestPostCloseDropRebalance() {
  // Mirrors CjoinPipeline's in-flight accounting around Put's drop report
  // (ForgetDroppedBatch): every Put is preceded by an in-flight increment; a
  // drop (Put returning false after Close) must rebalance it, and consumers
  // decrement per delivered batch. After a mid-stream Close with producers
  // still blocked on a full ring, the counter must return to zero and every
  // batch must be either delivered or reported dropped — none silently
  // swallowed.
  constexpr size_t kProducers = 3;
  constexpr uint64_t kPerProducer = 200;
  BatchQueue q(4);
  std::atomic<int> in_flight{0};
  std::atomic<uint64_t> delivered{0};
  std::atomic<uint64_t> dropped{0};

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &in_flight, &dropped, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        in_flight.fetch_add(1);
        if (!q.Put(MakeBatch(p * kPerProducer + i))) {
          dropped.fetch_add(1);
          in_flight.fetch_sub(1);  // the pipeline's rebalance step
        }
      }
    });
  }
  // A deliberately slow consumer keeps the ring full so Close lands while
  // producers are blocked in Put (the blocked-Put drop path) and while many
  // batches are still unsubmitted (the fast post-Close drop path).
  std::thread consumer([&q, &in_flight, &delivered] {
    while (BatchPtr b = q.Take()) {
      delivered.fetch_add(1);
      in_flight.fetch_sub(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  for (auto& t : producers) t.join();
  consumer.join();

  SDW_CHECK_MSG(in_flight.load() == 0,
                "in-flight accounting leaked %d after drop rebalance",
                in_flight.load());
  SDW_CHECK_MSG(delivered.load() + dropped.load() == kProducers * kPerProducer,
                "delivered %llu + dropped %llu != produced %llu",
                static_cast<unsigned long long>(delivered.load()),
                static_cast<unsigned long long>(dropped.load()),
                static_cast<unsigned long long>(kProducers * kPerProducer));
  // The Close raced a saturated pipeline: both outcomes must have occurred.
  SDW_CHECK(delivered.load() > 0);
  SDW_CHECK(dropped.load() > 0);
}

static void TestQuiescentWaitersNeverWakeSpuriously() {
  // The precise-notify protocol (no timed-wait backstop): waiters parked on
  // a quiescent queue must sleep indefinitely — zero futile wakeups — until
  // real traffic or Close arrives. With the old 1 ms timed-wait backstop
  // these windows would observe hundreds of timeout wakeups.

  {  // Consumers parked on an empty queue.
    BatchQueue q(2);
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
      consumers.emplace_back([&q] { SDW_CHECK(q.Take() == nullptr); });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const uint64_t futile = q.futile_wakeups();
    SDW_CHECK_MSG(futile == 0,
                  "empty quiescent queue: %llu futile wakeups (want 0)",
                  static_cast<unsigned long long>(futile));
    q.Close();
    for (auto& t : consumers) t.join();
  }

  {  // Producers parked on a full ring.
    BatchQueue q(2);
    SDW_CHECK(q.Put(MakeBatch(0)));
    SDW_CHECK(q.Put(MakeBatch(1)));
    std::thread p1([&q] { SDW_CHECK(!q.Put(MakeBatch(2))); });
    std::thread p2([&q] { SDW_CHECK(!q.Put(MakeBatch(3))); });
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const uint64_t futile = q.futile_wakeups();
    SDW_CHECK_MSG(futile == 0,
                  "full quiescent queue: %llu futile wakeups (want 0)",
                  static_cast<unsigned long long>(futile));
    q.Close();  // blocked Puts report their drop
    p1.join();
    p2.join();
    SDW_CHECK(q.Take() != nullptr);
    SDW_CHECK(q.Take() != nullptr);
    SDW_CHECK(q.Take() == nullptr);
  }
}

static void TestBatchPoolRecycling() {
  BatchPool pool(2);
  SDW_CHECK(pool.misses() == 0 && pool.hits() == 0);
  BatchPtr a = pool.Acquire();
  BatchPtr b = pool.Acquire();
  SDW_CHECK(pool.misses() == 2);
  TupleBatch* a_raw = a.get();
  a->bits.resize(512);
  pool.Release(std::move(a));
  BatchPtr a2 = pool.Acquire();
  SDW_CHECK(pool.hits() == 1);
  SDW_CHECK(a2.get() == a_raw);            // same object recycled...
  SDW_CHECK(a2->bits.capacity() >= 512);   // ...with its capacity intact
  // A still-referenced batch must not be recycled.
  BatchPtr alias = b;
  pool.Release(std::move(b));
  SDW_CHECK(pool.Acquire().get() != alias.get());
}

int main() {
  TestSingleThreadFifo();
  TestPutAfterCloseReportsDrop();
  TestBlockedPutWakesOnClose();
  TestMpmcStress();
  TestPostCloseDropRebalance();
  TestQuiescentWaitersNeverWakeSpuriously();
  TestBatchPoolRecycling();
  std::printf("batch_queue_stress_test: OK\n");
  return 0;
}
