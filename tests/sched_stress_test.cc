// End-to-end scheduling stress suite for the core::Scheduler refactor:
//
//  A. CJOIN admission priority ordering — at one admission pause with more
//     pending queries than free slots, the scarce slots go to the highest
//     priorities, FIFO within a level (arrival breaks ties), and the rest
//     are rejected kResourceExhausted. With priority_admission off the same
//     pause admits in arrival order (the seed behavior).
//  B. Shared-packet priority inheritance — CJOIN-SP with ONE query slot: a
//     low-priority host whose satellite attached at high priority outbids a
//     medium-priority rival inside the same admission pause; flipping the
//     scheduler to FIFO flips the outcome. Results verified against the
//     Volcano oracle.
//  C. Blocked-drain deadline — over a slow simulated device, an
//     empty-result query's drain blocks in Next() with no page or EOS
//     coming; the timer wheel must fire the deadline promptly (the ticket
//     completes kDeadlineExceeded in ~deadline time, far below the scan
//     cycle the seed would have waited for).
//  D. Mixed-priority closed loop — structural check of the harness driver's
//     two-class mode (per-class stats populated, queue-wait recorded).
//
// Runs under ASAN and TSAN in CI; every wait is bounded by the ctest
// timeout so a scheduling deadlock fails fast instead of hanging.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline/volcano.h"
#include "cjoin/pipeline.h"
#include "common/macros.h"
#include "common/timing.h"
#include "core/engine.h"
#include "harness/driver.h"
#include "query/plan.h"
#include "query/result.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "storage/buffer_pool.h"
#include "storage/storage_device.h"

using namespace sdw;

namespace {

/// Sink that drops all output (these tests assert scheduling outcomes, not
/// tuples — except where the Volcano oracle is consulted).
class NullSink : public core::PageSink {
 public:
  bool Put(storage::PagePtr) override { return true; }
  void Close() override {}
};

struct Db {
  storage::Catalog catalog;
  std::unique_ptr<storage::StorageDevice> device;
  std::unique_ptr<storage::BufferPool> pool;
};

std::unique_ptr<Db> MakeDb(double sf, storage::DeviceOptions dev_opts = {}) {
  auto db = std::make_unique<Db>();
  ssb::SsbOptions ssb_opts;
  ssb_opts.scale_factor = sf;
  ssb::BuildSsbDatabase(&db->catalog, ssb_opts);
  db->device = std::make_unique<storage::StorageDevice>(dev_opts);
  db->pool = std::make_unique<storage::BufferPool>(db->device.get(), 0);
  return db;
}

// ---------------------------------------------------- A: admission ordering

void TestAdmissionPriorityOrdering(Db* db, bool priority_admission) {
  cjoin::CjoinOptions opts;
  opts.max_queries = 4;  // scarce: 8 pending will compete for 4 slots
  opts.priority_admission = priority_admission;
  cjoin::CjoinPipeline pipeline(&db->catalog, db->pool.get(),
                                db->catalog.MustGetTable(ssb::kLineorder),
                                opts);
  const query::Planner planner(&db->catalog);

  // Priorities in arrival order; with 4 slots the priority policy admits
  // the three 9s plus the FIRST 5 (arrival breaks the tie among 5s), while
  // FIFO admits simply the first four arrivals.
  const std::vector<int> priorities = {5, 9, 0, 5, 9, 1, 5, 9};
  const std::vector<query::StarQuery> queries =
      ssb::RandomQ32Workload(priorities.size(), /*seed=*/71);

  std::vector<std::shared_ptr<core::QueryLifecycle>> lives;
  std::vector<cjoin::CjoinPipeline::Submission> subs;
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t done = 0;
  // Terminal status per query, recorded by on_complete (the direct-pipeline
  // completion signal; the qpipe drain, absent here, is what would Finish
  // the lifecycle of a successful query).
  std::vector<Status> finals(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    core::SubmitOptions so;
    so.priority = priorities[i];
    auto life = std::make_shared<core::QueryLifecycle>(i + 1, so);
    life->set_submit_nanos(NowNanos());
    lives.push_back(life);
    cjoin::CjoinPipeline::Submission sub;
    sub.q = queries[i];
    sub.out_schema = planner.JoinOutputSchema(queries[i]);
    sub.sink = std::make_shared<NullSink>();
    sub.life = life;
    sub.on_complete = [&, i](const Status& s) {
      std::unique_lock<std::mutex> lock(done_mu);
      finals[i] = s;
      ++done;
      done_cv.notify_all();
    };
    subs.push_back(std::move(sub));
  }
  pipeline.SubmitMany(std::move(subs));
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done == queries.size(); });
  }
  pipeline.WaitIdle();

  std::vector<bool> admitted(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (finals[i].ok()) {
      admitted[i] = true;
    } else {
      SDW_CHECK_MSG(finals[i].code() == StatusCode::kResourceExhausted,
                    "query %zu: unexpected status %s", i,
                    finals[i].ToString().c_str());
    }
  }
  const std::vector<bool> expect_priority = {true,  true,  false, false,
                                             true,  false, false, true};
  const std::vector<bool> expect_fifo = {true,  true,  true,  true,
                                         false, false, false, false};
  const auto& expect = priority_admission ? expect_priority : expect_fifo;
  for (size_t i = 0; i < queries.size(); ++i) {
    SDW_CHECK_MSG(admitted[i] == expect[i],
                  "%s admission: query %zu (priority %d) %s but expected %s",
                  priority_admission ? "priority" : "fifo", i, priorities[i],
                  admitted[i] ? "admitted" : "rejected",
                  expect[i] ? "admitted" : "rejected");
  }
  const auto stats = pipeline.stats();
  SDW_CHECK(stats.queries_admitted == 4);
  SDW_CHECK(stats.queries_rejected == 4);
}

// ------------------------------------------------ B: priority inheritance

void TestSharedPacketPriorityInheritance(Db* db, bool priority_enabled) {
  core::EngineOptions opts;
  opts.config = core::EngineConfig::kCjoinSp;
  opts.cjoin.max_queries = 1;  // ONE slot: the admission pause must choose
  opts.sched.priority_enabled = priority_enabled;
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());

  ssb::Q32Params pa;  // the shared plan (host + satellite)
  ssb::Q32Params pb;  // the rival
  pb.cust_nation = 10;
  pb.supp_nation = 11;
  const query::StarQuery qa = ssb::MakeQ32(pa);
  const query::StarQuery qb = ssb::MakeQ32(pb);

  // Arrival order: rival (5) first, then the host (0), then the satellite
  // (9) which attaches to the host inside the same batch. With priority
  // inheritance the host bids max(0, 9) = 9 and wins the only slot; under
  // FIFO the rival's earlier arrival wins and the host+satellite are
  // rejected.
  std::vector<core::SubmitRequest> requests(3);
  requests[0].q = qb;
  requests[0].opts.priority = 5;
  requests[1].q = qa;
  requests[1].opts.priority = 0;
  requests[2].q = qa;
  requests[2].opts.priority = 9;
  auto tickets = engine.SubmitRequests(requests);
  const Status sb = tickets[0].Wait();
  const Status sa_host = tickets[1].Wait();
  const Status sa_sat = tickets[2].Wait();
  engine.WaitAll();

  SDW_CHECK_MSG(engine.cjoin_shares() == 1,
                "expected exactly one satellite attach, saw %llu",
                static_cast<unsigned long long>(engine.cjoin_shares()));
  if (priority_enabled) {
    SDW_CHECK_MSG(sa_host.ok() && sa_sat.ok(),
                  "inheritance: boosted host lost the slot (host %s, sat %s)",
                  sa_host.ToString().c_str(), sa_sat.ToString().c_str());
    SDW_CHECK(sb.code() == StatusCode::kResourceExhausted);
    // Both consumers of the shared packet must see the oracle's rows.
    const query::ResultSet expected = oracle.Execute(qa);
    for (size_t i : {size_t{1}, size_t{2}}) {
      const std::string diff =
          query::DiffResults(expected, tickets[i].result());
      SDW_CHECK_MSG(diff.empty(), "shared result mismatch: %s", diff.c_str());
    }
  } else {
    SDW_CHECK_MSG(sb.ok(), "fifo: first arrival should win (%s)",
                  sb.ToString().c_str());
    SDW_CHECK(sa_host.code() == StatusCode::kResourceExhausted);
    SDW_CHECK(sa_sat.code() == StatusCode::kResourceExhausted);
  }
}

// ------------------------------------------- C: blocked-drain deadline gap

void TestBlockedDrainDeadlineFiresViaWheel() {
  // Slow device: ~3 MB/s sequential, so one circular-scan cycle over the
  // SF-0.01 fact table takes seconds of simulated wall time.
  storage::DeviceOptions dev;
  dev.memory_resident = false;
  dev.seq_bandwidth_mbps = 3.0;
  dev.seek_latency_us = 0.0;
  auto db = MakeDb(0.01, dev);

  core::EngineOptions opts;
  opts.config = core::EngineConfig::kCjoin;
  core::Engine engine(&db->catalog, db->pool.get(), opts);

  // An empty-result query: the date predicate matches no dimension row, so
  // the drain sees NO page and NO EOS until the scan cycle ends — exactly
  // the gap where the seed could only time out on page arrival.
  ssb::Q32Params p;
  p.year_lo = 3000;
  p.year_hi = 3001;
  const query::StarQuery empty_q = ssb::MakeQ32(p);

  core::SubmitOptions so;
  const int64_t kDeadlineNanos = 250'000'000;  // 250 ms
  so.deadline_nanos = NowNanos() + kDeadlineNanos;
  const int64_t t0 = NowNanos();
  auto ticket = engine.Submit(empty_q, so);
  const Status s = ticket.Wait();
  const double waited = static_cast<double>(NowNanos() - t0) * 1e-9;
  engine.WaitAll();

  SDW_CHECK_MSG(s.code() == StatusCode::kDeadlineExceeded,
                "expected DEADLINE_EXCEEDED, got %s", s.ToString().c_str());
  // The wheel fires within one tick (1 ms); allow generous scheduling slack
  // but stay far below the multi-second scan cycle the seed would need.
  SDW_CHECK_MSG(waited >= 0.25, "completed before the deadline (%.3f s)",
                waited);
  SDW_CHECK_MSG(waited < 1.2,
                "deadline took %.3f s — the wheel did not unblock the drain",
                waited);
  std::printf("  blocked drain unblocked %.1f ms after its 250 ms deadline\n",
              (waited - 0.25) * 1e3);

  // Metrics split: the expired query never left the queue-wait... it DID
  // run (admitted) — run_start must be set and ordered.
  const auto m = ticket.metrics();
  SDW_CHECK(m.run_start_nanos >= m.submit_nanos);
  SDW_CHECK(m.finish_nanos >= m.run_start_nanos);

  // Sanity: without a deadline the same query completes Ok and empty
  // (second cycle reads through the now-warm buffer pool, so this is fast).
  auto ok_ticket = engine.Submit(empty_q);
  SDW_CHECK(ok_ticket.Wait().ok());
  SDW_CHECK(ok_ticket.result().num_rows() == 0);
  engine.WaitAll();
}

// ------------------------------------------- D: mixed-priority closed loop

void TestMixedPriorityClosedLoop(Db* db) {
  core::EngineOptions opts;
  opts.config = core::EngineConfig::kCjoin;
  core::Engine engine(&db->catalog, db->pool.get(), opts);

  harness::ClosedLoopOptions loop;
  loop.clients = 4;
  loop.high_priority_clients = 1;
  loop.duration_seconds = 0.3;
  const auto queries = ssb::RandomQ32Workload(16, /*seed=*/5);
  const auto m = harness::RunClosedLoop(
      &engine, db->pool.get(),
      [&](size_t i) { return queries[i % queries.size()]; }, loop);

  SDW_CHECK(m.completed > 0);
  SDW_CHECK_MSG(!m.response_seconds_high.empty(),
                "high-priority class recorded no completions");
  SDW_CHECK(!m.response_seconds_low.empty());
  SDW_CHECK(m.response_seconds_high.count() + m.response_seconds_low.count() ==
            m.completed);
  // Queue wait is recorded per completed query and can never exceed the
  // response time.
  SDW_CHECK(m.queue_wait_seconds.count() == m.completed);
  SDW_CHECK(m.queue_wait_seconds.Max() <= m.response_seconds.Max() + 1e-9);
}

}  // namespace

int main() {
  auto db = MakeDb(0.01);
  std::printf("A: CJOIN admission priority ordering (priority)\n");
  TestAdmissionPriorityOrdering(db.get(), /*priority_admission=*/true);
  std::printf("A: CJOIN admission ordering (seed FIFO)\n");
  TestAdmissionPriorityOrdering(db.get(), /*priority_admission=*/false);
  std::printf("B: shared-packet priority inheritance (scheduler on)\n");
  TestSharedPacketPriorityInheritance(db.get(), /*priority_enabled=*/true);
  std::printf("B: shared-packet inheritance flipped off (seed FIFO)\n");
  TestSharedPacketPriorityInheritance(db.get(), /*priority_enabled=*/false);
  std::printf("C: blocked-drain deadline fires via the timer wheel\n");
  TestBlockedDrainDeadlineFiresViaWheel();
  std::printf("D: mixed-priority closed loop\n");
  TestMixedPriorityClosedLoop(db.get());
  std::printf("OK\n");
  return 0;
}
