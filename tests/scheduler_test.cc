// Unit tests for the scheduling primitives behind core::Scheduler:
//  * PriorityRunQueue — priority ordering, FIFO stability within a level,
//    aging against starvation, dynamic (inheritance) providers, and the
//    FIFO degradation switch;
//  * ThreadPool on the priority run queue — capped pools pop by priority,
//    and boosting a queued task's dynamic priority reorders it (the
//    mechanism behind shared-packet priority inheritance);
//  * TimerWheel — expiry-latency bound, never-early firing, cancellation,
//    hierarchical cascading across level horizons, and a concurrent
//    schedule/cancel/fire stress run (ASAN+TSAN clean).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include <functional>

#include "common/macros.h"
#include "common/rng.h"
#include "common/run_queue.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/timer_wheel.h"
#include "common/timing.h"
#include "core/scheduler.h"

using namespace sdw;

namespace {

// ------------------------------------------------------------ run queue

void TestRunQueuePriorityOrder() {
  RunQueueOptions opts;
  opts.aging_nanos = 0;  // pure priority for determinism
  PriorityRunQueue q(opts);
  std::vector<int> order;
  // Tags: (priority). Arrival: a(0), b(5), c(1), d(5), e(0).
  q.Push([&] { order.push_back(0); }, 0);
  q.Push([&] { order.push_back(1); }, 5);
  q.Push([&] { order.push_back(2); }, 1);
  q.Push([&] { order.push_back(3); }, 5);
  q.Push([&] { order.push_back(4); }, 0);
  while (!q.empty()) q.Pop()();
  // Priority 5 first (FIFO within the level: 1 before 3), then 1, then the
  // two zeros in arrival order.
  const std::vector<int> expected = {1, 3, 2, 0, 4};
  SDW_CHECK(order == expected);
}

void TestRunQueueFifoWhenDisabled() {
  RunQueueOptions opts;
  opts.priority_enabled = false;
  PriorityRunQueue q(opts);
  std::vector<int> order;
  q.Push([&] { order.push_back(0); }, 0);
  q.Push([&] { order.push_back(1); }, 100);
  q.Push([&] { order.push_back(2); }, 50);
  while (!q.empty()) q.Pop()();
  const std::vector<int> expected = {0, 1, 2};  // seed FIFO: arrival order
  SDW_CHECK(order == expected);
}

void TestRunQueueAgingPreventsStarvation() {
  RunQueueOptions opts;
  opts.aging_nanos = 1'000'000;  // +1 level per ms waited
  PriorityRunQueue q(opts);
  bool low_ran = false;
  q.Push([&] { low_ran = true; }, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // A fresh priority-5 task loses to the 10 ms-old priority-0 task: its
  // effective priority aged past 5.
  q.Push([] {}, 5);
  q.Pop()();
  SDW_CHECK_MSG(low_ran, "aged low-priority task did not pop first");

  // Starvation bound: keep feeding fresh priority-8 tasks; the priority-0
  // task must still pop within a bounded number of rounds because its age
  // boost grows without limit while every competitor starts fresh.
  PriorityRunQueue q2(opts);
  bool starved_ran = false;
  q2.Push([&] { starved_ran = true; }, 0);
  int rounds = 0;
  while (!starved_ran) {
    SDW_CHECK_MSG(++rounds < 1000, "low-priority task starved");
    q2.Push([] {}, 8);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    q2.Pop()();  // one competitor (or the starved task) runs per round
  }
  std::printf("  aging: starved task ran after %d rounds\n", rounds);
}

void TestRunQueueDynamicPriority() {
  RunQueueOptions opts;
  opts.aging_nanos = 0;
  PriorityRunQueue q(opts);
  std::vector<int> order;
  std::atomic<int> boost{0};
  // a: base 0 with a dynamic provider; b: fixed 3.
  q.Push([&] { order.push_back(0); }, 0, [&] { return boost.load(); });
  q.Push([&] { order.push_back(1); }, 3);
  // Boost AFTER both are queued — pop-time evaluation must see it.
  boost.store(9);
  q.Pop()();
  q.Pop()();
  const std::vector<int> expected = {0, 1};
  SDW_CHECK(order == expected);
}

// The seed's O(n) scan, kept verbatim as the ordering oracle for the
// bucketed Pop: over every queued entry, take max effective priority with
// ties broken by lowest index (earliest arrival).
struct RefQueue {
  struct Ref {
    int tag;
    int priority;
    std::function<int()> dynamic;
    int64_t enqueue_nanos;
  };
  const RunQueueOptions opts;
  std::vector<Ref> entries;

  explicit RefQueue(RunQueueOptions o) : opts(o) {}
  void Push(int tag, int priority, std::function<int()> dynamic) {
    entries.push_back({tag, priority, std::move(dynamic), NowNanos()});
  }
  int Pop() {
    SDW_CHECK(!entries.empty());
    if (!opts.priority_enabled) {
      const int tag = entries.front().tag;
      entries.erase(entries.begin());
      return tag;
    }
    const int64_t now = NowNanos();
    size_t best = 0;
    int64_t best_p = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      int64_t p = entries[i].priority;
      if (entries[i].dynamic) {
        const int64_t dyn = entries[i].dynamic();
        if (dyn > p) p = dyn;
      }
      if (opts.aging_nanos > 0) {
        p += (now - entries[i].enqueue_nanos) / opts.aging_nanos;
      }
      if (i == 0 || p > best_p) {
        best = i;
        best_p = p;
      }
    }
    const int tag = entries[best].tag;
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(best));
    return tag;
  }
};

void TestRunQueueEquivalentToSeedScan() {
  // Randomized push/pop interleave: the bucketed queue must pop the exact
  // sequence the seed's full scan pops. Aging is enabled but its horizon is
  // an hour, so the age contribution is deterministically zero levels and
  // both sides evaluate identical effective priorities; dynamic providers
  // read values mutated between operations (pop-time evaluation on both
  // sides sees the same snapshot).
  for (const bool priority_enabled : {true, false}) {
    RunQueueOptions opts;
    opts.priority_enabled = priority_enabled;
    opts.aging_nanos = 3'600'000'000'000;  // 1 h: enabled, zero levels here
    PriorityRunQueue q(opts);
    RefQueue ref(opts);
    Rng rng(priority_enabled ? 0xc4a05 : 0xf1f0);
    std::vector<int> dyn_values(512, 0);
    std::vector<int> popped;
    int next_tag = 0;
    for (int op = 0; op < 4000; ++op) {
      if (q.empty() || rng.Bernoulli(0.55)) {
        const int tag = next_tag++;
        const int priority = static_cast<int>(rng.Uniform(0, 4));
        std::function<int()> dynamic;
        if (rng.Bernoulli(0.3)) {
          dyn_values[static_cast<size_t>(tag) % dyn_values.size()] =
              static_cast<int>(rng.Uniform(0, 8));
          dynamic = [&dyn_values, tag] {
            return dyn_values[static_cast<size_t>(tag) % dyn_values.size()];
          };
        }
        q.Push([&popped, tag] { popped.push_back(tag); }, priority, dynamic);
        ref.Push(tag, priority, dynamic);
      } else {
        if (rng.Bernoulli(0.1)) {
          // Mutate a provider's value between operations.
          dyn_values[rng.Index(dyn_values.size())] =
              static_cast<int>(rng.Uniform(0, 8));
        }
        q.Pop()();
        const int want = ref.Pop();
        SDW_CHECK_MSG(popped.back() == want,
                      "op %d (priority_enabled=%d): bucketed queue popped "
                      "%d, seed scan popped %d",
                      op, priority_enabled ? 1 : 0, popped.back(), want);
      }
      SDW_CHECK(q.size() == ref.entries.size());
    }
    while (!q.empty()) {
      q.Pop()();
      const int want = ref.Pop();
      SDW_CHECK_MSG(popped.back() == want, "drain: popped %d, want %d",
                    popped.back(), want);
    }
  }
}

// ----------------------------------------------------------- thread pool

/// A gate that holds the pool's only worker busy until released.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void Open() {
    {
      std::unique_lock<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
};

void TestThreadPoolPriorityPop() {
  ThreadPoolOptions opts;
  opts.max_threads = 1;
  opts.run_queue.aging_nanos = 0;
  ThreadPool pool("sched-test", opts);
  Gate gate;
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::unique_lock<std::mutex> lock(mu);
    order.push_back(tag);
  };
  std::atomic<bool> blocker_running{false};
  pool.Submit([&] {  // occupies the only worker
    blocker_running.store(true);
    gate.Wait();
  });
  while (!blocker_running.load()) std::this_thread::yield();
  pool.Submit([&] { record(0); }, 0);
  pool.Submit([&] { record(1); }, 7);
  pool.Submit([&] { record(2); }, 3);
  gate.Open();
  pool.WaitIdle();
  const std::vector<int> expected = {1, 2, 0};
  SDW_CHECK(order == expected);
  SDW_CHECK(pool.num_threads() == 1);
}

void TestThreadPoolDynamicBoostReorders() {
  // The priority-inheritance mechanism at pool level: a queued task whose
  // dynamic priority rises (a satellite attached to its host) must pop
  // ahead of a task that outranked it at submit time.
  ThreadPoolOptions opts;
  opts.max_threads = 1;
  opts.run_queue.aging_nanos = 0;
  ThreadPool pool("boost-test", opts);
  Gate gate;
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::unique_lock<std::mutex> lock(mu);
    order.push_back(tag);
  };
  std::atomic<int> host_priority{0};
  std::atomic<bool> blocker_running{false};
  pool.Submit([&] {
    blocker_running.store(true);
    gate.Wait();
  });
  while (!blocker_running.load()) std::this_thread::yield();
  pool.Submit([&] { record(0); }, 0, [&] { return host_priority.load(); });
  pool.Submit([&] { record(1); }, 5);
  host_priority.store(9);  // "high-priority satellite attaches"
  gate.Open();
  pool.WaitIdle();
  const std::vector<int> expected = {0, 1};
  SDW_CHECK(order == expected);
}

// ----------------------------------------------------------- timer wheel

void TestWheelExpiryLatencyBound() {
  TimerWheel::Options opts;
  opts.tick_nanos = 1'000'000;  // 1 ms
  TimerWheel wheel(opts);
  constexpr int kTimers = 64;
  std::vector<std::atomic<int64_t>> fired_at(kTimers);
  for (auto& f : fired_at) f.store(0);
  std::vector<int64_t> deadlines(kTimers);
  const int64_t base = NowNanos();
  for (int i = 0; i < kTimers; ++i) {
    // Deadlines spread over 5..69 ms out.
    deadlines[i] = base + (5 + i) * 1'000'000;
    wheel.Schedule(deadlines[i],
                   [&fired_at, i] { fired_at[i].store(NowNanos()); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  SDW_CHECK(wheel.pending() == 0);
  Stats lat_ms_stats;
  for (int i = 0; i < kTimers; ++i) {
    const int64_t at = fired_at[i].load();
    SDW_CHECK_MSG(at != 0, "timer %d never fired", i);
    // Never early.
    SDW_CHECK_MSG(at >= deadlines[i], "timer %d fired %.3f ms early", i,
                  static_cast<double>(deadlines[i] - at) * 1e-6);
    lat_ms_stats.Add(static_cast<double>(at - deadlines[i]) * 1e-6);
  }
  // The wheel guarantees firing within ~one tick of the deadline; the
  // median bound keeps the assertion robust against CI scheduling noise,
  // and the max bound catches a wheel that degraded to coarse polling.
  std::printf("  wheel expiry latency: median %.3f ms, max %.3f ms\n",
              lat_ms_stats.Percentile(50), lat_ms_stats.Max());
  SDW_CHECK_MSG(lat_ms_stats.Percentile(50) <= 5.0,
                "median expiry latency %.3f ms exceeds 5 ms (tick = 1 ms)",
                lat_ms_stats.Percentile(50));
  SDW_CHECK_MSG(lat_ms_stats.Max() <= 60.0,
                "max expiry latency %.3f ms looks like polling, not a wheel",
                lat_ms_stats.Max());
}

void TestWheelCancel() {
  TimerWheel wheel;
  std::atomic<bool> fired{false};
  const uint64_t id =
      wheel.Schedule(NowNanos() + 20'000'000, [&] { fired.store(true); });
  SDW_CHECK(wheel.Cancel(id));
  SDW_CHECK(!wheel.Cancel(id));  // second cancel: already gone
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  SDW_CHECK(!fired.load());
  SDW_CHECK(wheel.pending() == 0);
}

void TestWheelHierarchyCascades() {
  // Coarse horizons land on higher wheel levels (64 ticks per level step);
  // they must cascade down and fire in deadline order, never early.
  TimerWheel::Options opts;
  opts.tick_nanos = 200'000;  // 0.2 ms tick so level-2 horizons stay testable
  TimerWheel wheel(opts);
  std::mutex mu;
  std::vector<int> order;
  const int64_t base = NowNanos();
  struct Probe {
    int tag;
    int64_t ticks_out;
  };
  // 3 ticks (level 0), 100 ticks (level 1), 4100 ticks (level 2: > 64^2).
  const std::vector<Probe> probes = {{0, 3}, {1, 100}, {2, 4100}};
  for (const auto& p : probes) {
    wheel.Schedule(base + p.ticks_out * opts.tick_nanos, [&mu, &order, p] {
      std::unique_lock<std::mutex> lock(mu);
      order.push_back(p.tag);
    });
  }
  // 4100 ticks * 0.2 ms = 820 ms; wait it out with margin.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  std::unique_lock<std::mutex> lock(mu);
  const std::vector<int> expected = {0, 1, 2};
  SDW_CHECK_MSG(order == expected, "cascade firing order wrong (%zu fired)",
                order.size());
}

void TestWheelCatchUpAfterIdle() {
  // After sitting idle (no timers, cursor parked) far past the catch-up
  // threshold, a freshly scheduled short deadline must still fire promptly
  // — the wheel rebuilds from the live-timer map instead of ticking the
  // whole idle gap closed under its lock.
  TimerWheel wheel;  // 1 ms tick; catch-up kicks in past 128 ticks
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  std::atomic<int64_t> fired_at{0};
  const int64_t deadline = NowNanos() + 10'000'000;  // 10 ms
  wheel.Schedule(deadline, [&] { fired_at.store(NowNanos()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  SDW_CHECK_MSG(fired_at.load() != 0, "timer after idle gap never fired");
  SDW_CHECK(fired_at.load() >= deadline);
  SDW_CHECK_MSG((fired_at.load() - deadline) < 50'000'000,
                "post-idle fire %.1f ms late",
                static_cast<double>(fired_at.load() - deadline) * 1e-6);
}

void TestWheelIdleSleepsToNextDue() {
  // With one timer 300 ms out on a 1 ms tick, the loop must sleep to the
  // due tick instead of waking every tick: ~300 wakeups would mean the
  // next-due computation regressed to per-tick polling.
  TimerWheel::Options opts;
  opts.tick_nanos = 1'000'000;
  TimerWheel wheel(opts);
  std::atomic<int64_t> fired_at{0};
  const int64_t deadline = NowNanos() + 300'000'000;
  wheel.Schedule(deadline, [&] { fired_at.store(NowNanos()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  SDW_CHECK_MSG(fired_at.load() != 0, "far-out timer never fired");
  SDW_CHECK(fired_at.load() >= deadline);  // never early
  const uint64_t wakeups = wheel.wakeups();
  std::printf("  wheel wakeups while waiting 300 ms for one timer: %llu\n",
              static_cast<unsigned long long>(wakeups));
  SDW_CHECK_MSG(wakeups <= 50,
                "%llu wakeups for a single 300 ms timer — the idle wheel is "
                "ticking instead of sleeping to the next due tick",
                static_cast<unsigned long long>(wakeups));
}

void TestWheelConcurrentStress() {
  TimerWheel wheel;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<uint64_t> fired{0};
  std::atomic<uint64_t> cancelled{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint64_t> ids;
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t deadline =
            NowNanos() + ((t + i) % 40) * 1'000'000;  // 0..39 ms out
        ids.push_back(wheel.Schedule(
            deadline, [&] { fired.fetch_add(1, std::memory_order_relaxed); }));
        if (i % 3 == 0) {
          // Cancel a recent timer; it may already have fired (races are the
          // point — the wheel must stay consistent either way).
          if (wheel.Cancel(ids[static_cast<size_t>(i) / 2])) {
            cancelled.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  SDW_CHECK(wheel.pending() == 0);
  SDW_CHECK_MSG(fired.load() + cancelled.load() == kThreads * kPerThread,
                "fired %llu + cancelled %llu != scheduled %d",
                static_cast<unsigned long long>(fired.load()),
                static_cast<unsigned long long>(cancelled.load()),
                kThreads * kPerThread);
  SDW_CHECK(wheel.fired() == fired.load());
}

// ------------------------------------------------------------- scheduler

void TestSchedulerWatchDeadline() {
  core::Scheduler sched;
  // A watched deadline completes a lifecycle's pending cancel state.
  auto life = std::make_shared<core::QueryLifecycle>(1, core::SubmitOptions{
      .priority = 0, .deadline_nanos = NowNanos() + 10'000'000});
  sched.WatchDeadline(life);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  SDW_CHECK(life->cancel_requested());
  Status why;
  SDW_CHECK(life->ShouldStop(&why));
  SDW_CHECK(why.code() == StatusCode::kDeadlineExceeded);

  // A query that finishes first must NOT be disturbed — and its wheel
  // timer is disarmed at Finish instead of lingering until the deadline.
  auto done = std::make_shared<core::QueryLifecycle>(2, core::SubmitOptions{
      .priority = 0, .deadline_nanos = NowNanos() + 10'000'000'000});
  sched.WatchDeadline(done);
  SDW_CHECK(sched.wheel().pending() == 1);
  done->Finish(Status::Ok());
  SDW_CHECK_MSG(sched.wheel().pending() == 0,
                "finish did not cancel the deadline timer");
  SDW_CHECK(done->status().ok());

  // No deadline → nothing armed.
  auto plain = std::make_shared<core::QueryLifecycle>(3, core::SubmitOptions{});
  sched.WatchDeadline(plain);
  SDW_CHECK(sched.wheel().pending() == 0);
}

}  // namespace

int main() {
  std::printf("run queue: priority order\n");
  TestRunQueuePriorityOrder();
  std::printf("run queue: FIFO when disabled\n");
  TestRunQueueFifoWhenDisabled();
  std::printf("run queue: aging prevents starvation\n");
  TestRunQueueAgingPreventsStarvation();
  std::printf("run queue: dynamic priority\n");
  TestRunQueueDynamicPriority();
  std::printf("run queue: bucketed pop ≡ seed scan\n");
  TestRunQueueEquivalentToSeedScan();
  std::printf("thread pool: priority pop\n");
  TestThreadPoolPriorityPop();
  std::printf("thread pool: dynamic boost reorders\n");
  TestThreadPoolDynamicBoostReorders();
  std::printf("timer wheel: expiry latency bound\n");
  TestWheelExpiryLatencyBound();
  std::printf("timer wheel: cancel\n");
  TestWheelCancel();
  std::printf("timer wheel: hierarchy cascades\n");
  TestWheelHierarchyCascades();
  std::printf("timer wheel: catch-up after idle\n");
  TestWheelCatchUpAfterIdle();
  std::printf("timer wheel: idle sleeps to next due tick\n");
  TestWheelIdleSleepsToNextDue();
  std::printf("timer wheel: concurrent stress\n");
  TestWheelConcurrentStress();
  std::printf("scheduler: watch deadline\n");
  TestSchedulerWatchDeadline();
  std::printf("OK\n");
  return 0;
}
