// Unit tests for the bit-manipulation primitives, including the tail-masked
// FillOnes used by the CJOIN live-tuple masks.

#include "common/bitmap.h"

#include <cstdio>
#include <vector>

#include "common/macros.h"

using namespace sdw;

static void TestSetClearTest() {
  uint64_t w[3] = {0, 0, 0};
  bits::Set(w, 0);
  bits::Set(w, 63);
  bits::Set(w, 64);
  bits::Set(w, 150);
  SDW_CHECK(bits::Test(w, 0) && bits::Test(w, 63) && bits::Test(w, 64) &&
            bits::Test(w, 150));
  SDW_CHECK(!bits::Test(w, 1) && !bits::Test(w, 149));
  SDW_CHECK(bits::Popcount(w, 3) == 4);
  bits::Clear(w, 63);
  SDW_CHECK(!bits::Test(w, 63));
  SDW_CHECK(bits::Any(w, 3));
  bits::Zero(w, 3);
  SDW_CHECK(!bits::Any(w, 3));
}

static void TestAndKernels() {
  const uint64_t orig[2] = {0xFF00FF00FF00FF00ULL, 0x0123456789ABCDEFULL};
  const uint64_t a[2] = {0x00FF00FF00FF00FFULL, 0xFFFF0000FFFF0000ULL};
  const uint64_t b[2] = {0xF0F0F0F0F0F0F0F0ULL, 0x0000FFFF0000FFFFULL};
  uint64_t and_or[2] = {orig[0], orig[1]};
  bits::AndWithOr(and_or, a, b, 2);
  for (int i = 0; i < 2; ++i) SDW_CHECK(and_or[i] == (orig[i] & (a[i] | b[i])));
  uint64_t plain[2] = {orig[0], orig[1]};
  bits::AndWith(plain, a, 2);
  for (int i = 0; i < 2; ++i) SDW_CHECK(plain[i] == (orig[i] & a[i]));
}

static void TestFillOnes() {
  for (size_t nbits : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                       size_t{127}, size_t{128}, size_t{200}}) {
    const size_t nwords = bits::WordsFor(nbits);
    std::vector<uint64_t> w(nwords, 0xDEADBEEFDEADBEEFULL);
    bits::FillOnes(w.data(), nbits);
    SDW_CHECK(bits::Popcount(w.data(), nwords) == nbits);
    for (size_t i = 0; i < nbits; ++i) SDW_CHECK(bits::Test(w.data(), i));
    // No phantom bits beyond nbits in the last word.
    for (size_t i = nbits; i < nwords * 64; ++i) {
      SDW_CHECK(!bits::Test(w.data(), i));
    }
  }
}

static void TestFindNextSet() {
  Bitset s(130);
  s.Set(3);
  s.Set(64);
  s.Set(129);
  SDW_CHECK(s.FindNextSet(0) == 3);
  SDW_CHECK(s.FindNextSet(4) == 64);
  SDW_CHECK(s.FindNextSet(65) == 129);
  SDW_CHECK(s.FindNextSet(130) == 130);
  SDW_CHECK(s.Count() == 3);
}

int main() {
  TestSetClearTest();
  TestAndKernels();
  TestFillOnes();
  TestFindNextSet();
  std::printf("bitmap_test: OK\n");
  return 0;
}
