// Unit tests for src/ssb: generator cardinalities and integrity, template
// selectivities, the similarity and selectivity workload knobs.

#include <gtest/gtest.h>

#include <set>

#include "baseline/volcano.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "test_util.h"

namespace sdw::ssb {
namespace {

using testing::SharedSsbDb;
using testing::TestDb;

TEST(SsbSchema, NationRegionVocabulary) {
  EXPECT_EQ(NationName(23), "UNITED KINGDOM");
  EXPECT_EQ(RegionName(NationRegion(24)), "AMERICA");  // UNITED STATES
  std::set<int> regions;
  for (int n = 0; n < kNumNations; ++n) regions.insert(NationRegion(n));
  EXPECT_EQ(regions.size(), 5u);
  EXPECT_EQ(CityName(23, 4), "UNITED KI4");
  EXPECT_EQ(CityName(0, 0).size(), 10u);
}

TEST(SsbGenerator, Cardinalities) {
  TestDb* db = SharedSsbDb();  // SF 0.01
  EXPECT_EQ(db->catalog.MustGetTable(kLineorder)->num_rows(),
            SsbLineorderRows(0.01));
  EXPECT_EQ(db->catalog.MustGetTable(kCustomer)->num_rows(),
            SsbCustomerRows(0.01));
  EXPECT_EQ(db->catalog.MustGetTable(kSupplier)->num_rows(),
            SsbSupplierRows(0.01));
  EXPECT_EQ(db->catalog.MustGetTable(kPart)->num_rows(), SsbPartRows(0.01));
  EXPECT_EQ(db->catalog.MustGetTable(kDate)->num_rows(), 2556u);
}

TEST(SsbGenerator, DateDimensionCalendar) {
  TestDb* db = SharedSsbDb();
  const storage::Table* date = db->catalog.MustGetTable(kDate);
  const storage::Schema& s = date->schema();
  const size_t key = s.MustColumnIndex("d_datekey");
  const size_t year = s.MustColumnIndex("d_year");
  EXPECT_EQ(s.GetInt32(date->row(0), key), 19920101);
  // SSB fixes the date dimension at 2556 rows; with the two leap years
  // (1992, 1996) the 2556th day from 1992-01-01 is 1998-12-30.
  EXPECT_EQ(s.GetInt32(date->row(2555), key), 19981230);
  // 1992 and 1996 are leap years: 1992-02-29 exists at day index 31+28=59.
  EXPECT_EQ(s.GetInt32(date->row(59), key), 19920229);
  std::set<int32_t> years;
  for (size_t i = 0; i < date->num_rows(); i += 50) {
    years.insert(s.GetInt32(date->row(i), year));
  }
  EXPECT_EQ(*years.begin(), kFirstYear);
  EXPECT_EQ(*years.rbegin(), kLastYear);
}

TEST(SsbGenerator, ForeignKeyIntegrity) {
  TestDb* db = SharedSsbDb();
  const storage::Table* lo = db->catalog.MustGetTable(kLineorder);
  const storage::Schema& s = lo->schema();
  const auto customers =
      static_cast<int32_t>(db->catalog.MustGetTable(kCustomer)->num_rows());
  const auto suppliers =
      static_cast<int32_t>(db->catalog.MustGetTable(kSupplier)->num_rows());
  const auto parts =
      static_cast<int32_t>(db->catalog.MustGetTable(kPart)->num_rows());
  const size_t ck = s.MustColumnIndex("lo_custkey");
  const size_t sk = s.MustColumnIndex("lo_suppkey");
  const size_t pk = s.MustColumnIndex("lo_partkey");
  const size_t od = s.MustColumnIndex("lo_orderdate");
  for (size_t i = 0; i < lo->num_rows(); i += 97) {
    const std::byte* t = lo->row(i);
    EXPECT_GE(s.GetInt32(t, ck), 1);
    EXPECT_LE(s.GetInt32(t, ck), customers);
    EXPECT_GE(s.GetInt32(t, sk), 1);
    EXPECT_LE(s.GetInt32(t, sk), suppliers);
    EXPECT_GE(s.GetInt32(t, pk), 1);
    EXPECT_LE(s.GetInt32(t, pk), parts);
    const int32_t datekey = s.GetInt32(t, od);
    EXPECT_GE(datekey, 19920101);
    EXPECT_LE(datekey, 19981231);
  }
}

TEST(SsbGenerator, RevenueConsistency) {
  TestDb* db = SharedSsbDb();
  const storage::Table* lo = db->catalog.MustGetTable(kLineorder);
  const storage::Schema& s = lo->schema();
  const size_t price = s.MustColumnIndex("lo_extendedprice");
  const size_t disc = s.MustColumnIndex("lo_discount");
  const size_t rev = s.MustColumnIndex("lo_revenue");
  for (size_t i = 0; i < lo->num_rows(); i += 101) {
    const std::byte* t = lo->row(i);
    EXPECT_EQ(s.GetInt64(t, rev),
              s.GetInt64(t, price) * (100 - s.GetInt32(t, disc)) / 100);
  }
}

TEST(SsbGenerator, DeterministicForSeed) {
  storage::Catalog a, b;
  BuildSsbDatabase(&a, {0.005, 99});
  BuildSsbDatabase(&b, {0.005, 99});
  const storage::Table* ta = a.MustGetTable(kLineorder);
  const storage::Table* tb = b.MustGetTable(kLineorder);
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t i = 0; i < ta->num_rows(); i += 37) {
    EXPECT_EQ(std::memcmp(ta->row(i), tb->row(i), ta->schema().tuple_size()),
              0);
  }
}

// Fraction of `table` rows matching `pred`.
double MatchFraction(const storage::Table* table,
                     const query::Predicate& pred) {
  const auto bound = pred.Bind(table->schema());
  size_t n = 0;
  for (size_t i = 0; i < table->num_rows(); ++i) {
    if (bound.Eval(table->schema(), table->row(i))) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(table->num_rows());
}

TEST(Queries, Q32SelectivityIsProductOfDimensionFractions) {
  // Measured fact selectivity of a Q3.2 instance must equal the product of
  // its per-dimension match fractions (FKs are uniform), which at full
  // scale approaches the paper's (1/25)(1/25)(years/7).
  TestDb* db = SharedSsbDb();
  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  Q32Params p;
  p.year_lo = 1992;
  p.year_hi = 1998;
  query::StarQuery q = MakeQ32(p);
  double expected = 1.0;
  for (const auto& dim : q.dims) {
    expected *= MatchFraction(db->catalog.MustGetTable(dim.dim_table),
                              dim.pred);
  }
  // Count joined tuples: drop group-by/sort, count rows out of the join.
  q.group_by.clear();
  q.aggregates = {{query::AggSpec::Kind::kCount, "", "", "", "n"}};
  q.order_by.clear();
  const query::ResultSet result = oracle.Execute(q);
  ASSERT_EQ(result.num_rows(), 1u);
  const double n =
      static_cast<double>(result.schema().GetInt64(result.row(0), 0));
  const double total = static_cast<double>(
      db->catalog.MustGetTable(kLineorder)->num_rows());
  EXPECT_NEAR(n / total, expected, expected * 0.35 + 1e-4);
}

TEST(Workloads, PickSelectivityApproximatesTargets) {
  for (double target : {0.001, 0.01, 0.1, 0.2, 0.3}) {
    const SelectivityChoice c = PickSelectivity(target);
    EXPECT_GT(c.achieved, target * 0.6);
    EXPECT_LT(c.achieved, target * 1.6);
  }
  // Paper's minimum: one nation each, one year => 0.023 %.
  const SelectivityChoice c = PickSelectivity(0.0002);
  EXPECT_EQ(c.cust_nations, 1);
  EXPECT_EQ(c.supp_nations, 1);
  EXPECT_EQ(c.years, 1);
}

TEST(Workloads, SimilarWorkloadUsesExactlyNPlans) {
  for (size_t plans : {1u, 4u, 16u}) {
    const auto queries = SimilarQ32Workload(64, plans, 5);
    std::set<std::string> sigs;
    for (const auto& q : queries) sigs.insert(q.Signature());
    EXPECT_EQ(sigs.size(), plans);
  }
}

TEST(Workloads, RandomWorkloadHasHighDiversity) {
  const auto queries = RandomQ32Workload(64, 6);
  std::set<std::string> sigs;
  for (const auto& q : queries) sigs.insert(q.Signature());
  EXPECT_GT(sigs.size(), 32u);
}

TEST(Workloads, MixedWorkloadRoundRobin) {
  const auto queries = MixedWorkload(9, 7);
  ASSERT_EQ(queries.size(), 9u);
  for (size_t i = 0; i < queries.size(); ++i) {
    switch (i % 3) {
      case 0:  // Q1.1: one dimension (date), fact predicate present
        EXPECT_EQ(queries[i].dims.size(), 1u);
        EXPECT_FALSE(queries[i].fact_pred.IsTrue());
        break;
      case 1:  // Q2.1: three dimensions, part first
        EXPECT_EQ(queries[i].dims.size(), 3u);
        EXPECT_EQ(queries[i].dims[0].dim_table, kPart);
        break;
      default:  // Q3.2
        EXPECT_EQ(queries[i].dims.size(), 3u);
        EXPECT_EQ(queries[i].dims[0].dim_table, kSupplier);
        break;
    }
  }
}

TEST(Workloads, IdenticalQ1AllEqual) {
  const auto queries = IdenticalQ1Workload(5);
  for (const auto& q : queries) {
    EXPECT_EQ(q.Signature(), queries[0].Signature());
    EXPECT_TRUE(q.dims.empty());
  }
}

TEST(TpchGenerator, LineitemShape) {
  TestDb* db = testing::SharedTpchDb();
  const storage::Table* li = db->catalog.MustGetTable(kLineitem);
  EXPECT_EQ(li->num_rows(), TpchLineitemRows(0.01));
  const storage::Schema& s = li->schema();
  const size_t rf = s.MustColumnIndex("l_returnflag");
  std::set<std::string> flags;
  for (size_t i = 0; i < li->num_rows(); i += 53) {
    flags.insert(std::string(s.GetChar(li->row(i), rf)));
  }
  EXPECT_EQ(flags, (std::set<std::string>{"A", "N", "R"}));
}

}  // namespace
}  // namespace sdw::ssb
