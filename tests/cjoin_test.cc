// Unit and integration tests for the CJOIN GQP: filter match/pass semantics,
// slot recycling, batched admission, wrap-around completion, dynamic filter
// addition, and correctness against the Volcano oracle for staggered
// submissions.

#include <gtest/gtest.h>

#include <future>

#include "baseline/volcano.h"
#include "cjoin/filter.h"
#include "cjoin/pipeline.h"
#include "core/shared_pages_list.h"
#include "query/plan.h"
#include "ssb/ssb_queries.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "test_util.h"

namespace sdw::cjoin {
namespace {

using testing::SharedSsbDb;
using testing::TestDb;

TEST(Filter, MatchAndPassSemantics) {
  TestDb* db = SharedSsbDb();
  const storage::Table* supplier = db->catalog.MustGetTable(ssb::kSupplier);
  const storage::Table* fact = db->catalog.MustGetTable(ssb::kLineorder);
  const storage::Schema& fs = fact->schema();

  Filter filter(supplier, "lo_suppkey", "s_suppkey", /*position=*/0,
                /*slots=*/64);
  // Query 0 selects suppliers of one nation; query 1 does not reference the
  // dimension (pass); query 2 selects a different nation.
  query::Predicate p0;
  p0.And(query::AtomicPred::Str("s_nation", query::CompareOp::kEq,
                                std::string(ssb::NationName(0))));
  query::Predicate p2;
  p2.And(query::AtomicPred::Str("s_nation", query::CompareOp::kEq,
                                std::string(ssb::NationName(1))));
  filter.AdmitQuery(0, p0, db->pool.get());
  filter.SetPass(1);
  filter.AdmitQuery(2, p2, db->pool.get());

  // Process one fact page with all three bits set.
  auto batch = std::make_shared<TupleBatch>();
  batch->fact_page = fact->SharePage(0);
  batch->ResetFor(batch->fact_page->tuple_count(), /*words=*/1,
                  /*filters=*/1);
  std::fill(batch->bits.begin(), batch->bits.end(), 0b111);
  filter.BindFactColumn(fs);
  FilterScratch scratch;
  filter.Process(batch.get(), &scratch);

  const storage::Schema& ss = supplier->schema();
  const size_t nation_col = ss.MustColumnIndex("s_nation");
  const size_t sk = fs.MustColumnIndex("lo_suppkey");
  for (uint32_t i = 0; i < batch->num_tuples; ++i) {
    const uint64_t bits = batch->bits[i];
    EXPECT_TRUE(bits & 0b010) << "pass bit must survive";
    const int32_t key = fs.GetInt32(batch->fact_page->tuple(i), sk);
    const std::byte* dim_row =
        supplier->row(static_cast<size_t>(key) - 1);  // keys are 1-based
    const auto nation = ss.GetChar(dim_row, nation_col);
    EXPECT_EQ((bits & 0b001) != 0, nation == ssb::NationName(0)) << i;
    EXPECT_EQ((bits & 0b100) != 0, nation == ssb::NationName(1)) << i;
    if (bits & 0b101) {
      // Joined row recorded and correct.
      EXPECT_EQ(batch->tuple_dim_rows(i)[0],
                static_cast<uint32_t>(key - 1));
    }
  }
}

TEST(Filter, CleanSlotRemovesStaleBits) {
  TestDb* db = SharedSsbDb();
  const storage::Table* supplier = db->catalog.MustGetTable(ssb::kSupplier);
  Filter filter(supplier, "lo_suppkey", "s_suppkey", 0, 64);
  filter.AdmitQuery(5, query::Predicate::True(), db->pool.get());
  EXPECT_EQ(filter.num_entries(), supplier->num_rows());
  filter.CleanSlot(5);

  // A tuple carrying only bit 5 must now be filtered out entirely.
  const storage::Table* fact = db->catalog.MustGetTable(ssb::kLineorder);
  const storage::Schema& fs = fact->schema();
  auto batch = std::make_shared<TupleBatch>();
  batch->fact_page = fact->SharePage(0);
  batch->ResetFor(batch->fact_page->tuple_count(), /*words=*/1,
                  /*filters=*/1);
  std::fill(batch->bits.begin(), batch->bits.end(), 1ull << 5);
  filter.BindFactColumn(fs);
  FilterScratch scratch;
  filter.Process(batch.get(), &scratch);
  for (uint32_t i = 0; i < batch->num_tuples; ++i) {
    EXPECT_EQ(batch->bits[i], 0u);
    EXPECT_FALSE(batch->tuple_live(i));  // filtered tuples are killed too
  }
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : db_(SharedSsbDb()),
        fact_(db_->catalog.MustGetTable(ssb::kLineorder)),
        planner_(&db_->catalog) {}

  // Runs `queries` through a fresh pipeline (simultaneous submission) and
  // checks each against the Volcano oracle's join output.
  void RunAndVerify(const std::vector<query::StarQuery>& queries,
                    CjoinOptions options = {}) {
    CjoinPipeline pipeline(&db_->catalog, db_->pool.get(), fact_, options);
    struct Slot {
      std::shared_ptr<core::SharedPagesList> spl;
      std::unique_ptr<core::SharedPagesList::Reader> reader;
      storage::Schema schema;
    };
    std::vector<Slot> outs;
    for (const auto& q : queries) {
      Slot s;
      s.spl = std::make_shared<core::SharedPagesList>(0);
      s.reader = s.spl->TryAttachFromStart();
      s.schema = planner_.JoinOutputSchema(q);
      outs.push_back(std::move(s));
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      // Keep the SPL alive via the sink holder below.
      struct SplSink : public core::PageSink {
        explicit SplSink(std::shared_ptr<core::SharedPagesList> spl)
            : spl_(std::move(spl)) {}
        bool Put(storage::PagePtr p) override { return spl_->Put(std::move(p)); }
        void Close() override { spl_->Close(); }
        std::shared_ptr<core::SharedPagesList> spl_;
      };
      pipeline.Submit(queries[i], outs[i].schema,
                      std::make_shared<SplSink>(outs[i].spl), nullptr);
    }
    // Drain each query's output and compare with the oracle join sub-plan.
    const baseline::VolcanoEngine oracle(&db_->catalog, db_->pool.get());
    for (size_t i = 0; i < queries.size(); ++i) {
      query::ResultSet actual(outs[i].schema);
      while (auto page = outs[i].reader->Next()) {
        for (uint32_t t = 0; t < page->tuple_count(); ++t) {
          actual.AddRow(page->tuple(t));
        }
      }
      const auto join_plan = planner_.BuildJoinPlan(queries[i]);
      const query::ResultSet expected = oracle.ExecutePlan(*join_plan);
      EXPECT_EQ(query::DiffResults(expected, actual), "") << "query " << i;
    }
  }

  TestDb* db_;
  const storage::Table* fact_;
  query::Planner planner_;
};

TEST_F(PipelineTest, SingleQueryJoinsMatchOracle) {
  RunAndVerify({ssb::MakeQ32({})});
}

TEST_F(PipelineTest, ConcurrentHeterogeneousQueries) {
  auto queries = ssb::RandomQ32Workload(5, 31);
  queries.push_back(ssb::MakeQ11({}));  // different dims: date only
  queries.push_back(ssb::MakeQ21({}));  // adds the part filter dynamically
  RunAndVerify(queries);
}

TEST_F(PipelineTest, FactPredicateAppliedAtDistributor) {
  // Q1.1 has fact predicates (discount/quantity): CJOIN applies them on its
  // output tuples (paper §3.2); results must still match the oracle, which
  // applies them at the scan.
  RunAndVerify({ssb::MakeQ11({}), ssb::MakeQ11({1994, 4, 6, 35})});
}

TEST_F(PipelineTest, StaggeredAdmissionBatches) {
  CjoinOptions options;
  options.max_queries = 16;
  CjoinPipeline pipeline(&db_->catalog, db_->pool.get(), fact_, options);
  const auto queries = ssb::RandomQ32Workload(6, 37);

  struct SplSink : public core::PageSink {
    explicit SplSink(std::shared_ptr<core::SharedPagesList> spl)
        : spl_(std::move(spl)) {}
    bool Put(storage::PagePtr p) override { return spl_->Put(std::move(p)); }
    void Close() override { spl_->Close(); }
    std::shared_ptr<core::SharedPagesList> spl_;
  };

  const baseline::VolcanoEngine oracle(&db_->catalog, db_->pool.get());
  std::vector<std::thread> consumers;
  std::vector<std::string> diffs(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto spl = std::make_shared<core::SharedPagesList>(0);
    auto reader = spl->TryAttachFromStart();
    const storage::Schema schema = planner_.JoinOutputSchema(queries[i]);
    pipeline.Submit(queries[i], schema, std::make_shared<SplSink>(spl),
                    nullptr);
    consumers.emplace_back(
        [this, &oracle, &diffs, i, schema, q = queries[i],
         spl,  // keep the list alive for the reader's lifetime
         reader = std::shared_ptr<core::SharedPagesList::Reader>(
             std::move(reader))]() mutable {
          query::ResultSet actual(schema);
          while (auto page = reader->Next()) {
            for (uint32_t t = 0; t < page->tuple_count(); ++t) {
              actual.AddRow(page->tuple(t));
            }
          }
          const auto join_plan = planner_.BuildJoinPlan(q);
          diffs[i] = query::DiffResults(oracle.ExecutePlan(*join_plan), actual);
        });
    // Stagger submissions so several admission batches happen mid-scan.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& t : consumers) t.join();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(diffs[i], "") << "query " << i;
  }
  const CjoinStats stats = pipeline.stats();
  EXPECT_EQ(stats.queries_admitted, queries.size());
  EXPECT_EQ(stats.queries_completed, queries.size());
  EXPECT_GE(stats.admission_batches, 1u);
}

TEST_F(PipelineTest, SlotRecyclingAcrossGenerations) {
  // More sequential generations than slots: forces dirty-slot recycling.
  CjoinOptions options;
  options.max_queries = 2;
  for (int generation = 0; generation < 4; ++generation) {
    RunAndVerify(ssb::RandomQ32Workload(2, 40 + static_cast<uint64_t>(generation)),
                 options);
  }
}

TEST_F(PipelineTest, AdmissionStatsAccumulate) {
  CjoinOptions options;
  CjoinPipeline pipeline(&db_->catalog, db_->pool.get(), fact_, options);
  EXPECT_EQ(pipeline.stats().queries_admitted, 0u);
  EXPECT_EQ(pipeline.num_filters(), 0u);
  // Admit one query and let it complete.
  struct NullSink : public core::PageSink {
    bool Put(storage::PagePtr) override { return true; }
    void Close() override { done.set_value(); }
    std::promise<void> done;
  };
  auto sink = std::make_shared<NullSink>();
  auto done = sink->done.get_future();
  pipeline.Submit(ssb::MakeQ32({}), planner_.JoinOutputSchema(ssb::MakeQ32({})),
                  sink, nullptr);
  done.wait();
  const CjoinStats stats = pipeline.stats();
  EXPECT_EQ(stats.queries_admitted, 1u);
  EXPECT_GT(stats.admission_seconds, 0.0);
  EXPECT_GE(stats.fact_pages_scanned, fact_->num_pages());
  EXPECT_EQ(pipeline.num_filters(), 3u);  // supplier, customer, date
}

}  // namespace
}  // namespace sdw::cjoin
