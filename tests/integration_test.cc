// End-to-end correctness: every engine configuration × communication model
// must produce exactly the results of the Volcano comparator on randomized
// SSB workloads (the golden-result oracle of DESIGN.md §7).

#include <gtest/gtest.h>

#include "baseline/volcano.h"
#include "core/engine.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "test_util.h"

namespace sdw {
namespace {

using core::CommModel;
using core::EngineConfig;
using testing::SharedSsbDb;
using testing::SharedTpchDb;
using testing::TestDb;

struct ConfigParam {
  EngineConfig config;
  CommModel comm;
};

std::string ParamName(const ::testing::TestParamInfo<ConfigParam>& info) {
  std::string name = core::EngineConfigName(info.param.config);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + (info.param.comm == CommModel::kPull ? "_pull" : "_push");
}

class AllConfigs : public ::testing::TestWithParam<ConfigParam> {
 protected:
  core::EngineOptions Options() const {
    core::EngineOptions opts;
    opts.config = GetParam().config;
    opts.comm = GetParam().comm;
    opts.cjoin.max_queries = 64;
    return opts;
  }

  void VerifyBatch(TestDb* db, const std::vector<query::StarQuery>& queries) {
    core::Engine engine(&db->catalog, db->pool.get(), Options());
    const auto handles = engine.SubmitBatch(queries);
    for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());

    const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
    for (size_t i = 0; i < queries.size(); ++i) {
      const query::ResultSet expected = oracle.Execute(queries[i]);
      const std::string diff = query::DiffResults(expected, handles[i].result());
      EXPECT_EQ(diff, "") << "query " << i << " under "
                          << core::EngineConfigName(GetParam().config);
    }
  }
};

TEST_P(AllConfigs, RandomQ32Batch) {
  VerifyBatch(SharedSsbDb(), ssb::RandomQ32Workload(6, /*seed=*/11));
}

TEST_P(AllConfigs, IdenticalQ32Batch) {
  VerifyBatch(SharedSsbDb(), ssb::SimilarQ32Workload(6, /*distinct_plans=*/1,
                                                     /*seed=*/12));
}

TEST_P(AllConfigs, FewPlansBatch) {
  VerifyBatch(SharedSsbDb(), ssb::SimilarQ32Workload(10, /*distinct_plans=*/3,
                                                     /*seed=*/13));
}

TEST_P(AllConfigs, MixedBatch) {
  VerifyBatch(SharedSsbDb(), ssb::MixedWorkload(9, /*seed=*/14));
}

TEST_P(AllConfigs, SelectivitySweepBatch) {
  for (double sel : {0.001, 0.05, 0.3}) {
    VerifyBatch(SharedSsbDb(), ssb::SelectivityQ32Workload(4, sel, 15));
  }
}

TEST_P(AllConfigs, SequentialSubmission) {
  // Staggered arrivals: WoP may or may not be open; results must still be
  // correct either way.
  TestDb* db = SharedSsbDb();
  core::Engine engine(&db->catalog, db->pool.get(), Options());
  const auto queries = ssb::SimilarQ32Workload(6, 2, 16);
  std::vector<core::QueryTicket> handles;
  for (const auto& q : queries) handles.push_back(engine.Submit(q));
  for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());

  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  for (size_t i = 0; i < queries.size(); ++i) {
    const query::ResultSet expected = oracle.Execute(queries[i]);
    EXPECT_EQ(query::DiffResults(expected, handles[i].result()), "")
        << "query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllConfigs,
    ::testing::Values(ConfigParam{EngineConfig::kQpipe, CommModel::kPull},
                      ConfigParam{EngineConfig::kQpipe, CommModel::kPush},
                      ConfigParam{EngineConfig::kQpipeCs, CommModel::kPull},
                      ConfigParam{EngineConfig::kQpipeCs, CommModel::kPush},
                      ConfigParam{EngineConfig::kQpipeSp, CommModel::kPull},
                      ConfigParam{EngineConfig::kQpipeSp, CommModel::kPush},
                      ConfigParam{EngineConfig::kCjoin, CommModel::kPull},
                      ConfigParam{EngineConfig::kCjoin, CommModel::kPush},
                      ConfigParam{EngineConfig::kCjoinSp, CommModel::kPull},
                      ConfigParam{EngineConfig::kCjoinSp, CommModel::kPush}),
    ParamName);

TEST(TpchQ1, AllScanConfigsMatchOracle) {
  TestDb* db = SharedTpchDb();
  const auto queries = ssb::IdenticalQ1Workload(5);
  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  const query::ResultSet expected = oracle.Execute(queries[0]);

  for (EngineConfig config :
       {EngineConfig::kQpipe, EngineConfig::kQpipeCs, EngineConfig::kQpipeSp}) {
    for (CommModel comm : {CommModel::kPull, CommModel::kPush}) {
      core::EngineOptions opts;
      opts.config = config;
      opts.comm = comm;
      opts.fact_table = ssb::kLineitem;
      core::Engine engine(&db->catalog, db->pool.get(), opts);
      const auto handles = engine.SubmitBatch(queries);
      for (const auto& h : handles) {
        ASSERT_TRUE(h.Wait().ok());
        EXPECT_EQ(query::DiffResults(expected, h.result(), 1e-9), "")
            << core::EngineConfigName(config);
      }
    }
  }
}

TEST(Sharing, SpCountersReflectIdenticalQueries) {
  TestDb* db = SharedSsbDb();
  core::EngineOptions opts;
  opts.config = EngineConfig::kQpipeSp;
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  const auto queries = ssb::SimilarQ32Workload(8, 1, 21);
  const auto handles = engine.SubmitBatch(queries);
  for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());
  const qpipe::SpCounters counters = engine.sp_counters();
  // 8 identical queries: the topmost shared stage absorbs 7 satellites.
  EXPECT_GE(counters.join_shares_total() + counters.scan_shares, 7u);
}

TEST(Sharing, CjoinSpSharesIdenticalPackets) {
  TestDb* db = SharedSsbDb();
  core::EngineOptions opts;
  opts.config = EngineConfig::kCjoinSp;
  opts.cjoin.max_queries = 64;
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  const auto queries = ssb::SimilarQ32Workload(8, 1, 22);
  const auto handles = engine.SubmitBatch(queries);
  for (const auto& h : handles) ASSERT_TRUE(h.Wait().ok());
  EXPECT_EQ(engine.cjoin_shares(), 7u);
  // Only one CJOIN packet should have entered the pipeline.
  EXPECT_EQ(engine.cjoin_stats().queries_admitted, 1u);
}

}  // namespace
}  // namespace sdw
