// Unit + property tests for the Shared Pages List (paper §4): WoP semantics,
// bounded capacity, last-reader reclamation, cancellation, and randomized
// multi-consumer schedules.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "common/rng.h"
#include "core/shared_pages_list.h"

namespace sdw::core {
namespace {

storage::PagePtr MakePage(int64_t value) {
  auto page = storage::Page::Make(8);
  std::byte* t = page->AppendTuple();
  std::memcpy(t, &value, 8);
  page->set_seq(static_cast<uint64_t>(value));
  return page;
}

int64_t PageValue(const storage::PagePtr& page) {
  int64_t v;
  std::memcpy(&v, page->tuple(0), 8);
  return v;
}

TEST(SharedPagesList, SingleProducerSingleConsumer) {
  SharedPagesList spl(0);
  auto reader = spl.TryAttachFromStart();
  ASSERT_NE(reader, nullptr);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(spl.Put(MakePage(i)));
  spl.Close();
  for (int i = 0; i < 10; ++i) {
    auto page = reader->Next();
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(PageValue(page), i);
  }
  EXPECT_EQ(reader->Next(), nullptr);
}

TEST(SharedPagesList, StepWopClosesOnFirstEmission) {
  SharedPagesList spl(0);
  auto primary = spl.TryAttachFromStart();
  ASSERT_NE(primary, nullptr);
  EXPECT_TRUE(spl.NothingEmitted());
  EXPECT_TRUE(spl.Put(MakePage(0)));
  EXPECT_FALSE(spl.NothingEmitted());
  // The step window has closed: no more from-start satellites.
  EXPECT_EQ(spl.TryAttachFromStart(), nullptr);
  // Linear attach still possible.
  auto late = spl.AttachAtCurrent();
  ASSERT_NE(late, nullptr);
  EXPECT_TRUE(spl.Put(MakePage(1)));
  spl.Close();
  EXPECT_EQ(PageValue(late->Next()), 1);  // missed page 0 by entry point
  EXPECT_EQ(late->Next(), nullptr);
  primary->CancelReader();
}

TEST(SharedPagesList, MultipleReadersSeeEveryPage) {
  SharedPagesList spl(0);
  std::vector<std::unique_ptr<SharedPagesList::Reader>> readers;
  for (int r = 0; r < 5; ++r) {
    auto reader = spl.TryAttachFromStart();
    ASSERT_NE(reader, nullptr);
    readers.push_back(std::move(reader));
  }
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(spl.Put(MakePage(i)));
  spl.Close();
  for (auto& reader : readers) {
    for (int i = 0; i < 20; ++i) {
      auto page = reader->Next();
      ASSERT_NE(page, nullptr);
      EXPECT_EQ(PageValue(page), i);
    }
    EXPECT_EQ(reader->Next(), nullptr);
  }
}

TEST(SharedPagesList, LastReaderReclaimsNodes) {
  SharedPagesList spl(0);
  auto r1 = spl.TryAttachFromStart();
  auto r2 = spl.TryAttachFromStart();
  for (int i = 0; i < 4; ++i) spl.Put(MakePage(i));
  EXPECT_EQ(spl.buffered_bytes(), 4 * storage::kPageSize);
  // r1 passes everything; nothing reclaimed while r2 lags.
  for (int i = 0; i < 4; ++i) r1->Next();
  EXPECT_GE(spl.buffered_bytes(), 3 * storage::kPageSize);
  // r2 catches up: nodes reclaimed behind it.
  for (int i = 0; i < 4; ++i) r2->Next();
  spl.Close();
  EXPECT_EQ(r1->Next(), nullptr);  // releases r1's last held node
  EXPECT_EQ(r2->Next(), nullptr);
  EXPECT_EQ(spl.buffered_bytes(), 0u);
}

TEST(SharedPagesList, BoundBlocksProducerUntilConsumed) {
  SharedPagesList spl(2 * storage::kPageSize);
  auto reader = spl.TryAttachFromStart();
  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      spl.Put(MakePage(i));
      produced.fetch_add(1);
    }
    spl.Close();
  });
  // Producer can buffer at most 2 pages ahead.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(produced.load(), 2);
  for (int i = 0; i < 6; ++i) {
    auto page = reader->Next();
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(PageValue(page), i);
  }
  EXPECT_EQ(reader->Next(), nullptr);
  producer.join();
  EXPECT_LE(spl.buffered_bytes(), 2 * storage::kPageSize);
}

TEST(SharedPagesList, CancelUnblocksProducer) {
  SharedPagesList spl(storage::kPageSize);
  auto reader = spl.TryAttachFromStart();
  std::thread producer([&] {
    int i = 0;
    while (spl.Put(MakePage(i))) ++i;  // eventually false after cancel
  });
  auto page = reader->Next();
  ASSERT_NE(page, nullptr);
  reader->CancelReader();
  producer.join();  // Put returned false
  EXPECT_EQ(spl.num_active_readers(), 0u);
}

TEST(SharedPagesList, PutWithNoReadersReturnsFalse) {
  SharedPagesList spl(0);
  auto reader = spl.TryAttachFromStart();
  reader->CancelReader();
  EXPECT_FALSE(spl.Put(MakePage(0)));
}

TEST(SharedPagesList, CancelMidStreamReleasesBacklog) {
  SharedPagesList spl(0);
  auto fast = spl.TryAttachFromStart();
  auto slow = spl.TryAttachFromStart();
  for (int i = 0; i < 8; ++i) spl.Put(MakePage(i));
  for (int i = 0; i < 8; ++i) fast->Next();
  EXPECT_GT(spl.buffered_bytes(), 0u);  // slow holds the backlog
  slow->CancelReader();
  spl.Close();
  EXPECT_EQ(fast->Next(), nullptr);
  EXPECT_EQ(spl.buffered_bytes(), 0u);
}

TEST(SharedPagesList, LateAttachSeesOnlySubsequentPages) {
  SharedPagesList spl(0);
  auto primary = spl.TryAttachFromStart();
  for (int i = 0; i < 3; ++i) spl.Put(MakePage(i));
  auto late = spl.AttachAtCurrent();  // linear WoP: entry at page 3
  for (int i = 3; i < 6; ++i) spl.Put(MakePage(i));
  spl.Close();
  for (int i = 3; i < 6; ++i) {
    auto page = late->Next();
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(PageValue(page), i);
  }
  EXPECT_EQ(late->Next(), nullptr);
  primary->CancelReader();
}

// Property test: random reader attach times, speeds and cancellations; every
// uncancelled reader must observe exactly the contiguous suffix of pages from
// its entry point, in order, and the list must fully drain.
class SplProperty : public ::testing::TestWithParam<int> {};

TEST_P(SplProperty, RandomScheduleDeliversContiguousSuffixes) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int num_pages = 40 + static_cast<int>(rng.Index(60));
  const int num_readers = 2 + static_cast<int>(rng.Index(6));
  const size_t bound = (1 + rng.Index(4)) * storage::kPageSize;

  SharedPagesList spl(bound);
  struct ReaderState {
    std::unique_ptr<SharedPagesList::Reader> reader;
    std::vector<int64_t> seen;
    bool cancel_early;
    size_t cancel_after;
  };
  std::vector<ReaderState> states(static_cast<size_t>(num_readers));

  // First reader attaches from the start; the rest attach from worker
  // threads at random times (linear WoP).
  states[0].reader = spl.TryAttachFromStart();
  ASSERT_NE(states[0].reader, nullptr);
  for (auto& s : states) {
    s.cancel_early = rng.Bernoulli(0.3);
    s.cancel_after = rng.Index(static_cast<size_t>(num_pages));
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  // Late attachers.
  std::mutex attach_mu;
  for (int r = 1; r < num_readers; ++r) {
    threads.emplace_back([&, r] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * r));
      std::unique_lock<std::mutex> lock(attach_mu);
      states[static_cast<size_t>(r)].reader = spl.AttachAtCurrent();
    });
  }
  for (auto& t : threads) t.join();
  threads.clear();

  // Consumers.
  for (int r = 0; r < num_readers; ++r) {
    threads.emplace_back([&, r] {
      ReaderState& s = states[static_cast<size_t>(r)];
      if (s.reader == nullptr) return;  // closed before attach (unlikely)
      while (true) {
        if (s.cancel_early && s.seen.size() >= s.cancel_after) {
          s.reader->CancelReader();
          return;
        }
        auto page = s.reader->Next();
        if (page == nullptr) return;
        s.seen.push_back(PageValue(page));
      }
    });
  }

  // Producer.
  for (int i = 0; i < num_pages; ++i) {
    if (!spl.Put(MakePage(i))) break;  // all readers cancelled
  }
  spl.Close();
  done.store(true);
  for (auto& t : threads) t.join();

  for (auto& s : states) {
    if (s.seen.empty()) continue;
    // Contiguous ascending suffix starting at the entry point.
    for (size_t i = 1; i < s.seen.size(); ++i) {
      ASSERT_EQ(s.seen[i], s.seen[i - 1] + 1);
    }
    EXPECT_LT(s.seen.back(), num_pages);
  }
  EXPECT_EQ(spl.buffered_bytes(), 0u);
  // Drained readers remain attached until destroyed.
  for (auto& s : states) s.reader.reset();
  EXPECT_EQ(spl.num_active_readers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplProperty, ::testing::Range(0, 12));

// Stress: heavy concurrent churn of attach/read/cancel while producing.
TEST(SharedPagesList, ConcurrentChurnStress) {
  SharedPagesList spl(4 * storage::kPageSize);
  auto primary = spl.TryAttachFromStart();
  std::atomic<int64_t> total_seen{0};

  std::thread producer([&] {
    for (int i = 0; i < 300; ++i) {
      if (!spl.Put(MakePage(i))) break;
    }
    spl.Close();
  });

  std::vector<std::thread> churners;
  for (int c = 0; c < 4; ++c) {
    churners.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c));
      for (int k = 0; k < 20; ++k) {
        auto r = spl.AttachAtCurrent();
        if (r == nullptr) return;
        const size_t reads = rng.Index(10);
        for (size_t i = 0; i < reads; ++i) {
          if (r->Next() == nullptr) break;
          total_seen.fetch_add(1);
        }
        r->CancelReader();
      }
    });
  }

  std::thread primary_consumer([&] {
    while (primary->Next() != nullptr) total_seen.fetch_add(1);
  });

  producer.join();
  primary_consumer.join();
  for (auto& t : churners) t.join();
  EXPECT_EQ(spl.buffered_bytes(), 0u);
  EXPECT_GE(total_seen.load(), 300);
}

}  // namespace
}  // namespace sdw::core
