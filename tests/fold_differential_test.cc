// Dynamic query folding differential suite: the folded engine against the
// unfolded oracle.
//
// Folding (CjoinOptions::query_folding) subsumes a pending query onto an
// in-flight slot whose predicates provably contain it — the satellite rides
// the host's filter verdicts with its own fact predicate and dimension
// residuals re-applied. Nothing about that may be observable in RESULTS:
//
//   * folded vs unfolded engines are bit-exact over the similarity-skewed
//     SSB workload, across seeds and slot caps (including caps tight enough
//     that the unfolded run rejects what folding absorbs);
//   * a host retiring mid-stream — client finishing first, cancellation,
//     deadline expiry — promotes its satellites, whose results still match
//     the standalone oracle;
//   * query_folding=false reproduces the baseline stats exactly (every fold
//     counter zero).
//
// Assert-based like the other differential suites (SDW_CHECK, no gtest).

#include <cstdio>
#include <thread>
#include <vector>

#include "common/timing.h"
#include "core/engine.h"
#include "query/result.h"
#include "ssb/ssb_queries.h"
#include "ssb/workload.h"
#include "test_util.h"

namespace sdw {
namespace {

using core::Engine;
using core::EngineOptions;
using core::QueryTicket;
using core::SubmitOptions;

testing::TestDb* Db() {
  // Big enough that a host's scan cycle outlives a second submission batch
  // (the staged fold tests below), small enough for the 120 s ctest budget.
  static testing::TestDb* db = testing::MakeSsbDb(0.02, 42).release();
  return db;
}

EngineOptions FoldOptions(bool folding, size_t slot_cap) {
  EngineOptions opts;
  opts.config = core::EngineConfig::kCjoin;
  opts.query_folding = folding;
  opts.cjoin.max_queries = slot_cap;
  opts.cjoin.fold_bits = 256;
  return opts;
}

// ------------------------------------------------- folded vs unfolded sweep

// Runs the similarity-skewed workload through a folded and an unfolded
// engine. The unfolded run at a generous cap is the oracle: every query the
// folded engine completes must match it bit-exactly; at the generous cap the
// folded engine must complete ALL queries (nothing rejected, folds absorb
// the similarity); at tight caps completions may differ but never results.
void FoldedVsUnfolded(uint64_t seed, size_t folded_cap) {
  testing::TestDb* db = Db();
  constexpr size_t kQueries = 40;
  const auto queries = ssb::FoldableQ32Workload(kQueries, 0.8, seed);

  auto run = [&](bool folding, size_t cap) {
    Engine engine(&db->catalog, db->pool.get(), FoldOptions(folding, cap));
    auto tickets = engine.SubmitBatch(queries);
    std::vector<Status> statuses;
    std::vector<query::ResultSet> results;
    for (auto& t : tickets) {
      statuses.push_back(t.Wait());
      results.push_back(statuses.back().ok() ? t.result()
                                             : query::ResultSet());
    }
    const cjoin::CjoinStats stats = engine.cjoin_stats();
    if (folding) {
      SDW_CHECK_MSG(stats.fold_checks >= stats.queries_folded,
                    "fold_checks < queries_folded");
      SDW_CHECK_MSG(stats.queries_folded >= 1,
                    "similarity-skewed workload produced no folds (seed %llu)",
                    static_cast<unsigned long long>(seed));
    } else {
      // The unfolded engine must not even LOOK at folding: baseline stats
      // reproduce exactly.
      SDW_CHECK(stats.queries_folded == 0);
      SDW_CHECK(stats.fold_checks == 0);
      SDW_CHECK(stats.fold_promotions == 0);
    }
    return std::make_pair(std::move(statuses), std::move(results));
  };

  const auto [oracle_status, oracle] = run(/*folding=*/false, kQueries + 8);
  for (size_t i = 0; i < kQueries; ++i) {
    SDW_CHECK_MSG(oracle_status[i].ok(), "oracle query %zu failed: %s", i,
                  oracle_status[i].ToString().c_str());
  }

  const auto [folded_status, folded] = run(/*folding=*/true, folded_cap);
  size_t compared = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    if (!folded_status[i].ok()) {
      // Only capacity rejection may drop a query at a tight cap.
      SDW_CHECK_MSG(
          folded_status[i].code() == StatusCode::kResourceExhausted,
          "folded query %zu failed unexpectedly: %s", i,
          folded_status[i].ToString().c_str());
      continue;
    }
    ++compared;
    const std::string diff = query::DiffResults(oracle[i], folded[i], 1e-9);
    SDW_CHECK_MSG(diff.empty(), "folded vs oracle, query %zu (seed %llu): %s",
                  i, static_cast<unsigned long long>(seed), diff.c_str());
  }
  if (folded_cap >= kQueries) {
    SDW_CHECK_MSG(compared == kQueries,
                  "generous cap still dropped queries (%zu of %zu)", compared,
                  kQueries);
  } else {
    SDW_CHECK_MSG(compared >= folded_cap,
                  "folding admitted less than the slot cap");
  }
}

// ------------------------------------------- staged folds + host retirement

ssb::Q32SelectivityParams HostParams() {
  ssb::Q32SelectivityParams p;
  p.cust_nations = {0, 1, 2, 3, 4, 5};
  p.supp_nations = {0, 1, 2, 3, 4, 5};
  p.year_lo = 1992;
  p.year_hi = 1998;
  return p;
}

std::vector<query::StarQuery> SatelliteQueries() {
  std::vector<query::StarQuery> sats;
  ssb::Q32SelectivityParams s1;
  s1.cust_nations = {1, 3};
  s1.supp_nations = {0, 2, 4};
  s1.year_lo = 1993;
  s1.year_hi = 1996;
  sats.push_back(ssb::MakeQ32Selectivity(s1));
  ssb::Q32SelectivityParams s2;
  s2.cust_nations = {5};
  s2.supp_nations = {1, 5};
  s2.year_lo = 1995;
  s2.year_hi = 1995;
  sats.push_back(ssb::MakeQ32Selectivity(s2));
  return sats;
}

// Standalone oracle results for the satellites (fresh unfolded engine).
std::vector<query::ResultSet> SatelliteOracle() {
  testing::TestDb* db = Db();
  static std::vector<query::ResultSet>* oracle = [] {
    auto* out = new std::vector<query::ResultSet>();
    Engine engine(&Db()->catalog, Db()->pool.get(),
                  FoldOptions(/*folding=*/false, 16));
    for (auto& t : engine.SubmitBatch(SatelliteQueries())) {
      SDW_CHECK(t.Wait().ok());
      out->push_back(t.result());
    }
    return out;
  }();
  (void)db;
  return *oracle;
}

// How a staged-fold trial retires the host mid-stream.
enum class HostEnd { kCompletes, kCancelled, kExpires };

// Submits a wide host, then — while its scan cycle is still in flight —
// a batch of provably-contained satellites, which must fold onto it. The
// host then retires per `end`; the satellites must complete with
// oracle-exact results regardless (the promotion path when the host goes
// first).
void StagedFoldTrial(HostEnd end) {
  testing::TestDb* db = Db();
  Engine engine(&db->catalog, db->pool.get(),
                FoldOptions(/*folding=*/true, 16));

  SubmitOptions host_opts;
  if (end == HostEnd::kExpires) {
    // Comfortably past admission, comfortably before a 0.02-SF scan cycle
    // ends (tens of ms on any machine this runs on).
    host_opts.deadline_nanos = NowNanos() + 20'000'000;  // 20 ms
  }
  QueryTicket host =
      engine.Submit(ssb::MakeQ32Selectivity(HostParams()), host_opts);

  // Second arrival batch: the admission pause happens mid-cycle, so the
  // satellites fold onto the already-running host.
  auto sat_tickets = engine.SubmitBatch(SatelliteQueries());

  if (end == HostEnd::kCancelled) {
    // Cancel only once the satellites have actually folded. An earlier
    // cancel races admission: a retiring host is correctly skipped as a
    // fold target, so the satellites would take their own slots and the
    // trial would no longer exercise promotion under riders.
    const int64_t give_up = NowNanos() + 5'000'000'000;
    while (engine.cjoin_stats().queries_folded < sat_tickets.size() &&
           NowNanos() < give_up) {
      std::this_thread::yield();
    }
    host.Cancel();
  }

  const Status host_status = host.Wait();
  std::vector<query::ResultSet> sat_results;
  for (auto& t : sat_tickets) {
    const Status s = t.Wait();
    SDW_CHECK_MSG(s.ok(), "satellite failed after host end=%d: %s",
                  static_cast<int>(end), s.ToString().c_str());
    sat_results.push_back(t.result());
  }

  const cjoin::CjoinStats stats = engine.cjoin_stats();
  switch (end) {
    case HostEnd::kCompletes:
      SDW_CHECK_MSG(host_status.ok(), "host failed: %s",
                    host_status.ToString().c_str());
      break;
    case HostEnd::kCancelled:
      // The cancel races the host's own completion; either terminal state
      // is legal, losing results is not.
      SDW_CHECK(host_status.ok() ||
                host_status.code() == StatusCode::kCancelled);
      break;
    case HostEnd::kExpires:
      SDW_CHECK_MSG(host_status.code() == StatusCode::kDeadlineExceeded ||
                        host_status.ok(),
                    "expiring host ended %s", host_status.ToString().c_str());
      break;
  }

  // The satellites must have actually folded (the host was mid-cycle when
  // they arrived) and must match their standalone oracle bit-exactly.
  SDW_CHECK_MSG(stats.queries_folded == sat_tickets.size(),
                "expected %zu folds, saw %llu", sat_tickets.size(),
                static_cast<unsigned long long>(stats.queries_folded));
  const auto oracle = SatelliteOracle();
  for (size_t i = 0; i < sat_results.size(); ++i) {
    const std::string diff =
        query::DiffResults(oracle[i], sat_results[i], 1e-9);
    SDW_CHECK_MSG(diff.empty(), "satellite %zu after host end=%d: %s", i,
                  static_cast<int>(end), diff.c_str());
  }
  // A host retiring before its riders promotes them instead of freeing the
  // slot out from under them.
  if (!host_status.ok()) {
    SDW_CHECK_MSG(stats.fold_promotions >= 1,
                  "host retired first but no promotion was counted");
  }
}

}  // namespace
}  // namespace sdw

int main() {
  // Caps: generous (everything admitted both modes), tight (the unfolded
  // oracle still generous; folding runs at 8 slots and absorbs the rest).
  for (uint64_t seed : {11u, 22u, 33u}) {
    std::fprintf(stderr, "folded vs unfolded: seed %llu\n",
                static_cast<unsigned long long>(seed));
    sdw::FoldedVsUnfolded(seed, /*folded_cap=*/48);
    sdw::FoldedVsUnfolded(seed, /*folded_cap=*/8);
  }
  std::fprintf(stderr, "staged fold: host completes\n");
  sdw::StagedFoldTrial(sdw::HostEnd::kCompletes);
  std::fprintf(stderr, "staged fold: host cancelled\n");
  sdw::StagedFoldTrial(sdw::HostEnd::kCancelled);
  std::fprintf(stderr, "staged fold: host expires\n");
  sdw::StagedFoldTrial(sdw::HostEnd::kExpires);
  std::printf("fold_differential_test: OK\n");
  return 0;
}
