// Admission churn stress test for the CJOIN pipeline's batched (epoch)
// admission and the zero-allocation distributor:
//  * deterministic epochs: K queries submitted together land in ONE
//    admission pause costing exactly one dimension scan per distinct
//    referenced dimension (stat-asserted via CjoinStats::admission_dim_scans
//    and admission_batches), while the pipeline is still serving the
//    previous epoch's queries;
//  * batch-admitted queries produce results identical to the same queries
//    admitted serially (one epoch each) and to the Volcano oracle — no lost
//    or duplicated tuples;
//  * concurrent churn: several submitter threads admit and finish queries
//    against the running pipeline; every result still matches the oracle;
//  * steady state: with the distributor scratch at its high-water mark, a
//    repeat run performs zero scratch growth (zero per-batch heap
//    allocation, CjoinStats::distributor_scratch_{reuses,grows}).

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "baseline/volcano.h"
#include "cjoin/pipeline.h"
#include "common/macros.h"
#include "common/rng.h"
#include "query/plan.h"
#include "query/result.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "storage/buffer_pool.h"
#include "storage/storage_device.h"

using namespace sdw;

namespace {

/// Thread-safe sink accumulating every emitted page for later verification.
class CollectSink : public core::PageSink {
 public:
  bool Put(storage::PagePtr page) override {
    std::lock_guard<std::mutex> lock(mu_);
    pages_.push_back(std::move(page));
    return true;
  }
  void Close() override {}

  query::ResultSet ToResultSet(const storage::Schema& schema) const {
    std::lock_guard<std::mutex> lock(mu_);
    query::ResultSet rs(schema);
    for (const auto& page : pages_) {
      for (uint32_t t = 0; t < page->tuple_count(); ++t) {
        rs.AddRow(page->tuple(t));
      }
    }
    return rs;
  }

 private:
  mutable std::mutex mu_;
  std::vector<storage::PagePtr> pages_;
};

struct Submitted {
  query::StarQuery q;
  storage::Schema schema;
  std::shared_ptr<CollectSink> sink;
};

class Harness {
 public:
  Harness() {
    ssb::SsbOptions ssb_opts;
    ssb_opts.scale_factor = 0.01;
    ssb::BuildSsbDatabase(&catalog_, ssb_opts);
    device_ = std::make_unique<storage::StorageDevice>(storage::DeviceOptions{});
    pool_ = std::make_unique<storage::BufferPool>(device_.get(), 0);
    oracle_ = std::make_unique<baseline::VolcanoEngine>(&catalog_, pool_.get());
    planner_ = std::make_unique<query::Planner>(&catalog_);

    cjoin::CjoinOptions opts;
    opts.max_queries = 32;
    opts.filter_threads = 2;
    opts.distributor_parts = 2;
    pipeline_ = std::make_unique<cjoin::CjoinPipeline>(
        &catalog_, pool_.get(), catalog_.MustGetTable(ssb::kLineorder), opts);
  }

  /// Submits all queries as one atomic batch (one admission epoch).
  /// `lives` (optional, parallel to queries) attaches client lifecycles —
  /// used by the deadline-expiry phase.
  std::vector<Submitted> SubmitEpoch(
      const std::vector<query::StarQuery>& queries,
      const std::vector<std::shared_ptr<core::QueryLifecycle>>& lives = {}) {
    std::vector<Submitted> out;
    std::vector<cjoin::CjoinPipeline::Submission> subs;
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto& q = queries[i];
      Submitted s{q, planner_->JoinOutputSchema(q),
                  std::make_shared<CollectSink>()};
      cjoin::CjoinPipeline::Submission sub;
      sub.q = q;
      sub.out_schema = s.schema;
      sub.sink = s.sink;
      if (!lives.empty()) sub.life = lives[i];
      sub.on_complete = [this](const Status&) {
        std::lock_guard<std::mutex> lock(done_mu_);
        ++done_;
        done_cv_.notify_all();
      };
      subs.push_back(std::move(sub));
      out.push_back(std::move(s));
    }
    pipeline_->SubmitMany(std::move(subs));
    return out;
  }

  /// Blocks until the pipeline has admitted `target` queries in total.
  void WaitAdmitted(uint64_t target) {
    while (pipeline_->stats().queries_admitted +
               admitted_before_reset_ < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  /// Blocks until `target` queries have completed in total.
  void WaitDone(size_t target) {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] { return done_ >= target; });
  }

  void ResetStats() {
    admitted_before_reset_ += pipeline_->stats().queries_admitted;
    pipeline_->ResetStats();
  }

  /// Asserts the submitted query's collected output equals the oracle's
  /// join sub-plan result (multiset compare: catches loss AND duplication).
  void VerifyAgainstOracle(const Submitted& s, const char* what) {
    const query::ResultSet actual = s.sink->ToResultSet(s.schema);
    const auto plan = planner_->BuildJoinPlan(s.q);
    const query::ResultSet expected = oracle_->ExecutePlan(*plan);
    const std::string diff = query::DiffResults(expected, actual);
    SDW_CHECK_MSG(diff.empty(), "%s: %s (query %s)", what, diff.c_str(),
                  s.q.Signature().c_str());
  }

  /// Distinct dimensions referenced by a set of queries — the expected
  /// number of admission scans for one epoch carrying them.
  static size_t DistinctDims(const std::vector<query::StarQuery>& queries) {
    std::set<std::tuple<std::string, std::string, std::string>> dims;
    for (const auto& q : queries) {
      for (const auto& d : q.dims) {
        dims.insert({d.dim_table, d.fact_fk_column, d.dim_pk_column});
      }
    }
    return dims.size();
  }

  storage::Catalog catalog_;
  std::unique_ptr<storage::StorageDevice> device_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<baseline::VolcanoEngine> oracle_;
  std::unique_ptr<query::Planner> planner_;
  std::unique_ptr<cjoin::CjoinPipeline> pipeline_;

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  size_t done_ = 0;
  uint64_t admitted_before_reset_ = 0;
};

// Phase A: N deterministic epochs of K queries each, submitted while the
// pipeline is still serving earlier epochs. Each epoch must cost one
// admission batch and one dimension scan per distinct referenced dimension
// — regardless of K.
void PhaseDeterministicEpochs(Harness* h, std::vector<Submitted>* all) {
  constexpr size_t kEpochs = 4;
  uint64_t submitted = 0;
  for (size_t e = 0; e < kEpochs; ++e) {
    // Heterogeneous epochs: Q3.2 variants share supplier/customer/date;
    // Q2.1 adds the part dimension in epoch 1 (dynamic filter creation).
    std::vector<query::StarQuery> qs = ssb::RandomQ32Workload(3, 100 + e);
    if (e == 1) qs.push_back(ssb::MakeQ21({}));
    const cjoin::CjoinStats before = h->pipeline_->stats();
    auto subs = h->SubmitEpoch(qs);
    submitted += qs.size();
    h->WaitAdmitted(submitted);
    const cjoin::CjoinStats after = h->pipeline_->stats();

    SDW_CHECK_MSG(after.admission_batches == before.admission_batches + 1,
                  "epoch %zu split into %llu admission batches", e,
                  static_cast<unsigned long long>(after.admission_batches -
                                                  before.admission_batches));
    const uint64_t scans = after.admission_dim_scans - before.admission_dim_scans;
    SDW_CHECK_MSG(scans == Harness::DistinctDims(qs),
                  "epoch %zu: %llu dimension scans for %zu queries over %zu "
                  "distinct dims (want one scan per dim)",
                  e, static_cast<unsigned long long>(scans), qs.size(),
                  Harness::DistinctDims(qs));
    for (auto& s : subs) all->push_back(std::move(s));
  }
}

// Phase B: the same K queries admitted once as a batch and once serially
// (one epoch each) must produce identical results.
void PhaseBatchVsSerial(Harness* h, size_t* done_target) {
  const auto qs = ssb::RandomQ32Workload(4, 777);

  const cjoin::CjoinStats b0 = h->pipeline_->stats();
  auto batched = h->SubmitEpoch(qs);
  *done_target += qs.size();
  h->WaitDone(*done_target);
  const cjoin::CjoinStats b1 = h->pipeline_->stats();
  const uint64_t batched_scans = b1.admission_dim_scans - b0.admission_dim_scans;
  SDW_CHECK(b1.admission_batches == b0.admission_batches + 1);
  SDW_CHECK(batched_scans == Harness::DistinctDims(qs));

  std::vector<Submitted> serial;
  for (const auto& q : qs) {
    auto one = h->SubmitEpoch({q});
    *done_target += 1;
    h->WaitDone(*done_target);  // full completion => guaranteed own epoch
    serial.push_back(std::move(one.front()));
  }
  const cjoin::CjoinStats b2 = h->pipeline_->stats();
  const uint64_t serial_scans = b2.admission_dim_scans - b1.admission_dim_scans;
  // Serial admission pays one scan per (query, dim); the batch amortized
  // shared dimensions into single scans.
  uint64_t per_query_dims = 0;
  for (const auto& q : qs) per_query_dims += q.dims.size();
  SDW_CHECK_MSG(serial_scans == per_query_dims,
                "serial admissions did %llu scans, want %llu",
                static_cast<unsigned long long>(serial_scans),
                static_cast<unsigned long long>(per_query_dims));
  SDW_CHECK_MSG(batched_scans < serial_scans,
                "batched admission did not amortize dimension scans");

  for (size_t i = 0; i < qs.size(); ++i) {
    h->VerifyAgainstOracle(batched[i], "batch-admitted");
    h->VerifyAgainstOracle(serial[i], "serially admitted");
    const query::ResultSet rb = batched[i].sink->ToResultSet(batched[i].schema);
    const query::ResultSet rs = serial[i].sink->ToResultSet(serial[i].schema);
    const std::string diff = query::DiffResults(rb, rs);
    SDW_CHECK_MSG(diff.empty(), "batch vs serial results differ: %s",
                  diff.c_str());
  }
}

// Phase C: concurrent submitter threads churn admissions and completions
// against the running pipeline.
void PhaseConcurrentChurn(Harness* h, std::vector<Submitted>* all,
                          size_t* done_target) {
  constexpr size_t kThreads = 3;
  constexpr size_t kPerThread = 6;
  std::mutex collected_mu;
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([h, t, all, &collected_mu] {
      Rng rng(9000 + t);
      for (size_t i = 0; i < kPerThread; ++i) {
        std::vector<query::StarQuery> qs;
        switch (rng.Index(3)) {
          case 0:
            qs = ssb::RandomQ32Workload(1, 5000 + t * 100 + i);
            break;
          case 1:
            qs.push_back(ssb::MakeQ11({}));
            break;
          default:
            qs.push_back(ssb::MakeQ21({}));
            break;
        }
        auto subs = h->SubmitEpoch(qs);
        {
          std::lock_guard<std::mutex> lock(collected_mu);
          for (auto& s : subs) all->push_back(std::move(s));
        }
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.Uniform(0, 500)));
      }
    });
  }
  for (auto& t : submitters) t.join();
  *done_target += kThreads * kPerThread;
  h->WaitDone(*done_target);
}

// Phase D: steady-state zero-allocation. Running an identical epoch twice,
// the second pass must reuse the distributor scratch without a single
// growth event.
void PhaseSteadyStateScratch(Harness* h, size_t* done_target) {
  const auto qs = ssb::RandomQ32Workload(4, 4242);

  auto warm = h->SubmitEpoch(qs);  // warms the scratch to its high-water mark
  *done_target += qs.size();
  h->WaitDone(*done_target);

  h->ResetStats();
  auto steady = h->SubmitEpoch(qs);
  *done_target += qs.size();
  h->WaitDone(*done_target);

  const cjoin::CjoinStats s = h->pipeline_->stats();
  SDW_CHECK_MSG(s.distributor_scratch_grows == 0,
                "steady-state distributor grew its scratch %llu times",
                static_cast<unsigned long long>(s.distributor_scratch_grows));
  SDW_CHECK_MSG(s.distributor_scratch_reuses > 0,
                "no distributor batches observed in steady state");
  SDW_CHECK(s.distributor_scratch_reuses >= s.fact_pages_scanned);

  for (auto& sub : warm) h->VerifyAgainstOracle(sub, "warm epoch");
  for (auto& sub : steady) h->VerifyAgainstOracle(sub, "steady epoch");
}

// Phase E: deadline-driven admission. An epoch mixing expired and valid
// deadlines must reject the expired queries before they cost a slot or a
// dimension scan — one scan per distinct dimension of the SURVIVING queries
// only — and must complete every rejected query's lifecycle with
// kDeadlineExceeded (no ticket left unsatisfied).
void PhaseDeadlineExpiry(Harness* h, size_t* done_target) {
  using sdw::core::QueryLifecycle;
  using sdw::core::SubmitOptions;

  // E1: an all-expired epoch — zero admissions, zero dimension scans.
  {
    const auto qs = ssb::RandomQ32Workload(3, 8100);
    std::vector<std::shared_ptr<QueryLifecycle>> lives;
    for (size_t i = 0; i < qs.size(); ++i) {
      SubmitOptions opts;
      opts.deadline_nanos = 1;  // expired long ago
      lives.push_back(std::make_shared<QueryLifecycle>(8100 + i, opts));
    }
    const cjoin::CjoinStats before = h->pipeline_->stats();
    h->SubmitEpoch(qs, lives);
    *done_target += qs.size();
    h->WaitDone(*done_target);  // on_complete ran for every rejection
    for (const auto& life : lives) {
      const Status s = life->Wait();
      SDW_CHECK_MSG(s.code() == sdw::StatusCode::kDeadlineExceeded,
                    "expired query finished %s", s.ToString().c_str());
    }
    const cjoin::CjoinStats after = h->pipeline_->stats();
    SDW_CHECK(after.queries_expired == before.queries_expired + qs.size());
    SDW_CHECK(after.queries_admitted == before.queries_admitted);
    SDW_CHECK_MSG(
        after.admission_dim_scans == before.admission_dim_scans,
        "expired admissions cost %llu dimension scans (want 0)",
        static_cast<unsigned long long>(after.admission_dim_scans -
                                        before.admission_dim_scans));
  }

  // E2: a mixed epoch — the expired half is rejected scan-free, the valid
  // half is admitted, completes, and matches the oracle.
  {
    const auto qs = ssb::RandomQ32Workload(4, 8200);
    std::vector<std::shared_ptr<QueryLifecycle>> lives;
    for (size_t i = 0; i < qs.size(); ++i) {
      SubmitOptions opts;
      if (i % 2 == 0) opts.deadline_nanos = 1;  // every other query expired
      lives.push_back(std::make_shared<QueryLifecycle>(8200 + i, opts));
    }
    std::vector<query::StarQuery> survivors;
    for (size_t i = 1; i < qs.size(); i += 2) survivors.push_back(qs[i]);

    const cjoin::CjoinStats before = h->pipeline_->stats();
    auto subs = h->SubmitEpoch(qs, lives);
    *done_target += qs.size();
    h->WaitDone(*done_target);
    const cjoin::CjoinStats after = h->pipeline_->stats();

    SDW_CHECK(after.queries_expired == before.queries_expired + qs.size() / 2);
    SDW_CHECK(after.queries_admitted ==
              before.queries_admitted + qs.size() / 2);
    const uint64_t scans =
        after.admission_dim_scans - before.admission_dim_scans;
    SDW_CHECK_MSG(scans == Harness::DistinctDims(survivors),
                  "mixed epoch cost %llu scans, want %zu (survivors only)",
                  static_cast<unsigned long long>(scans),
                  Harness::DistinctDims(survivors));
    for (size_t i = 0; i < qs.size(); ++i) {
      if (i % 2 == 0) {
        const Status s = lives[i]->Wait();
        SDW_CHECK(s.code() == sdw::StatusCode::kDeadlineExceeded);
      } else {
        // The pipeline completes lifecycles only on error/cancel paths; OK
        // completion belongs to the client's result drain (absent in this
        // direct-pipeline harness), so the survivor must still be open.
        SDW_CHECK(!lives[i]->done());
        h->VerifyAgainstOracle(subs[i], "deadline-mixed survivor");
      }
    }
  }
}

}  // namespace

int main() {
  Harness h;
  std::vector<Submitted> all;
  size_t done_target = 0;

  PhaseDeterministicEpochs(&h, &all);
  done_target += all.size();
  h.WaitDone(done_target);

  PhaseBatchVsSerial(&h, &done_target);
  PhaseConcurrentChurn(&h, &all, &done_target);

  // Every query admitted in phases A and C: results exactly match the
  // oracle — no lost and no duplicated tuples under churn.
  for (const auto& s : all) h.VerifyAgainstOracle(s, "churn");

  PhaseSteadyStateScratch(&h, &done_target);
  PhaseDeadlineExpiry(&h, &done_target);

  const cjoin::CjoinStats final_stats = h.pipeline_->stats();
  SDW_CHECK(h.pipeline_->num_active_queries() == 0);
  (void)final_stats;
  std::printf("admission_stress_test: OK (%zu queries)\n", done_target);
  return 0;
}
