// Unit tests for src/common: bitmaps, RNG, stats, string utils, thread pool,
// breakdown accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/bitmap.h"
#include "common/breakdown.h"
#include "common/cpu_meter.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/timing.h"
#include "common/str_util.h"
#include "common/thread_pool.h"

namespace sdw {
namespace {

TEST(Bitmap, SetTestClear) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.Any());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(Bitmap, FindNextSet) {
  Bitset b(200);
  b.Set(3);
  b.Set(77);
  b.Set(199);
  EXPECT_EQ(b.FindNextSet(0), 3u);
  EXPECT_EQ(b.FindNextSet(4), 77u);
  EXPECT_EQ(b.FindNextSet(78), 199u);
  EXPECT_EQ(b.FindNextSet(200), 200u);
  Bitset empty(64);
  EXPECT_EQ(empty.FindNextSet(0), 64u);
}

TEST(Bitmap, FindFirstClear) {
  Bitset b(70);
  for (size_t i = 0; i < 70; ++i) b.Set(i);
  EXPECT_EQ(b.FindFirstClear(), 70u);
  b.Clear(65);
  EXPECT_EQ(b.FindFirstClear(), 65u);
  b.Clear(0);
  EXPECT_EQ(b.FindFirstClear(), 0u);
}

TEST(Bitmap, SpanAndWithOr) {
  // dst &= (a | b): the CJOIN filter step.
  uint64_t dst[2] = {~0ull, ~0ull};
  uint64_t a[2] = {0b1010, 0};
  uint64_t b[2] = {0b0100, 1ull << 63};
  bits::AndWithOr(dst, a, b, 2);
  EXPECT_EQ(dst[0], 0b1110ull);
  EXPECT_EQ(dst[1], 1ull << 63);
}

TEST(Bitmap, ResizeClearsTail) {
  Bitset b(10);
  for (size_t i = 0; i < 10; ++i) b.Set(i);
  b.Resize(5);
  b.Resize(10);
  for (size_t i = 5; i < 10; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(Rng, DeterministicAcrossSeeds) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, SampleDistinctIsDistinctAndInRange) {
  Rng rng(9);
  const auto sample = rng.SampleDistinct(25, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
  for (size_t v : sample) EXPECT_LT(v, 25u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Stats, Moments) {
  Stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 4.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 9.0);
}

TEST(Stats, EmptyIsZero) {
  Stats s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Stddev(), 0.0);
  EXPECT_EQ(s.Percentile(99), 0.0);
}

TEST(StrUtil, PrintfAndJoin) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool("test");
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, BlockedTasksGetDedicatedWorkers) {
  // Tasks that block must not starve later tasks (packets wait on channels).
  ThreadPool pool("test");
  std::atomic<bool> release{false};
  std::atomic<int> blocked{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      blocked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran.store(true); });
  // The fifth task must run even while four tasks block.
  for (int spin = 0; spin < 10000 && !ran.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
  release.store(true);
  pool.WaitIdle();
  EXPECT_EQ(blocked.load(), 4);
}

TEST(Breakdown, AccumulatesAndResets) {
  Breakdown::Global().Reset();
  {
    // Busy-spin long enough that even a coarse (jiffy-granular) thread CPU
    // clock registers progress.
    ScopedComponentTimer t(Component::kHashing);
    const int64_t start = ThreadCpuNanos();
    volatile uint64_t x = 0;
    while (ThreadCpuNanos() - start < 30'000'000) {
      for (int i = 0; i < 100000; ++i) x = x + static_cast<uint64_t>(i);
    }
  }
  EXPECT_GT(Breakdown::Global().Seconds(Component::kHashing), 0.0);
  EXPECT_EQ(Breakdown::Global().Seconds(Component::kJoins), 0.0);
  Breakdown::Global().Reset();
  EXPECT_EQ(Breakdown::Global().TotalSeconds(), 0.0);
}

// Round trip of the shed-path resubmission hint: the rendered
// "[retry_after_ms=N]" must parse back to a hint a client can actually obey.
// The two regression shapes: a sub-millisecond hint must ROUND UP (truncation
// rendered "retry_after_ms=0", which parses as "no hint" and turned shedding
// into an immediate-resubmit hot loop), and an enormous hint must saturate in
// the parser instead of overflowing int64 nanos into a negative backoff.
TEST(Retry, RetryAfterHintRoundTrips) {
  auto round_trip = [](int64_t nanos) {
    return RetryAfterNanosFrom(
        ResourceExhaustedWithRetryAfter("engine overloaded", nanos));
  };
  // Zero and sub-millisecond hints clamp up to the 1 ms floor — never 0.
  EXPECT_EQ(round_trip(0), 1'000'000);
  EXPECT_EQ(round_trip(1), 1'000'000);
  EXPECT_EQ(round_trip(999'000), 1'000'000);
  // Whole milliseconds are exact.
  EXPECT_EQ(round_trip(1'000'000), 1'000'000);
  // INT64_MAX ns renders as more ms than int64 nanos can hold; the parser
  // saturates to the largest representable backoff (positive, never wraps).
  constexpr int64_t kMaxRepresentable =
      (INT64_MAX / 1'000'000) * 1'000'000;  // 9'223'372'036'854'000'000
  EXPECT_EQ(round_trip(INT64_MAX), kMaxRepresentable);
  EXPECT_GT(round_trip(INT64_MAX), 0);
  // A status without the hint tag parses as "no hint".
  EXPECT_EQ(RetryAfterNanosFrom(Status::ResourceExhausted("no hint here")), 0);
}

TEST(CpuMeter, MeasuresBusyWork) {
  CpuMeter meter;
  meter.Start();
  // Burn a fixed amount of CPU time (robust to descheduling under load).
  const int64_t start = ProcessCpuNanos();
  volatile uint64_t x = 0;
  while (ProcessCpuNanos() - start < 50'000'000) {
    for (int i = 0; i < 100000; ++i) x = x + static_cast<uint64_t>(i);
  }
  meter.Stop();
  EXPECT_GT(meter.WallSeconds(), 0.0);
  EXPECT_GT(meter.CpuSeconds(), 0.04);
  EXPECT_GT(meter.AvgCoresUsed(), 0.05);  // busy, even when descheduled
}

}  // namespace
}  // namespace sdw
