// Differential test for the shared aggregation stage: SharedAggregator's
// fold-once / slice-per-query path must produce, for every member query,
// exactly the rows the retained scalar reference (AggregateScalar — one
// private table per query) produces, across randomized predicate and
// group-by mixes, slot counts (1, 64, 65, 256), empty batches, all-dead
// live masks, batches whose dead tuples carry stale bitmap bits, and
// mixed-signature batches (several groups folding the same batch). Rows are
// compared as sorted per-query sets: integer aggregates bit-exact, floating
// aggregates within a relative tolerance (partial-merge order is free).
//
// A second layer runs whole engines end-to-end on the SSB database — one
// with the shared aggregation stage, one on the scalar reference
// (EngineOptions::shared_aggregation = false) — over queries with dimension
// payloads, shared shapes with differing predicate constants, and a global
// (no group-by) aggregate, comparing full ResultSets.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cjoin/shared_agg.h"
#include "cjoin/tuple_batch.h"
#include "common/bitmap.h"
#include "common/macros.h"
#include "common/rng.h"
#include "core/engine.h"
#include "query/result.h"
#include "ssb/ssb_schema.h"
#include "storage/page.h"
#include "test_util.h"

using namespace sdw;
using cjoin::AggregateScalar;
using cjoin::JoinRowMove;
using cjoin::SharedAggregator;
using cjoin::TupleBatch;

namespace {

constexpr size_t kParts = 3;

// ---------------------------------------------------------------- unit layer

// Synthetic fact schema all unit-layer shapes aggregate over. Fact-only
// groups (every JoinRowMove from the fact row) keep the layer independent of
// the filter/dimension machinery, which the engine layer covers.
const storage::Schema& FactSchema() {
  static const storage::Schema s({
      storage::Schema::Int32("k1"),
      storage::Schema::Int32("k2"),
      storage::Schema::Int32("v1"),
      storage::Schema::Int32("v2"),
      storage::Schema::Double("d1"),
  });
  return s;
}

storage::PagePtr MakeFactPage(uint32_t n, Rng* rng) {
  const storage::Schema& fs = FactSchema();
  storage::PagePtr page = storage::Page::Make(fs.tuple_size());
  SDW_CHECK(n <= page->capacity());
  for (uint32_t i = 0; i < n; ++i) {
    std::byte* t = page->AppendTuple();
    fs.SetInt32(t, 0, static_cast<int32_t>(rng->Uniform(0, 4)));
    fs.SetInt32(t, 1, static_cast<int32_t>(rng->Uniform(0, 2)));
    fs.SetInt32(t, 2, static_cast<int32_t>(rng->Uniform(0, 99)));
    fs.SetInt32(t, 3, static_cast<int32_t>(rng->Uniform(1, 9)));
    fs.SetDouble(t, 4, rng->NextDouble() * 100.0);
  }
  return page;
}

enum class Fill {
  kEmptyBitmaps,  // every tuple born dead (all-dead live mask)
  kFull,          // every tuple live with every slot bit set
  kRandom,        // random live/dead mix with random slot subsets
  kStaleBits,     // some dead tuples keep non-empty bitmaps (must be skipped)
};

// Builds a batch of `n` random fact tuples over `slots` query slots,
// following the distributor differential test's fill modes.
void FillBatch(TupleBatch* batch, uint32_t n, size_t slots, Fill fill,
               Rng* rng) {
  const size_t words = bits::WordsFor(slots);
  batch->fact_page = MakeFactPage(n, rng);
  batch->ResetFor(n, static_cast<uint32_t>(words), /*filters=*/1);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t* tb = batch->tuple_bits(i);
    bits::Zero(tb, words);
    switch (fill) {
      case Fill::kEmptyBitmaps:
        break;
      case Fill::kFull:
        bits::FillOnes(tb, slots);
        break;
      case Fill::kRandom:
      case Fill::kStaleBits: {
        if (rng->Bernoulli(0.1)) break;  // born dead
        const double density = rng->Bernoulli(0.5) ? 0.05 : 0.7;
        for (size_t s = 0; s < slots; ++s) {
          if (rng->Bernoulli(density)) bits::Set(tb, s);
        }
        break;
      }
    }
    if (!bits::Any(tb, words)) batch->kill_tuple(i);
  }
  if (fill == Fill::kStaleBits) {
    // The fold must trust the live mask, never a dead tuple's stale bits.
    for (uint32_t i = 0; i < n; ++i) {
      if (batch->tuple_live(i) && rng->Bernoulli(0.2)) batch->kill_tuple(i);
    }
  }
}

// One aggregation shape (group-by columns + aggregates over FactSchema).
struct ShapeSpec {
  const char* name;
  std::vector<size_t> group_cols;
  std::vector<query::BoundAgg> aggs;
};

std::vector<ShapeSpec> MakeShapes() {
  using Kind = query::AggSpec::Kind;
  std::vector<ShapeSpec> shapes;
  // Group by k1: exact-int sum + count.
  shapes.push_back({"by_k1",
                    {0},
                    {{Kind::kSum, 2, -1, -1, /*integer_exact=*/true, "sum_v1"},
                     {Kind::kCount, -1, -1, -1, false, "cnt"}}});
  // Group by (k1, k2): exact-int sum-product + floating average.
  shapes.push_back(
      {"by_k1_k2",
       {0, 1},
       {{Kind::kSumProduct, 2, 3, -1, /*integer_exact=*/true, "spv"},
        {Kind::kAvg, 4, -1, -1, false, "avg_d1"}}});
  // Global aggregate (no group columns): count + floating sum. Exercises the
  // empty-input one-zero-row rendering.
  shapes.push_back({"global",
                    {},
                    {{Kind::kCount, -1, -1, -1, false, "cnt"},
                     {Kind::kSum, 4, -1, -1, /*integer_exact=*/false,
                      "sum_d1"}}});
  return shapes;
}

// Fills a freshly created group's shape fields from a spec (what the
// pipeline's BindAggGroupLocked does from a planned query).
void BindShape(SharedAggregator::Group* g, const ShapeSpec& spec) {
  const storage::Schema& fs = FactSchema();
  g->join_schema = fs;
  g->join_row_size = fs.tuple_size();
  g->moves = {{/*from_fact=*/true, 0, /*src_col=*/0, 0, 0, fs.tuple_size()}};
  g->group_cols = spec.group_cols;
  g->aggs = spec.aggs;
  std::vector<storage::Column> cols;
  size_t key_width = 0;
  for (size_t c : spec.group_cols) {
    cols.push_back(fs.column(c));
    key_width += fs.column(c).width();
  }
  for (const auto& a : spec.aggs) {
    const bool int_out = a.integer_exact || a.kind == query::AggSpec::Kind::kCount;
    cols.push_back(int_out ? storage::Schema::Int64(a.out_name)
                           : storage::Schema::Double(a.out_name));
  }
  g->out_schema = storage::Schema(std::move(cols));
  g->key_width = key_width;
}

// Per-slot fact predicate: slots ≡ 1 (mod 5) get an unsatisfiable predicate
// (deterministic empty-slice coverage), a third are unconditionally true,
// the rest draw a random comparison on a fact column.
query::Predicate::Bound MakePred(uint32_t slot, Rng* rng) {
  query::Predicate p;
  if (slot % 5 == 1) {
    p.And(query::AtomicPred::Int("v1", query::CompareOp::kLt, 0));
  } else if (!rng->Bernoulli(1.0 / 3.0)) {
    const char* cols[] = {"k1", "k2", "v1"};
    const int64_t his[] = {4, 2, 99};
    const size_t c = rng->Index(3);
    const auto op = static_cast<query::CompareOp>(rng->Index(6));
    p.And(query::AtomicPred::Int(cols[c], op, rng->Uniform(0, his[c])));
  }
  return p.Bind(FactSchema());
}

double DecodeTol(double a, double b) {
  return 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

// Compares two rendered row sets for one group: same size, and after sorting
// (group keys are unique, so the key prefix is a total order) each pair has
// bit-equal keys, bit-equal integer aggregates and tolerance-equal floating
// aggregates.
void CheckRowsEqual(const SharedAggregator::Group& g,
                    std::vector<std::string> got, std::vector<std::string> want,
                    const char* shape, uint32_t slot) {
  SDW_CHECK_MSG(got.size() == want.size(),
                "%s slot %u: shared emitted %zu rows, scalar %zu", shape, slot,
                got.size(), want.size());
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  const auto& out = g.out_schema;
  for (size_t r = 0; r < got.size(); ++r) {
    const auto* grow = reinterpret_cast<const std::byte*>(got[r].data());
    const auto* wrow = reinterpret_cast<const std::byte*>(want[r].data());
    SDW_CHECK_MSG(
        std::memcmp(grow, wrow, g.key_width) == 0,
        "%s slot %u row %zu: group keys differ", shape, slot, r);
    for (size_t a = 0; a < g.aggs.size(); ++a) {
      const size_t col = g.group_cols.size() + a;
      if (out.column(col).type == storage::ColumnType::kDouble) {
        const double gv = out.GetDouble(grow, col);
        const double wv = out.GetDouble(wrow, col);
        SDW_CHECK_MSG(std::fabs(gv - wv) <= DecodeTol(gv, wv),
                      "%s slot %u row %zu agg %zu: %.17g != %.17g", shape,
                      slot, r, a, gv, wv);
      } else {
        SDW_CHECK_MSG(out.GetInt64(grow, col) == out.GetInt64(wrow, col),
                      "%s slot %u row %zu agg %zu: %lld != %lld", shape, slot,
                      r, a,
                      static_cast<long long>(out.GetInt64(grow, col)),
                      static_cast<long long>(out.GetInt64(wrow, col)));
      }
    }
  }
}

struct MemberRef {
  size_t shape;  // index into groups
  uint32_t slot;
  SharedAggregator::AccTable scalar;  // the member's private reference table
};

void CheckMember(const SharedAggregator& agg,
                 const std::vector<SharedAggregator::Group*>& groups,
                 const std::vector<ShapeSpec>& shapes, const MemberRef& m) {
  const SharedAggregator::Group& g = *groups[m.shape];
  SharedAggregator::AccTable slice;
  SharedAggregator::SliceSlot(g, m.slot, &slice);
  std::vector<std::string> got, want;
  SharedAggregator::RenderSlice(g, slice, &got);
  SharedAggregator::RenderSlice(g, m.scalar, &want);
  (void)agg;
  CheckRowsEqual(g, std::move(got), std::move(want), shapes[m.shape].name,
                 m.slot);
}

void RunTrial(size_t slots, uint64_t seed, bool preds_pre_applied) {
  Rng rng(seed);
  const std::vector<ShapeSpec> shapes = MakeShapes();
  SharedAggregator agg(kParts, bits::WordsFor(slots));

  // Mixed signatures: every shape gets a group; every batch folds through
  // all of them. Slots spread round-robin, so with one slot only shape 0 has
  // a member and the others fold as empty-member groups.
  std::vector<SharedAggregator::Group*> groups;
  for (size_t si = 0; si < shapes.size(); ++si) {
    SharedAggregator::Group* g = agg.CreateGroup(shapes[si].name);
    BindShape(g, shapes[si]);
    groups.push_back(g);
  }
  std::vector<query::Predicate::Bound> preds;
  std::vector<MemberRef> members;
  for (uint32_t slot = 0; slot < slots; ++slot) {
    preds.push_back(MakePred(slot, &rng));
    const size_t shape = slot % shapes.size();
    agg.AddMember(groups[shape], slot, preds[slot]);
    members.push_back({shape, slot, {}});
  }

  // Fold a stream of batches; the scalar reference accumulates each member's
  // private table over the same stream. Parts rotate; a mid-stream
  // MergePartials checks that merged + later folds stay cumulative.
  SharedAggregator::FoldScratch scratch;
  const uint32_t tuple_counts[] = {0, 1, 63, 64, 65, 300};
  size_t batch_index = 0;
  auto fold = [&](const TupleBatch& batch) {
    const size_t part = batch_index++ % kParts;
    for (SharedAggregator::Group* g : groups) {
      agg.FoldBatch(g, batch, FactSchema(), nullptr, part, preds_pre_applied,
                    &scratch);
    }
    for (MemberRef& m : members) {
      AggregateScalar(*groups[m.shape], {m.slot, m.slot, false, preds[m.slot], {}}, batch,
                      FactSchema(), nullptr, preds_pre_applied, &m.scalar);
    }
  };

  for (uint32_t n : tuple_counts) {
    for (Fill f : {Fill::kEmptyBitmaps, Fill::kFull, Fill::kRandom,
                   Fill::kStaleBits}) {
      TupleBatch batch;
      FillBatch(&batch, n, slots, f, &rng);
      fold(batch);
    }
    if (n == 64) {
      // Mid-stream merge: later folds land in emptied partials and must
      // accumulate on top of the merged table.
      for (SharedAggregator::Group* g : groups) {
        SharedAggregator::MergePartials(g);
      }
    }
  }
  for (SharedAggregator::Group* g : groups) {
    SharedAggregator::MergePartials(g);
  }
  for (const MemberRef& m : members) {
    CheckMember(agg, groups, shapes, m);
  }

  // Retirement: retire every odd slot (partials are merged), keep folding,
  // and require the survivors' slices to still match their scalar reference
  // over the full stream — retirement must not perturb survivors.
  std::vector<MemberRef> survivors;
  std::vector<bool> destroyed(groups.size(), false);
  for (MemberRef& m : members) {
    if (m.slot % 2 == 1) {
      if (agg.RetireSlot(groups[m.shape], m.slot)) {
        agg.DestroyGroup(groups[m.shape]);
        destroyed[m.shape] = true;
      }
    } else {
      survivors.push_back(std::move(m));
    }
  }
  for (int extra = 0; extra < 2; ++extra) {
    TupleBatch batch;
    FillBatch(&batch, 300, slots, Fill::kRandom, &rng);
    const size_t part = batch_index++ % kParts;
    for (size_t si = 0; si < groups.size(); ++si) {
      if (destroyed[si]) continue;
      agg.FoldBatch(groups[si], batch, FactSchema(), nullptr, part,
                    preds_pre_applied, &scratch);
    }
    for (MemberRef& m : survivors) {
      AggregateScalar(*groups[m.shape], {m.slot, m.slot, false, preds[m.slot], {}}, batch,
                      FactSchema(), nullptr, preds_pre_applied, &m.scalar);
    }
  }
  for (size_t si = 0; si < groups.size(); ++si) {
    if (!destroyed[si]) SharedAggregator::MergePartials(groups[si]);
  }
  for (const MemberRef& m : survivors) {
    CheckMember(agg, groups, shapes, m);
  }
}

// ---------------------------------------------------------- engine layer

// Same queries through two whole engines — shared aggregation stage vs the
// scalar reference path (join output streamed to per-query QPipe aggregation
// packets) — must yield identical ResultSets. Covers dimension payloads in
// group keys, which the fact-only unit layer does not.
void EngineSharedVsScalar() {
  testing::TestDb* db = testing::SharedSsbDb();

  std::vector<query::StarQuery> queries;
  auto add = [&](query::StarQuery q) { queries.push_back(std::move(q)); };

  // Two same-shape queries differing only in predicate constants: one shared
  // group, two slices.
  for (int year : {1993, 1995}) {
    query::StarQuery q;
    q.fact_table = ssb::kLineorder;
    query::DimJoin d;
    d.dim_table = ssb::kDate;
    d.fact_fk_column = "lo_orderdate";
    d.dim_pk_column = "d_datekey";
    d.pred.And(query::AtomicPred::Int("d_year", query::CompareOp::kGe, year));
    d.payload_columns.push_back("d_year");
    q.dims.push_back(std::move(d));
    q.group_by.push_back("d_year");
    query::AggSpec a;
    a.kind = query::AggSpec::Kind::kSum;
    a.col_a = "lo_revenue";
    a.out_name = "rev";
    q.aggregates.push_back(std::move(a));
    add(std::move(q));
  }
  // Distinct shape: two dimensions, two aggregates, fact predicate.
  {
    query::StarQuery q;
    q.fact_table = ssb::kLineorder;
    query::DimJoin s;
    s.dim_table = ssb::kSupplier;
    s.fact_fk_column = "lo_suppkey";
    s.dim_pk_column = "s_suppkey";
    s.pred.And(
        query::AtomicPred::Str("s_region", query::CompareOp::kEq, "ASIA"));
    s.payload_columns.push_back("s_nation");
    q.dims.push_back(std::move(s));
    query::DimJoin d;
    d.dim_table = ssb::kDate;
    d.fact_fk_column = "lo_orderdate";
    d.dim_pk_column = "d_datekey";
    d.payload_columns.push_back("d_year");
    q.dims.push_back(std::move(d));
    q.fact_pred.And(
        query::AtomicPred::Int("lo_quantity", query::CompareOp::kLt, 25));
    q.group_by = {"s_nation", "d_year"};
    query::AggSpec a1;
    a1.kind = query::AggSpec::Kind::kSumProduct;
    a1.col_a = "lo_extendedprice";
    a1.col_b = "lo_discount";
    a1.out_name = "rev";
    query::AggSpec a2;
    a2.kind = query::AggSpec::Kind::kCount;
    a2.out_name = "cnt";
    q.aggregates = {std::move(a1), std::move(a2)};
    add(std::move(q));
  }
  // Global aggregate (no group-by) behind a selective dimension predicate:
  // the one-zero-row-on-empty path end-to-end.
  {
    query::StarQuery q;
    q.fact_table = ssb::kLineorder;
    query::DimJoin c;
    c.dim_table = ssb::kCustomer;
    c.fact_fk_column = "lo_custkey";
    c.dim_pk_column = "c_custkey";
    c.pred.And(
        query::AtomicPred::Str("c_region", query::CompareOp::kEq, "EUROPE"));
    q.dims.push_back(std::move(c));
    query::AggSpec a;
    a.kind = query::AggSpec::Kind::kAvg;
    a.col_a = "lo_discount";
    a.out_name = "avg_disc";
    q.aggregates.push_back(std::move(a));
    add(std::move(q));
  }

  auto run = [&](bool shared) {
    core::EngineOptions opts;
    opts.config = core::EngineConfig::kCjoin;
    opts.shared_aggregation = shared;
    opts.cjoin.max_queries = 32;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    auto tickets = engine.SubmitBatch(queries);
    std::vector<query::ResultSet> results;
    for (auto& t : tickets) {
      SDW_CHECK_MSG(t.Wait().ok(), "query failed (shared=%d)", shared);
      results.push_back(t.result());
    }
    if (shared) {
      const cjoin::CjoinStats stats = engine.cjoin_stats();
      SDW_CHECK_MSG(stats.agg_groups_shared >= 1,
                    "same-shape pair did not share an aggregation group");
      SDW_CHECK(stats.agg_slice_emits >= queries.size());
      SDW_CHECK(stats.agg_batches_folded > 0);
    }
    return results;
  };

  const std::vector<query::ResultSet> shared = run(true);
  const std::vector<query::ResultSet> scalar = run(false);
  SDW_CHECK(shared.size() == scalar.size());
  for (size_t i = 0; i < shared.size(); ++i) {
    const std::string diff = query::DiffResults(scalar[i], shared[i], 1e-9);
    SDW_CHECK_MSG(diff.empty(), "engine shared vs scalar, query %zu: %s", i,
                  diff.c_str());
  }
}

}  // namespace

int main() {
  // 1 slot (degenerate), 64 (one bitmap word), 65 (first multi-word
  // straddle), 256 (four words).
  for (size_t slots : {size_t{1}, size_t{64}, size_t{65}, size_t{256}}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      RunTrial(slots, seed * 1000 + slots, /*preds_pre_applied=*/false);
    }
    // Preprocessor-applied predicates: both paths must read bitmaps as-is.
    RunTrial(slots, 4000 + slots, /*preds_pre_applied=*/true);
  }
  EngineSharedVsScalar();
  std::printf("aggregation_differential_test: OK\n");
  return 0;
}
