// Shared fixtures: small SSB / TPC-H databases built once per test binary.

#ifndef SDW_TESTS_TEST_UTIL_H_
#define SDW_TESTS_TEST_UTIL_H_

#include <memory>

#include "ssb/ssb_generator.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/storage_device.h"

namespace sdw::testing {

/// A catalog plus its simulated device and buffer pool.
struct TestDb {
  storage::Catalog catalog;
  std::unique_ptr<storage::StorageDevice> device;
  std::unique_ptr<storage::BufferPool> pool;
};

/// Builds an SSB database (memory-resident device by default).
inline std::unique_ptr<TestDb> MakeSsbDb(double sf, uint64_t seed = 42,
                                         bool memory_resident = true) {
  auto db = std::make_unique<TestDb>();
  ssb::BuildSsbDatabase(&db->catalog, {sf, seed});
  storage::DeviceOptions dev;
  dev.memory_resident = memory_resident;
  db->device = std::make_unique<storage::StorageDevice>(dev);
  db->pool = std::make_unique<storage::BufferPool>(db->device.get(),
                                                   /*capacity_bytes=*/0);
  return db;
}

/// Builds a TPC-H (lineitem-only) database.
inline std::unique_ptr<TestDb> MakeTpchDb(double sf, uint64_t seed = 7) {
  auto db = std::make_unique<TestDb>();
  ssb::BuildTpchQ1Database(&db->catalog, {sf, seed});
  storage::DeviceOptions dev;
  db->device = std::make_unique<storage::StorageDevice>(dev);
  db->pool = std::make_unique<storage::BufferPool>(db->device.get(), 0);
  return db;
}

/// Process-wide tiny SSB database (SF 0.01) for fast tests.
inline TestDb* SharedSsbDb() {
  static TestDb* db = MakeSsbDb(0.01).release();
  return db;
}

/// Process-wide tiny TPC-H database.
inline TestDb* SharedTpchDb() {
  static TestDb* db = MakeTpchDb(0.01).release();
  return db;
}

}  // namespace sdw::testing

#endif  // SDW_TESTS_TEST_UTIL_H_
