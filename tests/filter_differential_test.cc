// Differential test for the batched CJOIN filter hot path: Filter::Process
// (batched gather + ProbeBatch + live-mask maintenance) must produce
// bit-identical bitmaps, dim_rows and live masks to the retained scalar
// reference Filter::ProcessScalar, across randomized batches, single- and
// multi-word bitmaps, partially-dead and all-dead batches, and a chain of
// two filters.

#include <cstdio>
#include <cstring>
#include <vector>

#include "cjoin/filter.h"
#include "cjoin/tuple_batch.h"
#include "common/bitmap.h"
#include "common/macros.h"
#include "common/rng.h"
#include "query/predicate.h"
#include "storage/buffer_pool.h"
#include "storage/storage_device.h"
#include "storage/table.h"

using namespace sdw;
using cjoin::BatchPtr;
using cjoin::Filter;
using cjoin::FilterScratch;
using cjoin::TupleBatch;

namespace {

constexpr int64_t kDimRows = 500;
constexpr int64_t kKeySpace = 1200;  // > kDimRows, so some fact FKs miss
constexpr uint32_t kFactRows = 4000;

std::unique_ptr<storage::Table> MakeDimTable(const std::string& name,
                                             Rng* rng) {
  storage::Schema schema({storage::Schema::Int32("pk"),
                          storage::Schema::Int32("attr")});
  auto table = std::make_unique<storage::Table>(name, schema);
  // Unique PKs drawn from a key space wider than the table, shuffled.
  std::vector<size_t> pks = rng->SampleDistinct(kKeySpace, kDimRows);
  for (int64_t r = 0; r < kDimRows; ++r) {
    std::byte* row = table->AppendRow();
    schema.SetInt32(row, 0, static_cast<int32_t>(pks[r]));
    schema.SetInt32(row, 1, static_cast<int32_t>(rng->Uniform(0, 99)));
  }
  return table;
}

// `pad_width` > 0 appends a char column to change the page geometry; 491
// makes exactly 64 tuples fit per page, so full pages hit the
// num_tuples % 64 == 0 edge of the all-live fast-path detection.
std::unique_ptr<storage::Table> MakeFactTable(Rng* rng,
                                              uint32_t pad_width = 0) {
  std::vector<storage::Column> cols = {storage::Schema::Int32("fk1"),
                                       storage::Schema::Int64("fk2"),
                                       storage::Schema::Double("val")};
  if (pad_width > 0) cols.push_back(storage::Schema::Char("pad", pad_width));
  storage::Schema schema(cols);
  auto table = std::make_unique<storage::Table>("fact", schema);
  const uint32_t rows = pad_width > 0 ? 1024 : kFactRows;
  for (uint32_t r = 0; r < rows; ++r) {
    std::byte* row = table->AppendRow();
    schema.SetInt32(row, 0,
                    static_cast<int32_t>(rng->Uniform(0, kKeySpace - 1)));
    schema.SetInt64(row, 1, rng->Uniform(0, kKeySpace - 1));
    schema.SetDouble(row, 2, rng->NextDouble());
  }
  return table;
}

BatchPtr MakeBatch(const storage::Table* fact, size_t page_idx, size_t words,
                   size_t num_filters, size_t slots, Rng* rng,
                   bool all_dead) {
  auto batch = std::make_shared<TupleBatch>();
  batch->fact_page = fact->SharePage(page_idx);
  batch->page_index = page_idx;
  batch->ResetFor(batch->fact_page->tuple_count(),
                  static_cast<uint32_t>(words),
                  static_cast<uint32_t>(num_filters));
  for (uint32_t i = 0; i < batch->num_tuples; ++i) {
    uint64_t* tb = batch->tuple_bits(i);
    bits::Zero(tb, words);
    if (!all_dead && !rng->Bernoulli(0.05)) {  // 5% born-dead tuples
      for (size_t s = 0; s < slots; ++s) {
        if (rng->Bernoulli(0.7)) bits::Set(tb, s);
      }
    }
    if (!bits::Any(tb, words)) batch->kill_tuple(i);
  }
  return batch;
}

BatchPtr CloneBatch(const TupleBatch& src) {
  auto copy = std::make_shared<TupleBatch>();
  copy->fact_page = src.fact_page;
  copy->page_index = src.page_index;
  copy->num_tuples = src.num_tuples;
  copy->words_per_tuple = src.words_per_tuple;
  copy->num_filters = src.num_filters;
  copy->bits = src.bits;
  copy->dim_rows = src.dim_rows;
  copy->live = src.live;
  return copy;
}

void CheckIdentical(const TupleBatch& a, const TupleBatch& b,
                    const char* what) {
  SDW_CHECK_MSG(a.bits == b.bits, "%s: bitmap words differ", what);
  SDW_CHECK_MSG(a.dim_rows == b.dim_rows, "%s: dim_rows differ", what);
  SDW_CHECK_MSG(a.live == b.live, "%s: live masks differ", what);
}

void RunTrial(size_t slots, uint64_t seed, bool all_dead,
              uint32_t pad_width = 0) {
  Rng rng(seed);
  storage::DeviceOptions dev_opts;
  storage::StorageDevice device(dev_opts);
  storage::BufferPool pool(&device, 0);

  auto dim1 = MakeDimTable("dim1", &rng);
  auto dim2 = MakeDimTable("dim2", &rng);
  auto fact = MakeFactTable(&rng, pad_width);
  if (pad_width > 0) {
    // The padded geometry exists to exercise full pages whose tuple count
    // is an exact multiple of 64 (the all-live fast-path tail edge).
    SDW_CHECK(fact->rows_per_page() == 64);
  }
  const storage::Schema& fact_schema = fact->schema();
  const size_t words = bits::WordsFor(slots);

  Filter f1(dim1.get(), "fk1", "pk", 0, slots);
  Filter f2(dim2.get(), "fk2", "pk", 1, slots);
  f1.BindFactColumn(fact_schema);
  f2.BindFactColumn(fact_schema);

  // Admit a random set of queries: each references f1, f2 or both, with a
  // random selection on the dimension attribute; pass-through elsewhere.
  for (size_t s = 0; s < slots; ++s) {
    if (!rng.Bernoulli(0.6)) {  // inactive slot: pass everywhere
      f1.SetPass(static_cast<uint32_t>(s));
      f2.SetPass(static_cast<uint32_t>(s));
      continue;
    }
    const int64_t which = rng.Uniform(0, 2);  // 0: f1, 1: f2, 2: both
    auto pred = [&] {
      query::Predicate p;
      p.And(query::AtomicPred::Int("attr", query::CompareOp::kLe,
                                   rng.Uniform(0, 99)));
      return p;
    };
    if (which == 0 || which == 2) {
      f1.AdmitQuery(static_cast<uint32_t>(s), pred(), &pool);
    } else {
      f1.SetPass(static_cast<uint32_t>(s));
    }
    if (which == 1 || which == 2) {
      f2.AdmitQuery(static_cast<uint32_t>(s), pred(), &pool);
    } else {
      f2.SetPass(static_cast<uint32_t>(s));
    }
  }
  SDW_CHECK(f1.num_entries() > 0 && f2.num_entries() > 0);

  FilterScratch scratch;
  for (size_t pi = 0; pi < fact->num_pages(); ++pi) {
    BatchPtr batched = MakeBatch(fact.get(), pi, words, 2, slots, &rng,
                                 all_dead);
    BatchPtr scalar = CloneBatch(*batched);

    // Full chain through both filters on each side.
    f1.Process(batched.get(), &scratch);
    f2.Process(batched.get(), &scratch);
    f1.ProcessScalar(scalar.get(), fact_schema, 0);
    f2.ProcessScalar(scalar.get(), fact_schema, 1);
    CheckIdentical(*batched, *scalar, all_dead ? "all-dead" : "random");

    // Invariant: live bit set iff the tuple's bitmap is non-empty.
    for (uint32_t i = 0; i < batched->num_tuples; ++i) {
      SDW_CHECK(batched->tuple_live(i) ==
                bits::Any(batched->tuple_bits(i), words));
    }
  }
}

}  // namespace

int main() {
  // Single-word bitmaps (the ≤64-slot fast path) and multi-word (3 words).
  for (uint64_t seed : {1u, 2u, 3u}) {
    RunTrial(64, seed, /*all_dead=*/false);
    RunTrial(192, seed, /*all_dead=*/false);
  }
  // All-dead batches: every tuple skipped, nothing may be touched.
  RunTrial(64, 9, /*all_dead=*/true);
  RunTrial(192, 9, /*all_dead=*/true);
  // Pages holding exactly 64 tuples: num_tuples % 64 == 0, so the all-live
  // detection has no partial tail word to lean on and must scan every word.
  for (uint64_t seed : {4u, 5u}) {
    RunTrial(64, seed, /*all_dead=*/false, /*pad_width=*/491);
    RunTrial(192, seed, /*all_dead=*/false, /*pad_width=*/491);
  }
  RunTrial(64, 9, /*all_dead=*/true, /*pad_width=*/491);
  std::printf("filter_differential_test: OK\n");
  return 0;
}
