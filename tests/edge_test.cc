// Edge cases and failure injection: empty inputs, zero-selectivity queries,
// consumer cancellation mid-stream, page-boundary layouts, engine reuse
// across many batches, and the §3.2 fact-predicates-in-preprocessor variant.

#include <gtest/gtest.h>

#include <cstring>

#include "baseline/volcano.h"
#include "core/engine.h"
#include "qpipe/operators.h"
#include "ssb/ssb_queries.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "test_util.h"

namespace sdw {
namespace {

using core::CommModel;
using core::EngineConfig;
using testing::SharedSsbDb;
using testing::TestDb;

query::StarQuery ZeroSelectivityQ32() {
  // Contradictory dimension predicate: no date row matches.
  query::StarQuery q = ssb::MakeQ32({});
  query::Predicate impossible;
  impossible.And(query::AtomicPred::Int("d_year", query::CompareOp::kLt, 0));
  q.dims[2].pred = impossible;
  return q;
}

TEST(EdgeCases, ZeroSelectivityQueryAllConfigs) {
  TestDb* db = SharedSsbDb();
  for (EngineConfig config :
       {EngineConfig::kQpipe, EngineConfig::kQpipeSp, EngineConfig::kCjoin,
        EngineConfig::kCjoinSp}) {
    core::EngineOptions opts;
    opts.config = config;
    opts.cjoin.max_queries = 16;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto handles = engine.SubmitBatch({ZeroSelectivityQ32()});
    ASSERT_TRUE(handles[0].Wait().ok());
    // GROUP BY with no input: zero groups, zero rows.
    EXPECT_EQ(handles[0].result().num_rows(), 0u)
        << core::EngineConfigName(config);
  }
}

TEST(EdgeCases, WidestDisjunctionSelectsEverything) {
  TestDb* db = SharedSsbDb();
  ssb::Q32SelectivityParams p;
  for (int n = 0; n < ssb::kNumNations; ++n) {
    p.cust_nations.push_back(n);
    p.supp_nations.push_back(n);
  }
  const query::StarQuery q = ssb::MakeQ32Selectivity(p);
  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());

  core::EngineOptions opts;
  opts.config = EngineConfig::kCjoinSp;
  opts.cjoin.max_queries = 16;
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  const auto handles = engine.SubmitBatch({q});
  ASSERT_TRUE(handles[0].Wait().ok());
  EXPECT_EQ(query::DiffResults(oracle.Execute(q), handles[0].result()), "");
  EXPECT_GT(handles[0].result().num_rows(), 0u);
}

TEST(EdgeCases, EmptyFactTableCjoinCompletesImmediately) {
  // Catalog with an empty fact table but populated dimensions.
  auto db = std::make_unique<TestDb>();
  ssb::BuildSsbDatabase(&db->catalog, {0.01, 3});
  auto empty = std::make_unique<storage::Table>("empty_fact",
                                                ssb::LineorderSchema());
  db->catalog.AddTable(std::move(empty));
  db->device = std::make_unique<storage::StorageDevice>(
      storage::DeviceOptions{.memory_resident = true});
  db->pool = std::make_unique<storage::BufferPool>(db->device.get(), 0);

  core::EngineOptions opts;
  opts.config = EngineConfig::kCjoin;
  opts.fact_table = "empty_fact";
  opts.cjoin.max_queries = 8;
  core::Engine engine(&db->catalog, db->pool.get(), opts);

  query::StarQuery q = ssb::MakeQ32({});
  q.fact_table = "empty_fact";
  const auto handles = engine.SubmitBatch({q});
  ASSERT_TRUE(handles[0].Wait().ok());
  EXPECT_EQ(handles[0].result().num_rows(), 0u);
  EXPECT_EQ(engine.cjoin_stats().queries_completed, 1u);
}

TEST(EdgeCases, GlobalAggregateOverEmptyFactEmitsOneRow) {
  auto db = std::make_unique<TestDb>();
  auto empty = std::make_unique<storage::Table>("lineitem",
                                                ssb::LineitemSchema());
  db->catalog.AddTable(std::move(empty));
  db->device = std::make_unique<storage::StorageDevice>(
      storage::DeviceOptions{.memory_resident = true});
  db->pool = std::make_unique<storage::BufferPool>(db->device.get(), 0);

  // TPC-H Q1 has GROUP BY; strip it to test the global-aggregate contract.
  query::StarQuery q = ssb::MakeTpchQ1();
  q.group_by.clear();
  q.order_by.clear();

  core::EngineOptions opts;
  opts.config = EngineConfig::kQpipeSp;
  opts.fact_table = "lineitem";
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  const auto handles = engine.SubmitBatch({q});
  ASSERT_TRUE(handles[0].Wait().ok());
  EXPECT_EQ(handles[0].result().num_rows(), 1u);
}

TEST(EdgeCases, TupleExactlyFillsPage) {
  // A tuple size that divides the page payload exactly: the last slot must
  // be usable and iteration must not overrun.
  const size_t header = storage::kPageSize - storage::PageCapacityFor(1) * 1;
  const uint32_t tuple_size =
      static_cast<uint32_t>((storage::kPageSize - header) / 16);
  auto page = storage::Page::Make(tuple_size);
  uint32_t n = 0;
  while (page->AppendTuple() != nullptr) ++n;
  EXPECT_EQ(n, page->capacity());
  EXPECT_GE(static_cast<size_t>(n) * tuple_size + header,
            storage::kPageSize - tuple_size);
}

TEST(FailureInjection, ScanStopsWhenConsumerCancels) {
  TestDb* db = SharedSsbDb();
  const storage::Table* fact = db->catalog.MustGetTable(ssb::kLineorder);

  // A sink that accepts two pages, then reports "no consumers".
  struct FlakySink : public core::PageSink {
    int remaining = 2;
    int puts = 0;
    bool Put(storage::PagePtr) override {
      ++puts;
      return --remaining >= 0;
    }
    void Close() override {}
  };

  query::Planner planner(&db->catalog);
  query::StarQuery q = ssb::MakeQ32({});
  const auto plan = planner.BuildJoinPlan(q);
  // The fact scan node is the deepest probe-side child.
  const query::PlanNode* scan = plan.get();
  while (scan->kind != query::PlanNode::Kind::kScan) scan = scan->child(0);

  FlakySink sink;
  qpipe::RunScan(*scan, nullptr, db->pool.get(), &sink);
  // The operator must stop promptly instead of scanning the whole table.
  EXPECT_LE(sink.puts, 4);
  (void)fact;
}

TEST(FailureInjection, JoinStopsWhenConsumerCancels) {
  TestDb* db = SharedSsbDb();
  struct FlakySink : public core::PageSink {
    bool Put(storage::PagePtr) override { return false; }
    void Close() override {}
  };
  query::Planner planner(&db->catalog);
  const auto plan = planner.BuildJoinPlan(ssb::MakeQ32({}));

  baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  baseline::VectorChannel probe, build;
  // Materialize inputs for the innermost join, then join into a dead sink.
  const query::PlanNode* join = plan.get();
  while (join->child(0)->kind == query::PlanNode::Kind::kHashJoin) {
    join = join->child(0);
  }
  qpipe::RunScan(*join->child(0), nullptr, db->pool.get(), &probe);
  qpipe::RunScan(*join->child(1), nullptr, db->pool.get(), &build);
  FlakySink sink;
  qpipe::RunHashJoin(*join, &probe, &build, &sink);  // must return, not hang
  SUCCEED();
}

TEST(FailureInjection, EngineSurvivesManySequentialBatches) {
  // Soak: repeated batches on one engine must not leak registrations,
  // wedge scan services, or corrupt results.
  TestDb* db = SharedSsbDb();
  core::EngineOptions opts;
  opts.config = EngineConfig::kQpipeSp;
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  for (int round = 0; round < 8; ++round) {
    const auto queries =
        ssb::SimilarQ32Workload(4, 2, 600 + static_cast<uint64_t>(round));
    const auto handles = engine.SubmitBatch(queries);
    for (size_t i = 0; i < handles.size(); ++i) {
      ASSERT_TRUE(handles[i].Wait().ok());
      ASSERT_EQ(query::DiffResults(oracle.Execute(queries[i]),
                                   handles[i].result()),
                "")
          << "round " << round << " query " << i;
    }
  }
}

TEST(FactPredsInPreprocessor, ResultsUnchanged) {
  // §3.2 variant: evaluating fact predicates at the pipeline head must not
  // change any result (only performance).
  TestDb* db = SharedSsbDb();
  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  const auto queries = ssb::MixedWorkload(6, 33);  // Q1.1 has fact preds

  for (bool in_preprocessor : {false, true}) {
    core::EngineOptions opts;
    opts.config = EngineConfig::kCjoin;
    opts.cjoin.max_queries = 16;
    opts.cjoin.fact_preds_in_preprocessor = in_preprocessor;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto handles = engine.SubmitBatch(queries);
    for (size_t i = 0; i < handles.size(); ++i) {
      ASSERT_TRUE(handles[i].Wait().ok());
      EXPECT_EQ(query::DiffResults(oracle.Execute(queries[i]),
                                   handles[i].result()),
                "")
          << "in_preprocessor=" << in_preprocessor << " query " << i;
    }
  }
}

TEST(ThreadConfig, CjoinThreadCountsDoNotAffectResults) {
  TestDb* db = SharedSsbDb();
  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  const auto queries = ssb::RandomQ32Workload(4, 44);
  for (size_t filters : {1u, 3u}) {
    for (size_t parts : {1u, 3u}) {
      core::EngineOptions opts;
      opts.config = EngineConfig::kCjoin;
      opts.cjoin.max_queries = 16;
      opts.cjoin.filter_threads = filters;
      opts.cjoin.distributor_parts = parts;
      core::Engine engine(&db->catalog, db->pool.get(), opts);
      const auto handles = engine.SubmitBatch(queries);
      for (size_t i = 0; i < handles.size(); ++i) {
        ASSERT_TRUE(handles[i].Wait().ok());
        EXPECT_EQ(query::DiffResults(oracle.Execute(queries[i]),
                                     handles[i].result()),
                  "")
            << "filters=" << filters << " parts=" << parts;
      }
    }
  }
}

TEST(ChannelBytes, TinyChannelsStillCorrect) {
  // One-page channels maximize blocking/backpressure paths.
  TestDb* db = SharedSsbDb();
  const baseline::VolcanoEngine oracle(&db->catalog, db->pool.get());
  const auto queries = ssb::SimilarQ32Workload(4, 1, 45);
  for (CommModel comm : {CommModel::kPull, CommModel::kPush}) {
    core::EngineOptions opts;
    opts.config = EngineConfig::kQpipeSp;
    opts.comm = comm;
    opts.channel_bytes = storage::kPageSize;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto handles = engine.SubmitBatch(queries);
    for (size_t i = 0; i < handles.size(); ++i) {
      ASSERT_TRUE(handles[i].Wait().ok());
      EXPECT_EQ(query::DiffResults(oracle.Execute(queries[i]),
                                   handles[i].result()),
                "");
    }
  }
}

}  // namespace
}  // namespace sdw
