// Differential suite for the PAX page layout and its hot-path kernels. The
// columnar path (minipage reads, flat open-addressing probe, SIMD bitmap
// pass) must be BIT-IDENTICAL to the retained row-major oracle at every
// level:
//
//  * SIMD kernels vs their scalar twins over random word spans;
//  * PageLayout geometry: 64-byte-aligned minipage bases, non-overlapping
//    minipages, capacity accounting; Clone copies only the used payload
//    prefix (stat-asserted through Page::clone_payload_bytes);
//  * ConvertToColumnar preserves every field of every row;
//  * Predicate::Bound::EvalAt verdicts across layouts (int32/int64/double/
//    char atoms, trailing-space stripping);
//  * FlatInt64HashTable vs the chained Int64HashTable over adversarial key
//    sets (dense, sparse, negative, high-collision, all-missing);
//  * Filter::Process over a PAX fact vs the same filter over the row-major
//    fact and vs ProcessScalar on both, per global fact row (the two
//    layouts' page geometries differ, so comparison is row-indexed), over
//    slots {1, 64, 65, 256} and full/random/all-dead/stale-bit batches —
//    plus the zero-steady-state-allocation property of the filter scratch;
//  * whole engines: columnar_pages=true vs false on identical SSB catalogs,
//    checked against each other and a Volcano oracle.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/volcano.h"
#include "cjoin/filter.h"
#include "cjoin/tuple_batch.h"
#include "common/bitmap.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/engine.h"
#include "qpipe/flat_hash_table.h"
#include "qpipe/hash_table.h"
#include "query/predicate.h"
#include "query/result.h"
#include "ssb/ssb_schema.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/storage_device.h"
#include "storage/table.h"
#include "test_util.h"

using namespace sdw;
using cjoin::BatchPtr;
using cjoin::Filter;
using cjoin::FilterScratch;
using cjoin::TupleBatch;

namespace {

// ------------------------------------------------------------- SIMD kernels

void SimdKernels() {
  Rng rng(77);
  std::printf("  simd: avx2 %s\n", simd::Avx2Active() ? "active" : "inactive");
  for (size_t nwords = 1; nwords <= 9; ++nwords) {
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<uint64_t> a(nwords), b(nwords), dst(nwords), acc(nwords);
      for (size_t w = 0; w < nwords; ++w) {
        // Mix full-entropy and sparse words so the all-zero result (any==0)
        // is actually reachable.
        a[w] = rng.Bernoulli(0.3) ? 0 : rng.Next();
        b[w] = rng.Bernoulli(0.5) ? 0 : rng.Next();
        dst[w] = rng.Bernoulli(0.3) ? 0 : rng.Next();
        acc[w] = rng.Next();
      }
      // AndWithOrAny vs the bits:: reference.
      std::vector<uint64_t> dst_ref = dst;
      const uint64_t any_ref =
          bits::AndWithOrAny(dst_ref.data(), a.data(), b.data(), nwords);
      const uint64_t any =
          simd::AndWithOrAny(dst.data(), a.data(), b.data(), nwords);
      SDW_CHECK_MSG(dst == dst_ref, "AndWithOrAny words differ (nwords=%zu)",
                    nwords);
      SDW_CHECK_MSG((any == 0) == (any_ref == 0),
                    "AndWithOrAny any-verdict differs (nwords=%zu)", nwords);
      // OrAccumulateAny vs a plain loop.
      std::vector<uint64_t> acc_ref = acc;
      uint64_t src_any = 0;
      for (size_t w = 0; w < nwords; ++w) {
        acc_ref[w] |= dst[w];
        src_any |= dst[w];
      }
      const uint64_t got = simd::OrAccumulateAny(acc.data(), dst.data(), nwords);
      SDW_CHECK_MSG(acc == acc_ref, "OrAccumulateAny words differ (nwords=%zu)",
                    nwords);
      SDW_CHECK_MSG((got == 0) == (src_any == 0),
                    "OrAccumulateAny any-verdict differs (nwords=%zu)", nwords);
    }
  }
}

// --------------------------------------------- PageLayout / convert / Clone

storage::Schema MixedSchema() {
  return storage::Schema({storage::Schema::Int32("a"),
                          storage::Schema::Char("tag", 7),
                          storage::Schema::Int64("b"),
                          storage::Schema::Double("d")});
}

std::unique_ptr<storage::Table> MakeMixedTable(uint32_t rows, Rng* rng) {
  auto table = std::make_unique<storage::Table>("mixed", MixedSchema());
  const storage::Schema& s = table->schema();
  const char* tags[] = {"x", "abc", "abc  ", "zz zz  "};
  for (uint32_t r = 0; r < rows; ++r) {
    std::byte* row = table->AppendRow();
    s.SetInt32(row, 0, static_cast<int32_t>(rng->Uniform(-100, 100)));
    s.SetChar(row, 1, tags[rng->Index(4)]);
    s.SetInt64(row, 2, rng->Uniform(-5000, 5000));
    s.SetDouble(row, 3, rng->NextDouble() * 10.0);
  }
  return table;
}

void PageLayoutAndClone() {
  Rng rng(11);
  const storage::Schema schema = MixedSchema();
  storage::PageLayout layout(schema);

  // Geometry: every minipage base is 64-byte aligned, minipages do not
  // overlap, and the whole plan fits the payload.
  SDW_CHECK(layout.capacity() > 0);
  SDW_CHECK(layout.capacity() <=
            (storage::kPageSize - sizeof(storage::Page)) / schema.tuple_size());
  for (size_t c = 0; c < layout.num_columns(); ++c) {
    SDW_CHECK_MSG(layout.column_offset(c) % storage::kPageAlign == 0,
                  "minipage %zu base not 64-byte aligned", c);
    const size_t end = layout.column_offset(c) +
                       size_t{layout.capacity()} * layout.column_width(c);
    SDW_CHECK(end <= storage::kPageSize - sizeof(storage::Page));
    for (size_t o = 0; o < layout.num_columns(); ++o) {
      if (o == c) continue;
      const size_t o_end = layout.column_offset(o) +
                           size_t{layout.capacity()} * layout.column_width(o);
      SDW_CHECK_MSG(
          layout.column_offset(o) >= end || o_end <= layout.column_offset(c),
          "minipages %zu and %zu overlap", c, o);
    }
  }

  // ConvertToColumnar preserves every field of every row, in row order.
  const uint32_t kRows = 4000;
  auto table = MakeMixedTable(kRows, &rng);
  std::vector<std::string> before;
  before.reserve(kRows);
  for (uint32_t r = 0; r < kRows; ++r) {
    before.emplace_back(reinterpret_cast<const char*>(table->row(r)),
                        schema.tuple_size());
  }
  table->ConvertToColumnar();
  SDW_CHECK(table->columnar());
  SDW_CHECK(table->rows_per_page() == table->page_layout()->capacity());
  uint32_t row = 0;
  for (size_t pi = 0; pi < table->num_pages(); ++pi) {
    const storage::Page* page = table->page(pi);
    SDW_CHECK(page->columnar());
    // Minipage bases must be 64-byte aligned addresses, not just offsets.
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      SDW_CHECK(reinterpret_cast<uintptr_t>(page->column_data(c)) %
                    storage::kPageAlign ==
                0);
    }
    for (uint32_t i = 0; i < page->tuple_count(); ++i, ++row) {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        SDW_CHECK_MSG(
            std::memcmp(page->field(schema, c, i),
                        before[row].data() + schema.offset(c),
                        schema.column(c).width()) == 0,
            "converted field differs (row %u col %zu)", row, c);
      }
    }
  }
  SDW_CHECK(row == kRows);
  // Converting again is a no-op.
  const size_t pages_before = table->num_pages();
  table->ConvertToColumnar();
  SDW_CHECK(table->num_pages() == pages_before);

  // Clone copies the header plus only the used payload prefix — the stat
  // counter proves a nearly-empty page moves its used bytes, not kPageSize.
  {
    auto rows_table = MakeMixedTable(3, &rng);  // 3 tuples on one page
    const storage::Page* src = rows_table->page(0);
    const uint64_t base = storage::Page::clone_payload_bytes();
    storage::PagePtr copy = storage::Page::Clone(*src);
    const uint64_t delta = storage::Page::clone_payload_bytes() - base;
    SDW_CHECK_MSG(delta == src->used_bytes(),
                  "row-major clone copied %llu bytes, used %zu",
                  static_cast<unsigned long long>(delta), src->used_bytes());
    SDW_CHECK(delta < storage::kPageSize / 2);
    SDW_CHECK(copy->tuple_count() == src->tuple_count());
    SDW_CHECK(copy->seq() == src->seq());
    SDW_CHECK(std::memcmp(copy->tuple(0), src->tuple(0), src->used_bytes()) ==
              0);
  }
  {
    auto pax_table = MakeMixedTable(5, &rng);
    pax_table->ConvertToColumnar();
    const storage::Page* src = pax_table->page(0);
    const uint64_t base = storage::Page::clone_payload_bytes();
    storage::PagePtr copy = storage::Page::Clone(*src);
    const uint64_t delta = storage::Page::clone_payload_bytes() - base;
    size_t expect = 0;
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      expect += size_t{src->tuple_count()} * schema.column(c).width();
    }
    SDW_CHECK_MSG(delta == expect,
                  "PAX clone copied %llu bytes, used prefix %zu",
                  static_cast<unsigned long long>(delta), expect);
    SDW_CHECK(copy->columnar());
    for (uint32_t i = 0; i < src->tuple_count(); ++i) {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        SDW_CHECK(std::memcmp(copy->field(schema, c, i),
                              src->field(schema, c, i),
                              schema.column(c).width()) == 0);
      }
    }
  }
}

// ------------------------------------------------------ EvalAt row vs PAX

void EvalAtRowVsPax() {
  Rng rng(23);
  auto row_table = MakeMixedTable(2000, &rng);
  Rng rng2(23);
  auto pax_table = MakeMixedTable(2000, &rng2);
  pax_table->ConvertToColumnar();
  const storage::Schema& schema = row_table->schema();

  std::vector<query::Predicate> preds;
  {
    query::Predicate p;  // int32 range AND int64 bound
    p.And(query::AtomicPred::Int("a", query::CompareOp::kGe, -20));
    p.And(query::AtomicPred::Int("b", query::CompareOp::kLt, 1000));
    preds.push_back(std::move(p));
  }
  {
    query::Predicate p;  // char equality: stored values carry trailing pad
    p.And(query::AtomicPred::Str("tag", query::CompareOp::kEq, "abc"));
    preds.push_back(std::move(p));
  }
  {
    query::Predicate p;  // OR-clause mixing types, plus a double compare
    p.AndAnyOf({query::AtomicPred::Str("tag", query::CompareOp::kEq, "zz zz"),
                query::AtomicPred::Int("a", query::CompareOp::kGt, 50)});
    p.And(query::AtomicPred::Int("d", query::CompareOp::kLe, 7));
    preds.push_back(std::move(p));
  }

  for (const query::Predicate& p : preds) {
    const query::Predicate::Bound bound = p.Bind(schema);
    uint32_t global = 0;
    for (size_t pi = 0; pi < pax_table->num_pages(); ++pi) {
      const storage::Page* page = pax_table->page(pi);
      for (uint32_t i = 0; i < page->tuple_count(); ++i, ++global) {
        const bool row_verdict = bound.Eval(schema, row_table->row(global));
        const bool pax_verdict = bound.EvalAt(schema, *page, i);
        SDW_CHECK_MSG(row_verdict == pax_verdict,
                      "EvalAt verdict differs at row %u", global);
        // Row-major EvalAt must agree with Eval too.
        const storage::Page* rp =
            row_table->page(global / row_table->rows_per_page());
        SDW_CHECK(bound.EvalAt(
                      schema, *rp,
                      static_cast<uint32_t>(global %
                                            row_table->rows_per_page())) ==
                  row_verdict);
      }
    }
  }
}

// --------------------------------------------------- flat vs chained probe

void FlatVsChainedProbe() {
  Rng rng(31);
  auto check_set = [&](const std::vector<int64_t>& keys, const char* what) {
    qpipe::Int64HashTable chained;
    qpipe::FlatInt64HashTable flat;
    uint64_t next = 0;
    for (int64_t k : keys) {
      bool inserted;
      const uint64_t v = flat.FindOrInsert(k, next, &inserted);
      if (inserted) {
        chained.Insert(qpipe::HashKey(k), k, next);
        ++next;
      } else {
        // Duplicate key: FindOrInsert must return the first binding.
        SDW_CHECK_MSG(v < next, "%s: duplicate returned a fresh value", what);
      }
    }
    chained.Build();
    SDW_CHECK(flat.size() == chained.size());

    // Probe the inserted keys, never-inserted keys, and a shuffled mix.
    std::vector<int64_t> probes = keys;
    for (int t = 0; t < 500; ++t) {
      probes.push_back(rng.Uniform(-1000000, 1000000));
    }
    std::vector<uint64_t> flat_vals(probes.size()), chained_vals(probes.size());
    flat.ProbeBatch(probes.data(), probes.size(), flat_vals.data());
    chained.ProbeBatch(probes.data(), probes.size(), chained_vals.data());
    for (size_t i = 0; i < probes.size(); ++i) {
      SDW_CHECK_MSG(flat_vals[i] == chained_vals[i],
                    "%s: probe %zu differs (key %lld)", what, i,
                    static_cast<long long>(probes[i]));
      SDW_CHECK(flat.Find(probes[i]) == flat_vals[i]);
    }
  };

  std::vector<int64_t> dense;
  for (int64_t k = 0; k < 2000; ++k) dense.push_back(k);
  check_set(dense, "dense");

  std::vector<int64_t> sparse;
  for (int64_t k = 0; k < 1500; ++k) sparse.push_back(k * 7919 + 13);
  check_set(sparse, "sparse");

  std::vector<int64_t> negative;
  for (int64_t k = 0; k < 1000; ++k) negative.push_back(-k * 3 - 1);
  check_set(negative, "negative");

  // High collision pressure: keys striding by a power of two march straight
  // into the same low hash bits pre-mix; with duplicates layered on top.
  std::vector<int64_t> colliding;
  for (int64_t k = 0; k < 800; ++k) {
    colliding.push_back(k * 4096);
    if (k % 3 == 0) colliding.push_back(k * 4096);  // duplicate
  }
  check_set(colliding, "colliding");

  // All-missing probes against an empty-ish table.
  check_set({42}, "singleton");
}

// ----------------------------------------------- Filter: row vs PAX kernels

constexpr int64_t kDimRows = 500;
constexpr int64_t kKeySpace = 1200;  // wider than the dims, so FKs miss
constexpr uint32_t kFactRows = 4000;

enum class Fill { kFull, kRandom, kAllDead, kStaleBits };

std::unique_ptr<storage::Table> MakeDimTable(const std::string& name,
                                             Rng* rng) {
  storage::Schema schema(
      {storage::Schema::Int32("pk"), storage::Schema::Int32("attr")});
  auto table = std::make_unique<storage::Table>(name, schema);
  std::vector<size_t> pks = rng->SampleDistinct(kKeySpace, kDimRows);
  for (int64_t r = 0; r < kDimRows; ++r) {
    std::byte* row = table->AppendRow();
    schema.SetInt32(row, 0, static_cast<int32_t>(pks[r]));
    schema.SetInt32(row, 1, static_cast<int32_t>(rng->Uniform(0, 99)));
  }
  return table;
}

struct FactData {
  std::vector<int32_t> fk1;
  std::vector<int64_t> fk2;
  std::vector<double> val;
};

FactData MakeFactData(Rng* rng) {
  FactData d;
  for (uint32_t r = 0; r < kFactRows; ++r) {
    d.fk1.push_back(static_cast<int32_t>(rng->Uniform(0, kKeySpace - 1)));
    d.fk2.push_back(rng->Uniform(0, kKeySpace - 1));
    d.val.push_back(rng->NextDouble());
  }
  return d;
}

std::unique_ptr<storage::Table> MakeFactTable(const FactData& d) {
  storage::Schema schema({storage::Schema::Int32("fk1"),
                          storage::Schema::Int64("fk2"),
                          storage::Schema::Double("val")});
  auto table = std::make_unique<storage::Table>("fact", schema);
  for (uint32_t r = 0; r < kFactRows; ++r) {
    std::byte* row = table->AppendRow();
    schema.SetInt32(row, 0, d.fk1[r]);
    schema.SetInt64(row, 1, d.fk2[r]);
    schema.SetDouble(row, 2, d.val[r]);
  }
  return table;
}

/// Per-global-fact-row processing outcome: the page geometries of the two
/// layouts differ, so results are compared row-indexed, not page-indexed.
struct RowOutcome {
  std::vector<uint64_t> bits;
  std::vector<uint32_t> dims;
  bool live = false;

  bool operator==(const RowOutcome&) const = default;
};

/// Runs the two-filter chain over every page of `fact`, seeding each tuple's
/// bitmap from `init_bits` / `init_live` (indexed by global row), and
/// returns per-global-row outcomes. `scalar` selects ProcessScalar.
std::vector<RowOutcome> RunChain(const storage::Table* fact, Filter* f1,
                                 Filter* f2, size_t words,
                                 const std::vector<uint64_t>& init_bits,
                                 const std::vector<bool>& init_live,
                                 bool scalar, FilterScratch* scratch) {
  std::vector<RowOutcome> out(kFactRows);
  uint64_t row_base = 0;
  for (size_t pi = 0; pi < fact->num_pages(); ++pi) {
    auto batch = std::make_shared<TupleBatch>();
    batch->fact_page = fact->SharePage(pi);
    batch->page_index = pi;
    batch->ResetFor(batch->fact_page->tuple_count(),
                    static_cast<uint32_t>(words), /*filters=*/2);
    for (uint32_t i = 0; i < batch->num_tuples; ++i) {
      const size_t row = row_base + i;
      std::memcpy(batch->tuple_bits(i), init_bits.data() + row * words,
                  words * sizeof(uint64_t));
      if (!init_live[row]) batch->kill_tuple(i);
    }
    if (scalar) {
      f1->ProcessScalar(batch.get(), fact->schema(), 0);
      f2->ProcessScalar(batch.get(), fact->schema(), 1);
    } else {
      f1->Process(batch.get(), scratch);
      f2->Process(batch.get(), scratch);
    }
    for (uint32_t i = 0; i < batch->num_tuples; ++i) {
      RowOutcome& r = out[row_base + i];
      r.bits.assign(batch->tuple_bits(i), batch->tuple_bits(i) + words);
      r.dims.assign(batch->tuple_dim_rows(i), batch->tuple_dim_rows(i) + 2);
      r.live = batch->tuple_live(i);
    }
    row_base += batch->num_tuples;
  }
  SDW_CHECK(row_base == kFactRows);
  return out;
}

void FilterRowVsPax(size_t slots, uint64_t seed, Fill fill) {
  Rng rng(seed);
  storage::DeviceOptions dev_opts;
  storage::StorageDevice device(dev_opts);
  storage::BufferPool pool(&device, 0);

  auto dim1 = MakeDimTable("dim1", &rng);
  auto dim2 = MakeDimTable("dim2", &rng);
  const FactData data = MakeFactData(&rng);
  auto fact_row = MakeFactTable(data);
  auto fact_pax = MakeFactTable(data);
  fact_pax->ConvertToColumnar();
  SDW_CHECK(fact_pax->rows_per_page() < fact_row->rows_per_page());
  const size_t words = bits::WordsFor(slots);

  Filter f1(dim1.get(), "fk1", "pk", 0, slots);
  Filter f2(dim2.get(), "fk2", "pk", 1, slots);
  f1.BindFactColumn(fact_row->schema());
  f2.BindFactColumn(fact_row->schema());

  for (size_t s = 0; s < slots; ++s) {
    // Slot 0 always joins both dims so even slots=1 exercises real entries.
    const bool active = s == 0 || rng.Bernoulli(0.6);
    const int64_t which = s == 0 ? 2 : rng.Uniform(0, 2);
    auto pred = [&] {
      query::Predicate p;
      p.And(query::AtomicPred::Int("attr", query::CompareOp::kLe,
                                   rng.Uniform(0, 99)));
      return p;
    };
    if (active && (which == 0 || which == 2)) {
      f1.AdmitQuery(static_cast<uint32_t>(s), pred(), &pool);
    } else {
      f1.SetPass(static_cast<uint32_t>(s));
    }
    if (active && (which == 1 || which == 2)) {
      f2.AdmitQuery(static_cast<uint32_t>(s), pred(), &pool);
    } else {
      f2.SetPass(static_cast<uint32_t>(s));
    }
  }
  SDW_CHECK(f1.num_entries() > 0 && f2.num_entries() > 0);

  // Initial bitmaps per global fact row — identical seeds for every layout.
  std::vector<uint64_t> init_bits(kFactRows * words, 0);
  std::vector<bool> init_live(kFactRows, false);
  for (uint32_t r = 0; r < kFactRows; ++r) {
    uint64_t* tb = init_bits.data() + size_t{r} * words;
    switch (fill) {
      case Fill::kAllDead:
        break;
      case Fill::kFull:
        bits::FillOnes(tb, slots);
        break;
      case Fill::kRandom:
      case Fill::kStaleBits:
        if (rng.Bernoulli(0.05)) break;  // born dead
        for (size_t s = 0; s < slots; ++s) {
          if (rng.Bernoulli(0.7)) bits::Set(tb, s);
        }
        break;
    }
    init_live[r] = bits::Any(tb, words);
  }
  if (fill == Fill::kStaleBits) {
    // Dead tuples keeping stale non-empty bitmaps: the kernels must trust
    // the live mask, never the bits.
    for (uint32_t r = 0; r < kFactRows; ++r) {
      if (init_live[r] && rng.Bernoulli(0.2)) init_live[r] = false;
    }
  }

  FilterScratch scratch;
  const auto row_batched = RunChain(fact_row.get(), &f1, &f2, words, init_bits,
                                    init_live, /*scalar=*/false, &scratch);
  const auto pax_batched = RunChain(fact_pax.get(), &f1, &f2, words, init_bits,
                                    init_live, /*scalar=*/false, &scratch);
  const auto row_scalar = RunChain(fact_row.get(), &f1, &f2, words, init_bits,
                                   init_live, /*scalar=*/true, &scratch);
  const auto pax_scalar = RunChain(fact_pax.get(), &f1, &f2, words, init_bits,
                                   init_live, /*scalar=*/true, &scratch);
  for (uint32_t r = 0; r < kFactRows; ++r) {
    SDW_CHECK_MSG(row_batched[r] == pax_batched[r],
                  "row vs PAX batched differ at fact row %u (slots=%zu)", r,
                  slots);
    SDW_CHECK_MSG(row_batched[r] == row_scalar[r],
                  "row batched vs scalar differ at fact row %u (slots=%zu)", r,
                  slots);
    SDW_CHECK_MSG(pax_batched[r] == pax_scalar[r],
                  "PAX batched vs scalar differ at fact row %u (slots=%zu)", r,
                  slots);
    // Live bit iff non-empty bitmap — but only for tuples that entered the
    // chain live: dead tuples are skipped wholesale, so a stale-bits fill
    // legitimately leaves dead tuples with non-empty bitmaps.
    if (init_live[r]) {
      SDW_CHECK(pax_batched[r].live ==
                bits::Any(pax_batched[r].bits.data(), words));
    }
  }

  // Zero-allocation steady state: the scratch has seen both layouts'
  // high-water batch shapes; replays must not grow its vectors.
  const size_t caps[3] = {scratch.rows.capacity(), scratch.keys.capacity(),
                          scratch.values.capacity()};
  RunChain(fact_pax.get(), &f1, &f2, words, init_bits, init_live,
           /*scalar=*/false, &scratch);
  RunChain(fact_row.get(), &f1, &f2, words, init_bits, init_live,
           /*scalar=*/false, &scratch);
  SDW_CHECK_MSG(scratch.rows.capacity() == caps[0] &&
                    scratch.keys.capacity() == caps[1] &&
                    scratch.values.capacity() == caps[2],
                "warm filter scratch grew (slots=%zu)", slots);
}

// ------------------------------------------------------------ engine layer

std::vector<query::StarQuery> EngineQueries() {
  std::vector<query::StarQuery> queries;
  for (int year : {1993, 1995}) {
    query::StarQuery q;
    q.fact_table = ssb::kLineorder;
    query::DimJoin d;
    d.dim_table = ssb::kDate;
    d.fact_fk_column = "lo_orderdate";
    d.dim_pk_column = "d_datekey";
    d.pred.And(query::AtomicPred::Int("d_year", query::CompareOp::kGe, year));
    d.payload_columns.push_back("d_year");
    q.dims.push_back(std::move(d));
    q.group_by.push_back("d_year");
    query::AggSpec a;
    a.kind = query::AggSpec::Kind::kSum;
    a.col_a = "lo_revenue";
    a.out_name = "rev";
    q.aggregates.push_back(std::move(a));
    queries.push_back(std::move(q));
  }
  {
    // Two dimensions, char dim payload in the group key, and a fact
    // predicate — the EmitGroup/FoldBatch EvalAt paths over PAX pages.
    query::StarQuery q;
    q.fact_table = ssb::kLineorder;
    query::DimJoin s;
    s.dim_table = ssb::kSupplier;
    s.fact_fk_column = "lo_suppkey";
    s.dim_pk_column = "s_suppkey";
    s.pred.And(
        query::AtomicPred::Str("s_region", query::CompareOp::kEq, "ASIA"));
    s.payload_columns.push_back("s_nation");
    q.dims.push_back(std::move(s));
    query::DimJoin d;
    d.dim_table = ssb::kDate;
    d.fact_fk_column = "lo_orderdate";
    d.dim_pk_column = "d_datekey";
    d.payload_columns.push_back("d_year");
    q.dims.push_back(std::move(d));
    q.fact_pred.And(
        query::AtomicPred::Int("lo_quantity", query::CompareOp::kLt, 25));
    q.group_by = {"s_nation", "d_year"};
    query::AggSpec a1;
    a1.kind = query::AggSpec::Kind::kSumProduct;
    a1.col_a = "lo_extendedprice";
    a1.col_b = "lo_discount";
    a1.out_name = "rev";
    query::AggSpec a2;
    a2.kind = query::AggSpec::Kind::kCount;
    a2.out_name = "cnt";
    q.aggregates = {std::move(a1), std::move(a2)};
    queries.push_back(std::move(q));
  }
  return queries;
}

void EngineRowVsColumnar() {
  // Separate catalogs from identical seeds: conversion mutates the fact
  // table in place, so the row-major engine needs its own copy.
  auto row_db = testing::MakeSsbDb(0.01);
  auto col_db = testing::MakeSsbDb(0.01);
  const std::vector<query::StarQuery> queries = EngineQueries();

  auto run = [&](testing::TestDb* db, bool columnar) {
    core::EngineOptions opts;
    opts.config = core::EngineConfig::kCjoin;
    opts.columnar_pages = columnar;
    opts.cjoin.max_queries = 32;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    auto tickets = engine.SubmitBatch(queries);
    std::vector<query::ResultSet> results;
    for (auto& t : tickets) {
      SDW_CHECK_MSG(t.Wait().ok(), "query failed (columnar=%d)", columnar);
      results.push_back(t.result());
    }
    return results;
  };

  const auto row_results = run(row_db.get(), false);
  SDW_CHECK(!row_db->catalog.MustGetTable(ssb::kLineorder)->columnar());
  const auto col_results = run(col_db.get(), true);
  SDW_CHECK(col_db->catalog.MustGetTable(ssb::kLineorder)->columnar());
  SDW_CHECK(row_results.size() == col_results.size());
  for (size_t i = 0; i < row_results.size(); ++i) {
    const std::string diff =
        query::DiffResults(row_results[i], col_results[i], 1e-9);
    SDW_CHECK_MSG(diff.empty(), "engine row vs columnar, query %zu: %s", i,
                  diff.c_str());
  }

  // Volcano oracle on the untouched row-major catalog pins absolute
  // correctness, not just cross-engine agreement.
  const baseline::VolcanoEngine oracle(&row_db->catalog, row_db->pool.get());
  for (size_t i = 0; i < queries.size(); ++i) {
    const query::ResultSet expected = oracle.Execute(queries[i]);
    const std::string diff = query::DiffResults(expected, col_results[i], 1e-9);
    SDW_CHECK_MSG(diff.empty(), "oracle vs columnar engine, query %zu: %s", i,
                  diff.c_str());
  }
}

}  // namespace

int main() {
  SimdKernels();
  PageLayoutAndClone();
  EvalAtRowVsPax();
  FlatVsChainedProbe();
  // 1 slot (degenerate), 64 (one word), 65 (first multi-word straddle),
  // 256 (four words — the AVX2-width bitmap pass).
  for (size_t slots : {size_t{1}, size_t{64}, size_t{65}, size_t{256}}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      FilterRowVsPax(slots, seed * 1000 + slots, Fill::kRandom);
    }
    FilterRowVsPax(slots, 9000 + slots, Fill::kFull);
    FilterRowVsPax(slots, 9100 + slots, Fill::kAllDead);
    FilterRowVsPax(slots, 9200 + slots, Fill::kStaleBits);
  }
  EngineRowVsColumnar();
  std::printf("columnar_differential_test: OK\n");
  return 0;
}
