// Differential test for the distributor's batched grouping hot path:
// DistributePartBatched (recycled flat counting-sort scratch) must produce
// the same slot→tuple-index groups as the retained scalar reference
// DistributePartScalar (the seed's per-batch rebuilt hash map), across
// randomized live-masks and bitmaps, slot counts (1, 64, 65, 256), empty and
// full batches, all-dead batches, and batches carrying stale bitmap bits on
// dead tuples. Equality is ordering-insensitive across groups; the test also
// pins the zero-allocation property: once the scratch has seen a trial's
// high-water batch, repeat batches must not grow it.

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

#include "cjoin/pipeline.h"
#include "cjoin/tuple_batch.h"
#include "common/bitmap.h"
#include "common/macros.h"
#include "common/rng.h"

using namespace sdw;
using cjoin::DistributePartBatched;
using cjoin::DistributePartScalar;
using cjoin::DistributorScratch;
using cjoin::TupleBatch;

namespace {

enum class Fill {
  kEmptyBitmaps,  // every tuple born dead
  kFull,          // every tuple live with every slot bit set
  kRandom,        // random live/dead mix with random slot subsets
  kStaleBits,     // some dead tuples keep non-empty bitmaps (must be skipped)
};

// Builds a standalone batch (grouping never touches the fact page, so none
// is attached) of `n` tuples over `slots` query slots.
void FillBatch(TupleBatch* batch, uint32_t n, size_t slots, Fill fill,
               Rng* rng) {
  const size_t words = bits::WordsFor(slots);
  batch->ResetFor(n, static_cast<uint32_t>(words), /*filters=*/1);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t* tb = batch->tuple_bits(i);
    bits::Zero(tb, words);
    switch (fill) {
      case Fill::kEmptyBitmaps:
        break;
      case Fill::kFull:
        bits::FillOnes(tb, slots);
        break;
      case Fill::kRandom:
      case Fill::kStaleBits: {
        if (rng->Bernoulli(0.1)) break;  // born dead
        const double density = rng->Bernoulli(0.5) ? 0.05 : 0.7;
        for (size_t s = 0; s < slots; ++s) {
          if (rng->Bernoulli(density)) bits::Set(tb, s);
        }
        break;
      }
    }
    if (!bits::Any(tb, words)) batch->kill_tuple(i);
  }
  if (fill == Fill::kStaleBits) {
    // Kill ~20% of the live tuples while leaving their bitmaps intact: the
    // distributor must trust the live mask, never the stale bits.
    for (uint32_t i = 0; i < n; ++i) {
      if (batch->tuple_live(i) && rng->Bernoulli(0.2)) batch->kill_tuple(i);
    }
  }
}

// Sorted copy of a scalar-reference group map for ordering-insensitive
// comparison.
std::map<uint32_t, std::vector<uint32_t>> Canon(
    const std::unordered_map<uint32_t, std::vector<uint32_t>>& by_slot) {
  std::map<uint32_t, std::vector<uint32_t>> canon;
  for (const auto& [slot, idxs] : by_slot) {
    if (idxs.empty()) continue;
    auto sorted = idxs;
    std::sort(sorted.begin(), sorted.end());
    canon[slot] = std::move(sorted);
  }
  return canon;
}

std::map<uint32_t, std::vector<uint32_t>> CanonScratch(
    const DistributorScratch& scratch) {
  std::map<uint32_t, std::vector<uint32_t>> canon;
  for (size_t g = 0; g < scratch.num_groups(); ++g) {
    SDW_CHECK_MSG(scratch.group_size(g) > 0,
                  "batched grouping emitted an empty group");
    std::vector<uint32_t> idxs(scratch.group_begin(g),
                               scratch.group_begin(g) + scratch.group_size(g));
    auto sorted = idxs;
    std::sort(sorted.begin(), sorted.end());
    SDW_CHECK_MSG(sorted == idxs,
                  "group indexes not ascending (slot %u)",
                  scratch.group_slot(g));
    const bool inserted =
        canon.emplace(scratch.group_slot(g), std::move(sorted)).second;
    SDW_CHECK_MSG(inserted, "slot %u grouped twice", scratch.group_slot(g));
  }
  return canon;
}

void CheckOneBatch(const TupleBatch& batch, size_t slots,
                   DistributorScratch* scratch) {
  const size_t pairs = DistributePartBatched(batch, scratch);
  std::unordered_map<uint32_t, std::vector<uint32_t>> ref;
  DistributePartScalar(batch, &ref);

  const auto got = CanonScratch(*scratch);
  const auto want = Canon(ref);
  SDW_CHECK_MSG(got == want,
                "batched vs scalar groups differ (slots=%zu tuples=%u)",
                slots, batch.num_tuples);

  // Cross-check the pair count against the live tuples' popcounts.
  size_t expect_pairs = 0;
  for (uint32_t i = 0; i < batch.num_tuples; ++i) {
    if (batch.tuple_live(i)) {
      expect_pairs += bits::Popcount(batch.tuple_bits(i),
                                     batch.words_per_tuple);
    }
  }
  SDW_CHECK_MSG(pairs == expect_pairs, "pair count %zu != live popcount %zu",
                pairs, expect_pairs);
  // No slot beyond the trial's capacity may ever appear.
  for (const auto& [slot, idxs] : got) {
    SDW_CHECK(slot < slots);
    (void)idxs;
  }
}

void RunTrial(size_t slots, uint64_t seed) {
  Rng rng(seed);
  DistributorScratch scratch;  // reused across the whole trial

  const uint32_t tuple_counts[] = {0, 1, 63, 64, 65, 300, 1000};
  for (uint32_t n : tuple_counts) {
    for (Fill fill : {Fill::kEmptyBitmaps, Fill::kFull, Fill::kRandom,
                      Fill::kStaleBits}) {
      TupleBatch batch;
      FillBatch(&batch, n, slots, fill, &rng);
      CheckOneBatch(batch, slots, &scratch);
    }
  }

  // Zero-allocation steady state: the scratch has now seen the trial's
  // high-water shapes; replaying the largest/fullest batch must be pure
  // reuse — no vector growth.
  TupleBatch big;
  FillBatch(&big, 1000, slots, Fill::kFull, &rng);
  DistributePartBatched(big, &scratch);  // may grow once (new shape)
  const uint64_t grows_before = scratch.grows;
  for (int rep = 0; rep < 16; ++rep) {
    TupleBatch batch;
    FillBatch(&batch, 1000, slots, rep % 2 == 0 ? Fill::kFull : Fill::kRandom,
              &rng);
    CheckOneBatch(batch, slots, &scratch);
  }
  SDW_CHECK_MSG(scratch.grows == grows_before,
                "warm scratch grew %llu times (slots=%zu)",
                static_cast<unsigned long long>(scratch.grows - grows_before),
                slots);
  SDW_CHECK(scratch.reuses > 0);
}

}  // namespace

int main() {
  // 1 slot (degenerate), 64 (exactly one word), 65 (first multi-word
  // straddle), 256 (four words).
  for (size_t slots : {size_t{1}, size_t{64}, size_t{65}, size_t{256}}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      RunTrial(slots, seed * 1000 + slots);
    }
  }
  std::printf("distributor_differential_test: OK\n");
  return 0;
}
