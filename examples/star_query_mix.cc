// A data-warehouse morning: many analysts fire ad-hoc star queries at once
// (the situation the paper's introduction motivates — hundreds of concurrent
// users on one DW). This example runs the same mixed SSB workload
// (Q1.1 / Q2.1 / Q3.2) under all five engine configurations and prints the
// comparison, including the Global Query Plan's admission statistics.
//
//   $ ./star_query_mix [num_queries]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "harness/driver.h"
#include "harness/report.h"
#include "common/str_util.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"

int main(int argc, char** argv) {
  using namespace sdw;

  const size_t num_queries =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 24;

  storage::Catalog catalog;
  ssb::BuildSsbDatabase(&catalog, {.scale_factor = 0.02, .seed = 42});
  storage::StorageDevice device({.memory_resident = true});
  storage::BufferPool pool(&device, 0);

  const auto workload = ssb::MixedWorkload(num_queries, /*seed=*/5);
  std::printf("Mixed SSB workload: %zu concurrent queries "
              "(Q1.1/Q2.1/Q3.2 round-robin), SF 0.02\n\n",
              num_queries);

  harness::ReportTable table({"configuration", "avg response", "makespan",
                              "SP shares", "CJOIN admissions"});
  for (core::EngineConfig config :
       {core::EngineConfig::kQpipe, core::EngineConfig::kQpipeCs,
        core::EngineConfig::kQpipeSp, core::EngineConfig::kCjoin,
        core::EngineConfig::kCjoinSp}) {
    core::EngineOptions options;
    options.config = config;
    options.cjoin.max_queries = num_queries * 2;
    core::Engine engine(&catalog, &pool, options);
    harness::RunBatch(&engine, &pool, workload);  // warmup (discarded)
    const auto m = harness::RunBatch(&engine, &pool, workload);
    const auto sp = engine.sp_counters();
    const auto cj = engine.cjoin_stats();
    table.AddRow(
        {core::EngineConfigName(config),
         sdw::StrPrintf("%6.1f ms", m.response_seconds.Mean() * 1e3),
         sdw::StrPrintf("%6.1f ms", m.makespan_seconds * 1e3),
         sdw::StrPrintf("%llu scan + %llu join + %llu cjoin",
                   static_cast<unsigned long long>(sp.scan_shares),
                   static_cast<unsigned long long>(sp.join_shares_total()),
                   static_cast<unsigned long long>(engine.cjoin_shares())),
         cj.queries_admitted == 0
             ? std::string("-")
             : StrPrintf("%llu queries, %.1f ms paused",
                         static_cast<unsigned long long>(cj.queries_admitted),
                         cj.admission_seconds * 1e3)});
  }
  table.Print();

  std::printf(
      "\nEvery configuration returns identical results (the test suite\n"
      "verifies this against a query-centric oracle); they differ only in\n"
      "how much data and work they share, which is what the paper studies.\n");
  return 0;
}
