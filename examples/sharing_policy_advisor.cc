// The paper's Table 1 as an interactive advisor: given an expected number of
// concurrent analytical queries (and optionally the machine's hardware
// contexts), print which sharing strategy the engine should use and then
// validate the advice empirically on a small workload.
//
//   $ ./sharing_policy_advisor <concurrent_queries> [hardware_contexts]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "core/sharing_policy.h"
#include "harness/driver.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"

int main(int argc, char** argv) {
  using namespace sdw;

  const size_t queries =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 32;
  const size_t contexts =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 0;

  core::WorkloadProfile profile;
  profile.concurrent_queries = queries;
  profile.hardware_contexts = contexts;
  const core::PolicyDecision decision = core::RecommendSharing(profile);

  std::printf("Workload: %zu concurrent analytical queries on %zu hardware "
              "contexts\n\n",
              queries,
              contexts == 0 ? core::HardwareContexts() : contexts);
  std::printf("Recommendation (paper Table 1):\n");
  std::printf("  execution engine : %s\n",
              core::EngineConfigName(decision.config));
  std::printf("  I/O layer        : %s\n",
              decision.shared_scans ? "shared (circular) scans"
                                    : "independent scans");
  std::printf("  why              : %s\n\n", decision.rationale.c_str());

  // Validate on a small SSB instance: run the recommended configuration and
  // the alternative, and report both.
  storage::Catalog catalog;
  ssb::BuildSsbDatabase(&catalog, {.scale_factor = 0.02, .seed = 42});
  storage::StorageDevice device({.memory_resident = true});
  storage::BufferPool pool(&device, 0);
  const auto workload = ssb::RandomQ32Workload(queries, 11);

  std::printf("Empirical check on SF-0.02 SSB (%zu random Q3.2):\n",
              queries);
  for (core::EngineConfig config :
       {core::EngineConfig::kQpipeSp, core::EngineConfig::kCjoinSp}) {
    core::EngineOptions options;
    options.config = config;
    options.cjoin.max_queries = queries * 2;
    core::Engine engine(&catalog, &pool, options);
    const auto m = harness::RunBatch(&engine, &pool, workload);
    std::printf("  %-8s : avg response %6.1f ms%s\n",
                core::EngineConfigName(config),
                m.response_seconds.Mean() * 1e3,
                config == decision.config ? "   <- recommended" : "");
  }
  return 0;
}
