// Shared scans and work sharing in action: submit a batch of identical
// TPC-H Q1 queries and watch what Simultaneous Pipelining saves, under the
// push-based (FIFO) and the pull-based (SPL) communication models.
//
//   $ ./shared_scans_demo [num_queries]
//
// The demo prints, for each of {no sharing, CS/push, CS/pull}: the batch
// makespan, the scan-stage satellite count, and how many logical page reads
// the I/O layer actually served — showing that a single shared circular scan
// feeds the whole batch.

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "harness/driver.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"

int main(int argc, char** argv) {
  using namespace sdw;

  const size_t num_queries =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 16;

  storage::Catalog catalog;
  ssb::BuildTpchQ1Database(&catalog, {.scale_factor = 0.03, .seed = 7});
  storage::StorageDevice device({.memory_resident = true});
  storage::BufferPool pool(&device, 0);

  std::printf("%zu identical TPC-H Q1 queries over %zu lineitem rows\n\n",
              num_queries,
              catalog.MustGetTable(ssb::kLineitem)->num_rows());

  struct Config {
    const char* label;
    core::EngineConfig config;
    core::CommModel comm;
  };
  const Config configs[] = {
      {"no sharing (query-centric)", core::EngineConfig::kQpipe,
       core::CommModel::kPull},
      {"circular scans, push/FIFO ", core::EngineConfig::kQpipeCs,
       core::CommModel::kPush},
      {"circular scans, pull/SPL  ", core::EngineConfig::kQpipeCs,
       core::CommModel::kPull},
  };

  for (const Config& c : configs) {
    core::EngineOptions options;
    options.config = c.config;
    options.comm = c.comm;
    options.fact_table = ssb::kLineitem;
    core::Engine engine(&catalog, &pool, options);

    device.ResetStats();
    const auto metrics = harness::RunBatch(&engine, &pool,
                                           ssb::IdenticalQ1Workload(num_queries));
    const auto sp = engine.sp_counters();
    std::printf(
        "%s  makespan %6.1f ms | avg response %6.1f ms | scan satellites "
        "%llu | logical page reads %llu\n",
        c.label, metrics.makespan_seconds * 1e3,
        metrics.response_seconds.Mean() * 1e3,
        static_cast<unsigned long long>(sp.scan_shares),
        static_cast<unsigned long long>(device.logical_reads()));
  }

  std::printf(
      "\nWith sharing, one host query scans and filters; the other %zu are\n"
      "satellites. Pull-based SPL removes the host's forwarding work, which\n"
      "is why the paper recommends it on multicores (paper §4).\n",
      num_queries - 1);
  return 0;
}
