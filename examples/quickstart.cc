// Quickstart: build a small Star Schema Benchmark database, start the
// integrated engine in its recommended configuration, run one analytical
// query through the asynchronous ticket API, and print the results.
//
//   $ ./quickstart
//
// The public API in five steps:
//   1. storage::Catalog + ssb::BuildSsbDatabase     — load data
//   2. storage::StorageDevice + BufferPool          — I/O layer (memory mode)
//   3. core::Engine with EngineOptions              — pick a configuration
//      (Engine is a core::ExecutorClient — swap in baseline::VolcanoEngine
//      or any future backend without touching client code)
//   4. ssb::MakeQ32 / query::StarQuery              — describe the query
//   5. engine.Submit(query, SubmitOptions) -> QueryTicket
//      ticket.Wait() -> Status, ticket.result()     — run and read results
//
// The ticket is the whole client lifecycle: Wait() returns the terminal
// Status (OK / CANCELLED / DEADLINE_EXCEEDED / ... — see common/status.h),
// ticket.Cancel() detaches mid-flight, SubmitOptions carries per-query
// deadlines and row limits, and ticket.metrics() reports timing and
// sharing for this one query.

#include <cstdio>

#include "core/engine.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_schema.h"
#include "ssb/ssb_queries.h"

int main() {
  using namespace sdw;

  // 1. Load a scale-factor-0.1 SSB database (~600k fact rows).
  storage::Catalog catalog;
  ssb::BuildSsbDatabase(&catalog, {.scale_factor = 0.1, .seed = 42});
  std::printf("Loaded SSB: %zu lineorder rows, %zu tables\n",
              catalog.MustGetTable(ssb::kLineorder)->num_rows(),
              catalog.num_tables());

  // 2. Memory-resident I/O layer (paper's RAM-drive setup).
  storage::StorageDevice device({.memory_resident = true});
  storage::BufferPool pool(&device, /*capacity_bytes=*/0);

  // 3. The integrated engine: QPipe-SP = query-centric operators with
  //    Simultaneous Pipelining over pull-based Shared Pages Lists.
  core::EngineOptions options;
  options.config = core::EngineConfig::kQpipeSp;
  options.comm = core::CommModel::kPull;
  core::Engine engine(&catalog, &pool, options);

  // 4. SSB Q3.2: revenue by (customer city, supplier city, year).
  ssb::Q32Params params;
  params.cust_nation = 23;  // UNITED KINGDOM
  params.supp_nation = 24;  // UNITED STATES
  params.year_lo = 1992;
  params.year_hi = 1997;
  const query::StarQuery q = ssb::MakeQ32(params);

  // 5. Submit asynchronously, wait for the terminal status, read results.
  //    SubmitOptions could add a deadline (deadline_nanos), a row_limit, or
  //    a client_tag here; ticket.Cancel() would detach the query mid-run.
  core::SubmitOptions submit_opts;
  submit_opts.client_tag = "quickstart";
  core::QueryTicket ticket = engine.Submit(q, submit_opts);
  const Status status = ticket.Wait();
  if (!status.ok()) {
    std::printf("query failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const query::ResultSet& result = ticket.result();
  const core::QueryMetrics metrics = ticket.metrics();

  std::printf("\nSSB Q3.2 returned %zu rows in %.1f ms (%llu result pages):\n",
              result.num_rows(), metrics.response_seconds() * 1e3,
              static_cast<unsigned long long>(metrics.pages_read));
  std::printf("  %-12s %-12s %-6s %s\n", "c_city", "s_city", "year",
              "revenue");
  const size_t show = result.num_rows() < 10 ? result.num_rows() : 10;
  for (size_t i = 0; i < show; ++i) {
    std::printf("  %s\n", result.FormatRow(i).c_str());
  }
  if (result.num_rows() > show) {
    std::printf("  ... (%zu more)\n", result.num_rows() - show);
  }
  return 0;
}
