// Quickstart: build a small Star Schema Benchmark database, start the
// integrated engine in its recommended configuration, run one analytical
// query, and print the results.
//
//   $ ./quickstart
//
// The public API in five steps:
//   1. storage::Catalog + ssb::BuildSsbDatabase   — load data
//   2. storage::StorageDevice + BufferPool        — I/O layer (memory mode)
//   3. core::Engine with EngineOptions            — pick a configuration
//   4. ssb::MakeQ32 / query::StarQuery            — describe the query
//   5. engine.SubmitBatch(...) -> QueryHandle     — run and read results

#include <cstdio>

#include "core/engine.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_schema.h"
#include "ssb/ssb_queries.h"

int main() {
  using namespace sdw;

  // 1. Load a scale-factor-0.1 SSB database (~600k fact rows).
  storage::Catalog catalog;
  ssb::BuildSsbDatabase(&catalog, {.scale_factor = 0.1, .seed = 42});
  std::printf("Loaded SSB: %zu lineorder rows, %zu tables\n",
              catalog.MustGetTable(ssb::kLineorder)->num_rows(),
              catalog.num_tables());

  // 2. Memory-resident I/O layer (paper's RAM-drive setup).
  storage::StorageDevice device({.memory_resident = true});
  storage::BufferPool pool(&device, /*capacity_bytes=*/0);

  // 3. The integrated engine: QPipe-SP = query-centric operators with
  //    Simultaneous Pipelining over pull-based Shared Pages Lists.
  core::EngineOptions options;
  options.config = core::EngineConfig::kQpipeSp;
  options.comm = core::CommModel::kPull;
  core::Engine engine(&catalog, &pool, options);

  // 4. SSB Q3.2: revenue by (customer city, supplier city, year).
  ssb::Q32Params params;
  params.cust_nation = 23;  // UNITED KINGDOM
  params.supp_nation = 24;  // UNITED STATES
  params.year_lo = 1992;
  params.year_hi = 1997;
  const query::StarQuery q = ssb::MakeQ32(params);

  // 5. Submit, wait, read.
  const auto handles = engine.SubmitBatch({q});
  handles[0]->done.wait();
  const query::ResultSet& result = handles[0]->result;

  std::printf("\nSSB Q3.2 returned %zu rows in %.1f ms:\n", result.num_rows(),
              handles[0]->response_seconds() * 1e3);
  std::printf("  %-12s %-12s %-6s %s\n", "c_city", "s_city", "year",
              "revenue");
  const size_t show = result.num_rows() < 10 ? result.num_rows() : 10;
  for (size_t i = 0; i < show; ++i) {
    std::printf("  %s\n", result.FormatRow(i).c_str());
  }
  if (result.num_rows() > show) {
    std::printf("  ... (%zu more)\n", result.num_rows() - show);
  }
  return 0;
}
