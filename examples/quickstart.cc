// Quickstart: build a small Star Schema Benchmark database, start the
// integrated engine in its recommended configuration, run one analytical
// query through the asynchronous ticket API, and print the results.
//
//   $ ./quickstart
//
// The public API in five steps:
//   1. storage::Catalog + ssb::BuildSsbDatabase     — load data
//   2. storage::StorageDevice + BufferPool          — I/O layer (memory mode)
//   3. core::Engine with EngineOptions              — pick a configuration
//      (Engine is a core::ExecutorClient — swap in baseline::VolcanoEngine
//      or any future backend without touching client code)
//   4. ssb::MakeQ32 / query::StarQuery              — describe the query
//   5. engine.Submit(query, SubmitOptions) -> QueryTicket
//      ticket.Wait() -> Status, ticket.result()     — run and read results
//
// The ticket is the whole client lifecycle: Wait() returns the terminal
// Status (OK / CANCELLED / DEADLINE_EXCEEDED / ... — see common/status.h),
// ticket.Cancel() detaches mid-flight, SubmitOptions carries per-query
// deadlines and row limits, and ticket.metrics() reports timing and
// sharing for this one query.
//
// Step 6 shows the scheduler: SubmitOptions{priority} actually changes
// completion order (a capped stage pops the highest-priority packet first)
// and SubmitOptions{deadline_nanos} is enforced by the timer wheel — the
// expired ticket completes DEADLINE_EXCEEDED promptly, even if no result
// page ever arrives to notice it on.
//
// Step 7 shows the failure semantics: storage faults surface as terminal
// ticket statuses from the taxonomy in common/status.h (DATA_LOSS /
// UNAVAILABLE for unreadable data, RESOURCE_EXHAUSTED + retry_after for
// overload, DEADLINE_EXCEEDED for stalls), and a fault is isolated to the
// queries attached to the shared scan when it struck — the engine itself
// keeps serving. The demo uses the deterministic FaultInjector the chaos
// suite is built on (common/fault_injector.h); EngineOptions::resilience
// holds the admission memory budget and stall-watchdog knobs.
//
// Step 8 shows shared aggregation: two queries with the same (group-by,
// aggregate) shape but different predicate constants fold into ONE shared
// group-by table — CjoinStats::agg_groups_shared counts the second query
// attaching instead of aggregating privately.
//
// Step 9 shows the PAX page layout: EngineOptions::columnar_pages = true
// rebuilds the fact table column-major-within-page at engine construction
// (docs/STORAGE.md), so the filter/scan kernels read only the columns they
// touch. Same queries, bit-identical results — false keeps the row-major
// differential oracle.
//
// Step 10 shows dynamic query folding: EngineOptions::query_folding = true
// (default false) lets a query whose predicates are provably contained in
// an in-flight query's ride that query's slot as a post-filter instead of
// consuming a slot and dimension hash tables of its own —
// CjoinStats::queries_folded counts it (docs/FOLDING.md).

#include <cstdio>

#include "common/fault_injector.h"
#include "common/timing.h"
#include "core/engine.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_schema.h"
#include "ssb/ssb_queries.h"

int main() {
  using namespace sdw;

  // 1. Load a scale-factor-0.1 SSB database (~600k fact rows).
  storage::Catalog catalog;
  ssb::BuildSsbDatabase(&catalog, {.scale_factor = 0.1, .seed = 42});
  std::printf("Loaded SSB: %zu lineorder rows, %zu tables\n",
              catalog.MustGetTable(ssb::kLineorder)->num_rows(),
              catalog.num_tables());

  // 2. Memory-resident I/O layer (paper's RAM-drive setup).
  storage::StorageDevice device({.memory_resident = true});
  storage::BufferPool pool(&device, /*capacity_bytes=*/0);

  // 3. The integrated engine: QPipe-SP = query-centric operators with
  //    Simultaneous Pipelining over pull-based Shared Pages Lists.
  core::EngineOptions options;
  options.config = core::EngineConfig::kQpipeSp;
  options.comm = core::CommModel::kPull;
  core::Engine engine(&catalog, &pool, options);

  // 4. SSB Q3.2: revenue by (customer city, supplier city, year).
  ssb::Q32Params params;
  params.cust_nation = 23;  // UNITED KINGDOM
  params.supp_nation = 24;  // UNITED STATES
  params.year_lo = 1992;
  params.year_hi = 1997;
  const query::StarQuery q = ssb::MakeQ32(params);

  // 5. Submit asynchronously, wait for the terminal status, read results.
  //    SubmitOptions could add a deadline (deadline_nanos), a row_limit, or
  //    a client_tag here; ticket.Cancel() would detach the query mid-run.
  core::SubmitOptions submit_opts;
  submit_opts.client_tag = "quickstart";
  core::QueryTicket ticket = engine.Submit(q, submit_opts);
  const Status status = ticket.Wait();
  if (!status.ok()) {
    std::printf("query failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const query::ResultSet& result = ticket.result();
  const core::QueryMetrics metrics = ticket.metrics();

  std::printf("\nSSB Q3.2 returned %zu rows in %.1f ms (%llu result pages):\n",
              result.num_rows(), metrics.response_seconds() * 1e3,
              static_cast<unsigned long long>(metrics.pages_read));
  std::printf("  %-12s %-12s %-6s %s\n", "c_city", "s_city", "year",
              "revenue");
  const size_t show = result.num_rows() < 10 ? result.num_rows() : 10;
  for (size_t i = 0; i < show; ++i) {
    std::printf("  %s\n", result.FormatRow(i).c_str());
  }
  if (result.num_rows() > show) {
    std::printf("  ... (%zu more)\n", result.num_rows() - show);
  }

  // 6. Scheduling: SubmitOptions{priority} actually changes run order, and
  //    SubmitOptions{deadline_nanos} is enforced by the timer wheel.
  //
  //    Plain-QPipe engine, scan stage capped at ONE worker, three scan-only
  //    queries in one arrival batch (one packet each, so the cap is safe —
  //    see ThreadPoolOptions). The priority-10 query arrives LAST but runs
  //    FIRST once the worker frees: watch the queue waits.
  core::EngineOptions sched_opts;
  sched_opts.config = core::EngineConfig::kQpipe;
  sched_opts.stage_max_workers = 1;
  core::Engine sched_engine(&catalog, &pool, sched_opts);
  query::StarQuery scan_q;  // full fact scan, empty result: pure work
  scan_q.fact_table = ssb::kLineorder;
  scan_q.fact_pred.And(
      query::AtomicPred::Int("lo_quantity", query::CompareOp::kLe, 0));
  std::vector<core::SubmitRequest> requests(3);
  const int priorities[3] = {0, 0, 10};  // the high one arrives LAST
  for (size_t i = 0; i < 3; ++i) {
    requests[i].q = scan_q;
    requests[i].opts.priority = priorities[i];
  }
  auto tickets = sched_engine.SubmitRequests(requests);
  for (auto& t : tickets) t.Wait();
  std::printf("\nScheduling: 3 scans, one scan worker — the scheduler pops "
              "by (priority, arrival):\n");
  for (size_t i = 0; i < 3; ++i) {
    const auto m = tickets[i].metrics();
    std::printf("  arrival %zu, priority %2d: queue wait %6.1f ms, run "
                "%6.1f ms\n",
                i, priorities[i], m.queue_wait_seconds() * 1e3,
                m.run_seconds() * 1e3);
  }

  //    Deadlines: queue a scan behind a running one with a 5 ms budget.
  //    The timer wheel fires RequestCancel(DEADLINE_EXCEEDED) at expiry —
  //    the ticket completes in ~5 ms even though its packet never ran and
  //    no result page ever arrived to notice the deadline on.
  auto blocker = sched_engine.Submit(scan_q);  // occupies the one worker
  core::SubmitOptions with_deadline;
  with_deadline.deadline_nanos = NowNanos() + 5'000'000;  // 5 ms
  core::QueryTicket expiring = sched_engine.Submit(scan_q, with_deadline);
  const Status expired = expiring.Wait();
  blocker.Wait();
  std::printf("Deadline: 5 ms budget behind a busy stage -> %s after "
              "%.1f ms\n",
              expired.ToString().c_str(),
              expiring.metrics().response_seconds() * 1e3);

  // 7. Failure semantics. A CJOIN engine shares ONE circular fact-table
  //    scan across all concurrent queries; a permanent page error must not
  //    take the engine down with it. Inject one (seeded, replayable — this
  //    is exactly how tests/chaos_test.cc drives the engine), watch the
  //    attached query fail DATA_LOSS, then run the same query again: the
  //    scan skipped the poisoned page and keeps serving later admissions.
  //
  //    EngineOptions::resilience adds the other two failure modes:
  //      .memory_budget_bytes  — admission sheds RESOURCE_EXHAUSTED with a
  //                              [retry_after_ms=N] hint instead of queueing
  //                              unboundedly (see common/retry.h);
  //      .scan_stall_nanos     — a watchdog converts busy-without-progress
  //                              into DEADLINE_EXCEEDED instead of a hang.
  core::EngineOptions cjoin_opts;
  cjoin_opts.config = core::EngineConfig::kCjoin;
  core::Engine cjoin_engine(&catalog, &pool, cjoin_opts);
  FaultInjector::Global().Enable(/*seed=*/42);
  FaultSpec media_error;
  media_error.kind = FaultKind::kPermanent;
  media_error.one_shot_at = 1;  // the next fact-page read fails, once
  media_error.message = "quickstart: simulated media error";
  const auto fact_id =
      static_cast<uint64_t>(catalog.MustGetTable(ssb::kLineorder)->id());
  media_error.key_lo = fact_id << 48;  // only lineorder pages
  media_error.key_hi = (fact_id << 48) | 0xFFFFFFFFFFFFull;
  FaultInjector::Global().Arm("storage.read", media_error);

  const Status faulted = cjoin_engine.Submit(q).Wait();
  FaultInjector::Global().Disable();
  const Status after = cjoin_engine.Submit(q).Wait();
  std::printf("\nFault isolation: query under injected page fault -> %s\n"
              "                 same query, same engine, afterwards -> %s\n",
              faulted.ToString().c_str(), after.ToString().c_str());
  if (!after.ok()) return 1;

  // 8. Shared aggregation (on by default in CJOIN engines;
  //    EngineOptions::shared_aggregation = false selects the per-query
  //    reference path). Two Q3.2 instances with the same aggregation shape
  //    — same group-by columns and aggregates, different nation/year
  //    constants — bind to ONE shared group: each scanned batch is folded
  //    into its group-by table once, and each query's result is sliced out
  //    by its predicate bitmap at completion.
  ssb::Q32Params other = params;
  other.cust_nation = 6;  // FRANCE — same shape, different constants
  other.year_lo = 1994;
  auto shared_tickets =
      cjoin_engine.SubmitBatch({ssb::MakeQ32(params), ssb::MakeQ32(other)});
  for (auto& t : shared_tickets) {
    if (!t.Wait().ok()) return 1;
  }
  const cjoin::CjoinStats agg_stats = cjoin_engine.cjoin_stats();
  std::printf("\nShared aggregation: 2 same-shape queries -> %llu shared "
              "group bind(s),\n"
              "                    %llu batch folds, %llu per-query slices "
              "(%zu + %zu rows)\n",
              static_cast<unsigned long long>(agg_stats.agg_groups_shared),
              static_cast<unsigned long long>(agg_stats.agg_batches_folded),
              static_cast<unsigned long long>(agg_stats.agg_slice_emits),
              shared_tickets[0].result().num_rows(),
              shared_tickets[1].result().num_rows());
  if (agg_stats.agg_groups_shared < 1) return 1;

  // 9. The PAX page layout (docs/STORAGE.md). columnar_pages = true makes
  //    the engine rebuild the fact table's pages column-major-within-page
  //    before any stage captures page pointers: each column becomes a
  //    64-byte-aligned minipage, so the filter's FK probe and predicate
  //    evaluation read only the cache lines of the columns they touch (and
  //    the SIMD bitmap kernels run on the multi-word pass). Page geometry
  //    changes — slightly fewer rows per page from alignment padding — but
  //    results are identical to the row-major engine, which stays available
  //    as the differential oracle (columnar_pages = false, the default).
  const storage::Table* fact = catalog.MustGetTable(ssb::kLineorder);
  const size_t rows_per_page_before = fact->rows_per_page();
  core::EngineOptions columnar_opts;
  columnar_opts.config = core::EngineConfig::kCjoin;
  columnar_opts.columnar_pages = true;
  core::Engine columnar_engine(&catalog, &pool, columnar_opts);
  core::QueryTicket columnar_ticket = columnar_engine.Submit(q);
  if (!columnar_ticket.Wait().ok()) return 1;
  std::printf("\nPAX layout: lineorder %zu -> %zu rows/page (columnar=%s), "
              "Q3.2 rows %zu (row-major engine: %zu)\n",
              rows_per_page_before, fact->rows_per_page(),
              fact->columnar() ? "true" : "false",
              columnar_ticket.result().num_rows(), result.num_rows());
  if (columnar_ticket.result().num_rows() != result.num_rows()) return 1;

  // 10. Dynamic query folding (docs/FOLDING.md). The wide query scans two
  //     customer nations; the narrow one scans a subset of its nations and
  //     years, so query::QuerySubsumes proves containment and admission
  //     folds it onto the wide query's slot: no slot, no dimension scans —
  //     just memoized residual predicate bits over the host's verdicts.
  //     The narrow query still gets its own exact result, sliced out of
  //     the shared aggregation group by its private member bit.
  core::EngineOptions fold_opts;
  fold_opts.config = core::EngineConfig::kCjoin;
  fold_opts.query_folding = true;
  core::Engine fold_engine(&catalog, &pool, fold_opts);
  ssb::Q32SelectivityParams wide;
  wide.cust_nations = {6, 23};  // FRANCE, UNITED KINGDOM
  wide.supp_nations = {24};     // UNITED STATES
  wide.year_lo = 1992;
  wide.year_hi = 1997;
  ssb::Q32SelectivityParams narrow = wide;
  narrow.cust_nations = {23};  // subset of the wide query's nations...
  narrow.year_lo = 1993;       // ...and a sub-range of its years
  narrow.year_hi = 1995;
  auto fold_tickets = fold_engine.SubmitBatch(
      {ssb::MakeQ32Selectivity(wide), ssb::MakeQ32Selectivity(narrow)});
  for (auto& t : fold_tickets) {
    if (!t.Wait().ok()) return 1;
  }
  const cjoin::CjoinStats fold_stats = fold_engine.cjoin_stats();
  std::printf("\nQuery folding: wide + contained narrow -> %llu of 2 "
              "folded (%llu checks), %zu + %zu result rows\n",
              static_cast<unsigned long long>(fold_stats.queries_folded),
              static_cast<unsigned long long>(fold_stats.fold_checks),
              fold_tickets[0].result().num_rows(),
              fold_tickets[1].result().num_rows());
  return fold_stats.queries_folded >= 1 ? 0 : 1;
}
