// Shared scaffolding for the per-figure benchmark binaries: flag parsing,
// database setup, and experiment headers that relate each run to the paper.
//
// Every binary accepts --sf=<double>, --seed=<n> and experiment-specific
// flags, and scales its concurrency grid to the host core count (the paper
// ran on 24 cores; crossovers happen relative to hardware contexts, see
// EXPERIMENTS.md).

#ifndef SDW_BENCH_BENCH_COMMON_H_
#define SDW_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/str_util.h"
#include "harness/driver.h"
#include "harness/report.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"

namespace sdw::bench {

/// Minimal --key=value flag access.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  double GetDouble(const std::string& name, double def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : std::atof(v->c_str());
  }
  int64_t GetInt(const std::string& name, int64_t def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : std::atoll(v->c_str());
  }
  bool GetBool(const std::string& name, bool def) const {
    const std::string* v = Find(name);
    if (v == nullptr) return def;
    return *v == "1" || *v == "true";
  }

 private:
  const std::string* Find(const std::string& name) const {
    const std::string prefix = "--" + name + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) {
        cached_ = a.substr(prefix.size());
        return &cached_;
      }
    }
    return nullptr;
  }

  std::vector<std::string> args_;
  mutable std::string cached_;
};

/// A database with its simulated device and buffer pool.
struct BenchDb {
  storage::Catalog catalog;
  std::unique_ptr<storage::StorageDevice> device;
  std::unique_ptr<storage::BufferPool> pool;
};

/// Disk-simulation profile for disk-resident experiments (DESIGN.md §3).
struct DiskProfile {
  double seq_bandwidth_mbps = 220.0;
  double seek_latency_us = 3000.0;
  size_t os_cache_bytes = 0;  // 0 = no OS cache
  bool direct_io = false;
};

inline std::unique_ptr<BenchDb> MakeSsbBenchDb(double sf, uint64_t seed,
                                               bool memory_resident,
                                               const DiskProfile& disk = {},
                                               size_t pool_bytes = 0) {
  auto db = std::make_unique<BenchDb>();
  ssb::BuildSsbDatabase(&db->catalog, {sf, seed});
  storage::DeviceOptions dev;
  dev.memory_resident = memory_resident;
  dev.seq_bandwidth_mbps = disk.seq_bandwidth_mbps;
  dev.seek_latency_us = disk.seek_latency_us;
  dev.os_cache_bytes = disk.os_cache_bytes;
  dev.direct_io = disk.direct_io;
  db->device = std::make_unique<storage::StorageDevice>(dev);
  db->pool = std::make_unique<storage::BufferPool>(db->device.get(), pool_bytes);
  return db;
}

inline std::unique_ptr<BenchDb> MakeTpchBenchDb(double sf, uint64_t seed) {
  auto db = std::make_unique<BenchDb>();
  ssb::BuildTpchQ1Database(&db->catalog, {sf, seed});
  db->device = std::make_unique<storage::StorageDevice>(
      storage::DeviceOptions{.memory_resident = true});
  db->pool = std::make_unique<storage::BufferPool>(db->device.get(), 0);
  return db;
}

inline size_t Cores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Prints the standard experiment header relating this run to the paper.
inline void PrintHeader(const char* experiment, const char* paper_setup,
                        const char* our_setup, const char* claims) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  Paper setup : %s\n", paper_setup);
  std::printf("  This run    : %s (host: %zu hardware contexts;\n", our_setup,
              Cores());
  std::printf("                paper used 24 — concurrency crossovers scale "
              "with cores)\n");
  std::printf("  Paper claims: %s\n", claims);
  std::printf("================================================================\n\n");
}

/// Formats a RunMetrics response-time cell: "mean±sd".
inline std::string Cell(const harness::RunMetrics& m) {
  return StrPrintf("%.3f±%.3f", m.response_seconds.Mean(),
                   m.response_seconds.Stddev());
}

}  // namespace sdw::bench

#endif  // SDW_BENCH_BENCH_COMMON_H_
