// Dynamic query folding: subsumed queries ride in-flight slots, so a fixed
// slot budget admits a multiple of its capacity when the workload is
// similarity-skewed.
//
// Not a paper figure — CJOIN as published admits every query into its own
// slot and rejects at capacity. This experiment measures the repo's
// admission fold pass (CjoinOptions::query_folding) on a burst of
// FoldableQ31Workload queries — wide "template" instances plus, at the
// containment-rate knob, provably narrowed instances of them — at slot caps
// {64, 256}, against the DISK-RESIDENT simulated device (the paper's
// setting: the shared circular scan is the dominant per-cycle cost, which
// is exactly why admitting more queries per cycle pays). Q3.1's nation
// grain keeps per-query result materialization (~250 group rows) small
// relative to that scan; at Q3.2's city grain the experiment would measure
// result rendering, not admission capacity. Two measurements per
// (cap, containment, mode) cell:
//
//   * one-shot: the whole burst submitted at once. With folding on, each
//     narrowed instance rides a subsuming in-flight query's slot as a
//     post-filter (no slot, no dimension scans); with folding off, the
//     burst beyond the slot cap is rejected with ResourceExhausted. This is
//     the capacity-rejection measurement.
//   * serve rate: queries served per second of total service time for the
//     WHOLE burst. Folding serves it in one admission (when nothing is
//     rejected); the unfolded baseline is modeled as the best possible
//     admission-aware client — cap-sized waves submitted back to back, so
//     it never wastes time on rejected submissions or retry backoff. Beating
//     that client by 2x is therefore a lower bound on the folding win
//     against any real unfolded client.
//
// Expectations (the shape checks below): at cap 64 under high containment,
// folding serves >= 2x the queries/sec of the wave baseline and one-shot
// capacity rejections are driven to ~0 (the unfolded one-shot rejects most
// of the burst); folding off leaves every fold counter at zero (the
// unfolded path is byte-identical to the pre-folding pipeline).

#include <algorithm>

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

struct PointResult {
  double oneshot_makespan = 0;
  double serve_seconds = 0;   // whole burst served (waves when unfolded)
  double served_per_sec = 0;
  size_t waves = 0;
  uint64_t admitted = 0;      // one-shot
  uint64_t folded = 0;        // one-shot
  uint64_t fold_checks = 0;   // one-shot
  uint64_t rejected = 0;      // one-shot CjoinStats::queries_rejected
  uint64_t completed = 0;     // one-shot
  uint64_t served = 0;        // waves (whole burst)
};

core::EngineOptions MakeOptions(size_t slot_cap, size_t queries,
                                bool folding) {
  core::EngineOptions opts;
  opts.config = core::EngineConfig::kCjoin;
  opts.query_folding = folding;
  opts.cjoin.max_queries = slot_cap;
  // Enough fold bits for the whole burst to ride as aggregates; the knob
  // under test is the SLOT cap. Not wider: every extra fold word lengthens
  // the member-bitmap tail of every accumulator key.
  opts.cjoin.fold_bits = queries;
  return opts;
}

PointResult RunPoint(BenchDb* db, size_t queries, size_t slot_cap,
                     double containment, bool folding, uint64_t seed,
                     int iterations) {
  Stats rate;
  PointResult r;
  for (int it = 0; it < iterations + 1; ++it) {
    const auto workload = ssb::FoldableQ31Workload(
        queries, containment, seed + static_cast<uint64_t>(it));

    // One-shot: the whole burst against one admission window.
    {
      core::Engine engine(&db->catalog, db->pool.get(),
                          MakeOptions(slot_cap, queries, folding));
      const auto m = harness::RunBatch(&engine, db->pool.get(), workload);
      if (it > 0) {
        r.oneshot_makespan = m.makespan_seconds;
        r.admitted = m.cjoin.queries_admitted;
        r.folded = m.cjoin.queries_folded;
        r.fold_checks = m.cjoin.fold_checks;
        r.rejected = m.cjoin.queries_rejected;
        r.completed = m.completed;
      }
    }

    // Serve the whole burst. Folding: one admission absorbs everything (as
    // long as nothing was rejected, which the checks assert for the
    // headline cells). Unfolded: back-to-back cap-sized waves — the optimal
    // rejection-free client at this slot cap.
    {
      core::Engine engine(&db->catalog, db->pool.get(),
                          MakeOptions(slot_cap, queries, folding));
      const size_t wave_size = folding ? queries : slot_cap;
      double total = 0;
      uint64_t served = 0;
      size_t waves = 0;
      for (size_t at = 0; at < workload.size(); at += wave_size, ++waves) {
        const std::vector<query::StarQuery> wave(
            workload.begin() + static_cast<ptrdiff_t>(at),
            workload.begin() +
                static_cast<ptrdiff_t>(
                    std::min(at + wave_size, workload.size())));
        const auto m = harness::RunBatch(&engine, db->pool.get(), wave);
        total += m.makespan_seconds;
        served += m.completed;
      }
      if (it > 0) {
        r.serve_seconds = total;
        r.served = served;
        r.waves = waves;
        if (total > 0) rate.Add(static_cast<double>(served) / total);
      }
    }
  }
  r.served_per_sec = rate.Max();
  return r;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  // SF 0.1: the shared circular scan must dominate the per-cycle cost for
  // the capacity claim to be about admission, not result materialization —
  // at smaller scale the measured ratio sits within noise of the 2x bar on
  // a shared 1-core container.
  const double sf = flags.GetDouble("sf", 0.1);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 1));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 512));

  PrintHeader(
      "Dynamic query folding: subsumed queries ride in-flight slots",
      "n/a (extension: CJOIN as published rejects at slot capacity)",
      StrPrintf("SSB SF=%.3g disk-resident (simulated array), CJOIN, "
                "%zu-query Q3.1-grain burst, slot caps {64, 256}, unfolded "
                "baseline = cap-sized waves",
                sf, queries)
          .c_str(),
      "folding serves >= 2x concurrent queries/sec at cap 64 under high "
      "containment, with one-shot capacity rejections driven to ~0");

  auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/false);

  const std::vector<size_t> caps = {64, 256};
  const std::vector<double> rates = {0.0, 0.5, 0.9};
  harness::ReportTable table({"cap", "containment", "folding", "folded",
                              "rejected", "served", "waves", "serve_s",
                              "q/s"});
  // [cap][rate] -> (folding-on, folding-off)
  std::vector<std::vector<std::pair<PointResult, PointResult>>> grid;
  for (size_t cap : caps) {
    grid.emplace_back();
    for (double c : rates) {
      const uint64_t seed = 7100 + cap + static_cast<uint64_t>(c * 100);
      const PointResult on =
          RunPoint(db.get(), queries, cap, c, /*folding=*/true, seed,
                   iterations);
      const PointResult off =
          RunPoint(db.get(), queries, cap, c, /*folding=*/false, seed,
                   iterations);
      grid.back().emplace_back(on, off);
      for (const auto* p : {&on, &off}) {
        table.AddRow({std::to_string(cap), StrPrintf("%.1f", c),
                      p == &on ? "on" : "off", std::to_string(p->folded),
                      std::to_string(p->rejected), std::to_string(p->served),
                      std::to_string(p->waves),
                      StrPrintf("%.3fs", p->serve_seconds),
                      StrPrintf("%.1f", p->served_per_sec)});
      }
    }
  }
  table.Print();
  std::printf("\n");

  const auto& [on64, off64] = grid[0][2];    // cap 64, containment 0.9
  const auto& [on256, off256] = grid[1][2];  // cap 256, containment 0.9
  (void)off256;

  harness::ShapeChecker checker;
  checker.Check(
      "folding serves >= 2x queries/sec at cap 64, containment 0.9",
      on64.served_per_sec >= 2.0 * off64.served_per_sec,
      StrPrintf("%.1f q/s folded (%zu wave) vs %.1f unfolded (%zu waves)",
                on64.served_per_sec, on64.waves, off64.served_per_sec,
                off64.waves));
  checker.Check(
      "folding drives capacity rejections to ~0 at cap 64, containment 0.9",
      on64.rejected <= queries / 50,
      StrPrintf("%llu rejected of %zu (unfolded one-shot rejects %llu)",
                static_cast<unsigned long long>(on64.rejected), queries,
                static_cast<unsigned long long>(off64.rejected)));
  checker.Check(
      "unfolded one-shot is slot-capacity bound at cap 64",
      off64.rejected >= queries / 2,
      StrPrintf("%llu rejected of %zu",
                static_cast<unsigned long long>(off64.rejected), queries));
  checker.Check(
      "folds actually happen under containment",
      on64.folded >= queries / 2 && on256.folded >= queries / 2,
      StrPrintf("%llu folded at cap 64, %llu at cap 256",
                static_cast<unsigned long long>(on64.folded),
                static_cast<unsigned long long>(on256.folded)));
  checker.Check(
      "folding off reproduces the unfolded counters exactly",
      off64.folded == 0 && off64.fold_checks == 0 && off256.folded == 0,
      "fold counters must be zero with query_folding=false");
  checker.Check(
      "no slot pressure at cap 256, containment 0.9: folding rejects nothing",
      on256.rejected == 0 && on256.served == queries,
      StrPrintf("%llu rejected, %llu of %zu served",
                static_cast<unsigned long long>(on256.rejected),
                static_cast<unsigned long long>(on256.served), queries));
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
