// Figure 12 (paper §5.2.2): high concurrency at 30% selectivity.
//
// The counterpart of Figure 11: with many concurrent queries the
// query-centric operators of QPipe-SP contend for resources (their CPU
// components scale with the query count) while CJOIN's shared hashing stays
// flat — shared operators prevail.

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

struct PointResult {
  double response = 0;
  double hashing = 0;
  std::array<double, kNumComponents> breakdown{};
};

PointResult RunPoint(BenchDb* db, core::EngineConfig config, size_t queries,
                     uint64_t seed, int iterations) {
  Stats means;
  Stats hashing;
  PointResult r;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = config;
    opts.cjoin.max_queries = std::max<size_t>(128, queries * 2);
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto m = harness::RunBatch(
        &engine, db->pool.get(),
        ssb::SelectivityQ32Workload(queries, 0.30,
                                    seed + static_cast<uint64_t>(it)));
    if (it > 0) {
      means.Add(m.response_seconds.Mean());
      r.breakdown = m.breakdown_seconds;
      hashing.Add(
          m.breakdown_seconds[static_cast<size_t>(Component::kHashing)]);
    }
  }
  r.response = means.Min();
  // CPU-clock readings jitter under a saturated 2-core box: average the
  // hashing bucket across iterations rather than sampling one run.
  r.hashing = hashing.Mean();
  return r;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.03);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 2));
  const size_t max_queries = static_cast<size_t>(
      flags.GetInt("max-queries", static_cast<int64_t>(8 * Cores())));

  PrintHeader(
      "Figure 12: 30% selectivity at high concurrency (modified SSB Q3.2)",
      "SSB SF=10 memory-resident, 16..256 queries, 24 cores",
      StrPrintf("SSB SF=%.3g in memory, up to %zu queries", sf, max_queries)
          .c_str(),
      "query-centric operators contend (their CPU components scale "
      "superlinearly with queries) while CJOIN's hashing CPU stays at the "
      "same level irrespective of the query count — shared operators "
      "prevail at high concurrency");

  auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/true);

  // Start where the union of 30%-selectivity queries is already wide, as in
  // the paper's 16..256 grid: below that, CJOIN's probe count still grows
  // with the union selectivity rather than staying saturated.
  std::vector<size_t> grid;
  for (size_t q = std::max<size_t>(4, 2 * Cores()); q <= max_queries;
       q *= 2) {
    grid.push_back(q);
  }

  harness::ReportTable table({"queries", "QPipe-SP", "CJOIN",
                              "QPipe-SP hashing CPU", "CJOIN hashing CPU"});
  std::vector<PointResult> sp_points, cj_points;
  for (size_t q : grid) {
    const auto sp = RunPoint(db.get(), core::EngineConfig::kQpipeSp, q,
                             700 + q, iterations);
    const auto cj =
        RunPoint(db.get(), core::EngineConfig::kCjoin, q, 700 + q, iterations);
    sp_points.push_back(sp);
    cj_points.push_back(cj);
    table.AddRow({std::to_string(q), StrPrintf("%.3fs", sp.response),
                  StrPrintf("%.3fs", cj.response),
                  StrPrintf("%.2fs", sp.hashing),
                  StrPrintf("%.2fs", cj.hashing)});
  }
  std::printf("Figure 12 (response time and hashing CPU vs concurrency):\n");
  table.Print();

  harness::ShapeChecker checker;
  checker.Leq("CJOIN <= QPipe-SP at max concurrency (shared operators "
              "prevail)",
              cj_points.back().response, sp_points.back().response, 0.10);
  checker.Check(
      "QPipe-SP hashing CPU grows with the query count",
      sp_points.back().hashing > sp_points.front().hashing * 1.3,
      StrPrintf("%.2fs -> %.2fs", sp_points.front().hashing,
                sp_points.back().hashing));
  checker.Check(
      "CJOIN hashing CPU stays at the same level irrespective of queries "
      "(per-query shared hashing falls superlinearly)",
      cj_points.back().hashing / static_cast<double>(grid.back()) <=
          cj_points.front().hashing / static_cast<double>(grid.front()) *
              0.7,
      StrPrintf("%.2fs -> %.2fs over a %zux query increase",
                cj_points.front().hashing, cj_points.back().hashing,
                grid.back() / grid.front()));
  checker.Check(
      "QPipe-SP hashing grows faster than CJOIN's",
      sp_points.back().hashing - sp_points.front().hashing >
          cj_points.back().hashing - cj_points.front().hashing,
      StrPrintf("deltas: %.2fs vs %.2fs",
                sp_points.back().hashing - sp_points.front().hashing,
                cj_points.back().hashing - cj_points.front().hashing));
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
