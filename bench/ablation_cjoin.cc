// Ablations of the CJOIN design choices the paper discusses:
//
//  * distributor parts (paper §3.2: the original single-threaded distributor
//    "slows the pipeline significantly"; the paper adds parts),
//  * filter worker threads (the horizontal configuration, §2.5/§5.2.2),
//  * fact predicates in the preprocessor (§3.2: tried and rejected — "the
//    cost of a slower pipeline defeated the purpose"),
//  * inter-stage queue capacity.

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

double RunPoint(BenchDb* db, const cjoin::CjoinOptions& cjoin_opts,
                const std::vector<query::StarQuery>& workload,
                int iterations) {
  Stats means;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = core::EngineConfig::kCjoin;
    opts.cjoin = cjoin_opts;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto m = harness::RunBatch(&engine, db->pool.get(), workload);
    if (it > 0) means.Add(m.response_seconds.Mean());
  }
  return means.Min();
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.03);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 2));
  const size_t queries = static_cast<size_t>(
      flags.GetInt("queries", static_cast<int64_t>(8 * Cores())));

  PrintHeader(
      "CJOIN ablations: distributor parts, filter threads, fact predicates "
      "in the preprocessor, queue capacity",
      "§3.2: multi-part distributor added because the single-threaded one "
      "bottlenecks; fact preds in the preprocessor rejected",
      StrPrintf("SSB SF=%.3g in memory, %zu concurrent queries", sf, queries)
          .c_str(),
      "more distributor parts help up to the core count; evaluating fact "
      "predicates at the pipeline head does not pay off");

  auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/true);
  const auto workload = ssb::SelectivityQ32Workload(queries, 0.10, 71);
  // Q1.1-heavy mix: every third query carries fact predicates.
  const auto mix = ssb::MixedWorkload(queries, 72);

  cjoin::CjoinOptions base;
  base.max_queries = std::max<size_t>(128, queries * 2);

  // 1. Distributor parts.
  harness::ReportTable parts_table({"distributor parts", "response"});
  std::vector<double> parts_times;
  for (size_t parts : {1u, 2u, 4u}) {
    cjoin::CjoinOptions o = base;
    o.distributor_parts = parts;
    const double t = RunPoint(db.get(), o, workload, iterations);
    parts_times.push_back(t);
    parts_table.AddRow({std::to_string(parts), StrPrintf("%.3fs", t)});
  }
  std::printf("Distributor parts (10%% selectivity workload):\n");
  parts_table.Print();

  // 2. Filter worker threads.
  harness::ReportTable filt_table({"filter threads", "response"});
  std::vector<double> filt_times;
  for (size_t threads : {1u, 2u, 4u}) {
    cjoin::CjoinOptions o = base;
    o.filter_threads = threads;
    const double t = RunPoint(db.get(), o, workload, iterations);
    filt_times.push_back(t);
    filt_table.AddRow({std::to_string(threads), StrPrintf("%.3fs", t)});
  }
  std::printf("\nFilter worker threads (horizontal configuration):\n");
  filt_table.Print();

  // 3. Fact predicates at the pipeline head vs on the output (§3.2).
  harness::ReportTable fp_table({"fact predicates", "response (mix)"});
  std::vector<double> fp_times;
  for (bool head : {false, true}) {
    cjoin::CjoinOptions o = base;
    o.fact_preds_in_preprocessor = head;
    const double t = RunPoint(db.get(), o, mix, iterations);
    fp_times.push_back(t);
    fp_table.AddRow({head ? "preprocessor (rejected variant)"
                          : "on CJOIN output (paper's choice)",
                     StrPrintf("%.3fs", t)});
  }
  std::printf("\nFact predicate placement (Q1.1/Q2.1/Q3.2 mix):\n");
  fp_table.Print();

  // 4. Queue capacity.
  harness::ReportTable q_table({"queue capacity (batches)", "response"});
  std::vector<double> q_times;
  for (size_t cap : {1u, 8u, 64u}) {
    cjoin::CjoinOptions o = base;
    o.queue_capacity = cap;
    const double t = RunPoint(db.get(), o, workload, iterations);
    q_times.push_back(t);
    q_table.AddRow({std::to_string(cap), StrPrintf("%.3fs", t)});
  }
  std::printf("\nInter-stage queue capacity:\n");
  q_table.Print();

  harness::ShapeChecker checker;
  // On a 2-core host the distributor bottleneck barely materializes (there
  // is no idle core to absorb a second part); assert comparability — the
  // paper's bottleneck fix matters on many-core machines.
  checker.Leq("multiple distributor parts stay comparable-or-better vs a "
              "single part (paper adds parts to fix a many-core bottleneck)",
              parts_times[1], parts_times[0], 0.40);
  // Paper §3.2: "in most cases the cost of a slower pipeline defeated the
  // purpose" — i.e., the head-of-pipeline variant is no decisive win. We
  // assert that qualitative conclusion (the two placements stay comparable,
  // with no large advantage for the rejected variant).
  checker.Leq(
      "fact preds on CJOIN output stay competitive with the rejected "
      "preprocessor variant (paper §3.2: variant is no decisive win)",
      fp_times[0], fp_times[1], 0.60);
  checker.Check("queue capacity beyond a few batches is not critical",
                q_times[2] <= q_times[1] * 1.5 && q_times[1] <= q_times[0] * 1.5,
                StrPrintf("%.3f / %.3f / %.3f s", q_times[0], q_times[1],
                          q_times[2]));
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
