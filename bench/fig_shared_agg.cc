// Shared aggregation: aggregation work scales with DISTINCT SHAPES, not
// with concurrent query count.
//
// Not a paper figure — the paper's CJOIN stops at the distributor and runs
// one aggregation operator per query. This experiment measures the repo's
// shared aggregation stage (cjoin/shared_agg.h): concurrent Q3.2-structure
// queries drawn from K distinct aggregation shapes (ShapeSkewedQ32Workload)
// bind to K shared groups; each distributed batch folds once per GROUP, and
// per-query results are sliced at completion. Two sweeps:
//
//   A. Fixed query count, shapes 1..8: fold work (agg_batches_folded, the
//      per-group batch folds the distributor performs) grows with the shape
//      count while the sharing counter absorbs the rest of the queries.
//   B. Fixed shapes, queries 8..N: fold work stays roughly FLAT as query
//      count grows — the queries-axis cost is slicing, not aggregation —
//      while the scalar reference (shared_aggregation=false, one QPipe
//      aggregation packet per query) pays per query.

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

struct PointResult {
  double response = 0;
  uint64_t folds = 0;         // CjoinStats::agg_batches_folded
  uint64_t groups_shared = 0; // CjoinStats::agg_groups_shared
  uint64_t slice_emits = 0;   // CjoinStats::agg_slice_emits
};

PointResult RunPoint(BenchDb* db, size_t queries, size_t shapes, bool shared,
                     uint64_t seed, int iterations) {
  Stats means;
  PointResult r;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = core::EngineConfig::kCjoin;
    opts.shared_aggregation = shared;
    opts.cjoin.max_queries = std::max<size_t>(128, queries * 2);
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto m = harness::RunBatch(
        &engine, db->pool.get(),
        ssb::ShapeSkewedQ32Workload(queries, shapes,
                                    seed + static_cast<uint64_t>(it)));
    if (it > 0) {
      means.Add(m.response_seconds.Mean());
      r.folds = m.cjoin.agg_batches_folded;
      r.groups_shared = m.cjoin.agg_groups_shared;
      r.slice_emits = m.cjoin.agg_slice_emits;
    }
  }
  r.response = means.Min();
  return r;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.05);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 2));
  const size_t max_queries =
      static_cast<size_t>(flags.GetInt("max-queries", 64));
  const size_t fixed_shapes = static_cast<size_t>(flags.GetInt("shapes", 4));

  PrintHeader(
      "Shared aggregation: work scales with distinct shapes, not queries",
      "n/a (extension beyond the paper's per-query aggregation operators)",
      StrPrintf("SSB SF=%.3g memory-resident, CJOIN, up to %zu queries",
                sf, max_queries)
          .c_str(),
      "each distributed batch is aggregated once per distinct (group-by, "
      "aggregate) shape; adding same-shape queries adds slices, not folds");

  auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/true);

  // Sweep A: fixed queries, growing shape diversity.
  harness::ReportTable ta({"shapes", "shared", "scalar-ref", "folds",
                           "groups-shared", "slices"});
  std::vector<PointResult> by_shapes;
  const std::vector<size_t> shape_grid = {1, 2, 4, 8};
  for (size_t shapes : shape_grid) {
    const PointResult s =
        RunPoint(db.get(), max_queries, shapes, /*shared=*/true,
                 1200 + shapes, iterations);
    const PointResult ref =
        RunPoint(db.get(), max_queries, shapes, /*shared=*/false,
                 1200 + shapes, iterations);
    by_shapes.push_back(s);
    ta.AddRow({std::to_string(shapes), StrPrintf("%.3fs", s.response),
               StrPrintf("%.3fs", ref.response),
               std::to_string(s.folds), std::to_string(s.groups_shared),
               std::to_string(s.slice_emits)});
  }
  std::printf("Sweep A (%zu queries, 1..8 distinct shapes):\n", max_queries);
  ta.Print();

  // Sweep B: fixed shapes, growing query count.
  harness::ReportTable tb({"queries", "shared", "scalar-ref", "folds",
                           "groups-shared", "slices"});
  std::vector<PointResult> by_queries;
  std::vector<size_t> query_grid;
  for (size_t q = 8; q <= max_queries; q *= 2) query_grid.push_back(q);
  for (size_t q : query_grid) {
    const PointResult s = RunPoint(db.get(), q, fixed_shapes, /*shared=*/true,
                                   3400 + q, iterations);
    const PointResult ref = RunPoint(db.get(), q, fixed_shapes,
                                     /*shared=*/false, 3400 + q, iterations);
    by_queries.push_back(s);
    tb.AddRow({std::to_string(q), StrPrintf("%.3fs", s.response),
               StrPrintf("%.3fs", ref.response), std::to_string(s.folds),
               std::to_string(s.groups_shared),
               std::to_string(s.slice_emits)});
  }
  std::printf("\nSweep B (%zu distinct shapes, %zu..%zu queries):\n",
              fixed_shapes, query_grid.front(), query_grid.back());
  tb.Print();
  std::printf("\n");

  harness::ShapeChecker checker;
  // A: every query beyond the first of a shape attaches to the shape's
  // group rather than creating one.
  checker.Check(
      "sharing counter absorbs same-shape queries (queries - shapes)",
      by_shapes.front().groups_shared >= max_queries - shape_grid.front() &&
          by_shapes.back().groups_shared >= max_queries - shape_grid.back(),
      StrPrintf("%llu shared at %zu shapes, %llu at %zu",
                static_cast<unsigned long long>(
                    by_shapes.front().groups_shared),
                shape_grid.front(),
                static_cast<unsigned long long>(by_shapes.back().groups_shared),
                shape_grid.back()));
  // A: fold work grows with shape diversity (8 shapes fold ~8x the groups
  // of 1 shape over the same scan; allow slack for extra scan cycles).
  checker.Check(
      "fold work grows with distinct shapes",
      by_shapes.back().folds >= 3 * by_shapes.front().folds,
      StrPrintf("%llu folds at %zu shapes vs %llu at %zu",
                static_cast<unsigned long long>(by_shapes.back().folds),
                shape_grid.back(),
                static_cast<unsigned long long>(by_shapes.front().folds),
                shape_grid.front()));
  // B: fold work is flat in query count at fixed shapes — the defining
  // property of the shared stage. Admission timing can add scan cycles, so
  // "flat" means well under proportional (8x queries, < 3x folds).
  checker.Check(
      "fold work ~flat in query count at fixed shapes",
      by_queries.back().folds <
          3 * std::max<uint64_t>(1, by_queries.front().folds),
      StrPrintf("%llu folds at %zu queries vs %llu at %zu",
                static_cast<unsigned long long>(by_queries.back().folds),
                query_grid.back(),
                static_cast<unsigned long long>(by_queries.front().folds),
                query_grid.front()));
  // B: every completed query got exactly one slice emission.
  checker.Check("one slice per query",
                by_queries.back().slice_emits >= query_grid.back(),
                StrPrintf("%llu slices for %zu queries",
                          static_cast<unsigned long long>(
                              by_queries.back().slice_emits),
                          query_grid.back()));
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
