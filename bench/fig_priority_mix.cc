// Priority-mix scheduling figure (PR 4, beyond the paper's experiments):
// p99 latency of HIGH-priority queries under a LOW-priority flood, scheduler
// (priority run queues + aging) vs. the seed's FIFO ordering.
//
// Shape: a closed loop of `clients` threads — `high` of them submit at
// priority 10, the rest flood at priority 0 — against the QPipe engine with
// its scan stage capped at `workers` workers. Every query is a scan-only
// star query (one packet), so the capped pool is the single point of
// contention: under FIFO a high-priority arrival waits behind the whole
// flood's queue; with the scheduler it pops next. Scan-only plans keep the
// cap deadlock-free (packets in the capped pool never feed each other; see
// ThreadPoolOptions).
//
//   ./fig_priority_mix [--sf=0.05] [--clients=10] [--high=2] [--workers=2]
//                      [--seconds=2] [--seed=42]
//
// Emits per-class p50/p99 and queue-wait means for both policies plus
// machine-readable `name=value` lines (merged into BENCH_baseline.json as
// pseudo-benchmarks; see bench/README.md).

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

/// One-packet flood query: scan lineorder under a selective predicate (the
/// result is empty — all the cost is the scan itself).
query::StarQuery ScanOnlyQuery() {
  query::StarQuery q;
  q.fact_table = ssb::kLineorder;
  q.fact_pred.And(
      query::AtomicPred::Int("lo_quantity", query::CompareOp::kLe, 0));
  return q;
}

struct PolicyResult {
  harness::RunMetrics m;
};

PolicyResult RunPolicy(BenchDb* db, bool priority_enabled, size_t clients,
                       size_t high, size_t workers, double seconds) {
  core::EngineOptions opts;
  opts.config = core::EngineConfig::kQpipe;  // no sharing: a pure flood
  opts.sched.priority_enabled = priority_enabled;
  opts.stage_max_workers = workers;
  core::Engine engine(&db->catalog, db->pool.get(), opts);

  harness::ClosedLoopOptions loop;
  loop.clients = clients;
  loop.high_priority_clients = high;
  loop.high_priority = 10;
  loop.low_priority = 0;
  loop.duration_seconds = seconds;
  const query::StarQuery q = ScanOnlyQuery();
  PolicyResult r;
  r.m = harness::RunClosedLoop(&engine, db->pool.get(),
                               [&](size_t) { return q; }, loop);
  return r;
}

void PrintClass(const char* label, const Stats& s) {
  if (s.empty()) {
    std::printf("  %-14s (no completions)\n", label);
    return;
  }
  std::printf("  %-14s n=%-5zu p50=%7.1f ms  p99=%7.1f ms  max=%7.1f ms\n",
              label, s.count(), s.Percentile(50) * 1e3,
              s.Percentile(99) * 1e3, s.Max() * 1e3);
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.05);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t clients = static_cast<size_t>(flags.GetInt("clients", 10));
  const size_t high = static_cast<size_t>(flags.GetInt("high", 2));
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 2));
  const double seconds = flags.GetDouble("seconds", 2.0);

  PrintHeader(
      "Priority mix: high-priority p99 under a low-priority flood",
      "n/a — scheduling figure introduced by the Scheduler refactor (PR 4)",
      StrPrintf("SSB sf=%.2f, %zu clients (%zu high-priority), scan stage "
                "capped at %zu workers, %.1fs closed loop",
                sf, clients, high, workers, seconds)
          .c_str(),
      "priority scheduling should cut high-priority tail latency vs. FIFO "
      "without collapsing flood throughput");

  auto db = MakeSsbBenchDb(sf, seed, /*memory_resident=*/true);

  std::printf("policy: seed FIFO\n");
  const PolicyResult fifo =
      RunPolicy(db.get(), false, clients, high, workers, seconds);
  PrintClass("high-priority", fifo.m.response_seconds_high);
  PrintClass("low-priority", fifo.m.response_seconds_low);
  std::printf("  queue wait mean %.1f ms; completed %llu\n\n",
              fifo.m.queue_wait_seconds.Mean() * 1e3,
              static_cast<unsigned long long>(fifo.m.completed));

  std::printf("policy: scheduler (priority + aging)\n");
  const PolicyResult sched =
      RunPolicy(db.get(), true, clients, high, workers, seconds);
  PrintClass("high-priority", sched.m.response_seconds_high);
  PrintClass("low-priority", sched.m.response_seconds_low);
  std::printf("  queue wait mean %.1f ms; completed %llu\n\n",
              sched.m.queue_wait_seconds.Mean() * 1e3,
              static_cast<unsigned long long>(sched.m.completed));

  if (!fifo.m.response_seconds_high.empty() &&
      !sched.m.response_seconds_high.empty()) {
    const double fifo_p99 = fifo.m.response_seconds_high.Percentile(99);
    const double sched_p99 = sched.m.response_seconds_high.Percentile(99);
    std::printf("high-priority p99: FIFO %.1f ms -> scheduler %.1f ms "
                "(%.2fx)\n",
                fifo_p99 * 1e3, sched_p99 * 1e3,
                sched_p99 > 0 ? fifo_p99 / sched_p99 : 0.0);
  }

  // Machine-readable lines for the baseline file.
  auto emit = [](const char* name, double v) {
    std::printf("BASELINE %s=%.6f\n", name, v);
  };
  emit("fig_priority_mix/fifo/high_p99_ms",
       fifo.m.response_seconds_high.Percentile(99) * 1e3);
  emit("fig_priority_mix/fifo/low_p99_ms",
       fifo.m.response_seconds_low.Percentile(99) * 1e3);
  emit("fig_priority_mix/fifo/completed",
       static_cast<double>(fifo.m.completed));
  emit("fig_priority_mix/sched/high_p99_ms",
       sched.m.response_seconds_high.Percentile(99) * 1e3);
  emit("fig_priority_mix/sched/low_p99_ms",
       sched.m.response_seconds_low.Percentile(99) * 1e3);
  emit("fig_priority_mix/sched/completed",
       static_cast<double>(sched.m.completed));
  return 0;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
