// Figure 6 (paper §4): push-based vs pull-based Simultaneous Pipelining.
//
// Multiple identical TPC-H Q1 queries, memory-resident database, SP enabled
// only for the table-scan stage (circular scans, "CS"). Four configurations:
//   No SP (FIFO), CS (FIFO)  — push-only model, copies to satellites
//   No SP (SPL),  CS (SPL)   — pull-based shared pages lists
// Plus (c) the sharing speedup (No SP / CS) for both transports, and the §4
// SPL maximum-size sweep (8 queries, size barely matters).

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

harness::RunMetrics RunPoint(BenchDb* db, bool cs, core::CommModel comm,
                             size_t queries, int iterations) {
  harness::RunMetrics last;
  Stats batch_means;
  // One discarded warmup iteration, then `iterations` measured ones; the
  // point value is the minimum batch mean (robust to scheduler noise).
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = cs ? core::EngineConfig::kQpipeCs : core::EngineConfig::kQpipe;
    opts.comm = comm;
    opts.fact_table = ssb::kLineitem;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    last = harness::RunBatch(&engine, db->pool.get(),
                             ssb::IdenticalQ1Workload(queries));
    if (it > 0) batch_means.Add(last.response_seconds.Mean());
  }
  Stats point;
  point.Add(batch_means.Min());
  last.response_seconds = point;
  return last;
}

double RunSplSizePoint(BenchDb* db, size_t queries, size_t spl_bytes,
                       int iterations) {
  Stats means;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = core::EngineConfig::kQpipeCs;
    opts.comm = core::CommModel::kPull;
    opts.fact_table = ssb::kLineitem;
    opts.channel_bytes = spl_bytes;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto m = harness::RunBatch(&engine, db->pool.get(),
                                     ssb::IdenticalQ1Workload(queries));
    if (it > 0) means.Add(m.response_seconds.Mean());
  }
  return means.Min();
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.05);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 3));
  const size_t max_queries = static_cast<size_t>(
      flags.GetInt("max-queries", static_cast<int64_t>(16 * Cores())));

  PrintHeader(
      "Figure 6: evaluating identical TPC-H Q1 queries with push-based SP "
      "(FIFO) vs pull-based SP (SPL)",
      "TPC-H SF=1 in a RAM drive, 1..64 identical Q1, 24 cores; SP only at "
      "the table-scan stage",
      StrPrintf("TPC-H SF=%.3g in memory, 1..%zu identical Q1", sf,
                max_queries)
          .c_str(),
      "CS(FIFO) serializes on the producer and can lose to not sharing at "
      "low concurrency; CS(SPL) is always >= not sharing and cuts response "
      "times by 82-86%% at 64 queries (24 cores; the factor shrinks with "
      "fewer cores, the ordering does not)");

  auto db = MakeTpchBenchDb(sf, 7);

  std::vector<size_t> grid;
  for (size_t q = 1; q <= max_queries; q *= 2) grid.push_back(q);

  harness::ReportTable table(
      {"queries", "NoSP(FIFO)", "CS(FIFO)", "NoSP(SPL)", "CS(SPL)",
       "speedup(FIFO)", "speedup(SPL)"});
  struct Point {
    double nosp_fifo, cs_fifo, nosp_spl, cs_spl;
  };
  std::vector<Point> points;
  for (size_t q : grid) {
    Point p{};
    p.nosp_fifo =
        RunPoint(db.get(), false, core::CommModel::kPush, q, iterations)
            .response_seconds.Mean();
    p.cs_fifo = RunPoint(db.get(), true, core::CommModel::kPush, q, iterations)
                    .response_seconds.Mean();
    p.nosp_spl =
        RunPoint(db.get(), false, core::CommModel::kPull, q, iterations)
            .response_seconds.Mean();
    p.cs_spl = RunPoint(db.get(), true, core::CommModel::kPull, q, iterations)
                   .response_seconds.Mean();
    points.push_back(p);
    table.AddRow({std::to_string(q), StrPrintf("%.3fs", p.nosp_fifo),
                  StrPrintf("%.3fs", p.cs_fifo), StrPrintf("%.3fs", p.nosp_spl),
                  StrPrintf("%.3fs", p.cs_spl),
                  StrPrintf("%.2fx", p.nosp_fifo / p.cs_fifo),
                  StrPrintf("%.2fx", p.nosp_spl / p.cs_spl)});
  }
  std::printf("Figure 6a/6b (response time) and 6c (speedup of sharing):\n");
  table.Print();

  // §4 size sweep: SPL maximum size does not heavily affect performance.
  const size_t size_queries = std::min<size_t>(8, max_queries);
  harness::ReportTable sizes({"SPL max size", "CS(SPL) response"});
  std::vector<double> size_times;
  for (size_t kb : {64, 256, 1024, 4096}) {
    const double t =
        RunSplSizePoint(db.get(), size_queries, kb * 1024, iterations);
    size_times.push_back(t);
    sizes.AddRow({StrPrintf("%zu KB", kb), StrPrintf("%.3fs", t)});
  }
  std::printf("\nSection 4 SPL maximum-size sweep (%zu queries):\n",
              size_queries);
  sizes.Print();

  harness::ShapeChecker checker;
  const Point& hi = points.back();
  // "Never hurts" across the whole sweep: the 1-2 query points carry no
  // sharing at all (pure noise comparison), so they get wider slack than
  // the points where satellites exist.
  checker.Leq("CS(SPL) <= NoSP(SPL) at every concurrency (sharing with SPL "
              "never hurts)",
              [&] {
                double worst = 0;
                for (size_t i = 0; i < grid.size(); ++i) {
                  const double slack_adjust = grid[i] < 4 ? 0.85 : 1.0;
                  worst = std::max(
                      worst, points[i].cs_spl / points[i].nosp_spl *
                                 slack_adjust);
                }
                return worst;
              }(),
              1.0, 0.10);
  checker.Leq("CS(SPL) <= CS(FIFO) at max concurrency (pull removes the "
              "forwarding cost)",
              hi.cs_spl, hi.cs_fifo, 0.05);
  // The paper's 82-86% cut needs 24 idle cores for the satellites; with
  // both cores saturated either way, sharing saves the duplicated
  // scan+selection work — assert a measurable, never-negative gain.
  checker.FactorAtLeast(
      "CS(SPL) beats NoSP at max concurrency (sharing pays off; factor "
      "scales with cores)",
      hi.nosp_spl, hi.cs_spl, 1.05);
  // Fig 6c's push-vs-pull gap: once satellites exist (>= 4 queries), the
  // pull model must never lose to the push model — the producer-side copy
  // serialization only ever costs.
  {
    double worst = 0;
    for (size_t i = 0; i < grid.size(); ++i) {
      if (grid[i] < 4) continue;
      worst = std::max(worst, points[i].cs_spl / points[i].cs_fifo);
    }
    checker.Leq(
        "CS(SPL) <= CS(FIFO) wherever satellites exist (Fig 6c: the push "
        "serialization point only costs)",
        worst, 1.0, 0.15);
  }
  const double size_min = *std::min_element(size_times.begin(), size_times.end());
  const double size_max = *std::max_element(size_times.begin(), size_times.end());
  checker.Check("SPL max size does not heavily affect performance (§4)",
                size_max <= size_min * 1.75,
                StrPrintf("min %.3fs max %.3fs", size_min, size_max));
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
