// Figure 10 (paper §5.2.1): impact of concurrency, memory- and disk-resident.
//
// Concurrent SSB Q3.2 instances with random predicates (selectivity
// 0.02-0.16 %), configurations QPipe / QPipe-CS / QPipe-SP / CJOIN, sweeping
// the number of concurrent queries; plus the paper's measurement table
// (avg cores used, avg device read rate) at the top concurrency.

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

struct PointResult {
  double response = 0;
  double cores = 0;
  double read_mbps = 0;
};

PointResult RunPoint(BenchDb* db, core::EngineConfig config, size_t queries,
                     uint64_t seed, int iterations) {
  Stats means;
  PointResult r;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = config;
    opts.cjoin.max_queries = std::max<size_t>(128, queries * 2);
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto m = harness::RunBatch(
        &engine, db->pool.get(),
        ssb::RandomQ32Workload(queries, seed + static_cast<uint64_t>(it)));
    if (it > 0) {
      means.Add(m.response_seconds.Mean());
      r.cores = m.avg_cores;
      r.read_mbps = m.read_mbps;
    }
  }
  r.response = means.Min();
  return r;
}

void RunSweep(BenchDb* db, const char* title,
              const std::vector<size_t>& grid, int iterations,
              harness::ShapeChecker* checker, bool disk) {
  constexpr core::EngineConfig kConfigs[] = {
      core::EngineConfig::kQpipe, core::EngineConfig::kQpipeCs,
      core::EngineConfig::kQpipeSp, core::EngineConfig::kCjoin};

  harness::ReportTable table(
      {"queries", "QPipe", "QPipe-CS", "QPipe-SP", "CJOIN"});
  std::vector<std::array<PointResult, 4>> points;
  for (size_t q : grid) {
    std::array<PointResult, 4> row{};
    std::vector<std::string> cells{std::to_string(q)};
    for (int c = 0; c < 4; ++c) {
      row[static_cast<size_t>(c)] =
          RunPoint(db, kConfigs[c], q, 1000 + q, iterations);
      cells.push_back(
          StrPrintf("%.3fs", row[static_cast<size_t>(c)].response));
    }
    points.push_back(row);
    table.AddRow(std::move(cells));
  }
  std::printf("%s\n", title);
  table.Print();

  // Paper's measurement table at the top concurrency.
  harness::ReportTable meas({"measurement", "QPipe", "QPipe-CS", "QPipe-SP",
                             "CJOIN"});
  const auto& top = points.back();
  meas.AddRow({"Avg. # cores used", StrPrintf("%.2f", top[0].cores),
               StrPrintf("%.2f", top[1].cores), StrPrintf("%.2f", top[2].cores),
               StrPrintf("%.2f", top[3].cores)});
  if (disk) {
    meas.AddRow({"Avg. read rate (MB/s)", StrPrintf("%.1f", top[0].read_mbps),
                 StrPrintf("%.1f", top[1].read_mbps),
                 StrPrintf("%.1f", top[2].read_mbps),
                 StrPrintf("%.1f", top[3].read_mbps)});
  }
  std::printf("\nMeasurements at %zu concurrent queries:\n", grid.back());
  meas.Print();
  std::printf("\n");

  const char* suffix = disk ? " (disk)" : " (memory)";
  checker->Leq(std::string("QPipe-CS <= QPipe at max concurrency") + suffix,
               top[1].response, top[0].response, 0.10);
  checker->Leq(std::string("QPipe-SP <= QPipe-CS at max concurrency") + suffix,
               top[2].response, top[1].response, 0.10);
  checker->Leq(std::string("CJOIN <= QPipe-SP at max concurrency (shared "
                           "operators win under contention)") +
                   suffix,
               top[3].response, top[2].response, 0.10);
  if (!disk) {
    // The bookkeeping overhead is a CPU effect; on disk a single query is
    // I/O-bound and the comparison is noise.
    checker->Leq(
        std::string("QPipe-SP <= CJOIN at 1 query (shared-operator "
                    "bookkeeping hurts at low concurrency)") +
            suffix,
        points[0][2].response, points[0][3].response, 0.10);
  }
  if (disk) {
    checker->FactorAtLeast(
        "shared scans cut disk response times at max concurrency "
        "(paper: 80-97%)",
        top[0].response, top[1].response, 1.5);
  }
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.02);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 2));
  const size_t max_queries = static_cast<size_t>(
      flags.GetInt("max-queries", static_cast<int64_t>(16 * Cores())));

  PrintHeader(
      "Figure 10: impact of concurrency (SSB Q3.2, random predicates)",
      "SSB SF=1, 1..256 queries, memory-resident (RAM drive) and "
      "disk-resident, 24 cores",
      StrPrintf("SSB SF=%.3g, 1..%zu queries", sf, max_queries).c_str(),
      "QPipe saturates CPUs; circular scans reduce contention; SP "
      "eliminates common sub-plans; CJOIN's shared operators are most "
      "efficient at high concurrency but trail query-centric operators at "
      "1 query; on disk, shared scans cut response times 80-97%");

  std::vector<size_t> grid;
  for (size_t q = 1; q <= max_queries; q *= 4) grid.push_back(q);
  if (grid.back() != max_queries) grid.push_back(max_queries);

  harness::ShapeChecker checker;
  {
    auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/true);
    RunSweep(db.get(), "Figure 10 (left): memory-resident database", grid,
             iterations, &checker, /*disk=*/false);
  }
  {
    // Disk-resident: the buffer pool holds ~10% of the dataset, so
    // independent scans that drift apart re-read evicted pages with seeks
    // while the shared scan stays sequential (DESIGN.md §3 device model).
    DiskProfile disk;
    disk.seek_latency_us = 1500;
    auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/false, disk);
    const size_t pool_bytes = db->catalog.total_bytes() / 10;
    db->pool = std::make_unique<storage::BufferPool>(db->device.get(),
                                                     pool_bytes);
    RunSweep(db.get(), "Figure 10 (right): disk-resident database", grid,
             iterations, &checker, /*disk=*/true);
  }
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
