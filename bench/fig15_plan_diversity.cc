// Figure 15 (paper §5.2.3): fixed high concurrency, varying the number of
// possible distinct query plans (the similarity knob magnified).
//
// CJOIN is largely insensitive to plan diversity; QPipe-SP wins at extreme
// similarity but degrades as the number of distinct plans grows; CJOIN-SP
// exploits identical CJOIN packets and improves on CJOIN by 20-48% when the
// mix exposes common sub-plans. The table also prints SP sharing counts per
// hash join (the paper's 1st/2nd/3rd format) and CJOIN-SP packet shares.

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

struct PointResult {
  double response = 0;
  qpipe::SpCounters sp;
  uint64_t cjoin_shares = 0;
};

PointResult RunPoint(BenchDb* db, core::EngineConfig config, size_t queries,
                     size_t plans, uint64_t seed, int iterations) {
  Stats means;
  PointResult r;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = config;
    opts.cjoin.max_queries = std::max<size_t>(128, queries * 2);
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto m = harness::RunBatch(
        &engine, db->pool.get(),
        ssb::SimilarQ32Workload(queries, plans,
                                seed + static_cast<uint64_t>(it)));
    if (it > 0) {
      means.Add(m.response_seconds.Mean());
      r.sp = m.sp;
      r.cjoin_shares = m.cjoin_shares;
    }
  }
  r.response = means.Min();
  return r;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.05);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 2));
  const size_t queries = static_cast<size_t>(
      flags.GetInt("queries", static_cast<int64_t>(32 * Cores())));

  PrintHeader(
      "Figure 15: varying the number of possible different plans",
      "SSB SF=100 (buffer pool 10%), 512 concurrent queries from {1, 128, "
      "256, 512, random} plans, 24 cores",
      StrPrintf("SSB SF=%.3g (buffer pool 10%%), %zu queries", sf, queries)
          .c_str(),
      "CJOIN is not heavily affected by plan diversity; QPipe-SP prevails "
      "at extreme similarity and deteriorates with more distinct plans; "
      "CJOIN-SP improves CJOIN by 20-48% when common sub-plans exist");

  DiskProfile disk;
  disk.seek_latency_us = 1200;
  disk.os_cache_bytes = 1ull << 32;
  auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/false, disk);
  db->pool = std::make_unique<storage::BufferPool>(
      db->device.get(), db->catalog.total_bytes() / 10);

  // 0 encodes "random" (unbounded distinct plans).
  std::vector<size_t> plan_grid = {1, queries / 4, queries / 2, queries, 0};

  harness::ReportTable table({"plans", "QPipe-SP", "CJOIN", "CJOIN-SP",
                              "SP shares 1st/2nd/3rd", "CJOIN-SP shares"});
  std::vector<std::array<PointResult, 3>> points;
  for (size_t plans : plan_grid) {
    std::array<PointResult, 3> row{};
    row[0] = RunPoint(db.get(), core::EngineConfig::kQpipeSp, queries, plans,
                      1500 + plans, iterations);
    row[1] = RunPoint(db.get(), core::EngineConfig::kCjoin, queries, plans,
                      1500 + plans, iterations);
    row[2] = RunPoint(db.get(), core::EngineConfig::kCjoinSp, queries, plans,
                      1500 + plans, iterations);
    points.push_back(row);
    table.AddRow(
        {plans == 0 ? "random" : std::to_string(plans),
         StrPrintf("%.3fs", row[0].response),
         StrPrintf("%.3fs", row[1].response),
         StrPrintf("%.3fs", row[2].response),
         StrPrintf("%llu/%llu/%llu",
                   static_cast<unsigned long long>(
                       row[0].sp.join_shares_by_depth[0]),
                   static_cast<unsigned long long>(
                       row[0].sp.join_shares_by_depth[1]),
                   static_cast<unsigned long long>(
                       row[0].sp.join_shares_by_depth[2])),
         std::to_string(row[2].cjoin_shares)});
  }
  std::printf("Figure 15 (%zu concurrent queries):\n", queries);
  table.Print();

  harness::ShapeChecker checker;
  checker.Leq("QPipe-SP <= CJOIN at 1 plan (extreme similarity: SP "
              "evaluates one plan)",
              points[0][0].response, points[0][1].response, 0.10);
  // With no common sub-plans CJOIN-SP "behaves similar to CJOIN" (paper
  // §5.1); allow generous slack since equal-cost points are noise-dominated.
  checker.Leq("CJOIN-SP <= CJOIN at every similarity level",
              [&] {
                double worst = 0;
                for (const auto& p : points) {
                  worst = std::max(worst, p[2].response / p[1].response);
                }
                return worst;
              }(),
              1.0, 0.25);
  // The paper's 20-48% improvement reflects 512 queries of avoided
  // admission/bitmap work on 24 cores; at this scale the mechanism yields
  // 5-30% across runs — assert a measurable improvement.
  checker.FactorAtLeast(
      "CJOIN-SP improves CJOIN at 1 plan (paper: 20-48% with common "
      "sub-plans at 512-query scale)",
      points[0][1].response, points[0][2].response, 1.05);
  checker.Check(
      "CJOIN varies less across plan diversity than QPipe-SP",
      [&] {
        double cj_min = 1e18, cj_max = 0, sp_min = 1e18, sp_max = 0;
        for (const auto& p : points) {
          cj_min = std::min(cj_min, p[1].response);
          cj_max = std::max(cj_max, p[1].response);
          sp_min = std::min(sp_min, p[0].response);
          sp_max = std::max(sp_max, p[0].response);
        }
        return cj_max / cj_min <= sp_max / sp_min;
      }(),
      "relative spread comparison");
  checker.Check("QPipe-SP sharing decreases as plans increase",
                points[0][0].sp.join_shares_by_depth[2] >
                    points[points.size() - 2][0].sp.join_shares_by_depth[2],
                StrPrintf("%llu -> %llu third-join shares",
                          static_cast<unsigned long long>(
                              points[0][0].sp.join_shares_by_depth[2]),
                          static_cast<unsigned long long>(
                              points[points.size() - 2][0]
                                  .sp.join_shares_by_depth[2])));
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
