// Figure 16 (paper §5.3): SSB query mix (Q1.1, Q2.1, Q3.2 round-robin),
// disk-resident — response time (simultaneous batch) and throughput
// (closed-loop clients) for QPipe-SP, CJOIN-SP, and the query-centric
// comparator (the paper used PostgreSQL; we substitute the Volcano engine,
// see DESIGN.md §3).

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

double RunEnginePoint(BenchDb* db, core::EngineConfig config, size_t queries,
                      uint64_t seed, int iterations) {
  Stats means;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = config;
    opts.cjoin.max_queries = std::max<size_t>(128, queries * 2);
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto m = harness::RunBatch(
        &engine, db->pool.get(),
        ssb::MixedWorkload(queries, seed + static_cast<uint64_t>(it)));
    if (it > 0) means.Add(m.response_seconds.Mean());
  }
  return means.Min();
}

double RunVolcanoPoint(BenchDb* db, size_t queries, uint64_t seed,
                       int iterations) {
  baseline::VolcanoEngine volcano(&db->catalog, db->pool.get());
  Stats means;
  for (int it = 0; it < iterations + 1; ++it) {
    const auto m = harness::RunBatch(
        &volcano, db->pool.get(),
        ssb::MixedWorkload(queries, seed + static_cast<uint64_t>(it)));
    if (it > 0) means.Add(m.response_seconds.Mean());
  }
  return means.Min();
}

double RunEngineThroughput(BenchDb* db, core::EngineConfig config,
                           size_t clients, double seconds) {
  core::EngineOptions opts;
  opts.config = config;
  opts.cjoin.max_queries = std::max<size_t>(128, clients * 4);
  core::Engine engine(&db->catalog, db->pool.get(), opts);
  const auto m = harness::RunClosedLoop(
      &engine, db->pool.get(),
      [](size_t i) { return ssb::MixedWorkload(1, 9000 + i)[0]; }, clients,
      seconds);
  return m.throughput_qph;
}

double RunVolcanoThroughput(BenchDb* db, size_t clients, double seconds) {
  baseline::VolcanoEngine volcano(&db->catalog, db->pool.get());
  const auto m = harness::RunClosedLoop(
      &volcano, db->pool.get(),
      [](size_t i) { return ssb::MixedWorkload(1, 9000 + i)[0]; }, clients,
      seconds);
  return m.throughput_qph;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.05);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 2));
  const size_t max_queries = static_cast<size_t>(
      flags.GetInt("max-queries", static_cast<int64_t>(16 * Cores())));
  const size_t max_clients = static_cast<size_t>(
      flags.GetInt("max-clients", static_cast<int64_t>(8 * Cores())));
  const double loop_seconds = flags.GetDouble("loop-seconds", 3.0);

  PrintHeader(
      "Figure 16: SSB query mix (Q1.1 / Q2.1 / Q3.2 round-robin)",
      "SSB SF=30 disk-resident (buffer pool fits 10%), 1..256 queries / "
      "clients; QPipe-SP vs CJOIN-SP vs PostgreSQL",
      StrPrintf("SSB SF=%.3g on simulated disk, up to %zu queries / %zu "
                "clients; Volcano engine substitutes PostgreSQL",
                sf, max_queries, max_clients)
          .c_str(),
      "the query-centric engine contends for resources at high concurrency; "
      "QPipe-SP does better via circular scans + SP; CJOIN-SP is best, and "
      "its throughput keeps rising with more clients while query-centric "
      "throughput ultimately degrades");

  DiskProfile disk;
  disk.seek_latency_us = 1200;
  disk.os_cache_bytes = 1ull << 32;
  auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/false, disk);
  db->pool = std::make_unique<storage::BufferPool>(
      db->device.get(), db->catalog.total_bytes() / 10);

  // Response-time experiment.
  std::vector<size_t> grid;
  for (size_t q = 1; q <= max_queries; q *= 4) grid.push_back(q);
  if (grid.back() != max_queries) grid.push_back(max_queries);

  harness::ReportTable resp(
      {"queries", "Volcano(Postgres-sub)", "QPipe-SP", "CJOIN-SP"});
  struct Row {
    double volcano, sp, cjsp;
  };
  std::vector<Row> rows;
  for (size_t q : grid) {
    Row row{};
    row.volcano = RunVolcanoPoint(db.get(), q, 3000 + q, iterations);
    row.sp = RunEnginePoint(db.get(), core::EngineConfig::kQpipeSp, q,
                            3000 + q, iterations);
    row.cjsp = RunEnginePoint(db.get(), core::EngineConfig::kCjoinSp, q,
                              3000 + q, iterations);
    rows.push_back(row);
    resp.AddRow({std::to_string(q), StrPrintf("%.3fs", row.volcano),
                 StrPrintf("%.3fs", row.sp), StrPrintf("%.3fs", row.cjsp)});
  }
  std::printf("Figure 16 (left): response time\n");
  resp.Print();

  // Throughput experiment (closed loop).
  std::vector<size_t> clients_grid;
  for (size_t c = 1; c <= max_clients; c *= 4) clients_grid.push_back(c);
  if (clients_grid.back() != max_clients) clients_grid.push_back(max_clients);

  harness::ReportTable thr(
      {"clients", "Volcano(q/h)", "QPipe-SP(q/h)", "CJOIN-SP(q/h)"});
  struct ThrRow {
    double volcano, sp, cjsp;
  };
  std::vector<ThrRow> thr_rows;
  for (size_t c : clients_grid) {
    ThrRow row{};
    row.volcano = RunVolcanoThroughput(db.get(), c, loop_seconds);
    row.sp = RunEngineThroughput(db.get(), core::EngineConfig::kQpipeSp, c,
                                 loop_seconds);
    row.cjsp = RunEngineThroughput(db.get(), core::EngineConfig::kCjoinSp, c,
                                   loop_seconds);
    thr_rows.push_back(row);
    thr.AddRow({std::to_string(c), StrPrintf("%.0f", row.volcano),
                StrPrintf("%.0f", row.sp), StrPrintf("%.0f", row.cjsp)});
  }
  std::printf("\nFigure 16 (right): throughput (closed loop, %.1fs per "
              "point)\n",
              loop_seconds);
  thr.Print();

  harness::ShapeChecker checker;
  checker.Leq(
      "QPipe-SP <= query-centric comparator at max concurrency (sharing "
      "pays off)",
      rows.back().sp, rows.back().volcano, 0.10);
  checker.Leq("CJOIN-SP <= QPipe-SP at max concurrency (shared operators "
              "are most efficient)",
              rows.back().cjsp, rows.back().sp, 0.10);
  checker.Check(
      "CJOIN-SP throughput rises with more clients",
      thr_rows.back().cjsp >= thr_rows.front().cjsp,
      StrPrintf("%.0f -> %.0f q/h", thr_rows.front().cjsp,
                thr_rows.back().cjsp));
  checker.Check(
      "CJOIN-SP sustains the best throughput at max clients",
      thr_rows.back().cjsp >= thr_rows.back().sp * 0.9 &&
          thr_rows.back().cjsp >= thr_rows.back().volcano * 0.9,
      StrPrintf("CJOIN-SP %.0f vs QPipe-SP %.0f vs Volcano %.0f",
                thr_rows.back().cjsp, thr_rows.back().sp,
                thr_rows.back().volcano));
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
