// Google-benchmark microbenchmarks for the primitives underlying the paper's
// effects: page transport (FIFO put/get, SPL put/get with N readers, the
// push-model deep copy), query-bitmap operations (the shared-operator
// bookkeeping), hash table build/probe, predicate evaluation, the CJOIN
// filter hot path (scalar reference vs. the batched/prefetching
// implementation), the distributor slot-grouping hot path (per-batch map vs.
// the recycled arena scratch), the shared aggregation fold (one fold per
// group vs. one scalar pass per member query), admission latency (serial
// vs. one-scan
// batched epochs), and the steady-state recycling rates. These are the
// ablation-level numbers behind the figure-level benches; see bench/README.md
// for how to read the Hashing/Joins buckets and the baseline workflow.

#include <benchmark/benchmark.h>

#include <cstring>
#include <thread>
#include <unordered_map>

#include "cjoin/filter.h"
#include "cjoin/pipeline.h"
#include "cjoin/shared_agg.h"
#include "cjoin/tuple_batch.h"
#include "common/bitmap.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timing.h"
#include "core/engine.h"
#include "core/shared_pages_list.h"
#include "harness/driver.h"
#include "qpipe/fifo_buffer.h"
#include "qpipe/flat_hash_table.h"
#include "qpipe/hash_table.h"
#include "query/predicate.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_schema.h"
#include "ssb/workload.h"
#include "storage/page.h"
#include "storage/storage_device.h"
#include "storage/table.h"

namespace sdw {
namespace {

storage::PagePtr MakePage() {
  auto page = storage::Page::Make(64);
  while (std::byte* t = page->AppendTuple()) {
    std::memset(t, 7, 64);
  }
  return page;
}

void BM_PageClone(benchmark::State& state) {
  auto page = MakePage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::Page::Clone(*page));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(storage::kPageSize));
}
BENCHMARK(BM_PageClone);

void BM_FifoPutGet(benchmark::State& state) {
  auto page = MakePage();
  for (auto _ : state) {
    qpipe::FifoBuffer fifo(0);
    for (int i = 0; i < 64; ++i) fifo.Put(page);
    fifo.Close();
    while (fifo.Next() != nullptr) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FifoPutGet);

// SPL with N concurrent readers: producer-side cost must stay flat in N
// (the whole point of pull-based SP).
void BM_SplProducerWithReaders(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  auto page = MakePage();
  for (auto _ : state) {
    state.PauseTiming();
    core::SharedPagesList spl(0);  // unbounded: producer never blocks
    std::vector<std::unique_ptr<core::SharedPagesList::Reader>> rs;
    for (int r = 0; r < readers; ++r) rs.push_back(spl.TryAttachFromStart());
    std::vector<std::thread> consumers;
    for (auto& r : rs) {
      consumers.emplace_back([&r] {
        while (r->Next() != nullptr) {
        }
      });
    }
    state.ResumeTiming();
    for (int i = 0; i < 256; ++i) spl.Put(page);
    state.PauseTiming();
    spl.Close();
    for (auto& c : consumers) c.join();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SplProducerWithReaders)->Arg(1)->Arg(4)->Arg(16);

// Push-model producer: deep-copies into per-satellite FIFOs — cost grows
// linearly with the satellite count (the serialization point).
void BM_PushProducerWithSatellites(benchmark::State& state) {
  const int satellites = static_cast<int>(state.range(0));
  auto page = MakePage();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::shared_ptr<qpipe::FifoBuffer>> fifos;
    std::vector<std::thread> consumers;
    for (int s = 0; s < satellites; ++s) {
      fifos.push_back(std::make_shared<qpipe::FifoBuffer>(size_t{0}));
      consumers.emplace_back([f = fifos.back()] {
        while (f->Next() != nullptr) {
        }
      });
    }
    state.ResumeTiming();
    for (int i = 0; i < 256; ++i) {
      for (auto& f : fifos) f->Put(storage::Page::Clone(*page));
    }
    state.PauseTiming();
    for (auto& f : fifos) f->Close();
    for (auto& c : consumers) c.join();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PushProducerWithSatellites)->Arg(1)->Arg(4)->Arg(16);

void BM_BitmapAndWithOr(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> dst(words, ~0ull), a(words, 0x5555555555555555ull),
      b(words, 0x0F0F0F0F0F0F0F0Full);
  for (auto _ : state) {
    bits::AndWithOr(dst.data(), a.data(), b.data(), words);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapAndWithOr)->Arg(1)->Arg(4)->Arg(16);  // 64..1024 queries

// The filter's pass-2 kernel (AND two sources into dst, report any-set) and
// the distributor's decode prefilter (OR-accumulate into the seen mask,
// report any-set): scalar loop vs the runtime-dispatched SIMD entry point.
// On hosts without AVX2 the simd:: variant resolves to the same scalar loop
// — the `avx2` counter records which body actually ran. Arg = bitmap words
// (4 = 256 query slots, the acceptance regime).
void BM_BitmapAndScalar(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> dst(words, ~0ull), a(words, 0x5555555555555555ull),
      b(words, 0x0F0F0F0F0F0F0F0Full);
  uint64_t any = 0;
  for (auto _ : state) {
    any |= bits::AndWithOrAny(dst.data(), a.data(), b.data(), words);
    benchmark::DoNotOptimize(dst.data());
  }
  benchmark::DoNotOptimize(any);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapAndScalar)->Arg(1)->Arg(4)->Arg(16);

void BM_BitmapAndAvx2(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> dst(words, ~0ull), a(words, 0x5555555555555555ull),
      b(words, 0x0F0F0F0F0F0F0F0Full);
  uint64_t any = 0;
  for (auto _ : state) {
    any |= simd::AndWithOrAny(dst.data(), a.data(), b.data(), words);
    benchmark::DoNotOptimize(dst.data());
  }
  benchmark::DoNotOptimize(any);
  state.SetItemsProcessed(state.iterations());
  state.counters["avx2"] = simd::Avx2Active() ? 1 : 0;
}
BENCHMARK(BM_BitmapAndAvx2)->Arg(1)->Arg(4)->Arg(16);

void BM_BitmapOrAccumScalar(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> acc(words, 0), src(words, 0x5555555555555555ull);
  uint64_t any = 0;
  for (auto _ : state) {
    for (size_t w = 0; w < words; ++w) {
      acc[w] |= src[w];
      any |= src[w];
    }
    benchmark::DoNotOptimize(acc.data());
  }
  benchmark::DoNotOptimize(any);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapOrAccumScalar)->Arg(1)->Arg(4)->Arg(16);

void BM_BitmapOrAccumAvx2(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> acc(words, 0), src(words, 0x5555555555555555ull);
  uint64_t any = 0;
  for (auto _ : state) {
    any |= simd::OrAccumulateAny(acc.data(), src.data(), words);
    benchmark::DoNotOptimize(acc.data());
  }
  benchmark::DoNotOptimize(any);
  state.SetItemsProcessed(state.iterations());
  state.counters["avx2"] = simd::Avx2Active() ? 1 : 0;
}
BENCHMARK(BM_BitmapOrAccumAvx2)->Arg(1)->Arg(4)->Arg(16);

void BM_HashTableBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    qpipe::Int64HashTable ht;
    for (int64_t k = 0; k < n; ++k) {
      ht.Insert(qpipe::HashKey(k), k, static_cast<uint64_t>(k));
    }
    ht.Build();
    benchmark::DoNotOptimize(ht.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashTableBuild)->Arg(1000)->Arg(100000);

void BM_HashTableProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  qpipe::Int64HashTable ht;
  for (int64_t k = 0; k < n; ++k) {
    ht.Insert(qpipe::HashKey(k), k, static_cast<uint64_t>(k));
  }
  ht.Build();
  int64_t probe = 0;
  for (auto _ : state) {
    uint64_t sum = 0;
    ht.ForEachMatch(qpipe::HashKey(probe % (2 * n)), probe % (2 * n),
                    [&](uint64_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
    ++probe;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableProbe)->Arg(1000)->Arg(100000);

void BM_PredicateEval(benchmark::State& state) {
  const storage::Schema schema = ssb::CustomerSchema();
  std::vector<std::byte> tuple(schema.tuple_size());
  schema.SetChar(tuple.data(), schema.MustColumnIndex("c_nation"),
                 "UNITED STATES");
  query::Predicate pred;
  pred.AndAnyOf({query::AtomicPred::Str("c_nation", query::CompareOp::kEq,
                                        "UNITED KINGDOM"),
                 query::AtomicPred::Str("c_nation", query::CompareOp::kEq,
                                        "UNITED STATES")});
  const auto bound = pred.Bind(schema);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bound.Eval(schema, tuple.data()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredicateEval);

// ---------------------------------------------------------------------------
// CJOIN filter hot path: batched probe and batch recycling (this repo's
// zero-allocation filter rework). Compare the *Scalar / *Batched pairs —
// the acceptance bar for the rework was batched >= 1.5x scalar tuples/sec
// on the 64-slot (one bitmap word) fast path.

// Batch-at-a-time hash probe vs. the per-key ForEachMatch loop, 4096 keys
// per iteration, ~75% hits over a 100k-entry table (out of cache).
class ProbeFixture {
 public:
  static constexpr size_t kEntries = 100000;
  static constexpr size_t kKeys = 4096;

  ProbeFixture() {
    Rng rng(42);
    for (size_t v = 0; v < kEntries; ++v) {
      const int64_t key = static_cast<int64_t>(v) * 7 + 3;
      ht_.Insert(qpipe::HashKey(key), key, v);
    }
    ht_.Build();
    keys_.resize(kKeys);
    for (auto& k : keys_) {
      k = rng.Bernoulli(0.75)
              ? static_cast<int64_t>(rng.Index(kEntries)) * 7 + 3
              : -static_cast<int64_t>(rng.Next() % kEntries) - 1;
    }
    out_.resize(kKeys);
  }

  static ProbeFixture& Get() {
    static ProbeFixture f;
    return f;
  }

  qpipe::Int64HashTable ht_;
  std::vector<int64_t> keys_;
  std::vector<uint64_t> out_;
};

void BM_HashProbeScalar(benchmark::State& state) {
  ProbeFixture& f = ProbeFixture::Get();
  for (auto _ : state) {
    for (size_t i = 0; i < ProbeFixture::kKeys; ++i) {
      uint64_t v = qpipe::Int64HashTable::kMissValue;
      f.ht_.ForEachMatch(qpipe::HashKey(f.keys_[i]), f.keys_[i],
                         [&](uint64_t value) { v = value; });
      f.out_[i] = v;
    }
    benchmark::DoNotOptimize(f.out_.data());
  }
  state.SetItemsProcessed(state.iterations() * ProbeFixture::kKeys);
}
BENCHMARK(BM_HashProbeScalar);

void BM_HashProbeBatched(benchmark::State& state) {
  ProbeFixture& f = ProbeFixture::Get();
  for (auto _ : state) {
    f.ht_.ProbeBatch(f.keys_.data(), ProbeFixture::kKeys, f.out_.data());
    benchmark::DoNotOptimize(f.out_.data());
  }
  state.SetItemsProcessed(state.iterations() * ProbeFixture::kKeys);
}
BENCHMARK(BM_HashProbeBatched);

// Chained (node-walking) vs flat open-addressing ProbeBatch over the same
// 100k-entry / 4096-key / ~75%-hit workload. The flat table densifies the
// prefetch stream: one slot array, no per-entry indirection — this is the
// probe the columnar filter kernel issues.
class FlatProbeFixture {
 public:
  FlatProbeFixture() {
    const ProbeFixture& src = ProbeFixture::Get();
    for (size_t v = 0; v < ProbeFixture::kEntries; ++v) {
      const int64_t key = static_cast<int64_t>(v) * 7 + 3;
      bool inserted;
      flat_.FindOrInsert(key, v, &inserted);
    }
    out_.resize(src.keys_.size());
  }

  static FlatProbeFixture& Get() {
    static FlatProbeFixture f;
    return f;
  }

  qpipe::FlatInt64HashTable flat_;
  std::vector<uint64_t> out_;
};

void BM_ProbeChained(benchmark::State& state) {
  ProbeFixture& f = ProbeFixture::Get();
  for (auto _ : state) {
    f.ht_.ProbeBatch(f.keys_.data(), ProbeFixture::kKeys, f.out_.data());
    benchmark::DoNotOptimize(f.out_.data());
  }
  state.SetItemsProcessed(state.iterations() * ProbeFixture::kKeys);
}
BENCHMARK(BM_ProbeChained);

void BM_ProbeFlat(benchmark::State& state) {
  ProbeFixture& f = ProbeFixture::Get();
  FlatProbeFixture& flat = FlatProbeFixture::Get();
  for (auto _ : state) {
    flat.flat_.ProbeBatch(f.keys_.data(), ProbeFixture::kKeys,
                          flat.out_.data());
    benchmark::DoNotOptimize(flat.out_.data());
  }
  state.SetItemsProcessed(state.iterations() * ProbeFixture::kKeys);
}
BENCHMARK(BM_ProbeFlat);

// The full filter step on real 32 KB fact pages. Scalar = the pre-rework
// path (per-tuple GetIntAny decode, dependent-load probe, per-call heap
// match vector); batched = fixed-offset key gather + ProbeBatch + branchless
// sentinel pass 2 + reusable scratch. Arg = query slots (64 -> one bitmap
// word, the fast path; 256 -> four words). Manual timing: re-priming the
// batch bitmaps between runs is excluded.
class FilterFixture {
 public:
  explicit FilterFixture(size_t slots, bool columnar = false)
      : slots_(slots) {
    constexpr int64_t kDimRows = 30000;
    constexpr int64_t kKeySpace = 40000;
    constexpr uint32_t kFactRows = 64 * 1024;
    Rng rng(7);
    words_ = bits::WordsFor(slots);

    storage::Schema dim_schema({storage::Schema::Int32("pk"),
                                storage::Schema::Int32("attr")});
    dim_ = std::make_unique<storage::Table>("dim", dim_schema);
    for (int64_t r = 0; r < kDimRows; ++r) {
      std::byte* row = dim_->AppendRow();
      dim_schema.SetInt32(row, 0, static_cast<int32_t>(r));
      dim_schema.SetInt32(row, 1, static_cast<int32_t>(rng.Uniform(0, 99)));
    }

    storage::Schema fact_schema({storage::Schema::Int32("fk"),
                                 storage::Schema::Int64("other"),
                                 storage::Schema::Double("val")});
    fact_ = std::make_unique<storage::Table>("fact", fact_schema);
    for (uint32_t r = 0; r < kFactRows; ++r) {
      std::byte* row = fact_->AppendRow();
      fact_schema.SetInt32(
          row, 0, static_cast<int32_t>(rng.Uniform(0, kKeySpace - 1)));
      fact_schema.SetInt64(row, 1, rng.Uniform(0, kKeySpace - 1));
      fact_schema.SetDouble(row, 2, rng.NextDouble());
    }

    if (columnar) fact_->ConvertToColumnar();

    storage::DeviceOptions dev_opts;
    device_ = std::make_unique<storage::StorageDevice>(dev_opts);
    pool_ = std::make_unique<storage::BufferPool>(device_.get(), 0);

    filter_ = std::make_unique<cjoin::Filter>(dim_.get(), "fk", "pk", 0,
                                              slots);
    filter_->BindFactColumn(fact_->schema());
    // Every fourth slot runs a query on this dimension; the rest pass.
    for (size_t s = 0; s < slots; ++s) {
      if (s % 4 == 0) {
        query::Predicate p;
        p.And(query::AtomicPred::Int(
            "attr", query::CompareOp::kLe,
            static_cast<int64_t>(rng.Uniform(20, 90))));
        filter_->AdmitQuery(static_cast<uint32_t>(s), p, pool_.get());
      } else {
        filter_->SetPass(static_cast<uint32_t>(s));
      }
    }

    for (size_t pi = 0; pi < fact_->num_pages(); ++pi) {
      auto b = std::make_shared<cjoin::TupleBatch>();
      b->fact_page = fact_->SharePage(pi);
      b->page_index = pi;
      b->ResetFor(b->fact_page->tuple_count(),
                  static_cast<uint32_t>(words_), 1);
      tuples_per_pass_ += b->num_tuples;
      batches_.push_back(std::move(b));
    }
    template_bits_.assign(words_, 0);
    bits::FillOnes(template_bits_.data(), slots);
  }

  static FilterFixture& Get(size_t slots) {
    static FilterFixture f64(64);
    static FilterFixture f256(256);
    return slots == 64 ? f64 : f256;
  }

  /// Same dims, predicates and fact data, but the fact table rebuilt in the
  /// PAX layout (page geometry differs — tuples/sec is the comparable unit).
  static FilterFixture& GetColumnar(size_t slots) {
    static FilterFixture f64(64, /*columnar=*/true);
    static FilterFixture f256(256, /*columnar=*/true);
    return slots == 64 ? f64 : f256;
  }

  void Prime(cjoin::TupleBatch* b) const {
    if (words_ == 1) {
      std::fill(b->bits.begin(), b->bits.end(), template_bits_[0]);
    } else {
      for (uint32_t i = 0; i < b->num_tuples; ++i) {
        bits::Copy(b->tuple_bits(i), template_bits_.data(), words_);
      }
    }
    std::fill(b->dim_rows.begin(), b->dim_rows.end(), cjoin::kNoDimRow);
    bits::FillOnes(b->live.data(), b->num_tuples);
  }

  const size_t slots_;
  size_t words_ = 0;
  uint64_t tuples_per_pass_ = 0;
  std::unique_ptr<storage::Table> dim_;
  std::unique_ptr<storage::Table> fact_;
  std::unique_ptr<storage::StorageDevice> device_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<cjoin::Filter> filter_;
  std::vector<cjoin::BatchPtr> batches_;
  std::vector<uint64_t> template_bits_;
};

void BM_FilterProcessScalar(benchmark::State& state) {
  FilterFixture& f = FilterFixture::Get(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    int64_t nanos = 0;
    for (auto& b : f.batches_) {
      f.Prime(b.get());
      const int64_t t0 = NowNanos();
      f.filter_->ProcessScalar(b.get(), f.fact_->schema(), 0);
      nanos += NowNanos() - t0;
    }
    state.SetIterationTime(static_cast<double>(nanos) * 1e-9);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.tuples_per_pass_));
}
BENCHMARK(BM_FilterProcessScalar)->Arg(64)->Arg(256)->UseManualTime();

void BM_FilterProcessBatched(benchmark::State& state) {
  FilterFixture& f = FilterFixture::Get(static_cast<size_t>(state.range(0)));
  cjoin::FilterScratch scratch;
  for (auto _ : state) {
    int64_t nanos = 0;
    for (auto& b : f.batches_) {
      f.Prime(b.get());
      const int64_t t0 = NowNanos();
      f.filter_->Process(b.get(), &scratch);
      nanos += NowNanos() - t0;
    }
    state.SetIterationTime(static_cast<double>(nanos) * 1e-9);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.tuples_per_pass_));
}
BENCHMARK(BM_FilterProcessBatched)->Arg(64)->Arg(256)->UseManualTime();

// Columnar (PAX) variants of the two filter benches above: the batched path
// reads the FK minipage directly (gather-free), probes the flat table, and
// runs the SIMD bitmap pass for multi-word slots. Compare tuples/sec with
// the row-major pair — the PAX acceptance bar is batched-columnar >= 1.3x
// batched-row-major at 256 slots.
void BM_FilterProcessScalarColumnar(benchmark::State& state) {
  FilterFixture& f =
      FilterFixture::GetColumnar(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    int64_t nanos = 0;
    for (auto& b : f.batches_) {
      f.Prime(b.get());
      const int64_t t0 = NowNanos();
      f.filter_->ProcessScalar(b.get(), f.fact_->schema(), 0);
      nanos += NowNanos() - t0;
    }
    state.SetIterationTime(static_cast<double>(nanos) * 1e-9);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.tuples_per_pass_));
}
BENCHMARK(BM_FilterProcessScalarColumnar)->Arg(64)->Arg(256)->UseManualTime();

void BM_FilterProcessBatchedColumnar(benchmark::State& state) {
  FilterFixture& f =
      FilterFixture::GetColumnar(static_cast<size_t>(state.range(0)));
  cjoin::FilterScratch scratch;
  for (auto _ : state) {
    int64_t nanos = 0;
    for (auto& b : f.batches_) {
      f.Prime(b.get());
      const int64_t t0 = NowNanos();
      f.filter_->Process(b.get(), &scratch);
      nanos += NowNanos() - t0;
    }
    state.SetIterationTime(static_cast<double>(nanos) * 1e-9);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.tuples_per_pass_));
  state.counters["avx2"] = simd::Avx2Active() ? 1 : 0;
}
BENCHMARK(BM_FilterProcessBatchedColumnar)->Arg(64)->Arg(256)->UseManualTime();

// ---------------------------------------------------------------------------
// CJOIN distributor hot path: grouping a batch's live tuples by query slot.
// Scalar = the seed's per-batch rebuilt unordered_map<slot, vector>; batched
// = the recycled flat counting-sort scratch (DistributorScratch). The
// acceptance bar for the rework was batched >= 1.3x scalar tuples/sec at 64
// slots. Arg = query slots (64 -> one bitmap word, 256 -> four).

class DistributorFixture {
 public:
  static constexpr uint32_t kTuplesPerBatch = 4096;
  static constexpr size_t kBatches = 8;

  explicit DistributorFixture(size_t slots) {
    Rng rng(13);
    const size_t words = bits::WordsFor(slots);
    // Mimic a post-filter population: ~1/8 of the slots active, ~70% of the
    // tuples still live, each live tuple matching a random subset of the
    // active slots.
    std::vector<uint32_t> active;
    for (size_t s = 0; s < slots; ++s) {
      if (s % 8 == 0) active.push_back(static_cast<uint32_t>(s));
    }
    for (size_t b = 0; b < kBatches; ++b) {
      auto batch = std::make_shared<cjoin::TupleBatch>();
      batch->ResetFor(kTuplesPerBatch, static_cast<uint32_t>(words), 1);
      for (uint32_t i = 0; i < kTuplesPerBatch; ++i) {
        uint64_t* tb = batch->tuple_bits(i);
        bits::Zero(tb, words);
        if (rng.Bernoulli(0.7)) {
          for (uint32_t s : active) {
            if (rng.Bernoulli(0.5)) bits::Set(tb, s);
          }
        }
        if (!bits::Any(tb, words)) batch->kill_tuple(i);
      }
      tuples_per_pass_ += kTuplesPerBatch;
      batches_.push_back(std::move(batch));
    }
  }

  static DistributorFixture& Get(size_t slots) {
    static DistributorFixture f64(64);
    static DistributorFixture f256(256);
    return slots == 64 ? f64 : f256;
  }

  uint64_t tuples_per_pass_ = 0;
  std::vector<cjoin::BatchPtr> batches_;
};

void BM_DistributePartScalar(benchmark::State& state) {
  DistributorFixture& f =
      DistributorFixture::Get(static_cast<size_t>(state.range(0)));
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_slot;
  uint64_t pairs = 0;
  for (auto _ : state) {
    for (const auto& b : f.batches_) {
      cjoin::DistributePartScalar(*b, &by_slot);
      pairs += by_slot.size();
    }
  }
  benchmark::DoNotOptimize(pairs);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.tuples_per_pass_));
}
BENCHMARK(BM_DistributePartScalar)->Arg(64)->Arg(256);

void BM_DistributePartBatched(benchmark::State& state) {
  DistributorFixture& f =
      DistributorFixture::Get(static_cast<size_t>(state.range(0)));
  cjoin::DistributorScratch scratch;
  uint64_t pairs = 0;
  for (auto _ : state) {
    for (const auto& b : f.batches_) {
      pairs += cjoin::DistributePartBatched(*b, &scratch);
    }
  }
  benchmark::DoNotOptimize(pairs);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.tuples_per_pass_));
  state.counters["scratch_grows"] = static_cast<double>(scratch.grows);
}
BENCHMARK(BM_DistributePartBatched)->Arg(64)->Arg(256);

// ---------------------------------------------------------------------------
// Shared aggregation hot path: folding one distributed batch ONCE for a
// group with N member queries (SharedAggregator::FoldBatch — one accumulator
// update per distinct (group key, member bitmap) per tuple) vs. the scalar
// reference running one private aggregation pass per member
// (AggregateScalar). Member predicate verdicts are pre-applied to the
// bitmaps (the §3.2 preprocessor variant), isolating the aggregation work
// itself — per-tuple predicate evaluation is per-member on either path.
// items/sec is batch tuples per pass for BOTH sides, so the shared side
// should stay roughly flat in N while the scalar side's rate drops
// ~linearly — the ablation-level number behind fig_shared_agg.

class SharedAggFixture {
 public:
  static constexpr size_t kSlots = 64;  // one bitmap word

  explicit SharedAggFixture(size_t members)
      : schema_({storage::Schema::Int32("k1"), storage::Schema::Int32("v1")}),
        agg_(/*num_parts=*/1, bits::WordsFor(kSlots)) {
    Rng rng(21);
    auto page = storage::Page::Make(schema_.tuple_size());
    while (std::byte* t = page->AppendTuple()) {
      schema_.SetInt32(t, 0, static_cast<int32_t>(rng.Uniform(0, 4)));
      schema_.SetInt32(t, 1, static_cast<int32_t>(rng.Uniform(0, 99)));
    }
    batch_.fact_page = page;
    batch_.ResetFor(page->tuple_count(),
                    static_cast<uint32_t>(bits::WordsFor(kSlots)), 1);
    tuples_ = batch_.num_tuples;

    group_ = agg_.CreateGroup("bench_shape");
    group_->join_schema = schema_;
    group_->join_row_size = schema_.tuple_size();
    group_->moves = {{/*from_fact=*/true, 0, /*src_col=*/0, 0, 0, schema_.tuple_size()}};
    group_->group_cols = {0};
    group_->aggs = {{query::AggSpec::Kind::kSum, 1, -1, -1,
                     /*integer_exact=*/true, "s"},
                    {query::AggSpec::Kind::kCount, -1, -1, -1, false, "c"}};
    group_->out_schema = storage::Schema({storage::Schema::Int32("k1"),
                                          storage::Schema::Int64("s"),
                                          storage::Schema::Int64("c")});
    group_->key_width = schema_.column(0).width();
    // Distinct per-member selectivities (the predicates are on v1 only, so
    // the fold's bitmap-key space stays bounded across iterations).
    for (size_t s = 0; s < members; ++s) {
      query::Predicate p;
      p.And(query::AtomicPred::Int("v1", query::CompareOp::kLe,
                                   static_cast<int64_t>(30 + s % 60)));
      members_.push_back({static_cast<uint32_t>(s),
                          static_cast<uint32_t>(s),
                          false,
                          p.Bind(schema_),
                          {}});
      agg_.AddMember(group_, members_.back().slot, members_.back().fact_pred);
    }
    // Pre-apply the member verdicts to the bitmaps (the preprocessor
    // variant): bit s set iff member s's predicate admits the tuple.
    for (uint32_t i = 0; i < batch_.num_tuples; ++i) {
      uint64_t* tb = batch_.tuple_bits(i);
      bits::Zero(tb, bits::WordsFor(kSlots));
      const std::byte* t = page->tuple(i);
      for (const auto& m : members_) {
        if (m.fact_pred.Eval(schema_, t)) bits::Set(tb, m.slot);
      }
      if (!bits::Any(tb, bits::WordsFor(kSlots))) batch_.kill_tuple(i);
    }
  }

  static SharedAggFixture& Get(size_t members) {
    static SharedAggFixture f1(1);
    static SharedAggFixture f16(16);
    static SharedAggFixture f64(64);
    return members == 1 ? f1 : members == 16 ? f16 : f64;
  }

  storage::Schema schema_;
  cjoin::SharedAggregator agg_;
  cjoin::SharedAggregator::Group* group_ = nullptr;
  std::vector<cjoin::SharedAggregator::Member> members_;
  cjoin::TupleBatch batch_;
  uint64_t tuples_ = 0;
};

void BM_SharedAggFoldBatch(benchmark::State& state) {
  SharedAggFixture& f =
      SharedAggFixture::Get(static_cast<size_t>(state.range(0)));
  cjoin::SharedAggregator::FoldScratch scratch;
  for (auto _ : state) {
    f.agg_.FoldBatch(f.group_, f.batch_, f.schema_, nullptr, /*part=*/0,
                     /*preds_pre_applied=*/true, &scratch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.tuples_));
}
BENCHMARK(BM_SharedAggFoldBatch)->Arg(1)->Arg(16)->Arg(64);

void BM_SharedAggScalarRef(benchmark::State& state) {
  SharedAggFixture& f =
      SharedAggFixture::Get(static_cast<size_t>(state.range(0)));
  std::vector<cjoin::SharedAggregator::AccTable> tables(f.members_.size());
  for (auto _ : state) {
    for (size_t m = 0; m < f.members_.size(); ++m) {
      cjoin::AggregateScalar(*f.group_, f.members_[m], f.batch_, f.schema_,
                             nullptr, /*preds_pre_applied=*/true, &tables[m]);
    }
    benchmark::DoNotOptimize(tables.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.tuples_));
}
BENCHMARK(BM_SharedAggScalarRef)->Arg(1)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
// Admission latency: K pending queries admitted serially (one dimension scan
// each, the seed behavior) vs. as one AdmitQueryBatch epoch (ONE scan for
// all K). items/sec is admitted queries; the batched side should scale with
// K while serial stays flat.

class AdmissionFixture {
 public:
  static constexpr int64_t kDimRows = 30000;

  AdmissionFixture() {
    Rng rng(99);
    storage::Schema dim_schema(
        {storage::Schema::Int32("pk"), storage::Schema::Int32("attr")});
    dim_ = std::make_unique<storage::Table>("dim", dim_schema);
    for (int64_t r = 0; r < kDimRows; ++r) {
      std::byte* row = dim_->AppendRow();
      dim_schema.SetInt32(row, 0, static_cast<int32_t>(r));
      dim_schema.SetInt32(row, 1, static_cast<int32_t>(rng.Uniform(0, 99)));
    }
    device_ = std::make_unique<storage::StorageDevice>(storage::DeviceOptions{});
    pool_ = std::make_unique<storage::BufferPool>(device_.get(), 0);
    for (size_t k = 0; k < 64; ++k) {
      query::Predicate p;
      p.And(query::AtomicPred::Int("attr", query::CompareOp::kLe,
                                   static_cast<int64_t>(rng.Uniform(20, 90))));
      preds_.push_back(std::move(p));
    }
  }

  static AdmissionFixture& Get() {
    static AdmissionFixture f;
    return f;
  }

  std::unique_ptr<storage::Table> dim_;
  std::unique_ptr<storage::StorageDevice> device_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::vector<query::Predicate> preds_;
};

void BM_AdmitSerial(benchmark::State& state) {
  AdmissionFixture& f = AdmissionFixture::Get();
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    cjoin::Filter filter(f.dim_.get(), "fk", "pk", 0, 64);
    for (size_t q = 0; q < k; ++q) {
      filter.AdmitQuery(static_cast<uint32_t>(q), f.preds_[q], f.pool_.get());
    }
    benchmark::DoNotOptimize(filter.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(k));
}
BENCHMARK(BM_AdmitSerial)->Arg(1)->Arg(8)->Arg(32);

void BM_AdmitBatched(benchmark::State& state) {
  AdmissionFixture& f = AdmissionFixture::Get();
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<cjoin::Filter::AdmitRequest> reqs;
  for (size_t q = 0; q < k; ++q) {
    reqs.push_back({static_cast<uint32_t>(q), &f.preds_[q]});
  }
  for (auto _ : state) {
    cjoin::Filter filter(f.dim_.get(), "fk", "pk", 0, 64);
    filter.AdmitQueryBatch(reqs.data(), reqs.size(), f.pool_.get());
    benchmark::DoNotOptimize(filter.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(k));
}
BENCHMARK(BM_AdmitBatched)->Arg(1)->Arg(8)->Arg(32);

// Steady-state CJOIN pipeline over a small SSB instance: items/sec is fact
// pages through the GQP; the pool_hit_rate counter is the batch recycling
// rate (1.0 == zero per-batch heap allocation on a warm pipeline).
void BM_CjoinPipelineSteady(benchmark::State& state) {
  static storage::Catalog* catalog = [] {
    auto* c = new storage::Catalog();
    ssb::BuildSsbDatabase(c, {0.02, 42});
    return c;
  }();
  storage::DeviceOptions dev_opts;
  storage::StorageDevice device(dev_opts);
  storage::BufferPool pool(&device, 0);
  core::EngineOptions opts;
  opts.config = core::EngineConfig::kCjoin;
  opts.cjoin.max_queries = 64;
  core::Engine engine(catalog, &pool, opts);
  const auto queries = ssb::RandomQ32Workload(8, 5);
  // Warm-up: fills the batch pool.
  harness::RunBatch(&engine, &pool, queries, true, nullptr);

  uint64_t pages = 0, hits = 0, misses = 0;
  uint64_t scratch_reuses = 0, scratch_grows = 0;
  for (auto _ : state) {
    harness::RunMetrics m =
        harness::RunBatch(&engine, &pool, queries, true, nullptr);
    pages += m.cjoin.fact_pages_scanned;
    hits += m.cjoin.batch_pool_hits;
    misses += m.cjoin.batch_pool_misses;
    scratch_reuses += m.cjoin.distributor_scratch_reuses;
    scratch_grows += m.cjoin.distributor_scratch_grows;
  }
  state.SetItemsProcessed(static_cast<int64_t>(pages));
  state.counters["pool_hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  state.counters["pool_misses"] = static_cast<double>(misses);
  // Distributor analogue of the pool hit rate: 1.0 means the grouping
  // scratch never grew (zero per-batch heap allocation) on the warm runs.
  state.counters["scratch_reuse_rate"] =
      scratch_reuses + scratch_grows == 0
          ? 0.0
          : static_cast<double>(scratch_reuses) /
                static_cast<double>(scratch_reuses + scratch_grows);
}
// Real time: the pipeline's work happens in its own threads, so CPU-time
// budgeting would run this for far more iterations than needed.
BENCHMARK(BM_CjoinPipelineSteady)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace sdw

BENCHMARK_MAIN();
