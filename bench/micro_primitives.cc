// Google-benchmark microbenchmarks for the primitives underlying the paper's
// effects: page transport (FIFO put/get, SPL put/get with N readers, the
// push-model deep copy), query-bitmap operations (the shared-operator
// bookkeeping), hash table build/probe, and predicate evaluation. These are
// the ablation-level numbers behind the figure-level benches.

#include <benchmark/benchmark.h>

#include <cstring>
#include <thread>

#include "common/bitmap.h"
#include "core/shared_pages_list.h"
#include "qpipe/fifo_buffer.h"
#include "qpipe/hash_table.h"
#include "query/predicate.h"
#include "ssb/ssb_schema.h"
#include "storage/page.h"

namespace sdw {
namespace {

storage::PagePtr MakePage() {
  auto page = storage::Page::Make(64);
  while (std::byte* t = page->AppendTuple()) {
    std::memset(t, 7, 64);
  }
  return page;
}

void BM_PageClone(benchmark::State& state) {
  auto page = MakePage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::Page::Clone(*page));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(storage::kPageSize));
}
BENCHMARK(BM_PageClone);

void BM_FifoPutGet(benchmark::State& state) {
  auto page = MakePage();
  for (auto _ : state) {
    qpipe::FifoBuffer fifo(0);
    for (int i = 0; i < 64; ++i) fifo.Put(page);
    fifo.Close();
    while (fifo.Next() != nullptr) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FifoPutGet);

// SPL with N concurrent readers: producer-side cost must stay flat in N
// (the whole point of pull-based SP).
void BM_SplProducerWithReaders(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  auto page = MakePage();
  for (auto _ : state) {
    state.PauseTiming();
    core::SharedPagesList spl(0);  // unbounded: producer never blocks
    std::vector<std::unique_ptr<core::SharedPagesList::Reader>> rs;
    for (int r = 0; r < readers; ++r) rs.push_back(spl.TryAttachFromStart());
    std::vector<std::thread> consumers;
    for (auto& r : rs) {
      consumers.emplace_back([&r] {
        while (r->Next() != nullptr) {
        }
      });
    }
    state.ResumeTiming();
    for (int i = 0; i < 256; ++i) spl.Put(page);
    state.PauseTiming();
    spl.Close();
    for (auto& c : consumers) c.join();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SplProducerWithReaders)->Arg(1)->Arg(4)->Arg(16);

// Push-model producer: deep-copies into per-satellite FIFOs — cost grows
// linearly with the satellite count (the serialization point).
void BM_PushProducerWithSatellites(benchmark::State& state) {
  const int satellites = static_cast<int>(state.range(0));
  auto page = MakePage();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::shared_ptr<qpipe::FifoBuffer>> fifos;
    std::vector<std::thread> consumers;
    for (int s = 0; s < satellites; ++s) {
      fifos.push_back(std::make_shared<qpipe::FifoBuffer>(size_t{0}));
      consumers.emplace_back([f = fifos.back()] {
        while (f->Next() != nullptr) {
        }
      });
    }
    state.ResumeTiming();
    for (int i = 0; i < 256; ++i) {
      for (auto& f : fifos) f->Put(storage::Page::Clone(*page));
    }
    state.PauseTiming();
    for (auto& f : fifos) f->Close();
    for (auto& c : consumers) c.join();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PushProducerWithSatellites)->Arg(1)->Arg(4)->Arg(16);

void BM_BitmapAndWithOr(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> dst(words, ~0ull), a(words, 0x5555555555555555ull),
      b(words, 0x0F0F0F0F0F0F0F0Full);
  for (auto _ : state) {
    bits::AndWithOr(dst.data(), a.data(), b.data(), words);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapAndWithOr)->Arg(1)->Arg(4)->Arg(16);  // 64..1024 queries

void BM_HashTableBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    qpipe::Int64HashTable ht;
    for (int64_t k = 0; k < n; ++k) {
      ht.Insert(qpipe::HashKey(k), k, static_cast<uint64_t>(k));
    }
    ht.Build();
    benchmark::DoNotOptimize(ht.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashTableBuild)->Arg(1000)->Arg(100000);

void BM_HashTableProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  qpipe::Int64HashTable ht;
  for (int64_t k = 0; k < n; ++k) {
    ht.Insert(qpipe::HashKey(k), k, static_cast<uint64_t>(k));
  }
  ht.Build();
  int64_t probe = 0;
  for (auto _ : state) {
    uint64_t sum = 0;
    ht.ForEachMatch(qpipe::HashKey(probe % (2 * n)), probe % (2 * n),
                    [&](uint64_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
    ++probe;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableProbe)->Arg(1000)->Arg(100000);

void BM_PredicateEval(benchmark::State& state) {
  const storage::Schema schema = ssb::CustomerSchema();
  std::vector<std::byte> tuple(schema.tuple_size());
  schema.SetChar(tuple.data(), schema.MustColumnIndex("c_nation"),
                 "UNITED STATES");
  query::Predicate pred;
  pred.AndAnyOf({query::AtomicPred::Str("c_nation", query::CompareOp::kEq,
                                        "UNITED KINGDOM"),
                 query::AtomicPred::Str("c_nation", query::CompareOp::kEq,
                                        "UNITED STATES")});
  const auto bound = pred.Bind(schema);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bound.Eval(schema, tuple.data()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredicateEval);

}  // namespace
}  // namespace sdw

BENCHMARK_MAIN();
