// Figure 11 (paper §5.2.2): impact of selectivity at low concurrency.
//
// A few concurrent modified-Q3.2 instances (nation disjunctions widen the
// fact selectivity from ~0.1% to 30%), memory-resident, minimal similarity.
// QPipe-SP vs CJOIN with CJOIN's admission time broken out, plus the
// paper's CPU-time breakdown stacks (Hashing / Joins / Aggregation / Scans /
// Locks / Misc). At low concurrency the shared operators' bookkeeping makes
// CJOIN lose to query-centric operators, and its admission cost grows with
// selectivity.

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

struct PointResult {
  double response = 0;
  double admission = 0;
  std::array<double, kNumComponents> breakdown{};
};

PointResult RunPoint(BenchDb* db, core::EngineConfig config, size_t queries,
                     double selectivity, uint64_t seed, int iterations) {
  Stats means;
  PointResult r;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = config;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto m = harness::RunBatch(
        &engine, db->pool.get(),
        ssb::SelectivityQ32Workload(queries, selectivity,
                                    seed + static_cast<uint64_t>(it)));
    if (it > 0) {
      means.Add(m.response_seconds.Mean());
      r.admission = m.cjoin.admission_seconds;
      r.breakdown = m.breakdown_seconds;
    }
  }
  r.response = means.Min();
  return r;
}

std::string BreakdownRow(const std::array<double, kNumComponents>& b) {
  std::vector<std::string> parts;
  for (int i = 0; i < kNumComponents; ++i) {
    parts.push_back(StrPrintf("%s=%.2fs",
                              ComponentName(static_cast<Component>(i)),
                              b[static_cast<size_t>(i)]));
  }
  return StrJoin(parts, " ");
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.05);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 2));
  // Paper: 8 queries on 24 cores = no CPU contention. Scale to the host.
  const size_t queries =
      static_cast<size_t>(flags.GetInt("queries", static_cast<int64_t>(
                                                      std::max<size_t>(2, Cores() / 3))));

  PrintHeader(
      "Figure 11: impact of selectivity (modified SSB Q3.2, low concurrency)",
      "SSB SF=10 memory-resident, 8 concurrent queries, selectivity 0.1-30%, "
      "24 cores (no contention)",
      StrPrintf("SSB SF=%.3g in memory, %zu concurrent queries", sf, queries)
          .c_str(),
      "CJOIN is always worse than QPipe-SP at low concurrency: admission "
      "cost grows with selectivity, shared operators carry bookkeeping "
      "(bitmap ANDs, union hash tables), and its 'Joins' CPU exceeds "
      "QPipe-SP's while QPipe-SP's 'Hashing' grows faster with selectivity");

  auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/true);

  const std::vector<double> selectivities = {0.001, 0.01, 0.10, 0.20, 0.30};

  harness::ReportTable table({"selectivity", "QPipe-SP", "CJOIN",
                              "CJOIN admission"});
  std::vector<PointResult> sp_points;
  std::vector<PointResult> cj_points;
  for (double sel : selectivities) {
    const auto sp = RunPoint(db.get(), core::EngineConfig::kQpipeSp, queries,
                             sel, 77, iterations);
    const auto cj = RunPoint(db.get(), core::EngineConfig::kCjoin, queries,
                             sel, 77, iterations);
    sp_points.push_back(sp);
    cj_points.push_back(cj);
    table.AddRow({StrPrintf("%.1f%%", sel * 100),
                  StrPrintf("%.3fs", sp.response),
                  StrPrintf("%.3fs", cj.response),
                  StrPrintf("%.3fs", cj.admission)});
  }
  std::printf("Figure 11 (response time vs selectivity):\n");
  table.Print();

  std::printf("\nCPU-time breakdowns at 30%% selectivity:\n");
  std::printf("  QPipe-SP: %s\n", BreakdownRow(sp_points.back().breakdown).c_str());
  std::printf("  CJOIN   : %s\n\n", BreakdownRow(cj_points.back().breakdown).c_str());

  harness::ShapeChecker checker;
  checker.Leq("QPipe-SP <= CJOIN at every selectivity (low concurrency: "
              "query-centric wins)",
              [&] {
                double worst = 0;
                for (size_t i = 0; i < sp_points.size(); ++i) {
                  worst = std::max(worst,
                                   sp_points[i].response / cj_points[i].response);
                }
                return worst;
              }(),
              1.0, 0.10);
  checker.Check("both configurations degrade as selectivity grows",
                sp_points.back().response > sp_points.front().response &&
                    cj_points.back().response > cj_points.front().response,
                StrPrintf("QPipe-SP %.3f->%.3f, CJOIN %.3f->%.3f",
                          sp_points.front().response, sp_points.back().response,
                          cj_points.front().response, cj_points.back().response));
  checker.Check(
      "CJOIN admission cost grows with selectivity",
      cj_points.back().admission >= cj_points.front().admission * 0.8,
      StrPrintf("%.4fs -> %.4fs", cj_points.front().admission,
                cj_points.back().admission));
  // The paper compares the effect of sharing on hash/equal CPU "without
  // strong side-effects from implementation details": the shared operators
  // carry non-zero bitmap/bookkeeping work even while losing on response
  // time at low concurrency.
  checker.Check(
      "CJOIN carries shared-operator bookkeeping ('Joins' bitmap work) at "
      "30% selectivity while losing on response time",
      cj_points.back().breakdown[static_cast<size_t>(Component::kJoins)] >
              0.0 &&
          cj_points.back().response > sp_points.back().response,
      StrPrintf(
          "CJOIN joins CPU %.3fs; responses %.3fs vs %.3fs",
          cj_points.back().breakdown[static_cast<size_t>(Component::kJoins)],
          cj_points.back().response, sp_points.back().response));
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
