// Figure 14 (paper §5.2.3): impact of similarity — 16 possible query plans.
//
// Disk-resident database; concurrent Q3.2 instances drawn from 16 distinct
// parameterizations. QPipe-SP re-uses results across identical plans and
// overtakes CJOIN (which evaluates identical queries redundantly); CJOIN-SP
// shares CJOIN packets and wins overall. The table prints the SP sharing
// opportunities the paper reports.

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

struct PointResult {
  double response = 0;
  qpipe::SpCounters sp;
  uint64_t cjoin_shares = 0;
};

PointResult RunPoint(BenchDb* db, core::EngineConfig config, size_t queries,
                     size_t plans, uint64_t seed, int iterations) {
  Stats means;
  PointResult r;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = config;
    opts.cjoin.max_queries = std::max<size_t>(128, queries * 2);
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto m = harness::RunBatch(
        &engine, db->pool.get(),
        ssb::SimilarQ32Workload(queries, plans,
                                seed + static_cast<uint64_t>(it)));
    if (it > 0) {
      means.Add(m.response_seconds.Mean());
      r.sp = m.sp;
      r.cjoin_shares = m.cjoin_shares;
    }
  }
  r.response = means.Min();
  return r;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.02);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 2));
  const size_t max_queries = static_cast<size_t>(
      flags.GetInt("max-queries", static_cast<int64_t>(16 * Cores())));
  const size_t plans = static_cast<size_t>(flags.GetInt("plans", 16));

  PrintHeader(
      "Figure 14: impact of similarity (16 possible query plans)",
      "SSB SF=1 disk-resident, 1..256 queries from 16 plans, 24 cores",
      StrPrintf("SSB SF=%.3g on simulated disk, up to %zu queries from %zu "
                "plans",
                sf, max_queries, plans)
          .c_str(),
      "QPipe-SP evaluates at most 16 distinct plans and re-uses results, "
      "outperforming CJOIN which evaluates identical queries redundantly; "
      "CJOIN-SP shares CJOIN packets and outperforms all configurations");

  DiskProfile disk;
  disk.seek_latency_us = 1500;
  auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/false, disk);
  db->pool = std::make_unique<storage::BufferPool>(
      db->device.get(), db->catalog.total_bytes() / 2);

  std::vector<size_t> grid;
  for (size_t q = 4; q <= max_queries; q *= 2) grid.push_back(q);

  constexpr core::EngineConfig kConfigs[] = {
      core::EngineConfig::kQpipeCs, core::EngineConfig::kQpipeSp,
      core::EngineConfig::kCjoin, core::EngineConfig::kCjoinSp};

  harness::ReportTable table(
      {"queries", "QPipe-CS", "QPipe-SP", "CJOIN", "CJOIN-SP"});
  std::vector<std::array<PointResult, 4>> points;
  for (size_t q : grid) {
    std::array<PointResult, 4> row{};
    std::vector<std::string> cells{std::to_string(q)};
    for (int c = 0; c < 4; ++c) {
      row[static_cast<size_t>(c)] =
          RunPoint(db.get(), kConfigs[c], q, plans, 900 + q, iterations);
      cells.push_back(StrPrintf("%.3fs", row[static_cast<size_t>(c)].response));
    }
    points.push_back(row);
    table.AddRow(std::move(cells));
  }
  std::printf("Figure 14 (response time vs concurrency, %zu plans):\n", plans);
  table.Print();

  const auto& top = points.back();
  std::printf(
      "\nSharing opportunities at %zu queries: QPipe-SP hash-join shares "
      "1st/2nd/3rd = %llu/%llu/%llu, CJOIN-SP packet shares = %llu\n\n",
      grid.back(),
      static_cast<unsigned long long>(top[1].sp.join_shares_by_depth[0]),
      static_cast<unsigned long long>(top[1].sp.join_shares_by_depth[1]),
      static_cast<unsigned long long>(top[1].sp.join_shares_by_depth[2]),
      static_cast<unsigned long long>(top[3].cjoin_shares));

  harness::ShapeChecker checker;
  checker.Leq("QPipe-SP <= QPipe-CS at max concurrency (SP exploits the 16 "
              "common plans)",
              top[1].response, top[0].response, 0.10);
  checker.Leq("QPipe-SP <= CJOIN at max concurrency (CJOIN evaluates "
              "identical queries redundantly)",
              top[1].response, top[2].response, 0.10);
  checker.Leq("CJOIN-SP <= CJOIN at max concurrency (SP de-duplicates CJOIN "
              "packets)",
              top[3].response, top[2].response, 0.10);
  checker.Check(
      "CJOIN-SP shares most packets (queries - distinct plans)",
      top[3].cjoin_shares >= grid.back() - plans - 2,
      StrPrintf("%llu shares of %zu queries",
                static_cast<unsigned long long>(top[3].cjoin_shares),
                grid.back()));
  checker.Check(
      "QPipe-SP shares deep join sub-plans",
      top[1].sp.join_shares_by_depth[2] > 0,
      StrPrintf("%llu third-join shares", static_cast<unsigned long long>(
                                              top[1].sp.join_shares_by_depth[2])));
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
