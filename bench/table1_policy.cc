// Table 1 (paper §1.4/§7): the rules of thumb for when and how to share,
// validated empirically: at low concurrency the policy recommends
// query-centric operators + SP and that configuration must win; at high
// concurrency it recommends GQP + SP and that must win.

#include "bench_common.h"
#include "core/engine.h"
#include "core/sharing_policy.h"

namespace sdw::bench {
namespace {

double RunConfig(BenchDb* db, core::EngineConfig config, size_t queries,
                 uint64_t seed, int iterations) {
  Stats means;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = config;
    opts.cjoin.max_queries = std::max<size_t>(128, queries * 2);
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    // Table 1 targets typical ad-hoc mixes: random predicates (extreme
    // similarity is Figure 14/15's territory, where SP alone can prevail).
    const auto m = harness::RunBatch(
        &engine, db->pool.get(),
        ssb::RandomQ32Workload(queries, seed + static_cast<uint64_t>(it)));
    if (it > 0) means.Add(m.response_seconds.Mean());
  }
  return means.Min();
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double sf = flags.GetDouble("sf", 0.05);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 2));
  const size_t low = static_cast<size_t>(
      flags.GetInt("low-queries", static_cast<int64_t>(std::max<size_t>(1, Cores() / 2))));
  const size_t high = static_cast<size_t>(
      flags.GetInt("high-queries", static_cast<int64_t>(24 * Cores())));

  PrintHeader(
      "Table 1: rules of thumb for when and how to share",
      "low concurrency -> query-centric operators + SP; high concurrency -> "
      "GQP (shared operators) + SP; shared scans in the I/O layer always",
      StrPrintf("SSB SF=%.3g in memory; low=%zu, high=%zu queries", sf, low,
                high)
          .c_str(),
      "the recommended configuration must be the faster one on each side of "
      "the saturation point");

  std::printf("Table 1 (the policy itself):\n");
  harness::ReportTable t1({"When", "Execution engine", "I/O layer"});
  t1.AddRow({"Low concurrency", "Query-centric operators + SP",
             "Shared scans"});
  t1.AddRow({"High concurrency", "GQP (shared operators) + SP",
             "Shared scans"});
  t1.Print();

  auto db = MakeSsbBenchDb(sf, 42, /*memory_resident=*/true);

  harness::ShapeChecker checker;
  harness::ReportTable results(
      {"workload", "policy recommends", "QPipe-SP", "CJOIN-SP"});
  for (const auto& [label, queries] :
       {std::pair<const char*, size_t>{"low concurrency", low},
        std::pair<const char*, size_t>{"high concurrency", high}}) {
    core::WorkloadProfile profile;
    profile.concurrent_queries = queries;
    const auto decision = core::RecommendSharing(profile);
    const double sp = RunConfig(db.get(), core::EngineConfig::kQpipeSp,
                                queries, 5000 + queries, iterations);
    const double cjsp = RunConfig(db.get(), core::EngineConfig::kCjoinSp,
                                  queries, 5000 + queries, iterations);
    results.AddRow({label, core::EngineConfigName(decision.config),
                    StrPrintf("%.3fs", sp), StrPrintf("%.3fs", cjsp)});
    const double recommended =
        decision.config == core::EngineConfig::kCjoinSp ? cjsp : sp;
    const double other =
        decision.config == core::EngineConfig::kCjoinSp ? sp : cjsp;
    checker.Leq(StrPrintf("policy pick (%s) wins at %s",
                          core::EngineConfigName(decision.config), label),
                recommended, other, 0.10);
    std::printf("\n%s rationale: %s\n", label, decision.rationale.c_str());
  }
  std::printf("\nMeasured validation:\n");
  results.Print();
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
