// Figure 13 (paper §5.2.2): impact of scale factor, disk-resident, with and
// without direct I/O.
//
// A few concurrent Q3.2 instances with random predicates over growing
// databases. Response times grow linearly with the scale factor for both
// QPipe-SP and CJOIN with different slopes; bypassing the OS file cache
// (direct I/O) exposes the overhead of CJOIN's preprocessor, which the cache
// otherwise masks by absorbing the circular fact scan's re-reads.

#include "bench_common.h"
#include "core/engine.h"

namespace sdw::bench {
namespace {

struct PointResult {
  double response = 0;
  double read_mbps = 0;
};

PointResult RunPoint(BenchDb* db, core::EngineConfig config, size_t queries,
                     uint64_t seed, int iterations) {
  Stats means;
  PointResult r;
  for (int it = 0; it < iterations + 1; ++it) {
    core::EngineOptions opts;
    opts.config = config;
    core::Engine engine(&db->catalog, db->pool.get(), opts);
    const auto m = harness::RunBatch(
        &engine, db->pool.get(),
        ssb::RandomQ32Workload(queries, seed + static_cast<uint64_t>(it)));
    if (it > 0) {
      means.Add(m.response_seconds.Mean());
      r.read_mbps = m.read_mbps;
    }
  }
  r.response = means.Min();
  return r;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 2));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 4));
  const double max_sf = flags.GetDouble("max-sf", 0.08);

  PrintHeader(
      "Figure 13: impact of scale factor (disk-resident, ±direct I/O)",
      "SSB SF=1..100 on a SAS RAID-0, 8 concurrent queries, file-system "
      "caches vs direct I/O",
      StrPrintf("simulated disk, SF up to %.3g, %zu concurrent queries",
                max_sf, queries)
          .c_str(),
      "response times grow linearly with the scale factor with different "
      "slopes; without direct I/O the file-system cache masks the "
      "preprocessor's overhead, with direct I/O CJOIN's circular fact scan "
      "pays full device cost and degrades more than QPipe-SP");

  std::vector<double> sfs = {max_sf / 4, max_sf / 2, max_sf};

  harness::ReportTable table({"SF", "data(MB)", "QPipe-SP", "CJOIN",
                              "QPipe-SP(direct)", "CJOIN(direct)"});
  struct Row {
    double sp, cj, sp_direct, cj_direct;
  };
  std::vector<Row> rows;
  PointResult last_direct_cj{}, last_direct_sp{};
  for (double sf : sfs) {
    Row row{};
    double data_mb = 0;
    {
      // Cached: OS file cache large enough to absorb re-reads; buffer pool
      // holds only a quarter of the data so the device is exercised.
      DiskProfile disk;
      disk.seek_latency_us = 1200;
      disk.os_cache_bytes = 1ull << 32;
      auto db = MakeSsbBenchDb(sf, 42, false, disk);
      data_mb = static_cast<double>(db->catalog.total_bytes()) / 1e6;
      db->pool = std::make_unique<storage::BufferPool>(
          db->device.get(), db->catalog.total_bytes() / 4);
      row.sp = RunPoint(db.get(), core::EngineConfig::kQpipeSp, queries, 21,
                        iterations)
                   .response;
      row.cj = RunPoint(db.get(), core::EngineConfig::kCjoin, queries, 21,
                        iterations)
                   .response;
    }
    {
      // Direct I/O: bypass the OS cache; every buffer-pool miss pays.
      DiskProfile disk;
      disk.seek_latency_us = 1200;
      disk.direct_io = true;
      auto db = MakeSsbBenchDb(sf, 42, false, disk);
      db->pool = std::make_unique<storage::BufferPool>(
          db->device.get(), db->catalog.total_bytes() / 4);
      last_direct_sp = RunPoint(db.get(), core::EngineConfig::kQpipeSp,
                                queries, 21, iterations);
      last_direct_cj = RunPoint(db.get(), core::EngineConfig::kCjoin, queries,
                                21, iterations);
      row.sp_direct = last_direct_sp.response;
      row.cj_direct = last_direct_cj.response;
    }
    rows.push_back(row);
    table.AddRow({StrPrintf("%.3g", sf), StrPrintf("%.1f", data_mb),
                  StrPrintf("%.3fs", row.sp), StrPrintf("%.3fs", row.cj),
                  StrPrintf("%.3fs", row.sp_direct),
                  StrPrintf("%.3fs", row.cj_direct)});
  }
  std::printf("Figure 13 (response time vs scale factor):\n");
  table.Print();
  std::printf("\nMeasurements at the largest SF (direct I/O): "
              "QPipe-SP read rate %.1f MB/s, CJOIN read rate %.1f MB/s\n\n",
              last_direct_sp.read_mbps, last_direct_cj.read_mbps);

  harness::ShapeChecker checker;
  checker.Check("QPipe-SP grows with the scale factor",
                rows.back().sp > rows.front().sp * 1.5,
                StrPrintf("%.3fs -> %.3fs", rows.front().sp, rows.back().sp));
  checker.Check("CJOIN grows with the scale factor",
                rows.back().cj > rows.front().cj * 1.5,
                StrPrintf("%.3fs -> %.3fs", rows.front().cj, rows.back().cj));
  // At laptop scale the cache/pool interplay leaves both configurations
  // near parity; the claim that survives scaling down is that direct I/O
  // never *relieves* CJOIN's preprocessor relative to QPipe-SP.
  checker.Check(
      "direct I/O does not favor CJOIN over QPipe-SP at the largest SF "
      "(preprocessor overhead no longer masked)",
      rows.back().cj_direct / rows.back().cj >=
          rows.back().sp_direct / rows.back().sp * 0.75,
      StrPrintf("CJOIN slowdown %.2fx vs QPipe-SP slowdown %.2fx",
                rows.back().cj_direct / rows.back().cj,
                rows.back().sp_direct / rows.back().sp));
  return checker.Summarize() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdw::bench

int main(int argc, char** argv) { return sdw::bench::Main(argc, argv); }
