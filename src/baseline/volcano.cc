#include "baseline/volcano.h"

#include "qpipe/operators.h"

namespace sdw::baseline {

query::ResultSet VolcanoEngine::Execute(const query::StarQuery& q) const {
  const query::Planner planner(catalog_);
  const std::unique_ptr<query::PlanNode> plan = planner.BuildPlan(q);
  return ExecutePlan(*plan);
}

query::ResultSet VolcanoEngine::ExecutePlan(
    const query::PlanNode& plan) const {
  VectorChannel out;
  Evaluate(plan, &out);
  query::ResultSet result(plan.out_schema);
  while (storage::PagePtr page = out.Next()) {
    const uint32_t n = page->tuple_count();
    for (uint32_t i = 0; i < n; ++i) result.AddRow(page->tuple(i));
  }
  return result;
}

void VolcanoEngine::Evaluate(const query::PlanNode& node,
                             VectorChannel* out) const {
  using Kind = query::PlanNode::Kind;
  switch (node.kind) {
    case Kind::kScan:
      qpipe::RunScan(node, /*raw_pages=*/nullptr, pool_, out);
      break;
    case Kind::kHashJoin: {
      VectorChannel probe;
      VectorChannel build;
      Evaluate(*node.child(0), &probe);
      Evaluate(*node.child(1), &build);
      qpipe::RunHashJoin(node, &probe, &build, out);
      break;
    }
    case Kind::kAggregate: {
      VectorChannel in;
      Evaluate(*node.child(0), &in);
      qpipe::RunAggregate(node, &in, out);
      break;
    }
    case Kind::kSort: {
      VectorChannel in;
      Evaluate(*node.child(0), &in);
      qpipe::RunSort(node, &in, out);
      break;
    }
  }
}

}  // namespace sdw::baseline
