#include "baseline/volcano.h"

#include "common/timing.h"
#include "qpipe/operators.h"

namespace sdw::baseline {

VolcanoEngine::~VolcanoEngine() { WaitAll(); }

query::ResultSet VolcanoEngine::Execute(const query::StarQuery& q) const {
  query::ResultSet result;
  const Status s = ExecuteChecked(q, &result);
  // An oracle that silently returned a truncated result would corrupt every
  // differential check built on it — fail loudly instead.
  SDW_CHECK_MSG(s.ok(), "VolcanoEngine::Execute hit a storage fault: %s",
                s.ToString().c_str());
  return result;
}

Status VolcanoEngine::ExecuteChecked(const query::StarQuery& q,
                                     query::ResultSet* out) const {
  const query::Planner planner(catalog_);
  const std::unique_ptr<query::PlanNode> plan = planner.BuildPlan(q);
  VectorChannel channel;
  Status s = Evaluate(*plan, &channel);
  if (!s.ok()) return s;
  // Exact reservation: the materialized channel knows the result size, so
  // the aggregation/sort output lands in one allocation.
  uint64_t total_rows = 0;
  while (storage::PagePtr page = channel.Next()) {
    total_rows += page->tuple_count();
  }
  channel.Rewind();
  query::ResultSet result(plan->out_schema);
  result.Reserve(total_rows);
  while (storage::PagePtr page = channel.Next()) {
    const uint32_t n = page->tuple_count();
    for (uint32_t i = 0; i < n; ++i) result.AddRow(page->tuple(i));
  }
  *out = std::move(result);
  return Status::Ok();
}

query::ResultSet VolcanoEngine::ExecutePlan(
    const query::PlanNode& plan) const {
  VectorChannel out;
  const Status s = Evaluate(plan, &out);
  SDW_CHECK_MSG(s.ok(), "VolcanoEngine::ExecutePlan hit a storage fault: %s",
                s.ToString().c_str());
  uint64_t total_rows = 0;
  while (storage::PagePtr page = out.Next()) total_rows += page->tuple_count();
  out.Rewind();
  query::ResultSet result(plan.out_schema);
  result.Reserve(total_rows);
  while (storage::PagePtr page = out.Next()) {
    const uint32_t n = page->tuple_count();
    for (uint32_t i = 0; i < n; ++i) result.AddRow(page->tuple(i));
  }
  return result;
}

void VolcanoEngine::ExecuteInto(const query::StarQuery& q,
                                core::QueryLifecycle* life) const {
  Status why;
  if (life->ShouldStop(&why)) {  // cancelled or expired before admission
    life->Finish(std::move(why));
    return;
  }
  life->MarkRunStart();  // runs immediately: the comparator never queues
  try {
    Status s = ExecuteChecked(q, life->mutable_result());
    if (!s.ok()) {
      life->Finish(std::move(s));
      return;
    }
    life->AddRowsStreamed(life->result().num_rows());
    life->Finish(Status::Ok());
  } catch (const std::exception& e) {
    life->Finish(
        Status::Internal(std::string("volcano execution exception: ") +
                         e.what()));
  }
}

core::QueryTicket VolcanoEngine::Submit(const query::StarQuery& q,
                                        const core::SubmitOptions& opts) {
  auto life = std::make_shared<core::QueryLifecycle>(
      next_qid_.fetch_add(1, std::memory_order_relaxed), opts);
  life->set_submit_nanos(NowNanos());
  ExecuteInto(q, life.get());
  return core::QueryTicket(std::move(life));
}

std::vector<core::QueryTicket> VolcanoEngine::SubmitBatch(
    const std::vector<query::StarQuery>& queries,
    const core::SubmitOptions& opts) {
  std::vector<core::SubmitRequest> requests;
  requests.reserve(queries.size());
  for (const auto& q : queries) requests.push_back({q, opts});
  return SubmitRequests(requests);
}

std::vector<core::QueryTicket> VolcanoEngine::SubmitRequests(
    const std::vector<core::SubmitRequest>& requests) {
  std::vector<core::QueryTicket> tickets;
  tickets.reserve(requests.size());
  for (const auto& req : requests) {
    auto life = std::make_shared<core::QueryLifecycle>(
        next_qid_.fetch_add(1, std::memory_order_relaxed), req.opts);
    life->set_submit_nanos(NowNanos());
    tickets.emplace_back(life);
    MutexLock lock(threads_mu_);
    threads_.emplace_back([this, q = req.q, life = std::move(life)] {
      ExecuteInto(q, life.get());
    });
  }
  return tickets;
}

void VolcanoEngine::WaitAll() {
  std::vector<std::thread> threads;
  {
    MutexLock lock(threads_mu_);
    threads.swap(threads_);
  }
  for (auto& t : threads) t.join();
}

Status VolcanoEngine::Evaluate(const query::PlanNode& node,
                               VectorChannel* out) const {
  using Kind = query::PlanNode::Kind;
  switch (node.kind) {
    case Kind::kScan:
      return qpipe::RunScan(node, /*raw_pages=*/nullptr, pool_, out);
    case Kind::kHashJoin: {
      VectorChannel probe;
      VectorChannel build;
      if (Status s = Evaluate(*node.child(0), &probe); !s.ok()) return s;
      if (Status s = Evaluate(*node.child(1), &build); !s.ok()) return s;
      return qpipe::RunHashJoin(node, &probe, &build, out);
    }
    case Kind::kAggregate: {
      VectorChannel in;
      if (Status s = Evaluate(*node.child(0), &in); !s.ok()) return s;
      return qpipe::RunAggregate(node, &in, out);
    }
    case Kind::kSort: {
      VectorChannel in;
      if (Status s = Evaluate(*node.child(0), &in); !s.ok()) return s;
      return qpipe::RunSort(node, &in, out);
    }
  }
  return Status::Ok();
}

}  // namespace sdw::baseline
