// Query-centric comparator engine (the paper's PostgreSQL stand-in, §5.3).
//
// Substitution (DESIGN.md §3): the paper uses PostgreSQL solely as "another
// example of a query-centric execution engine that does not share among
// concurrent queries" — caching disabled, same plans, memory-resident
// buffers. VolcanoEngine is exactly that: each query runs the identical
// physical plan synchronously in its caller's thread, with its own table
// scans through the shared buffer pool and zero cross-query sharing.

#ifndef SDW_BASELINE_VOLCANO_H_
#define SDW_BASELINE_VOLCANO_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "core/page_channel.h"
#include "core/query_ticket.h"
#include "query/plan.h"
#include "query/result.h"
#include "query/star_query.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"

namespace sdw::baseline {

/// Collects produced pages in memory and replays them — the materialized
/// exchange between the synchronous operators of the Volcano engine.
class VectorChannel : public core::PageSink, public core::PageSource {
 public:
  // PageSink:
  bool Put(storage::PagePtr page) override {
    pages_.push_back(std::move(page));
    return true;
  }
  void Close() override {}

  // PageSource:
  storage::PagePtr Next() override {
    if (pos_ >= pages_.size()) return nullptr;
    return pages_[pos_++];
  }
  void CancelReader() override { pos_ = pages_.size(); }

  size_t num_pages() const { return pages_.size(); }
  void Rewind() { pos_ = 0; }

 private:
  std::vector<storage::PagePtr> pages_;
  size_t pos_ = 0;
};

/// The query-centric engine: one thread, one query, no sharing.
///
/// Also an ExecutorClient backend, so the harness drivers run it through the
/// same ticket API as the integrated engine: Submit executes synchronously
/// in the caller's thread (the closed-loop client blocks in Wait anyway),
/// SubmitBatch spawns one thread per query — the paper's "concurrent
/// query-centric engines" comparator shape.
class VolcanoEngine : public core::ExecutorClient {
 public:
  VolcanoEngine(const storage::Catalog* catalog, storage::BufferPool* pool)
      : catalog_(catalog), pool_(pool) {}
  ~VolcanoEngine() override;

  SDW_DISALLOW_COPY(VolcanoEngine);

  /// Plans and executes `q` synchronously in the calling thread. Aborts on a
  /// storage fault: callers using Execute as a correctness oracle must run
  /// with fault injection disabled (use ExecuteChecked to handle errors).
  query::ResultSet Execute(const query::StarQuery& q) const;

  /// Fallible variant: fills `*out` and returns OK, or propagates the first
  /// storage fault the plan hit (leaving `*out` unspecified).
  Status ExecuteChecked(const query::StarQuery& q, query::ResultSet* out) const;

  /// Executes a pre-built plan (used by tests to cross-check the planner).
  query::ResultSet ExecutePlan(const query::PlanNode& plan) const;

  // ExecutorClient:
  core::QueryTicket Submit(
      const query::StarQuery& q,
      const core::SubmitOptions& opts = core::SubmitOptions()) override;
  std::vector<core::QueryTicket> SubmitBatch(
      const std::vector<query::StarQuery>& queries,
      const core::SubmitOptions& opts = core::SubmitOptions()) override;
  /// Mixed batch: still one thread per query — the query-centric engine has
  /// no shared queue to schedule, so priority only rides along in metrics.
  std::vector<core::QueryTicket> SubmitRequests(
      const std::vector<core::SubmitRequest>& requests) override;
  void WaitAll() override;

 private:
  /// Evaluates `node`, leaving its output in `out`; non-OK when a storage
  /// fault truncated the evaluation.
  Status Evaluate(const query::PlanNode& node, VectorChannel* out) const;

  /// Runs one submission to a terminal state (deadline/cancel checked at
  /// admission; execution itself is synchronous and uninterruptible).
  void ExecuteInto(const query::StarQuery& q, core::QueryLifecycle* life) const;

  const storage::Catalog* catalog_;
  storage::BufferPool* pool_;

  std::atomic<uint64_t> next_qid_{1};
  // Only wraps the thread-vector mutation; never another acquisition.
  Mutex threads_mu_{lock_rank::Rank::kVolcano};
  // Batch workers; reaped in WaitAll.
  std::vector<std::thread> threads_ GUARDED_BY(threads_mu_);
};

}  // namespace sdw::baseline

#endif  // SDW_BASELINE_VOLCANO_H_
