// Query-centric comparator engine (the paper's PostgreSQL stand-in, §5.3).
//
// Substitution (DESIGN.md §3): the paper uses PostgreSQL solely as "another
// example of a query-centric execution engine that does not share among
// concurrent queries" — caching disabled, same plans, memory-resident
// buffers. VolcanoEngine is exactly that: each query runs the identical
// physical plan synchronously in its caller's thread, with its own table
// scans through the shared buffer pool and zero cross-query sharing.

#ifndef SDW_BASELINE_VOLCANO_H_
#define SDW_BASELINE_VOLCANO_H_

#include <memory>
#include <vector>

#include "core/page_channel.h"
#include "query/plan.h"
#include "query/result.h"
#include "query/star_query.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"

namespace sdw::baseline {

/// Collects produced pages in memory and replays them — the materialized
/// exchange between the synchronous operators of the Volcano engine.
class VectorChannel : public core::PageSink, public core::PageSource {
 public:
  // PageSink:
  bool Put(storage::PagePtr page) override {
    pages_.push_back(std::move(page));
    return true;
  }
  void Close() override {}

  // PageSource:
  storage::PagePtr Next() override {
    if (pos_ >= pages_.size()) return nullptr;
    return pages_[pos_++];
  }
  void CancelReader() override { pos_ = pages_.size(); }

  size_t num_pages() const { return pages_.size(); }
  void Rewind() { pos_ = 0; }

 private:
  std::vector<storage::PagePtr> pages_;
  size_t pos_ = 0;
};

/// The query-centric engine: one thread, one query, no sharing.
class VolcanoEngine {
 public:
  VolcanoEngine(const storage::Catalog* catalog, storage::BufferPool* pool)
      : catalog_(catalog), pool_(pool) {}

  SDW_DISALLOW_COPY(VolcanoEngine);

  /// Plans and executes `q` synchronously in the calling thread.
  query::ResultSet Execute(const query::StarQuery& q) const;

  /// Executes a pre-built plan (used by tests to cross-check the planner).
  query::ResultSet ExecutePlan(const query::PlanNode& plan) const;

 private:
  /// Evaluates `node`, leaving its output in `out`.
  void Evaluate(const query::PlanNode& node, VectorChannel* out) const;

  const storage::Catalog* catalog_;
  storage::BufferPool* pool_;
};

}  // namespace sdw::baseline

#endif  // SDW_BASELINE_VOLCANO_H_
