// Logical representation of the paper's workload queries.
//
// A StarQuery joins one fact table with zero or more dimension tables on
// foreign keys, applies per-dimension selection predicates, optionally a
// fact-table predicate, then groups / aggregates / sorts. SSB Q1.1, Q2.1 and
// Q3.2 are star queries; TPC-H Q1 is the degenerate zero-dimension case used
// by the paper's SPL experiment (Figure 6).

#ifndef SDW_QUERY_STAR_QUERY_H_
#define SDW_QUERY_STAR_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/predicate.h"

namespace sdw::query {

/// One fact-to-dimension equi-join plus the dimension's selection and the
/// dimension columns needed downstream.
struct DimJoin {
  std::string dim_table;
  std::string fact_fk_column;
  std::string dim_pk_column;
  Predicate pred;                          // selection on the dimension
  std::vector<std::string> payload_columns;  // dim columns carried upward
};

/// Aggregate expressions appearing in the paper's workloads.
struct AggSpec {
  enum class Kind {
    kSum,           // SUM(a)                 (int or double column)
    kSumProduct,    // SUM(a * b)             (SSB Q1.x revenue)
    kSumDiff,       // SUM(a - b)             (SSB Q4.x profit)
    kSumDiscPrice,  // SUM(a * (1 - b))       (TPC-H Q1)
    kSumCharge,     // SUM(a * (1 - b) * (1 + c))  (TPC-H Q1)
    kAvg,           // AVG(a)
    kCount,         // COUNT(*)
  };
  Kind kind = Kind::kSum;
  std::string col_a;
  std::string col_b;
  std::string col_c;
  std::string out_name;

  /// Canonical rendering used in signatures.
  std::string ToString() const;
  /// True when the accumulator is an exact int64 (inputs all integer).
  bool IntegerExact(const storage::Schema& input) const;
};

/// ORDER BY key.
struct OrderKey {
  std::string column;
  bool ascending = true;
};

/// A full logical query. Engines consume this directly (CJOIN) or via the
/// Planner's physical plan (QPipe, baseline).
struct StarQuery {
  std::string fact_table;
  std::vector<DimJoin> dims;
  Predicate fact_pred;                 // evaluated on fact columns
  std::vector<std::string> group_by;   // over fact + payload columns
  std::vector<AggSpec> aggregates;
  std::vector<OrderKey> order_by;

  /// Canonical signature covering joins, predicates, projection, grouping —
  /// equal signatures mean SP can fully share the queries.
  std::string Signature() const;

  /// Signature of the join sub-plan only (what the CJOIN stage shares).
  std::string JoinSignature() const;

  /// Aggregation-shape signature: the join *structure* (fact table,
  /// dimensions, FK=PK pairs, payload columns, and the FACT predicate's
  /// referenced — not compared — columns) plus group-by keys and aggregate
  /// expressions, with every predicate CONSTANT excluded. Dimension
  /// predicates contribute NOTHING here — not even their referenced
  /// columns: their verdicts ride the per-slot filter bitmaps and never
  /// widen the join-output schema, so two queries whose dimension
  /// predicates compare different columns still share one group. The fact
  /// predicate's columns DO appear because they widen the canonical fact
  /// projection and hence the join-output schema. Queries with equal
  /// AggSignatures therefore produce identical join-output schemas and
  /// aggregate plans; the shared aggregation stage binds them to one group
  /// and separates their results by predicate bitmap instead of recomputing
  /// the group-by per query. ORDER BY is also excluded: sorting runs per
  /// query downstream.
  std::string AggSignature() const;
};

/// Fold-eligibility test (dynamic query folding, ROADMAP item 2): true when
/// `sub` is provably subsumed by `host` — equal aggregate shapes
/// (AggSignature equality, so dims line up positionally with identical join
/// triples and the join-output schemas match) AND every predicate of `sub`
/// contained in host's counterpart (PredicateContains per dimension, plus
/// the fact predicate). A subsumed query's qualifying tuples are a subset
/// of the host's join output, so it can run as a post-filter over the
/// host's slot instead of consuming its own slot and dimension scans.
/// Conservative: false on anything unprovable.
bool QuerySubsumes(const StarQuery& host, const StarQuery& sub);

}  // namespace sdw::query

#endif  // SDW_QUERY_STAR_QUERY_H_
