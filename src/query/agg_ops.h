// The ONE implementation of the paper workloads' aggregate accumulator
// semantics, shared by every aggregation path in the engine:
//
//   * qpipe::RunAggregate         — the query-centric hash aggregation packet,
//   * cjoin::SharedAggregator     — the GQP's shared aggregation stage,
//   * cjoin::AggregateScalar      — the per-query scalar reference the
//                                   differential tests pin the shared path to.
//
// Keeping update/emit here (instead of per-operator copies) is what makes the
// differential tests' bit-equality claim meaningful: the shared path cannot
// drift from the scalar reference in rounding, accumulator width or
// empty-group semantics, because they run the same code.

#ifndef SDW_QUERY_AGG_OPS_H_
#define SDW_QUERY_AGG_OPS_H_

#include <cstddef>
#include <cstdint>

#include "query/plan.h"
#include "storage/schema.h"

namespace sdw::query {

/// One aggregate's running state. Integer-exact aggregates accumulate in
/// `i`, floating ones in `d`; kAvg/kCount use `count`.
struct AggAcc {
  int64_t i = 0;
  double d = 0;
  int64_t count = 0;

  void MergeFrom(const AggAcc& o) {
    i += o.i;
    d += o.d;
    count += o.count;
  }
};

/// Reads a numeric column (int or double) as double.
inline double AggNumericValue(const storage::Schema& schema,
                              const std::byte* tuple, size_t col) {
  return schema.column(col).type == storage::ColumnType::kDouble
             ? schema.GetDouble(tuple, col)
             : static_cast<double>(schema.GetIntAny(tuple, col));
}

/// Folds one input tuple into the accumulator.
inline void UpdateAcc(const BoundAgg& agg, const storage::Schema& in,
                      const std::byte* tuple, AggAcc* acc) {
  using Kind = AggSpec::Kind;
  switch (agg.kind) {
    case Kind::kSum:
      if (agg.integer_exact) {
        acc->i += in.GetIntAny(tuple, static_cast<size_t>(agg.col_a));
      } else {
        acc->d += AggNumericValue(in, tuple, static_cast<size_t>(agg.col_a));
      }
      break;
    case Kind::kSumProduct:
      if (agg.integer_exact) {
        acc->i += in.GetIntAny(tuple, static_cast<size_t>(agg.col_a)) *
                  in.GetIntAny(tuple, static_cast<size_t>(agg.col_b));
      } else {
        acc->d += AggNumericValue(in, tuple, static_cast<size_t>(agg.col_a)) *
                  AggNumericValue(in, tuple, static_cast<size_t>(agg.col_b));
      }
      break;
    case Kind::kSumDiff:
      if (agg.integer_exact) {
        acc->i += in.GetIntAny(tuple, static_cast<size_t>(agg.col_a)) -
                  in.GetIntAny(tuple, static_cast<size_t>(agg.col_b));
      } else {
        acc->d += AggNumericValue(in, tuple, static_cast<size_t>(agg.col_a)) -
                  AggNumericValue(in, tuple, static_cast<size_t>(agg.col_b));
      }
      break;
    case Kind::kSumDiscPrice:
      acc->d +=
          AggNumericValue(in, tuple, static_cast<size_t>(agg.col_a)) *
          (1.0 - AggNumericValue(in, tuple, static_cast<size_t>(agg.col_b)));
      break;
    case Kind::kSumCharge:
      acc->d +=
          AggNumericValue(in, tuple, static_cast<size_t>(agg.col_a)) *
          (1.0 - AggNumericValue(in, tuple, static_cast<size_t>(agg.col_b))) *
          (1.0 + AggNumericValue(in, tuple, static_cast<size_t>(agg.col_c)));
      break;
    case Kind::kAvg:
      acc->d += AggNumericValue(in, tuple, static_cast<size_t>(agg.col_a));
      ++acc->count;
      break;
    case Kind::kCount:
      ++acc->count;
      break;
  }
}

/// Writes the finished accumulator to output column `col` of `dst`.
inline void EmitAcc(const BoundAgg& agg, const storage::Schema& out,
                    std::byte* dst, size_t col, const AggAcc& acc) {
  using Kind = AggSpec::Kind;
  switch (agg.kind) {
    case Kind::kSum:
    case Kind::kSumProduct:
    case Kind::kSumDiff:
      if (agg.integer_exact) {
        out.SetInt64(dst, col, acc.i);
      } else {
        out.SetDouble(dst, col, acc.d);
      }
      break;
    case Kind::kSumDiscPrice:
    case Kind::kSumCharge:
      out.SetDouble(dst, col, acc.d);
      break;
    case Kind::kAvg:
      out.SetDouble(dst, col,
                    acc.count == 0 ? 0.0
                                   : acc.d / static_cast<double>(acc.count));
      break;
    case Kind::kCount:
      out.SetInt64(dst, col, acc.count);
      break;
  }
}

}  // namespace sdw::query

#endif  // SDW_QUERY_AGG_OPS_H_
