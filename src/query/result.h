// Query result collection and cross-engine comparison helpers.
//
// Every engine configuration terminates a query in a ResultSet. Tests verify
// correctness by comparing canonicalized ResultSets against the Volcano
// baseline (exact for integer columns, tolerant for floating point).

#ifndef SDW_QUERY_RESULT_H_
#define SDW_QUERY_RESULT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "storage/schema.h"

namespace sdw::query {

/// Materialized rows with their schema.
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(storage::Schema schema) : schema_(std::move(schema)) {}

  const storage::Schema& schema() const { return schema_; }
  void set_schema(storage::Schema s) { schema_ = std::move(s); }

  size_t num_rows() const {
    return schema_.tuple_size() == 0 ? 0
                                     : blob_.size() / schema_.tuple_size();
  }

  /// Appends a raw tuple (schema().tuple_size() bytes).
  void AddRow(const std::byte* tuple);

  /// Pre-sizes the blob for `rows` total rows. Growth is geometric, so
  /// calling this with a slowly increasing bound (e.g. once per drained
  /// page) stays amortized-linear instead of reallocating per call.
  void Reserve(size_t rows);

  /// Row accessor.
  const std::byte* row(size_t i) const {
    return blob_.data() + i * schema_.tuple_size();
  }

  /// "v1|v2|..." rendering of row `i` (doubles with fixed precision).
  std::string FormatRow(size_t i) const;

  /// All rows formatted and sorted lexicographically — canonical order-
  /// independent representation.
  std::vector<std::string> CanonicalRows() const;

 private:
  storage::Schema schema_;
  std::vector<std::byte> blob_;
};

/// Compares two result sets: identical schemas (by layout), same row multiset
/// with integer columns exact and floating columns within `rel_tol`.
/// On mismatch returns a human-readable diagnosis; empty string on success.
std::string DiffResults(const ResultSet& expected, const ResultSet& actual,
                        double rel_tol = 1e-9);

}  // namespace sdw::query

#endif  // SDW_QUERY_RESULT_H_
