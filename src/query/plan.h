// Physical plans for query-centric execution.
//
// The Planner compiles a StarQuery into the canonical right-deep plan of the
// paper's Figure 9: fact scan probing a chain of hash joins (one per
// dimension, build side = selective dimension scan), then hash aggregation,
// then sort. The same PlanNode tree drives the QPipe staged engine (one
// packet per node) and the Volcano baseline (one iterator per node), which is
// what makes cross-engine result verification meaningful.

#ifndef SDW_QUERY_PLAN_H_
#define SDW_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "query/star_query.h"
#include "storage/catalog.h"

namespace sdw::query {

/// Resolved ORDER BY key over a node's output schema.
struct SortKey {
  size_t col = 0;
  bool ascending = true;
};

/// Aggregate with input columns resolved against the child schema.
struct BoundAgg {
  AggSpec::Kind kind = AggSpec::Kind::kSum;
  int col_a = -1;
  int col_b = -1;
  int col_c = -1;
  bool integer_exact = false;  // accumulate exactly in int64
  std::string out_name;
};

/// One physical operator. Ownership of children is by value; the tree is
/// immutable after planning.
struct PlanNode {
  enum class Kind { kScan, kHashJoin, kAggregate, kSort };

  Kind kind = Kind::kScan;
  storage::Schema out_schema;
  /// Canonical signature of the sub-plan rooted here (SP matching key).
  std::string signature;
  std::vector<std::unique_ptr<PlanNode>> children;

  // -- kScan --
  const storage::Table* table = nullptr;
  Predicate pred;                   // selection evaluated during the scan
  std::vector<size_t> scan_proj;    // base-table columns to emit

  // -- kHashJoin -- children[0]=probe (fact side), children[1]=build (dim)
  size_t probe_key = 0;             // column index in probe out_schema
  size_t build_key = 0;             // column index in build out_schema
  std::vector<size_t> build_payload;  // build columns appended to output

  // -- kAggregate --
  std::vector<size_t> group_cols;   // child out_schema indexes
  std::vector<BoundAgg> aggs;

  // -- kSort --
  std::vector<SortKey> sort_keys;

  const PlanNode* child(size_t i) const { return children[i].get(); }
};

/// A query's aggregation shape bound against its input (join-output) schema:
/// everything an aggregation operator needs except the operator itself.
/// Queries with equal StarQuery::AggSignature() bind to identical shapes,
/// which is what lets the CJOIN shared-aggregation stage serve them from one
/// table.
struct AggShape {
  std::vector<size_t> group_cols;  // indexes into the input schema
  std::vector<BoundAgg> aggs;
  storage::Schema out_schema;      // group columns, then one column per agg
};

/// Compiles StarQuery -> PlanNode trees against a catalog.
class Planner {
 public:
  explicit Planner(const storage::Catalog* catalog) : catalog_(catalog) {}

  /// Binds `q`'s group-by and aggregates against input schema `in` (the
  /// join-pipeline output). Shared by MakeAggregate and the CJOIN
  /// shared-aggregation stage, so both paths resolve columns, accumulator
  /// width (integer_exact) and output schema identically.
  static AggShape BindAggShape(const storage::Schema& in, const StarQuery& q);

  /// Builds the full plan (scan-joins-aggregate-sort). Aborts on invalid
  /// queries (unknown tables/columns) — workload generators are trusted.
  std::unique_ptr<PlanNode> BuildPlan(const StarQuery& q) const;

  /// Builds only the scan+join part (what CJOIN replaces with the GQP).
  std::unique_ptr<PlanNode> BuildJoinPlan(const StarQuery& q) const;

  /// Schema of the join-pipeline output for `q` (fact projection + dimension
  /// payloads) — also the schema CJOIN's distributor emits for the query.
  storage::Schema JoinOutputSchema(const StarQuery& q) const;

  /// Fact-table columns `q` needs from the scan (FKs, predicate inputs,
  /// group-by/aggregate inputs), in fact-schema order.
  std::vector<size_t> FactProjection(const StarQuery& q) const;

 private:
  std::unique_ptr<PlanNode> MakeScan(const storage::Table* table,
                                     const Predicate& pred,
                                     std::vector<size_t> proj) const;
  std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> child,
                                          const StarQuery& q) const;
  std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> child,
                                     const StarQuery& q) const;

  const storage::Catalog* catalog_;
};

}  // namespace sdw::query

#endif  // SDW_QUERY_PLAN_H_
