#include "query/result.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace sdw::query {

void ResultSet::AddRow(const std::byte* tuple) {
  const size_t n = schema_.tuple_size();
  blob_.insert(blob_.end(), tuple, tuple + n);
}

void ResultSet::Reserve(size_t rows) {
  const size_t want = rows * schema_.tuple_size();
  if (want <= blob_.capacity()) return;
  blob_.reserve(std::max(want, blob_.capacity() * 2));
}

std::string ResultSet::FormatRow(size_t i) const {
  const std::byte* t = row(i);
  std::vector<std::string> fields;
  fields.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    switch (schema_.column(c).type) {
      case storage::ColumnType::kInt32:
        fields.push_back(std::to_string(schema_.GetInt32(t, c)));
        break;
      case storage::ColumnType::kInt64:
        fields.push_back(std::to_string(schema_.GetInt64(t, c)));
        break;
      case storage::ColumnType::kDouble:
        fields.push_back(StrPrintf("%.6f", schema_.GetDouble(t, c)));
        break;
      case storage::ColumnType::kChar:
        fields.push_back(std::string(schema_.GetChar(t, c)));
        break;
    }
  }
  return StrJoin(fields, "|");
}

std::vector<std::string> ResultSet::CanonicalRows() const {
  std::vector<std::string> rows;
  rows.reserve(num_rows());
  for (size_t i = 0; i < num_rows(); ++i) rows.push_back(FormatRow(i));
  std::sort(rows.begin(), rows.end());
  return rows;
}

namespace {

// Sorts row indexes by the canonical formatting, to align rows for the
// tolerant comparison.
std::vector<size_t> SortedOrder(const ResultSet& rs) {
  std::vector<std::string> keys;
  keys.reserve(rs.num_rows());
  for (size_t i = 0; i < rs.num_rows(); ++i) keys.push_back(rs.FormatRow(i));
  std::vector<size_t> order(rs.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return keys[a] < keys[b]; });
  return order;
}

}  // namespace

std::string DiffResults(const ResultSet& expected, const ResultSet& actual,
                        double rel_tol) {
  const auto& es = expected.schema();
  const auto& as = actual.schema();
  if (es.tuple_size() != as.tuple_size() ||
      es.num_columns() != as.num_columns()) {
    return StrPrintf("schema mismatch: %s vs %s", es.ToString().c_str(),
                     as.ToString().c_str());
  }
  if (expected.num_rows() != actual.num_rows()) {
    return StrPrintf("row count mismatch: expected %zu, actual %zu",
                     expected.num_rows(), actual.num_rows());
  }
  const auto eo = SortedOrder(expected);
  const auto ao = SortedOrder(actual);
  for (size_t r = 0; r < eo.size(); ++r) {
    const std::byte* et = expected.row(eo[r]);
    const std::byte* at = actual.row(ao[r]);
    for (size_t c = 0; c < es.num_columns(); ++c) {
      bool match = true;
      switch (es.column(c).type) {
        case storage::ColumnType::kInt32:
          match = es.GetInt32(et, c) == as.GetInt32(at, c);
          break;
        case storage::ColumnType::kInt64:
          match = es.GetInt64(et, c) == as.GetInt64(at, c);
          break;
        case storage::ColumnType::kDouble: {
          const double e = es.GetDouble(et, c);
          const double a = as.GetDouble(at, c);
          const double scale = std::max({std::fabs(e), std::fabs(a), 1.0});
          match = std::fabs(e - a) <= rel_tol * scale;
          break;
        }
        case storage::ColumnType::kChar:
          match = es.GetChar(et, c) == as.GetChar(at, c);
          break;
      }
      if (!match) {
        return StrPrintf("row %zu column %s differs: expected [%s] actual [%s]",
                         r, es.column(c).name.c_str(),
                         expected.FormatRow(eo[r]).c_str(),
                         actual.FormatRow(ao[r]).c_str());
      }
    }
  }
  return "";
}

}  // namespace sdw::query
