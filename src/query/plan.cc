#include "query/plan.h"

#include <algorithm>

#include "common/str_util.h"

namespace sdw::query {

namespace {

// Appends `name` to `cols` if present in `schema` and not already included.
void MaybeInclude(const storage::Schema& schema, const std::string& name,
                  std::vector<size_t>* cols) {
  const int idx = schema.ColumnIndex(name);
  if (idx < 0) return;
  const size_t u = static_cast<size_t>(idx);
  if (std::find(cols->begin(), cols->end(), u) == cols->end()) {
    cols->push_back(u);
  }
}

std::string ProjSignature(const storage::Schema& schema,
                          const std::vector<size_t>& cols) {
  std::vector<std::string> names;
  names.reserve(cols.size());
  for (size_t c : cols) names.push_back(schema.column(c).name);
  return StrJoin(names, ",");
}

}  // namespace

std::unique_ptr<PlanNode> Planner::MakeScan(const storage::Table* table,
                                            const Predicate& pred,
                                            std::vector<size_t> proj) const {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->table = table;
  node->pred = pred;
  node->scan_proj = std::move(proj);

  std::vector<storage::Column> out_cols;
  out_cols.reserve(node->scan_proj.size());
  for (size_t c : node->scan_proj) out_cols.push_back(table->schema().column(c));
  node->out_schema = storage::Schema(std::move(out_cols));

  node->signature = StrPrintf(
      "scan(%s,pred=%s,proj=%s)", table->name().c_str(),
      pred.Signature().c_str(),
      ProjSignature(table->schema(), node->scan_proj).c_str());
  return node;
}

std::vector<size_t> Planner::FactProjection(const StarQuery& q) const {
  const storage::Table* fact = catalog_->MustGetTable(q.fact_table);
  const storage::Schema& fs = fact->schema();
  std::vector<size_t> cols;
  // FK columns, in dimension order, then predicate / group-by / aggregate
  // inputs that live on the fact table. Dedup keeps the first position.
  for (const auto& d : q.dims) MaybeInclude(fs, d.fact_fk_column, &cols);
  for (const auto& name : q.fact_pred.ReferencedColumns()) {
    SDW_CHECK_MSG(fs.ColumnIndex(name) >= 0,
                  "fact predicate column %s not on fact table", name.c_str());
    MaybeInclude(fs, name, &cols);
  }
  for (const auto& name : q.group_by) MaybeInclude(fs, name, &cols);
  for (const auto& a : q.aggregates) {
    if (!a.col_a.empty()) MaybeInclude(fs, a.col_a, &cols);
    if (!a.col_b.empty()) MaybeInclude(fs, a.col_b, &cols);
    if (!a.col_c.empty()) MaybeInclude(fs, a.col_c, &cols);
  }
  // Canonical order: sort by fact-schema position so identical queries
  // written differently share signatures.
  std::sort(cols.begin(), cols.end());
  return cols;
}

std::unique_ptr<PlanNode> Planner::BuildJoinPlan(const StarQuery& q) const {
  const storage::Table* fact = catalog_->MustGetTable(q.fact_table);

  auto current = MakeScan(fact, q.fact_pred, FactProjection(q));

  for (const auto& d : q.dims) {
    const storage::Table* dim = catalog_->MustGetTable(d.dim_table);
    const storage::Schema& ds = dim->schema();

    // Dimension scan projects PK + payload columns (PK first).
    std::vector<size_t> dim_proj;
    MaybeInclude(ds, d.dim_pk_column, &dim_proj);
    SDW_CHECK_MSG(!dim_proj.empty(), "dim pk %s missing on %s",
                  d.dim_pk_column.c_str(), d.dim_table.c_str());
    for (const auto& p : d.payload_columns) {
      SDW_CHECK_MSG(ds.ColumnIndex(p) >= 0, "payload column %s missing on %s",
                    p.c_str(), d.dim_table.c_str());
      MaybeInclude(ds, p, &dim_proj);
    }
    auto build = MakeScan(dim, d.pred, dim_proj);

    auto join = std::make_unique<PlanNode>();
    join->kind = PlanNode::Kind::kHashJoin;
    join->probe_key = current->out_schema.MustColumnIndex(d.fact_fk_column);
    join->build_key = build->out_schema.MustColumnIndex(d.dim_pk_column);
    for (const auto& p : d.payload_columns) {
      join->build_payload.push_back(build->out_schema.MustColumnIndex(p));
    }

    std::vector<storage::Column> out_cols;
    for (size_t i = 0; i < current->out_schema.num_columns(); ++i) {
      out_cols.push_back(current->out_schema.column(i));
    }
    for (size_t c : join->build_payload) {
      out_cols.push_back(build->out_schema.column(c));
    }
    join->out_schema = storage::Schema(std::move(out_cols));
    join->signature = StrPrintf(
        "hj(p=%s,b=%s,pk=%s,bk=%s,pay=%s)", current->signature.c_str(),
        build->signature.c_str(), d.fact_fk_column.c_str(),
        d.dim_pk_column.c_str(), StrJoin(d.payload_columns, ",").c_str());

    join->children.push_back(std::move(current));
    join->children.push_back(std::move(build));
    current = std::move(join);
  }
  return current;
}

storage::Schema Planner::JoinOutputSchema(const StarQuery& q) const {
  // Mirrors BuildJoinPlan's output schema without building operators.
  const storage::Table* fact = catalog_->MustGetTable(q.fact_table);
  std::vector<storage::Column> out_cols;
  for (size_t c : FactProjection(q)) {
    out_cols.push_back(fact->schema().column(c));
  }
  for (const auto& d : q.dims) {
    const storage::Schema& ds = catalog_->MustGetTable(d.dim_table)->schema();
    for (const auto& p : d.payload_columns) {
      out_cols.push_back(ds.column(ds.MustColumnIndex(p)));
    }
  }
  return storage::Schema(std::move(out_cols));
}

AggShape Planner::BindAggShape(const storage::Schema& in, const StarQuery& q) {
  AggShape shape;
  std::vector<storage::Column> out_cols;
  for (const auto& g : q.group_by) {
    const size_t c = in.MustColumnIndex(g);
    shape.group_cols.push_back(c);
    out_cols.push_back(in.column(c));
  }
  for (const auto& a : q.aggregates) {
    BoundAgg bound;
    bound.kind = a.kind;
    bound.out_name = a.out_name;
    if (!a.col_a.empty()) {
      bound.col_a = static_cast<int>(in.MustColumnIndex(a.col_a));
    }
    if (!a.col_b.empty()) {
      bound.col_b = static_cast<int>(in.MustColumnIndex(a.col_b));
    }
    if (!a.col_c.empty()) {
      bound.col_c = static_cast<int>(in.MustColumnIndex(a.col_c));
    }
    bound.integer_exact = a.IntegerExact(in);
    if (bound.integer_exact || a.kind == AggSpec::Kind::kCount) {
      out_cols.push_back(storage::Schema::Int64(a.out_name));
    } else {
      out_cols.push_back(storage::Schema::Double(a.out_name));
    }
    shape.aggs.push_back(std::move(bound));
  }
  shape.out_schema = storage::Schema(std::move(out_cols));
  return shape;
}

std::unique_ptr<PlanNode> Planner::MakeAggregate(
    std::unique_ptr<PlanNode> child, const StarQuery& q) const {
  auto agg = std::make_unique<PlanNode>();
  agg->kind = PlanNode::Kind::kAggregate;

  AggShape shape = BindAggShape(child->out_schema, q);
  agg->group_cols = std::move(shape.group_cols);
  agg->aggs = std::move(shape.aggs);
  agg->out_schema = std::move(shape.out_schema);

  std::vector<std::string> agg_sigs;
  agg_sigs.reserve(q.aggregates.size());
  for (const auto& a : q.aggregates) agg_sigs.push_back(a.ToString());
  agg->signature =
      StrPrintf("agg(c=%s,g=%s,a=%s)", child->signature.c_str(),
                StrJoin(q.group_by, ",").c_str(),
                StrJoin(agg_sigs, ",").c_str());
  agg->children.push_back(std::move(child));
  return agg;
}

std::unique_ptr<PlanNode> Planner::MakeSort(std::unique_ptr<PlanNode> child,
                                            const StarQuery& q) const {
  auto sort = std::make_unique<PlanNode>();
  sort->kind = PlanNode::Kind::kSort;
  sort->out_schema = child->out_schema;
  std::vector<std::string> key_sigs;
  for (const auto& k : q.order_by) {
    sort->sort_keys.push_back(
        {sort->out_schema.MustColumnIndex(k.column), k.ascending});
    key_sigs.push_back(k.column + (k.ascending ? ":asc" : ":desc"));
  }
  sort->signature = StrPrintf("sort(c=%s,k=%s)", child->signature.c_str(),
                              StrJoin(key_sigs, ",").c_str());
  sort->children.push_back(std::move(child));
  return sort;
}

std::unique_ptr<PlanNode> Planner::BuildPlan(const StarQuery& q) const {
  auto plan = BuildJoinPlan(q);
  if (!q.group_by.empty() || !q.aggregates.empty()) {
    plan = MakeAggregate(std::move(plan), q);
  }
  if (!q.order_by.empty()) {
    plan = MakeSort(std::move(plan), q);
  }
  return plan;
}

}  // namespace sdw::query
