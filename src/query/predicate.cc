#include "query/predicate.h"

#include <algorithm>

#include "common/str_util.h"
#include "storage/page.h"

namespace sdw::query {

namespace {

template <typename T>
bool Compare(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string AtomicPred::ToString() const {
  // Escaped: this rendering feeds predicate/plan signatures, which are
  // compared for equality — adversarial column names or string literals
  // containing the delimiter characters must not forge a collision.
  if (is_string) {
    return StrPrintf("%s%s'%s'", EscapeSigToken(column).c_str(),
                     CompareOpName(op), EscapeSigToken(sval).c_str());
  }
  return StrPrintf("%s%s%lld", EscapeSigToken(column).c_str(),
                   CompareOpName(op), static_cast<long long>(ival));
}

Predicate& Predicate::And(AtomicPred a) {
  cnf_.push_back({std::move(a)});
  return *this;
}

Predicate& Predicate::AndAnyOf(std::vector<AtomicPred> clause) {
  SDW_CHECK(!clause.empty());
  cnf_.push_back(std::move(clause));
  return *this;
}

bool Predicate::Eval(const storage::Schema& schema,
                     const std::byte* tuple) const {
  // Slow path used by non-critical code; hot loops use Bind().
  return Bind(schema).Eval(schema, tuple);
}

Predicate::Bound Predicate::Bind(const storage::Schema& schema) const {
  Bound bound;
  bound.cnf.reserve(cnf_.size());
  for (const auto& clause : cnf_) {
    std::vector<Bound::Atom> atoms;
    atoms.reserve(clause.size());
    for (const auto& a : clause) {
      const size_t col = schema.MustColumnIndex(a.column);
      atoms.push_back(
          {col, a.op, a.is_string, a.ival, a.sval, schema.column(col).type});
    }
    bound.cnf.push_back(std::move(atoms));
  }
  return bound;
}

bool Predicate::Bound::Eval(const storage::Schema& schema,
                            const std::byte* tuple) const {
  for (const auto& clause : cnf) {
    bool any = false;
    for (const auto& a : clause) {
      bool hit;
      if (a.is_string) {
        hit = Compare(a.op, schema.GetChar(tuple, a.col),
                      std::string_view(a.sval));
      } else if (a.type == storage::ColumnType::kDouble) {
        hit = Compare(a.op, schema.GetDouble(tuple, a.col),
                      static_cast<double>(a.ival));
      } else {
        hit = Compare(a.op, schema.GetIntAny(tuple, a.col), a.ival);
      }
      if (hit) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

bool Predicate::Bound::EvalAt(const storage::Schema& schema,
                              const storage::Page& page, uint32_t i) const {
  if (!page.columnar()) return Eval(schema, page.tuple(i));
  for (const auto& clause : cnf) {
    bool any = false;
    for (const auto& a : clause) {
      // Gather-free: the field pointer lands inside the column's minipage,
      // so only the referenced columns' cache lines are touched.
      const std::byte* f = page.field(schema, a.col, i);
      bool hit;
      if (a.is_string) {
        std::string_view raw(reinterpret_cast<const char*>(f),
                             schema.column(a.col).size);
        size_t end = raw.size();
        while (end > 0 && raw[end - 1] == ' ') --end;
        hit = Compare(a.op, raw.substr(0, end), std::string_view(a.sval));
      } else if (a.type == storage::ColumnType::kDouble) {
        double v;
        std::memcpy(&v, f, sizeof(v));
        hit = Compare(a.op, v, static_cast<double>(a.ival));
      } else {
        int64_t v;
        if (a.type == storage::ColumnType::kInt32) {
          int32_t v32;
          std::memcpy(&v32, f, sizeof(v32));
          v = v32;
        } else {
          std::memcpy(&v, f, sizeof(v));
        }
        hit = Compare(a.op, v, a.ival);
      }
      if (hit) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

std::string Predicate::Signature() const {
  std::vector<std::string> clause_sigs;
  clause_sigs.reserve(cnf_.size());
  for (const auto& clause : cnf_) {
    std::vector<std::string> atom_sigs;
    atom_sigs.reserve(clause.size());
    for (const auto& a : clause) atom_sigs.push_back(a.ToString());
    std::sort(atom_sigs.begin(), atom_sigs.end());
    clause_sigs.push_back("(" + StrJoin(atom_sigs, "|") + ")");
  }
  std::sort(clause_sigs.begin(), clause_sigs.end());
  return StrJoin(clause_sigs, "&");
}

namespace {

// True when (x op2 v2) forces (x op1 v1) for every x in a totally ordered
// domain, using open/closed bound reasoning only. No ±1 integer tightening:
// the predicate does not know the column type, and `x < 5 ⟹ x <= 4` is
// wrong for double columns, so bounds compare as written. kNe is handled
// positionally (a point complement implies only the same point complement;
// a range implies a kNe whose value lies outside the range).
template <typename T>
bool AtomImpliesOrdered(CompareOp op2, const T& v2, CompareOp op1,
                        const T& v1) {
  if (op2 == CompareOp::kNe) return op1 == CompareOp::kNe && v1 == v2;
  if (op1 == CompareOp::kNe) {
    // v1 must lie outside the set described by (op2, v2).
    switch (op2) {
      case CompareOp::kEq:
        return v2 != v1;
      case CompareOp::kLt:
        return v1 >= v2;
      case CompareOp::kLe:
        return v1 > v2;
      case CompareOp::kGt:
        return v1 <= v2;
      case CompareOp::kGe:
        return v1 < v2;
      case CompareOp::kNe:
        break;  // handled above
    }
    return false;
  }
  // Both sides are ranges (kEq is the degenerate [v,v]). Encode each as
  // lower/upper bounds with strictness and test interval inclusion.
  struct Range {
    bool has_lo = false, lo_strict = false;
    bool has_hi = false, hi_strict = false;
    const T* lo = nullptr;
    const T* hi = nullptr;
  };
  auto range_of = [](CompareOp op, const T& v) {
    Range r;
    switch (op) {
      case CompareOp::kEq:
        r = {true, false, true, false, &v, &v};
        break;
      case CompareOp::kLt:
        r = {false, false, true, true, nullptr, &v};
        break;
      case CompareOp::kLe:
        r = {false, false, true, false, nullptr, &v};
        break;
      case CompareOp::kGt:
        r = {true, true, false, false, &v, nullptr};
        break;
      case CompareOp::kGe:
        r = {true, false, false, false, &v, nullptr};
        break;
      case CompareOp::kNe:
        break;  // unreachable
    }
    return r;
  };
  const Range r2 = range_of(op2, v2);  // the narrower candidate
  const Range r1 = range_of(op1, v1);  // must enclose r2
  if (r1.has_lo) {
    if (!r2.has_lo) return false;
    if (*r2.lo < *r1.lo) return false;
    if (*r2.lo == *r1.lo && r1.lo_strict && !r2.lo_strict) return false;
  }
  if (r1.has_hi) {
    if (!r2.has_hi) return false;
    if (*r2.hi > *r1.hi) return false;
    if (*r2.hi == *r1.hi && r1.hi_strict && !r2.hi_strict) return false;
  }
  return true;
}

// (col2 op2 lit2) ⟹ (col1 op1 lit1)? Conservative: provable only for the
// same column and literal type.
bool AtomImplies(const AtomicPred& a2, const AtomicPred& a1) {
  if (a2.column != a1.column || a2.is_string != a1.is_string) return false;
  if (a2.is_string) return AtomImpliesOrdered(a2.op, a2.sval, a1.op, a1.sval);
  return AtomImpliesOrdered(a2.op, a2.ival, a1.op, a1.ival);
}

// Clause (OR of atoms) c2 implies clause c1 when every atom of c2 implies
// some atom of c1: any tuple satisfying c2 satisfies one of its atoms and
// therefore one of c1's. This is the IN-list-subset rule — a sub-list's
// every equality atom appears in the super-list.
bool ClauseImplies(const std::vector<AtomicPred>& c2,
                   const std::vector<AtomicPred>& c1) {
  for (const auto& a2 : c2) {
    bool implied = false;
    for (const auto& a1 : c1) {
      if (AtomImplies(a2, a1)) {
        implied = true;
        break;
      }
    }
    if (!implied) return false;
  }
  return true;
}

}  // namespace

bool PredicateContains(const Predicate& p1, const Predicate& p2) {
  // p2 ⟹ p1: every clause of p1 must be implied by some clause of p2 (p2
  // is a conjunction, so each of its clauses holds for any satisfying
  // tuple). An empty p1 is TRUE and contains everything.
  for (const auto& c1 : p1.cnf()) {
    bool implied = false;
    for (const auto& c2 : p2.cnf()) {
      if (ClauseImplies(c2, c1)) {
        implied = true;
        break;
      }
    }
    if (!implied) return false;
  }
  return true;
}

std::vector<std::string> Predicate::ReferencedColumns() const {
  std::vector<std::string> cols;
  for (const auto& clause : cnf_) {
    for (const auto& a : clause) {
      if (std::find(cols.begin(), cols.end(), a.column) == cols.end()) {
        cols.push_back(a.column);
      }
    }
  }
  return cols;
}

}  // namespace sdw::query
