#include "query/predicate.h"

#include <algorithm>

#include "common/str_util.h"
#include "storage/page.h"

namespace sdw::query {

namespace {

template <typename T>
bool Compare(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string AtomicPred::ToString() const {
  if (is_string) {
    return StrPrintf("%s%s'%s'", column.c_str(), CompareOpName(op),
                     sval.c_str());
  }
  return StrPrintf("%s%s%lld", column.c_str(), CompareOpName(op),
                   static_cast<long long>(ival));
}

Predicate& Predicate::And(AtomicPred a) {
  cnf_.push_back({std::move(a)});
  return *this;
}

Predicate& Predicate::AndAnyOf(std::vector<AtomicPred> clause) {
  SDW_CHECK(!clause.empty());
  cnf_.push_back(std::move(clause));
  return *this;
}

bool Predicate::Eval(const storage::Schema& schema,
                     const std::byte* tuple) const {
  // Slow path used by non-critical code; hot loops use Bind().
  return Bind(schema).Eval(schema, tuple);
}

Predicate::Bound Predicate::Bind(const storage::Schema& schema) const {
  Bound bound;
  bound.cnf.reserve(cnf_.size());
  for (const auto& clause : cnf_) {
    std::vector<Bound::Atom> atoms;
    atoms.reserve(clause.size());
    for (const auto& a : clause) {
      const size_t col = schema.MustColumnIndex(a.column);
      atoms.push_back(
          {col, a.op, a.is_string, a.ival, a.sval, schema.column(col).type});
    }
    bound.cnf.push_back(std::move(atoms));
  }
  return bound;
}

bool Predicate::Bound::Eval(const storage::Schema& schema,
                            const std::byte* tuple) const {
  for (const auto& clause : cnf) {
    bool any = false;
    for (const auto& a : clause) {
      bool hit;
      if (a.is_string) {
        hit = Compare(a.op, schema.GetChar(tuple, a.col),
                      std::string_view(a.sval));
      } else if (a.type == storage::ColumnType::kDouble) {
        hit = Compare(a.op, schema.GetDouble(tuple, a.col),
                      static_cast<double>(a.ival));
      } else {
        hit = Compare(a.op, schema.GetIntAny(tuple, a.col), a.ival);
      }
      if (hit) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

bool Predicate::Bound::EvalAt(const storage::Schema& schema,
                              const storage::Page& page, uint32_t i) const {
  if (!page.columnar()) return Eval(schema, page.tuple(i));
  for (const auto& clause : cnf) {
    bool any = false;
    for (const auto& a : clause) {
      // Gather-free: the field pointer lands inside the column's minipage,
      // so only the referenced columns' cache lines are touched.
      const std::byte* f = page.field(schema, a.col, i);
      bool hit;
      if (a.is_string) {
        std::string_view raw(reinterpret_cast<const char*>(f),
                             schema.column(a.col).size);
        size_t end = raw.size();
        while (end > 0 && raw[end - 1] == ' ') --end;
        hit = Compare(a.op, raw.substr(0, end), std::string_view(a.sval));
      } else if (a.type == storage::ColumnType::kDouble) {
        double v;
        std::memcpy(&v, f, sizeof(v));
        hit = Compare(a.op, v, static_cast<double>(a.ival));
      } else {
        int64_t v;
        if (a.type == storage::ColumnType::kInt32) {
          int32_t v32;
          std::memcpy(&v32, f, sizeof(v32));
          v = v32;
        } else {
          std::memcpy(&v, f, sizeof(v));
        }
        hit = Compare(a.op, v, a.ival);
      }
      if (hit) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

std::string Predicate::Signature() const {
  std::vector<std::string> clause_sigs;
  clause_sigs.reserve(cnf_.size());
  for (const auto& clause : cnf_) {
    std::vector<std::string> atom_sigs;
    atom_sigs.reserve(clause.size());
    for (const auto& a : clause) atom_sigs.push_back(a.ToString());
    std::sort(atom_sigs.begin(), atom_sigs.end());
    clause_sigs.push_back("(" + StrJoin(atom_sigs, "|") + ")");
  }
  std::sort(clause_sigs.begin(), clause_sigs.end());
  return StrJoin(clause_sigs, "&");
}

std::vector<std::string> Predicate::ReferencedColumns() const {
  std::vector<std::string> cols;
  for (const auto& clause : cnf_) {
    for (const auto& a : clause) {
      if (std::find(cols.begin(), cols.end(), a.column) == cols.end()) {
        cols.push_back(a.column);
      }
    }
  }
  return cols;
}

}  // namespace sdw::query
