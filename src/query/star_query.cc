#include "query/star_query.h"

#include <algorithm>

#include "common/str_util.h"

namespace sdw::query {

std::string AggSpec::ToString() const {
  switch (kind) {
    case Kind::kSum:
      return StrPrintf("sum(%s)", col_a.c_str());
    case Kind::kSumProduct:
      return StrPrintf("sum(%s*%s)", col_a.c_str(), col_b.c_str());
    case Kind::kSumDiff:
      return StrPrintf("sum(%s-%s)", col_a.c_str(), col_b.c_str());
    case Kind::kSumDiscPrice:
      return StrPrintf("sum(%s*(1-%s))", col_a.c_str(), col_b.c_str());
    case Kind::kSumCharge:
      return StrPrintf("sum(%s*(1-%s)*(1+%s))", col_a.c_str(), col_b.c_str(),
                       col_c.c_str());
    case Kind::kAvg:
      return StrPrintf("avg(%s)", col_a.c_str());
    case Kind::kCount:
      return "count(*)";
  }
  return "?";
}

bool AggSpec::IntegerExact(const storage::Schema& input) const {
  auto is_int = [&](const std::string& name) {
    const size_t c = input.MustColumnIndex(name);
    return input.column(c).type == storage::ColumnType::kInt32 ||
           input.column(c).type == storage::ColumnType::kInt64;
  };
  switch (kind) {
    case Kind::kSum:
      return is_int(col_a);
    case Kind::kSumProduct:
    case Kind::kSumDiff:
      return is_int(col_a) && is_int(col_b);
    case Kind::kCount:
      return true;
    default:
      return false;
  }
}

std::string StarQuery::JoinSignature() const {
  std::vector<std::string> parts;
  parts.push_back("fact=" + fact_table);
  parts.push_back("fpred=" + fact_pred.Signature());
  for (const auto& d : dims) {
    parts.push_back(StrPrintf(
        "dim(%s,%s=%s,pred=%s,pay=%s)", d.dim_table.c_str(),
        d.fact_fk_column.c_str(), d.dim_pk_column.c_str(),
        d.pred.Signature().c_str(),
        StrJoin(d.payload_columns, ",").c_str()));
  }
  return StrJoin(parts, ";");
}

std::string StarQuery::AggSignature() const {
  std::vector<std::string> parts;
  parts.push_back("fact=" + fact_table);
  // The fact predicate's referenced COLUMNS stay in the signature (they
  // widen the canonical fact projection, hence the join-output schema); its
  // constants do not — that is the whole point of the shape signature.
  std::vector<std::string> pred_cols = fact_pred.ReferencedColumns();
  std::sort(pred_cols.begin(), pred_cols.end());
  parts.push_back("fpredcols=" + StrJoin(pred_cols, ","));
  for (const auto& d : dims) {
    parts.push_back(StrPrintf("dim(%s,%s=%s,pay=%s)", d.dim_table.c_str(),
                              d.fact_fk_column.c_str(), d.dim_pk_column.c_str(),
                              StrJoin(d.payload_columns, ",").c_str()));
  }
  parts.push_back("group=" + StrJoin(group_by, ","));
  std::vector<std::string> agg_sigs;
  agg_sigs.reserve(aggregates.size());
  for (const auto& a : aggregates) agg_sigs.push_back(a.ToString());
  parts.push_back("aggs=" + StrJoin(agg_sigs, ","));
  return StrJoin(parts, ";");
}

std::string StarQuery::Signature() const {
  std::vector<std::string> parts;
  parts.push_back(JoinSignature());
  parts.push_back("group=" + StrJoin(group_by, ","));
  std::vector<std::string> agg_sigs;
  agg_sigs.reserve(aggregates.size());
  for (const auto& a : aggregates) agg_sigs.push_back(a.ToString());
  parts.push_back("aggs=" + StrJoin(agg_sigs, ","));
  std::vector<std::string> order_sigs;
  order_sigs.reserve(order_by.size());
  for (const auto& k : order_by) {
    order_sigs.push_back(k.column + (k.ascending ? ":asc" : ":desc"));
  }
  parts.push_back("order=" + StrJoin(order_sigs, ","));
  return StrJoin(parts, ";");
}

}  // namespace sdw::query
