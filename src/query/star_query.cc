#include "query/star_query.h"

#include <algorithm>

#include "common/str_util.h"

namespace sdw::query {

std::string AggSpec::ToString() const {
  // Signature-grade rendering: column names are escaped so adversarial
  // identifiers cannot collide with the surrounding delimiter grammar.
  const std::string a = EscapeSigToken(col_a);
  const std::string b = EscapeSigToken(col_b);
  const std::string c = EscapeSigToken(col_c);
  switch (kind) {
    case Kind::kSum:
      return StrPrintf("sum(%s)", a.c_str());
    case Kind::kSumProduct:
      return StrPrintf("sum(%s*%s)", a.c_str(), b.c_str());
    case Kind::kSumDiff:
      return StrPrintf("sum(%s-%s)", a.c_str(), b.c_str());
    case Kind::kSumDiscPrice:
      return StrPrintf("sum(%s*(1-%s))", a.c_str(), b.c_str());
    case Kind::kSumCharge:
      return StrPrintf("sum(%s*(1-%s)*(1+%s))", a.c_str(), b.c_str(),
                       c.c_str());
    case Kind::kAvg:
      return StrPrintf("avg(%s)", a.c_str());
    case Kind::kCount:
      return "count(*)";
  }
  return "?";
}

bool AggSpec::IntegerExact(const storage::Schema& input) const {
  auto is_int = [&](const std::string& name) {
    const size_t c = input.MustColumnIndex(name);
    return input.column(c).type == storage::ColumnType::kInt32 ||
           input.column(c).type == storage::ColumnType::kInt64;
  };
  switch (kind) {
    case Kind::kSum:
      return is_int(col_a);
    case Kind::kSumProduct:
    case Kind::kSumDiff:
      return is_int(col_a) && is_int(col_b);
    case Kind::kCount:
      return true;
    default:
      return false;
  }
}

namespace {

// Escape-then-join: identifier lists embedded in signatures must not
// collide with the delimiter grammar ({"a,b"} vs {"a","b"}).
std::string JoinEscaped(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::vector<std::string> escaped;
  escaped.reserve(parts.size());
  for (const auto& p : parts) escaped.push_back(EscapeSigToken(p));
  return StrJoin(escaped, sep);
}

}  // namespace

std::string StarQuery::JoinSignature() const {
  std::vector<std::string> parts;
  parts.push_back("fact=" + EscapeSigToken(fact_table));
  parts.push_back("fpred=" + fact_pred.Signature());
  for (const auto& d : dims) {
    parts.push_back(StrPrintf(
        "dim(%s,%s=%s,pred=%s,pay=%s)", EscapeSigToken(d.dim_table).c_str(),
        EscapeSigToken(d.fact_fk_column).c_str(),
        EscapeSigToken(d.dim_pk_column).c_str(), d.pred.Signature().c_str(),
        JoinEscaped(d.payload_columns, ",").c_str()));
  }
  return StrJoin(parts, ";");
}

std::string StarQuery::AggSignature() const {
  std::vector<std::string> parts;
  parts.push_back("fact=" + EscapeSigToken(fact_table));
  // The fact predicate's referenced COLUMNS stay in the signature (they
  // widen the canonical fact projection, hence the join-output schema); its
  // constants do not — that is the whole point of the shape signature.
  // Dimension predicates are wholly absent (see the header doc): their
  // verdicts ride the filter bitmaps, not the join-output schema.
  std::vector<std::string> pred_cols = fact_pred.ReferencedColumns();
  std::sort(pred_cols.begin(), pred_cols.end());
  parts.push_back("fpredcols=" + JoinEscaped(pred_cols, ","));
  for (const auto& d : dims) {
    parts.push_back(StrPrintf("dim(%s,%s=%s,pay=%s)",
                              EscapeSigToken(d.dim_table).c_str(),
                              EscapeSigToken(d.fact_fk_column).c_str(),
                              EscapeSigToken(d.dim_pk_column).c_str(),
                              JoinEscaped(d.payload_columns, ",").c_str()));
  }
  parts.push_back("group=" + JoinEscaped(group_by, ","));
  std::vector<std::string> agg_sigs;
  agg_sigs.reserve(aggregates.size());
  for (const auto& a : aggregates) agg_sigs.push_back(a.ToString());
  parts.push_back("aggs=" + StrJoin(agg_sigs, ","));
  return StrJoin(parts, ";");
}

std::string StarQuery::Signature() const {
  std::vector<std::string> parts;
  parts.push_back(JoinSignature());
  parts.push_back("group=" + JoinEscaped(group_by, ","));
  std::vector<std::string> agg_sigs;
  agg_sigs.reserve(aggregates.size());
  for (const auto& a : aggregates) agg_sigs.push_back(a.ToString());
  parts.push_back("aggs=" + StrJoin(agg_sigs, ","));
  std::vector<std::string> order_sigs;
  order_sigs.reserve(order_by.size());
  for (const auto& k : order_by) {
    order_sigs.push_back(EscapeSigToken(k.column) +
                         (k.ascending ? ":asc" : ":desc"));
  }
  parts.push_back("order=" + StrJoin(order_sigs, ","));
  return StrJoin(parts, ";");
}

bool QuerySubsumes(const StarQuery& host, const StarQuery& sub) {
  if (host.dims.size() != sub.dims.size()) return false;
  // Shape first: AggSignature equality pins the fact table, the dimension
  // join triples and payloads positionally, the group-by keys and the
  // aggregate expressions — everything except predicate constants.
  if (host.AggSignature() != sub.AggSignature()) return false;
  if (!PredicateContains(host.fact_pred, sub.fact_pred)) return false;
  for (size_t i = 0; i < host.dims.size(); ++i) {
    if (!PredicateContains(host.dims[i].pred, sub.dims[i].pred)) return false;
  }
  return true;
}

}  // namespace sdw::query
