// Selection predicates over a single table's tuples.
//
// Predicates are stored in a canonical conjunctive normal form: a conjunction
// of clauses, each clause a disjunction of atomic comparisons. This covers
// every predicate in the paper's workloads (equality/range on dimension
// attributes, IN-lists expressed as disjunctions) and canonicalizes cheaply,
// which Simultaneous Pipelining relies on to detect identical sub-plans.

#ifndef SDW_QUERY_PREDICATE_H_
#define SDW_QUERY_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"

namespace sdw::storage {
class Page;
}  // namespace sdw::storage

namespace sdw::query {

/// Comparison operators for atomic predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Returns "=", "<>", "<", "<=", ">", ">=".
const char* CompareOpName(CompareOp op);

/// One comparison: column <op> literal. The literal is an int64 or a string
/// depending on the column type.
struct AtomicPred {
  std::string column;
  CompareOp op = CompareOp::kEq;
  bool is_string = false;
  int64_t ival = 0;
  std::string sval;

  static AtomicPred Int(std::string col, CompareOp op, int64_t v) {
    return {std::move(col), op, false, v, {}};
  }
  static AtomicPred Str(std::string col, CompareOp op, std::string v) {
    return {std::move(col), op, true, 0, std::move(v)};
  }

  /// "col<op>literal" canonical rendering.
  std::string ToString() const;
};

/// CNF predicate: AND of OR-clauses. An empty conjunction is TRUE.
class Predicate {
 public:
  /// The always-true predicate.
  static Predicate True() { return Predicate(); }

  /// Adds a one-atom clause (ANDed).
  Predicate& And(AtomicPred a);
  /// Adds a disjunctive clause (ANDed); must be non-empty.
  Predicate& AndAnyOf(std::vector<AtomicPred> clause);

  bool IsTrue() const { return cnf_.empty(); }
  size_t num_clauses() const { return cnf_.size(); }
  const std::vector<std::vector<AtomicPred>>& cnf() const { return cnf_; }

  /// Evaluates against a raw tuple of `schema`. Column names are resolved on
  /// first use and cached per (predicate, schema) via Bind().
  bool Eval(const storage::Schema& schema, const std::byte* tuple) const;

  /// Pre-resolved form for hot loops.
  struct Bound {
    struct Atom {
      size_t col;
      CompareOp op;
      bool is_string;
      int64_t ival;
      std::string sval;
      storage::ColumnType type;
    };
    std::vector<std::vector<Atom>> cnf;
    /// Evaluates the bound predicate on a tuple.
    bool Eval(const storage::Schema& schema, const std::byte* tuple) const;
    /// Evaluates the bound predicate on tuple `i` of `page` under either
    /// page layout: per-minipage field reads for PAX pages, plain Eval for
    /// row-major ones. Identical verdicts across layouts (the columnar
    /// differential suite pins this).
    bool EvalAt(const storage::Schema& schema, const storage::Page& page,
                uint32_t i) const;
    bool IsTrue() const { return cnf.empty(); }
  };

  /// Resolves column names against `schema`; aborts on unknown columns.
  Bound Bind(const storage::Schema& schema) const;

  /// Canonical signature: clauses and atoms sorted, so logically identical
  /// predicates built in different orders produce equal strings.
  std::string Signature() const;

  /// Columns referenced by the predicate (deduplicated).
  std::vector<std::string> ReferencedColumns() const;

 private:
  std::vector<std::vector<AtomicPred>> cnf_;
};

/// Sound containment test over CNF: true only when every tuple satisfying
/// `p2` provably satisfies `p1` (p2 ⊆ p1, i.e. p1 is the weaker predicate).
/// The prover is per-clause implication — each clause of p1 must be implied
/// by some clause of p2, where a clause implies another when each of its
/// atoms implies some atom of the target clause. Atom implication compares
/// value ranges (open/closed interval bounds, so the reasoning is exact for
/// integer columns and still sound for doubles, whose literals are widened
/// at Bind time) and equality/subset structure for strings (IN-lists are
/// OR-clauses, so an IN-list subset falls out of clause implication).
/// Anything unprovable — different columns, kNe against ranges, mixed
/// types — returns a conservative `false`; the check never claims
/// containment that a tuple sweep could refute. TRUE (the empty predicate)
/// contains everything; only TRUE contains TRUE-or-weaker predicates.
bool PredicateContains(const Predicate& p1, const Predicate& p2);

}  // namespace sdw::query

#endif  // SDW_QUERY_PREDICATE_H_
