#include "ssb/ssb_flight.h"

#include "common/rng.h"
#include "common/str_util.h"
#include "ssb/ssb_schema.h"

namespace sdw::ssb {

using query::AggSpec;
using query::AtomicPred;
using query::CompareOp;
using query::DimJoin;
using query::Predicate;
using query::StarQuery;

namespace {

AggSpec SumRevenue() {
  AggSpec a;
  a.kind = AggSpec::Kind::kSum;
  a.col_a = "lo_revenue";
  a.out_name = "revenue";
  return a;
}

AggSpec SumProfit() {
  AggSpec a;
  a.kind = AggSpec::Kind::kSumDiff;
  a.col_a = "lo_revenue";
  a.col_b = "lo_supplycost";
  a.out_name = "profit";
  return a;
}

AggSpec RevenueEffect() {
  AggSpec a;
  a.kind = AggSpec::Kind::kSumProduct;
  a.col_a = "lo_extendedprice";
  a.col_b = "lo_discount";
  a.out_name = "revenue";
  return a;
}

Predicate StrEq(const char* column, std::string value) {
  Predicate p;
  p.And(AtomicPred::Str(column, CompareOp::kEq, std::move(value)));
  return p;
}

DimJoin DateJoin(Predicate pred, std::vector<std::string> payload = {}) {
  return DimJoin{kDate, "lo_orderdate", "d_datekey", std::move(pred),
                 std::move(payload)};
}
DimJoin SupplierJoin(Predicate pred, std::vector<std::string> payload = {}) {
  return DimJoin{kSupplier, "lo_suppkey", "s_suppkey", std::move(pred),
                 std::move(payload)};
}
DimJoin CustomerJoin(Predicate pred, std::vector<std::string> payload = {}) {
  return DimJoin{kCustomer, "lo_custkey", "c_custkey", std::move(pred),
                 std::move(payload)};
}
DimJoin PartJoin(Predicate pred, std::vector<std::string> payload = {}) {
  return DimJoin{kPart, "lo_partkey", "p_partkey", std::move(pred),
                 std::move(payload)};
}

void DiscountQuantityWindow(StarQuery* q, int disc_lo, int disc_hi,
                            int qty_lo, int qty_hi) {
  q->fact_pred.And(AtomicPred::Int("lo_discount", CompareOp::kGe, disc_lo));
  q->fact_pred.And(AtomicPred::Int("lo_discount", CompareOp::kLe, disc_hi));
  q->fact_pred.And(AtomicPred::Int("lo_quantity", CompareOp::kGe, qty_lo));
  q->fact_pred.And(AtomicPred::Int("lo_quantity", CompareOp::kLe, qty_hi));
}

}  // namespace

query::StarQuery MakeQ12(int yearmonthnum) {
  StarQuery q;
  q.fact_table = kLineorder;
  Predicate d;
  d.And(AtomicPred::Int("d_yearmonthnum", CompareOp::kEq, yearmonthnum));
  q.dims.push_back(DateJoin(std::move(d)));
  DiscountQuantityWindow(&q, 4, 6, 26, 35);
  q.aggregates.push_back(RevenueEffect());
  return q;
}

query::StarQuery MakeQ13(int week, int year) {
  StarQuery q;
  q.fact_table = kLineorder;
  Predicate d;
  d.And(AtomicPred::Int("d_weeknuminyear", CompareOp::kEq, week));
  d.And(AtomicPred::Int("d_year", CompareOp::kEq, year));
  q.dims.push_back(DateJoin(std::move(d)));
  DiscountQuantityWindow(&q, 5, 7, 26, 35);
  q.aggregates.push_back(RevenueEffect());
  return q;
}

query::StarQuery MakeQ22(int mfgr, int category, int brand_lo, int brand_hi,
                         int supp_region) {
  StarQuery q;
  q.fact_table = kLineorder;
  Predicate part;
  part.And(AtomicPred::Str(
      "p_brand1", CompareOp::kGe,
      StrPrintf("MFGR#%d%d%d", mfgr, category, brand_lo)));
  part.And(AtomicPred::Str(
      "p_brand1", CompareOp::kLe,
      StrPrintf("MFGR#%d%d%d", mfgr, category, brand_hi)));
  q.dims.push_back(PartJoin(std::move(part), {"p_brand1"}));
  q.dims.push_back(SupplierJoin(
      StrEq("s_region", std::string(RegionName(supp_region)))));
  q.dims.push_back(DateJoin(Predicate::True(), {"d_year"}));
  q.group_by = {"d_year", "p_brand1"};
  q.aggregates.push_back(SumRevenue());
  q.order_by = {{"d_year", true}, {"p_brand1", true}};
  return q;
}

query::StarQuery MakeQ23(int mfgr, int category, int brand, int supp_region) {
  StarQuery q;
  q.fact_table = kLineorder;
  q.dims.push_back(PartJoin(
      StrEq("p_brand1", StrPrintf("MFGR#%d%d%d", mfgr, category, brand)),
      {"p_brand1"}));
  q.dims.push_back(SupplierJoin(
      StrEq("s_region", std::string(RegionName(supp_region)))));
  q.dims.push_back(DateJoin(Predicate::True(), {"d_year"}));
  q.group_by = {"d_year", "p_brand1"};
  q.aggregates.push_back(SumRevenue());
  q.order_by = {{"d_year", true}, {"p_brand1", true}};
  return q;
}

query::StarQuery MakeQ31(int region, int year_lo, int year_hi) {
  StarQuery q;
  q.fact_table = kLineorder;
  const std::string region_name(RegionName(region));
  q.dims.push_back(
      CustomerJoin(StrEq("c_region", region_name), {"c_nation"}));
  q.dims.push_back(
      SupplierJoin(StrEq("s_region", region_name), {"s_nation"}));
  Predicate d;
  d.And(AtomicPred::Int("d_year", CompareOp::kGe, year_lo));
  d.And(AtomicPred::Int("d_year", CompareOp::kLe, year_hi));
  q.dims.push_back(DateJoin(std::move(d), {"d_year"}));
  q.group_by = {"c_nation", "s_nation", "d_year"};
  q.aggregates.push_back(SumRevenue());
  q.order_by = {{"d_year", true}, {"revenue", false}};
  return q;
}

namespace {

// Q3.3/Q3.4 select two cities per side: cities <nation>5 and <nation>1 per
// the SSB specification's flavor of "UNITED KI1"/"UNITED KI5".
Predicate TwoCities(const char* column, int nation) {
  Predicate p;
  p.AndAnyOf({AtomicPred::Str(column, CompareOp::kEq, CityName(nation, 1)),
              AtomicPred::Str(column, CompareOp::kEq, CityName(nation, 5))});
  return p;
}

}  // namespace

query::StarQuery MakeQ33(int nation_c, int nation_s, int year_lo,
                         int year_hi) {
  StarQuery q;
  q.fact_table = kLineorder;
  q.dims.push_back(CustomerJoin(TwoCities("c_city", nation_c), {"c_city"}));
  q.dims.push_back(SupplierJoin(TwoCities("s_city", nation_s), {"s_city"}));
  Predicate d;
  d.And(AtomicPred::Int("d_year", CompareOp::kGe, year_lo));
  d.And(AtomicPred::Int("d_year", CompareOp::kLe, year_hi));
  q.dims.push_back(DateJoin(std::move(d), {"d_year"}));
  q.group_by = {"c_city", "s_city", "d_year"};
  q.aggregates.push_back(SumRevenue());
  q.order_by = {{"d_year", true}, {"revenue", false}};
  return q;
}

query::StarQuery MakeQ34(int nation_c, int nation_s, int yearmonthnum) {
  StarQuery q = MakeQ33(nation_c, nation_s, kFirstYear, kLastYear);
  q.dims[2].pred = Predicate();
  q.dims[2].pred.And(
      AtomicPred::Int("d_yearmonthnum", CompareOp::kEq, yearmonthnum));
  return q;
}

query::StarQuery MakeQ41(int cust_region, int supp_region) {
  StarQuery q;
  q.fact_table = kLineorder;
  q.dims.push_back(CustomerJoin(
      StrEq("c_region", std::string(RegionName(cust_region))), {"c_nation"}));
  q.dims.push_back(SupplierJoin(
      StrEq("s_region", std::string(RegionName(supp_region)))));
  Predicate part;
  part.AndAnyOf({AtomicPred::Str("p_mfgr", CompareOp::kEq, "MFGR#1"),
                 AtomicPred::Str("p_mfgr", CompareOp::kEq, "MFGR#2")});
  q.dims.push_back(PartJoin(std::move(part)));
  q.dims.push_back(DateJoin(Predicate::True(), {"d_year"}));
  q.group_by = {"d_year", "c_nation"};
  q.aggregates.push_back(SumProfit());
  q.order_by = {{"d_year", true}, {"c_nation", true}};
  return q;
}

query::StarQuery MakeQ42(int cust_region, int supp_region, int year_a,
                         int year_b) {
  StarQuery q;
  q.fact_table = kLineorder;
  q.dims.push_back(CustomerJoin(
      StrEq("c_region", std::string(RegionName(cust_region)))));
  q.dims.push_back(SupplierJoin(
      StrEq("s_region", std::string(RegionName(supp_region))), {"s_nation"}));
  Predicate part;
  part.AndAnyOf({AtomicPred::Str("p_mfgr", CompareOp::kEq, "MFGR#1"),
                 AtomicPred::Str("p_mfgr", CompareOp::kEq, "MFGR#2")});
  q.dims.push_back(PartJoin(std::move(part), {"p_category"}));
  Predicate d;
  d.AndAnyOf({AtomicPred::Int("d_year", CompareOp::kEq, year_a),
              AtomicPred::Int("d_year", CompareOp::kEq, year_b)});
  q.dims.push_back(DateJoin(std::move(d), {"d_year"}));
  q.group_by = {"d_year", "s_nation", "p_category"};
  q.aggregates.push_back(SumProfit());
  q.order_by = {{"d_year", true}, {"s_nation", true}, {"p_category", true}};
  return q;
}

query::StarQuery MakeQ43(int cust_region, int supp_nation, int mfgr,
                         int category, int year_a, int year_b) {
  StarQuery q;
  q.fact_table = kLineorder;
  q.dims.push_back(CustomerJoin(
      StrEq("c_region", std::string(RegionName(cust_region)))));
  q.dims.push_back(SupplierJoin(
      StrEq("s_nation", std::string(NationName(supp_nation))), {"s_city"}));
  q.dims.push_back(PartJoin(
      StrEq("p_category", StrPrintf("MFGR#%d%d", mfgr, category)),
      {"p_brand1"}));
  Predicate d;
  d.AndAnyOf({AtomicPred::Int("d_year", CompareOp::kEq, year_a),
              AtomicPred::Int("d_year", CompareOp::kEq, year_b)});
  q.dims.push_back(DateJoin(std::move(d), {"d_year"}));
  q.group_by = {"d_year", "s_city", "p_brand1"};
  q.aggregates.push_back(SumProfit());
  q.order_by = {{"d_year", true}, {"s_city", true}, {"p_brand1", true}};
  return q;
}

std::vector<query::StarQuery> FullFlight() {
  return {MakeQ11({}), MakeQ12(), MakeQ13(), MakeQ21({}), MakeQ22(),
          MakeQ23(),   MakeQ31(), MakeQ32({}), MakeQ33(), MakeQ34(),
          MakeQ41(),   MakeQ42(), MakeQ43()};
}

std::vector<query::StarQuery> FullFlightWorkload(size_t num_queries,
                                                 uint64_t seed) {
  Rng rng(seed);
  auto year = [&rng] {
    return kFirstYear + static_cast<int>(rng.Index(kNumYears));
  };
  auto region = [&rng] { return static_cast<int>(rng.Index(kNumRegions)); };
  auto nation = [&rng] { return static_cast<int>(rng.Index(kNumNations)); };

  std::vector<query::StarQuery> out;
  out.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    switch (i % 13) {
      case 0: {
        Q11Params p;
        p.year = year();
        out.push_back(MakeQ11(p));
        break;
      }
      case 1:
        out.push_back(MakeQ12(year() * 100 + 1 +
                              static_cast<int>(rng.Index(12))));
        break;
      case 2:
        out.push_back(MakeQ13(1 + static_cast<int>(rng.Index(52)), year()));
        break;
      case 3: {
        Q21Params p;
        p.mfgr = 1 + static_cast<int>(rng.Index(5));
        p.category = 1 + static_cast<int>(rng.Index(5));
        p.supp_region = region();
        out.push_back(MakeQ21(p));
        break;
      }
      case 4:
        out.push_back(MakeQ22(1 + static_cast<int>(rng.Index(5)),
                              1 + static_cast<int>(rng.Index(5)), 21, 28,
                              region()));
        break;
      case 5:
        out.push_back(MakeQ23(1 + static_cast<int>(rng.Index(5)),
                              1 + static_cast<int>(rng.Index(5)),
                              1 + static_cast<int>(rng.Index(40)), region()));
        break;
      case 6:
        out.push_back(MakeQ31(region(), kFirstYear, year()));
        break;
      case 7: {
        Q32Params p;
        p.cust_nation = nation();
        p.supp_nation = nation();
        out.push_back(MakeQ32(p));
        break;
      }
      case 8:
        out.push_back(MakeQ33(nation(), nation(), kFirstYear, year()));
        break;
      case 9:
        out.push_back(MakeQ34(nation(), nation(),
                              year() * 100 + 1 +
                                  static_cast<int>(rng.Index(12))));
        break;
      case 10:
        out.push_back(MakeQ41(region(), region()));
        break;
      case 11:
        out.push_back(MakeQ42(region(), region(), 1997, 1998));
        break;
      default:
        out.push_back(MakeQ43(region(), nation(),
                              1 + static_cast<int>(rng.Index(5)),
                              1 + static_cast<int>(rng.Index(5)), 1997,
                              1998));
        break;
    }
  }
  return out;
}

}  // namespace sdw::ssb
