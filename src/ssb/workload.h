// Workload generation with the paper's experiment knobs:
//  * number of concurrent queries,
//  * similarity: how many distinct query plans the instances draw from
//    (Figures 14/15), or fully random parameters (Figure 10),
//  * fact-tuple selectivity via nation disjunctions (Figures 11/12),
//  * the round-robin Q1.1 / Q2.1 / Q3.2 mix (Figure 16).

#ifndef SDW_SSB_WORKLOAD_H_
#define SDW_SSB_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "query/star_query.h"
#include "ssb/ssb_queries.h"

namespace sdw::ssb {

/// Q3.2 instances with fully random parameters (selectivity 0.02 % - 0.16 %:
/// one customer nation × one supplier nation × a random year sub-range).
std::vector<query::StarQuery> RandomQ32Workload(size_t num_queries,
                                                uint64_t seed);

/// Q3.2 instances drawn uniformly from `distinct_plans` pre-generated
/// parameterizations (the paper's similarity knob). `distinct_plans` == 0
/// means unbounded (fully random).
std::vector<query::StarQuery> SimilarQ32Workload(size_t num_queries,
                                                 size_t distinct_plans,
                                                 uint64_t seed);

/// Modified-Q3.2 instances with ~`selectivity` fact-tuple selectivity
/// (in [1/4375, 1]); nations are sampled distinct per query, keeping
/// similarity minimal (paper §5.2.2).
std::vector<query::StarQuery> SelectivityQ32Workload(size_t num_queries,
                                                     double selectivity,
                                                     uint64_t seed);

/// Chooses (#cust nations, #supp nations, #years) whose product of fractions
/// best approximates `selectivity`; exposed for tests.
struct SelectivityChoice {
  int cust_nations;
  int supp_nations;
  int years;
  double achieved;
};
SelectivityChoice PickSelectivity(double selectivity);

/// Q3.2 variants drawn round-robin from `distinct_shapes` distinct
/// AGGREGATION shapes (group-by subsets of {c_city, s_city, d_year} ×
/// aggregate variants — distinct StarQuery::AggSignature() each), with
/// fully random predicate constants per instance. The shared-aggregation
/// counterpart of the similarity knob: SimilarQ32Workload skews how many
/// distinct *plans* run, this skews how many distinct *aggregation shapes*
/// the GQP must maintain — the axis fig_shared_agg sweeps to show
/// aggregation work scaling with shapes, not query count. `distinct_shapes`
/// is clamped to the 32 available variants; 0 means 1.
std::vector<query::StarQuery> ShapeSkewedQ32Workload(size_t num_queries,
                                                     size_t distinct_shapes,
                                                     uint64_t seed);

/// Similarity-skewed modified-Q3.2 workload for the dynamic query-folding
/// experiments (fig_fold): the first 8 queries are wide "template" instances
/// (6-nation IN-lists on customer and supplier, the full year span — all one
/// aggregation shape); each later query is, with probability
/// `containment_rate`, a narrowed instance of a random template (nation
/// subsets + a year sub-range — provably contained, so query::QuerySubsumes
/// holds against the template and the folding admission pass can subsume it
/// onto the template's slot), and otherwise a fresh independent wide
/// instance.
std::vector<query::StarQuery> FoldableQ32Workload(size_t num_queries,
                                                  double containment_rate,
                                                  uint64_t seed);

/// Same similarity-skewed workload at Q3.1's NATION grain (see
/// MakeQ31Selectivity): identical selections and containment structure, but
/// ~250 output groups per query instead of tens of thousands — per-query
/// slice/render cost stays small relative to the shared scan, the regime
/// where slot capacity (not result materialization) is the bottleneck.
std::vector<query::StarQuery> FoldableQ31Workload(size_t num_queries,
                                                  double containment_rate,
                                                  uint64_t seed);

/// Round-robin mix of Q1.1, Q2.1, Q3.2 with random parameters (Figure 16).
std::vector<query::StarQuery> MixedWorkload(size_t num_queries,
                                            uint64_t seed);

/// `num_queries` identical TPC-H Q1 instances (Figure 6).
std::vector<query::StarQuery> IdenticalQ1Workload(size_t num_queries,
                                                  int delta_days = 90);

}  // namespace sdw::ssb

#endif  // SDW_SSB_WORKLOAD_H_
