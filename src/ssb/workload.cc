#include "ssb/workload.h"

#include <cmath>
#include <set>
#include <string>

#include "common/rng.h"
#include "ssb/ssb_schema.h"

namespace sdw::ssb {

namespace {

Q32Params RandomQ32Params(Rng* rng) {
  Q32Params p;
  p.cust_nation = static_cast<int>(rng->Index(kNumNations));
  p.supp_nation = static_cast<int>(rng->Index(kNumNations));
  const int len = static_cast<int>(rng->Index(kNumYears)) + 1;
  p.year_lo = kFirstYear + static_cast<int>(rng->Index(
                               static_cast<size_t>(kNumYears - len + 1)));
  p.year_hi = p.year_lo + len - 1;
  return p;
}

}  // namespace

std::vector<query::StarQuery> RandomQ32Workload(size_t num_queries,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(MakeQ32(RandomQ32Params(&rng)));
  }
  return queries;
}

std::vector<query::StarQuery> SimilarQ32Workload(size_t num_queries,
                                                 size_t distinct_plans,
                                                 uint64_t seed) {
  if (distinct_plans == 0) return RandomQ32Workload(num_queries, seed);
  Rng rng(seed);
  // Generate `distinct_plans` parameterizations with distinct signatures.
  std::vector<query::StarQuery> plans;
  std::set<std::string> seen;
  while (plans.size() < distinct_plans) {
    query::StarQuery q = MakeQ32(RandomQ32Params(&rng));
    if (seen.insert(q.Signature()).second) {
      plans.push_back(std::move(q));
    }
  }
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(plans[rng.Index(plans.size())]);
  }
  return queries;
}

SelectivityChoice PickSelectivity(double selectivity) {
  SelectivityChoice best{1, 1, 1, 1.0 / (25.0 * 25.0 * 7.0)};
  double best_err = std::fabs(std::log(best.achieved / selectivity));
  for (int kc = 1; kc <= kNumNations; ++kc) {
    for (int ks = 1; ks <= kNumNations; ++ks) {
      for (int y = 1; y <= kNumYears; ++y) {
        const double sel =
            (kc / 25.0) * (ks / 25.0) * (y / static_cast<double>(kNumYears));
        const double err = std::fabs(std::log(sel / selectivity));
        if (err < best_err) {
          best = {kc, ks, y, sel};
          best_err = err;
        }
      }
    }
  }
  return best;
}

std::vector<query::StarQuery> SelectivityQ32Workload(size_t num_queries,
                                                     double selectivity,
                                                     uint64_t seed) {
  Rng rng(seed);
  const SelectivityChoice choice = PickSelectivity(selectivity);
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    Q32SelectivityParams p;
    for (size_t n :
         rng.SampleDistinct(kNumNations,
                            static_cast<size_t>(choice.cust_nations))) {
      p.cust_nations.push_back(static_cast<int>(n));
    }
    for (size_t n :
         rng.SampleDistinct(kNumNations,
                            static_cast<size_t>(choice.supp_nations))) {
      p.supp_nations.push_back(static_cast<int>(n));
    }
    p.year_lo = kFirstYear;
    p.year_hi = kFirstYear + choice.years - 1;
    queries.push_back(MakeQ32Selectivity(p));
  }
  return queries;
}

std::vector<query::StarQuery> MixedWorkload(size_t num_queries,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    switch (i % 3) {
      case 0: {
        Q11Params p;
        p.year = kFirstYear + static_cast<int>(rng.Index(kNumYears));
        p.discount_lo = static_cast<int>(rng.Index(8));
        p.discount_hi = p.discount_lo + 2;
        p.quantity_max = 24 + static_cast<int>(rng.Index(4));
        queries.push_back(MakeQ11(p));
        break;
      }
      case 1: {
        Q21Params p;
        p.mfgr = static_cast<int>(rng.Index(5)) + 1;
        p.category = static_cast<int>(rng.Index(5)) + 1;
        p.supp_region = static_cast<int>(rng.Index(kNumRegions));
        queries.push_back(MakeQ21(p));
        break;
      }
      default:
        queries.push_back(MakeQ32(RandomQ32Params(&rng)));
        break;
    }
  }
  return queries;
}

std::vector<query::StarQuery> IdenticalQ1Workload(size_t num_queries,
                                                  int delta_days) {
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(MakeTpchQ1(delta_days));
  }
  return queries;
}

}  // namespace sdw::ssb
