#include "ssb/workload.h"

#include <cmath>
#include <set>
#include <string>

#include "common/rng.h"
#include "ssb/ssb_schema.h"

namespace sdw::ssb {

namespace {

Q32Params RandomQ32Params(Rng* rng) {
  Q32Params p;
  p.cust_nation = static_cast<int>(rng->Index(kNumNations));
  p.supp_nation = static_cast<int>(rng->Index(kNumNations));
  const int len = static_cast<int>(rng->Index(kNumYears)) + 1;
  p.year_lo = kFirstYear + static_cast<int>(rng->Index(
                               static_cast<size_t>(kNumYears - len + 1)));
  p.year_hi = p.year_lo + len - 1;
  return p;
}

}  // namespace

std::vector<query::StarQuery> RandomQ32Workload(size_t num_queries,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(MakeQ32(RandomQ32Params(&rng)));
  }
  return queries;
}

std::vector<query::StarQuery> SimilarQ32Workload(size_t num_queries,
                                                 size_t distinct_plans,
                                                 uint64_t seed) {
  if (distinct_plans == 0) return RandomQ32Workload(num_queries, seed);
  Rng rng(seed);
  // Generate `distinct_plans` parameterizations with distinct signatures.
  std::vector<query::StarQuery> plans;
  std::set<std::string> seen;
  while (plans.size() < distinct_plans) {
    query::StarQuery q = MakeQ32(RandomQ32Params(&rng));
    if (seen.insert(q.Signature()).second) {
      plans.push_back(std::move(q));
    }
  }
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(plans[rng.Index(plans.size())]);
  }
  return queries;
}

namespace {

// One of 32 distinct aggregation shapes over the Q3.2 join structure:
// bits 0..2 of `shape` select the group-by subset of {c_city, s_city,
// d_year} (0 = global aggregate), bits 3..4 the aggregate variant. The
// join structure (three dimensions, random single-nation / year-range
// predicates) is common to all shapes, so only the aggregation stage
// distinguishes them.
query::StarQuery MakeQ32Shape(size_t shape, const Q32Params& p) {
  using query::AggSpec;
  using query::AtomicPred;
  using query::CompareOp;
  using query::DimJoin;
  using query::Predicate;

  query::StarQuery q;
  q.fact_table = kLineorder;
  const bool group_c = (shape & 1) != 0;
  const bool group_s = (shape & 2) != 0;
  const bool group_y = (shape & 4) != 0;

  Predicate supp_pred;
  supp_pred.And(AtomicPred::Str("s_nation", CompareOp::kEq,
                                std::string(NationName(p.supp_nation))));
  Predicate cust_pred;
  cust_pred.And(AtomicPred::Str("c_nation", CompareOp::kEq,
                                std::string(NationName(p.cust_nation))));
  Predicate date_pred;
  date_pred.And(AtomicPred::Int("d_year", CompareOp::kGe, p.year_lo));
  date_pred.And(AtomicPred::Int("d_year", CompareOp::kLe, p.year_hi));

  std::vector<std::string> supp_payload, cust_payload, date_payload;
  if (group_s) supp_payload.push_back("s_city");
  if (group_c) cust_payload.push_back("c_city");
  if (group_y) date_payload.push_back("d_year");
  q.dims.push_back(DimJoin{kSupplier, "lo_suppkey", "s_suppkey",
                           std::move(supp_pred), std::move(supp_payload)});
  q.dims.push_back(DimJoin{kCustomer, "lo_custkey", "c_custkey",
                           std::move(cust_pred), std::move(cust_payload)});
  q.dims.push_back(DimJoin{kDate, "lo_orderdate", "d_datekey",
                           std::move(date_pred), std::move(date_payload)});
  if (group_c) q.group_by.push_back("c_city");
  if (group_s) q.group_by.push_back("s_city");
  if (group_y) q.group_by.push_back("d_year");

  switch ((shape >> 3) & 3) {
    case 0: {
      AggSpec a;
      a.kind = AggSpec::Kind::kSum;
      a.col_a = "lo_revenue";
      a.out_name = "revenue";
      q.aggregates.push_back(std::move(a));
      break;
    }
    case 1: {
      AggSpec a;
      a.kind = AggSpec::Kind::kCount;
      a.out_name = "orders";
      q.aggregates.push_back(std::move(a));
      break;
    }
    case 2: {
      AggSpec a;
      a.kind = AggSpec::Kind::kSum;
      a.col_a = "lo_revenue";
      a.out_name = "revenue";
      q.aggregates.push_back(std::move(a));
      AggSpec b;
      b.kind = AggSpec::Kind::kCount;
      b.out_name = "orders";
      q.aggregates.push_back(std::move(b));
      break;
    }
    default: {
      AggSpec a;
      a.kind = AggSpec::Kind::kAvg;
      a.col_a = "lo_quantity";
      a.out_name = "avg_qty";
      q.aggregates.push_back(std::move(a));
      break;
    }
  }
  return q;
}

}  // namespace

std::vector<query::StarQuery> ShapeSkewedQ32Workload(size_t num_queries,
                                                     size_t distinct_shapes,
                                                     uint64_t seed) {
  constexpr size_t kShapes = 32;
  if (distinct_shapes == 0) distinct_shapes = 1;
  if (distinct_shapes > kShapes) distinct_shapes = kShapes;
  Rng rng(seed);
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    // Round-robin over the shapes (even skew); constants fully random, so
    // instances of one shape are distinct queries sharing one AggSignature.
    queries.push_back(MakeQ32Shape(i % distinct_shapes, RandomQ32Params(&rng)));
  }
  return queries;
}

SelectivityChoice PickSelectivity(double selectivity) {
  SelectivityChoice best{1, 1, 1, 1.0 / (25.0 * 25.0 * 7.0)};
  double best_err = std::fabs(std::log(best.achieved / selectivity));
  for (int kc = 1; kc <= kNumNations; ++kc) {
    for (int ks = 1; ks <= kNumNations; ++ks) {
      for (int y = 1; y <= kNumYears; ++y) {
        const double sel =
            (kc / 25.0) * (ks / 25.0) * (y / static_cast<double>(kNumYears));
        const double err = std::fabs(std::log(sel / selectivity));
        if (err < best_err) {
          best = {kc, ks, y, sel};
          best_err = err;
        }
      }
    }
  }
  return best;
}

std::vector<query::StarQuery> SelectivityQ32Workload(size_t num_queries,
                                                     double selectivity,
                                                     uint64_t seed) {
  Rng rng(seed);
  const SelectivityChoice choice = PickSelectivity(selectivity);
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    Q32SelectivityParams p;
    for (size_t n :
         rng.SampleDistinct(kNumNations,
                            static_cast<size_t>(choice.cust_nations))) {
      p.cust_nations.push_back(static_cast<int>(n));
    }
    for (size_t n :
         rng.SampleDistinct(kNumNations,
                            static_cast<size_t>(choice.supp_nations))) {
      p.supp_nations.push_back(static_cast<int>(n));
    }
    p.year_lo = kFirstYear;
    p.year_hi = kFirstYear + choice.years - 1;
    queries.push_back(MakeQ32Selectivity(p));
  }
  return queries;
}

namespace {

std::vector<query::StarQuery> FoldableQ3Workload(
    size_t num_queries, double containment_rate, uint64_t seed,
    query::StarQuery (*make)(const Q32SelectivityParams&)) {
  constexpr size_t kTemplates = 8;
  constexpr size_t kTemplateNations = 6;
  Rng rng(seed);
  auto wide = [&rng] {
    Q32SelectivityParams p;
    for (size_t n : rng.SampleDistinct(kNumNations, kTemplateNations)) {
      p.cust_nations.push_back(static_cast<int>(n));
    }
    for (size_t n : rng.SampleDistinct(kNumNations, kTemplateNations)) {
      p.supp_nations.push_back(static_cast<int>(n));
    }
    p.year_lo = kFirstYear;
    p.year_hi = kFirstYear + kNumYears - 1;
    return p;
  };
  // A narrowed instance of `host`: nation subsets and a year sub-range are
  // exactly the forms query::PredicateContains proves (IN-list subset and
  // interval inclusion), so the instance is fold-eligible onto the host.
  auto narrowed = [&rng](const Q32SelectivityParams& host) {
    Q32SelectivityParams p;
    const size_t nc = 1 + rng.Index(host.cust_nations.size());
    for (size_t i : rng.SampleDistinct(host.cust_nations.size(), nc)) {
      p.cust_nations.push_back(host.cust_nations[i]);
    }
    const size_t ns = 1 + rng.Index(host.supp_nations.size());
    for (size_t i : rng.SampleDistinct(host.supp_nations.size(), ns)) {
      p.supp_nations.push_back(host.supp_nations[i]);
    }
    const int span = host.year_hi - host.year_lo + 1;
    const int len = 1 + static_cast<int>(rng.Index(static_cast<size_t>(span)));
    p.year_lo = host.year_lo +
                static_cast<int>(rng.Index(static_cast<size_t>(span - len + 1)));
    p.year_hi = p.year_lo + len - 1;
    return p;
  };
  std::vector<Q32SelectivityParams> templates;
  templates.reserve(kTemplates);
  for (size_t t = 0; t < kTemplates; ++t) templates.push_back(wide());
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    if (i < templates.size()) {
      queries.push_back(make(templates[i]));
    } else if (rng.Bernoulli(containment_rate)) {
      queries.push_back(make(narrowed(templates[rng.Index(templates.size())])));
    } else {
      queries.push_back(make(wide()));
    }
  }
  return queries;
}

}  // namespace

std::vector<query::StarQuery> FoldableQ32Workload(size_t num_queries,
                                                  double containment_rate,
                                                  uint64_t seed) {
  return FoldableQ3Workload(num_queries, containment_rate, seed,
                            &MakeQ32Selectivity);
}

std::vector<query::StarQuery> FoldableQ31Workload(size_t num_queries,
                                                  double containment_rate,
                                                  uint64_t seed) {
  return FoldableQ3Workload(num_queries, containment_rate, seed,
                            &MakeQ31Selectivity);
}

std::vector<query::StarQuery> MixedWorkload(size_t num_queries,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    switch (i % 3) {
      case 0: {
        Q11Params p;
        p.year = kFirstYear + static_cast<int>(rng.Index(kNumYears));
        p.discount_lo = static_cast<int>(rng.Index(8));
        p.discount_hi = p.discount_lo + 2;
        p.quantity_max = 24 + static_cast<int>(rng.Index(4));
        queries.push_back(MakeQ11(p));
        break;
      }
      case 1: {
        Q21Params p;
        p.mfgr = static_cast<int>(rng.Index(5)) + 1;
        p.category = static_cast<int>(rng.Index(5)) + 1;
        p.supp_region = static_cast<int>(rng.Index(kNumRegions));
        queries.push_back(MakeQ21(p));
        break;
      }
      default:
        queries.push_back(MakeQ32(RandomQ32Params(&rng)));
        break;
    }
  }
  return queries;
}

std::vector<query::StarQuery> IdenticalQ1Workload(size_t num_queries,
                                                  int delta_days) {
  std::vector<query::StarQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(MakeTpchQ1(delta_days));
  }
  return queries;
}

}  // namespace sdw::ssb
