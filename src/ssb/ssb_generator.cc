#include "ssb/ssb_generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/rng.h"
#include "common/str_util.h"
#include "ssb/ssb_schema.h"

namespace sdw::ssb {

namespace {

constexpr std::array<const char*, 5> kPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"};
constexpr std::array<const char*, 7> kShipModes = {
    "REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
constexpr std::array<const char*, 5> kSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};
constexpr std::array<const char*, 11> kColors = {
    "almond", "antique", "aquamarine", "azure", "beige", "bisque",
    "black",  "blanched", "blue",      "blush", "brown"};
constexpr std::array<const char*, 7> kContainers = {
    "SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP BAG"};
constexpr std::array<const char*, 5> kTypes = {
    "STANDARD POLISHED", "SMALL PLATED", "MEDIUM BURNISHED", "ECONOMY BRUSHED",
    "PROMO ANODIZED"};
constexpr std::array<const char*, 12> kMonthNames = {
    "January", "February", "March",     "April",   "May",      "June",
    "July",    "August",   "September", "October", "November", "December"};
constexpr std::array<const char*, 7> kDayNames = {
    "Wednesday", "Thursday", "Friday", "Saturday",
    "Sunday",    "Monday",   "Tuesday"};  // 1992-01-01 was a Wednesday

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month /*1..12*/) {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeap(year)) return 29;
  return kDays[month - 1];
}

struct CalendarDay {
  int year;
  int month;  // 1..12
  int day;    // 1..31
  int day_of_year;
};

CalendarDay DayFromIndex(int day_idx) {
  int year = kFirstYear;
  int remaining = day_idx;
  while (true) {
    const int ydays = IsLeap(year) ? 366 : 365;
    if (remaining < ydays) break;
    remaining -= ydays;
    ++year;
  }
  const int day_of_year = remaining + 1;
  int month = 1;
  while (remaining >= DaysInMonth(year, month)) {
    remaining -= DaysInMonth(year, month);
    ++month;
  }
  return {year, month, remaining + 1, day_of_year};
}

}  // namespace

int32_t DateKeyOfDay(int day_idx) {
  const CalendarDay d = DayFromIndex(day_idx);
  return d.year * 10000 + d.month * 100 + d.day;
}

size_t SsbLineorderRows(double sf) {
  return std::max<size_t>(1000, static_cast<size_t>(6000000.0 * sf));
}
size_t SsbCustomerRows(double sf) {
  return std::max<size_t>(50, static_cast<size_t>(30000.0 * sf));
}
size_t SsbSupplierRows(double sf) {
  return std::max<size_t>(25, static_cast<size_t>(2000.0 * sf));
}
size_t SsbPartRows(double sf) {
  if (sf >= 1.0) {
    return static_cast<size_t>(
        200000.0 * (1.0 + std::floor(std::log2(sf))));
  }
  return std::max<size_t>(200, static_cast<size_t>(200000.0 * sf));
}
size_t SsbDateRows() { return kCalendarDays; }
size_t TpchLineitemRows(double sf) {
  return std::max<size_t>(1000, static_cast<size_t>(6000000.0 * sf));
}

namespace {

void BuildDate(storage::Catalog* catalog) {
  auto table = std::make_unique<storage::Table>(kDate, DateSchema());
  const storage::Schema& s = table->schema();
  for (int i = 0; i < kCalendarDays; ++i) {
    const CalendarDay d = DayFromIndex(i);
    std::byte* t = table->AppendRow();
    const int dow = i % 7;  // 0 = Wednesday
    s.SetInt32(t, 0, DateKeyOfDay(i));
    s.SetChar(t, 1, StrPrintf("%s %d, %d", kMonthNames[d.month - 1], d.day,
                              d.year));
    s.SetChar(t, 2, kDayNames[dow]);
    s.SetChar(t, 3, kMonthNames[d.month - 1]);
    s.SetInt32(t, 4, d.year);
    s.SetInt32(t, 5, d.year * 100 + d.month);
    s.SetChar(t, 6, StrPrintf("%.3s%d", kMonthNames[d.month - 1], d.year));
    s.SetInt32(t, 7, dow + 1);
    s.SetInt32(t, 8, d.day);
    s.SetInt32(t, 9, d.day_of_year);
    s.SetInt32(t, 10, d.month);
    s.SetInt32(t, 11, (d.day_of_year - 1) / 7 + 1);
    const bool winter = d.month == 12 || d.month <= 2;
    const bool summer = d.month >= 6 && d.month <= 8;
    s.SetChar(t, 12, winter ? "Winter" : (summer ? "Summer" : "Shoulder"));
    s.SetInt32(t, 13, dow == 6 ? 1 : 0);
    s.SetInt32(t, 14, d.day == DaysInMonth(d.year, d.month) ? 1 : 0);
    s.SetInt32(t, 15, (d.month == 12 && d.day == 25) ? 1 : 0);
    s.SetInt32(t, 16, (dow >= 4 || dow == 0) ? 0 : 1);
  }
  catalog->AddTable(std::move(table));
}

void BuildCustomer(storage::Catalog* catalog, double sf, Rng* rng) {
  auto table = std::make_unique<storage::Table>(kCustomer, CustomerSchema());
  const storage::Schema& s = table->schema();
  const size_t n = SsbCustomerRows(sf);
  for (size_t i = 0; i < n; ++i) {
    std::byte* t = table->AppendRow();
    const int nation = static_cast<int>(rng->Index(kNumNations));
    const int city = static_cast<int>(rng->Index(kCitiesPerNation));
    s.SetInt32(t, 0, static_cast<int32_t>(i + 1));
    s.SetChar(t, 1, StrPrintf("Customer#%09zu", i + 1));
    s.SetChar(t, 2, StrPrintf("ADDR-%zu", rng->Index(1000000)));
    s.SetChar(t, 3, CityName(nation, city));
    s.SetChar(t, 4, NationName(nation));
    s.SetChar(t, 5, RegionName(NationRegion(nation)));
    s.SetChar(t, 6, StrPrintf("%02d-%03d-%03d-%04d", 10 + nation,
                              static_cast<int>(rng->Index(900) + 100),
                              static_cast<int>(rng->Index(900) + 100),
                              static_cast<int>(rng->Index(9000) + 1000)));
    s.SetChar(t, 7, kSegments[rng->Index(kSegments.size())]);
  }
  catalog->AddTable(std::move(table));
}

void BuildSupplier(storage::Catalog* catalog, double sf, Rng* rng) {
  auto table = std::make_unique<storage::Table>(kSupplier, SupplierSchema());
  const storage::Schema& s = table->schema();
  const size_t n = SsbSupplierRows(sf);
  for (size_t i = 0; i < n; ++i) {
    std::byte* t = table->AppendRow();
    const int nation = static_cast<int>(rng->Index(kNumNations));
    const int city = static_cast<int>(rng->Index(kCitiesPerNation));
    s.SetInt32(t, 0, static_cast<int32_t>(i + 1));
    s.SetChar(t, 1, StrPrintf("Supplier#%09zu", i + 1));
    s.SetChar(t, 2, StrPrintf("ADDR-%zu", rng->Index(1000000)));
    s.SetChar(t, 3, CityName(nation, city));
    s.SetChar(t, 4, NationName(nation));
    s.SetChar(t, 5, RegionName(NationRegion(nation)));
    s.SetChar(t, 6, StrPrintf("%02d-%03d-%03d-%04d", 10 + nation,
                              static_cast<int>(rng->Index(900) + 100),
                              static_cast<int>(rng->Index(900) + 100),
                              static_cast<int>(rng->Index(9000) + 1000)));
  }
  catalog->AddTable(std::move(table));
}

void BuildPart(storage::Catalog* catalog, double sf, Rng* rng) {
  auto table = std::make_unique<storage::Table>(kPart, PartSchema());
  const storage::Schema& s = table->schema();
  const size_t n = SsbPartRows(sf);
  for (size_t i = 0; i < n; ++i) {
    std::byte* t = table->AppendRow();
    const int mfgr = static_cast<int>(rng->Index(5)) + 1;
    const int cat = static_cast<int>(rng->Index(5)) + 1;
    const int brand = static_cast<int>(rng->Index(40)) + 1;
    s.SetInt32(t, 0, static_cast<int32_t>(i + 1));
    s.SetChar(t, 1, StrPrintf("part-%zu", i + 1));
    s.SetChar(t, 2, StrPrintf("MFGR#%d", mfgr));
    s.SetChar(t, 3, StrPrintf("MFGR#%d%d", mfgr, cat));
    s.SetChar(t, 4, StrPrintf("MFGR#%d%d%d", mfgr, cat, brand));
    s.SetChar(t, 5, kColors[rng->Index(kColors.size())]);
    s.SetChar(t, 6, kTypes[rng->Index(kTypes.size())]);
    s.SetInt32(t, 7, static_cast<int32_t>(rng->Index(50)) + 1);
    s.SetChar(t, 8, kContainers[rng->Index(kContainers.size())]);
  }
  catalog->AddTable(std::move(table));
}

void BuildLineorder(storage::Catalog* catalog, double sf, Rng* rng) {
  auto table = std::make_unique<storage::Table>(kLineorder, LineorderSchema());
  const storage::Schema& s = table->schema();
  const size_t n = SsbLineorderRows(sf);
  const auto customers = static_cast<int32_t>(SsbCustomerRows(sf));
  const auto suppliers = static_cast<int32_t>(SsbSupplierRows(sf));
  const auto parts = static_cast<int32_t>(SsbPartRows(sf));

  int64_t orderkey = 0;
  int32_t line = 0;
  int32_t lines_in_order = 0;
  int64_t ordtotal = 0;
  int32_t order_date = 0;
  int32_t order_cust = 0;
  for (size_t i = 0; i < n; ++i) {
    if (line >= lines_in_order) {
      ++orderkey;
      line = 0;
      lines_in_order = static_cast<int32_t>(rng->Index(7)) + 1;
      ordtotal = 0;
      order_date = DateKeyOfDay(static_cast<int>(rng->Index(kCalendarDays)));
      order_cust = static_cast<int32_t>(rng->Index(customers)) + 1;
    }
    ++line;
    std::byte* t = table->AppendRow();
    const int32_t quantity = static_cast<int32_t>(rng->Index(50)) + 1;
    const int64_t price = rng->Uniform(90000, 10494950) / 100 * 100;
    const int32_t discount = static_cast<int32_t>(rng->Index(11));
    const int32_t tax = static_cast<int32_t>(rng->Index(9));
    const int64_t revenue = price * (100 - discount) / 100;
    ordtotal += price;
    s.SetInt64(t, 0, orderkey);
    s.SetInt32(t, 1, line);
    s.SetInt32(t, 2, order_cust);
    s.SetInt32(t, 3, static_cast<int32_t>(rng->Index(parts)) + 1);
    s.SetInt32(t, 4, static_cast<int32_t>(rng->Index(suppliers)) + 1);
    s.SetInt32(t, 5, order_date);
    s.SetChar(t, 6, kPriorities[rng->Index(kPriorities.size())]);
    s.SetInt32(t, 7, 0);
    s.SetInt32(t, 8, quantity);
    s.SetInt64(t, 9, price);
    s.SetInt64(t, 10, ordtotal);
    s.SetInt32(t, 11, discount);
    s.SetInt64(t, 12, revenue);
    s.SetInt64(t, 13, price * 6 / 10);
    s.SetInt32(t, 14, tax);
    s.SetInt32(t, 15,
               DateKeyOfDay(static_cast<int>(rng->Index(kCalendarDays))));
    s.SetChar(t, 16, kShipModes[rng->Index(kShipModes.size())]);
  }
  catalog->AddTable(std::move(table));
}

}  // namespace

void BuildSsbDatabase(storage::Catalog* catalog, const SsbOptions& options) {
  Rng rng(options.seed);
  BuildDate(catalog);
  BuildCustomer(catalog, options.scale_factor, &rng);
  BuildSupplier(catalog, options.scale_factor, &rng);
  BuildPart(catalog, options.scale_factor, &rng);
  BuildLineorder(catalog, options.scale_factor, &rng);
}

void BuildTpchQ1Database(storage::Catalog* catalog,
                         const TpchOptions& options) {
  Rng rng(options.seed);
  auto table = std::make_unique<storage::Table>(kLineitem, LineitemSchema());
  const storage::Schema& s = table->schema();
  const size_t n = TpchLineitemRows(options.scale_factor);
  for (size_t i = 0; i < n; ++i) {
    std::byte* t = table->AppendRow();
    const int32_t quantity = static_cast<int32_t>(rng.Index(50)) + 1;
    const double price = static_cast<double>(rng.Uniform(90100, 10500000)) / 100.0;
    const double discount = static_cast<double>(rng.Index(11)) / 100.0;
    const double tax = static_cast<double>(rng.Index(9)) / 100.0;
    const int32_t shipdate = static_cast<int32_t>(rng.Index(kCalendarDays));
    // TPC-H: returnflag correlates with receipt date; approximate with the
    // ship date so the Q1 groups have realistic shares.
    const char* rf = shipdate < kCalendarDays / 2
                         ? (rng.Bernoulli(0.5) ? "A" : "R")
                         : "N";
    const char* ls = shipdate < kCalendarDays * 2 / 3 ? "F" : "O";
    s.SetInt32(t, 0, quantity);
    s.SetDouble(t, 1, price);
    s.SetDouble(t, 2, discount);
    s.SetDouble(t, 3, tax);
    s.SetChar(t, 4, rf);
    s.SetChar(t, 5, ls);
    s.SetInt32(t, 6, shipdate);
  }
  catalog->AddTable(std::move(table));
}

}  // namespace sdw::ssb
