#include "ssb/ssb_queries.h"

#include <string>

#include "common/macros.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_schema.h"

namespace sdw::ssb {

using query::AggSpec;
using query::AtomicPred;
using query::CompareOp;
using query::DimJoin;
using query::Predicate;
using query::StarQuery;

namespace {

Predicate NationAnyOf(const std::string& column,
                      const std::vector<int>& nations) {
  SDW_CHECK(!nations.empty());
  std::vector<AtomicPred> clause;
  clause.reserve(nations.size());
  for (int n : nations) {
    clause.push_back(
        AtomicPred::Str(column, CompareOp::kEq, std::string(NationName(n))));
  }
  Predicate p;
  p.AndAnyOf(std::move(clause));
  return p;
}

Predicate YearRange(int lo, int hi) {
  Predicate p;
  p.And(AtomicPred::Int("d_year", CompareOp::kGe, lo));
  p.And(AtomicPred::Int("d_year", CompareOp::kLe, hi));
  return p;
}

StarQuery Q3Common(Predicate cust_pred, Predicate supp_pred, int year_lo,
                   int year_hi, bool nation_grain) {
  StarQuery q;
  q.fact_table = kLineorder;
  const char* supp_col = nation_grain ? "s_nation" : "s_city";
  const char* cust_col = nation_grain ? "c_nation" : "c_city";
  // Join order per the paper's Figure 9: supplier, customer, date.
  q.dims.push_back(DimJoin{kSupplier, "lo_suppkey", "s_suppkey",
                           std::move(supp_pred), {supp_col}});
  q.dims.push_back(DimJoin{kCustomer, "lo_custkey", "c_custkey",
                           std::move(cust_pred), {cust_col}});
  q.dims.push_back(DimJoin{kDate, "lo_orderdate", "d_datekey",
                           YearRange(year_lo, year_hi), {"d_year"}});
  q.group_by = {cust_col, supp_col, "d_year"};
  AggSpec revenue;
  revenue.kind = AggSpec::Kind::kSum;
  revenue.col_a = "lo_revenue";
  revenue.out_name = "revenue";
  q.aggregates.push_back(std::move(revenue));
  q.order_by = {{"d_year", true}, {"revenue", false}};
  return q;
}

StarQuery Q32Common(Predicate cust_pred, Predicate supp_pred, int year_lo,
                    int year_hi) {
  return Q3Common(std::move(cust_pred), std::move(supp_pred), year_lo,
                  year_hi, /*nation_grain=*/false);
}

}  // namespace

StarQuery MakeQ32(const Q32Params& p) {
  return Q32Common(NationAnyOf("c_nation", {p.cust_nation}),
                   NationAnyOf("s_nation", {p.supp_nation}), p.year_lo,
                   p.year_hi);
}

StarQuery MakeQ32Selectivity(const Q32SelectivityParams& p) {
  return Q32Common(NationAnyOf("c_nation", p.cust_nations),
                   NationAnyOf("s_nation", p.supp_nations), p.year_lo,
                   p.year_hi);
}

StarQuery MakeQ31Selectivity(const Q32SelectivityParams& p) {
  return Q3Common(NationAnyOf("c_nation", p.cust_nations),
                  NationAnyOf("s_nation", p.supp_nations), p.year_lo,
                  p.year_hi, /*nation_grain=*/true);
}

StarQuery MakeQ11(const Q11Params& p) {
  StarQuery q;
  q.fact_table = kLineorder;
  Predicate date_pred;
  date_pred.And(AtomicPred::Int("d_year", CompareOp::kEq, p.year));
  q.dims.push_back(
      DimJoin{kDate, "lo_orderdate", "d_datekey", std::move(date_pred), {}});
  q.fact_pred.And(
      AtomicPred::Int("lo_discount", CompareOp::kGe, p.discount_lo));
  q.fact_pred.And(
      AtomicPred::Int("lo_discount", CompareOp::kLe, p.discount_hi));
  q.fact_pred.And(
      AtomicPred::Int("lo_quantity", CompareOp::kLt, p.quantity_max));
  AggSpec revenue;
  revenue.kind = AggSpec::Kind::kSumProduct;
  revenue.col_a = "lo_extendedprice";
  revenue.col_b = "lo_discount";
  revenue.out_name = "revenue";
  q.aggregates.push_back(std::move(revenue));
  return q;
}

StarQuery MakeQ21(const Q21Params& p) {
  StarQuery q;
  q.fact_table = kLineorder;
  Predicate part_pred;
  char category[8];
  std::snprintf(category, sizeof(category), "MFGR#%d%d", p.mfgr, p.category);
  part_pred.And(AtomicPred::Str("p_category", CompareOp::kEq, category));
  Predicate supp_pred;
  supp_pred.And(AtomicPred::Str("s_region", CompareOp::kEq,
                                std::string(RegionName(p.supp_region))));
  q.dims.push_back(DimJoin{kPart, "lo_partkey", "p_partkey",
                           std::move(part_pred), {"p_brand1"}});
  q.dims.push_back(DimJoin{kSupplier, "lo_suppkey", "s_suppkey",
                           std::move(supp_pred), {}});
  q.dims.push_back(
      DimJoin{kDate, "lo_orderdate", "d_datekey", Predicate::True(),
              {"d_year"}});
  q.group_by = {"d_year", "p_brand1"};
  AggSpec revenue;
  revenue.kind = AggSpec::Kind::kSum;
  revenue.col_a = "lo_revenue";
  revenue.out_name = "revenue";
  q.aggregates.push_back(std::move(revenue));
  q.order_by = {{"d_year", true}, {"p_brand1", true}};
  return q;
}

StarQuery MakeTpchQ1(int delta_days) {
  StarQuery q;
  q.fact_table = kLineitem;
  q.fact_pred.And(AtomicPred::Int("l_shipdate", CompareOp::kLe,
                                  kCalendarDays - delta_days));
  q.group_by = {"l_returnflag", "l_linestatus"};
  auto add = [&q](AggSpec::Kind kind, const char* a, const char* b,
                  const char* c, const char* out) {
    AggSpec spec;
    spec.kind = kind;
    if (a != nullptr) spec.col_a = a;
    if (b != nullptr) spec.col_b = b;
    if (c != nullptr) spec.col_c = c;
    spec.out_name = out;
    q.aggregates.push_back(std::move(spec));
  };
  add(AggSpec::Kind::kSum, "l_quantity", nullptr, nullptr, "sum_qty");
  add(AggSpec::Kind::kSum, "l_extendedprice", nullptr, nullptr,
      "sum_base_price");
  add(AggSpec::Kind::kSumDiscPrice, "l_extendedprice", "l_discount", nullptr,
      "sum_disc_price");
  add(AggSpec::Kind::kSumCharge, "l_extendedprice", "l_discount", "l_tax",
      "sum_charge");
  add(AggSpec::Kind::kAvg, "l_quantity", nullptr, nullptr, "avg_qty");
  add(AggSpec::Kind::kAvg, "l_extendedprice", nullptr, nullptr, "avg_price");
  add(AggSpec::Kind::kAvg, "l_discount", nullptr, nullptr, "avg_disc");
  add(AggSpec::Kind::kCount, nullptr, nullptr, nullptr, "count_order");
  q.order_by = {{"l_returnflag", true}, {"l_linestatus", true}};
  return q;
}

}  // namespace sdw::ssb
