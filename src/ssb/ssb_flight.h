// The complete Star Schema Benchmark query flight (O'Neil et al.): all 13
// queries across the four flights. The paper's evaluation uses Q1.1, Q2.1
// and Q3.2 (ssb_queries.h); a production workload substrate ships the full
// flight, and the test suite verifies every query against the oracle on all
// engine configurations.

#ifndef SDW_SSB_SSB_FLIGHT_H_
#define SDW_SSB_SSB_FLIGHT_H_

#include <vector>

#include "query/star_query.h"
#include "ssb/ssb_queries.h"

namespace sdw::ssb {

// -- Flight 1: revenue effect of discount/quantity windows (1 join). --

/// Q1.2: one month, discount 4-6, quantity 26-35.
query::StarQuery MakeQ12(int yearmonthnum = 199401);
/// Q1.3: one week of one year, discount 5-7, quantity 26-35.
query::StarQuery MakeQ13(int week = 6, int year = 1994);

// -- Flight 2: revenue by brand over time (3 joins). --

/// Q2.2: a brand range within a supplier region.
query::StarQuery MakeQ22(int mfgr = 2, int category = 2, int brand_lo = 21,
                         int brand_hi = 28, int supp_region = 2 /*ASIA*/);
/// Q2.3: one brand, one supplier region.
query::StarQuery MakeQ23(int mfgr = 2, int category = 2, int brand = 39,
                         int supp_region = 3 /*EUROPE*/);

// -- Flight 3: revenue by customer/supplier geography over time. --

/// Q3.1: region-level, years 1992-1997, group by nations.
query::StarQuery MakeQ31(int region = 2 /*ASIA*/, int year_lo = 1992,
                         int year_hi = 1997);
/// Q3.3: two cities on each side, group by cities.
query::StarQuery MakeQ33(int nation_c = 23, int nation_s = 23,
                         int year_lo = 1992, int year_hi = 1997);
/// Q3.4: like Q3.3 restricted to one month.
query::StarQuery MakeQ34(int nation_c = 23, int nation_s = 23,
                         int yearmonthnum = 199712);

// -- Flight 4: profit (revenue - supply cost) drill-down (4 joins). --

/// Q4.1: profit by year and customer nation within two regions.
query::StarQuery MakeQ41(int cust_region = 1 /*AMERICA*/,
                         int supp_region = 1 /*AMERICA*/);
/// Q4.2: two years, profit by year, supplier nation, part category.
query::StarQuery MakeQ42(int cust_region = 1, int supp_region = 1,
                         int year_a = 1997, int year_b = 1998);
/// Q4.3: one supplier nation and part category, profit by city and brand.
query::StarQuery MakeQ43(int cust_region = 1, int supp_nation = 24,
                         int mfgr = 1, int category = 4, int year_a = 1997,
                         int year_b = 1998);

/// All 13 SSB queries with their specification-default parameters.
std::vector<query::StarQuery> FullFlight();

/// `num_queries` instances drawn round-robin over the 13 templates with
/// randomized parameters (a broader cousin of MixedWorkload).
std::vector<query::StarQuery> FullFlightWorkload(size_t num_queries,
                                                 uint64_t seed);

}  // namespace sdw::ssb

#endif  // SDW_SSB_SSB_FLIGHT_H_
