// Star Schema Benchmark (O'Neil et al.) and TPC-H Q1 table schemas, plus the
// nation/region vocabulary the generators and query templates share.

#ifndef SDW_SSB_SSB_SCHEMA_H_
#define SDW_SSB_SSB_SCHEMA_H_

#include <array>
#include <string>
#include <string_view>

#include "storage/schema.h"

namespace sdw::ssb {

// Table names.
inline constexpr const char* kLineorder = "lineorder";
inline constexpr const char* kCustomer = "customer";
inline constexpr const char* kSupplier = "supplier";
inline constexpr const char* kPart = "part";
inline constexpr const char* kDate = "date";
inline constexpr const char* kLineitem = "lineitem";  // TPC-H, for Q1

/// Number of distinct nations (TPC-H vocabulary); SSB selectivities in the
/// paper are expressed as fractions of 25 (e.g. 2/25 * 3/25 ≈ 1 %).
inline constexpr int kNumNations = 25;
inline constexpr int kNumRegions = 5;
/// Cities per nation ("<9-char nation prefix><digit>").
inline constexpr int kCitiesPerNation = 10;

/// SSB date dimension covers exactly the 7 years 1992..1998.
inline constexpr int kFirstYear = 1992;
inline constexpr int kLastYear = 1998;
inline constexpr int kNumYears = 7;

/// Nation name by index [0, 25).
std::string_view NationName(int nation);
/// Region name by index [0, 5).
std::string_view RegionName(int region);
/// Region index of a nation index.
int NationRegion(int nation);
/// City name `c` in [0, 10) of a nation.
std::string CityName(int nation, int c);

// Schema factories.
storage::Schema LineorderSchema();
storage::Schema CustomerSchema();
storage::Schema SupplierSchema();
storage::Schema PartSchema();
storage::Schema DateSchema();
/// TPC-H lineitem restricted to the columns Q1 touches.
storage::Schema LineitemSchema();

}  // namespace sdw::ssb

#endif  // SDW_SSB_SSB_SCHEMA_H_
