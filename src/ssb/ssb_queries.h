// SSB and TPC-H query templates used by the paper's evaluation:
//  * SSB Q3.2 (the sensitivity-analysis workhorse, Figure 9),
//  * the modified Q3.2 with nation disjunctions for the selectivity sweeps,
//  * SSB Q1.1 and Q2.1 (the Figure 16 query mix),
//  * TPC-H Q1 (the SPL-vs-FIFO experiment of Figure 6).

#ifndef SDW_SSB_SSB_QUERIES_H_
#define SDW_SSB_SSB_QUERIES_H_

#include <vector>

#include "query/star_query.h"

namespace sdw::ssb {

/// SSB Q3.2: revenue by (c_city, s_city, d_year) for one customer nation, one
/// supplier nation and a year range.
struct Q32Params {
  int cust_nation = 23;   // UNITED KINGDOM
  int supp_nation = 24;   // UNITED STATES
  int year_lo = 1992;
  int year_hi = 1997;
};
query::StarQuery MakeQ32(const Q32Params& p);

/// Modified Q3.2 (paper §5.2.2): disjunctions of distinct nations widen fact
/// selectivity to (|cust| / 25) · (|supp| / 25) · (years / 7).
struct Q32SelectivityParams {
  std::vector<int> cust_nations;
  std::vector<int> supp_nations;
  int year_lo = 1992;
  int year_hi = 1998;
};
query::StarQuery MakeQ32Selectivity(const Q32SelectivityParams& p);

/// Q3.1-grain sibling of MakeQ32Selectivity: identical selections (nation
/// IN-lists, year range), but grouped at NATION grain (c_nation, s_nation,
/// d_year) like SSB Q3.1 — ~250 output groups instead of Q3.2's tens of
/// thousands of city pairs, so per-query result work stays small relative
/// to the shared scan.
query::StarQuery MakeQ31Selectivity(const Q32SelectivityParams& p);

/// SSB Q1.1: revenue effect of discount changes in one year.
struct Q11Params {
  int year = 1993;
  int discount_lo = 1;
  int discount_hi = 3;
  int quantity_max = 25;  // lo_quantity < quantity_max
};
query::StarQuery MakeQ11(const Q11Params& p);

/// SSB Q2.1: revenue by (d_year, p_brand1) for one part category and one
/// supplier region.
struct Q21Params {
  int mfgr = 1;      // p_category = MFGR#<mfgr><category>
  int category = 2;
  int supp_region = 1;  // AMERICA
};
query::StarQuery MakeQ21(const Q21Params& p);

/// TPC-H Q1 over lineitem: pricing summary report with ship-date cutoff
/// `kCalendarDays - delta_days` (delta in [60, 120] per the TPC-H spec).
query::StarQuery MakeTpchQ1(int delta_days = 90);

}  // namespace sdw::ssb

#endif  // SDW_SSB_SSB_QUERIES_H_
