// Deterministic data generators for the Star Schema Benchmark and the TPC-H
// lineitem table (for the paper's TPC-H Q1 experiment).
//
// Cardinalities follow the SSB specification, scaled by a (possibly
// fractional) scale factor so that laptop-scale experiments keep the paper's
// ratios: lineorder ≈ 6,000,000·sf, customer = 30,000·sf, supplier =
// 2,000·sf, part ≈ 200,000·(1+log2(sf)) for sf ≥ 1, date fixed at 2,556 days
// (1992-01-01 .. 1998-12-31). Distributions of the attributes the paper's
// predicates touch are uniform, giving the selectivities the paper quotes
// (k/25 per nation disjunct, y/7 per year of range).

#ifndef SDW_SSB_SSB_GENERATOR_H_
#define SDW_SSB_SSB_GENERATOR_H_

#include <cstdint>

#include "storage/catalog.h"

namespace sdw::ssb {

/// SSB generation parameters.
struct SsbOptions {
  double scale_factor = 0.1;
  uint64_t seed = 42;
};

/// Populates `catalog` with the five SSB tables.
void BuildSsbDatabase(storage::Catalog* catalog, const SsbOptions& options);

/// TPC-H lineitem generation parameters (Q1 touches only lineitem).
struct TpchOptions {
  double scale_factor = 0.05;
  uint64_t seed = 7;
};

/// Populates `catalog` with the lineitem table.
void BuildTpchQ1Database(storage::Catalog* catalog,
                         const TpchOptions& options);

/// Expected row counts for a scale factor (exposed for tests).
size_t SsbLineorderRows(double sf);
size_t SsbCustomerRows(double sf);
size_t SsbSupplierRows(double sf);
size_t SsbPartRows(double sf);
size_t SsbDateRows();
size_t TpchLineitemRows(double sf);

/// Number of days in the SSB calendar (and thus valid l_shipdate range).
inline constexpr int kCalendarDays = 2556;

/// yyyymmdd datekey of calendar day `day_idx` in [0, kCalendarDays).
int32_t DateKeyOfDay(int day_idx);

}  // namespace sdw::ssb

#endif  // SDW_SSB_SSB_GENERATOR_H_
