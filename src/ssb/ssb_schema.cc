#include "ssb/ssb_schema.h"

#include "common/macros.h"

namespace sdw::ssb {

namespace {

struct NationInfo {
  std::string_view name;
  int region;
};

// TPC-H nation list with its region assignment.
// Regions: 0=AFRICA 1=AMERICA 2=ASIA 3=EUROPE 4=MIDDLE EAST.
constexpr std::array<NationInfo, 25> kNations = {{
    {"ALGERIA", 0},    {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},     {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},     {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},  {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},      {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},    {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},      {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},    {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},
}};

constexpr std::array<std::string_view, 5> kRegions = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

}  // namespace

std::string_view NationName(int nation) {
  SDW_CHECK(nation >= 0 && nation < kNumNations);
  return kNations[static_cast<size_t>(nation)].name;
}

std::string_view RegionName(int region) {
  SDW_CHECK(region >= 0 && region < kNumRegions);
  return kRegions[static_cast<size_t>(region)];
}

int NationRegion(int nation) {
  SDW_CHECK(nation >= 0 && nation < kNumNations);
  return kNations[static_cast<size_t>(nation)].region;
}

std::string CityName(int nation, int c) {
  SDW_CHECK(c >= 0 && c < kCitiesPerNation);
  // SSB: first 9 characters of the nation, space padded, plus a digit.
  std::string prefix(NationName(nation).substr(0, 9));
  prefix.resize(9, ' ');
  return prefix + static_cast<char>('0' + c);
}

storage::Schema LineorderSchema() {
  using S = storage::Schema;
  return storage::Schema({
      S::Int64("lo_orderkey"),
      S::Int32("lo_linenumber"),
      S::Int32("lo_custkey"),
      S::Int32("lo_partkey"),
      S::Int32("lo_suppkey"),
      S::Int32("lo_orderdate"),  // d_datekey (yyyymmdd)
      S::Char("lo_orderpriority", 15),
      S::Int32("lo_shippriority"),
      S::Int32("lo_quantity"),
      S::Int64("lo_extendedprice"),
      S::Int64("lo_ordtotalprice"),
      S::Int32("lo_discount"),
      S::Int64("lo_revenue"),
      S::Int64("lo_supplycost"),
      S::Int32("lo_tax"),
      S::Int32("lo_commitdate"),
      S::Char("lo_shipmode", 10),
  });
}

storage::Schema CustomerSchema() {
  using S = storage::Schema;
  return storage::Schema({
      S::Int32("c_custkey"),
      S::Char("c_name", 25),
      S::Char("c_address", 25),
      S::Char("c_city", 10),
      S::Char("c_nation", 15),
      S::Char("c_region", 12),
      S::Char("c_phone", 15),
      S::Char("c_mktsegment", 10),
  });
}

storage::Schema SupplierSchema() {
  using S = storage::Schema;
  return storage::Schema({
      S::Int32("s_suppkey"),
      S::Char("s_name", 25),
      S::Char("s_address", 25),
      S::Char("s_city", 10),
      S::Char("s_nation", 15),
      S::Char("s_region", 12),
      S::Char("s_phone", 15),
  });
}

storage::Schema PartSchema() {
  using S = storage::Schema;
  return storage::Schema({
      S::Int32("p_partkey"),
      S::Char("p_name", 22),
      S::Char("p_mfgr", 6),
      S::Char("p_category", 7),
      S::Char("p_brand1", 9),
      S::Char("p_color", 11),
      S::Char("p_type", 25),
      S::Int32("p_size"),
      S::Char("p_container", 10),
  });
}

storage::Schema DateSchema() {
  using S = storage::Schema;
  return storage::Schema({
      S::Int32("d_datekey"),  // yyyymmdd
      S::Char("d_date", 18),
      S::Char("d_dayofweek", 9),
      S::Char("d_month", 9),
      S::Int32("d_year"),
      S::Int32("d_yearmonthnum"),
      S::Char("d_yearmonth", 7),
      S::Int32("d_daynuminweek"),
      S::Int32("d_daynuminmonth"),
      S::Int32("d_daynuminyear"),
      S::Int32("d_monthnuminyear"),
      S::Int32("d_weeknuminyear"),
      S::Char("d_sellingseason", 12),
      S::Int32("d_lastdayinweekfl"),
      S::Int32("d_lastdayinmonthfl"),
      S::Int32("d_holidayfl"),
      S::Int32("d_weekdayfl"),
  });
}

storage::Schema LineitemSchema() {
  using S = storage::Schema;
  return storage::Schema({
      S::Int32("l_quantity"),
      S::Double("l_extendedprice"),
      S::Double("l_discount"),
      S::Double("l_tax"),
      S::Char("l_returnflag", 1),
      S::Char("l_linestatus", 1),
      S::Int32("l_shipdate"),  // day index from 1992-01-01
  });
}

}  // namespace sdw::ssb
