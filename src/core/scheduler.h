// The unified scheduling subsystem: one place that decides *which* pending
// query gets admitted and *which* queued task runs next, everywhere work
// queues up in the system.
//
// When operators are shared across concurrent queries (the paper's premise),
// scheduling one piece of work schedules many queries at once, so the same
// policy must act consistently at every queue or a single FIFO hop ruins the
// priority a client asked for. The Scheduler threads one policy through:
//
//   * ThreadPool run queues (common/run_queue.h) — QPipe stage dispatch and
//     result-sink drains pop by effective priority, with FIFO fairness
//     within a level and aging against starvation;
//   * shared-packet priority inheritance — a host packet's queue entry
//     re-evaluates the max priority of its attached consumers (SpRegistry)
//     at pop time, so a satellite attaching at high priority boosts the
//     host it shares;
//   * CJOIN admission — the pending queue is ordered by (priority, arrival)
//     at every admission pause, so scarce query slots go to the highest
//     bidder instead of the longest waiter;
//   * deadlines — every deadline ticket is registered with the hierarchical
//     timer wheel (common/timer_wheel.h), which fires
//     RequestCancel(kDeadlineExceeded) within one tick of expiry: a drain
//     blocked in Next() is unblocked through the cancel hook instead of
//     waiting for a page that may never come.
//
// One Scheduler is owned per core::Engine (tests may share one across
// engines); `priority_enabled = false` degrades every queue to the seed's
// FIFO, which is the bench baseline for bench/fig_priority_mix.

#ifndef SDW_CORE_SCHEDULER_H_
#define SDW_CORE_SCHEDULER_H_

#include <memory>

#include "common/macros.h"
#include "common/run_queue.h"
#include "common/timer_wheel.h"
#include "core/query_ticket.h"

namespace sdw::core {

/// Policy knobs for one Scheduler instance.
struct SchedulerOptions {
  /// Master switch: false = seed FIFO ordering everywhere (deadline firing
  /// stays on — FIFO vs. priority is a policy choice, a hung deadline is a
  /// bug).
  bool priority_enabled = true;
  /// Run-queue aging: nanoseconds queued per effective priority level
  /// gained (0 disables). See common/run_queue.h.
  int64_t aging_nanos = 20'000'000;
  /// Timer-wheel resolution for deadline enforcement.
  int64_t tick_nanos = 1'000'000;
};

/// Per-engine scheduling service (see file comment). Thread-safe.
class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = SchedulerOptions());

  SDW_DISALLOW_COPY(Scheduler);

  const SchedulerOptions& options() const { return options_; }

  /// Ordering policy handed to every run queue this scheduler governs.
  RunQueueOptions run_queue_options() const {
    return RunQueueOptions{options_.priority_enabled, options_.aging_nanos};
  }

  /// The deadline service.
  TimerWheel& wheel() { return *wheel_; }

  /// Arms the wheel to fire RequestCancel(kDeadlineExceeded) at the query's
  /// deadline. A no-op for queries without one. The watch holds only a
  /// weak_ptr; a query that finishes first makes the expiry a no-op
  /// (RequestCancel after Finish does nothing).
  void WatchDeadline(const std::shared_ptr<QueryLifecycle>& life);

  /// The submit-time priority of a query (0 for untracked work).
  static int PriorityOf(const QueryLifecycle* life) {
    return life != nullptr ? life->options().priority : 0;
  }

 private:
  const SchedulerOptions options_;
  std::unique_ptr<TimerWheel> wheel_;
};

}  // namespace sdw::core

#endif  // SDW_CORE_SCHEDULER_H_
