// Producer/consumer endpoints for page-based data flow between operators.
//
// Two transports implement these interfaces:
//  * qpipe::FifoBuffer — the classic bounded single-producer/single-consumer
//    FIFO of QPipe's push-only model; during SP the producer *copies* result
//    pages into every satellite's FIFO (the serialization point the paper
//    identifies);
//  * core::SharedPagesList — the paper's pull-based single-producer/
//    multi-consumer list; satellites read the one list independently and the
//    producer does no forwarding work at all.

#ifndef SDW_CORE_PAGE_CHANNEL_H_
#define SDW_CORE_PAGE_CHANNEL_H_

#include "common/status.h"
#include "storage/page.h"

namespace sdw::core {

/// Consumer endpoint of a page stream.
class PageSource {
 public:
  virtual ~PageSource() = default;

  /// Blocks for the next page; nullptr signals end of stream.
  virtual storage::PagePtr Next() = 0;

  /// Abandons the stream: releases everything unread so the producer is
  /// never blocked on this consumer again. Idempotent.
  virtual void CancelReader() = 0;

  /// Why the stream ended. A nullptr from Next() means clean end-of-stream
  /// only while status() stays OK; a fault-isolating producer (the shared
  /// circular scan) reports the failure here so consumers don't drain a
  /// truncated stream as a complete result.
  virtual Status status() const { return Status::Ok(); }
};

/// Producer endpoint of a page stream.
class PageSink {
 public:
  virtual ~PageSink() = default;

  /// Publishes a page; blocks while the transport is at capacity. Returns
  /// false when no consumer remains (the producer should stop).
  virtual bool Put(storage::PagePtr page) = 0;

  /// Ends the stream. Idempotent.
  virtual void Close() = 0;

  /// True once every consumer has cancelled — the producer's non-blocking
  /// cancellation check point. Unlike waiting for a failed Put, this lets a
  /// producer that is consuming (building, aggregating, sorting) or emitting
  /// nothing (fully filtered) observe downstream cancellation at page
  /// granularity. Transports without consumer tracking report false.
  virtual bool Abandoned() const { return false; }
};

/// Communication model for SP result sharing (paper §4).
enum class CommModel {
  kPush,  // FIFO buffers; host forwards copies to satellites
  kPull,  // shared pages lists; satellites pull from one list
};

inline const char* CommModelName(CommModel m) {
  return m == CommModel::kPush ? "push/FIFO" : "pull/SPL";
}

}  // namespace sdw::core

#endif  // SDW_CORE_PAGE_CHANNEL_H_
