// CJOIN as a QPipe stage (paper §3.2-3.3).
//
// Installed as the QpipeEngine's join delegate, the stage routes every join
// sub-plan to the shared CJOIN pipeline instead of query-centric join
// packets. With SP enabled, identical star queries (same dimensions,
// predicates and projection — equal join-sub-plan signatures) are detected
// with a step WoP: only one CJOIN packet enters the pipeline and satellites
// reuse its output, avoiding the redundant admission, bitmap and bitwise-AND
// costs the paper enumerates in §3.1.

#ifndef SDW_CORE_CJOIN_STAGE_H_
#define SDW_CORE_CJOIN_STAGE_H_

#include <atomic>
#include <memory>

#include "cjoin/pipeline.h"
#include "qpipe/engine.h"

namespace sdw::core {

/// Bridges the QPipe engine to the CJOIN pipeline.
class CjoinStage {
 public:
  /// `sp_enabled` turns on SP over CJOIN packets (the CJOIN-SP config).
  CjoinStage(cjoin::CjoinPipeline* pipeline, CommModel comm,
             size_t channel_bytes, bool sp_enabled)
      : pipeline_(pipeline),
        comm_(comm),
        channel_bytes_(channel_bytes),
        sp_enabled_(sp_enabled) {}

  SDW_DISALLOW_COPY(CjoinStage);

  /// The join delegate to install on the QpipeEngine.
  qpipe::QpipeEngine::JoinDelegate MakeDelegate();

  /// The aggregate delegate (EngineOptions::shared_aggregation): routes
  /// whole aggregate-over-join sub-plans into the pipeline, which folds
  /// same-shape queries onto one shared aggregation group. With SP enabled,
  /// byte-identical aggregate sub-plans (equal signatures, constants
  /// included) additionally share one CJOIN packet outright.
  qpipe::QpipeEngine::AggDelegate MakeAggDelegate();

  /// Hands all staged submissions to the pipeline as one admission batch;
  /// installed as the QpipeEngine's batch-flush hook.
  void FlushStaged();

  /// Satellite attachments to CJOIN packets (the paper's "CJOIN packets
  /// shared N times" measurements).
  uint64_t shares() const { return shares_.load(std::memory_order_relaxed); }
  void ResetShares() { shares_.store(0, std::memory_order_relaxed); }

  /// Admission epochs flushed into the pipeline: non-empty staged batches,
  /// each costing one pipeline pause (and, with batched admission, one scan
  /// per referenced dimension) regardless of how many queries it carried.
  uint64_t admission_epochs() const { return epochs_.value(); }

  cjoin::CjoinPipeline* pipeline() const { return pipeline_; }

 private:
  /// Common delegate body: MakeDelegate stages join-output submissions,
  /// MakeAggDelegate the same submissions with the aggregate flag set (the
  /// sub-plan root's out_schema is then the aggregation output schema).
  qpipe::QpipeEngine::JoinDelegate MakeSubplanDelegate(bool aggregate);

  cjoin::CjoinPipeline* pipeline_;
  const CommModel comm_;
  const size_t channel_bytes_;
  const bool sp_enabled_;

  qpipe::SpRegistry registry_;
  std::atomic<uint64_t> shares_{0};
  sdw::Counter epochs_;

  // Only ever wraps the vector push/swap; never another acquisition.
  Mutex staged_mu_{lock_rank::Rank::kCjoinStage};
  std::vector<cjoin::CjoinPipeline::Submission> staged_ GUARDED_BY(staged_mu_);
};

}  // namespace sdw::core

#endif  // SDW_CORE_CJOIN_STAGE_H_
