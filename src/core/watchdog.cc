#include "core/watchdog.h"

#include <string>

#include "common/mutex.h"
#include "common/timing.h"

namespace sdw::core {

struct StallWatchdog::State {
  TimerWheel* wheel;
  Options options;
  std::function<uint64_t()> progress;
  std::function<bool()> busy;
  std::function<void(const Status&)> on_stall;

  // Everything below is guarded by mu. The probes and the stall hook are
  // invoked under it too: the destructor sets `stop` under the same lock, so
  // once it holds mu no callback can still be touching the probed objects —
  // that is the "nothing runs after ~StallWatchdog" guarantee.
  // Bottom of the lock hierarchy: ticks call progress()/busy()/on_stall()
  // and re-Schedule while holding mu, reaching pipeline and wheel locks.
  Mutex mu{lock_rank::Rank::kWatchdog};
  bool stop GUARDED_BY(mu) = false;
  uint64_t timer_id GUARDED_BY(mu) = 0;
  uint64_t last_progress GUARDED_BY(mu) = 0;
  int64_t flat_since_nanos GUARDED_BY(mu) = 0;  // 0 = progressing (or idle)
  uint64_t stalls_fired GUARDED_BY(mu) = 0;
};

StallWatchdog::StallWatchdog(TimerWheel* wheel, Options options,
                             std::function<uint64_t()> progress,
                             std::function<bool()> busy,
                             std::function<void(const Status&)> on_stall)
    : state_(std::make_shared<State>()) {
  SDW_CHECK(options.check_interval_nanos > 0 && options.stall_nanos > 0);
  state_->wheel = wheel;
  state_->options = options;
  state_->progress = std::move(progress);
  state_->busy = std::move(busy);
  state_->on_stall = std::move(on_stall);
  std::weak_ptr<State> weak = state_;
  MutexLock lock(state_->mu);
  state_->last_progress = state_->progress();
  state_->timer_id =
      wheel->Schedule(NowNanos() + options.check_interval_nanos,
                      [weak] { Tick(weak); });
}

StallWatchdog::~StallWatchdog() {
  uint64_t id;
  {
    MutexLock lock(state_->mu);
    state_->stop = true;
    id = state_->timer_id;
  }
  state_->wheel->Cancel(id);
  // A tick already collected as due may still run: it locks state->mu, sees
  // stop, and returns without touching the probes. The weak_ptr it captured
  // keeps State alive for exactly that check.
}

uint64_t StallWatchdog::stalls_fired() const {
  MutexLock lock(state_->mu);
  return state_->stalls_fired;
}

void StallWatchdog::Tick(const std::weak_ptr<State>& weak) {
  std::shared_ptr<State> s = weak.lock();
  if (s == nullptr) return;
  MutexLock lock(s->mu);
  if (s->stop) return;
  const int64_t now = NowNanos();
  const uint64_t p = s->progress();
  if (!s->busy() || p != s->last_progress) {
    s->last_progress = p;
    s->flat_since_nanos = 0;
  } else if (s->flat_since_nanos == 0) {
    s->flat_since_nanos = now;
  } else if (now - s->flat_since_nanos >= s->options.stall_nanos) {
    ++s->stalls_fired;
    const int64_t flat_ms = (now - s->flat_since_nanos) / 1'000'000;
    s->flat_since_nanos = 0;  // re-arm: one firing per stall episode
    s->on_stall(Status::DeadlineExceeded(
        "stall watchdog: pipeline busy with no progress for " +
        std::to_string(flat_ms) + " ms"));
  }
  s->timer_id = s->wheel->Schedule(now + s->options.check_interval_nanos,
                                   [weak] { Tick(weak); });
}

}  // namespace sdw::core
