#include "core/shared_pages_list.h"

namespace sdw::core {

SharedPagesList::~SharedPagesList() {
  // Contract: readers never outlive the list (exchanges pair every reader
  // with shared ownership of the list).
  SDW_CHECK(active_readers_ == 0 || closed_ || true);
}

std::unique_ptr<SharedPagesList::Reader>
SharedPagesList::TryAttachFromStart() {
  MutexLock lock(mu_);
  if (closed_ || next_seq_ != 0) return nullptr;  // WoP closed
  ++active_readers_;
  attached_ever_ = true;
  return std::unique_ptr<Reader>(new Reader(this, 0));
}

std::unique_ptr<SharedPagesList::Reader> SharedPagesList::AttachAtCurrent() {
  MutexLock lock(mu_);
  if (closed_) return nullptr;
  ++active_readers_;
  attached_ever_ = true;
  return std::unique_ptr<Reader>(new Reader(this, next_seq_));
}

bool SharedPagesList::Put(storage::PagePtr page) {
  MutexLock lock(mu_);
  SDW_CHECK_MSG(!closed_, "Put after Close on SPL");
  while (max_bytes_ > 0 && bytes_ + storage::kPageSize > max_bytes_ &&
         active_readers_ != 0) {
    producer_cv_.Wait(mu_);
  }
  if (active_readers_ == 0) return false;
  nodes_.push_back(
      {std::move(page), next_seq_++, static_cast<int>(active_readers_)});
  bytes_ += storage::kPageSize;
  consumer_cv_.NotifyAll();
  return true;
}

void SharedPagesList::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  consumer_cv_.NotifyAll();
}

bool SharedPagesList::Abandoned() const {
  MutexLock lock(mu_);
  // attached_ever_ distinguishes "all readers cancelled" from "no reader
  // attached yet" — the latter must not look abandoned.
  return attached_ever_ && active_readers_ == 0;
}

bool SharedPagesList::NothingEmitted() const {
  MutexLock lock(mu_);
  return !closed_ && next_seq_ == 0;
}

size_t SharedPagesList::buffered_bytes() const {
  MutexLock lock(mu_);
  return bytes_;
}

size_t SharedPagesList::num_active_readers() const {
  MutexLock lock(mu_);
  return active_readers_;
}

uint64_t SharedPagesList::pages_emitted() const {
  MutexLock lock(mu_);
  return next_seq_;
}

void SharedPagesList::ReleaseLocked(std::list<Node>::iterator it) {
  --it->remaining;
  SDW_DCHECK(it->remaining >= 0);
}

void SharedPagesList::PopReclaimedLocked() {
  bool reclaimed = false;
  while (!nodes_.empty() && nodes_.front().remaining == 0) {
    bytes_ -= storage::kPageSize;
    nodes_.pop_front();
    reclaimed = true;
  }
  if (reclaimed) producer_cv_.NotifyAll();
}

storage::PagePtr SharedPagesList::Reader::Next() {
  SharedPagesList* l = list_;
  MutexLock lock(l->mu_);
  if (cancelled_) return nullptr;
  if (holds_prev_) {
    l->ReleaseLocked(prev_);
    holds_prev_ = false;
    l->PopReclaimedLocked();
  }
  while (!l->closed_ &&
         (l->nodes_.empty() || l->nodes_.back().seq < next_seq_)) {
    l->consumer_cv_.Wait(l->mu_);
  }
  // Locate the node with seq == next_seq_ (nodes are seq-ordered and the
  // list is short — bounded by max_bytes / page size).
  for (auto it = l->nodes_.begin(); it != l->nodes_.end(); ++it) {
    if (it->seq == next_seq_) {
      prev_ = it;
      holds_prev_ = true;
      ++next_seq_;
      return it->page;
    }
  }
  // Closed and the next page will never arrive: end of stream.
  SDW_DCHECK(l->closed_);
  return nullptr;
}

void SharedPagesList::Reader::CancelReader() {
  SharedPagesList* l = list_;
  MutexLock lock(l->mu_);
  if (cancelled_) return;
  cancelled_ = true;
  if (holds_prev_) {
    l->ReleaseLocked(prev_);
    holds_prev_ = false;
  }
  for (auto it = l->nodes_.begin(); it != l->nodes_.end(); ++it) {
    if (it->seq >= next_seq_) l->ReleaseLocked(it);
  }
  SDW_DCHECK(l->active_readers_ > 0);
  --l->active_readers_;
  l->PopReclaimedLocked();
  l->producer_cv_.NotifyAll();
}

}  // namespace sdw::core
