#include "core/cjoin_stage.h"

namespace sdw::core {

namespace {

/// Adapts an Exchange's sink to shared ownership for the pipeline: the
/// exchange must outlive the CJOIN query, which holds this handle.
class ExchangeSinkHolder : public PageSink {
 public:
  explicit ExchangeSinkHolder(std::shared_ptr<qpipe::Exchange> ex)
      : ex_(std::move(ex)) {}

  bool Put(storage::PagePtr page) override {
    return ex_->sink()->Put(std::move(page));
  }
  void Close() override { ex_->sink()->Close(); }

 private:
  std::shared_ptr<qpipe::Exchange> ex_;
};

}  // namespace

qpipe::QpipeEngine::JoinDelegate CjoinStage::MakeDelegate() {
  return MakeSubplanDelegate(/*aggregate=*/false);
}

qpipe::QpipeEngine::AggDelegate CjoinStage::MakeAggDelegate() {
  return MakeSubplanDelegate(/*aggregate=*/true);
}

qpipe::QpipeEngine::JoinDelegate CjoinStage::MakeSubplanDelegate(
    bool aggregate) {
  return [this, aggregate](qpipe::QueryContext* ctx,
                           const query::PlanNode* sub_root,
                           std::vector<std::function<void()>>* deferred)
             -> std::unique_ptr<PageSource> {
    const std::string& sig = sub_root->signature;

    // SP over CJOIN packets: step WoP on the packet's output exchange. The
    // satellite's lifecycle is recorded against the host, so the packet
    // retires early only when EVERY consumer detaches.
    if (sp_enabled_) {
      if (auto src = registry_.TryAttach(sig, ctx->life)) {
        shares_.fetch_add(1, std::memory_order_relaxed);
        ctx->life->MarkRunStart();  // scheduled with the host's packet
        return src;
      }
    }

    std::shared_ptr<qpipe::Exchange> ex =
        qpipe::MakeExchange(comm_, channel_bytes_);
    auto primary = ex->OpenPrimaryReader();
    if (sp_enabled_) registry_.Register(sig, ex, ctx->life);

    // Defer the pipeline submission to the dispatch phase so that every
    // satellite in the batch attaches before the GQP starts producing; the
    // deferred step only *stages* the submission — FlushStaged (the engine's
    // batch-flush hook) hands the whole batch to the pipeline at once, so
    // it lands in a single admission pause (paper §3.2).
    const query::StarQuery q = ctx->query;
    const storage::Schema out_schema = sub_root->out_schema;
    std::shared_ptr<QueryLifecycle> life = ctx->life;
    deferred->push_back([this, aggregate, q, out_schema, ex, sig, life] {
      cjoin::CjoinPipeline::Submission sub;
      sub.q = q;
      sub.aggregate = aggregate;
      sub.out_schema = out_schema;
      sub.sink = std::make_shared<ExchangeSinkHolder>(ex);
      sub.life = life;
      if (sp_enabled_) {
        // Detach-on-host-cancel: the shared packet serves every attached
        // query, so the pipeline's cancel signal is "all consumers
        // detached", not the host's own lifecycle — a cancelled host
        // merely stops reading while satellites keep the slot alive.
        sub.cancelled = [this, sig, ex] {
          return registry_.AllConsumersDetached(sig, ex.get());
        };
        // Priority inheritance at admission: the shared packet bids with
        // the max priority over its attached consumers, evaluated at the
        // admission pause — a high-priority satellite boosts the host.
        const int base =
            life != nullptr ? life->options().priority : 0;
        sub.priority_fn = [this, sig, ex, base] {
          return registry_.MaxConsumerPriority(sig, ex.get(), base);
        };
        sub.on_complete = [this, sig, ex](const Status& s) {
          // A failed/rejected shared packet must fail every consumer — a
          // satellite draining the truncated stream as success would report
          // an empty result as kOk. The removal and the consumer failure
          // must be one atomic registry operation, or a satellite attaching
          // between them (the WoP is still open: nothing was emitted and
          // the sink closes only after this hook returns) slips past both.
          if (!s.ok()) {
            registry_.UnregisterAborted(sig, ex.get(), s);
          } else {
            registry_.Unregister(sig, ex.get());
          }
        };
      }
      MutexLock lock(staged_mu_);
      staged_.push_back(std::move(sub));
    });
    return primary;
  };
}

void CjoinStage::FlushStaged() {
  std::vector<cjoin::CjoinPipeline::Submission> batch;
  {
    MutexLock lock(staged_mu_);
    batch.swap(staged_);
  }
  if (batch.empty()) return;
  epochs_.Add(1);
  pipeline_->SubmitMany(std::move(batch));
}

}  // namespace sdw::core
