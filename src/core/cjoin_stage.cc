#include "core/cjoin_stage.h"

namespace sdw::core {

namespace {

/// Adapts an Exchange's sink to shared ownership for the pipeline: the
/// exchange must outlive the CJOIN query, which holds this handle.
class ExchangeSinkHolder : public PageSink {
 public:
  explicit ExchangeSinkHolder(std::shared_ptr<qpipe::Exchange> ex)
      : ex_(std::move(ex)) {}

  bool Put(storage::PagePtr page) override {
    return ex_->sink()->Put(std::move(page));
  }
  void Close() override { ex_->sink()->Close(); }

 private:
  std::shared_ptr<qpipe::Exchange> ex_;
};

}  // namespace

qpipe::QpipeEngine::JoinDelegate CjoinStage::MakeDelegate() {
  return [this](qpipe::QueryContext* ctx, const query::PlanNode* join_root,
                std::vector<std::function<void()>>* deferred)
             -> std::unique_ptr<PageSource> {
    const std::string& sig = join_root->signature;

    // SP over CJOIN packets: step WoP on the packet's output exchange.
    if (sp_enabled_) {
      if (auto src = registry_.TryAttach(sig)) {
        shares_.fetch_add(1, std::memory_order_relaxed);
        return src;
      }
    }

    std::shared_ptr<qpipe::Exchange> ex =
        qpipe::MakeExchange(comm_, channel_bytes_);
    auto primary = ex->OpenPrimaryReader();
    if (sp_enabled_) registry_.Register(sig, ex);

    // Defer the pipeline submission to the dispatch phase so that every
    // satellite in the batch attaches before the GQP starts producing; the
    // deferred step only *stages* the submission — FlushStaged (the engine's
    // batch-flush hook) hands the whole batch to the pipeline at once, so
    // it lands in a single admission pause (paper §3.2).
    const query::StarQuery q = ctx->query;
    const storage::Schema out_schema = join_root->out_schema;
    deferred->push_back([this, q, out_schema, ex, sig] {
      cjoin::CjoinPipeline::Submission sub;
      sub.q = q;
      sub.out_schema = out_schema;
      sub.sink = std::make_shared<ExchangeSinkHolder>(ex);
      if (sp_enabled_) {
        sub.on_complete = [this, sig, ex] {
          registry_.Unregister(sig, ex.get());
        };
      }
      std::unique_lock<std::mutex> lock(staged_mu_);
      staged_.push_back(std::move(sub));
    });
    return primary;
  };
}

void CjoinStage::FlushStaged() {
  std::vector<cjoin::CjoinPipeline::Submission> batch;
  {
    std::unique_lock<std::mutex> lock(staged_mu_);
    batch.swap(staged_);
  }
  if (batch.empty()) return;
  epochs_.Add(1);
  pipeline_->SubmitMany(std::move(batch));
}

}  // namespace sdw::core
