#include "core/scheduler.h"

namespace sdw::core {

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {
  TimerWheel::Options wopts;
  wopts.tick_nanos = options_.tick_nanos;
  wheel_ = std::make_unique<TimerWheel>(wopts);
}

void Scheduler::WatchDeadline(const std::shared_ptr<QueryLifecycle>& life) {
  if (life == nullptr || life->deadline_nanos() == 0) return;
  std::weak_ptr<QueryLifecycle> weak = life;
  const uint64_t id = wheel_->Schedule(life->deadline_nanos(), [weak] {
    if (auto l = weak.lock()) {
      // First-wins with Finish: a query that completed in time ignores this.
      l->RequestCancel(
          Status::DeadlineExceeded("deadline fired by the timer wheel"));
    }
  });
  // Disarm at completion: a query finishing ahead of its deadline must not
  // leave a stale wheel entry ticking (and firing a useless cancel) until
  // the deadline passes — deadline-heavy closed loops would otherwise
  // accumulate rate × deadline of them. The wheel outlives every watched
  // lifecycle's terminal transition (engines WaitAll before tearing down),
  // and a post-fire Cancel is a harmless no-op.
  Scheduler* self = this;
  life->SetFinishHook([self, id] { self->wheel_->Cancel(id); });
}

}  // namespace sdw::core
