#include "core/query_ticket.h"

#include <chrono>

#include "common/timing.h"

namespace sdw::core {

Status QueryLifecycle::Wait() const {
  MutexLock lock(mu_);
  while (!done_.load(std::memory_order_acquire)) cv_.Wait(mu_);
  return final_status_;
}

bool QueryLifecycle::WaitFor(int64_t timeout_nanos) const {
  MutexLock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(timeout_nanos);
  while (!done_.load(std::memory_order_acquire)) {
    if (!cv_.WaitUntil(mu_, deadline)) {
      return done_.load(std::memory_order_acquire);
    }
  }
  return true;
}

Status QueryLifecycle::status() const {
  MutexLock lock(mu_);
  if (!done_.load(std::memory_order_acquire)) return Status::Ok();
  return final_status_;
}

void QueryLifecycle::RequestCancel(Status reason) {
  std::function<void()> cb;
  {
    MutexLock lock(mu_);
    if (!cancel_.load(std::memory_order_relaxed)) {
      cancel_reason_ = std::move(reason);
      cancel_.store(true, std::memory_order_release);
    }
    cb = cancel_cb_;  // fire outside mu_: the hook takes transport locks
  }
  if (cb) cb();
}

bool QueryLifecycle::Finish(Status final_status) {
  std::function<void()> dropped;
  std::function<void()> finish_hook;
  {
    MutexLock lock(mu_);
    if (done_.load(std::memory_order_relaxed)) return false;
    final_status_ = std::move(final_status);
    metrics_.finish_nanos = NowNanos();
    dropped = std::move(cancel_cb_);  // release the hook's resources
    cancel_cb_ = nullptr;
    finish_hook = std::move(finish_hook_);
    finish_hook_ = nullptr;
    done_.store(true, std::memory_order_release);
  }
  cv_.NotifyAll();
  if (finish_hook) finish_hook();  // outside mu_: takes the wheel's lock
  return true;
}

void QueryLifecycle::SetFinishHook(std::function<void()> hook) {
  bool fire_now = false;
  {
    MutexLock lock(mu_);
    if (done_.load(std::memory_order_relaxed)) {
      fire_now = true;
    } else {
      finish_hook_ = std::move(hook);
    }
  }
  if (fire_now && hook) hook();
}

void QueryLifecycle::SetCancelCallback(std::function<void()> cb) {
  bool fire_now = false;
  {
    MutexLock lock(mu_);
    if (done_.load(std::memory_order_relaxed)) return;
    if (cancel_.load(std::memory_order_relaxed)) {
      fire_now = true;
    } else {
      cancel_cb_ = std::move(cb);
    }
  }
  if (fire_now && cb) cb();
}

bool QueryLifecycle::ShouldStop(Status* why) const {
  if (cancel_requested()) {
    *why = cancel_status();
    return true;
  }
  if (options_.deadline_nanos != 0 && NowNanos() > options_.deadline_nanos) {
    *why = Status::DeadlineExceeded("deadline expired while draining results");
    return true;
  }
  return false;
}

Status QueryLifecycle::cancel_status() const {
  MutexLock lock(mu_);
  if (cancel_.load(std::memory_order_relaxed)) return cancel_reason_;
  return Status::Cancelled("query detached");
}

void QueryLifecycle::MarkRunStart() {
  int64_t expected = 0;
  run_start_.compare_exchange_strong(expected, NowNanos(),
                                     std::memory_order_relaxed);
}

QueryMetrics QueryLifecycle::metrics() const {
  QueryMetrics m;
  {
    MutexLock lock(mu_);
    m = metrics_;
  }
  m.run_start_nanos = run_start_.load(std::memory_order_relaxed);
  m.pages_read = pages_.load(std::memory_order_relaxed);
  m.rows = rows_.load(std::memory_order_relaxed);
  m.fully_shared = fully_shared_.load(std::memory_order_relaxed);
  m.admission_epoch = admission_epoch_.load(std::memory_order_relaxed);
  return m;
}

Result<const query::ResultSet*> QueryTicket::TryResult() const {
  if (!life()->done()) {
    return Status::FailedPrecondition("query still running");
  }
  const Status s = life()->status();
  if (!s.ok()) return s;
  return static_cast<const query::ResultSet*>(&life()->result());
}

const query::ResultSet& QueryTicket::result() const {
  const auto r = TryResult();
  SDW_CHECK_MSG(r.ok(), "QueryTicket::result on %s",
                r.status().ToString().c_str());
  return *r.value();
}

Status WaitAllTickets(const std::vector<QueryTicket>& tickets) {
  Status first = Status::Ok();
  for (const auto& t : tickets) {
    const Status s = t.Wait();
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

}  // namespace sdw::core
