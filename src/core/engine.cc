#include "core/engine.h"

namespace sdw::core {

const char* EngineConfigName(EngineConfig config) {
  switch (config) {
    case EngineConfig::kQpipe:
      return "QPipe";
    case EngineConfig::kQpipeCs:
      return "QPipe-CS";
    case EngineConfig::kQpipeSp:
      return "QPipe-SP";
    case EngineConfig::kCjoin:
      return "CJOIN";
    case EngineConfig::kCjoinSp:
      return "CJOIN-SP";
  }
  return "?";
}

Engine::Engine(const storage::Catalog* catalog, storage::BufferPool* pool,
               EngineOptions options)
    : options_(std::move(options)) {
  const bool use_cjoin = options_.config == EngineConfig::kCjoin ||
                         options_.config == EngineConfig::kCjoinSp;

  scheduler_ = std::make_unique<Scheduler>(options_.sched);

  if (options_.columnar_pages) {
    // Rebuild the fact table's pages in the PAX layout before any stage
    // (QPipe scans or the GQP's circular scan) captures page pointers.
    // Idempotent, so engines sharing a catalog may all request it.
    catalog->MustGetTable(options_.fact_table)->ConvertToColumnar();
  }

  qpipe::QpipeOptions qopts;
  qopts.comm = options_.comm;
  qopts.channel_bytes = options_.channel_bytes;
  qopts.sp_agg = options_.sp_agg;
  qopts.sp_sort = options_.sp_sort;
  qopts.scheduler = scheduler_.get();
  qopts.stage_max_workers = options_.stage_max_workers;
  switch (options_.config) {
    case EngineConfig::kQpipe:
      break;
    case EngineConfig::kQpipeCs:
      qopts.sp_scan = true;
      break;
    case EngineConfig::kQpipeSp:
      qopts.sp_scan = true;
      qopts.sp_join = true;
      break;
    case EngineConfig::kCjoin:
    case EngineConfig::kCjoinSp:
      // Joins handled by the GQP; the scan stage serves only join-free
      // queries. I/O sharing for the fact table lives in the preprocessor's
      // circular scan (paper Table 2).
      break;
  }
  qpipe_ = std::make_unique<qpipe::QpipeEngine>(catalog, pool, qopts);

  if (use_cjoin) {
    const storage::Table* fact = catalog->MustGetTable(options_.fact_table);
    cjoin::CjoinOptions copts = options_.cjoin;
    copts.shared_aggregation = options_.shared_aggregation;
    copts.query_folding = options_.query_folding;
    // One policy everywhere: the scheduler's FIFO switch also turns off
    // priority-ordered admission in the GQP — while still honoring a
    // caller who disabled only the CJOIN knob.
    copts.priority_admission =
        options_.sched.priority_enabled && options_.cjoin.priority_admission;
    if (options_.resilience.memory_budget_bytes > 0) {
      memory_budget_ =
          std::make_unique<MemoryBudget>(options_.resilience.memory_budget_bytes);
      copts.memory_budget = memory_budget_.get();
      copts.overload_retry_after_nanos =
          options_.resilience.overload_retry_after_nanos;
    }
    pipeline_ = std::make_unique<cjoin::CjoinPipeline>(catalog, pool, fact,
                                                       copts);
    if (options_.resilience.scan_stall_nanos > 0) {
      StallWatchdog::Options wopts;
      wopts.check_interval_nanos =
          options_.resilience.watchdog_check_interval_nanos;
      wopts.stall_nanos = options_.resilience.scan_stall_nanos;
      cjoin::CjoinPipeline* p = pipeline_.get();
      watchdog_ = std::make_unique<StallWatchdog>(
          &scheduler_->wheel(), wopts, [p] { return p->progress_epoch(); },
          [p] { return p->busy(); },
          [p](const Status& why) { p->CancelActiveQueries(why); });
    }
    cjoin_stage_ = std::make_unique<CjoinStage>(
        pipeline_.get(), options_.comm, options_.channel_bytes,
        options_.config == EngineConfig::kCjoinSp);
    qpipe_->set_join_delegate(cjoin_stage_->MakeDelegate());
    if (options_.shared_aggregation) {
      // Aggregate-over-join sub-plans run inside the pipeline's shared
      // aggregation stage. When off, join output streams to per-query QPipe
      // aggregation packets — the scalar reference path.
      qpipe_->set_agg_delegate(cjoin_stage_->MakeAggDelegate());
    }
    qpipe_->set_batch_flush_hook([stage = cjoin_stage_.get()] {
      stage->FlushStaged();
    });
  }
}

Engine::~Engine() {
  // Queries must finish before the pipeline (owned here) is torn down. A
  // cancelled ticket completes ahead of its CJOIN slot, so additionally
  // wait for the pipeline to retire every slot (next admission pause).
  qpipe_->WaitAll();
  if (pipeline_) pipeline_->WaitIdle();
}

std::vector<QueryTicket> Engine::SubmitBatch(
    const std::vector<query::StarQuery>& queries, const SubmitOptions& opts) {
  const auto handles = qpipe_->SubmitBatch(queries, opts);
  std::vector<QueryTicket> tickets;
  tickets.reserve(handles.size());
  for (const auto& h : handles) tickets.emplace_back(h->life);
  return tickets;
}

QueryTicket Engine::Submit(const query::StarQuery& q,
                           const SubmitOptions& opts) {
  return QueryTicket(qpipe_->Submit(q, opts)->life);
}

std::vector<QueryTicket> Engine::SubmitRequests(
    const std::vector<SubmitRequest>& requests) {
  const auto handles = qpipe_->SubmitRequests(requests);
  std::vector<QueryTicket> tickets;
  tickets.reserve(handles.size());
  for (const auto& h : handles) tickets.emplace_back(h->life);
  return tickets;
}

void Engine::WaitAll() {
  qpipe_->WaitAll();
  if (pipeline_) pipeline_->WaitIdle();
}

void Engine::ResetCounters() {
  qpipe_->ResetSpCounters();
  if (cjoin_stage_) cjoin_stage_->ResetShares();
  if (pipeline_) pipeline_->ResetStats();
}

}  // namespace sdw::core
