// Shared Pages List (SPL) — the paper's pull-based transport for sharing
// intermediate results during Simultaneous Pipelining (paper §4, Figure 8).
//
// A SPL is a bounded linked list of pages with one producer and any number of
// consumers. The producer appends at the head; each consumer walks the list
// independently from its point of entry. Every node carries a reader count
// initialized to the number of active consumers at emission time; the last
// consumer past a node reclaims it. Because consumers share the single list,
// the producer performs no per-consumer forwarding — eliminating the
// serialization point of push-based SP.
//
// Step WoP: a satellite may attach "from the start" only while nothing has
// been emitted (TryAttachFromStart). Linear WoP: a consumer may attach at any
// time (AttachAtCurrent) and sees every page emitted after its point of
// entry; re-production of the missed prefix is the responsibility of the
// producing service (e.g. the circular scan wraps around), matching the
// paper's host hand-off protocol.

#ifndef SDW_CORE_SHARED_PAGES_LIST_H_
#define SDW_CORE_SHARED_PAGES_LIST_H_

#include <cstdint>
#include <list>
#include <memory>

#include "common/macros.h"
#include "common/mutex.h"
#include "core/page_channel.h"

namespace sdw::core {

/// Single-producer / multi-consumer bounded page list.
class SharedPagesList : public PageSink {
 private:
  struct Node {
    storage::PagePtr page;
    uint64_t seq;
    int remaining;  // readers still to pass this node
  };

 public:
  /// `max_bytes` bounds the bytes buffered between the slowest consumer and
  /// the head (0 = unbounded). The paper finds the bound barely affects
  /// performance and uses 256 KB to limit footprint.
  explicit SharedPagesList(size_t max_bytes = 256 * 1024)
      : max_bytes_(max_bytes) {}
  ~SharedPagesList() override;

  SDW_DISALLOW_COPY(SharedPagesList);

  /// Consumer handle; obtained via the attach methods.
  class Reader : public PageSource {
   public:
    ~Reader() override { CancelReader(); }
    storage::PagePtr Next() override;
    void CancelReader() override;

   private:
    friend class SharedPagesList;
    Reader(SharedPagesList* list, uint64_t next_seq)
        : list_(list), next_seq_(next_seq) {}

    SharedPagesList* list_;
    uint64_t next_seq_;
    bool holds_prev_ = false;
    std::list<Node>::iterator prev_;
    bool cancelled_ = false;
  };

  /// Attaches a consumer that will see every page (step WoP). Fails —
  /// returns nullptr — when the producer has already emitted (the window of
  /// opportunity has closed) or the list is closed.
  std::unique_ptr<Reader> TryAttachFromStart();

  /// Attaches a consumer at the current position (linear WoP): it sees every
  /// page emitted from now on. Returns nullptr when the list is closed.
  std::unique_ptr<Reader> AttachAtCurrent();

  // PageSink:
  bool Put(storage::PagePtr page) override;
  void Close() override;
  /// True once every attached reader has cancelled (at least one reader must
  /// have attached; the primary attaches before the producer dispatches).
  bool Abandoned() const override;

  /// True while nothing has been emitted (step WoP still open) and not
  /// closed.
  bool NothingEmitted() const;

  /// Current buffered bytes (diagnostics / tests).
  size_t buffered_bytes() const;
  /// Number of attached, uncancelled consumers.
  size_t num_active_readers() const;
  /// Total pages ever emitted.
  uint64_t pages_emitted() const;

 private:
  friend class Reader;

  void ReleaseLocked(std::list<Node>::iterator it) REQUIRES(mu_);
  void PopReclaimedLocked() REQUIRES(mu_);

  const size_t max_bytes_;

  // Channel rank, same tier as FifoBuffer: the two are interchangeable
  // transports behind an Exchange, reached under tee/registry locks.
  mutable Mutex mu_{lock_rank::Rank::kChannel};
  CondVar producer_cv_;
  CondVar consumer_cv_;
  std::list<Node> nodes_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;  // seq of the next emitted page
  size_t bytes_ GUARDED_BY(mu_) = 0;
  size_t active_readers_ GUARDED_BY(mu_) = 0;
  bool attached_ever_ GUARDED_BY(mu_) = false;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace sdw::core

#endif  // SDW_CORE_SHARED_PAGES_LIST_H_
