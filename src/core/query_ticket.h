// The asynchronous client surface of every execution backend.
//
// Submitting a query yields a QueryTicket — an opaque, copyable handle on
// the query's lifecycle. The ticket exposes exactly the operations a
// closed-loop client needs and nothing about the engine that runs the query:
//
//   Wait()       blocks until the query reaches a terminal state and returns
//                it (see the Status taxonomy in common/status.h);
//   TryResult()  non-blocking result access;
//   Cancel()     requests best-effort cancellation — engines observe the
//                request at exchange boundaries (QPipe) or admission pauses
//                (CJOIN) and recycle the query's resources early;
//   metrics()    a per-query snapshot (timing, pages drained, rows streamed,
//                sharing, CJOIN admission epoch).
//
// Engines complete the shared QueryLifecycle exactly once (first Finish
// wins); every submission path is required to reach Finish, so a ticket's
// Wait() can never hang on a failed or rejected query.
//
// ExecutorClient is the engine-side interface: core::Engine (all five paper
// configurations) and baseline::VolcanoEngine (the query-centric comparator)
// implement it, so harness drivers, tests and examples are written once
// against tickets and run against any backend.

#ifndef SDW_CORE_QUERY_TICKET_H_
#define SDW_CORE_QUERY_TICKET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/status.h"
#include "query/result.h"
#include "query/star_query.h"

namespace sdw::core {

/// Per-submission client options.
struct SubmitOptions {
  /// Scheduling priority (higher = sooner). The core::Scheduler threads it
  /// through every queue: QPipe stage dispatch pops packets by effective
  /// priority (a shared packet inherits the max of its attached consumers),
  /// and CJOIN admission orders its pending queue by (priority, arrival) so
  /// scarce query slots go to the highest bidder.
  int priority = 0;
  /// Absolute deadline in NowNanos() time (0 = none). An expired query is
  /// rejected at admission — before packet wiring (QPipe) or before costing
  /// a dimension scan (CJOIN) — and a draining query stops at the next
  /// result page past the deadline.
  int64_t deadline_nanos = 0;
  /// Free-form client identity, carried into the lifecycle for tracing.
  std::string client_tag;
  /// Stop draining after this many result rows (0 = unlimited). The ticket
  /// completes kOk with the truncated result; upstream work is cancelled.
  uint64_t row_limit = 0;
};

/// Point-in-time snapshot of one query's measurements.
struct QueryMetrics {
  uint64_t qid = 0;
  int64_t submit_nanos = 0;
  int64_t finish_nanos = 0;   // 0 until terminal
  /// When the query's work first got scheduled (first packet popped from a
  /// stage run queue, CJOIN admission activation, or SP satellite attach;
  /// 0 until then). submit → run_start is queue wait, run_start → finish is
  /// run time — the split that makes scheduling effects measurable.
  int64_t run_start_nanos = 0;
  uint64_t pages_read = 0;    // result pages drained into the ResultSet
  uint64_t rows = 0;          // rows streamed so far (live during the run)
  /// True when the whole query was satisfied from an SP host's results
  /// (the root packet attached as a satellite).
  bool fully_shared = false;
  /// CJOIN admission epoch that admitted the query (0 for non-CJOIN runs
  /// and for queries rejected before admission).
  uint64_t admission_epoch = 0;

  /// End-to-end response time in seconds (valid after completion).
  double response_seconds() const {
    return static_cast<double>(finish_nanos - submit_nanos) * 1e-9;
  }
  /// Time spent queued before the work first ran (valid once run_start_nanos
  /// is set; the full response time for queries rejected before running;
  /// 0 while the query is still waiting to be scheduled).
  double queue_wait_seconds() const {
    const int64_t until = run_start_nanos != 0 ? run_start_nanos
                                               : finish_nanos;
    if (until == 0) return 0;  // live snapshot of a still-queued query
    return static_cast<double>(until - submit_nanos) * 1e-9;
  }
  /// Time from first scheduling to completion (0 for never-started queries).
  double run_seconds() const {
    if (run_start_nanos == 0) return 0;
    return static_cast<double>(finish_nanos - run_start_nanos) * 1e-9;
  }
};

/// Shared lifecycle state of one submitted query. Engines drive the
/// engine-side methods; clients observe through QueryTicket. All methods are
/// thread-safe.
class QueryLifecycle {
 public:
  QueryLifecycle(uint64_t qid, SubmitOptions options)
      : options_(std::move(options)) {
    metrics_.qid = qid;
  }

  SDW_DISALLOW_COPY(QueryLifecycle);

  // ------------------------------------------------------------ client side

  /// Blocks until the query is terminal; returns the final status.
  Status Wait() const;

  /// Waits up to `timeout_nanos`; true when the query reached a terminal
  /// state within the timeout.
  bool WaitFor(int64_t timeout_nanos) const;

  bool done() const { return done_.load(std::memory_order_acquire); }

  /// Final status; Ok before completion (check done() to distinguish).
  Status status() const;

  /// Requests cancellation: records the reason, fires the engine's cancel
  /// hook (unblocking a blocked drain), and lets the engines retire the
  /// query's resources at their next check point. A no-op after completion.
  void RequestCancel(Status reason = Status::Cancelled("cancel requested"));

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_acquire);
  }

  /// Rows streamed into the result so far — live progress for streaming
  /// consumers.
  uint64_t rows_streamed() const {
    return rows_.load(std::memory_order_relaxed);
  }

  const SubmitOptions& options() const { return options_; }
  int64_t deadline_nanos() const { return options_.deadline_nanos; }

  /// The result rows. Only valid once done() and status().ok().
  const query::ResultSet& result() const { return result_; }

  QueryMetrics metrics() const;

  // ------------------------------------------------------------ engine side

  /// Completes the query: first caller wins, later calls are no-ops (so a
  /// pipeline error path and the normal drain path can race safely).
  /// Returns true when this call performed the completion.
  bool Finish(Status final_status);

  /// Installs the hook RequestCancel fires (e.g. cancelling the root result
  /// reader so a blocked drain wakes up). Invoked immediately if
  /// cancellation was already requested; dropped at Finish.
  void SetCancelCallback(std::function<void()> cb);

  /// Installs a hook run once when the query reaches a terminal state (or
  /// immediately if it already has). The Scheduler uses it to cancel the
  /// query's deadline timer, so early completions do not leave stale wheel
  /// entries ticking until their deadline passes.
  void SetFinishHook(std::function<void()> hook);

  /// True when the client no longer wants output: cancellation requested or
  /// the ticket already completed (e.g. a row_limit truncation). Engines use
  /// this to retire resources early.
  bool Detached() const { return cancel_requested() || done(); }

  /// Engine check point: true when the query should stop producing results,
  /// with `*why` set to the cancel reason or a deadline expiry.
  bool ShouldStop(Status* why) const;

  /// The status an engine-side retire path should complete the ticket with.
  Status cancel_status() const;

  query::ResultSet* mutable_result() { return &result_; }
  void set_submit_nanos(int64_t t) { metrics_.submit_nanos = t; }
  /// Records the first moment the query's work was actually scheduled
  /// (earliest caller wins; later calls are no-ops). Engines call this from
  /// packet workers, CJOIN admission and SP attach points.
  void MarkRunStart();
  void AddPagesRead(uint64_t n) {
    pages_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddRowsStreamed(uint64_t n) {
    rows_.fetch_add(n, std::memory_order_relaxed);
  }
  void SetFullyShared() { fully_shared_.store(true, std::memory_order_relaxed); }
  void SetAdmissionEpoch(uint64_t e) {
    admission_epoch_.store(e, std::memory_order_relaxed);
  }

 private:
  const SubmitOptions options_;

  // Mid-hierarchy: Finish is reached from under the CJOIN pipeline and SP
  // registry locks (FailQuery → Finish), and the hooks it fires afterwards
  // take channel/wheel locks — but always OUTSIDE mu_.
  mutable Mutex mu_{lock_rank::Rank::kQueryLifecycle};
  mutable CondVar cv_;
  std::atomic<bool> done_{false};
  std::atomic<bool> cancel_{false};
  Status final_status_ GUARDED_BY(mu_);   // stable once done_ is published
  Status cancel_reason_ GUARDED_BY(mu_);
  std::function<void()> cancel_cb_ GUARDED_BY(mu_);    // fired outside mu_
  std::function<void()> finish_hook_ GUARDED_BY(mu_);  // fired outside mu_

  query::ResultSet result_;  // written only by the engine's drain thread
  // qid/submit_nanos are written before the lifecycle is shared (and so
  // stay unannotated); finish_nanos is written under mu_ at completion.
  QueryMetrics metrics_;
  std::atomic<int64_t> run_start_{0};
  std::atomic<uint64_t> pages_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<bool> fully_shared_{false};
  std::atomic<uint64_t> admission_epoch_{0};
};

/// Copyable client handle on one submitted query.
class QueryTicket {
 public:
  QueryTicket() = default;
  explicit QueryTicket(std::shared_ptr<QueryLifecycle> life)
      : life_(std::move(life)) {}

  bool valid() const { return life_ != nullptr; }

  /// Blocks until terminal; returns the final status.
  Status Wait() const { return life()->Wait(); }

  /// Bounded wait; true when the query completed within the timeout.
  bool WaitFor(int64_t timeout_nanos) const {
    return life()->WaitFor(timeout_nanos);
  }

  bool done() const { return life()->done(); }

  /// Final status; Ok before completion (check done()).
  Status status() const { return life()->status(); }

  /// Non-blocking result access: FailedPrecondition while the query is
  /// still running, the terminal error for a failed/cancelled query, or a
  /// pointer to the completed result set.
  Result<const query::ResultSet*> TryResult() const;

  /// The completed result rows; aborts unless done() and status().ok().
  /// Use TryResult() when failure is expected.
  const query::ResultSet& result() const;

  /// Requests best-effort cancellation; a no-op after completion.
  void Cancel() const { life()->RequestCancel(); }

  /// Live metrics snapshot.
  QueryMetrics metrics() const { return life()->metrics(); }

  /// Rows streamed so far (live progress).
  uint64_t rows_so_far() const { return life()->rows_streamed(); }

  const std::shared_ptr<QueryLifecycle>& lifecycle() const { return life_; }

 private:
  /// All observers route through here so an empty (default-constructed)
  /// ticket fails with a diagnostic instead of a null dereference.
  QueryLifecycle* life() const {
    SDW_CHECK_MSG(life_ != nullptr, "operation on an empty QueryTicket");
    return life_.get();
  }

  std::shared_ptr<QueryLifecycle> life_;
};

/// One query plus its own options — the element of a mixed batch.
struct SubmitRequest {
  query::StarQuery q;
  SubmitOptions opts;
};

/// Engine-side interface every execution backend implements.
class ExecutorClient {
 public:
  virtual ~ExecutorClient() = default;

  /// Submits one query (closed-loop clients).
  virtual QueryTicket Submit(const query::StarQuery& q,
                             const SubmitOptions& opts = SubmitOptions()) = 0;

  /// Submits a batch of concurrent queries ("arrive at the same time").
  virtual std::vector<QueryTicket> SubmitBatch(
      const std::vector<query::StarQuery>& queries,
      const SubmitOptions& opts = SubmitOptions()) = 0;

  /// Submits a batch where every query carries its own options — mixed
  /// priorities/deadlines inside one arrival ("at the same time") batch, so
  /// the scheduler's admission ordering and priority inheritance are
  /// exercised within a single admission pause.
  virtual std::vector<QueryTicket> SubmitRequests(
      const std::vector<SubmitRequest>& requests) = 0;

  /// Blocks until every submitted query is terminal.
  virtual void WaitAll() = 0;

  /// Zeroes backend-specific sharing/statistics counters (between runs).
  virtual void ResetCounters() {}
};

/// Waits on every ticket; returns the first non-OK status (or OK).
Status WaitAllTickets(const std::vector<QueryTicket>& tickets);

}  // namespace sdw::core

#endif  // SDW_CORE_QUERY_TICKET_H_
