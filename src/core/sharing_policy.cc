#include "core/sharing_policy.h"

#include <thread>

#include "common/str_util.h"

namespace sdw::core {

size_t HardwareContexts() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

PolicyDecision RecommendSharing(const WorkloadProfile& profile) {
  PolicyDecision decision;
  const size_t contexts = profile.hardware_contexts != 0
                              ? profile.hardware_contexts
                              : HardwareContexts();
  decision.shared_scans = true;  // beneficial at both ends (paper §5.2.1)

  if (!profile.scan_heavy) {
    decision.config = EngineConfig::kQpipeSp;
    decision.rationale =
        "non-scan-heavy workload: stay query-centric with SP; the paper's "
        "rules target ad-hoc scan-heavy OLAP";
    return decision;
  }

  if (profile.concurrent_queries <= contexts) {
    decision.config = EngineConfig::kQpipeSp;
    decision.rationale = StrPrintf(
        "low concurrency (%zu queries <= %zu contexts): query-centric "
        "operators parallelize without contention and avoid shared-operator "
        "bookkeeping; SP with pull-based SPL adds sharing at no overhead",
        profile.concurrent_queries, contexts);
  } else {
    decision.config = EngineConfig::kCjoinSp;
    decision.rationale = StrPrintf(
        "high concurrency (%zu queries > %zu contexts): resources saturate, "
        "so a GQP with shared operators reduces contention; SP on top "
        "eliminates the remaining common sub-plans",
        profile.concurrent_queries, contexts);
  }
  return decision;
}

}  // namespace sdw::core
