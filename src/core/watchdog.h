// Stall watchdog: converts a silently wedged pipeline into explicit
// kDeadlineExceeded failures.
//
// A fault that only slows the storage layer down (a device latency spike, a
// retry storm) produces no error anywhere — queries just stop finishing. The
// watchdog probes a monotone progress counter on the scheduler's timer wheel
// every check interval; when the pipeline reports work (busy) but the
// counter stays flat for the stall window, it fires the stall hook — in
// practice CjoinPipeline::CancelActiveQueries(kDeadlineExceeded), which
// unblocks every waiting client through the ordinary cancel machinery
// instead of leaving them hung.

#ifndef SDW_CORE_WATCHDOG_H_
#define SDW_CORE_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/macros.h"
#include "common/status.h"
#include "common/timer_wheel.h"

namespace sdw::core {

/// Periodic liveness probe on a TimerWheel. Thread-safe; the probes and the
/// stall hook run on the wheel's timer thread.
class StallWatchdog {
 public:
  struct Options {
    /// Probe period.
    int64_t check_interval_nanos = 50'000'000;  // 50 ms
    /// Busy time without progress before the stall hook fires.
    int64_t stall_nanos = 1'000'000'000;  // 1 s
  };

  /// `progress` returns a monotone counter; `busy` whether there is work the
  /// counter should be advancing on. `on_stall` fires (once per stall
  /// episode — the window re-arms after firing) with the kDeadlineExceeded
  /// status to fail the stalled work with. All three must stay valid until
  /// the watchdog is destroyed; the destructor guarantees no probe or hook
  /// runs after it returns, so destroy the watchdog BEFORE what they touch.
  StallWatchdog(TimerWheel* wheel, Options options,
                std::function<uint64_t()> progress, std::function<bool()> busy,
                std::function<void(const Status&)> on_stall);
  ~StallWatchdog();

  SDW_DISALLOW_COPY(StallWatchdog);

  /// Stall episodes detected (diagnostics/tests).
  uint64_t stalls_fired() const;

 private:
  struct State;
  /// One probe: evaluates the stall condition, fires the hook if due, and
  /// re-schedules itself. Holds only a weak_ptr so a timer that outlives the
  /// watchdog degenerates to a no-op.
  static void Tick(const std::weak_ptr<State>& weak);

  std::shared_ptr<State> state_;
};

}  // namespace sdw::core

#endif  // SDW_CORE_WATCHDOG_H_
