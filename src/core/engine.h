// Unified engine facade exposing the paper's five evaluated configurations
// (paper §5.1):
//
//   QPipe     — query-centric staged execution, no sharing (baseline)
//   QPipe-CS  — + circular scans (SP at the table-scan stage)
//   QPipe-SP  — + SP at the join stage
//   CJOIN     — joins evaluated by the GQP (shared operators), no SP
//   CJOIN-SP  — + SP over CJOIN packets (the paper's integration, §3)
//
// plus the push/pull communication-model switch of §4. This is the public
// entry point of the library: build a catalog, create an Engine with a
// configuration, submit StarQuery batches.

#ifndef SDW_CORE_ENGINE_H_
#define SDW_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cjoin/pipeline.h"
#include "common/memory_budget.h"
#include "core/cjoin_stage.h"
#include "core/query_ticket.h"
#include "core/scheduler.h"
#include "core/watchdog.h"
#include "qpipe/engine.h"

namespace sdw::core {

/// The five evaluated engine configurations.
enum class EngineConfig {
  kQpipe,    // no sharing
  kQpipeCs,  // circular scans
  kQpipeSp,  // circular scans + join SP
  kCjoin,    // GQP with shared operators
  kCjoinSp,  // GQP + SP over CJOIN packets
};

/// Stable display name ("QPipe", "QPipe-CS", ...).
const char* EngineConfigName(EngineConfig config);

/// Facade options.
struct EngineOptions {
  EngineConfig config = EngineConfig::kQpipeSp;
  /// SP communication model (paper §4). Pull (SPL) is the paper's
  /// recommendation; push (FIFO) reproduces the original QPipe behavior.
  CommModel comm = CommModel::kPull;
  /// FIFO/SPL byte bound (paper uses 256 KB).
  size_t channel_bytes = 256 * 1024;
  /// SP for aggregation/sort stages — off in all paper experiments.
  bool sp_agg = false;
  bool sp_sort = false;
  /// GQP pipeline options (CJOIN configs only).
  cjoin::CjoinOptions cjoin;
  /// CJOIN configs: evaluate aggregations inside the pipeline's shared
  /// aggregation stage — queries with the same (group-by keys, aggregate
  /// shape) signature fold each distributed batch once and slice per-query
  /// results at completion. False keeps the scalar reference: join output
  /// streams to per-query QPipe aggregation packets (the pre-sharing
  /// behavior, and the differential tests' baseline).
  bool shared_aggregation = true;
  /// CJOIN configs: dynamic query folding at admission — a pending query
  /// whose predicates are provably contained in an in-flight query's (and
  /// whose aggregate shape matches) rides that host's slot as a post-filter
  /// instead of consuming a slot and dimension scans. Default OFF: the
  /// unfolded path is the differential oracle (see docs/FOLDING.md).
  bool query_folding = false;
  /// Fact table the GQP pipeline is built over.
  std::string fact_table = "lineorder";
  /// Convert the fact table to the PAX (column-major within page) layout at
  /// engine construction and run the columnar hot-path kernels over it
  /// (minipage predicate/key reads, flat hash probe, SIMD bitmap pass — see
  /// docs/STORAGE.md). False keeps the row-major layout and the retained
  /// row-major kernels: the differential oracle the columnar suite pins the
  /// PAX path against. Results are bit-identical either way.
  bool columnar_pages = false;
  /// Scheduling policy: one core::Scheduler per engine threads priority,
  /// aging and deadline (timer-wheel) enforcement through every queue —
  /// stage dispatch, result sinks and CJOIN admission.
  /// sched.priority_enabled = false reproduces the seed's FIFO everywhere.
  SchedulerOptions sched;
  /// Caps every QPipe stage pool (0 = unlimited). See
  /// qpipe::QpipeOptions::stage_max_workers for the deadlock caveat.
  size_t stage_max_workers = 0;
  /// Fault-tolerance knobs (CJOIN configurations; see docs in the fields).
  struct ResilienceOptions {
    /// Admission overload gate: total bytes of CJOIN admission reservations
    /// (CjoinPipeline::kAdmissionCostBytes per in-flight query) before
    /// pending queries are shed with kResourceExhausted + a retry_after
    /// hint. 0 = no gate (the seed behavior).
    uint64_t memory_budget_bytes = 0;
    /// Resubmission hint attached to overload rejections.
    int64_t overload_retry_after_nanos = 5'000'000;
    /// Stall watchdog: busy time without scan progress before active CJOIN
    /// queries are cancelled kDeadlineExceeded. 0 = watchdog off.
    int64_t scan_stall_nanos = 0;
    /// Watchdog probe period.
    int64_t watchdog_check_interval_nanos = 50'000'000;
  };
  ResilienceOptions resilience;
};

/// The integrated engine. Submissions return QueryTickets (see
/// core/query_ticket.h) carrying status, cancellation, deadlines and
/// per-query metrics; the ExecutorClient interface lets harness drivers and
/// tests run unchanged against any backend.
class Engine : public ExecutorClient {
 public:
  Engine(const storage::Catalog* catalog, storage::BufferPool* pool,
         EngineOptions options);
  ~Engine() override;

  SDW_DISALLOW_COPY(Engine);

  /// Submits a batch of concurrent queries (all "arrive at the same time").
  std::vector<QueryTicket> SubmitBatch(
      const std::vector<query::StarQuery>& queries,
      const SubmitOptions& opts = SubmitOptions()) override;

  /// Single-query submission (closed-loop clients).
  QueryTicket Submit(const query::StarQuery& q,
                     const SubmitOptions& opts = SubmitOptions()) override;

  /// Mixed batch: per-query options inside one arrival batch.
  std::vector<QueryTicket> SubmitRequests(
      const std::vector<SubmitRequest>& requests) override;

  /// Blocks until all submitted queries complete.
  void WaitAll() override;

  const EngineOptions& options() const { return options_; }
  /// The engine's scheduling subsystem (priority policy + timer wheel).
  Scheduler* scheduler() { return scheduler_.get(); }
  qpipe::QpipeEngine* qpipe() { return qpipe_.get(); }
  /// Null unless a CJOIN configuration.
  cjoin::CjoinPipeline* cjoin_pipeline() { return pipeline_.get(); }

  /// SP sharing counters of the staged engine.
  qpipe::SpCounters sp_counters() const { return qpipe_->sp_counters(); }
  /// Satellite attachments to CJOIN packets (CJOIN-SP only).
  uint64_t cjoin_shares() const {
    return cjoin_stage_ ? cjoin_stage_->shares() : 0;
  }
  /// GQP pipeline statistics (zeroes unless a CJOIN configuration).
  cjoin::CjoinStats cjoin_stats() const {
    return pipeline_ ? pipeline_->stats() : cjoin::CjoinStats{};
  }
  /// Admission memory budget (null unless resilience.memory_budget_bytes).
  MemoryBudget* memory_budget() { return memory_budget_.get(); }
  /// Stall watchdog (null unless resilience.scan_stall_nanos on a CJOIN
  /// configuration).
  StallWatchdog* watchdog() { return watchdog_.get(); }
  void ResetCounters() override;

 private:
  const EngineOptions options_;
  // Destruction order (reverse of declaration) is load-bearing: the
  // watchdog goes first (its destructor guarantees no probe still touches
  // the pipeline), then the staged engine (drains queries), then the GQP
  // pipeline (joins its threads, which may still be running completion
  // hooks), the CJOIN stage — whose SP registry those hooks call into —
  // next, then the memory budget the pipeline releases into, and the
  // scheduler (whose timer wheel fires into all of the above) strictly
  // last-constructed/first-outliving, i.e. declared first.
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<MemoryBudget> memory_budget_;
  std::unique_ptr<CjoinStage> cjoin_stage_;
  std::unique_ptr<cjoin::CjoinPipeline> pipeline_;
  std::unique_ptr<qpipe::QpipeEngine> qpipe_;
  std::unique_ptr<StallWatchdog> watchdog_;  // declared LAST: destroyed first
};

}  // namespace sdw::core

#endif  // SDW_CORE_ENGINE_H_
