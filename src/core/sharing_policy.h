// The paper's rules of thumb (Table 1) as an executable policy:
//
//   When              Execution engine                 I/O layer
//   low concurrency   query-centric operators + SP     shared scans
//   high concurrency  GQP (shared operators) + SP      shared scans
//
// "Low" vs "high" is judged against the machine's hardware contexts: shared
// operators win once query-centric execution saturates the cores (paper §6
// proposes resource saturation as the simple heuristic for the turning
// point).

#ifndef SDW_CORE_SHARING_POLICY_H_
#define SDW_CORE_SHARING_POLICY_H_

#include <cstddef>
#include <string>

#include "core/engine.h"

namespace sdw::core {

/// Inputs to the policy decision.
struct WorkloadProfile {
  /// Expected number of concurrently executing analytical queries.
  size_t concurrent_queries = 1;
  /// Hardware contexts available (defaults to the machine's).
  size_t hardware_contexts = 0;
  /// OLAP-style scan-heavy queries? (The rules target typical DW workloads;
  /// for non-scan-heavy workloads the policy stays conservative.)
  bool scan_heavy = true;
};

/// Policy output.
struct PolicyDecision {
  EngineConfig config = EngineConfig::kQpipeSp;
  bool shared_scans = true;
  std::string rationale;
};

/// Number of hardware contexts on this machine.
size_t HardwareContexts();

/// Applies Table 1 to a workload profile.
PolicyDecision RecommendSharing(const WorkloadProfile& profile);

}  // namespace sdw::core

#endif  // SDW_CORE_SHARING_POLICY_H_
