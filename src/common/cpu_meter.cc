#include "common/cpu_meter.h"

#include "common/timing.h"

namespace sdw {

void CpuMeter::Start() {
  wall_start_ = NowNanos();
  cpu_start_ = ProcessCpuNanos();
}

void CpuMeter::Stop() {
  wall_end_ = NowNanos();
  cpu_end_ = ProcessCpuNanos();
}

double CpuMeter::AvgCoresUsed() const {
  const double wall = WallSeconds();
  if (wall <= 0) return 0;
  return CpuSeconds() / wall;
}

double CpuMeter::WallSeconds() const {
  return static_cast<double>(wall_end_ - wall_start_) * 1e-9;
}

double CpuMeter::CpuSeconds() const {
  return static_cast<double>(cpu_end_ - cpu_start_) * 1e-9;
}

}  // namespace sdw
