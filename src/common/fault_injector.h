// Deterministic fault injection for robustness testing.
//
// Code that can fail in production (storage reads, buffer-pool allocation,
// packet workers) declares a named *site* and asks the process-wide injector
// whether a fault should fire there. Tests arm sites with seeded, replayable
// schedules: per-hit probability, every-Nth hit, or a one-shot at the Nth
// hit; a firing spec injects a transient error (retryable, kUnavailable), a
// permanent error (kDataLoss), or a latency spike (the check sleeps, no
// error). A printed seed fully reproduces a probabilistic schedule's
// decisions for any single-threaded site; concurrent sites replay the same
// *set* of decisions, though thread interleaving may assign them to
// different hits.
//
// Zero-cost when disarmed: Check() is a single relaxed atomic load, so
// leaving sites compiled into hot paths costs nothing in production
// configurations (verified by the micro_primitives bench baseline).

#ifndef SDW_COMMON_FAULT_INJECTOR_H_
#define SDW_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"

namespace sdw {

/// What an armed fault does when it fires.
enum class FaultKind {
  kTransient,  // retryable error; Check returns kUnavailable by default
  kPermanent,  // non-retryable error; Check returns kDataLoss by default
  kLatency,    // no error: Check sleeps latency_nanos before returning OK
};

/// One schedule entry at a site. Schedules compose: every armed spec is
/// evaluated per hit and the first firing spec wins.
struct FaultSpec {
  FaultKind kind = FaultKind::kTransient;
  /// Fires on each hit with this probability (seeded Bernoulli).
  double probability = 0.0;
  /// Fires on every Nth hit (1-based; 0 disables).
  uint64_t every_nth = 0;
  /// Fires exactly once, at the Nth hit (1-based; 0 disables).
  uint64_t one_shot_at = 0;
  /// Sleep duration for kLatency faults.
  int64_t latency_nanos = 0;
  /// Restricts firing to keys in [key_lo, key_hi]; the whole key space when
  /// key_hi == 0. Sites pass a key identifying the unit of work (storage
  /// sites use the (table_id << 48) | page_idx residency key).
  uint64_t key_lo = 0;
  uint64_t key_hi = 0;
  /// Overrides the kind's default status code (kOk = use the default).
  StatusCode code = StatusCode::kOk;
  /// Extra detail appended to the injected error message.
  std::string message;
};

/// Process-wide registry of named fault sites. Thread-safe.
class FaultInjector {
 public:
  /// The singleton all production sites consult.
  static FaultInjector& Global();

  FaultInjector() = default;
  SDW_DISALLOW_COPY(FaultInjector);

  /// Arms the injector: Check() starts evaluating schedules, and every
  /// site's RNG stream is (re)derived from `seed` so a run is replayable.
  void Enable(uint64_t seed);

  /// Disarms and forgets every site; Check() returns to the zero-cost path.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  uint64_t seed() const { return seed_; }

  /// Adds a schedule entry at `site`. Requires Enable() first.
  void Arm(const std::string& site, FaultSpec spec);

  /// Removes all schedule entries at `site` (counters persist).
  void ClearSite(const std::string& site);

  /// Times `site` was checked / times a fault actually fired there.
  uint64_t hits(const std::string& site) const;
  uint64_t injected(const std::string& site) const;
  /// Faults fired across all sites since Enable().
  uint64_t injected_total() const {
    return injected_total_.load(std::memory_order_relaxed);
  }

  /// Hot-path probe: returns the injected error for `site` (keyed by an
  /// optional unit-of-work id), or OK. Latency faults sleep here.
  Status Check(const char* site, uint64_t key = 0) {
    if (!enabled_.load(std::memory_order_relaxed)) return Status::Ok();
    return CheckSlow(site, key);
  }

 private:
  struct SpecState {
    FaultSpec spec;
    bool one_shot_fired = false;
  };
  struct Site {
    explicit Site(uint64_t rng_seed) : rng(rng_seed) {}
    std::vector<SpecState> specs;
    Rng rng;  // per-site stream: one site's schedule can't perturb another's
    uint64_t hits = 0;
    uint64_t injected = 0;
  };

  Status CheckSlow(const char* site, uint64_t key);
  Site& SiteLocked(const std::string& name) REQUIRES(mu_);
  static uint64_t SiteSeed(uint64_t seed, const std::string& name);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> injected_total_{0};
  // Written under mu_ by Enable() before any site observes enabled_; the
  // unlocked seed() accessor only runs after Enable() returned.
  uint64_t seed_ = 0;

  // Highest-ranked lock in the hierarchy shy of the leaves: Check() sites
  // sit under storage-device and buffer-pool critical sections.
  mutable Mutex mu_{lock_rank::Rank::kFaultInjector};
  std::unordered_map<std::string, Site> sites_ GUARDED_BY(mu_);
};

}  // namespace sdw

#endif  // SDW_COMMON_FAULT_INJECTOR_H_
