// Priority run queue: the ordering policy behind every task queue in the
// system (ThreadPool workers, and — through core::Scheduler — QPipe stage
// dispatch). Replaces the seed's FIFO std::deque.
//
// Ordering rules:
//  * higher priority pops first;
//  * FIFO within one priority level (stable: ties break on arrival seq);
//  * aging: a waiting task gains one effective priority level per
//    `aging_nanos` spent queued, so a low-priority task can starve only for
//    a bounded time however fast high-priority work keeps arriving;
//  * a task may carry a *dynamic* priority provider, re-evaluated at pop
//    time. QPipe uses this for priority inheritance across shared work: a
//    host packet's provider reads the max priority of its currently
//    attached consumers from the SpRegistry, so a satellite attaching at
//    high priority boosts the already-queued host.
//
// The queue itself is externally synchronized — the owner (ThreadPool)
// already holds a mutex around every queue operation, so locking here would
// only double the cost.
//
// Structure: static-priority entries are bucketed by base priority (FIFO
// deque per level). Every entry of a level ages at the same rate, so the
// level's front — its earliest arrival — always carries the level's maximum
// effective priority and wins the level's FIFO tie-break: Pop compares one
// candidate per level instead of scanning every entry (the seed's O(n) scan
// is kept in scheduler_test as the ordering oracle). Entries with a dynamic
// priority provider have no stable bucket — each is re-evaluated at every
// Pop, against "now", exactly as before (QPipe hosts: tens, not thousands).

#ifndef SDW_COMMON_RUN_QUEUE_H_
#define SDW_COMMON_RUN_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/macros.h"

namespace sdw {

/// Scheduling policy knobs shared by every run queue.
struct RunQueueOptions {
  /// When false the queue degrades to the seed's FIFO (priority, dynamic
  /// providers and aging are all ignored) — the bench baseline.
  bool priority_enabled = true;
  /// Nanoseconds of queue wait per effective priority level gained
  /// (0 disables aging). Default: one level per 20 ms waited.
  int64_t aging_nanos = 20'000'000;
};

/// Externally-synchronized priority task queue (see file comment).
class PriorityRunQueue {
 public:
  explicit PriorityRunQueue(RunQueueOptions options = RunQueueOptions())
      : options_(options) {}

  SDW_DISALLOW_COPY(PriorityRunQueue);

  /// Enqueues a task. `dynamic_priority`, when set, is re-evaluated at every
  /// Pop and the effective base priority is max(priority, dynamic()).
  void Push(std::function<void()> task, int priority = 0,
            std::function<int()> dynamic_priority = nullptr);

  /// Removes and returns the best task per the ordering rules; requires
  /// !empty().
  std::function<void()> Pop();

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  const RunQueueOptions& options() const { return options_; }

 private:
  struct Entry {
    std::function<void()> task;
    int priority;
    std::function<int()> dynamic_priority;
    int64_t enqueue_nanos;
    /// Global arrival number: the cross-bucket tie-break reproducing the
    /// seed scan's FIFO-among-equals (lowest deque index = earliest push).
    uint64_t seq;
  };

  /// Effective priority of `e` at time `now` (base or dynamic, plus aging).
  int64_t EffectivePriority(const Entry& e, int64_t now) const;

  const RunQueueOptions options_;
  /// Static entries by base priority, descending; FIFO per level. Levels
  /// are erased when emptied (invariant: every mapped deque is non-empty).
  /// With priority disabled everything — dynamic providers included — lands
  /// in levels_[0] and pops strictly FIFO (the seed behavior).
  std::map<int, std::deque<Entry>, std::greater<int>> levels_;
  /// Entries carrying a pop-time dynamic priority provider.
  std::deque<Entry> dynamic_;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace sdw

#endif  // SDW_COMMON_RUN_QUEUE_H_
