#include "common/timing.h"

#include <ctime>

namespace sdw {

namespace {

int64_t ClockNanos(clockid_t id) {
  timespec ts;
  clock_gettime(id, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

}  // namespace

int64_t ThreadCpuNanos() { return ClockNanos(CLOCK_THREAD_CPUTIME_ID); }

int64_t ProcessCpuNanos() { return ClockNanos(CLOCK_PROCESS_CPUTIME_ID); }

}  // namespace sdw
