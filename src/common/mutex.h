// Annotated mutex primitives: sdw::Mutex / sdw::MutexLock / sdw::CondVar.
//
// Thin wrappers over the std primitives that add two kinds of checking:
//
//  1. Compile time — Clang Thread Safety Analysis attributes
//     (thread_annotations.h): Mutex is a CAPABILITY, MutexLock a
//     SCOPED_CAPABILITY, so `GUARDED_BY(mu_)` fields and `REQUIRES(mu_)`
//     helpers are verified by the `build-tsa` preset.
//
//  2. Run time — the lock-rank checker (lock_rank.h): a Mutex constructed
//     with a lock_rank::Rank participates in the engine-wide lock
//     hierarchy; out-of-order or recursive acquisition aborts with both
//     stacks. Compiled in only when SDW_LOCK_RANK_CHECKS is 1 (CMake
//     option SDW_LOCK_RANK); otherwise Mutex is layout-identical to
//     std::mutex (static_assert below) and the rank argument is discarded.
//
// CondVar follows the abseil convention: Wait(mu) atomically releases and
// re-acquires `mu`. The analysis cannot model that release window, so Wait
// is annotated REQUIRES(mu) — true at both call and return — and callers
// write explicit `while (!pred) cv_.Wait(mu_);` loops (a lambda predicate
// would be opaque to the analysis anyway).

#ifndef SDW_COMMON_MUTEX_H_
#define SDW_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/lock_rank.h"
#include "common/macros.h"
#include "common/thread_annotations.h"

#if !defined(SDW_LOCK_RANK_CHECKS)
#define SDW_LOCK_RANK_CHECKS 0
#endif

namespace sdw {

/// A std::mutex with TSA capability annotations and (debug builds) runtime
/// lock-rank checking. Construct with a lock_rank::Rank to join the engine
/// hierarchy; default-constructed mutexes are unranked (exempt from
/// ordering, still recursion-checked).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if SDW_LOCK_RANK_CHECKS
  explicit Mutex(lock_rank::Rank rank) : rank_(static_cast<int>(rank)) {}
#else
  explicit Mutex(lock_rank::Rank rank) { (void)rank; }
#endif

  SDW_DISALLOW_COPY(Mutex);

  void Lock() ACQUIRE() {
#if SDW_LOCK_RANK_CHECKS
    // Check BEFORE locking: a real inversion must report, not deadlock.
    lock_rank::OnAcquire(this, rank_);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if SDW_LOCK_RANK_CHECKS
    lock_rank::OnRelease(this);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
#if SDW_LOCK_RANK_CHECKS
    if (ok) lock_rank::OnTryAcquire(this, rank_);
#endif
    return ok;
  }

 private:
  friend class CondVar;

  std::mutex mu_;
#if SDW_LOCK_RANK_CHECKS
  int rank_ = 0;
#endif
};

#if !SDW_LOCK_RANK_CHECKS
// The release-mode proof that the checker costs nothing: with checks off a
// Mutex is exactly a std::mutex (lock_rank_test also asserts this).
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "sdw::Mutex must add no state when lock-rank checks are off");
#endif

/// RAII scoped lock over sdw::Mutex. Relockable: Unlock()/Lock() support
/// the unlock-run-relock pattern (e.g. ThreadPool::WorkerLoop running a
/// task outside the pool lock) while keeping the scope analyzable.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }

  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  /// Releases early (before scope exit).
  void Unlock() RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  /// Re-acquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

  SDW_DISALLOW_COPY(MutexLock);

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to sdw::Mutex at wait time (abseil-style).
/// Waits release and re-acquire `mu` atomically; the lock-rank checker pops
/// the mutex for the wait's duration and re-checks on re-acquire, so
/// waiting while holding a higher-ranked lock on the same thread reports.
class CondVar {
 public:
  CondVar() = default;
  SDW_DISALLOW_COPY(CondVar);

  /// Blocks until notified. Caller must hold `mu`.
  void Wait(Mutex& mu) REQUIRES(mu) {
    BeginWait(mu);
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
    EndWait(mu);
  }

  /// Blocks until notified or `nanos` elapsed; true = notified (or spurious
  /// wakeup), false = timed out. Caller must hold `mu`.
  bool WaitFor(Mutex& mu, int64_t nanos) REQUIRES(mu) {
    BeginWait(mu);
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status st =
        cv_.wait_for(native, std::chrono::nanoseconds(nanos));
    native.release();
    EndWait(mu);
    return st == std::cv_status::no_timeout;
  }

  /// Blocks until notified or the steady-clock deadline passed; true =
  /// notified (or spurious wakeup), false = timed out.
  bool WaitUntil(Mutex& mu,
                 std::chrono::steady_clock::time_point deadline) REQUIRES(mu) {
    BeginWait(mu);
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_until(native, deadline);
    native.release();
    EndWait(mu);
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  static void BeginWait(Mutex& mu) {
#if SDW_LOCK_RANK_CHECKS
    lock_rank::BeginWait(&mu);
#else
    (void)mu;
#endif
  }
  static void EndWait(Mutex& mu) {
#if SDW_LOCK_RANK_CHECKS
    lock_rank::EndWait(&mu, mu.rank_);
#else
    (void)mu;
#endif
  }

  std::condition_variable cv_;
};

}  // namespace sdw

#endif  // SDW_COMMON_MUTEX_H_
