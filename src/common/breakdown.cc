#include "common/breakdown.h"

#include <cstdio>

namespace sdw {

const char* ComponentName(Component c) {
  switch (c) {
    case Component::kHashing:
      return "Hashing";
    case Component::kJoins:
      return "Joins";
    case Component::kAggregation:
      return "Aggreg.";
    case Component::kScans:
      return "Scans";
    case Component::kLocks:
      return "Locks";
    case Component::kMisc:
      return "Misc";
  }
  return "?";
}

Breakdown& Breakdown::Global() {
  static Breakdown instance;
  return instance;
}

void Breakdown::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double Breakdown::TotalSeconds() const {
  double total = 0;
  for (int i = 0; i < kNumComponents; ++i) {
    total += Seconds(static_cast<Component>(i));
  }
  return total;
}

std::string Breakdown::ToString() const {
  std::string out;
  char buf[64];
  for (int i = 0; i < kNumComponents; ++i) {
    const auto c = static_cast<Component>(i);
    std::snprintf(buf, sizeof(buf), "%s%s=%.3fs", i == 0 ? "" : " ",
                  ComponentName(c), Seconds(c));
    out += buf;
  }
  return out;
}

}  // namespace sdw
