// Hierarchical timer wheel: prompt deadline firing without polling.
//
// The seed enforced query deadlines only at admission and between result
// pages, so a drain blocked in Next() noticed an expired deadline only when
// a page happened to arrive. The wheel closes that gap: core::Scheduler
// registers every deadline ticket here, and at expiry the wheel thread fires
// RequestCancel(kDeadlineExceeded), which cancels the query's root reader
// and wakes the blocked drain — no page arrival, no polling loop.
//
// Structure (classic hashed hierarchical wheel, Varghese & Lauck): `kLevels`
// wheels of `kSlots` slots each. Level 0 spans one tick per slot; each
// higher level spans kSlots× the previous. A timer is hung on the coarsest
// level that resolves it; when the wheel advances across a higher-level
// slot boundary, that slot's timers cascade down and are re-hung by their
// remaining delta. Every operation is O(1) amortized, and a timer fires
// within one tick of its deadline (default tick: 1 ms).
//
// Callbacks run on the wheel's own thread, outside the wheel lock. They must
// be brief and must not block on work that itself waits for wheel callbacks
// (RequestCancel qualifies: it flips lifecycle state and cancels a reader).

#ifndef SDW_COMMON_TIMER_WHEEL_H_
#define SDW_COMMON_TIMER_WHEEL_H_

#include <array>
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"

namespace sdw {

/// Hierarchical timer wheel service with its own timer thread.
class TimerWheel {
 public:
  struct Options {
    /// Wheel resolution: a timer fires within one tick of its deadline.
    int64_t tick_nanos = 1'000'000;  // 1 ms
  };

  TimerWheel() : TimerWheel(Options{}) {}
  explicit TimerWheel(Options options);
  ~TimerWheel();

  SDW_DISALLOW_COPY(TimerWheel);

  /// Schedules `fn` to fire at `deadline_nanos` (NowNanos() clock; a
  /// deadline in the past fires on the next tick). Returns a handle for
  /// Cancel.
  uint64_t Schedule(int64_t deadline_nanos, std::function<void()> fn);

  /// Cancels a scheduled timer. Returns true when the timer was removed
  /// before firing; false when it already fired (or never existed).
  bool Cancel(uint64_t id);

  /// Timers scheduled and not yet fired/cancelled.
  size_t pending() const;

  /// Timers fired so far (diagnostics/tests).
  uint64_t fired() const;

  /// Wheel-thread wakeups that evaluated the clock (diagnostics/tests). A
  /// wheel with one far-out timer must sleep straight to its due tick — a
  /// handful of wakeups — not once per tick; scheduler_test pins this.
  uint64_t wakeups() const;

  int64_t tick_nanos() const { return options_.tick_nanos; }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr uint64_t kSlots = 1u << kSlotBits;  // 64 per level

  struct Timer {
    int64_t deadline_nanos;
    std::function<void()> fn;
  };

  void Loop();
  /// Hangs timer `id` (deadline known from timers_) on the wheel relative to
  /// the current tick.
  void PlaceLocked(uint64_t id, int64_t deadline_nanos) REQUIRES(mu_);
  /// Advances the wheel by one tick, collecting due timers.
  void AdvanceOneTickLocked(std::vector<Timer>* due) REQUIRES(mu_);
  /// Jump-advance after a long idle gap: rebuilds the wheel from the
  /// live-timer map at `now_tick` (O(pending)) instead of ticking the gap
  /// closed one slot at a time.
  void CatchUpLocked(int64_t now_tick, std::vector<Timer>* due) REQUIRES(mu_);
  /// Earliest tick any live timer is due at — the wheel thread sleeps to
  /// that boundary instead of waking every tick. O(pending), computed fresh
  /// before each sleep (timers_ is the ground truth; the slot vectors hold
  /// lazily-deleted ids). timers_ must be non-empty.
  int64_t NextDueTickLocked() const REQUIRES(mu_);

  /// Tick index a deadline belongs to (rounded up: never fire early).
  int64_t TickFor(int64_t deadline_nanos) const;

  const Options options_;
  const int64_t origin_nanos_;  // tick 0

  // Ranked above the pipeline-level locks: lifecycle finish hooks cancel
  // deadline timers while a pipeline completion path holds its own mutex.
  mutable Mutex mu_{lock_rank::Rank::kTimerWheel};
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  int64_t current_tick_ GUARDED_BY(mu_) = 0;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  uint64_t fired_ GUARDED_BY(mu_) = 0;
  uint64_t wakeups_ GUARDED_BY(mu_) = 0;
  /// Live timers by id; slots hold ids, lazily skipped when cancelled.
  std::unordered_map<uint64_t, Timer> timers_ GUARDED_BY(mu_);
  std::array<std::array<std::vector<uint64_t>, kSlots>, kLevels> wheel_
      GUARDED_BY(mu_);

  std::thread thread_;
};

}  // namespace sdw

#endif  // SDW_COMMON_TIMER_WHEEL_H_
