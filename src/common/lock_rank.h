// Runtime lock-rank (lock-order) checking.
//
// Clang Thread Safety Analysis (thread_annotations.h) proves per-function
// discipline — "this field needs that mutex" — but its analysis is local: it
// cannot see that the SP-registry lock and the CJOIN pipeline mutex are
// taken in opposite orders on two different cancel paths. This checker can.
// Every ranked sdw::Mutex carries a Rank from the engine-wide hierarchy
// below; each thread keeps a stack of the ranks it currently holds, and an
// acquisition whose rank is not strictly greater than every ranked lock
// already held aborts with both the held-lock stack and a backtrace.
//
// The checker is compiled into sdw::Mutex only when SDW_LOCK_RANK_CHECKS is
// 1 (CMake option SDW_LOCK_RANK, default ON except Release builds); with it
// off, sdw::Mutex is layout-identical to std::mutex (static_assert'd).
//
// The rank table IS the documented hierarchy — docs/CONCURRENCY.md explains
// each edge. Gaps between values are deliberate: future subsystems slot in
// without renumbering.

#ifndef SDW_COMMON_LOCK_RANK_H_
#define SDW_COMMON_LOCK_RANK_H_

namespace sdw::lock_rank {

/// The engine-wide lock hierarchy: a thread may only acquire a ranked mutex
/// whose rank is STRICTLY GREATER than every ranked mutex it already holds.
/// kUnranked mutexes (the default) are exempt from ordering (but not from
/// recursion detection) — external/test mutexes stay out of the hierarchy.
enum class Rank : int {
  kUnranked = 0,
  /// StallWatchdog state (held while sampling engine progress counters).
  kWatchdog = 10,
  /// CircularScanService state (scan I/O and channel puts happen outside).
  kScanService = 15,
  /// Engine client-facing locks: QpipeEngine active-set/counters,
  /// CjoinStage staged-submission buffer, Volcano thread registry.
  kEngine = 20,
  kCjoinStage = 22,
  kVolcano = 24,
  /// ThreadPool queue lock; dynamic-priority providers run under it and
  /// read the SP registry (kSpRegistry), so it ranks below the registry.
  kThreadPool = 30,
  /// CJOIN pipeline admission/slot state; completion paths reach the
  /// registry, query lifecycles, per-query output locks and channels.
  kCjoinPipeline = 40,
  /// SpRegistry host table; TryAttach reaches exchanges (tee/channel).
  kSpRegistry = 50,
  /// QueryLifecycle status/metrics (hooks always fire outside it).
  kQueryLifecycle = 60,
  /// Per-query output buffer lock (CJOIN out_mu); page-full emission
  /// reaches the query's sink channel while holding it.
  kQueryOutput = 70,
  /// TeeSink fan-out lock; Put forwards into satellite FIFOs under it.
  kTeeSink = 75,
  /// Page channels: SharedPagesList and FifoBuffer.
  kChannel = 80,
  /// BatchQueue blocking slow path.
  kBatchQueue = 90,
  /// TimerWheel (finish hooks cancel deadline timers while holding
  /// pipeline-level locks).
  kTimerWheel = 100,
  /// BufferPool LRU/index (misses read the device while unlocked).
  kBufferPool = 110,
  /// StorageDevice cache/latency model.
  kStorageDevice = 120,
  /// FaultInjector site table (Check() sites run under device locks).
  kFaultInjector = 130,
  /// Terminal locks that never acquire anything: BatchPool free list,
  /// CircularScanMap table, harness tallies, SharedAggregator registry.
  kLeaf = 140,
};

/// Human-readable name for a rank value (diagnostics).
const char* RankName(int rank);

/// Everything known at the moment a discipline violation is detected.
struct Violation {
  enum class Kind {
    kOrder,      // acquired rank <= a ranked lock already held
    kRecursion,  // re-acquired a mutex this thread already holds
    kOverflow,   // more than kMaxHeld locks held at once
  };
  struct Held {
    const void* mutex;
    int rank;
  };
  static constexpr int kMaxHeld = 32;

  Kind kind;
  const void* mutex;  // the offending acquisition
  int rank;
  Held held[kMaxHeld];  // this thread's held stack, oldest first
  int depth;
};

/// Handler called on violation instead of the default report-and-abort.
/// The handler runs BEFORE the underlying mutex is touched and may throw to
/// unwind out of the offending Lock() — how lock_rank_test observes
/// violations without dying. Returns the previous handler; nullptr restores
/// the default.
using ViolationHandler = void (*)(const Violation&);
ViolationHandler SetViolationHandlerForTest(ViolationHandler handler);

/// Checker entry points, called by sdw::Mutex. OnAcquire/EndWait run before
/// the underlying lock() so a true inversion reports instead of deadlocking.
void OnAcquire(const void* mu, int rank);
void OnTryAcquire(const void* mu, int rank);  // after a successful try_lock
void OnRelease(const void* mu);
/// CondVar wait: the lock is released for the wait's duration, then
/// re-checked against the (possibly non-empty) remaining stack on
/// re-acquire — catching waits on a non-innermost lock.
void BeginWait(const void* mu);
void EndWait(const void* mu, int rank);

/// Current thread's held-lock count (tests).
int HeldDepthForTest();

}  // namespace sdw::lock_rank

#endif  // SDW_COMMON_LOCK_RANK_H_
