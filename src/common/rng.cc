#include "common/rng.h"

#include <numeric>

namespace sdw {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  SDW_DCHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % range);
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<size_t> Rng::SampleDistinct(size_t n, size_t k) {
  SDW_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace sdw
