#include "common/timer_wheel.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/timing.h"

namespace sdw {

TimerWheel::TimerWheel(Options options)
    : options_(options), origin_nanos_(NowNanos()) {
  SDW_CHECK(options_.tick_nanos > 0);
  thread_ = std::thread([this] { Loop(); });
}

TimerWheel::~TimerWheel() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
}

int64_t TimerWheel::TickFor(int64_t deadline_nanos) const {
  const int64_t delta = deadline_nanos - origin_nanos_;
  if (delta <= 0) return 0;
  // Round up: a timer must never fire before its deadline.
  return (delta + options_.tick_nanos - 1) / options_.tick_nanos;
}

uint64_t TimerWheel::Schedule(int64_t deadline_nanos,
                              std::function<void()> fn) {
  uint64_t id;
  {
    MutexLock lock(mu_);
    id = next_id_++;
    timers_.emplace(id, Timer{deadline_nanos, std::move(fn)});
    PlaceLocked(id, deadline_nanos);
  }
  cv_.NotifyAll();  // wake the (possibly idle) wheel thread
  return id;
}

bool TimerWheel::Cancel(uint64_t id) {
  MutexLock lock(mu_);
  // The slot vectors keep the id; AdvanceOneTickLocked / cascades skip ids
  // with no live timers_ entry (lazy deletion keeps Cancel O(1)).
  return timers_.erase(id) != 0;
}

size_t TimerWheel::pending() const {
  MutexLock lock(mu_);
  return timers_.size();
}

uint64_t TimerWheel::fired() const {
  MutexLock lock(mu_);
  return fired_;
}

uint64_t TimerWheel::wakeups() const {
  MutexLock lock(mu_);
  return wakeups_;
}

int64_t TimerWheel::NextDueTickLocked() const {
  int64_t next = std::numeric_limits<int64_t>::max();
  for (const auto& [id, timer] : timers_) {
    const int64_t t = TickFor(timer.deadline_nanos);
    if (t < next) next = t;
  }
  return next;
}

void TimerWheel::PlaceLocked(uint64_t id, int64_t deadline_nanos) {
  int64_t target = TickFor(deadline_nanos);
  // Never hang a timer on a tick the wheel already passed: the slot was
  // collected and would not be visited again for a full rotation. (Cascades
  // re-place before the level-0 collection of the same advance, so a
  // cascaded timer due exactly now still fires this tick.)
  if (target <= current_tick_) target = current_tick_ + 1;
  for (int level = 0; level < kLevels; ++level) {
    const int epoch_shift = kSlotBits * (level + 1);
    // Same-epoch check: within one level-(L+1) slot span, slot indexes at
    // level L are strictly ordered, so the timer cannot be hung on a slot
    // the cursor already swept this rotation.
    if ((target >> epoch_shift) == (current_tick_ >> epoch_shift)) {
      const uint64_t slot =
          static_cast<uint64_t>(target >> (kSlotBits * level)) & (kSlots - 1);
      wheel_[level][slot].push_back(id);
      return;
    }
  }
  // Beyond the wheel's span (~64^4 ticks ≈ 4.6 h at the default 1 ms tick):
  // park in the top-level slot behind the cursor; it cascades once per top
  // rotation and is then re-hung by its true deadline.
  const uint64_t park =
      (static_cast<uint64_t>(current_tick_ >> (kSlotBits * (kLevels - 1))) +
       kSlots - 1) &
      (kSlots - 1);
  wheel_[kLevels - 1][park].push_back(id);
}

void TimerWheel::AdvanceOneTickLocked(std::vector<Timer>* due) {
  ++current_tick_;
  // Cascade crossed higher-level slots first (top level outward) so their
  // timers are re-hung before the level-0 collection below — a cascaded
  // timer due this very tick still fires this tick.
  for (int level = kLevels - 1; level >= 1; --level) {
    const int shift = kSlotBits * level;
    if ((current_tick_ & ((int64_t{1} << shift) - 1)) != 0) continue;
    const uint64_t slot =
        static_cast<uint64_t>(current_tick_ >> shift) & (kSlots - 1);
    std::vector<uint64_t> ids = std::move(wheel_[level][slot]);
    wheel_[level][slot].clear();
    for (uint64_t id : ids) {
      auto it = timers_.find(id);
      if (it == timers_.end()) continue;  // cancelled
      // Re-hang relative to the new cursor; due-now timers land on the
      // level-0 slot collected below.
      int64_t target = TickFor(it->second.deadline_nanos);
      if (target <= current_tick_) {
        wheel_[0][static_cast<uint64_t>(current_tick_) & (kSlots - 1)]
            .push_back(id);
      } else {
        PlaceLocked(id, it->second.deadline_nanos);
      }
    }
  }
  auto& slot0 = wheel_[0][static_cast<uint64_t>(current_tick_) & (kSlots - 1)];
  for (uint64_t id : slot0) {
    auto it = timers_.find(id);
    if (it == timers_.end()) continue;  // cancelled
    due->push_back(std::move(it->second));
    timers_.erase(it);
  }
  slot0.clear();
}

void TimerWheel::CatchUpLocked(int64_t now_tick, std::vector<Timer>* due) {
  for (auto& level : wheel_) {
    for (auto& slot : level) slot.clear();
  }
  current_tick_ = now_tick;
  for (auto it = timers_.begin(); it != timers_.end();) {
    if (TickFor(it->second.deadline_nanos) <= current_tick_) {
      due->push_back(std::move(it->second));
      it = timers_.erase(it);
    } else {
      PlaceLocked(it->first, it->second.deadline_nanos);
      ++it;
    }
  }
}

void TimerWheel::Loop() {
  MutexLock lock(mu_);
  while (!stop_) {
    if (timers_.empty()) {
      // Idle: no per-tick wakeups until something is scheduled.
      while (!stop_ && timers_.empty()) cv_.Wait(mu_);
      continue;
    }
    ++wakeups_;
    const int64_t now = NowNanos();
    const int64_t now_tick = (now - origin_nanos_) / options_.tick_nanos;
    if (now_tick <= current_tick_) {
      // Sleep straight to the earliest live timer's tick, not the next tick
      // boundary: a wheel holding one far-out deadline must not wake every
      // tick doing nothing. Recomputed fresh each pass (O(pending)), and a
      // Schedule() of an earlier deadline notifies cv_ so the sleep is cut
      // short and re-planned. A stale early wakeup merely re-loops.
      const int64_t wake_tick =
          std::max(current_tick_ + 1, NextDueTickLocked());
      const int64_t next_boundary =
          origin_nanos_ + wake_tick * options_.tick_nanos;
      cv_.WaitFor(mu_, next_boundary - now);
      continue;
    }
    std::vector<Timer> due;
    if (now_tick - current_tick_ > static_cast<int64_t>(2 * kSlots)) {
      // Far behind (the wheel sat idle with nothing scheduled, then a
      // timer arrived): rebuilding from the live-timer map is O(pending),
      // where ticking the gap closed one by one under mu_ would be
      // O(idle hours) of lock-held spinning.
      CatchUpLocked(now_tick, &due);
    } else {
      while (current_tick_ < now_tick && !stop_) {
        AdvanceOneTickLocked(&due);
      }
    }
    if (!due.empty()) {
      fired_ += due.size();
      // Fire outside the wheel lock: callbacks take lifecycle/transport
      // locks (RequestCancel → CancelReader) and may re-enter Schedule.
      lock.Unlock();
      for (auto& t : due) t.fn();
      lock.Lock();
    }
  }
}

}  // namespace sdw
