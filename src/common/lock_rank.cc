#include "common/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__GLIBC__) || defined(__APPLE__)
#include <execinfo.h>
#define SDW_HAVE_BACKTRACE 1
#else
#define SDW_HAVE_BACKTRACE 0
#endif

namespace sdw::lock_rank {
namespace {

struct ThreadState {
  Violation::Held held[Violation::kMaxHeld];
  int depth = 0;
};

// Per-thread held-lock stack. Plain POD thread_local: no allocation on the
// lock path, trivially destructible (safe during thread teardown, when
// detached pool workers may still release pool locks).
thread_local ThreadState tl_state;

std::atomic<ViolationHandler> g_handler{nullptr};

const char* KindName(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kOrder:
      return "rank order inversion";
    case Violation::Kind::kRecursion:
      return "recursive acquisition";
    case Violation::Kind::kOverflow:
      return "held-lock stack overflow";
  }
  return "?";
}

[[noreturn]] void DefaultReport(const Violation& v) {
  std::fprintf(stderr,
               "lock_rank: %s acquiring mutex %p (rank %d %s)\n"
               "lock_rank: held stack (oldest first):\n",
               KindName(v.kind), v.mutex, v.rank, RankName(v.rank));
  for (int i = 0; i < v.depth; ++i) {
    std::fprintf(stderr, "lock_rank:   [%d] mutex %p rank %d %s\n", i,
                 v.held[i].mutex, v.held[i].rank, RankName(v.held[i].rank));
  }
#if SDW_HAVE_BACKTRACE
  void* frames[64];
  const int n = backtrace(frames, 64);
  std::fprintf(stderr, "lock_rank: acquisition backtrace:\n");
  backtrace_symbols_fd(frames, n, /*fd=*/2);
#endif
  std::abort();
}

void Report(Violation::Kind kind, const void* mu, int rank) {
  Violation v;
  v.kind = kind;
  v.mutex = mu;
  v.rank = rank;
  v.depth = tl_state.depth;
  for (int i = 0; i < v.depth; ++i) v.held[i] = tl_state.held[i];
  if (ViolationHandler handler = g_handler.load(std::memory_order_acquire)) {
    handler(v);  // may throw: the offending lock() is never reached
    return;
  }
  DefaultReport(v);
}

// Shared check+push; `ordered` is false for try-locks, which cannot
// deadlock on an inversion and are therefore exempt from the order check
// (they still count as held and are recursion-checked).
void Push(const void* mu, int rank, bool ordered) {
  ThreadState& st = tl_state;
  for (int i = 0; i < st.depth; ++i) {
    if (st.held[i].mutex == mu) {
      Report(Violation::Kind::kRecursion, mu, rank);
      return;
    }
  }
  if (ordered && rank != 0) {
    for (int i = 0; i < st.depth; ++i) {
      if (st.held[i].rank != 0 && st.held[i].rank >= rank) {
        Report(Violation::Kind::kOrder, mu, rank);
        return;
      }
    }
  }
  if (st.depth == Violation::kMaxHeld) {
    Report(Violation::Kind::kOverflow, mu, rank);
    return;
  }
  st.held[st.depth++] = {mu, rank};
}

// Removes `mu` from the stack, searching from the top: releases are almost
// always LIFO, but unique_lock-style early unlocks may interleave.
void Remove(const void* mu) {
  ThreadState& st = tl_state;
  for (int i = st.depth - 1; i >= 0; --i) {
    if (st.held[i].mutex == mu) {
      for (int j = i; j + 1 < st.depth; ++j) st.held[j] = st.held[j + 1];
      --st.depth;
      return;
    }
  }
  // Unlock of a lock this checker never saw locked (e.g. adopted from
  // outside). Nothing to do — the checker only tracks its own pushes.
}

}  // namespace

const char* RankName(int rank) {
  switch (static_cast<Rank>(rank)) {
    case Rank::kUnranked:
      return "(unranked)";
    case Rank::kWatchdog:
      return "watchdog";
    case Rank::kScanService:
      return "scan-service";
    case Rank::kEngine:
      return "engine";
    case Rank::kCjoinStage:
      return "cjoin-stage";
    case Rank::kVolcano:
      return "volcano";
    case Rank::kThreadPool:
      return "thread-pool";
    case Rank::kCjoinPipeline:
      return "cjoin-pipeline";
    case Rank::kSpRegistry:
      return "sp-registry";
    case Rank::kQueryLifecycle:
      return "query-lifecycle";
    case Rank::kQueryOutput:
      return "query-output";
    case Rank::kTeeSink:
      return "tee-sink";
    case Rank::kChannel:
      return "channel";
    case Rank::kBatchQueue:
      return "batch-queue";
    case Rank::kTimerWheel:
      return "timer-wheel";
    case Rank::kBufferPool:
      return "buffer-pool";
    case Rank::kStorageDevice:
      return "storage-device";
    case Rank::kFaultInjector:
      return "fault-injector";
    case Rank::kLeaf:
      return "leaf";
  }
  return "(unknown)";
}

ViolationHandler SetViolationHandlerForTest(ViolationHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void OnAcquire(const void* mu, int rank) { Push(mu, rank, /*ordered=*/true); }

void OnTryAcquire(const void* mu, int rank) {
  Push(mu, rank, /*ordered=*/false);
}

void OnRelease(const void* mu) { Remove(mu); }

void BeginWait(const void* mu) { Remove(mu); }

void EndWait(const void* mu, int rank) { Push(mu, rank, /*ordered=*/true); }

int HeldDepthForTest() { return tl_state.depth; }

}  // namespace sdw::lock_rank
