// A shared byte budget with lock-free reserve/release — the admission-time
// overload gate (graceful degradation under memory pressure).
//
// Admission paths TryReserve a fixed per-query cost before allocating any
// real state; when the budget is exhausted the query is shed with
// kResourceExhausted and a retry_after hint (common/retry.h) instead of
// letting the engine thrash or abort. Completion/rejection paths Release
// exactly what they reserved.

#ifndef SDW_COMMON_MEMORY_BUDGET_H_
#define SDW_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace sdw {

/// Atomic reserve/release byte accounting against a fixed capacity.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  SDW_DISALLOW_COPY(MemoryBudget);

  /// Reserves `bytes` if the budget allows; false when it would overflow
  /// capacity (the caller sheds the work instead of queueing it).
  bool TryReserve(uint64_t bytes) {
    uint64_t cur = used_.load(std::memory_order_relaxed);
    while (true) {
      if (cur + bytes > capacity_) return false;
      if (used_.compare_exchange_weak(cur, cur + bytes,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Returns a prior reservation.
  void Release(uint64_t bytes) {
    const uint64_t prev = used_.fetch_sub(bytes, std::memory_order_acq_rel);
    SDW_CHECK_MSG(prev >= bytes, "MemoryBudget::Release of unreserved bytes");
  }

  uint64_t used() const { return used_.load(std::memory_order_acquire); }
  uint64_t capacity() const { return capacity_; }

 private:
  const uint64_t capacity_;
  std::atomic<uint64_t> used_{0};
};

}  // namespace sdw

#endif  // SDW_COMMON_MEMORY_BUDGET_H_
