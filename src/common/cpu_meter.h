// Measures "average # cores used" over an activity period, the metric the
// paper reports in its per-experiment measurement tables (e.g. "Avg. # Cores
// Used 23.91"): process CPU time divided by wall time over the interval.

#ifndef SDW_COMMON_CPU_METER_H_
#define SDW_COMMON_CPU_METER_H_

#include <cstdint>

namespace sdw {

/// Start/stop meter for average core usage of the whole process.
class CpuMeter {
 public:
  /// Begins the measurement interval.
  void Start();
  /// Ends the interval; accessors become valid.
  void Stop();

  /// Average cores used = process CPU seconds / wall seconds.
  double AvgCoresUsed() const;
  double WallSeconds() const;
  double CpuSeconds() const;

 private:
  int64_t wall_start_ = 0;
  int64_t wall_end_ = 0;
  int64_t cpu_start_ = 0;
  int64_t cpu_end_ = 0;
};

}  // namespace sdw

#endif  // SDW_COMMON_CPU_METER_H_
