// CPU-time breakdown instrumentation reproducing the paper's VTune-based
// component stacks (Figures 11 and 12): Hashing, Joins, Aggregation, Scans,
// Locks, Misc.
//
// Components accumulate *thread CPU nanoseconds* measured with scoped timers
// placed around the corresponding code paths, at page/batch granularity so
// the clock_gettime cost stays negligible.

#ifndef SDW_COMMON_BREAKDOWN_H_
#define SDW_COMMON_BREAKDOWN_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/timing.h"

namespace sdw {

/// The six components the paper plots, in stack order.
enum class Component {
  kHashing = 0,     // hash() and equal() in join build/probe
  kJoins,           // remaining join work incl. bitmap ops in shared joins
  kAggregation,     // group-by maintenance and running sums
  kScans,           // page iteration and selection predicates
  kLocks,           // channel / buffer-pool critical sections
  kMisc,            // packet dispatch, projection, routing
};
inline constexpr int kNumComponents = 6;

/// Stable display name ("Hashing", "Joins", ...).
const char* ComponentName(Component c);

/// Process-global accumulator of per-component CPU time.
class Breakdown {
 public:
  /// Singleton accumulator.
  static Breakdown& Global();

  /// Adds `cpu_nanos` to component `c`.
  void Add(Component c, int64_t cpu_nanos) {
    buckets_[static_cast<int>(c)].fetch_add(cpu_nanos,
                                            std::memory_order_relaxed);
  }

  /// Zeroes all buckets (call between experiment points).
  void Reset();

  /// CPU seconds accumulated for component `c` since the last Reset.
  double Seconds(Component c) const {
    return static_cast<double>(
               buckets_[static_cast<int>(c)].load(std::memory_order_relaxed)) *
           1e-9;
  }

  /// Sum over all components, in seconds.
  double TotalSeconds() const;

  /// One-line summary "Hashing=1.2s Joins=0.3s ...".
  std::string ToString() const;

 private:
  std::array<std::atomic<int64_t>, kNumComponents> buckets_{};
};

/// RAII scope charging elapsed thread-CPU time to a component. The CPU
/// clock read is a syscall: place these at page/batch granularity only.
class ScopedComponentTimer {
 public:
  explicit ScopedComponentTimer(Component c)
      : component_(c), start_(ThreadCpuNanos()) {}
  ~ScopedComponentTimer() {
    Breakdown::Global().Add(component_, ThreadCpuNanos() - start_);
  }

  ScopedComponentTimer(const ScopedComponentTimer&) = delete;
  ScopedComponentTimer& operator=(const ScopedComponentTimer&) = delete;

 private:
  Component component_;
  int64_t start_;
};

/// Wall-clock variant (vDSO-cheap) for very short critical sections where
/// wall time ≈ CPU time, e.g. buffer-pool latching.
class ScopedWallComponentTimer {
 public:
  explicit ScopedWallComponentTimer(Component c)
      : component_(c), start_(NowNanos()) {}
  ~ScopedWallComponentTimer() {
    Breakdown::Global().Add(component_, NowNanos() - start_);
  }

  ScopedWallComponentTimer(const ScopedWallComponentTimer&) = delete;
  ScopedWallComponentTimer& operator=(const ScopedWallComponentTimer&) =
      delete;

 private:
  Component component_;
  int64_t start_;
};

}  // namespace sdw

#endif  // SDW_COMMON_BREAKDOWN_H_
