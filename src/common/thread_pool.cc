#include "common/thread_pool.h"

#include <utility>

namespace sdw {

ThreadPool::ThreadPool(std::string name, ThreadPoolOptions options)
    : name_(std::move(name)), options_(options), queue_(options.run_queue) {}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task, int priority,
                        std::function<int()> dynamic_priority) {
  MutexLock lock(mu_);
  SDW_CHECK_MSG(!shutdown_, "Submit on shut-down pool %s", name_.c_str());
  queue_.Push(std::move(task), priority, std::move(dynamic_priority));
  ++active_tasks_;
  // Spawn unless the queued tasks are already covered by distinct idle
  // workers. Comparing against the whole queue (not just "is anyone idle")
  // matters: tasks are packets that may block for their entire lifetime, so
  // two tasks sharing one worker can deadlock an operator pipeline.
  const bool need_worker =
      idle_workers_ < queue_.size() &&
      (options_.max_threads == 0 || threads_.size() < options_.max_threads);
  if (need_worker) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
  work_cv_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  while (active_tasks_ != 0) idle_cv_.Wait(mu_);
}

size_t ThreadPool::num_threads() const {
  MutexLock lock(mu_);
  return threads_.size();
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(mu_);
  while (true) {
    while (queue_.empty() && !shutdown_) {
      ++idle_workers_;
      work_cv_.Wait(mu_);
      --idle_workers_;
    }
    if (queue_.empty() && shutdown_) return;
    std::function<void()> task = queue_.Pop();
    lock.Unlock();
    task();
    lock.Lock();
    if (--active_tasks_ == 0) idle_cv_.NotifyAll();
  }
}

}  // namespace sdw
