// Streaming summary statistics for experiment measurements (response times,
// throughput samples). Matches what the paper reports: averages with standard
// deviations across iterations.

#ifndef SDW_COMMON_STATS_H_
#define SDW_COMMON_STATS_H_

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sdw {

/// Monotonic event counter shared across threads. Hot paths Add() with a
/// relaxed atomic (no synchronization cost); readers take point-in-time
/// snapshots and difference them against a base recorded at reset (see
/// CjoinPipeline's per-run stat bases). Used for the CJOIN distributor
/// scratch-reuse and admission-scan counters.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Accumulates samples and exposes mean / stddev / min / max / percentiles.
class Stats {
 public:
  /// Adds one sample.
  void Add(double v) { samples_.push_back(v); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double Stddev() const;
  double Min() const;
  double Max() const;
  /// Percentile in [0,100] by nearest-rank on a sorted copy.
  double Percentile(double p) const;

  /// Relative stddev (stddev/mean), 0 when mean is 0.
  double RelStddev() const {
    double m = Mean();
    return m == 0.0 ? 0.0 : Stddev() / m;
  }

  const std::vector<double>& samples() const { return samples_; }

  /// "mean ± stddev" with the given unit suffix.
  std::string Summary(const std::string& unit = "") const;

 private:
  std::vector<double> samples_;
};

}  // namespace sdw

#endif  // SDW_COMMON_STATS_H_
