// Streaming summary statistics for experiment measurements (response times,
// throughput samples). Matches what the paper reports: averages with standard
// deviations across iterations.

#ifndef SDW_COMMON_STATS_H_
#define SDW_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace sdw {

/// Accumulates samples and exposes mean / stddev / min / max / percentiles.
class Stats {
 public:
  /// Adds one sample.
  void Add(double v) { samples_.push_back(v); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double Stddev() const;
  double Min() const;
  double Max() const;
  /// Percentile in [0,100] by nearest-rank on a sorted copy.
  double Percentile(double p) const;

  /// Relative stddev (stddev/mean), 0 when mean is 0.
  double RelStddev() const {
    double m = Mean();
    return m == 0.0 ? 0.0 : Stddev() / m;
  }

  const std::vector<double>& samples() const { return samples_; }

  /// "mean ± stddev" with the given unit suffix.
  std::string Summary(const std::string& unit = "") const;

 private:
  std::vector<double> samples_;
};

}  // namespace sdw

#endif  // SDW_COMMON_STATS_H_
