// Clang Thread Safety Analysis attribute macros.
//
// These expand to the clang `-Wthread-safety` attributes under clang and to
// nothing elsewhere, so annotations are free for gcc builds and enforced by
// the `build-tsa` preset (CMakePresets.json) / the CI `tsa` job, which
// compile with `-Wthread-safety -Wthread-safety-beta -Werror`.
//
// Conventions (see docs/CONCURRENCY.md for the full rules):
//  - Every field protected by a mutex is declared `GUARDED_BY(mu_)`.
//  - Every `*Locked()` helper is declared `REQUIRES(mu_)` instead of
//    documenting "requires mu_ held" in prose.
//  - `NO_THREAD_SAFETY_ANALYSIS` is a last resort; each use carries a
//    comment justifying why the analysis cannot see the invariant
//    (budget: fewer than 5 repo-wide).

#ifndef SDW_COMMON_THREAD_ANNOTATIONS_H_
#define SDW_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SDW_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SDW_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares a class as a lockable capability (sdw::Mutex).
#define CAPABILITY(x) SDW_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class whose lifetime holds a capability (sdw::MutexLock).
#define SCOPED_CAPABILITY SDW_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field is protected by the given mutex: reads and writes require it held.
#define GUARDED_BY(x) SDW_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define PT_GUARDED_BY(x) SDW_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define REQUIRES(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not on entry).
#define ACQUIRE(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry, not on exit).
#define RELEASE(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function tries to acquire; the first argument is the success return value.
#define TRY_ACQUIRE(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (guards
/// against self-deadlock on non-reentrant mutexes).
#define EXCLUDES(...) SDW_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SDW_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must be
/// commented with the invariant the analysis cannot express.
#define NO_THREAD_SAFETY_ANALYSIS \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // SDW_COMMON_THREAD_ANNOTATIONS_H_
