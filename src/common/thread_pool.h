// A growable worker pool. QPipe stages dispatch one task per packet and a
// packet occupies its worker for the packet's lifetime (the staged-database
// execution model), so the pool grows on demand up to a configurable cap and
// parks idle workers for reuse.

#ifndef SDW_COMMON_THREAD_POOL_H_
#define SDW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace sdw {

/// Growable pool executing std::function tasks. Tasks may block for long
/// periods (packets waiting on page channels), so the pool spawns a new
/// worker whenever a task arrives and no worker is idle.
class ThreadPool {
 public:
  /// `name` is used for debugging; `max_threads` caps growth (0 = unlimited).
  explicit ThreadPool(std::string name, size_t max_threads = 0);
  ~ThreadPool();

  SDW_DISALLOW_COPY(ThreadPool);

  /// Enqueues a task; spawns a worker if none is idle (subject to the cap).
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void WaitIdle();

  /// Number of workers ever spawned.
  size_t num_threads() const;

 private:
  void WorkerLoop();

  const std::string name_;
  const size_t max_threads_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals WaitIdle
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t idle_workers_ = 0;
  size_t active_tasks_ = 0;
  bool shutdown_ = false;
};

}  // namespace sdw

#endif  // SDW_COMMON_THREAD_POOL_H_
