// A growable worker pool. QPipe stages dispatch one task per packet and a
// packet occupies its worker for the packet's lifetime (the staged-database
// execution model), so the pool grows on demand up to a configurable cap and
// parks idle workers for reuse.
//
// The run queue is a PriorityRunQueue (common/run_queue.h), not a FIFO:
// when the pool is capped (or workers are otherwise saturated) the next
// freed worker pops the highest-effective-priority task — FIFO within a
// priority level, aging against starvation, and optional per-task dynamic
// priority providers (QPipe's shared-packet priority inheritance). With the
// default unlimited cap a worker is spawned per queued task and ordering is
// moot — exactly the seed behavior.

#ifndef SDW_COMMON_THREAD_POOL_H_
#define SDW_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/run_queue.h"

namespace sdw {

/// Pool configuration.
struct ThreadPoolOptions {
  /// Caps worker growth (0 = unlimited). Caution: tasks are packets that may
  /// block on each other through exchanges, so a cap below the number of
  /// mutually dependent same-stage packets can deadlock an operator
  /// pipeline — cap only pools whose tasks are independent (scan-only
  /// stages, scheduling experiments).
  size_t max_threads = 0;
  /// Ordering policy of the run queue (priority on/off, aging).
  RunQueueOptions run_queue;
};

/// Growable pool executing std::function tasks. Tasks may block for long
/// periods (packets waiting on page channels), so the pool spawns a new
/// worker whenever a task arrives and no worker is idle.
class ThreadPool {
 public:
  /// `name` is used for debugging; `max_threads` caps growth (0 = unlimited).
  explicit ThreadPool(std::string name, size_t max_threads = 0)
      : ThreadPool(std::move(name), ThreadPoolOptions{max_threads, {}}) {}

  ThreadPool(std::string name, ThreadPoolOptions options);
  ~ThreadPool();

  SDW_DISALLOW_COPY(ThreadPool);

  /// Enqueues a task; spawns a worker if none is idle (subject to the cap).
  /// Higher `priority` pops first; `dynamic_priority` (optional) is
  /// re-evaluated at pop time and overrides `priority` when larger — it is
  /// called under the pool lock and must not submit to this pool.
  void Submit(std::function<void()> task, int priority = 0,
              std::function<int()> dynamic_priority = nullptr);

  /// Blocks until all submitted tasks have finished.
  void WaitIdle();

  /// Number of workers ever spawned.
  size_t num_threads() const;

 private:
  void WorkerLoop();

  const std::string name_;
  const ThreadPoolOptions options_;

  // Ranked below the SP registry: dynamic-priority providers run under the
  // pool lock and read registry consumer priorities (priority inheritance).
  mutable Mutex mu_{lock_rank::Rank::kThreadPool};
  CondVar work_cv_;  // signals workers
  CondVar idle_cv_;  // signals WaitIdle
  PriorityRunQueue queue_ GUARDED_BY(mu_);
  std::vector<std::thread> threads_ GUARDED_BY(mu_);
  size_t idle_workers_ GUARDED_BY(mu_) = 0;
  size_t active_tasks_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace sdw

#endif  // SDW_COMMON_THREAD_POOL_H_
