// Bit-manipulation primitives used by the CJOIN query bitmaps and elsewhere.
//
// Two layers:
//  * free functions over raw uint64_t word spans — the hot path used for the
//    per-tuple bitmaps that travel through the CJOIN pipeline, where the word
//    storage lives in batch arenas;
//  * Bitset — an owning, resizable bitset for bookkeeping (pass masks,
//    active-query masks, slot allocators).

#ifndef SDW_COMMON_BITMAP_H_
#define SDW_COMMON_BITMAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/macros.h"

namespace sdw {

namespace bits {

/// Number of 64-bit words needed to hold `nbits` bits.
constexpr size_t WordsFor(size_t nbits) { return (nbits + 63) / 64; }

/// Sets bit `i` in the word span.
inline void Set(uint64_t* words, size_t i) {
  words[i >> 6] |= uint64_t{1} << (i & 63);
}

/// Clears bit `i` in the word span.
inline void Clear(uint64_t* words, size_t i) {
  words[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

/// Tests bit `i` in the word span.
inline bool Test(const uint64_t* words, size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1;
}

/// dst &= src over `nwords` words.
inline void AndWith(uint64_t* dst, const uint64_t* src, size_t nwords) {
  for (size_t w = 0; w < nwords; ++w) dst[w] &= src[w];
}

/// dst |= src over `nwords` words.
inline void OrWith(uint64_t* dst, const uint64_t* src, size_t nwords) {
  for (size_t w = 0; w < nwords; ++w) dst[w] |= src[w];
}

/// dst &= (a | b): the CJOIN filter step (match-bits OR pass-mask).
inline void AndWithOr(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                      size_t nwords) {
  for (size_t w = 0; w < nwords; ++w) dst[w] &= (a[w] | b[w]);
}

/// Fused filter kernel: dst &= (a | b), returning the OR of the resulting
/// words — zero iff the span went empty. Saves the separate Any() pass on
/// the multi-word filter path (the result words are still in registers).
inline uint64_t AndWithOrAny(uint64_t* dst, const uint64_t* a,
                             const uint64_t* b, size_t nwords) {
  uint64_t acc = 0;
  for (size_t w = 0; w < nwords; ++w) {
    dst[w] &= (a[w] | b[w]);
    acc |= dst[w];
  }
  return acc;
}

/// True if any bit is set in the span.
inline bool Any(const uint64_t* words, size_t nwords) {
  for (size_t w = 0; w < nwords; ++w) {
    if (words[w] != 0) return true;
  }
  return false;
}

/// Number of set bits in the span.
inline size_t Popcount(const uint64_t* words, size_t nwords) {
  size_t n = 0;
  for (size_t w = 0; w < nwords; ++w) n += std::popcount(words[w]);
  return n;
}

/// Zeroes the span.
inline void Zero(uint64_t* words, size_t nwords) {
  std::memset(words, 0, nwords * sizeof(uint64_t));
}

/// Copies `nwords` words from src to dst.
inline void Copy(uint64_t* dst, const uint64_t* src, size_t nwords) {
  std::memcpy(dst, src, nwords * sizeof(uint64_t));
}

/// Sets the first `nbits` bits and clears any trailing bits of the last
/// word, so word-granular scans of the span never see phantom set bits.
inline void FillOnes(uint64_t* words, size_t nbits) {
  const size_t full = nbits / 64;
  for (size_t w = 0; w < full; ++w) words[w] = ~uint64_t{0};
  const size_t rem = nbits % 64;
  if (rem != 0) words[full] = (uint64_t{1} << rem) - 1;
}

/// Index of the lowest set bit at or after `from`, or `nbits` if none.
size_t FindNextSet(const uint64_t* words, size_t nbits, size_t from);

}  // namespace bits

/// Owning, resizable bitset with a stable word layout (LSB-first).
class Bitset {
 public:
  Bitset() = default;
  /// Creates a bitset with `nbits` bits, all clear.
  explicit Bitset(size_t nbits) : nbits_(nbits), words_(bits::WordsFor(nbits)) {}

  size_t size() const { return nbits_; }
  size_t num_words() const { return words_.size(); }
  const uint64_t* words() const { return words_.data(); }
  uint64_t* words() { return words_.data(); }

  /// Grows (or shrinks) to `nbits` bits; new bits are clear.
  void Resize(size_t nbits);

  void Set(size_t i) {
    SDW_DCHECK(i < nbits_);
    bits::Set(words_.data(), i);
  }
  void Clear(size_t i) {
    SDW_DCHECK(i < nbits_);
    bits::Clear(words_.data(), i);
  }
  bool Test(size_t i) const {
    SDW_DCHECK(i < nbits_);
    return bits::Test(words_.data(), i);
  }

  /// Clears all bits (size unchanged).
  void Reset() { bits::Zero(words_.data(), words_.size()); }

  bool Any() const { return bits::Any(words_.data(), words_.size()); }
  size_t Count() const { return bits::Popcount(words_.data(), words_.size()); }

  /// Index of the lowest set bit at or after `from`, or size() if none.
  size_t FindNextSet(size_t from) const {
    return bits::FindNextSet(words_.data(), nbits_, from);
  }

  /// Index of the lowest *clear* bit, or size() if all set.
  size_t FindFirstClear() const;

  /// Renders e.g. "{0,3,17}" for debugging.
  std::string ToString() const;

 private:
  size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sdw

#endif  // SDW_COMMON_BITMAP_H_
