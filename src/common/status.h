// Lightweight Status / Result types for recoverable errors.
//
// sdw does not use exceptions (Google style). Functions that can fail for
// reasons the caller should handle return Status or Result<T>.
//
// Query-lifecycle taxonomy (the terminal states a QueryTicket can report —
// see core/query_ticket.h):
//
//   kOk                — the query ran to completion; the full result set is
//                        available. Also reported when a client-imposed
//                        row_limit stopped the drain early: the truncation
//                        was requested, so the (partial) result is valid.
//   kCancelled         — Cancel() was observed before the result finished
//                        draining. The result set is incomplete and must not
//                        be read. A Cancel() that arrives after completion is
//                        a no-op: the ticket stays kOk.
//   kDeadlineExceeded  — the query's SubmitOptions deadline expired, either
//                        at admission (rejected before any work: no packet
//                        wiring, no CJOIN dimension scan) or while the result
//                        was draining. The result set is incomplete.
//   kResourceExhausted — admission was rejected outright: the CJOIN pipeline
//                        ran out of query slots, or the MemoryBudget gate
//                        shed the query under overload. No work was done.
//                        Overload rejections carry a machine-readable
//                        "[retry_after_ms=N]" hint in the message (see
//                        common/retry.h: RetryAfterNanosFrom) telling the
//                        client when resubmission is likely to succeed.
//   kUnavailable       — a shared resource the query depends on failed
//                        *transiently* and the engine exhausted its retry
//                        budget (capped exponential backoff, common/retry.h):
//                        e.g. a storage read kept failing, or a dimension
//                        scan failed during CJOIN admission. The failure is
//                        expected to clear; resubmitting is reasonable.
//   kDataLoss          — a *permanent* page fault: the storage layer reported
//                        a page as unreadable. Queries attached to the shared
//                        scan at that epoch fail with this code; the scan
//                        skips the poisoned page and keeps serving later
//                        admissions. Resubmitting only helps if the page
//                        recovers.
//   kInternal          — an engine fault (e.g. a packet worker threw); the
//                        ticket is completed instead of hanging forever.
//
// Every ticket terminates in exactly one of these states: no submission path
// may leave a ticket's Wait() blocked indefinitely.

#ifndef SDW_COMMON_STATUS_H_
#define SDW_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace sdw {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kCancelled,
  kDeadlineExceeded,
  kInternal,
  kUnavailable,
  kDataLoss,
};

/// Returns a stable human-readable name for a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

/// Value-semantic error carrier: a code plus an optional message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "CODE: message" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    SDW_CHECK(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// Returns the contained status (OK when holding a value).
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(v_);
  }

  /// Returns the value; aborts if not ok().
  const T& value() const& {
    SDW_CHECK_MSG(ok(), "Result::value on error: %s",
                  std::get<Status>(v_).ToString().c_str());
    return std::get<T>(v_);
  }
  T& value() & {
    SDW_CHECK_MSG(ok(), "Result::value on error: %s",
                  std::get<Status>(v_).ToString().c_str());
    return std::get<T>(v_);
  }
  T&& value() && {
    SDW_CHECK_MSG(ok(), "Result::value on error: %s",
                  std::get<Status>(v_).ToString().c_str());
    return std::move(std::get<T>(v_));
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace sdw

#endif  // SDW_COMMON_STATUS_H_
