// Retry policy for transient failures: capped exponential backoff with
// jitter, plus the helpers that classify retryable errors and carry
// "retry after" hints inside Status messages.
//
// Used by the storage scan cursors (storage/scan.h) to absorb transient read
// faults before they surface to queries, and by the CJOIN admission gate to
// tell shed clients when resubmission is likely to succeed.

#ifndef SDW_COMMON_RETRY_H_
#define SDW_COMMON_RETRY_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace sdw {

/// Capped exponential backoff: attempt k (1-based) sleeps
/// min(initial * multiplier^(k-1), max), scaled by a random factor in
/// [1 - jitter, 1] so synchronized retriers spread out.
struct RetryPolicy {
  /// Total tries including the first; 1 means "never retry".
  uint32_t max_attempts = 4;
  int64_t initial_backoff_nanos = 200'000;     // 0.2 ms
  double multiplier = 2.0;
  int64_t max_backoff_nanos = 10'000'000;      // 10 ms cap
  double jitter = 0.5;

  /// Errors worth retrying: the resource is expected to come back.
  static bool IsTransient(const Status& s) {
    return s.code() == StatusCode::kUnavailable ||
           s.code() == StatusCode::kResourceExhausted;
  }

  /// Backoff before retry `attempt` (1-based = after the first failure).
  int64_t BackoffNanos(uint32_t attempt, Rng* rng) const {
    double nanos = static_cast<double>(initial_backoff_nanos);
    for (uint32_t i = 1; i < attempt; ++i) nanos *= multiplier;
    if (nanos > static_cast<double>(max_backoff_nanos)) {
      nanos = static_cast<double>(max_backoff_nanos);
    }
    const double scale = 1.0 - jitter * rng->NextDouble();
    return static_cast<int64_t>(nanos * scale);
  }
};

/// Counters a retrying caller accumulates (surfaced through stats structs).
/// Atomics with relaxed ordering: the retrier bumps them mid-operation while
/// stats readers snapshot from other threads — independent counters, no
/// cross-field consistency promised.
struct RetryStats {
  std::atomic<uint64_t> retries{0};   // sleeps taken after a transient failure
  std::atomic<uint64_t> giveups{0};   // transient errors exhausting the budget
  std::atomic<int64_t> backoff_nanos{0};  // total time spent backing off
};

/// Builds the overload-rejection status: kResourceExhausted with a
/// machine-readable resubmission hint appended to the message. The hint is
/// rendered in whole milliseconds ROUNDED UP and clamped to >= 1 ms: a
/// sub-millisecond hint must not truncate to "[retry_after_ms=0]", which
/// RetryAfterNanosFrom reads as "no hint" and shed clients would answer by
/// resubmitting immediately instead of backing off.
inline Status ResourceExhaustedWithRetryAfter(const std::string& m,
                                              int64_t retry_after_nanos) {
  int64_t ms = retry_after_nanos / 1'000'000;
  if (retry_after_nanos % 1'000'000 != 0) ++ms;
  if (ms < 1) ms = 1;
  return Status::ResourceExhausted(m + " [retry_after_ms=" +
                                   std::to_string(ms) + "]");
}

/// Extracts the retry_after hint from a status message; 0 when absent.
/// Saturates instead of overflowing: a hint too large to express in nanos
/// (adversarial or corrupted message text) comes back as the largest
/// representable backoff, never a wrapped negative.
inline int64_t RetryAfterNanosFrom(const Status& s) {
  const std::string& m = s.message();
  const char* tag = "[retry_after_ms=";
  const size_t pos = m.find(tag);
  if (pos == std::string::npos) return 0;
  // Largest ms value whose nanos fit in int64 (INT64_MAX / 1e6).
  constexpr int64_t kMaxMs = INT64_MAX / 1'000'000;
  int64_t ms = 0;
  for (size_t i = pos + std::char_traits<char>::length(tag);
       i < m.size() && m[i] >= '0' && m[i] <= '9'; ++i) {
    const int digit = m[i] - '0';
    if (ms > (kMaxMs - digit) / 10) {
      ms = kMaxMs;  // saturate; keep consuming digits would not change it
      break;
    }
    ms = ms * 10 + digit;
  }
  return ms * 1'000'000;
}

}  // namespace sdw

#endif  // SDW_COMMON_RETRY_H_
