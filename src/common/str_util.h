// Small string helpers (printf-style formatting) used by reports and
// signatures.

#ifndef SDW_COMMON_STR_UTIL_H_
#define SDW_COMMON_STR_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace sdw {

/// printf into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Escapes an identifier (column/table name, string literal) for embedding
/// in a canonical signature string: backslash-escapes `\` and the signature
/// delimiter set `, ; | & ( ) = ' : #`. Signatures are compared for
/// EQUALITY (shared-plan detection, shared-agg group binding, query
/// folding), so two distinct identifier lists must never concatenate to the
/// same string — "a,b" as one column vs ["a","b"] joined with ",".
/// Identifiers without special characters (the whole SSB schema) come back
/// unchanged, so normal signatures are unaffected.
std::string EscapeSigToken(const std::string& s);

}  // namespace sdw

#endif  // SDW_COMMON_STR_UTIL_H_
