// Small string helpers (printf-style formatting) used by reports and
// signatures.

#ifndef SDW_COMMON_STR_UTIL_H_
#define SDW_COMMON_STR_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace sdw {

/// printf into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

}  // namespace sdw

#endif  // SDW_COMMON_STR_UTIL_H_
