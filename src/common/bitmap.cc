#include "common/bitmap.h"

namespace sdw {

namespace bits {

size_t FindNextSet(const uint64_t* words, size_t nbits, size_t from) {
  if (from >= nbits) return nbits;
  size_t w = from >> 6;
  uint64_t cur = words[w] & (~uint64_t{0} << (from & 63));
  const size_t nwords = WordsFor(nbits);
  while (true) {
    if (cur != 0) {
      size_t bit = (w << 6) + static_cast<size_t>(std::countr_zero(cur));
      return bit < nbits ? bit : nbits;
    }
    if (++w >= nwords) return nbits;
    cur = words[w];
  }
}

}  // namespace bits

void Bitset::Resize(size_t nbits) {
  nbits_ = nbits;
  words_.resize(bits::WordsFor(nbits), 0);
  // Clear any stale bits beyond the new size in the last word.
  if (nbits_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (nbits_ % 64)) - 1;
  }
}

size_t Bitset::FindFirstClear() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != ~uint64_t{0}) {
      size_t bit = (w << 6) + static_cast<size_t>(std::countr_one(words_[w]));
      return bit < nbits_ ? bit : nbits_;
    }
  }
  return nbits_;
}

std::string Bitset::ToString() const {
  std::string out = "{";
  bool first = true;
  for (size_t i = FindNextSet(0); i < nbits_; i = FindNextSet(i + 1)) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace sdw
