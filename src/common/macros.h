// Core assertion and class-annotation macros used across sdw.
//
// The library follows the Google C++ style of not using exceptions: internal
// invariant violations abort via SDW_CHECK, recoverable conditions surface as
// sdw::Status (see status.h).

#ifndef SDW_COMMON_MACROS_H_
#define SDW_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process with a message when `cond` is false. Always on.
#define SDW_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SDW_CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Like SDW_CHECK but with a printf-style message appended.
#define SDW_CHECK_MSG(cond, ...)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SDW_CHECK failed: %s at %s:%d: ", #cond,       \
                   __FILE__, __LINE__);                                    \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Debug-only invariant check; compiled out in release builds.
#ifndef NDEBUG
#define SDW_DCHECK(cond) SDW_CHECK(cond)
#else
#define SDW_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

/// Best-effort read prefetch of the cache line holding `addr` (no-op on
/// compilers without __builtin_prefetch). Used by batch-at-a-time probe
/// loops to overlap dependent hash-bucket loads.
#if defined(__GNUC__) || defined(__clang__)
#define SDW_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define SDW_PREFETCH(addr) ((void)(addr))
#endif

/// Deletes copy constructor and copy assignment for `TypeName`.
#define SDW_DISALLOW_COPY(TypeName)      \
  TypeName(const TypeName&) = delete;    \
  TypeName& operator=(const TypeName&) = delete

#endif  // SDW_COMMON_MACROS_H_
