// Runtime-dispatched SIMD kernels for the multi-word bitmap hot paths.
//
// Each kernel here is a drop-in replacement for its scalar bits:: twin with
// BIT-IDENTICAL results — which is what lets shared pipeline code call them
// unconditionally while the differential suites still compare batched vs
// scalar paths bit-exactly. Dispatch policy (see docs/STORAGE.md):
//
//  * Compile-time gate: the AVX2 bodies are compiled only when the build
//    enables SDW_SIMD (CMake option, default ON) on x86-64. Per-function
//    target("avx2") attributes mean no global -mavx2 flag — the rest of the
//    library stays baseline-ISA.
//  * Runtime gate: __builtin_cpu_supports("avx2"), probed once and cached.
//    Non-AVX2 hosts (and SDW_SIMD=OFF builds) run the scalar bits:: loops
//    through the same entry points.
//
// Dispatch is an indirect call through a pointer resolved at static
// initialization — callers in per-tuple loops pay one predictable indirect
// branch, not a CPUID test.

#ifndef SDW_COMMON_SIMD_H_
#define SDW_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace sdw::simd {

namespace internal {

using AndWithOrAnyFn = uint64_t (*)(uint64_t*, const uint64_t*,
                                    const uint64_t*, size_t);
using OrAccumulateAnyFn = uint64_t (*)(uint64_t*, const uint64_t*, size_t);

extern const AndWithOrAnyFn kAndWithOrAny;
extern const OrAccumulateAnyFn kOrAccumulateAny;

}  // namespace internal

/// True when the AVX2 kernels are compiled in AND this CPU supports AVX2
/// (i.e. the dispatched kernels below run vectorized, not scalar).
bool Avx2Active();

/// dst &= (a | b) over nwords, returning the OR of the resulting words —
/// zero iff the span went empty. Same contract as bits::AndWithOrAny; the
/// CJOIN filter's multi-word match|pass pass.
inline uint64_t AndWithOrAny(uint64_t* dst, const uint64_t* a,
                             const uint64_t* b, size_t nwords) {
  return internal::kAndWithOrAny(dst, a, b, nwords);
}

/// acc |= src over nwords, returning the OR of the src words — zero iff the
/// span is empty. The distributor's touched-slot (`seen`) accumulation +
/// empty-bitmap skip test, fused.
inline uint64_t OrAccumulateAny(uint64_t* acc, const uint64_t* src,
                                size_t nwords) {
  return internal::kOrAccumulateAny(acc, src, nwords);
}

}  // namespace sdw::simd

#endif  // SDW_COMMON_SIMD_H_
