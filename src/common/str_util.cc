#include "common/str_util.h"

#include <cstdio>

namespace sdw {

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string EscapeSigToken(const std::string& s) {
  static constexpr char kSpecials[] = "\\,;|&()=':#";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    for (const char* p = kSpecials; *p != '\0'; ++p) {
      if (c == *p) {
        out += '\\';
        break;
      }
    }
    out += c;
  }
  return out;
}

}  // namespace sdw
