// Cache-line-aligned allocation for hot fixed-stride arrays.
//
// std::vector's default allocator only guarantees 16-byte alignment, so a
// 32-byte row (four bitmap words — the 256-query-slot regime) placed at a
// 16-byte-odd base straddles two cache lines on every other row. Randomly
// indexed row arrays (the filter's entry_bits_) pay double line traffic for
// those rows; a 64-byte base makes every 32-byte row land inside one line.

#ifndef SDW_COMMON_ALIGNED_H_
#define SDW_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace sdw {

/// Minimal std::allocator replacement producing `Align`-byte-aligned blocks.
template <typename T, std::size_t Align>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T), "Align must not weaken T's alignment");
  static_assert((Align & (Align - 1)) == 0, "Align must be a power of two");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Vector whose data() is 64-byte (cache line) aligned.
template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace sdw

#endif  // SDW_COMMON_ALIGNED_H_
