#include "common/stats.h"

#include <algorithm>
#include <cstdio>

namespace sdw {

double Stats::Sum() const {
  double s = 0;
  for (double v : samples_) s += v;
  return s;
}

double Stats::Mean() const {
  if (samples_.empty()) return 0;
  return Sum() / static_cast<double>(samples_.size());
}

double Stats::Stddev() const {
  if (samples_.size() < 2) return 0;
  const double m = Mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::Percentile(double p) const {
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

std::string Stats::Summary(const std::string& unit) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.3f ± %.3f%s%s", Mean(), Stddev(),
                unit.empty() ? "" : " ", unit.c_str());
  return buf;
}

}  // namespace sdw
