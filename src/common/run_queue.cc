#include "common/run_queue.h"

#include <utility>

#include "common/timing.h"

namespace sdw {

void PriorityRunQueue::Push(std::function<void()> task, int priority,
                            std::function<int()> dynamic_priority) {
  Entry e;
  e.task = std::move(task);
  e.priority = priority;
  e.dynamic_priority = std::move(dynamic_priority);
  e.enqueue_nanos = NowNanos();
  e.seq = next_seq_++;
  ++size_;
  if (!options_.priority_enabled) {
    // FIFO mode: one bucket, arrival order, no evaluation at pop.
    levels_[0].push_back(std::move(e));
    return;
  }
  if (e.dynamic_priority) {
    dynamic_.push_back(std::move(e));
  } else {
    levels_[e.priority].push_back(std::move(e));
  }
}

int64_t PriorityRunQueue::EffectivePriority(const Entry& e,
                                            int64_t now) const {
  int64_t p = e.priority;
  if (e.dynamic_priority) {
    const int64_t dyn = e.dynamic_priority();
    if (dyn > p) p = dyn;
  }
  if (options_.aging_nanos > 0) {
    p += (now - e.enqueue_nanos) / options_.aging_nanos;
  }
  return p;
}

std::function<void()> PriorityRunQueue::Pop() {
  SDW_CHECK(size_ > 0);
  --size_;
  if (!options_.priority_enabled) {
    auto it = levels_.find(0);
    std::function<void()> task = std::move(it->second.front().task);
    it->second.pop_front();
    if (it->second.empty()) levels_.erase(it);
    return task;
  }
  // One candidate per static level (the front — see the header's dominance
  // argument) plus every dynamic entry; best by (effective priority desc,
  // arrival seq asc) — exactly the seed scan's strict-> stability rule.
  const int64_t now = NowNanos();
  bool have = false;
  int64_t best_p = 0;
  uint64_t best_seq = 0;
  auto best_level = levels_.end();
  size_t best_dyn = 0;
  bool from_dynamic = false;
  for (auto it = levels_.begin(); it != levels_.end(); ++it) {
    const Entry& e = it->second.front();
    const int64_t p = EffectivePriority(e, now);
    if (!have || p > best_p || (p == best_p && e.seq < best_seq)) {
      have = true;
      best_p = p;
      best_seq = e.seq;
      best_level = it;
      from_dynamic = false;
    }
  }
  for (size_t i = 0; i < dynamic_.size(); ++i) {
    const Entry& e = dynamic_[i];
    const int64_t p = EffectivePriority(e, now);
    if (!have || p > best_p || (p == best_p && e.seq < best_seq)) {
      have = true;
      best_p = p;
      best_seq = e.seq;
      best_dyn = i;
      from_dynamic = true;
    }
  }
  if (from_dynamic) {
    std::function<void()> task = std::move(dynamic_[best_dyn].task);
    dynamic_.erase(dynamic_.begin() + static_cast<ptrdiff_t>(best_dyn));
    return task;
  }
  std::function<void()> task = std::move(best_level->second.front().task);
  best_level->second.pop_front();
  if (best_level->second.empty()) levels_.erase(best_level);
  return task;
}

}  // namespace sdw
