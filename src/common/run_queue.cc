#include "common/run_queue.h"

#include <utility>

#include "common/timing.h"

namespace sdw {

void PriorityRunQueue::Push(std::function<void()> task, int priority,
                            std::function<int()> dynamic_priority) {
  Entry e;
  e.task = std::move(task);
  e.priority = priority;
  e.dynamic_priority = std::move(dynamic_priority);
  e.enqueue_nanos = NowNanos();
  entries_.push_back(std::move(e));
}

int64_t PriorityRunQueue::EffectivePriority(const Entry& e,
                                            int64_t now) const {
  int64_t p = e.priority;
  if (e.dynamic_priority) {
    const int64_t dyn = e.dynamic_priority();
    if (dyn > p) p = dyn;
  }
  if (options_.aging_nanos > 0) {
    p += (now - e.enqueue_nanos) / options_.aging_nanos;
  }
  return p;
}

std::function<void()> PriorityRunQueue::Pop() {
  SDW_CHECK(!entries_.empty());
  size_t best = 0;
  if (options_.priority_enabled && entries_.size() > 1) {
    const int64_t now = NowNanos();
    int64_t best_p = EffectivePriority(entries_[0], now);
    // Strict > keeps the scan stable: among equal effective priorities the
    // earliest arrival (lowest index — the deque is in arrival order) wins,
    // which is the FIFO-within-a-level guarantee.
    for (size_t i = 1; i < entries_.size(); ++i) {
      const int64_t p = EffectivePriority(entries_[i], now);
      if (p > best_p) {
        best_p = p;
        best = i;
      }
    }
  }
  std::function<void()> task = std::move(entries_[best].task);
  entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(best));
  return task;
}

}  // namespace sdw
