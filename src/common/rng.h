// Deterministic pseudo-random number generation for data generators and
// workload randomization. All sdw randomness flows through Rng so experiments
// are reproducible from a seed.

#ifndef SDW_COMMON_RNG_H_
#define SDW_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace sdw {

/// xoshiro256** generator seeded via SplitMix64. Not thread-safe; use one
/// instance per thread or per generator task.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 42) { Reseed(seed); }

  /// Re-seeds in place.
  void Reseed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniform index in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    SDW_DCHECK(n > 0);
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleDistinct(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

}  // namespace sdw

#endif  // SDW_COMMON_RNG_H_
