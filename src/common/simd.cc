#include "common/simd.h"

#include "common/bitmap.h"

#if defined(SDW_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SDW_SIMD_AVX2_BODIES 1
#include <immintrin.h>
#endif

namespace sdw::simd {

namespace {

// Scalar fallbacks: the bits:: loops, via the same indirect entry points.
uint64_t AndWithOrAnyScalar(uint64_t* dst, const uint64_t* a,
                            const uint64_t* b, size_t nwords) {
  return bits::AndWithOrAny(dst, a, b, nwords);
}

uint64_t OrAccumulateAnyScalar(uint64_t* acc, const uint64_t* src,
                               size_t nwords) {
  uint64_t any = 0;
  for (size_t w = 0; w < nwords; ++w) {
    acc[w] |= src[w];
    any |= src[w];
  }
  return any;
}

#if defined(SDW_SIMD_AVX2_BODIES)

__attribute__((target("avx2"))) uint64_t AndWithOrAnyAvx2(uint64_t* dst,
                                                          const uint64_t* a,
                                                          const uint64_t* b,
                                                          size_t nwords) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= nwords; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    vd = _mm256_and_si256(vd, _mm256_or_si256(va, vb));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), vd);
    acc = _mm256_or_si256(acc, vd);
  }
  // Horizontal OR of the vector accumulator; any nonzero lane → nonzero.
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i both = _mm_or_si128(lo, hi);
  uint64_t any = static_cast<uint64_t>(_mm_cvtsi128_si64(both)) |
                 static_cast<uint64_t>(
                     _mm_cvtsi128_si64(_mm_unpackhi_epi64(both, both)));
  for (; w < nwords; ++w) {
    dst[w] &= (a[w] | b[w]);
    any |= dst[w];
  }
  return any;
}

__attribute__((target("avx2"))) uint64_t OrAccumulateAnyAvx2(
    uint64_t* acc, const uint64_t* src, size_t nwords) {
  __m256i vany = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= nwords; w += 4) {
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + w));
    va = _mm256_or_si256(va, vs);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + w), va);
    vany = _mm256_or_si256(vany, vs);
  }
  const __m128i lo = _mm256_castsi256_si128(vany);
  const __m128i hi = _mm256_extracti128_si256(vany, 1);
  const __m128i both = _mm_or_si128(lo, hi);
  uint64_t any = static_cast<uint64_t>(_mm_cvtsi128_si64(both)) |
                 static_cast<uint64_t>(
                     _mm_cvtsi128_si64(_mm_unpackhi_epi64(both, both)));
  for (; w < nwords; ++w) {
    acc[w] |= src[w];
    any |= src[w];
  }
  return any;
}

bool DetectAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // SDW_SIMD_AVX2_BODIES

}  // namespace

bool Avx2Active() {
#if defined(SDW_SIMD_AVX2_BODIES)
  static const bool active = DetectAvx2();
  return active;
#else
  return false;
#endif
}

namespace internal {

#if defined(SDW_SIMD_AVX2_BODIES)
const AndWithOrAnyFn kAndWithOrAny =
    DetectAvx2() ? &AndWithOrAnyAvx2 : &AndWithOrAnyScalar;
const OrAccumulateAnyFn kOrAccumulateAny =
    DetectAvx2() ? &OrAccumulateAnyAvx2 : &OrAccumulateAnyScalar;
#else
const AndWithOrAnyFn kAndWithOrAny = &AndWithOrAnyScalar;
const OrAccumulateAnyFn kOrAccumulateAny = &OrAccumulateAnyScalar;
#endif

}  // namespace internal

}  // namespace sdw::simd
