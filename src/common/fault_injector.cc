#include "common/fault_injector.h"

#include <chrono>
#include <thread>

namespace sdw {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Enable(uint64_t seed) {
  MutexLock lock(mu_);
  seed_ = seed;
  sites_.clear();
  injected_total_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disable() {
  MutexLock lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  sites_.clear();
}

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  MutexLock lock(mu_);
  SDW_CHECK_MSG(enabled_.load(std::memory_order_relaxed),
                "FaultInjector::Arm before Enable()");
  SiteLocked(site).specs.push_back(SpecState{std::move(spec), false});
}

void FaultInjector::ClearSite(const std::string& site) {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.specs.clear();
}

uint64_t FaultInjector::hits(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::injected(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.injected;
}

FaultInjector::Site& FaultInjector::SiteLocked(const std::string& name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.emplace(name, Site(SiteSeed(seed_, name))).first;
  }
  return it->second;
}

uint64_t FaultInjector::SiteSeed(uint64_t seed, const std::string& name) {
  // FNV-1a over the site name, mixed with the run seed: each site gets an
  // independent deterministic stream.
  uint64_t h = 14695981039346656037ull;
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h ^ seed;
}

Status FaultInjector::CheckSlow(const char* site, uint64_t key) {
  const FaultSpec* fired = nullptr;
  int64_t latency_nanos = 0;
  uint64_t hit = 0;
  {
    MutexLock lock(mu_);
    if (!enabled_.load(std::memory_order_relaxed)) return Status::Ok();
    Site& s = SiteLocked(site);
    hit = ++s.hits;
    for (SpecState& st : s.specs) {
      const FaultSpec& spec = st.spec;
      if (spec.key_hi != 0 && (key < spec.key_lo || key > spec.key_hi)) {
        continue;
      }
      bool fire = false;
      if (spec.one_shot_at != 0 && !st.one_shot_fired &&
          hit >= spec.one_shot_at) {
        st.one_shot_fired = true;
        fire = true;
      } else if (spec.every_nth != 0 && hit % spec.every_nth == 0) {
        fire = true;
      } else if (spec.probability > 0.0 && s.rng.Bernoulli(spec.probability)) {
        fire = true;
      }
      if (fire) {
        ++s.injected;
        injected_total_.fetch_add(1, std::memory_order_relaxed);
        fired = &spec;
        break;
      }
    }
    if (fired == nullptr) return Status::Ok();
    if (fired->kind != FaultKind::kLatency) {
      std::string msg = std::string(site) + ": injected " +
                        (fired->kind == FaultKind::kTransient ? "transient"
                                                              : "permanent") +
                        " fault (hit " + std::to_string(hit) + ", key " +
                        std::to_string(key) + ")";
      if (!fired->message.empty()) msg += ": " + fired->message;
      StatusCode code = fired->code;
      if (code == StatusCode::kOk) {
        code = fired->kind == FaultKind::kTransient ? StatusCode::kUnavailable
                                                    : StatusCode::kDataLoss;
      }
      return Status(code, std::move(msg));
    }
    latency_nanos = fired->latency_nanos;
  }
  // Latency spike: stall the caller outside the registry lock so a slow site
  // can't serialize every other site's checks.
  std::this_thread::sleep_for(std::chrono::nanoseconds(latency_nanos));
  return Status::Ok();
}

}  // namespace sdw
