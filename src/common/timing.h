// Wall-clock and CPU-clock timers used by the measurement harness and the
// CPU-time breakdown instrumentation.

#ifndef SDW_COMMON_TIMING_H_
#define SDW_COMMON_TIMING_H_

#include <chrono>
#include <cstdint>

namespace sdw {

/// Monotonic nanoseconds since an arbitrary epoch.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU nanoseconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
int64_t ThreadCpuNanos();

/// CPU nanoseconds consumed by the whole process (CLOCK_PROCESS_CPUTIME_ID).
int64_t ProcessCpuNanos();

/// Simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(NowNanos()) {}
  /// Restarts the stopwatch.
  void Restart() { start_ = NowNanos(); }
  /// Elapsed nanoseconds since construction/Restart.
  int64_t ElapsedNanos() const { return NowNanos() - start_; }
  /// Elapsed seconds since construction/Restart.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  int64_t start_;
};

}  // namespace sdw

#endif  // SDW_COMMON_TIMING_H_
