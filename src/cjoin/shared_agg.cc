#include "cjoin/shared_agg.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace sdw::cjoin {

namespace {

/// Tests bit `slot` of the bitmap stored in a table key's tail (the bytes
/// after the group-key prefix). The bitmap bytes were memcpy'd from native
/// uint64_t words, so reading them back the same way is exact.
bool KeyMaskTest(const std::string& key, size_t key_width, uint32_t slot) {
  uint64_t word;
  std::memcpy(&word, key.data() + key_width + (slot >> 6) * sizeof(uint64_t),
              sizeof(uint64_t));
  return (word >> (slot & 63)) & 1;
}

/// True when the bitmap tail of `key` has any bit set.
bool KeyMaskAny(const std::string& key, size_t key_width) {
  for (size_t b = key_width; b < key.size(); ++b) {
    if (key[b] != 0) return true;
  }
  return false;
}

/// True when the bitmap tail of `key` intersects `mask` (of `words` words).
bool KeyMaskIntersects(const std::string& key, size_t key_width,
                       const uint64_t* mask, size_t words) {
  const size_t n =
      std::min(words, (key.size() - key_width) / sizeof(uint64_t));
  for (size_t w = 0; w < n; ++w) {
    uint64_t word;
    std::memcpy(&word, key.data() + key_width + w * sizeof(uint64_t),
                sizeof(uint64_t));
    if ((word & mask[w]) != 0) return true;
  }
  return false;
}

/// Clears every bit of `mask` from the bitmap tail of `key` (in place).
void KeyMaskClearAll(std::string* key, size_t key_width, const uint64_t* mask,
                     size_t words) {
  const size_t n =
      std::min(words, (key->size() - key_width) / sizeof(uint64_t));
  for (size_t w = 0; w < n; ++w) {
    char* at = key->data() + key_width + w * sizeof(uint64_t);
    uint64_t word;
    std::memcpy(&word, at, sizeof(uint64_t));
    word &= ~mask[w];
    std::memcpy(at, &word, sizeof(uint64_t));
  }
}

/// Materializes the join-output row for batch tuple `i` into `row`.
/// `fact_row` is the tuple's row-major base pointer, or nullptr for PAX fact
/// pages (fact moves then read the column minipages directly).
void MaterializeRow(const SharedAggregator::Group& g, const TupleBatch& batch,
                    const storage::Schema& fact_schema, uint32_t i,
                    const std::byte* fact_row,
                    const SharedAggregator::DimRowFn& dim_row, std::byte* row) {
  const uint32_t* dim_rows = batch.tuple_dim_rows(i);
  for (const JoinRowMove& mv : g.moves) {
    const std::byte* src;
    if (mv.from_fact) {
      src = fact_row != nullptr
                ? fact_row + mv.src_off
                : batch.fact_page->field(fact_schema, mv.src_col, i);
    } else {
      const uint32_t r = dim_rows[mv.filter_pos];
      SDW_DCHECK(r != kNoDimRow);
      src = dim_row(mv.filter_pos, r) + mv.src_off;
    }
    std::memcpy(row + mv.dst_off, src, mv.len);
  }
}

/// Appends the group-key bytes of a materialized row to `key`.
void AppendGroupKey(const SharedAggregator::Group& g, const std::byte* row,
                    std::string* key) {
  for (size_t c : g.group_cols) {
    key->append(
        reinterpret_cast<const char*>(row + g.join_schema.offset(c)),
        g.join_schema.column(c).width());
  }
}

}  // namespace

SharedAggregator::SharedAggregator(size_t num_parts, size_t mask_words,
                                   size_t member_words)
    : num_parts_(num_parts),
      mask_words_(mask_words),
      member_words_(member_words > mask_words ? member_words : mask_words) {}

SharedAggregator::Group* SharedAggregator::FindGroup(
    const std::string& signature) {
  for (auto& g : groups_) {
    if (g->signature == signature) return g.get();
  }
  return nullptr;
}

SharedAggregator::Group* SharedAggregator::CreateGroup(std::string signature) {
  auto g = std::make_unique<Group>();
  g->signature = std::move(signature);
  g->member_mask = Bitset(member_words_ * 64);
  g->retired_pending.assign(member_words_, 0);
  g->partials.resize(num_parts_);
  groups_.push_back(std::move(g));
  return groups_.back().get();
}

void SharedAggregator::RebuildFoldIndex(Group* g) const {
  const size_t slots = mask_words_ * 64;
  g->sat_slot_mask.assign(mask_words_, 0);
  g->sat_begin.assign(slots + 1, 0);
  g->sat_idx.clear();
  if (g->folded_members == 0) return;
  for (const Member& mem : g->members) {
    if (mem.folded) ++g->sat_begin[mem.slot + 1];
  }
  for (size_t s = 0; s < slots; ++s) {
    if (g->sat_begin[s + 1] != 0) bits::Set(g->sat_slot_mask.data(), s);
    g->sat_begin[s + 1] += g->sat_begin[s];
  }
  g->sat_idx.resize(g->folded_members);
  std::vector<uint32_t> fill(g->sat_begin.begin(), g->sat_begin.end() - 1);
  for (size_t m = 0; m < g->members.size(); ++m) {
    if (g->members[m].folded) {
      g->sat_idx[fill[g->members[m].slot]++] = static_cast<uint32_t>(m);
    }
  }
}

void SharedAggregator::AddMember(Group* g, uint32_t slot,
                                 query::Predicate::Bound fact_pred) {
  SDW_CHECK(!g->member_mask.Test(slot));
  // A recycled bit must not inherit a predecessor's lazily-retired entries.
  if (g->retired_count != 0 && bits::Test(g->retired_pending.data(), slot)) {
    FlushRetired(g);
  }
  g->member_mask.Set(slot);
  g->members.push_back({slot, slot, false, std::move(fact_pred), {}});
  RebuildFoldIndex(g);
}

void SharedAggregator::AddFoldedMember(Group* g, uint32_t bit,
                                       uint32_t host_slot,
                                       query::Predicate::Bound fact_pred,
                                       std::vector<Residual> residuals) {
  SDW_CHECK(bit >= mask_words_ * 64 && bit < member_words_ * 64);
  SDW_CHECK(!g->member_mask.Test(bit));
  // Recycled fold bits flush like recycled slots (see AddMember).
  if (g->retired_count != 0 && bits::Test(g->retired_pending.data(), bit)) {
    FlushRetired(g);
  }
  g->member_mask.Set(bit);
  g->members.push_back(
      {bit, host_slot, true, std::move(fact_pred), std::move(residuals)});
  ++g->folded_members;
  RebuildFoldIndex(g);
}

void SharedAggregator::MergePartials(Group* g) {
  // Strip lazily-retired bits first: fresh partial entries carry clean
  // masks (FoldBatch reads member_mask, which retirement clears eagerly),
  // and merging them against stale keys would split otherwise-equal
  // entries.
  FlushRetired(g);
  for (AccTable& part : g->partials) {
    for (auto& [key, accs] : part) {
      auto [it, inserted] = g->merged.try_emplace(key);
      if (inserted) {
        it->second = std::move(accs);
      } else {
        for (size_t a = 0; a < accs.size(); ++a) {
          it->second[a].MergeFrom(accs[a]);
        }
      }
    }
    part.clear();
  }
}

void SharedAggregator::SliceSlot(const Group& g, uint32_t slot,
                                 AccTable* out) {
  for (const auto& [key, accs] : g.merged) {
    if (!KeyMaskTest(key, g.key_width, slot)) continue;
    auto [it, inserted] = out->try_emplace(key.substr(0, g.key_width));
    if (inserted) it->second.resize(accs.size());
    for (size_t a = 0; a < accs.size(); ++a) {
      it->second[a].MergeFrom(accs[a]);
    }
  }
}

void SharedAggregator::RenderSlice(const Group& g, const AccTable& slice,
                                   std::vector<std::string>* rows) {
  const size_t tuple_size = g.out_schema.tuple_size();
  const size_t num_groups = g.group_cols.size();
  auto render = [&](const std::string& key,
                    const std::vector<query::AggAcc>& accs) {
    std::string row(tuple_size, '\0');
    std::byte* dst = reinterpret_cast<std::byte*>(row.data());
    std::memcpy(dst, key.data(), key.size());
    for (size_t a = 0; a < g.aggs.size(); ++a) {
      query::EmitAcc(g.aggs[a], g.out_schema, dst, num_groups + a, accs[a]);
    }
    rows->push_back(std::move(row));
  };
  for (const auto& [key, accs] : slice) render(key, accs);
  if (slice.empty() && g.group_cols.empty()) {
    // Global aggregate on empty input: SQL yields exactly one row from
    // zero-initialized accumulators (matching RunAggregate).
    render(std::string(), std::vector<query::AggAcc>(g.aggs.size()));
  }
}

bool SharedAggregator::RetireSlot(Group* g, uint32_t slot) {
  for (const AccTable& part : g->partials) {
    SDW_CHECK_MSG(part.empty(), "RetireSlot requires partials merged");
  }
  // Lazy: the bit only joins the pending set here. Survivors' slices never
  // see it (they select by their own live bits), so the table pass that
  // folds it out is deferred to FlushRetired — one batched pass per drain
  // instead of one per retiring rider, and none at all when the group dies
  // with its last member.
  SDW_CHECK(slot < g->retired_pending.size() * 64);
  if (!bits::Test(g->retired_pending.data(), slot)) {
    bits::Set(g->retired_pending.data(), slot);
    ++g->retired_count;
  }
  g->member_mask.Clear(slot);
  for (auto it = g->members.begin(); it != g->members.end(); ++it) {
    if (it->bit == slot) {
      if (it->folded) --g->folded_members;
      g->members.erase(it);
      break;
    }
  }
  RebuildFoldIndex(g);
  return g->members.empty();
}

void SharedAggregator::FlushRetired(Group* g) {
  if (g->retired_count == 0) return;
  const uint64_t* pend = g->retired_pending.data();
  const size_t words = g->retired_pending.size();
  // Fold the pending bits out of every entry: survivors' bits are
  // untouched, so their later slices see exactly the same contributions;
  // entries whose bitmap goes empty served only retired members and are
  // dropped; entries whose stripped key collides with a clean one merge.
  std::vector<std::pair<std::string, std::vector<query::AggAcc>>> rekeyed;
  for (auto it = g->merged.begin(); it != g->merged.end();) {
    if (!KeyMaskIntersects(it->first, g->key_width, pend, words)) {
      ++it;
      continue;
    }
    std::string key = it->first;
    KeyMaskClearAll(&key, g->key_width, pend, words);
    if (KeyMaskAny(key, g->key_width)) {
      rekeyed.emplace_back(std::move(key), std::move(it->second));
    }
    it = g->merged.erase(it);
  }
  for (auto& [key, accs] : rekeyed) {
    auto [it, inserted] = g->merged.try_emplace(std::move(key));
    if (inserted) {
      it->second = std::move(accs);
    } else {
      for (size_t a = 0; a < accs.size(); ++a) {
        it->second[a].MergeFrom(accs[a]);
      }
    }
  }
  std::fill(g->retired_pending.begin(), g->retired_pending.end(), 0);
  g->retired_count = 0;
}

void SharedAggregator::SliceMembers(const Group& g,
                                    const std::vector<uint32_t>& bits,
                                    std::vector<AccTable>* slices) const {
  slices->clear();
  slices->resize(bits.size());
  if (bits.empty()) return;
  std::vector<uint64_t> want(member_words_, 0);
  std::vector<uint32_t> slice_of(member_words_ * 64, 0);
  for (size_t i = 0; i < bits.size(); ++i) {
    SDW_CHECK(bits[i] < member_words_ * 64);
    bits::Set(want.data(), bits[i]);
    slice_of[bits[i]] = static_cast<uint32_t>(i);
  }
  for (const auto& [key, accs] : g.merged) {
    const size_t words = std::min(
        member_words_, (key.size() - g.key_width) / sizeof(uint64_t));
    for (size_t w = 0; w < words; ++w) {
      uint64_t word;
      std::memcpy(&word,
                  key.data() + g.key_width + w * sizeof(uint64_t),
                  sizeof(uint64_t));
      uint64_t hit = word & want[w];
      while (hit != 0) {
        const uint32_t b =
            static_cast<uint32_t>(w * 64 + std::countr_zero(hit));
        hit &= hit - 1;
        AccTable& out = (*slices)[slice_of[b]];
        auto [it, inserted] = out.try_emplace(key.substr(0, g.key_width));
        if (inserted) it->second.resize(accs.size());
        for (size_t a = 0; a < accs.size(); ++a) {
          it->second[a].MergeFrom(accs[a]);
        }
      }
    }
  }
}

void SharedAggregator::DestroyGroup(Group* g) {
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    if (it->get() == g) {
      groups_.erase(it);
      return;
    }
  }
  SDW_CHECK_MSG(false, "DestroyGroup: unknown group");
}

void SharedAggregator::FoldBatch(Group* g, const TupleBatch& batch,
                                 const storage::Schema& fact_schema,
                                 const DimRowFn& dim_row, size_t part,
                                 bool preds_pre_applied,
                                 FoldScratch* scratch) const {
  SDW_DCHECK(batch.words_per_tuple == mask_words_);
  AccTable& table = g->partials[part];
  scratch->row.resize(g->join_row_size);
  scratch->mask.resize(member_words_);
  std::byte* row = scratch->row.data();
  uint64_t* mask = scratch->mask.data();
  const uint64_t* gmask = g->member_mask.words();
  const size_t words = mask_words_;
  const size_t member_words = member_words_;
  const bool has_folded = g->folded_members > 0;
  const size_t num_aggs = g->aggs.size();

  const storage::Page& fact_page = *batch.fact_page;
  const bool columnar = fact_page.columnar();
  const uint64_t* live = batch.live_words();
  const size_t live_words = bits::WordsFor(batch.num_tuples);
  for (size_t lw = 0; lw < live_words; ++lw) {
    uint64_t lword = live[lw];
    while (lword != 0) {
      const uint32_t i = static_cast<uint32_t>(
          lw * 64 + static_cast<size_t>(std::countr_zero(lword)));
      lword &= lword - 1;

      // Member bitmap: the tuple's query bitmap restricted to this group.
      // Fold-bit words start zero; folded members' verdicts are computed
      // below from their HOST slot's raw bit (tuple bitmaps carry slots
      // only).
      const uint64_t* tb = batch.tuple_bits(i);
      uint64_t any = 0;
      uint64_t sat_any = 0;
      for (size_t w = 0; w < words; ++w) {
        mask[w] = tb[w] & gmask[w];
        any |= mask[w];
        if (has_folded) sat_any |= tb[w] & g->sat_slot_mask[w];
      }
      for (size_t w = words; w < member_words; ++w) mask[w] = 0;
      if (any == 0 && sat_any == 0) continue;
      const std::byte* fact_row = columnar ? nullptr : fact_page.tuple(i);
      if (!preds_pre_applied) {
        // Per-member fact-predicate verdicts refine the bitmap, so the key
        // attributes the tuple only to members it actually qualifies for.
        for (const Member& mem : g->members) {
          if (mem.folded || mem.fact_pred.IsTrue()) continue;
          if (bits::Test(mask, mem.slot) &&
              !mem.fact_pred.EvalAt(fact_schema, fact_page, i)) {
            bits::Clear(mask, mem.slot);
          }
        }
      }
      if (sat_any != 0) {
        // Folded members: host filter verdict (the RAW slot bit — the
        // host's own fact predicate must not gate its satellites) refined
        // by the satellite's fact predicate and dim residuals. The fold
        // index narrows the walk to the satellites of matched hosts, and
        // memoized residuals cost one bit test per dimension.
        const uint32_t* dim_rows = batch.tuple_dim_rows(i);
        for (size_t w = 0; w < words; ++w) {
          uint64_t hword = tb[w] & g->sat_slot_mask[w];
          while (hword != 0) {
            const size_t host = w * 64 +
                                static_cast<size_t>(std::countr_zero(hword));
            hword &= hword - 1;
            for (uint32_t k = g->sat_begin[host]; k < g->sat_begin[host + 1];
                 ++k) {
              const Member& mem = g->members[g->sat_idx[k]];
              if (!mem.fact_pred.IsTrue() &&
                  !mem.fact_pred.EvalAt(fact_schema, fact_page, i)) {
                continue;
              }
              bool pass = true;
              for (const Residual& r : mem.residuals) {
                const uint32_t dr = dim_rows[r.filter_pos];
                SDW_DCHECK(dr != kNoDimRow);
                if (r.row_pass.empty()
                        ? !r.pred.Eval(*r.dim_schema, dim_row(r.filter_pos, dr))
                        : !bits::Test(r.row_pass.data(), dr)) {
                  pass = false;
                  break;
                }
              }
              if (pass) bits::Set(mask, mem.bit);
            }
          }
        }
      }
      if (!bits::Any(mask, member_words)) continue;

      MaterializeRow(*g, batch, fact_schema, i, fact_row, dim_row, row);
      scratch->key.clear();
      AppendGroupKey(*g, row, &scratch->key);
      scratch->key.append(reinterpret_cast<const char*>(mask),
                          member_words * sizeof(uint64_t));
      auto [it, inserted] = table.try_emplace(scratch->key);
      if (inserted) it->second.resize(num_aggs);
      for (size_t a = 0; a < num_aggs; ++a) {
        query::UpdateAcc(g->aggs[a], g->join_schema, row, &it->second[a]);
      }
    }
  }
}

void AggregateScalar(const SharedAggregator::Group& g,
                     const SharedAggregator::Member& mem,
                     const TupleBatch& batch,
                     const storage::Schema& fact_schema,
                     const SharedAggregator::DimRowFn& dim_row,
                     bool preds_pre_applied,
                     SharedAggregator::AccTable* table) {
  std::vector<std::byte> row_buf(g.join_row_size);
  std::byte* row = row_buf.data();
  std::string key;
  const size_t num_aggs = g.aggs.size();
  const storage::Page& fact_page = *batch.fact_page;
  const bool columnar = fact_page.columnar();
  for (uint32_t i = 0; i < batch.num_tuples; ++i) {
    if (!batch.tuple_live(i)) continue;
    if (!bits::Test(batch.tuple_bits(i), mem.slot)) continue;
    const std::byte* fact_row = columnar ? nullptr : fact_page.tuple(i);
    if (!preds_pre_applied && !mem.fact_pred.IsTrue() &&
        !mem.fact_pred.EvalAt(fact_schema, fact_page, i)) {
      continue;
    }
    MaterializeRow(g, batch, fact_schema, i, fact_row, dim_row, row);
    key.clear();
    AppendGroupKey(g, row, &key);
    auto [it, inserted] = table->try_emplace(key);
    if (inserted) it->second.resize(num_aggs);
    for (size_t a = 0; a < num_aggs; ++a) {
      query::UpdateAcc(g.aggs[a], g.join_schema, row, &it->second[a]);
    }
  }
}

}  // namespace sdw::cjoin
