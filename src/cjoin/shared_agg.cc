#include "cjoin/shared_agg.h"

#include <bit>
#include <cstring>

namespace sdw::cjoin {

namespace {

/// Tests bit `slot` of the bitmap stored in a table key's tail (the bytes
/// after the group-key prefix). The bitmap bytes were memcpy'd from native
/// uint64_t words, so reading them back the same way is exact.
bool KeyMaskTest(const std::string& key, size_t key_width, uint32_t slot) {
  uint64_t word;
  std::memcpy(&word, key.data() + key_width + (slot >> 6) * sizeof(uint64_t),
              sizeof(uint64_t));
  return (word >> (slot & 63)) & 1;
}

/// Clears bit `slot` in the bitmap tail of `key` (in place).
void KeyMaskClear(std::string* key, size_t key_width, uint32_t slot) {
  uint64_t word;
  char* at = key->data() + key_width + (slot >> 6) * sizeof(uint64_t);
  std::memcpy(&word, at, sizeof(uint64_t));
  word &= ~(uint64_t{1} << (slot & 63));
  std::memcpy(at, &word, sizeof(uint64_t));
}

/// True when the bitmap tail of `key` has any bit set.
bool KeyMaskAny(const std::string& key, size_t key_width) {
  for (size_t b = key_width; b < key.size(); ++b) {
    if (key[b] != 0) return true;
  }
  return false;
}

/// Materializes the join-output row for batch tuple `i` into `row`.
/// `fact_row` is the tuple's row-major base pointer, or nullptr for PAX fact
/// pages (fact moves then read the column minipages directly).
void MaterializeRow(const SharedAggregator::Group& g, const TupleBatch& batch,
                    const storage::Schema& fact_schema, uint32_t i,
                    const std::byte* fact_row,
                    const SharedAggregator::DimRowFn& dim_row, std::byte* row) {
  const uint32_t* dim_rows = batch.tuple_dim_rows(i);
  for (const JoinRowMove& mv : g.moves) {
    const std::byte* src;
    if (mv.from_fact) {
      src = fact_row != nullptr
                ? fact_row + mv.src_off
                : batch.fact_page->field(fact_schema, mv.src_col, i);
    } else {
      const uint32_t r = dim_rows[mv.filter_pos];
      SDW_DCHECK(r != kNoDimRow);
      src = dim_row(mv.filter_pos, r) + mv.src_off;
    }
    std::memcpy(row + mv.dst_off, src, mv.len);
  }
}

/// Appends the group-key bytes of a materialized row to `key`.
void AppendGroupKey(const SharedAggregator::Group& g, const std::byte* row,
                    std::string* key) {
  for (size_t c : g.group_cols) {
    key->append(
        reinterpret_cast<const char*>(row + g.join_schema.offset(c)),
        g.join_schema.column(c).width());
  }
}

}  // namespace

SharedAggregator::SharedAggregator(size_t num_parts, size_t mask_words)
    : num_parts_(num_parts), mask_words_(mask_words) {}

SharedAggregator::Group* SharedAggregator::FindGroup(
    const std::string& signature) {
  for (auto& g : groups_) {
    if (g->signature == signature) return g.get();
  }
  return nullptr;
}

SharedAggregator::Group* SharedAggregator::CreateGroup(std::string signature) {
  auto g = std::make_unique<Group>();
  g->signature = std::move(signature);
  g->member_mask = Bitset(mask_words_ * 64);
  g->partials.resize(num_parts_);
  groups_.push_back(std::move(g));
  return groups_.back().get();
}

void SharedAggregator::AddMember(Group* g, uint32_t slot,
                                 query::Predicate::Bound fact_pred) {
  SDW_CHECK(!g->member_mask.Test(slot));
  g->member_mask.Set(slot);
  g->members.push_back({slot, std::move(fact_pred)});
}

void SharedAggregator::MergePartials(Group* g) {
  for (AccTable& part : g->partials) {
    for (auto& [key, accs] : part) {
      auto [it, inserted] = g->merged.try_emplace(key);
      if (inserted) {
        it->second = std::move(accs);
      } else {
        for (size_t a = 0; a < accs.size(); ++a) {
          it->second[a].MergeFrom(accs[a]);
        }
      }
    }
    part.clear();
  }
}

void SharedAggregator::SliceSlot(const Group& g, uint32_t slot,
                                 AccTable* out) {
  for (const auto& [key, accs] : g.merged) {
    if (!KeyMaskTest(key, g.key_width, slot)) continue;
    auto [it, inserted] = out->try_emplace(key.substr(0, g.key_width));
    if (inserted) it->second.resize(accs.size());
    for (size_t a = 0; a < accs.size(); ++a) {
      it->second[a].MergeFrom(accs[a]);
    }
  }
}

void SharedAggregator::RenderSlice(const Group& g, const AccTable& slice,
                                   std::vector<std::string>* rows) {
  const size_t tuple_size = g.out_schema.tuple_size();
  const size_t num_groups = g.group_cols.size();
  auto render = [&](const std::string& key,
                    const std::vector<query::AggAcc>& accs) {
    std::string row(tuple_size, '\0');
    std::byte* dst = reinterpret_cast<std::byte*>(row.data());
    std::memcpy(dst, key.data(), key.size());
    for (size_t a = 0; a < g.aggs.size(); ++a) {
      query::EmitAcc(g.aggs[a], g.out_schema, dst, num_groups + a, accs[a]);
    }
    rows->push_back(std::move(row));
  };
  for (const auto& [key, accs] : slice) render(key, accs);
  if (slice.empty() && g.group_cols.empty()) {
    // Global aggregate on empty input: SQL yields exactly one row from
    // zero-initialized accumulators (matching RunAggregate).
    render(std::string(), std::vector<query::AggAcc>(g.aggs.size()));
  }
}

bool SharedAggregator::RetireSlot(Group* g, uint32_t slot) {
  for (const AccTable& part : g->partials) {
    SDW_CHECK_MSG(part.empty(), "RetireSlot requires partials merged");
  }
  // Fold the slot's bit out of every entry: survivors' bits are untouched,
  // so their later slices see exactly the same contributions; entries whose
  // bitmap goes empty served only retired members and are dropped.
  std::vector<std::pair<std::string, std::vector<query::AggAcc>>> rekeyed;
  for (auto it = g->merged.begin(); it != g->merged.end();) {
    if (!KeyMaskTest(it->first, g->key_width, slot)) {
      ++it;
      continue;
    }
    std::string key = it->first;
    KeyMaskClear(&key, g->key_width, slot);
    if (KeyMaskAny(key, g->key_width)) {
      rekeyed.emplace_back(std::move(key), std::move(it->second));
    }
    it = g->merged.erase(it);
  }
  for (auto& [key, accs] : rekeyed) {
    auto [it, inserted] = g->merged.try_emplace(std::move(key));
    if (inserted) {
      it->second = std::move(accs);
    } else {
      for (size_t a = 0; a < accs.size(); ++a) {
        it->second[a].MergeFrom(accs[a]);
      }
    }
  }
  g->member_mask.Clear(slot);
  for (auto it = g->members.begin(); it != g->members.end(); ++it) {
    if (it->slot == slot) {
      g->members.erase(it);
      break;
    }
  }
  return g->members.empty();
}

void SharedAggregator::DestroyGroup(Group* g) {
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    if (it->get() == g) {
      groups_.erase(it);
      return;
    }
  }
  SDW_CHECK_MSG(false, "DestroyGroup: unknown group");
}

void SharedAggregator::FoldBatch(Group* g, const TupleBatch& batch,
                                 const storage::Schema& fact_schema,
                                 const DimRowFn& dim_row, size_t part,
                                 bool preds_pre_applied,
                                 FoldScratch* scratch) const {
  SDW_DCHECK(batch.words_per_tuple == mask_words_);
  AccTable& table = g->partials[part];
  scratch->row.resize(g->join_row_size);
  scratch->mask.resize(mask_words_);
  std::byte* row = scratch->row.data();
  uint64_t* mask = scratch->mask.data();
  const uint64_t* gmask = g->member_mask.words();
  const size_t words = mask_words_;
  const size_t num_aggs = g->aggs.size();

  const storage::Page& fact_page = *batch.fact_page;
  const bool columnar = fact_page.columnar();
  const uint64_t* live = batch.live_words();
  const size_t live_words = bits::WordsFor(batch.num_tuples);
  for (size_t lw = 0; lw < live_words; ++lw) {
    uint64_t lword = live[lw];
    while (lword != 0) {
      const uint32_t i = static_cast<uint32_t>(
          lw * 64 + static_cast<size_t>(std::countr_zero(lword)));
      lword &= lword - 1;

      // Member bitmap: the tuple's query bitmap restricted to this group.
      const uint64_t* tb = batch.tuple_bits(i);
      uint64_t any = 0;
      for (size_t w = 0; w < words; ++w) {
        mask[w] = tb[w] & gmask[w];
        any |= mask[w];
      }
      if (any == 0) continue;
      const std::byte* fact_row = columnar ? nullptr : fact_page.tuple(i);
      if (!preds_pre_applied) {
        // Per-member fact-predicate verdicts refine the bitmap, so the key
        // attributes the tuple only to members it actually qualifies for.
        for (const Member& mem : g->members) {
          if (mem.fact_pred.IsTrue()) continue;
          if (bits::Test(mask, mem.slot) &&
              !mem.fact_pred.EvalAt(fact_schema, fact_page, i)) {
            bits::Clear(mask, mem.slot);
          }
        }
        if (!bits::Any(mask, words)) continue;
      }

      MaterializeRow(*g, batch, fact_schema, i, fact_row, dim_row, row);
      scratch->key.clear();
      AppendGroupKey(*g, row, &scratch->key);
      scratch->key.append(reinterpret_cast<const char*>(mask),
                          words * sizeof(uint64_t));
      auto [it, inserted] = table.try_emplace(scratch->key);
      if (inserted) it->second.resize(num_aggs);
      for (size_t a = 0; a < num_aggs; ++a) {
        query::UpdateAcc(g->aggs[a], g->join_schema, row, &it->second[a]);
      }
    }
  }
}

void AggregateScalar(const SharedAggregator::Group& g,
                     const SharedAggregator::Member& mem,
                     const TupleBatch& batch,
                     const storage::Schema& fact_schema,
                     const SharedAggregator::DimRowFn& dim_row,
                     bool preds_pre_applied,
                     SharedAggregator::AccTable* table) {
  std::vector<std::byte> row_buf(g.join_row_size);
  std::byte* row = row_buf.data();
  std::string key;
  const size_t num_aggs = g.aggs.size();
  const storage::Page& fact_page = *batch.fact_page;
  const bool columnar = fact_page.columnar();
  for (uint32_t i = 0; i < batch.num_tuples; ++i) {
    if (!batch.tuple_live(i)) continue;
    if (!bits::Test(batch.tuple_bits(i), mem.slot)) continue;
    const std::byte* fact_row = columnar ? nullptr : fact_page.tuple(i);
    if (!preds_pre_applied && !mem.fact_pred.IsTrue() &&
        !mem.fact_pred.EvalAt(fact_schema, fact_page, i)) {
      continue;
    }
    MaterializeRow(g, batch, fact_schema, i, fact_row, dim_row, row);
    key.clear();
    AppendGroupKey(g, row, &key);
    auto [it, inserted] = table->try_emplace(key);
    if (inserted) it->second.resize(num_aggs);
    for (size_t a = 0; a < num_aggs; ++a) {
      query::UpdateAcc(g.aggs[a], g.join_schema, row, &it->second[a]);
    }
  }
}

}  // namespace sdw::cjoin
