// The CJOIN Global Query Plan pipeline (paper §2.5, Figure 4):
//
//   preprocessor ──► filter workers ──► distributor parts ──► query outputs
//
//  * The preprocessor runs a circular scan of the fact table, emitting one
//    annotated tuple batch per page. Each admitted query records its point
//    of entry and completes when the scan wraps around to it.
//  * Query admission is batched: at a page boundary the pipeline drains,
//    pending queries update/extend the filters (scanning their dimension
//    tables and setting their bits), and the scan resumes — the paper's
//    pause-the-pipeline admission phase.
//  * Filter workers take whole batches through every filter (the paper's
//    horizontal thread configuration).
//  * Distributor parts examine each joined tuple's bitmap, evaluate
//    fact-table predicates per query (CJOIN does not push them into the
//    preprocessor; see paper §3.2), project, and forward to the query's
//    output channel.

#ifndef SDW_CJOIN_PIPELINE_H_
#define SDW_CJOIN_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cjoin/filter.h"
#include "cjoin/tuple_batch.h"
#include "core/page_channel.h"
#include "qpipe/operators.h"
#include "query/plan.h"
#include "query/star_query.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/scan.h"

namespace sdw::cjoin {

/// Pipeline configuration.
struct CjoinOptions {
  /// Query-slot capacity (bitmap width). Admissions beyond this abort.
  size_t max_queries = 1024;
  /// Filter worker threads (horizontal configuration).
  size_t filter_threads = 2;
  /// Distributor parts (the paper adds these to remove the single-threaded
  /// distributor bottleneck, §3.2).
  size_t distributor_parts = 2;
  /// Batches buffered between pipeline stages.
  size_t queue_capacity = 8;
  /// Evaluate fact-table predicates in the preprocessor (clearing the
  /// query's bit on non-matching tuples) instead of on CJOIN's output. The
  /// paper tried this and rejected it: "in most cases the cost of a slower
  /// pipeline defeated the purpose of potentially flowing fewer fact tuples
  /// in the pipeline" (§3.2). Kept as an option for the ablation bench.
  bool fact_preds_in_preprocessor = false;
};

/// Aggregate pipeline statistics.
struct CjoinStats {
  double admission_seconds = 0;   // wall time with the pipeline paused
  uint64_t admission_batches = 0;
  uint64_t queries_admitted = 0;
  uint64_t queries_completed = 0;
  uint64_t fact_pages_scanned = 0;
  /// Batch recycling pool hits/misses: a warm pipeline should show a hit
  /// rate near 1 (zero per-batch heap allocation in steady state).
  uint64_t batch_pool_hits = 0;
  uint64_t batch_pool_misses = 0;
};

/// The always-on shared-operator pipeline evaluating all concurrent star
/// queries over one fact table.
class CjoinPipeline {
 public:
  CjoinPipeline(const storage::Catalog* catalog, storage::BufferPool* pool,
                const storage::Table* fact_table, CjoinOptions options);
  ~CjoinPipeline();

  SDW_DISALLOW_COPY(CjoinPipeline);

  /// One query submission: join-pipeline output rows — schema `out_schema`,
  /// which must equal the query-centric join sub-plan's output schema — are
  /// written to `sink`; at completion the sink is closed and `on_complete`
  /// runs (in the preprocessor thread).
  struct Submission {
    query::StarQuery q;
    storage::Schema out_schema;
    std::shared_ptr<core::PageSink> sink;
    std::function<void()> on_complete;
  };

  /// Submits a star query.
  void Submit(const query::StarQuery& q, storage::Schema out_schema,
              std::shared_ptr<core::PageSink> sink,
              std::function<void()> on_complete);

  /// Submits several queries atomically so they join one admission batch
  /// (one pipeline pause) — the paper's batched admission (§3.2).
  void SubmitMany(std::vector<Submission> submissions);

  CjoinStats stats() const;
  /// Zeroes the aggregate statistics (between experiment runs).
  void ResetStats();
  size_t num_filters() const;
  size_t num_active_queries() const;

 private:
  /// Projection step from fact row or joined dimension row to output tuple.
  struct ProjMove {
    bool from_fact;
    size_t filter_pos;  // valid when !from_fact
    uint32_t src_off;
    uint32_t dst_off;
    uint32_t len;
  };

  struct ActiveQuery {
    uint32_t slot = 0;
    query::StarQuery q;
    storage::Schema out_schema;
    std::shared_ptr<core::PageSink> sink;
    std::function<void()> on_complete;
    query::Predicate::Bound fact_pred;
    std::vector<ProjMove> moves;
    uint64_t pages_remaining = 0;
    std::mutex out_mu;
    std::unique_ptr<qpipe::PageWriter> writer;
  };

  using PendingQuery = Submission;

  void PreprocessorLoop();
  void FilterWorkerLoop();
  void DistributorPartLoop();

  /// Blocks until no batch is in flight (pipeline paused).
  void DrainPipeline();

  /// Rebalances in_flight_ for a batch dropped by a closed queue, so drain
  /// waiters are not left hanging during shutdown.
  void ForgetDroppedBatch();

  // The *Locked helpers require mu_ held and the pipeline drained.
  void DoCompletionsLocked();
  void DoAdmissionsLocked();
  uint32_t AllocSlotLocked();
  Filter* GetOrCreateFilterLocked(const query::DimJoin& dim);
  void BuildProjection(const query::StarQuery& q,
                       const storage::Schema& out_schema, ActiveQuery* aq);
  void CompleteQueryLocked(uint32_t slot);

  const storage::Catalog* catalog_;
  storage::BufferPool* pool_;
  const storage::Table* fact_;
  const CjoinOptions options_;
  const size_t words_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::vector<PendingQuery> pending_;
  std::vector<std::unique_ptr<ActiveQuery>> slots_;
  Bitset active_mask_;
  size_t active_count_ = 0;
  std::vector<uint32_t> free_slots_;
  std::vector<uint32_t> dirty_slots_;
  std::vector<uint32_t> completions_due_;
  std::vector<std::unique_ptr<Filter>> filters_;
  CjoinStats stats_;
  // Pool-counter snapshots taken at ResetStats so stats() reports per-run
  // hit rates.
  uint64_t pool_hits_base_ = 0;
  uint64_t pool_misses_base_ = 0;

  BatchQueue to_filters_;
  BatchQueue to_distributor_;
  BatchPool batch_pool_;
  std::atomic<int> in_flight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::atomic<bool> stop_{false};
  storage::CircularPageCursor cursor_;

  std::thread preprocessor_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> parts_;
};

}  // namespace sdw::cjoin

#endif  // SDW_CJOIN_PIPELINE_H_
