// The CJOIN Global Query Plan pipeline (paper §2.5, Figure 4):
//
//   preprocessor ──► filter workers ──► distributor parts ──► query outputs
//
//  * The preprocessor runs a circular scan of the fact table, emitting one
//    annotated tuple batch per page. Each admitted query records its point
//    of entry and completes when the scan wraps around to it.
//  * Query admission is batched: at a page boundary the pipeline drains,
//    pending queries update/extend the filters (scanning their dimension
//    tables and setting their bits), and the scan resumes — the paper's
//    pause-the-pipeline admission phase.
//  * Filter workers take whole batches through every filter (the paper's
//    horizontal thread configuration).
//  * Distributor parts examine each joined tuple's bitmap, evaluate
//    fact-table predicates per query (CJOIN does not push them into the
//    preprocessor; see paper §3.2), project, and forward to the query's
//    output channel.

#ifndef SDW_CJOIN_PIPELINE_H_
#define SDW_CJOIN_PIPELINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cjoin/filter.h"
#include "cjoin/shared_agg.h"
#include "cjoin/tuple_batch.h"
#include "common/memory_budget.h"
#include "common/mutex.h"
#include "common/retry.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/page_channel.h"
#include "core/query_ticket.h"
#include "query/plan.h"
#include "query/star_query.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/scan.h"

namespace sdw::cjoin {

/// Pipeline configuration.
struct CjoinOptions {
  /// Query-slot capacity (bitmap width). Admissions beyond this abort.
  size_t max_queries = 1024;
  /// Filter worker threads (horizontal configuration).
  size_t filter_threads = 2;
  /// Distributor parts (the paper adds these to remove the single-threaded
  /// distributor bottleneck, §3.2).
  size_t distributor_parts = 2;
  /// Batches buffered between pipeline stages.
  size_t queue_capacity = 8;
  /// Evaluate fact-table predicates in the preprocessor (clearing the
  /// query's bit on non-matching tuples) instead of on CJOIN's output. The
  /// paper tried this and rejected it: "in most cases the cost of a slower
  /// pipeline defeated the purpose of potentially flowing fewer fact tuples
  /// in the pipeline" (§3.2). Kept as an option for the ablation bench.
  bool fact_preds_in_preprocessor = false;
  /// Bind aggregate submissions with equal StarQuery::AggSignature() to one
  /// shared aggregation group (each batch folded once per distinct shape,
  /// per-query results sliced at completion). False = the scalar reference:
  /// every aggregate query gets a private group aggregated query-at-a-time.
  bool shared_aggregation = true;
  /// Order the pending queue by (priority desc, arrival) at every admission
  /// pause, so when slots are scarce a high-priority query never loses its
  /// slot to a long low-priority backlog. False = seed FIFO (the scheduler's
  /// priority_enabled switch turns this off for the bench baseline).
  bool priority_admission = true;
  /// Scanned pages between full re-evaluations of a slot's group cancel
  /// signal (the SP AllConsumersDetached registry walk); the cached per-slot
  /// atomic answers in between. Lifecycle-only checks are lock-free and run
  /// every page regardless.
  uint32_t detach_check_interval_pages = 16;
  /// Overload gate: when set, each admission reserves kAdmissionCostBytes
  /// before costing a slot; a pending query that cannot reserve is shed
  /// with kResourceExhausted + a retry_after hint instead of queueing
  /// unboundedly (graceful degradation). Null = no gate (the seed behavior).
  MemoryBudget* memory_budget = nullptr;
  /// Resubmission hint attached to overload rejections.
  int64_t overload_retry_after_nanos = 5'000'000;
  /// Dynamic query folding (GraftDB direction, ROADMAP item 2): at each
  /// admission pause, a pending query whose predicates are provably
  /// contained in an in-flight query's (query::QuerySubsumes — equal
  /// AggSignature + PredicateContains per predicate) folds onto that host's
  /// slot as a post-filter over the host's filter verdicts instead of
  /// consuming a slot and dimension scans. Default OFF: the unfolded path
  /// is the differential oracle (fold_differential_test pins folded runs
  /// bit-exact against it).
  bool query_folding = false;
  /// Fold-bit capacity: how many folded AGGREGATE queries can be in flight
  /// at once (each needs a private bit in the shared-agg member bitmap
  /// beyond the slot range; streaming folds are unlimited). 0 = 3x
  /// max_queries. When exhausted, fold-eligible aggregates fall back to
  /// normal slot admission.
  size_t fold_bits = 0;
};

/// Aggregate pipeline statistics.
struct CjoinStats {
  double admission_seconds = 0;   // wall time with the pipeline paused
  uint64_t admission_batches = 0;
  uint64_t queries_admitted = 0;
  uint64_t queries_completed = 0;
  /// Queries whose client cancelled/detached: admitted ones retired at an
  /// admission pause before finishing their scan cycle (their slots return
  /// to the dirty pool for reuse), plus pending ones rejected before
  /// allocation. So queries_admitted <= queries_completed +
  /// queries_cancelled, with equality when no pending query was cancelled.
  uint64_t queries_cancelled = 0;
  /// Pending queries rejected at admission because their deadline had
  /// already expired — before costing a slot or a dimension scan.
  uint64_t queries_expired = 0;
  /// Pending queries rejected because no query slot was available.
  uint64_t queries_rejected = 0;
  /// Pending queries shed by the MemoryBudget overload gate
  /// (kResourceExhausted with a retry_after hint — resubmittable).
  uint64_t queries_rejected_overload = 0;
  /// Queries terminated by a storage fault — a permanent fact-page read
  /// error failing the epoch's attached queries (fault isolation: later
  /// admissions are untouched), or an admission-time dimension-scan failure.
  uint64_t queries_failed = 0;
  /// Fact-page reads that surfaced an error after the cursor's transient
  /// retries (each such page is skipped and the scan re-arms).
  uint64_t scan_read_errors = 0;
  /// Transient-retry telemetry from the circular scan cursor (see
  /// common/retry.h): sleeps taken, retry budgets exhausted, nanos backing
  /// off.
  uint64_t scan_read_retries = 0;
  uint64_t scan_retry_giveups = 0;
  int64_t scan_backoff_nanos = 0;
  /// Admissions that reused a previously-occupied (dirty) slot — shows
  /// cancelled/completed slots actually recycling under churn.
  uint64_t slot_recycles = 0;
  uint64_t fact_pages_scanned = 0;
  /// Batch recycling pool hits/misses: a warm pipeline should show a hit
  /// rate near 1 (zero per-batch heap allocation in steady state).
  uint64_t batch_pool_hits = 0;
  uint64_t batch_pool_misses = 0;
  /// Dimension scans performed by admissions: batched admission does ONE
  /// scan per referenced dimension per admission epoch, however many queries
  /// were pending — admission_dim_scans / admission_batches stays flat in
  /// the batch size.
  uint64_t admission_dim_scans = 0;
  /// Distributor grouping-scratch recycling: batches grouped within the
  /// scratch's retained capacity vs. batches that had to grow a scratch
  /// vector. A warm distributor must show grows ~ 0 — zero per-batch heap
  /// allocation, the distributor analogue of the batch-pool hit rate.
  uint64_t distributor_scratch_reuses = 0;
  uint64_t distributor_scratch_grows = 0;
  /// Aggregate admissions that joined an already-active shared aggregation
  /// group instead of creating one — the sharing the tentpole is after
  /// (aggregation work scales with distinct shapes, not query count).
  uint64_t agg_groups_shared = 0;
  /// (batch, group) folds performed by distributor parts. With sharing, K
  /// same-shape queries over a scan cost one fold per batch, not K.
  uint64_t agg_batches_folded = 0;
  /// Per-query result slices rendered at completion (one per aggregate
  /// query that finished its cycle cleanly).
  uint64_t agg_slice_emits = 0;
  /// Wall nanos spent in SharedAggregator::MergePartials — the
  /// SINGLE-THREADED fold of every part's partial table into the group's
  /// merged table, run at pause boundaries (pipeline drained) right before
  /// a slice or retirement needs it. This serial merge is the known scaling
  /// ceiling of the shared-aggregation stage; the counter is the baseline a
  /// future parallel radix merge must beat (see ROADMAP.md).
  int64_t agg_merge_nanos = 0;
  /// MergePartials invocations behind agg_merge_nanos.
  uint64_t agg_merges = 0;
  /// Pending queries examined by the admission fold pass (one per pending
  /// query reaching admission while query_folding is on).
  uint64_t fold_checks = 0;
  /// Pending queries folded onto an in-flight host slot instead of
  /// consuming a slot and dimension scans. Folded queries also count into
  /// queries_admitted (queries_folded <= queries_admitted).
  uint64_t queries_folded = 0;
  /// Fold hosts whose own client finished (completed, cancelled or faulted)
  /// while >= 1 satellite still rode the slot: the slot stays active for
  /// the survivors instead of retiring (host-retirement promotion; see
  /// docs/FOLDING.md).
  uint64_t fold_promotions = 0;
};

/// Per-part reusable scratch for grouping a batch's live tuples by query
/// slot — a recycled flat slot→indexes layout, the distributor's analogue
/// of FilterScratch (it replaces the per-batch slot→vector hash map the
/// seed distributor rebuilt for every batch). The arena is a slot-major
/// bucket matrix: `stride` index cells per slot (stride = the largest page
/// tuple count seen), with per-slot fill cursors in `counts` — each
/// (slot, tuple) pair costs one bitmap decode and one cursor-indexed store,
/// with no hashing and no per-append capacity check. The arena's size
/// depends only on the batch geometry (slot capacity × page tuples), never
/// on which slots are occupied, so steady state performs zero heap
/// allocation per batch even as completed queries' slots are recycled —
/// observable through the reuses/grows counters. (Two alternatives were
/// benchmarked: a contiguous counting-sort layout lost to its second
/// scatter pass, and per-slot growable vectors re-allocate on slot churn.)
struct DistributorScratch {
  std::vector<uint32_t> arena;    // max_slots × stride bucket matrix
  std::vector<uint32_t> counts;   // per-slot fill cursor == group size
  std::vector<uint32_t> touched;  // slots with >= 1 tuple, ascending
  std::vector<uint64_t> seen;     // OR of all live bitmaps (one per word):
                                  // touched slots fall out of this for free
                                  // instead of a per-pair discovery branch
  size_t stride = 0;              // arena cells per slot (monotonic)
  uint64_t reuses = 0;            // batches grouped within retained capacity
  uint64_t grows = 0;             // batches that grew some vector

  size_t num_groups() const { return touched.size(); }
  uint32_t group_slot(size_t g) const { return touched[g]; }
  const uint32_t* group_begin(size_t g) const {
    return arena.data() + touched[g] * stride;
  }
  size_t group_size(size_t g) const { return counts[touched[g]]; }
};

/// Groups the batch's live tuples by query slot into `scratch`: groups come
/// out in ascending slot order with tuple indexes ascending within each
/// group. Dead tuples are skipped via the live mask without touching their
/// bitmaps. Returns the total number of (slot, tuple) pairs. Performs no
/// heap allocation once the scratch reached its high-water size.
size_t DistributePartBatched(const TupleBatch& batch,
                             DistributorScratch* scratch);

/// Scalar reference for DistributePartBatched — the seed distributor's
/// per-batch rebuilt slot→tuple-indexes map. Kept as the differential-test
/// and benchmark baseline; must produce the same groups (compared as sets).
void DistributePartScalar(
    const TupleBatch& batch,
    std::unordered_map<uint32_t, std::vector<uint32_t>>* by_slot);

/// The always-on shared-operator pipeline evaluating all concurrent star
/// queries over one fact table.
class CjoinPipeline {
 public:
  /// Bytes the overload gate charges per admitted query (output buffering +
  /// filter-entry growth): one open output page plus one page of dimension
  /// working state. Released at completion, rejection or failure.
  static constexpr uint64_t kAdmissionCostBytes = 2 * storage::kPageSize;

  CjoinPipeline(const storage::Catalog* catalog, storage::BufferPool* pool,
                const storage::Table* fact_table, CjoinOptions options);
  ~CjoinPipeline();

  SDW_DISALLOW_COPY(CjoinPipeline);

  /// One query submission: join-pipeline output rows — schema `out_schema`,
  /// which must equal the query-centric join sub-plan's output schema — are
  /// written to `sink`; at completion (or rejection, or early retirement)
  /// the sink is closed and `on_complete` runs with the terminal status (in
  /// the preprocessor thread). Every submission reaches on_complete exactly
  /// once — a rejected query must never hang its client.
  struct Submission {
    query::StarQuery q;
    storage::Schema out_schema;
    std::shared_ptr<core::PageSink> sink;
    /// Client lifecycle (may be null for direct pipeline tests). Supplies
    /// the deadline (enforced at admission) and the default cancel/detach
    /// signal, and is completed with the terminal status on the pipeline's
    /// error/cancel paths so no ticket is left unsatisfied.
    std::shared_ptr<core::QueryLifecycle> life;
    /// Overrides the cancel signal (checked each scanned page and at
    /// admission). Used by CJOIN-SP, where a shared packet must retire only
    /// once ALL consumers — host and satellites — have detached, not when
    /// the host's own query cancels. Defaults to life->Detached().
    std::function<bool()> cancelled;
    std::function<void(const Status&)> on_complete;
    /// Admission priority (higher admits first when slots are scarce;
    /// defaults to the lifecycle's submit priority when one is attached).
    int priority = 0;
    /// Dynamic priority override, re-evaluated at the admission pause: a
    /// CJOIN-SP shared packet reports the max priority over its attached
    /// consumers, so a high-priority satellite boosts the host it shares.
    std::function<int()> priority_fn;
    /// Aggregate submission: the pipeline aggregates the query's join output
    /// internally (shared or scalar per CjoinOptions::shared_aggregation)
    /// and the sink receives aggregate-result pages instead of join rows —
    /// `out_schema` must then be the aggregation output schema (group
    /// columns, then one column per aggregate; see Planner::BindAggShape).
    bool aggregate = false;
  };

  /// Submits a star query.
  void Submit(const query::StarQuery& q, storage::Schema out_schema,
              std::shared_ptr<core::PageSink> sink,
              std::function<void(const Status&)> on_complete);

  /// Submits several queries atomically so they join one admission batch
  /// (one pipeline pause) — the paper's batched admission (§3.2).
  void SubmitMany(std::vector<Submission> submissions);

  CjoinStats stats() const;
  /// Zeroes the aggregate statistics (between experiment runs).
  void ResetStats();
  size_t num_filters() const;
  size_t num_active_queries() const;

  /// Blocks until the pipeline holds no pending or active query. Needed
  /// before teardown when queries can finish client-side ahead of their
  /// slot (a cancelled ticket completes immediately; its slot retires at
  /// the next admission pause).
  void WaitIdle();

  // ------------------------------------------------------ watchdog surface

  /// Monotone progress epoch: bumped once per scanned page (including
  /// skipped poisoned pages) and once per admission pause. The stall
  /// watchdog snapshots it; an unchanged epoch while busy() means the scan
  /// is silently wedged.
  uint64_t progress_epoch() const {
    return progress_.load(std::memory_order_relaxed);
  }

  /// True while any query is admitted or pending — the watchdog only treats
  /// a flat progress epoch as a stall while there is work to progress on.
  bool busy() const;

  /// Cancels every admitted and pending query with `why` (e.g. the stall
  /// watchdog's kDeadlineExceeded). Cancellation flows through the normal
  /// lifecycle machinery: clients unblock immediately, slots retire at the
  /// next admission pause.
  void CancelActiveQueries(const Status& why);

 private:
  struct ActiveQuery {
    uint32_t slot = 0;
    query::StarQuery q;
    storage::Schema out_schema;
    uint32_t out_tuple_size = 0;
    std::shared_ptr<core::PageSink> sink;
    std::shared_ptr<core::QueryLifecycle> life;
    std::function<bool()> cancelled;
    std::function<void(const Status&)> on_complete;
    query::Predicate::Bound fact_pred;
    std::vector<JoinRowMove> moves;
    uint64_t pages_remaining = 0;
    /// Folded satellite (dynamic query folding): rides a host slot's filter
    /// verdicts instead of owning one. `slot` names the HOST slot. Never in
    /// active_mask_ / active_count_; lives in its host's `satellites`.
    bool folded = false;
    /// The satellite's own dimension predicates where they differ from the
    /// host's (provably narrower by admission containment): re-checked per
    /// emitted tuple against the joined dimension rows. Aggregate satellites
    /// carry them inside their SharedAggregator folded member instead.
    std::vector<SharedAggregator::Residual> residuals;
    /// Folded queries riding this slot. Mutates only at admission pauses
    /// (fold pass adds, completion removes) under the same drain-barrier
    /// protocol as slots_; stage threads read it lock-free.
    std::vector<std::unique_ptr<ActiveQuery>> satellites;
    /// The host's OWN client finished (any way) but satellites still ride
    /// the slot: suppress host emission/decrement, keep the slot active
    /// until the satellites retire too.
    bool client_done = false;
    /// This rider's bit in its aggregation group's member bitmap: the slot
    /// for slot-owning queries, a private fold bit for folded aggregates.
    uint32_t agg_bit = 0;
    /// Aggregate query: join output folds into `agg_group` (bound at
    /// activation, retired at completion) instead of streaming through
    /// EmitGroup; the sink receives rendered aggregate pages at completion.
    bool aggregate = false;
    SharedAggregator::Group* agg_group = nullptr;
    /// Set once the slot is queued on completions_due_, so the cancel check
    /// and the cycle-complete check cannot double-queue it.
    bool completion_queued = false;
    /// Non-OK once a storage fault terminated this query (a permanent fact
    /// page loss while it was attached, or an admission dimension-scan
    /// failure). CompleteQueryLocked finishes the query with this status
    /// instead of the cancel status — fault isolation is per attached epoch,
    /// so queries admitted after the fault never see it.
    Status fault_status;

    /// True once the query's consumers no longer want output (explicit
    /// cancel, completed ticket, or — under SP — every consumer detached).
    /// Evaluated by the preprocessor (once per scanned page, under mu_);
    /// the result is cached in `detached_cache` so the distributor's
    /// per-group suppression check stays a relaxed atomic load instead of
    /// taking the SP registry lock on the hot path.
    bool Detached() {
      bool d;
      if (cancelled) {
        d = cancelled();
      } else {
        d = life != nullptr && life->Detached();
      }
      if (d) detached_cache.store(true, std::memory_order_relaxed);
      return d;
    }

    /// Hot-path view of Detached(): at most detach_check_interval_pages
    /// stale for SP group signals, one page for lifecycle-only queries.
    std::atomic<bool> detached_cache{false};

    /// Pages until the next full `cancelled()` evaluation (SP group checks
    /// walk the registry under its lock — the cost the throttle amortizes).
    uint32_t detach_check_countdown = 1;

    /// Per-page cancel check for the preprocessor's scan loop: lifecycle
    /// signals (cancel/deadline/done — plain atomics) are checked every
    /// page, but a locked group `cancelled()` walk runs only every
    /// `interval` pages, answering from the cached per-slot atomic in
    /// between.
    bool DetachedThrottled(uint32_t interval) {
      if (detached_cache.load(std::memory_order_relaxed)) return true;
      if (!cancelled) return Detached();  // lock-free lifecycle check
      if (detach_check_countdown > 1) {
        --detach_check_countdown;
        return false;
      }
      // interval 0 degrades to every-page checking (the pre-throttle
      // behavior), never to an unsigned wraparound.
      detach_check_countdown = interval < 1 ? 1 : interval;
      return Detached();
    }

    // Output path: distributor parts take/put partial pages under out_mu (a
    // pointer swap) and project into them without the lock; the sink is
    // touched under out_mu only when a page fills or at completion.
    // Ranked below the channels: the page-full emission Puts into the
    // query's sink channel while holding it.
    Mutex out_mu{lock_rank::Rank::kQueryOutput};
    SlotOutputBuffer out_buf GUARDED_BY(out_mu);
  };

  using PendingQuery = Submission;

  void PreprocessorLoop();
  void FilterWorkerLoop();
  void DistributorPartLoop(size_t part);

  /// Handles a surfaced fact-page read error (transient retries already
  /// exhausted inside the cursor): fails every query attached at this scan
  /// epoch — taxonomy-mapped to kDataLoss / kUnavailable — while the scan
  /// itself skips the poisoned page, re-arms, and keeps serving queries
  /// admitted later.
  void HandleScanFault(uint64_t page_index, const Status& why);

  /// Emits one slot's group of a batch — the slot's own query (unless
  /// aggregate, finished or detached) and each streaming satellite riding
  /// it. Runs in a distributor-part thread.
  void EmitGroup(uint32_t slot, const TupleBatch& batch,
                 const storage::Schema& fact_schema, const uint32_t* idxs,
                 size_t n);

  /// Projects one rider's share of a group: evaluates its fact predicate
  /// (always for satellites — the preprocessor knows nothing about them —
  /// else per fact_preds_in_preprocessor) and its dimension residuals,
  /// projects matching tuples into its buffered output pages
  /// (taken/returned under out_mu; filled without it), and hands full pages
  /// to the sink. Runs in a distributor-part thread.
  void EmitRows(ActiveQuery* aq, const TupleBatch& batch,
                const storage::Schema& fact_schema, const uint32_t* idxs,
                size_t n);

  /// Blocks until no batch is in flight (pipeline paused).
  void DrainPipeline();

  /// Rebalances in_flight_ for a batch dropped by a closed queue, so drain
  /// waiters are not left hanging during shutdown.
  void ForgetDroppedBatch();

  // The *Locked helpers additionally require the pipeline drained (a
  // protocol REQUIRES(mu_) cannot express; see the slots_ comment below).
  void DoCompletionsLocked() REQUIRES(mu_);
  void DoAdmissionsLocked() REQUIRES(mu_);
  /// Allocates a slot, recycling a dirty one when the free pool is empty;
  /// returns kNoSlot when capacity is exhausted (the caller rejects).
  static constexpr uint32_t kNoSlot = ~uint32_t{0};
  uint32_t TryAllocSlotLocked() REQUIRES(mu_);
  Filter* GetOrCreateFilterLocked(const query::DimJoin& dim) REQUIRES(mu_);
  /// Byte moves materializing `q`'s join-output rows (schema `out_schema`)
  /// from fact pages and joined dimension rows. Used for per-query streaming
  /// projection and for shared-aggregation-group row materialization alike.
  std::vector<JoinRowMove> BuildJoinMoves(const query::StarQuery& q,
                                          const storage::Schema& out_schema);
  /// Binds an activating aggregate query to its aggregation group: an
  /// existing same-signature group under shared aggregation, else a fresh
  /// (private, under the scalar reference) group whose shape is compiled
  /// here. Additionally requires the pipeline drained.
  void BindAggGroupLocked(ActiveQuery* aq) REQUIRES(mu_);
  /// Renders the completing aggregate query's result (slice of its shared
  /// group, or the whole table of its private scalar group) into pages on
  /// its sink. Requires the group's partials merged. `slice` is an optional
  /// precomputed slice (SliceMembers batches all of a drain's slices into
  /// one table pass); nullptr cuts it here.
  void EmitAggResultLocked(ActiveQuery* aq,
                           SharedAggregator::AccTable* slice) REQUIRES(mu_);
  /// Processes a slot queued on completions_due_: finishes every DUE rider
  /// (the host query and/or folded satellites — faulted, cycle complete, or
  /// detached), then retires the slot itself only once the host's client is
  /// done AND no satellite remains; a host finishing ahead of its
  /// satellites promotes the slot to the survivors instead.
  void CompleteQueryLocked(uint32_t slot) REQUIRES(mu_);
  /// Finishes ONE rider (host or satellite): fault/cancel status when early,
  /// else emits its aggregate slice or drains its stream; retires its
  /// aggregation membership (by agg_bit), returns its fold bit, counts it,
  /// releases its budget reservation. Additionally requires the pipeline
  /// drained. `slice` forwards a batch-precomputed aggregate slice to
  /// EmitAggResultLocked (nullptr = compute on emit).
  void FinishRiderLocked(ActiveQuery* r,
                         SharedAggregator::AccTable* slice = nullptr)
      REQUIRES(mu_);
  /// The in-flight (or same-epoch just-materialized, via `epoch_slots`)
  /// query that can host pending query `p`: healthy, matching aggregate
  /// mode, and query::QuerySubsumes(host.q, p.q). Null when none — or when
  /// `p` is an aggregate and fold-bit capacity is exhausted (it then takes
  /// the normal slot path).
  ActiveQuery* FindFoldHostLocked(const PendingQuery& p,
                                  const std::vector<uint32_t>& epoch_slots)
      REQUIRES(mu_);
  /// Folds pending query `p` onto `host` as a satellite: builds its bound
  /// predicates, moves, residuals and lifecycle marks, claims a fold bit
  /// for aggregates, and binds it into the host's aggregation group
  /// immediately when the host is already active (same-epoch hosts bind
  /// their satellites in admission phase 4, after BindAggGroupLocked).
  void FoldOntoHostLocked(ActiveQuery* host, PendingQuery* p) REQUIRES(mu_);
  /// Binds an aggregate satellite (fold bit already claimed in
  /// FoldOntoHostLocked) as a folded member of its host's group.
  void BindFoldedAggLocked(ActiveQuery* host, ActiveQuery* sat) REQUIRES(mu_);
  /// The satellite's residual dimension predicates: one Bound per dimension
  /// whose predicate signature differs from the host's (identical
  /// predicates need no residual — the host's filter verdict is exact).
  std::vector<SharedAggregator::Residual> BuildResiduals(
      const ActiveQuery& host, const query::StarQuery& q);
  /// Terminates a query with a non-OK status: completes the lifecycle and
  /// runs on_complete BEFORE closing the sink (the ordering is what keeps a
  /// client drain's Finish(Ok)-on-truncated-stream from winning the
  /// first-wins race). Shared by the pending-reject and early-retire paths.
  static void FailQuery(const std::shared_ptr<core::QueryLifecycle>& life,
                        const std::function<void(const Status&)>& on_complete,
                        core::PageSink* sink, const Status& why);
  /// Fails a pending submission without admitting it.
  void RejectPendingLocked(PendingQuery* p, const Status& why) REQUIRES(mu_);

  const storage::Catalog* catalog_;
  storage::BufferPool* pool_;
  const storage::Table* fact_;
  const CjoinOptions options_;
  const size_t words_;
  /// Member-bitmap width of the shared aggregation stage: the slot words
  /// plus fold-bit words when query folding is enabled.
  const size_t member_words_;

  mutable Mutex mu_{lock_rank::Rank::kCjoinPipeline};
  CondVar work_cv_;
  CondVar idle_cv_;
  std::vector<PendingQuery> pending_ GUARDED_BY(mu_);
  // Drain-barrier protocol, NOT mu_: slots_, active_mask_, filters_,
  // shared_agg_'s group list and dim_row_fn_ are read lock-free by the
  // stage threads (batch annotation, filter processing, EmitGroup, fold)
  // while batches are in flight, and mutate ONLY at admission pauses —
  // after DrainPipeline() proved no batch is in flight, on the one
  // preprocessor thread that also performs every mutation. GUARDED_BY
  // cannot express that barrier, so these stay unannotated rather than
  // burn NO_THREAD_SAFETY_ANALYSIS suppressions on every stage loop.
  std::vector<std::unique_ptr<ActiveQuery>> slots_;
  Bitset active_mask_;
  size_t active_count_ GUARDED_BY(mu_) = 0;
  std::vector<uint32_t> free_slots_ GUARDED_BY(mu_);
  std::vector<uint32_t> dirty_slots_ GUARDED_BY(mu_);
  /// Unclaimed fold-bit positions in [words_*64, member_words_*64) for
  /// folded aggregate members; claimed at fold time, returned when the
  /// satellite retires. Empty pool => aggregate folds fall back to slots.
  std::vector<uint32_t> free_fold_bits_ GUARDED_BY(mu_);
  std::vector<uint32_t> completions_due_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Filter>> filters_;
  /// Shared aggregation stage. Group membership and merged tables mutate
  /// only at admission pauses (pipeline drained); distributor parts fold
  /// into their own per-part partial tables while batches are in flight.
  SharedAggregator shared_agg_;
  SharedAggregator::DimRowFn dim_row_fn_;
  CjoinStats stats_ GUARDED_BY(mu_);
  // Cross-thread stat counters, with snapshots taken at ResetStats so
  // stats() reports per-run values.
  Counter dist_scratch_reuses_;
  Counter dist_scratch_grows_;
  Counter agg_batches_folded_;
  uint64_t pool_hits_base_ GUARDED_BY(mu_) = 0;
  uint64_t pool_misses_base_ GUARDED_BY(mu_) = 0;
  uint64_t dist_reuses_base_ GUARDED_BY(mu_) = 0;
  uint64_t dist_grows_base_ GUARDED_BY(mu_) = 0;
  uint64_t agg_folds_base_ GUARDED_BY(mu_) = 0;
  uint64_t admission_scans_base_ GUARDED_BY(mu_) = 0;
  // Cursor retry-telemetry snapshot at the last ResetStats (the cursor's
  // counters are cumulative relaxed atomics; stats() reports deltas).
  uint64_t retry_retries_base_ GUARDED_BY(mu_) = 0;
  uint64_t retry_giveups_base_ GUARDED_BY(mu_) = 0;
  int64_t retry_backoff_base_ GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> progress_{0};

  BatchQueue to_filters_;
  BatchQueue to_distributor_;
  BatchPool batch_pool_;
  std::atomic<int> in_flight_{0};
  // Terminal: held only around the drain CV handshake, acquires nothing.
  Mutex drain_mu_{lock_rank::Rank::kLeaf};
  CondVar drain_cv_;

  std::atomic<bool> stop_{false};
  storage::CircularPageCursor cursor_;

  std::thread preprocessor_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> parts_;
};

}  // namespace sdw::cjoin

#endif  // SDW_CJOIN_PIPELINE_H_
