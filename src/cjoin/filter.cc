#include "cjoin/filter.h"

#include <bit>
#include <cstring>

#include "common/breakdown.h"
#include "common/simd.h"
#include "storage/scan.h"

#if defined(SDW_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SDW_FILTER_AVX2_BODY 1
#include <immintrin.h>
#endif

namespace sdw::cjoin {

namespace {

// Pass-2 loop state shared between the generic multi-word loop and the
// batch-granularity AVX2 body below. `rows == nullptr` means the batch is
// all-live (tuple index == probe index).
struct Pass2Ctx {
  const uint32_t* rows;
  const uint64_t* values;
  size_t live_count;
  uint64_t sentinel;
  const uint64_t* entry_bits;  // 4-word stride, sentinel row included
  const uint32_t* entry_rows;
  const uint64_t* pass;
  uint64_t* bits;  // batch bitmap array, 4 words per tuple
  uint32_t* dims;
  uint32_t nf;
  uint32_t position;
  uint64_t* live_words;
};

#if defined(SDW_FILTER_AVX2_BODY)

// The 256-slot (4-word) pass-2 kernel at batch granularity: one dispatch
// decision per batch instead of one indirect simd:: call per tuple, the
// pass mask pinned in a ymm register across the loop, and the empty-bitmap
// check collapsed to a single vptest. Bitwise-identical to the generic loop
// (AND/OR over the same words) — the differential suite holds it to that.
__attribute__((target("avx2"))) void Pass2Words4Avx2(const Pass2Ctx& c) {
  constexpr size_t kLookahead = 8;
  const __m256i vpass =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c.pass));
  auto prefetch_entry = [&](size_t j) {
    if (j < c.live_count) {
      const uint64_t idx = c.values[j] < c.sentinel ? c.values[j] : c.sentinel;
      // A 32-byte entry row can straddle two cache lines (the vector data is
      // only 16-byte aligned) — touch both ends.
      SDW_PREFETCH(&c.entry_bits[idx * 4]);
      SDW_PREFETCH(&c.entry_bits[idx * 4 + 3]);
      SDW_PREFETCH(&c.entry_rows[idx]);
    }
  };
  for (size_t j = 0; j < kLookahead && j < c.live_count; ++j) {
    prefetch_entry(j);
  }
  for (size_t j = 0; j < c.live_count; ++j) {
    prefetch_entry(j + kLookahead);
    const uint32_t i = c.rows ? c.rows[j] : static_cast<uint32_t>(j);
    const uint64_t idx = c.values[j] < c.sentinel ? c.values[j] : c.sentinel;
    const __m256i match = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(c.entry_bits + idx * 4));
    uint64_t* tb = c.bits + size_t{i} * 4;
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tb));
    vb = _mm256_and_si256(vb, _mm256_or_si256(match, vpass));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(tb), vb);
    c.dims[size_t{i} * c.nf + c.position] = c.entry_rows[idx];
    if (_mm256_testz_si256(vb, vb)) bits::Clear(c.live_words, i);
  }
}

#endif  // SDW_FILTER_AVX2_BODY

}  // namespace

Filter::Filter(const storage::Table* dim_table, std::string fact_fk_column,
               std::string dim_pk_column, size_t position, size_t slots)
    : dim_table_(dim_table),
      fact_fk_column_(std::move(fact_fk_column)),
      dim_pk_column_(std::move(dim_pk_column)),
      position_(position),
      words_(bits::WordsFor(slots)),
      pass_mask_(slots),
      dim_pk_col_idx_(dim_table->schema().MustColumnIndex(dim_pk_column_)) {
  // Sentinel entry (see filter.h): present from birth so Process is safe
  // even before the first admission.
  entry_rows_.push_back(kNoDimRow);
  entry_bits_.resize(words_, 0);
}

Status Filter::AdmitQueryBatch(const AdmitRequest* reqs, size_t n,
                               storage::BufferPool* pool) {
  if (n == 0) return Status::Ok();
  const storage::Schema& schema = dim_table_->schema();
  // Bind every pending predicate once; the scan below is then the only pass
  // over the dimension for the whole admission epoch.
  std::vector<query::Predicate::Bound> bounds;
  bounds.reserve(n);
  for (size_t r = 0; r < n; ++r) bounds.push_back(reqs[r].pred->Bind(schema));

  // Entries are keyed by PK; PKs are unique per dimension, so at most one
  // entry per row exists — a tuple selected by several pending queries
  // resolves its entry once and sets all their bits. The scan+selection work
  // is charged to kScans at page granularity — per-row timers would dominate
  // admission cost. Drop the sentinel entry while the arrays grow;
  // re-appended below.
  entry_rows_.pop_back();
  entry_bits_.resize(entry_bits_.size() - words_);

  constexpr uint32_t kNoEntry = ~uint32_t{0};
  storage::TableScanCursor cursor(dim_table_, pool);
  uint64_t row_base = 0;
  Status scan_status;  // first terminal read error (transients are retried
                       // inside the cursor); the partial state stays safe
  while (true) {
    Result<const storage::Page*> fetched = [&] {
      ScopedComponentTimer t(Component::kScans);
      return cursor.Next();
    }();
    if (!fetched.ok()) {
      scan_status = fetched.status();
      break;
    }
    const storage::Page* page = fetched.value();
    if (page == nullptr) break;
    ScopedComponentTimer t(Component::kScans);
    const uint32_t count = page->tuple_count();
    for (uint32_t i = 0; i < count; ++i) {
      const std::byte* tuple = page->tuple(i);
      uint32_t entry = kNoEntry;  // resolved by the first selecting query
      for (size_t r = 0; r < n; ++r) {
        if (!bounds[r].IsTrue() && !bounds[r].Eval(schema, tuple)) continue;
        if (entry == kNoEntry) {
          const uint32_t row = static_cast<uint32_t>(row_base + i);
          const int64_t pk = schema.GetIntAny(tuple, dim_pk_col_idx_);
          bool inserted;
          const uint64_t e =
              flat_ht_.FindOrInsert(pk, entry_rows_.size(), &inserted);
          if (inserted) {
            entry_rows_.push_back(row);
            entry_bits_.resize(entry_bits_.size() + words_, 0);
            ht_.Insert(qpipe::HashKey(pk), pk, e);
          }
          entry = static_cast<uint32_t>(e);
        }
        bits::Set(entry_bits_.data() + entry * words_, reqs[r].slot);
      }
    }
    row_base += count;
  }
  entry_rows_.push_back(kNoDimRow);                    // sentinel
  entry_bits_.resize(entry_bits_.size() + words_, 0);  // sentinel
  {
    // Rebuild even on a failed scan: entries inserted before the failure are
    // in ht_ and must stay probe-consistent with the entry arrays.
    ScopedComponentTimer t(Component::kHashing);
    ht_.Build();
  }
  admission_scans_.Add(1);
  return scan_status;
}

void Filter::CleanSlot(uint32_t slot) {
  // (Harmlessly clears the always-zero sentinel entry too.)
  for (size_t e = 0; e < entry_rows_.size(); ++e) {
    bits::Clear(entry_bits_.data() + e * words_, slot);
  }
}

void Filter::BindFactColumn(const storage::Schema& fact_schema) {
  fk_col_ = fact_schema.MustColumnIndex(fact_fk_column_);
  fk_offset_ = fact_schema.offset(fk_col_);
  fk_is_int32_ =
      fact_schema.column(fk_col_).type == storage::ColumnType::kInt32;
  fk_bound_ = true;
}

void Filter::Process(TupleBatch* batch, FilterScratch* scratch) const {
  SDW_DCHECK(fk_bound_);
  const uint32_t n = batch->num_tuples;
  if (n == 0) return;
  if (batch->fact_page->columnar()) {
    // PAX page: dense FK minipage + flat probe + SIMD bitmap pass. The
    // row-major body below is kept byte-for-byte as the differential oracle.
    ProcessColumnar(batch, scratch);
    return;
  }
  const storage::Page& page = *batch->fact_page;
  const size_t words = batch->words_per_tuple;
  const uint64_t* pass = pass_mask_.words();

  // All-live batches (every tuple upstream of the first selective filter)
  // take dense fast paths: contiguous key gather and contiguous bitmap
  // update, no compaction or indirection.
  const uint64_t* live = batch->live_words();
  const size_t live_words = bits::WordsFor(n);
  const size_t full_words = n / 64;  // words that must be all-ones
  const size_t rem = n % 64;
  bool all_live =
      rem == 0 || live[live_words - 1] == (uint64_t{1} << rem) - 1;
  for (size_t w = 0; all_live && w < full_words; ++w) {
    all_live = live[w] == ~uint64_t{0};
  }

  // Pass 1 (the paper's "Hashing" work): gather the live tuples' FK keys
  // with one fixed-stride load each (no per-tuple schema interpretation)
  // and resolve all probes in a single batched, prefetching call.
  {
    ScopedComponentTimer t(Component::kHashing);
    const size_t stride = page.tuple_size();
    const std::byte* base = page.tuple(0) + fk_offset_;
    scratch->rows.clear();
    scratch->keys.clear();
    if (all_live) {
      scratch->keys.resize(n);
      int64_t* keys = scratch->keys.data();
      if (fk_is_int32_) {
        for (uint32_t i = 0; i < n; ++i) {
          int32_t v;
          std::memcpy(&v, base + i * stride, sizeof(v));
          keys[i] = v;
        }
      } else {
        for (uint32_t i = 0; i < n; ++i) {
          std::memcpy(&keys[i], base + i * stride, sizeof(int64_t));
        }
      }
    } else {
      for (size_t w = 0; w < live_words; ++w) {
        uint64_t word = live[w];
        while (word != 0) {
          const uint32_t i = static_cast<uint32_t>(
              w * 64 + static_cast<size_t>(std::countr_zero(word)));
          word &= word - 1;
          const std::byte* src = base + i * stride;
          int64_t key;
          if (fk_is_int32_) {
            int32_t v;
            std::memcpy(&v, src, sizeof(v));
            key = v;
          } else {
            std::memcpy(&key, src, sizeof(key));
          }
          scratch->rows.push_back(i);
          scratch->keys.push_back(key);
        }
      }
    }
    scratch->values.resize(scratch->keys.size());
    ht_.ProbeBatch(scratch->keys.data(), scratch->keys.size(),
                   scratch->values.data());
  }

  // Pass 2 (the paper's "Joins" work): bitwise AND with match|pass, record
  // the joined dimension row, and kill tuples whose bitmap goes empty so no
  // later stage touches them again.
  {
    ScopedComponentTimer t(Component::kJoins);
    // Misses are redirected to the sentinel entry with a cmov — no
    // data-dependent hit/miss branch in the loop (a miss ANDs with
    // 0|pass_mask and re-writes the initial kNoDimRow).
    const uint64_t sentinel = entry_rows_.size() - 1;
    // Matched entries land at random offsets in entry_bits_/entry_rows_;
    // running a few tuples ahead keeps those loads in flight.
    constexpr size_t kLookahead = 8;
    const size_t live_count = scratch->keys.size();
    const uint32_t* rows = scratch->rows.data();
    const uint64_t* values = scratch->values.data();
    const uint64_t* entry_bits = entry_bits_.data();
    const uint32_t* entry_rows = entry_rows_.data();
    auto prefetch_entry = [&](size_t j) {
      if (j < live_count) {
        const uint64_t idx = values[j] < sentinel ? values[j] : sentinel;
        SDW_PREFETCH(&entry_bits[idx * words_]);
        SDW_PREFETCH(&entry_rows[idx]);
      }
    };
    for (size_t j = 0; j < kLookahead && j < live_count; ++j) {
      prefetch_entry(j);
    }
    if (words == 1) {
      // Fast path for the common ≤64-query-slot case: the whole bitmap
      // state is one word per tuple, so the AND/any kernels collapse to
      // straight-line scalar ops over a contiguous word array.
      const uint64_t pass0 = pass[0];
      uint64_t* bw = batch->bits.data();
      uint32_t* dims = batch->dim_rows.data();
      const uint32_t nf = batch->num_filters;
      for (size_t j = 0; j < live_count; ++j) {
        prefetch_entry(j + kLookahead);
        const uint32_t i = all_live ? static_cast<uint32_t>(j) : rows[j];
        const uint64_t idx = values[j] < sentinel ? values[j] : sentinel;
        const uint64_t b = bw[i] & (entry_bits[idx] | pass0);
        dims[i * nf + position_] = entry_rows[idx];
        bw[i] = b;
        if (b == 0) batch->kill_tuple(i);
      }
    } else {
      for (size_t j = 0; j < live_count; ++j) {
        prefetch_entry(j + kLookahead);
        const uint32_t i = all_live ? static_cast<uint32_t>(j) : rows[j];
        const uint64_t idx = values[j] < sentinel ? values[j] : sentinel;
        uint64_t* tb = batch->tuple_bits(i);
        const uint64_t any =
            bits::AndWithOrAny(tb, entry_bits + idx * words_, pass, words);
        batch->tuple_dim_rows(i)[position_] = entry_rows[idx];
        if (any == 0) batch->kill_tuple(i);
      }
    }
  }
}

void Filter::ProcessColumnar(TupleBatch* batch, FilterScratch* scratch) const {
  const storage::Page& page = *batch->fact_page;
  const uint32_t n = batch->num_tuples;
  const size_t words = batch->words_per_tuple;
  const uint64_t* pass = pass_mask_.words();

  // All-live detection: identical to the row-major body.
  const uint64_t* live = batch->live_words();
  const size_t live_words = bits::WordsFor(n);
  const size_t full_words = n / 64;
  const size_t rem = n % 64;
  bool all_live =
      rem == 0 || live[live_words - 1] == (uint64_t{1} << rem) - 1;
  for (size_t w = 0; all_live && w < full_words; ++w) {
    all_live = live[w] == ~uint64_t{0};
  }

  // Pass 1: the FK keys sit contiguously in their minipage, so the gather is
  // a straight sequential read (4- or 8-byte stride — the whole point of
  // PAX: only the key column's cache lines are touched), and the probe goes
  // through the flat table's single-load stream.
  {
    ScopedComponentTimer t(Component::kHashing);
    const std::byte* base = page.column_data(fk_col_);
    scratch->rows.clear();
    scratch->keys.clear();
    if (all_live) {
      scratch->keys.resize(n);
      int64_t* keys = scratch->keys.data();
      if (fk_is_int32_) {
        const int32_t* src = reinterpret_cast<const int32_t*>(base);
        for (uint32_t i = 0; i < n; ++i) keys[i] = src[i];
      } else {
        std::memcpy(keys, base, size_t{n} * sizeof(int64_t));
      }
    } else {
      for (size_t w = 0; w < live_words; ++w) {
        uint64_t word = live[w];
        while (word != 0) {
          const uint32_t i = static_cast<uint32_t>(
              w * 64 + static_cast<size_t>(std::countr_zero(word)));
          word &= word - 1;
          int64_t key;
          if (fk_is_int32_) {
            int32_t v;
            std::memcpy(&v, base + size_t{i} * sizeof(int32_t), sizeof(v));
            key = v;
          } else {
            std::memcpy(&key, base + size_t{i} * sizeof(int64_t), sizeof(key));
          }
          scratch->rows.push_back(i);
          scratch->keys.push_back(key);
        }
      }
    }
    scratch->values.resize(scratch->keys.size());
    flat_ht_.ProbeBatch(scratch->keys.data(), scratch->keys.size(),
                        scratch->values.data());
  }

  // Pass 2: same sentinel-redirect structure as the row-major body (flat
  // misses return kMissValue = ~0, which the `< sentinel` cmov redirects
  // exactly like the chained table's miss value); the multi-word AND runs
  // through the SIMD dispatch instead of the scalar word loop.
  {
    ScopedComponentTimer t(Component::kJoins);
    const uint64_t sentinel = entry_rows_.size() - 1;
    constexpr size_t kLookahead = 8;
    const size_t live_count = scratch->keys.size();
    const uint32_t* rows = scratch->rows.data();
    const uint64_t* values = scratch->values.data();
    const uint64_t* entry_bits = entry_bits_.data();
    const uint32_t* entry_rows = entry_rows_.data();
    auto prefetch_entry = [&](size_t j) {
      if (j < live_count) {
        const uint64_t idx = values[j] < sentinel ? values[j] : sentinel;
        SDW_PREFETCH(&entry_bits[idx * words_]);
        SDW_PREFETCH(&entry_rows[idx]);
      }
    };
    for (size_t j = 0; j < kLookahead && j < live_count; ++j) {
      prefetch_entry(j);
    }
    if (words == 1) {
      const uint64_t pass0 = pass[0];
      uint64_t* bw = batch->bits.data();
      uint32_t* dims = batch->dim_rows.data();
      const uint32_t nf = batch->num_filters;
      for (size_t j = 0; j < live_count; ++j) {
        prefetch_entry(j + kLookahead);
        const uint32_t i = all_live ? static_cast<uint32_t>(j) : rows[j];
        const uint64_t idx = values[j] < sentinel ? values[j] : sentinel;
        const uint64_t b = bw[i] & (entry_bits[idx] | pass0);
        dims[i * nf + position_] = entry_rows[idx];
        bw[i] = b;
        if (b == 0) batch->kill_tuple(i);
      }
    } else {
#if defined(SDW_FILTER_AVX2_BODY)
      if (words == 4 && words_ == 4 && simd::Avx2Active()) {
        // The 256-slot regime gets the batch-granularity AVX2 body: the
        // per-tuple indirect dispatch is hoisted to one branch per batch.
        Pass2Words4Avx2({all_live ? nullptr : rows, values, live_count,
                         sentinel, entry_bits, entry_rows, pass,
                         batch->bits.data(), batch->dim_rows.data(),
                         batch->num_filters, static_cast<uint32_t>(position_),
                         batch->live_words()});
        return;
      }
#endif
      for (size_t j = 0; j < live_count; ++j) {
        prefetch_entry(j + kLookahead);
        const uint32_t i = all_live ? static_cast<uint32_t>(j) : rows[j];
        const uint64_t idx = values[j] < sentinel ? values[j] : sentinel;
        uint64_t* tb = batch->tuple_bits(i);
        const uint64_t any =
            simd::AndWithOrAny(tb, entry_bits + idx * words_, pass, words);
        batch->tuple_dim_rows(i)[position_] = entry_rows[idx];
        if (any == 0) batch->kill_tuple(i);
      }
    }
  }
}

void Filter::ProcessScalar(TupleBatch* batch,
                           const storage::Schema& fact_schema,
                           size_t fact_fk_col_idx) const {
  const storage::Page& page = *batch->fact_page;
  const uint32_t n = batch->num_tuples;
  const size_t words = batch->words_per_tuple;
  const uint64_t* pass = pass_mask_.words();

  // Pass 1: probe the shared hash table for every live tuple, recording the
  // matched entry (or none) — one schema-interpreted key decode plus one
  // dependent-load chain walk per tuple.
  std::vector<uint32_t> match_entry(n, kNoDimRow);
  {
    ScopedComponentTimer t(Component::kHashing);
    for (uint32_t i = 0; i < n; ++i) {
      if (!batch->tuple_live(i)) continue;  // dead tuple
      const int64_t key = page.GetIntAny(fact_schema, fact_fk_col_idx, i);
      ht_.ForEachMatch(qpipe::HashKey(key), key, [&](uint64_t entry_idx) {
        match_entry[i] = static_cast<uint32_t>(entry_idx);
      });
    }
  }

  // Pass 2: bitwise AND with match|pass and record the joined dimension row.
  {
    ScopedComponentTimer t(Component::kJoins);
    for (uint32_t i = 0; i < n; ++i) {
      if (!batch->tuple_live(i)) continue;
      uint64_t* tb = batch->tuple_bits(i);
      if (match_entry[i] == kNoDimRow) {
        bits::AndWith(tb, pass, words);
      } else {
        const uint64_t* match = entry_bits_.data() + match_entry[i] * words_;
        bits::AndWithOr(tb, match, pass, words);
        batch->tuple_dim_rows(i)[position_] = entry_rows_[match_entry[i]];
      }
      if (!bits::Any(tb, words)) batch->kill_tuple(i);
    }
  }
}

}  // namespace sdw::cjoin
