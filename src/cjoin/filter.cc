#include "cjoin/filter.h"

#include "common/breakdown.h"
#include "storage/scan.h"

namespace sdw::cjoin {

Filter::Filter(const storage::Table* dim_table, std::string fact_fk_column,
               std::string dim_pk_column, size_t position, size_t slots)
    : dim_table_(dim_table),
      fact_fk_column_(std::move(fact_fk_column)),
      dim_pk_column_(std::move(dim_pk_column)),
      position_(position),
      words_(bits::WordsFor(slots)),
      pass_mask_(slots),
      dim_pk_col_idx_(dim_table->schema().MustColumnIndex(dim_pk_column_)) {}

void Filter::AdmitQuery(uint32_t slot, const query::Predicate& pred,
                        storage::BufferPool* pool) {
  const storage::Schema& schema = dim_table_->schema();
  const query::Predicate::Bound bound = pred.Bind(schema);

  // Index existing entries by dimension row for fast bit setting.
  // (Entries are keyed by PK; PKs are unique per dimension, so at most one
  // entry per row exists.) The scan+selection work is charged to kScans at
  // page granularity — per-row timers would dominate admission cost.
  storage::TableScanCursor cursor(dim_table_, pool);
  uint64_t row_base = 0;
  while (true) {
    const storage::Page* page;
    {
      ScopedComponentTimer t(Component::kScans);
      page = cursor.Next();
    }
    if (page == nullptr) break;
    ScopedComponentTimer t(Component::kScans);
    const uint32_t n = page->tuple_count();
    for (uint32_t i = 0; i < n; ++i) {
      const std::byte* tuple = page->tuple(i);
      if (!bound.IsTrue() && !bound.Eval(schema, tuple)) continue;
      const uint32_t row = static_cast<uint32_t>(row_base + i);
      const int64_t pk = schema.GetIntAny(tuple, dim_pk_col_idx_);
      auto [it, inserted] = pk_to_entry_.try_emplace(
          pk, static_cast<uint32_t>(entry_rows_.size()));
      if (inserted) {
        entry_rows_.push_back(row);
        entry_bits_.resize(entry_bits_.size() + words_, 0);
        ht_.Insert(qpipe::HashKey(pk), pk, it->second);
      }
      bits::Set(entry_bits_.data() + it->second * words_, slot);
    }
    row_base += n;
  }
  {
    ScopedComponentTimer t(Component::kHashing);
    ht_.Build();
  }
}

void Filter::CleanSlot(uint32_t slot) {
  for (size_t e = 0; e < entry_rows_.size(); ++e) {
    bits::Clear(entry_bits_.data() + e * words_, slot);
  }
}

void Filter::Process(TupleBatch* batch, const storage::Schema& fact_schema,
                     size_t fact_fk_col_idx) const {
  const storage::Page& page = *batch->fact_page;
  const uint32_t n = batch->num_tuples;
  const size_t words = batch->words_per_tuple;
  const uint64_t* pass = pass_mask_.words();

  // Pass 1 (the paper's "Hashing" work): probe the shared hash table for
  // every live tuple, recording the matched entry (or none).
  std::vector<uint32_t> match_entry(n, kNoDimRow);
  {
    ScopedComponentTimer t(Component::kHashing);
    for (uint32_t i = 0; i < n; ++i) {
      if (!bits::Any(batch->tuple_bits(i), words)) continue;  // dead tuple
      const int64_t key = fact_schema.GetIntAny(page.tuple(i), fact_fk_col_idx);
      ht_.ForEachMatch(qpipe::HashKey(key), key, [&](uint64_t entry_idx) {
        match_entry[i] = static_cast<uint32_t>(entry_idx);
      });
    }
  }

  // Pass 2 (the paper's "Joins" work): bitwise AND with match|pass and
  // record the joined dimension row.
  {
    ScopedComponentTimer t(Component::kJoins);
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t* tb = batch->tuple_bits(i);
      if (!bits::Any(tb, words)) continue;
      if (match_entry[i] == kNoDimRow) {
        bits::AndWith(tb, pass, words);
      } else {
        const uint64_t* match = entry_bits_.data() + match_entry[i] * words_;
        bits::AndWithOr(tb, match, pass, words);
        batch->tuple_dim_rows(i)[position_] = entry_rows_[match_entry[i]];
      }
    }
  }
}

}  // namespace sdw::cjoin
