// Shared aggregation for the CJOIN Global Query Plan.
//
// After distribution, aggregation is the last block of per-query work in the
// pipeline: N same-shape queries each rebuild the same group-by table over
// the same joined tuples, differing only in which tuples their predicates
// admit. This stage computes each distinct aggregation SHAPE once and slices
// per query at emit time, so aggregation cost grows with distinct group-by
// shapes, not with concurrent query count (cf. "Real-Time Analytics by
// Coordinating Reuse and Work Sharing" in PAPERS.md).
//
// Mechanism. Queries whose StarQuery::AggSignature() matches — identical
// join structure, group-by keys and aggregate expressions; predicate
// constants free — bind to one Group. For every annotated batch the
// distributor folds each live tuple ONCE per group into a hash table keyed by
//
//     (group-key bytes ++ member-bitmap bytes)
//
// where the member bitmap is the tuple's query bitmap restricted to the
// group's members, with each member's fact-predicate verdict applied. The
// bitmap key partitions every accumulator's contributions exactly by which
// member queries the tuple qualified for, so:
//
//   * slicing member s = summing the entries whose bitmap contains s,
//     grouped by key prefix — precisely the tuples s would have aggregated
//     alone (the bitmap ∧ group invariant the property tests check);
//   * retiring member s = clearing bit s from every entry (re-keying,
//     merging collisions, dropping empty-bitmap entries) — survivors'
//     slices are untouched, which is what makes mid-cycle cancellation and
//     fault retirement side-effect free and slot recycling safe.
//
// Two-phase tables: each distributor part folds into its own partial table
// (no cross-part synchronization on the hot path); partials merge into the
// group's table only at scan-cycle boundaries — the admission pauses where
// the pipeline is drained — right before a slice or retirement needs them.
//
// The pipeline's pause discipline is the synchronization contract: FoldBatch
// runs concurrently from distributor parts (each on its own partial);
// everything else requires the pipeline drained.

#ifndef SDW_CJOIN_SHARED_AGG_H_
#define SDW_CJOIN_SHARED_AGG_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cjoin/tuple_batch.h"
#include "common/bitmap.h"
#include "query/agg_ops.h"
#include "query/plan.h"
#include "query/predicate.h"
#include "storage/schema.h"

namespace sdw::cjoin {

/// Byte move from a fact row or a joined dimension row into a materialized
/// join-output tuple. Shared by the distributor's per-query projection and
/// the shared aggregation stage's row materialization.
struct JoinRowMove {
  bool from_fact;
  size_t filter_pos;  // valid when !from_fact
  size_t src_col;     // source column index (fact moves read PAX minipages)
  uint32_t src_off;   // row-major byte offset of src_col in its schema
  uint32_t dst_off;
  uint32_t len;
};

/// The shared aggregation stage. Owned by the CjoinPipeline; standalone
/// construction (no pipeline) is supported for the differential tests.
class SharedAggregator {
 public:
  /// Resolves a joined dimension row: base pointer of row `row` of the
  /// dimension bound at `filter_pos` (the pipeline wraps its filters; tests
  /// with fact-only shapes pass nullptr).
  using DimRowFn =
      std::function<const std::byte*(size_t filter_pos, uint32_t row)>;

  /// Accumulator table: key -> one accumulator per aggregate. Partial and
  /// merged tables key by (group bytes ++ bitmap bytes); slices key by group
  /// bytes only.
  using AccTable = std::unordered_map<std::string, std::vector<query::AggAcc>>;

  /// One member query of a group.
  struct Member {
    uint32_t slot = 0;
    query::Predicate::Bound fact_pred;  // bound on the fact schema
  };

  /// One aggregation shape and its members' shared state.
  struct Group {
    std::string signature;         // StarQuery::AggSignature()
    storage::Schema join_schema;   // materialized join-output row layout
    uint32_t join_row_size = 0;
    std::vector<JoinRowMove> moves;
    std::vector<size_t> group_cols;       // into join_schema
    std::vector<query::BoundAgg> aggs;    // bound against join_schema
    storage::Schema out_schema;           // group cols, then one col per agg
    size_t key_width = 0;                 // group-key bytes (key prefix)

    Bitset member_mask;            // bound slots
    std::vector<Member> members;

    std::vector<AccTable> partials;  // one per distributor part
    AccTable merged;
  };

  /// Reusable per-thread scratch for FoldBatch.
  struct FoldScratch {
    std::vector<std::byte> row;
    std::vector<uint64_t> mask;
    std::string key;
  };

  /// `num_parts` distributor parts fold concurrently; bitmaps span
  /// `mask_words` 64-bit words (the pipeline's slot-bitmap width).
  SharedAggregator(size_t num_parts, size_t mask_words);

  size_t mask_words() const { return mask_words_; }
  size_t num_groups() const { return groups_.size(); }
  const std::vector<std::unique_ptr<Group>>& groups() const { return groups_; }

  // ------------------------------------------- pause surface (drained only)

  /// The group bound to `signature`, or nullptr.
  Group* FindGroup(const std::string& signature);

  /// Creates an empty group for `signature`; the caller fills the shape
  /// fields (schema, moves, group_cols, aggs, out_schema, key_width) before
  /// the pipeline resumes.
  Group* CreateGroup(std::string signature);

  /// Binds `slot` as a member.
  void AddMember(Group* g, uint32_t slot, query::Predicate::Bound fact_pred);

  /// Merges every part's partial table into the group's merged table
  /// (partials come out empty, capacity retained).
  static void MergePartials(Group* g);

  /// Per-query slice: sums the merged entries whose bitmap contains `slot`
  /// into `out`, keyed by group bytes only — exactly the aggregate the
  /// member would have computed alone. Requires partials merged.
  static void SliceSlot(const Group& g, uint32_t slot, AccTable* out);

  /// Renders a slice into out_schema tuples (appended to `rows`, one string
  /// of out_schema.tuple_size() bytes each). An empty slice of a global
  /// aggregate (no group columns) yields the SQL one-zero-row.
  static void RenderSlice(const Group& g, const AccTable& slice,
                          std::vector<std::string>* rows);

  /// Retires member `slot`: clears its bit from every merged entry
  /// (re-keying, merging collisions, dropping entries whose bitmap went
  /// empty) and unbinds it. Requires partials merged. Returns true when the
  /// group has no members left (the caller destroys it).
  bool RetireSlot(Group* g, uint32_t slot);

  /// Destroys an empty group.
  void DestroyGroup(Group* g);

  // ------------------------------------------------ hot path (part threads)

  /// Folds one annotated batch into the group's part-local partial table:
  /// one accumulator update per distinct (group key, member bitmap) per
  /// tuple, however many member queries the group serves. When
  /// `preds_pre_applied`, the members' fact predicates were already folded
  /// into the bitmaps (the §3.2 preprocessor variant).
  void FoldBatch(Group* g, const TupleBatch& batch,
                 const storage::Schema& fact_schema, const DimRowFn& dim_row,
                 size_t part, bool preds_pre_applied,
                 FoldScratch* scratch) const;

 private:
  const size_t num_parts_;
  const size_t mask_words_;
  std::vector<std::unique_ptr<Group>> groups_;
};

/// Scalar per-query reference: aggregates exactly the batch tuples whose
/// bitmap contains the member's slot (applying its fact predicate unless
/// pre-applied) into `table`, keyed by group bytes only — the retained
/// query-at-a-time aggregation path the differential tests pin the shared
/// path against. Uses the same query/agg_ops.h accumulator ops.
void AggregateScalar(const SharedAggregator::Group& g,
                     const SharedAggregator::Member& mem,
                     const TupleBatch& batch,
                     const storage::Schema& fact_schema,
                     const SharedAggregator::DimRowFn& dim_row,
                     bool preds_pre_applied, SharedAggregator::AccTable* table);

}  // namespace sdw::cjoin

#endif  // SDW_CJOIN_SHARED_AGG_H_
