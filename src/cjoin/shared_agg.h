// Shared aggregation for the CJOIN Global Query Plan.
//
// After distribution, aggregation is the last block of per-query work in the
// pipeline: N same-shape queries each rebuild the same group-by table over
// the same joined tuples, differing only in which tuples their predicates
// admit. This stage computes each distinct aggregation SHAPE once and slices
// per query at emit time, so aggregation cost grows with distinct group-by
// shapes, not with concurrent query count (cf. "Real-Time Analytics by
// Coordinating Reuse and Work Sharing" in PAPERS.md).
//
// Mechanism. Queries whose StarQuery::AggSignature() matches — identical
// join structure, group-by keys and aggregate expressions; predicate
// constants free — bind to one Group. For every annotated batch the
// distributor folds each live tuple ONCE per group into a hash table keyed by
//
//     (group-key bytes ++ member-bitmap bytes)
//
// where the member bitmap is the tuple's query bitmap restricted to the
// group's members, with each member's fact-predicate verdict applied. The
// bitmap key partitions every accumulator's contributions exactly by which
// member queries the tuple qualified for, so:
//
//   * slicing member s = summing the entries whose bitmap contains s,
//     grouped by key prefix — precisely the tuples s would have aggregated
//     alone (the bitmap ∧ group invariant the property tests check);
//   * retiring member s = clearing bit s from every entry (re-keying,
//     merging collisions, dropping empty-bitmap entries) — survivors'
//     slices are untouched, which is what makes mid-cycle cancellation and
//     fault retirement side-effect free and slot recycling safe.
//
// Two-phase tables: each distributor part folds into its own partial table
// (no cross-part synchronization on the hot path); partials merge into the
// group's table only at scan-cycle boundaries — the admission pauses where
// the pipeline is drained — right before a slice or retirement needs them.
//
// The pipeline's pause discipline is the synchronization contract: FoldBatch
// runs concurrently from distributor parts (each on its own partial);
// everything else requires the pipeline drained.

#ifndef SDW_CJOIN_SHARED_AGG_H_
#define SDW_CJOIN_SHARED_AGG_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cjoin/tuple_batch.h"
#include "common/bitmap.h"
#include "query/agg_ops.h"
#include "query/plan.h"
#include "query/predicate.h"
#include "storage/schema.h"

namespace sdw::cjoin {

/// Byte move from a fact row or a joined dimension row into a materialized
/// join-output tuple. Shared by the distributor's per-query projection and
/// the shared aggregation stage's row materialization.
struct JoinRowMove {
  bool from_fact;
  size_t filter_pos;  // valid when !from_fact
  size_t src_col;     // source column index (fact moves read PAX minipages)
  uint32_t src_off;   // row-major byte offset of src_col in its schema
  uint32_t dst_off;
  uint32_t len;
};

/// The shared aggregation stage. Owned by the CjoinPipeline; standalone
/// construction (no pipeline) is supported for the differential tests.
class SharedAggregator {
 public:
  /// Resolves a joined dimension row: base pointer of row `row` of the
  /// dimension bound at `filter_pos` (the pipeline wraps its filters; tests
  /// with fact-only shapes pass nullptr).
  using DimRowFn =
      std::function<const std::byte*(size_t filter_pos, uint32_t row)>;

  /// Accumulator table: key -> one accumulator per aggregate. Partial and
  /// merged tables key by (group bytes ++ bitmap bytes); slices key by group
  /// bytes only.
  using AccTable = std::unordered_map<std::string, std::vector<query::AggAcc>>;

  /// A residual dimension predicate of a folded member: the satellite's own
  /// selection on one dimension, evaluated against the joined dimension row
  /// where it differs from its host's (identical predicates need no
  /// residual — the host's filter verdict is already exact for them).
  struct Residual {
    size_t filter_pos = 0;                 // batch dim_rows column
    const storage::Schema* dim_schema = nullptr;
    query::Predicate::Bound pred;          // bound on *dim_schema
    /// Memoized verdict per dimension-table row (bit r == pred on row r):
    /// dimension tables are immutable, so the pipeline precomputes this once
    /// at fold time and the hot path pays one bit test per tuple instead of
    /// interpreting the predicate. Empty = not memoized (evaluate `pred`).
    std::vector<uint64_t> row_pass;
  };

  /// One member query of a group. Slot members (`folded == false`) own a
  /// pipeline slot: their tuple verdicts are the slot's bitmap bits and
  /// `bit == slot`. Folded members (satellites of dynamic query folding)
  /// ride a host slot's bits instead: `slot` names the HOST slot whose
  /// filter verdict bounds them, and `bit` is a private position in the
  /// widened member bitmap (beyond the pipeline's slot range) where their
  /// refined verdict — host bit ∧ own fact predicate ∧ dim residuals — is
  /// recorded, so slicing and retirement work identically for both kinds.
  struct Member {
    uint32_t bit = 0;
    uint32_t slot = 0;
    bool folded = false;
    query::Predicate::Bound fact_pred;  // bound on the fact schema
    std::vector<Residual> residuals;    // folded members only
  };

  /// One aggregation shape and its members' shared state.
  struct Group {
    std::string signature;         // StarQuery::AggSignature()
    storage::Schema join_schema;   // materialized join-output row layout
    uint32_t join_row_size = 0;
    std::vector<JoinRowMove> moves;
    std::vector<size_t> group_cols;       // into join_schema
    std::vector<query::BoundAgg> aggs;    // bound against join_schema
    storage::Schema out_schema;           // group cols, then one col per agg
    size_t key_width = 0;                 // group-key bytes (key prefix)

    Bitset member_mask;            // bound member bits (slots + fold bits)
    std::vector<Member> members;
    size_t folded_members = 0;     // count of members with folded == true

    // Lazy retirement (see RetireSlot): bits whose members are gone but
    // whose stale copies still sit in merged-entry key tails. Invisible to
    // surviving members' slices — slicing selects by live bits — so the
    // fold-out pass is deferred and batched instead of paid per retirement.
    std::vector<uint64_t> retired_pending;  // member_words words
    size_t retired_count = 0;               // set bits in retired_pending

    // Fold index, rebuilt on every member change (pause surface): which
    // host slots carry satellites, and each host's satellites as a CSR list
    // of `members` indices. FoldBatch walks only the satellites of the
    // host slots a tuple actually matched instead of scanning every member
    // per tuple.
    std::vector<uint64_t> sat_slot_mask;  // mask_words: slots with satellites
    std::vector<uint32_t> sat_begin;      // per slot: offset into sat_idx
    std::vector<uint32_t> sat_idx;        // member indices, grouped by slot

    std::vector<AccTable> partials;  // one per distributor part
    AccTable merged;
  };

  /// Reusable per-thread scratch for FoldBatch.
  struct FoldScratch {
    std::vector<std::byte> row;
    std::vector<uint64_t> mask;
    std::string key;
  };

  /// `num_parts` distributor parts fold concurrently; tuple bitmaps span
  /// `mask_words` 64-bit words (the pipeline's slot-bitmap width). The
  /// MEMBER bitmap — the key tail — spans `member_words` >= mask_words
  /// words: the extra bits are fold-bit positions for folded members, which
  /// have no slot of their own (defaults to the slot width, i.e. no fold
  /// capacity).
  SharedAggregator(size_t num_parts, size_t mask_words,
                   size_t member_words = 0);

  size_t mask_words() const { return mask_words_; }
  size_t member_words() const { return member_words_; }
  size_t num_groups() const { return groups_.size(); }
  const std::vector<std::unique_ptr<Group>>& groups() const { return groups_; }

  // ------------------------------------------- pause surface (drained only)

  /// The group bound to `signature`, or nullptr.
  Group* FindGroup(const std::string& signature);

  /// Creates an empty group for `signature`; the caller fills the shape
  /// fields (schema, moves, group_cols, aggs, out_schema, key_width) before
  /// the pipeline resumes.
  Group* CreateGroup(std::string signature);

  /// Binds `slot` as a member (bit == slot).
  void AddMember(Group* g, uint32_t slot, query::Predicate::Bound fact_pred);

  /// Binds a folded member (dynamic query folding): `bit` is a fold-bit
  /// position in [mask_words*64, member_words*64) and `host_slot` the
  /// in-flight slot whose filter verdict bounds the satellite. Its refined
  /// verdict per tuple is host bit ∧ fact_pred ∧ residuals.
  void AddFoldedMember(Group* g, uint32_t bit, uint32_t host_slot,
                       query::Predicate::Bound fact_pred,
                       std::vector<Residual> residuals);

  /// Merges every part's partial table into the group's merged table
  /// (partials come out empty, capacity retained).
  static void MergePartials(Group* g);

  /// Per-query slice: sums the merged entries whose bitmap contains member
  /// bit `slot` (a slot for slot members, a fold bit for folded ones) into
  /// `out`, keyed by group bytes only — exactly the aggregate the member
  /// would have computed alone. Requires partials merged.
  static void SliceSlot(const Group& g, uint32_t slot, AccTable* out);

  /// Batch slice: cuts many members' slices in ONE merged-table traversal —
  /// `(*slices)[i]` receives member bit `bits[i]`'s aggregate, keyed by
  /// group bytes only, exactly as SliceSlot would produce it. The drain
  /// that ends a scan cycle finishes every rider of a slot at once; slicing
  /// them per rider costs O(riders × entries), this costs O(entries) plus
  /// the irreducible per-hit merges. Requires partials merged.
  void SliceMembers(const Group& g, const std::vector<uint32_t>& bits,
                    std::vector<AccTable>* slices) const;

  /// Renders a slice into out_schema tuples (appended to `rows`, one string
  /// of out_schema.tuple_size() bytes each). An empty slice of a global
  /// aggregate (no group columns) yields the SQL one-zero-row.
  static void RenderSlice(const Group& g, const AccTable& slice,
                          std::vector<std::string>* rows);

  /// Retires the member at bit `slot` (a slot or a fold bit): unbinds the
  /// member and marks the bit for LAZY removal from the merged table. A
  /// stale bit in an entry's key tail cannot leak into any surviving
  /// member's slice (slices select by live bits only), so the fold-out pass
  /// — stripping pending bits, merging key collisions, dropping entries
  /// whose bitmap went empty — is deferred to FlushRetired, which the next
  /// MergePartials (or a re-bind of a pending bit) triggers. A drain that
  /// retires N members thus pays ONE table pass, not N; a group whose last
  /// member retires is destroyed without any pass. Requires partials
  /// merged. Returns true when the group has no members left (the caller
  /// destroys it).
  bool RetireSlot(Group* g, uint32_t slot);

  /// Folds every lazily-retired bit out of the merged table now. No-op when
  /// none are pending; called automatically by MergePartials and by
  /// AddMember/AddFoldedMember when they re-bind a pending bit.
  static void FlushRetired(Group* g);

  /// Destroys an empty group.
  void DestroyGroup(Group* g);

  // ------------------------------------------------ hot path (part threads)

  /// Folds one annotated batch into the group's part-local partial table:
  /// one accumulator update per distinct (group key, member bitmap) per
  /// tuple, however many member queries the group serves. When
  /// `preds_pre_applied`, the slot members' fact predicates were already
  /// folded into the bitmaps (the §3.2 preprocessor variant); folded
  /// members' predicates are ALWAYS evaluated here — the preprocessor knows
  /// nothing about satellites.
  void FoldBatch(Group* g, const TupleBatch& batch,
                 const storage::Schema& fact_schema, const DimRowFn& dim_row,
                 size_t part, bool preds_pre_applied,
                 FoldScratch* scratch) const;

 private:
  /// Rebuilds `g`'s fold index from its current member list.
  void RebuildFoldIndex(Group* g) const;

  const size_t num_parts_;
  const size_t mask_words_;
  const size_t member_words_;
  std::vector<std::unique_ptr<Group>> groups_;
};

/// Scalar per-query reference: aggregates exactly the batch tuples whose
/// bitmap contains the member's slot (applying its fact predicate unless
/// pre-applied) into `table`, keyed by group bytes only — the retained
/// query-at-a-time aggregation path the differential tests pin the shared
/// path against. Uses the same query/agg_ops.h accumulator ops.
void AggregateScalar(const SharedAggregator::Group& g,
                     const SharedAggregator::Member& mem,
                     const TupleBatch& batch,
                     const storage::Schema& fact_schema,
                     const SharedAggregator::DimRowFn& dim_row,
                     bool preds_pre_applied, SharedAggregator::AccTable* table);

}  // namespace sdw::cjoin

#endif  // SDW_CJOIN_SHARED_AGG_H_
