// A CJOIN filter: the fused shared-selection + shared-hash-join for one
// dimension table (paper §2.4-2.5, Figure 3).
//
// The filter's hash table maps dimension primary keys to the union of
// dimension tuples selected by any active query referencing the dimension;
// each entry carries match bits (one per query slot). Queries that do not
// reference the dimension sit in the filter's pass mask. Processing a fact
// tuple computes  bits &= match(entry) | pass_mask  — a hash probe plus one
// bitwise AND — and records the joined dimension row for projection.

#ifndef SDW_CJOIN_FILTER_H_
#define SDW_CJOIN_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cjoin/tuple_batch.h"
#include "common/aligned.h"
#include "common/bitmap.h"
#include "common/stats.h"
#include "qpipe/flat_hash_table.h"
#include "qpipe/hash_table.h"
#include "query/predicate.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace sdw::cjoin {

/// Per-worker reusable scratch for Filter::Process. Each filter-worker
/// thread owns one; the vectors grow to the high-water batch size once and
/// are reused, so steady-state processing performs no heap allocation.
struct FilterScratch {
  std::vector<uint32_t> rows;     // batch tuple index of each live tuple
  std::vector<int64_t> keys;      // gathered FK keys, live tuples compacted
  std::vector<uint64_t> values;   // ProbeBatch output (entry index or miss)
};

/// Shared selection + hash join over one dimension.
class Filter {
 public:
  /// `position` is the filter's index in the pipeline (column of the batch
  /// dim_rows matrix); `slots` the bitmap capacity in query slots.
  Filter(const storage::Table* dim_table, std::string fact_fk_column,
         std::string dim_pk_column, size_t position, size_t slots);

  SDW_DISALLOW_COPY(Filter);

  const storage::Table* dim_table() const { return dim_table_; }
  const std::string& fact_fk_column() const { return fact_fk_column_; }
  const std::string& dim_pk_column() const { return dim_pk_column_; }
  size_t position() const { return position_; }

  /// True when this filter implements the given join triple.
  bool Matches(const storage::Table* dim, const std::string& fk,
               const std::string& pk) const {
    return dim == dim_table_ && fk == fact_fk_column_ && pk == dim_pk_column_;
  }

  /// One pending admission of a batched admission epoch: the query's slot
  /// and its selection on this dimension. The predicate must stay alive for
  /// the duration of the AdmitQueryBatch call.
  struct AdmitRequest {
    uint32_t slot;
    const query::Predicate* pred;
  };

  /// Batched admission: ONE scan of the dimension (through the buffer pool)
  /// serves every pending query in `reqs` — each tuple is evaluated against
  /// all pending predicates and the bits of the matching queries' slots are
  /// set, so an admission pause costs one scan per dimension however many
  /// queries were waiting (SharedDB-style amortization). Called only while
  /// the pipeline is paused. Non-OK when the dimension scan failed: the
  /// filter's internal state stays consistent (sentinel restored, hash table
  /// rebuilt) but the batch's match bits are incomplete — the caller must
  /// fail the batch's queries and recycle their slots (CleanSlot erases the
  /// partial bits on reuse, exactly as for completed queries).
  Status AdmitQueryBatch(const AdmitRequest* reqs, size_t n,
                         storage::BufferPool* pool);

  /// Single-query admission: a batch of one.
  Status AdmitQuery(uint32_t slot, const query::Predicate& pred,
                    storage::BufferPool* pool) {
    const AdmitRequest req{slot, &pred};
    return AdmitQueryBatch(&req, 1, pool);
  }

  /// Dimension scans performed by admissions — one per AdmitQueryBatch call
  /// regardless of how many queries the batch carried. The stress tests
  /// assert one scan per dimension per admission epoch through this counter.
  uint64_t admission_scans() const { return admission_scans_.value(); }

  /// Marks `slot` as not referencing this dimension (pass-through).
  void SetPass(uint32_t slot) { pass_mask_.Set(slot); }

  /// Removes a completed query from the pass mask (match bits are cleansed
  /// lazily by CleanSlot before slot reuse). Pipeline must be paused.
  void RemoveQuery(uint32_t slot) { pass_mask_.Clear(slot); }

  /// Clears `slot`'s bit from every hash-table entry (slot recycling).
  void CleanSlot(uint32_t slot);

  /// Precomputes the fact FK column's byte offset and width so Process can
  /// gather keys with fixed-stride loads instead of per-tuple schema
  /// interpretation. Called once when the filter joins a pipeline.
  void BindFactColumn(const storage::Schema& fact_schema);

  /// Processes one batch in a filter-worker thread: gathers the FK keys of
  /// all live tuples (fixed offset + stride), probes them in one batched
  /// call, ANDs bitmaps, records joined dimension rows, and clears the
  /// batch's live bit for tuples whose bitmap goes empty. Requires
  /// BindFactColumn. `scratch` is the calling worker's reusable scratch.
  ///
  /// Dispatches per page layout: row-major batches run the retained
  /// chained-probe + scalar-bitmap body (the differential oracle behind
  /// EngineOptions::columnar_pages=false); PAX batches run the columnar
  /// kernels — contiguous key reads straight off the FK minipage, the flat
  /// open-addressing probe, and the AVX2 multi-word bitmap pass. Both
  /// produce bit-identical bitmaps / dim_rows / live masks.
  void Process(TupleBatch* batch, FilterScratch* scratch) const;

  /// Retained per-tuple reference implementation (one GetIntAny + one
  /// dependent-load probe per tuple) — the differential-test and benchmark
  /// baseline for Process. Produces bit-identical bitmaps / dim_rows / live
  /// masks.
  void ProcessScalar(TupleBatch* batch, const storage::Schema& fact_schema,
                     size_t fact_fk_col_idx) const;

  /// Number of distinct dimension tuples currently referenced (hash table
  /// size) — the shared-operator bookkeeping the paper discusses.
  size_t num_entries() const { return ht_.size(); }

 private:
  const storage::Table* dim_table_;
  const std::string fact_fk_column_;
  const std::string dim_pk_column_;
  const size_t position_;
  const size_t words_;

  /// Columnar-batch kernels behind Process's per-page dispatch.
  void ProcessColumnar(TupleBatch* batch, FilterScratch* scratch) const;

  // Probe-path table for row-major batches: pk -> entry index. Retained as
  // the oracle probe structure (and for the ForEachMatch scalar reference).
  qpipe::Int64HashTable ht_;
  // Flat open-addressing twin with the same pk -> entry mapping: the
  // admission-path insert-or-find index (no Build step, grows in place at
  // pauses) AND the columnar batches' dense probe stream.
  qpipe::FlatInt64HashTable flat_ht_;
  // Per-entry arrays, always followed by one sentinel entry (zero match
  // bits, kNoDimRow row id) that ProbeBatch misses are redirected to — this
  // keeps the Process hot loop branchless (no data-dependent hit/miss
  // branch; a miss ANDs with 0|pass and re-writes kNoDimRow).
  std::vector<uint32_t> entry_rows_;    // dim row id per entry (+ sentinel)
  // Cache-line aligned: Process indexes entry rows randomly, and a 64-byte
  // base keeps every 32-byte (4-word) row inside a single line.
  CacheAlignedVector<uint64_t> entry_bits_;  // words_ match bits per entry (+")
  Bitset pass_mask_;
  Counter admission_scans_;

  size_t dim_pk_col_idx_;

  // Fact FK gather plan, precomputed by BindFactColumn.
  size_t fk_col_ = 0;
  uint32_t fk_offset_ = 0;
  bool fk_is_int32_ = false;
  bool fk_bound_ = false;
};

}  // namespace sdw::cjoin

#endif  // SDW_CJOIN_FILTER_H_
