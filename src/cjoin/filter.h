// A CJOIN filter: the fused shared-selection + shared-hash-join for one
// dimension table (paper §2.4-2.5, Figure 3).
//
// The filter's hash table maps dimension primary keys to the union of
// dimension tuples selected by any active query referencing the dimension;
// each entry carries match bits (one per query slot). Queries that do not
// reference the dimension sit in the filter's pass mask. Processing a fact
// tuple computes  bits &= match(entry) | pass_mask  — a hash probe plus one
// bitwise AND — and records the joined dimension row for projection.

#ifndef SDW_CJOIN_FILTER_H_
#define SDW_CJOIN_FILTER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cjoin/tuple_batch.h"
#include "common/bitmap.h"
#include "qpipe/hash_table.h"
#include "query/predicate.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace sdw::cjoin {

/// Shared selection + hash join over one dimension.
class Filter {
 public:
  /// `position` is the filter's index in the pipeline (column of the batch
  /// dim_rows matrix); `slots` the bitmap capacity in query slots.
  Filter(const storage::Table* dim_table, std::string fact_fk_column,
         std::string dim_pk_column, size_t position, size_t slots);

  SDW_DISALLOW_COPY(Filter);

  const storage::Table* dim_table() const { return dim_table_; }
  const std::string& fact_fk_column() const { return fact_fk_column_; }
  const std::string& dim_pk_column() const { return dim_pk_column_; }
  size_t position() const { return position_; }

  /// True when this filter implements the given join triple.
  bool Matches(const storage::Table* dim, const std::string& fk,
               const std::string& pk) const {
    return dim == dim_table_ && fk == fact_fk_column_ && pk == dim_pk_column_;
  }

  /// Admission: scans the dimension (through the buffer pool), evaluates the
  /// query's predicate, and sets the query's bit on every selected tuple.
  /// Called only while the pipeline is paused.
  void AdmitQuery(uint32_t slot, const query::Predicate& pred,
                  storage::BufferPool* pool);

  /// Marks `slot` as not referencing this dimension (pass-through).
  void SetPass(uint32_t slot) { pass_mask_.Set(slot); }

  /// Removes a completed query from the pass mask (match bits are cleansed
  /// lazily by CleanSlot before slot reuse). Pipeline must be paused.
  void RemoveQuery(uint32_t slot) { pass_mask_.Clear(slot); }

  /// Clears `slot`'s bit from every hash-table entry (slot recycling).
  void CleanSlot(uint32_t slot);

  /// Processes one batch in a filter-worker thread: probes every live tuple,
  /// ANDs bitmaps, records joined dimension rows. `fact_schema` /
  /// `fact_fk_col_idx` locate the foreign key on the fact tuples.
  void Process(TupleBatch* batch, const storage::Schema& fact_schema,
               size_t fact_fk_col_idx) const;

  /// Number of distinct dimension tuples currently referenced (hash table
  /// size) — the shared-operator bookkeeping the paper discusses.
  size_t num_entries() const { return ht_.size(); }

 private:
  const storage::Table* dim_table_;
  const std::string fact_fk_column_;
  const std::string dim_pk_column_;
  const size_t position_;
  const size_t words_;

  // Probe-path table: pk -> entry index (values are entry indexes).
  qpipe::Int64HashTable ht_;
  // Admission-path index with the same mapping (supports incremental
  // insert-or-find while ht_ is frozen for probing).
  std::unordered_map<int64_t, uint32_t> pk_to_entry_;
  std::vector<uint32_t> entry_rows_;    // dim row id per entry
  std::vector<uint64_t> entry_bits_;    // words_ match bits per entry
  Bitset pass_mask_;

  size_t dim_pk_col_idx_;
};

}  // namespace sdw::cjoin

#endif  // SDW_CJOIN_FILTER_H_
