#include "cjoin/pipeline.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/breakdown.h"
#include "common/timing.h"

namespace sdw::cjoin {

CjoinPipeline::CjoinPipeline(const storage::Catalog* catalog,
                             storage::BufferPool* pool,
                             const storage::Table* fact_table,
                             CjoinOptions options)
    : catalog_(catalog),
      pool_(pool),
      fact_(fact_table),
      options_(options),
      words_(bits::WordsFor(options.max_queries)),
      slots_(options.max_queries),
      active_mask_(options.max_queries),
      to_filters_(options.queue_capacity),
      to_distributor_(options.queue_capacity),
      // Upper bound on batches alive at once: both queues full plus one in
      // the hands of every stage thread. Sizing the pool to that high-water
      // mark makes the steady state allocation-free.
      batch_pool_(2 * to_filters_.capacity() + options.filter_threads +
                  options.distributor_parts + 1),
      cursor_(fact_table, pool) {
  free_slots_.reserve(options_.max_queries);
  for (size_t s = options_.max_queries; s > 0; --s) {
    free_slots_.push_back(static_cast<uint32_t>(s - 1));
  }
  preprocessor_ = std::thread([this] { PreprocessorLoop(); });
  for (size_t i = 0; i < options_.filter_threads; ++i) {
    workers_.emplace_back([this] { FilterWorkerLoop(); });
  }
  for (size_t i = 0; i < options_.distributor_parts; ++i) {
    parts_.emplace_back([this] { DistributorPartLoop(); });
  }
}

CjoinPipeline::~CjoinPipeline() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_.store(true);
    SDW_CHECK_MSG(active_count_ == 0 && pending_.empty(),
                  "CjoinPipeline destroyed with queries in flight");
  }
  work_cv_.notify_all();
  preprocessor_.join();
  to_filters_.Close();
  for (auto& w : workers_) w.join();
  to_distributor_.Close();
  for (auto& p : parts_) p.join();
}

void CjoinPipeline::Submit(const query::StarQuery& q,
                           storage::Schema out_schema,
                           std::shared_ptr<core::PageSink> sink,
                           std::function<void()> on_complete) {
  std::vector<Submission> one;
  one.push_back(
      {q, std::move(out_schema), std::move(sink), std::move(on_complete)});
  SubmitMany(std::move(one));
}

void CjoinPipeline::SubmitMany(std::vector<Submission> submissions) {
  if (submissions.empty()) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto& s : submissions) pending_.push_back(std::move(s));
  }
  work_cv_.notify_all();
}

CjoinStats CjoinPipeline::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  CjoinStats s = stats_;
  s.batch_pool_hits = batch_pool_.hits() - pool_hits_base_;
  s.batch_pool_misses = batch_pool_.misses() - pool_misses_base_;
  return s;
}

void CjoinPipeline::ResetStats() {
  std::unique_lock<std::mutex> lock(mu_);
  stats_ = CjoinStats{};
  pool_hits_base_ = batch_pool_.hits();
  pool_misses_base_ = batch_pool_.misses();
}

size_t CjoinPipeline::num_filters() const {
  std::unique_lock<std::mutex> lock(mu_);
  return filters_.size();
}

size_t CjoinPipeline::num_active_queries() const {
  std::unique_lock<std::mutex> lock(mu_);
  return active_count_;
}

// ------------------------------------------------------------- preprocessor

void CjoinPipeline::PreprocessorLoop() {
  const storage::Schema& fact_schema = fact_->schema();
  (void)fact_schema;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!pending_.empty() || !completions_due_.empty()) {
        // Pause the pipeline: drain in-flight batches, then adapt the GQP.
        lock.unlock();
        DrainPipeline();
        lock.lock();
        DoCompletionsLocked();
        DoAdmissionsLocked();
      }
      if (stop_.load()) return;
      if (active_count_ == 0) {
        work_cv_.wait(lock,
                      [&] { return stop_.load() || !pending_.empty(); });
        continue;
      }
    }

    // Produce one page: the circular scan of the fact table.
    const uint64_t page_index = cursor_.position();
    const storage::Page* raw;
    {
      ScopedComponentTimer t(Component::kScans);
      raw = cursor_.Next();
    }
    if (raw == nullptr) continue;  // empty fact table

    BatchPtr batch = batch_pool_.Acquire();
    batch->fact_page = fact_->SharePage(page_index);
    batch->page_index = page_index;
    {
      // Annotate every tuple with the active-query bitmap (paper: the
      // preprocessor attaches the bitmaps). The batch comes from the
      // recycling pool, so in steady state these resizes stay within the
      // vectors' retained capacity — no allocation.
      ScopedComponentTimer t(Component::kMisc);
      batch->ResetFor(raw->tuple_count(), static_cast<uint32_t>(words_),
                      static_cast<uint32_t>(filters_.size()));
      const uint64_t* mask = active_mask_.words();
      if (words_ == 1) {
        // ≤64-slot fast path: one word per tuple.
        std::fill(batch->bits.begin(), batch->bits.end(), mask[0]);
      } else {
        for (uint32_t i = 0; i < batch->num_tuples; ++i) {
          bits::Copy(batch->tuple_bits(i), mask, words_);
        }
      }
      if (options_.fact_preds_in_preprocessor) {
        // §3.2 variant: the preprocessor evaluates fact predicates per
        // query per tuple — fewer tuples flow, but the single-threaded
        // pipeline head slows down (the paper rejected this trade).
        const storage::Schema& fs = fact_->schema();
        for (size_t s = active_mask_.FindNextSet(0); s < active_mask_.size();
             s = active_mask_.FindNextSet(s + 1)) {
          const ActiveQuery* aq = slots_[s].get();
          if (aq == nullptr || aq->fact_pred.IsTrue()) continue;
          for (uint32_t i = 0; i < batch->num_tuples; ++i) {
            if (!aq->fact_pred.Eval(fs, batch->fact_tuple(i))) {
              bits::Clear(batch->tuple_bits(i), s);
            }
          }
        }
        // Re-derive liveness: tuples failing every query's predicate are
        // dead before they reach the first filter.
        for (uint32_t i = 0; i < batch->num_tuples; ++i) {
          if (!bits::Any(batch->tuple_bits(i), words_)) batch->kill_tuple(i);
        }
      }
    }

    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (!to_filters_.Put(std::move(batch))) {
      // Queue closed mid-shutdown: the batch will never reach the
      // distributor, so rebalance the in-flight count here or DrainPipeline
      // would hang forever waiting on the dropped batch.
      ForgetDroppedBatch();
    }

    {
      std::unique_lock<std::mutex> lock(mu_);
      ++stats_.fact_pages_scanned;
      for (size_t s = active_mask_.FindNextSet(0); s < active_mask_.size();
           s = active_mask_.FindNextSet(s + 1)) {
        ActiveQuery* aq = slots_[s].get();
        if (aq != nullptr && --aq->pages_remaining == 0) {
          completions_due_.push_back(static_cast<uint32_t>(s));
        }
      }
    }
  }
}

void CjoinPipeline::DrainPipeline() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock,
                 [&] { return in_flight_.load(std::memory_order_acquire) == 0; });
}

void CjoinPipeline::ForgetDroppedBatch() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void CjoinPipeline::CompleteQueryLocked(uint32_t slot) {
  ActiveQuery* aq = slots_[slot].get();
  SDW_CHECK(aq != nullptr);
  {
    std::unique_lock<std::mutex> out_lock(aq->out_mu);
    aq->writer->Flush();
    aq->sink->Close();
  }
  if (aq->on_complete) aq->on_complete();
  active_mask_.Clear(slot);
  --active_count_;
  ++stats_.queries_completed;
  for (auto& f : filters_) f->RemoveQuery(slot);
  dirty_slots_.push_back(slot);
  slots_[slot].reset();
}

void CjoinPipeline::DoCompletionsLocked() {
  for (uint32_t slot : completions_due_) CompleteQueryLocked(slot);
  completions_due_.clear();
}

uint32_t CjoinPipeline::AllocSlotLocked() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  SDW_CHECK_MSG(!dirty_slots_.empty(),
                "CJOIN query-slot capacity (%zu) exhausted",
                options_.max_queries);
  const uint32_t slot = dirty_slots_.back();
  dirty_slots_.pop_back();
  // Cleanse stale match bits left by the slot's previous occupant.
  for (auto& f : filters_) f->CleanSlot(slot);
  return slot;
}

Filter* CjoinPipeline::GetOrCreateFilterLocked(const query::DimJoin& dim) {
  const storage::Table* dim_table = catalog_->MustGetTable(dim.dim_table);
  for (auto& f : filters_) {
    if (f->Matches(dim_table, dim.fact_fk_column, dim.dim_pk_column)) {
      return f.get();
    }
  }
  // New dimension: extend the GQP with a new filter. Queries already active
  // do not reference it, so they pass through.
  auto filter = std::make_unique<Filter>(dim_table, dim.fact_fk_column,
                                         dim.dim_pk_column, filters_.size(),
                                         options_.max_queries);
  for (size_t s = active_mask_.FindNextSet(0); s < active_mask_.size();
       s = active_mask_.FindNextSet(s + 1)) {
    filter->SetPass(static_cast<uint32_t>(s));
  }
  filter->BindFactColumn(fact_->schema());
  filters_.push_back(std::move(filter));
  return filters_.back().get();
}

void CjoinPipeline::BuildProjection(const query::StarQuery& q,
                                    const storage::Schema& out_schema,
                                    ActiveQuery* aq) {
  const query::Planner planner(catalog_);
  const storage::Schema& fact_schema = fact_->schema();
  size_t dst = 0;
  for (size_t col : planner.FactProjection(q)) {
    aq->moves.push_back({true, 0, fact_schema.offset(col),
                         out_schema.offset(dst),
                         fact_schema.column(col).width()});
    ++dst;
  }
  for (const auto& dim : q.dims) {
    const storage::Table* dim_table = catalog_->MustGetTable(dim.dim_table);
    size_t filter_pos = 0;
    for (const auto& f : filters_) {
      if (f->Matches(dim_table, dim.fact_fk_column, dim.dim_pk_column)) {
        filter_pos = f->position();
        break;
      }
    }
    const storage::Schema& ds = dim_table->schema();
    for (const auto& payload : dim.payload_columns) {
      const size_t col = ds.MustColumnIndex(payload);
      aq->moves.push_back({false, filter_pos, ds.offset(col),
                           out_schema.offset(dst), ds.column(col).width()});
      ++dst;
    }
  }
  SDW_CHECK_MSG(dst == out_schema.num_columns(),
                "CJOIN projection does not cover the output schema");
}

void CjoinPipeline::DoAdmissionsLocked() {
  if (pending_.empty()) return;
  WallTimer timer;
  for (auto& p : pending_) {
    const uint32_t slot = AllocSlotLocked();
    auto aq = std::make_unique<ActiveQuery>();
    aq->slot = slot;
    aq->q = p.q;
    aq->out_schema = std::move(p.out_schema);
    aq->sink = std::move(p.sink);
    aq->on_complete = std::move(p.on_complete);
    aq->fact_pred = p.q.fact_pred.Bind(fact_->schema());
    aq->writer = std::make_unique<qpipe::PageWriter>(
        aq->sink.get(), aq->out_schema.tuple_size());

    // Update / extend filters: scan the dimensions, set this query's bits.
    for (const auto& dim : p.q.dims) {
      GetOrCreateFilterLocked(dim)->AdmitQuery(slot, dim.pred, pool_);
    }
    // Mark pass-through on every filter the query does not reference.
    for (auto& f : filters_) {
      bool referenced = false;
      for (const auto& dim : p.q.dims) {
        if (f->Matches(catalog_->MustGetTable(dim.dim_table),
                       dim.fact_fk_column, dim.dim_pk_column)) {
          referenced = true;
          break;
        }
      }
      if (!referenced) f->SetPass(slot);
    }

    BuildProjection(p.q, aq->out_schema, aq.get());

    // Point of entry: the circular scan's current position; the query
    // completes after one full cycle.
    aq->pages_remaining = fact_->num_pages();
    slots_[slot] = std::move(aq);
    active_mask_.Set(slot);
    ++active_count_;
    ++stats_.queries_admitted;
    if (slots_[slot]->pages_remaining == 0) {
      CompleteQueryLocked(slot);  // empty fact table: nothing to join
    }
  }
  pending_.clear();
  ++stats_.admission_batches;
  stats_.admission_seconds += timer.ElapsedSeconds();
}

// ------------------------------------------------------------ filter workers

void CjoinPipeline::FilterWorkerLoop() {
  // Per-worker scratch: grows to the high-water batch size once, then all
  // Process calls run allocation-free.
  FilterScratch scratch;
  while (BatchPtr batch = to_filters_.Take()) {
    for (uint32_t f = 0; f < batch->num_filters; ++f) {
      filters_[f]->Process(batch.get(), &scratch);
    }
    if (!to_distributor_.Put(std::move(batch))) ForgetDroppedBatch();
  }
}

// --------------------------------------------------------- distributor parts

void CjoinPipeline::DistributorPartLoop() {
  const storage::Schema& fact_schema = fact_->schema();
  // Per-part scratch: slot -> matching tuple indexes in the current batch.
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_slot;

  while (BatchPtr batch = to_distributor_.Take()) {
    {
      ScopedComponentTimer t(Component::kMisc);
      by_slot.clear();
      const size_t words = batch->words_per_tuple;
      // Walk only the live tuples (the filters cleared the live bit of any
      // tuple whose bitmap went empty), so fully-filtered tuples cost one
      // skipped mask bit here instead of `words` loads each.
      const uint64_t* live = batch->live_words();
      const size_t live_words = bits::WordsFor(batch->num_tuples);
      for (size_t lw = 0; lw < live_words; ++lw) {
        uint64_t lword = live[lw];
        while (lword != 0) {
          const uint32_t i = static_cast<uint32_t>(
              lw * 64 + static_cast<size_t>(std::countr_zero(lword)));
          lword &= lword - 1;
          const uint64_t* tb = batch->tuple_bits(i);
          if (words == 1) {
            // ≤64-slot fast path: single-word slot extraction.
            uint64_t word = tb[0];
            while (word != 0) {
              const uint32_t slot =
                  static_cast<uint32_t>(std::countr_zero(word));
              word &= word - 1;
              by_slot[slot].push_back(i);
            }
            continue;
          }
          for (size_t w = 0; w < words; ++w) {
            uint64_t word = tb[w];
            while (word != 0) {
              const uint32_t slot = static_cast<uint32_t>(
                  w * 64 + static_cast<size_t>(std::countr_zero(word)));
              word &= word - 1;
              by_slot[slot].push_back(i);
            }
          }
        }
      }

      for (auto& [slot, idxs] : by_slot) {
        ActiveQuery* aq = slots_[slot].get();
        SDW_DCHECK(aq != nullptr);
        std::unique_lock<std::mutex> out_lock(aq->out_mu);
        for (uint32_t i : idxs) {
          const std::byte* fact_row = batch->fact_tuple(i);
          // Fact predicates are evaluated on CJOIN's output tuples unless
          // the preprocessor already applied them (§3.2).
          if (!options_.fact_preds_in_preprocessor &&
              !aq->fact_pred.IsTrue() &&
              !aq->fact_pred.Eval(fact_schema, fact_row)) {
            continue;
          }
          std::byte* dst = aq->writer->AppendTuple();
          if (dst == nullptr) break;  // consumers gone
          const uint32_t* dim_rows = batch->tuple_dim_rows(i);
          for (const auto& m : aq->moves) {
            const std::byte* src;
            if (m.from_fact) {
              src = fact_row + m.src_off;
            } else {
              const uint32_t row = dim_rows[m.filter_pos];
              SDW_DCHECK(row != kNoDimRow);
              src = filters_[m.filter_pos]->dim_table()->row(row) + m.src_off;
            }
            std::memcpy(dst + m.dst_off, src, m.len);
          }
        }
      }
    }

    // Retire the batch into the recycling pool before releasing the drain:
    // its vectors keep their capacity for the preprocessor's next page.
    batch_pool_.Release(std::move(batch));
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::unique_lock<std::mutex> lock(drain_mu_);
      drain_cv_.notify_all();
    }
  }
}

}  // namespace sdw::cjoin
