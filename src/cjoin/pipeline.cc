#include "cjoin/pipeline.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/breakdown.h"
#include "common/simd.h"
#include "common/timing.h"

namespace sdw::cjoin {

CjoinPipeline::CjoinPipeline(const storage::Catalog* catalog,
                             storage::BufferPool* pool,
                             const storage::Table* fact_table,
                             CjoinOptions options)
    : catalog_(catalog),
      pool_(pool),
      fact_(fact_table),
      options_(options),
      words_(bits::WordsFor(options.max_queries)),
      member_words_(
          bits::WordsFor(options.max_queries) +
          (options.query_folding
               ? bits::WordsFor(options.fold_bits != 0 ? options.fold_bits
                                                       : 3 * options.max_queries)
               : 0)),
      slots_(options.max_queries),
      active_mask_(options.max_queries),
      shared_agg_(options.distributor_parts, bits::WordsFor(options.max_queries),
                  member_words_),
      to_filters_(options.queue_capacity),
      to_distributor_(options.queue_capacity),
      // Upper bound on batches alive at once: both queues full plus one in
      // the hands of every stage thread. Sizing the pool to that high-water
      // mark makes the steady state allocation-free.
      batch_pool_(2 * to_filters_.capacity() + options.filter_threads +
                  options.distributor_parts + 1),
      cursor_(fact_table, pool) {
  free_slots_.reserve(options_.max_queries);
  for (size_t s = options_.max_queries; s > 0; --s) {
    free_slots_.push_back(static_cast<uint32_t>(s - 1));
  }
  // Fold-bit pool for folded aggregate members, descending so the lowest
  // bit is claimed first (fold bits live beyond the slot range).
  free_fold_bits_.reserve((member_words_ - words_) * 64);
  for (size_t b = member_words_ * 64; b > words_ * 64; --b) {
    free_fold_bits_.push_back(static_cast<uint32_t>(b - 1));
  }
  // Joined-dimension row resolution for aggregation-group row
  // materialization. filters_ only grows at admission pauses, so reading it
  // from a part thread holding a batch is safe (same contract as EmitGroup).
  dim_row_fn_ = [this](size_t filter_pos, uint32_t row) {
    return filters_[filter_pos]->dim_table()->row(row);
  };
  preprocessor_ = std::thread([this] { PreprocessorLoop(); });
  for (size_t i = 0; i < options_.filter_threads; ++i) {
    workers_.emplace_back([this] { FilterWorkerLoop(); });
  }
  for (size_t i = 0; i < options_.distributor_parts; ++i) {
    parts_.emplace_back([this, i] { DistributorPartLoop(i); });
  }
}

CjoinPipeline::~CjoinPipeline() {
  {
    MutexLock lock(mu_);
    stop_.store(true);
    SDW_CHECK_MSG(active_count_ == 0 && pending_.empty(),
                  "CjoinPipeline destroyed with queries in flight");
  }
  work_cv_.NotifyAll();
  preprocessor_.join();
  to_filters_.Close();
  for (auto& w : workers_) w.join();
  to_distributor_.Close();
  for (auto& p : parts_) p.join();
}

void CjoinPipeline::Submit(const query::StarQuery& q,
                           storage::Schema out_schema,
                           std::shared_ptr<core::PageSink> sink,
                           std::function<void(const Status&)> on_complete) {
  Submission one;
  one.q = q;
  one.out_schema = std::move(out_schema);
  one.sink = std::move(sink);
  one.on_complete = std::move(on_complete);
  std::vector<Submission> subs;
  subs.push_back(std::move(one));
  SubmitMany(std::move(subs));
}

void CjoinPipeline::SubmitMany(std::vector<Submission> submissions) {
  if (submissions.empty()) return;
  {
    MutexLock lock(mu_);
    for (auto& s : submissions) {
      if (s.priority == 0 && s.life != nullptr) {
        s.priority = s.life->options().priority;
      }
      pending_.push_back(std::move(s));
    }
  }
  work_cv_.NotifyAll();
}

CjoinStats CjoinPipeline::stats() const {
  MutexLock lock(mu_);
  CjoinStats s = stats_;
  s.batch_pool_hits = batch_pool_.hits() - pool_hits_base_;
  s.batch_pool_misses = batch_pool_.misses() - pool_misses_base_;
  s.distributor_scratch_reuses =
      dist_scratch_reuses_.value() - dist_reuses_base_;
  s.distributor_scratch_grows = dist_scratch_grows_.value() - dist_grows_base_;
  s.agg_batches_folded = agg_batches_folded_.value() - agg_folds_base_;
  uint64_t scans = 0;
  for (const auto& f : filters_) scans += f->admission_scans();
  s.admission_dim_scans = scans - admission_scans_base_;
  const RetryStats& rs = cursor_.retry_stats();
  s.scan_read_retries =
      rs.retries.load(std::memory_order_relaxed) - retry_retries_base_;
  s.scan_retry_giveups =
      rs.giveups.load(std::memory_order_relaxed) - retry_giveups_base_;
  s.scan_backoff_nanos =
      rs.backoff_nanos.load(std::memory_order_relaxed) - retry_backoff_base_;
  return s;
}

void CjoinPipeline::ResetStats() {
  MutexLock lock(mu_);
  stats_ = CjoinStats{};
  pool_hits_base_ = batch_pool_.hits();
  pool_misses_base_ = batch_pool_.misses();
  dist_reuses_base_ = dist_scratch_reuses_.value();
  dist_grows_base_ = dist_scratch_grows_.value();
  agg_folds_base_ = agg_batches_folded_.value();
  admission_scans_base_ = 0;
  for (const auto& f : filters_) admission_scans_base_ += f->admission_scans();
  const RetryStats& rs = cursor_.retry_stats();
  retry_retries_base_ = rs.retries.load(std::memory_order_relaxed);
  retry_giveups_base_ = rs.giveups.load(std::memory_order_relaxed);
  retry_backoff_base_ = rs.backoff_nanos.load(std::memory_order_relaxed);
}

size_t CjoinPipeline::num_filters() const {
  MutexLock lock(mu_);
  return filters_.size();
}

size_t CjoinPipeline::num_active_queries() const {
  MutexLock lock(mu_);
  return active_count_;
}

void CjoinPipeline::WaitIdle() {
  MutexLock lock(mu_);
  while (!(active_count_ == 0 && pending_.empty())) idle_cv_.Wait(mu_);
}

bool CjoinPipeline::busy() const {
  MutexLock lock(mu_);
  return active_count_ > 0 || !pending_.empty();
}

void CjoinPipeline::CancelActiveQueries(const Status& why) {
  // Snapshot the lifecycles under mu_, cancel outside it: RequestCancel
  // fires client callbacks that must not run under the pipeline lock.
  std::vector<std::shared_ptr<core::QueryLifecycle>> lives;
  {
    MutexLock lock(mu_);
    for (size_t s = active_mask_.FindNextSet(0); s < active_mask_.size();
         s = active_mask_.FindNextSet(s + 1)) {
      ActiveQuery* aq = slots_[s].get();
      if (aq == nullptr) continue;
      if (aq->life != nullptr) lives.push_back(aq->life);
      for (const auto& sat : aq->satellites) {
        if (sat->life != nullptr) lives.push_back(sat->life);
      }
    }
    for (const auto& p : pending_) {
      if (p.life != nullptr) lives.push_back(p.life);
    }
  }
  for (const auto& life : lives) life->RequestCancel(why);
}

// ------------------------------------------------------------- preprocessor

void CjoinPipeline::PreprocessorLoop() {
  const storage::Schema& fact_schema = fact_->schema();
  (void)fact_schema;
  while (true) {
    {
      MutexLock lock(mu_);
      if (!pending_.empty() || !completions_due_.empty()) {
        // Pause the pipeline: drain in-flight batches, then adapt the GQP.
        lock.Unlock();
        DrainPipeline();
        lock.Lock();
        DoCompletionsLocked();
        DoAdmissionsLocked();
        if (active_count_ == 0 && pending_.empty()) idle_cv_.NotifyAll();
      }
      if (stop_.load()) return;
      if (active_count_ == 0) {
        while (!stop_.load() && pending_.empty()) work_cv_.Wait(mu_);
        continue;
      }
    }

    // Produce one page: the circular scan of the fact table. Transient read
    // errors retry inside the cursor; an error surfacing here is terminal
    // for this page — the cursor has already advanced past it, so the scan
    // skips the poisoned page and keeps serving (fault isolation: only the
    // queries attached right now are failed, by HandleScanFault).
    const uint64_t page_index = cursor_.position();
    const Result<const storage::Page*> fetched = [&] {
      ScopedComponentTimer t(Component::kScans);
      return cursor_.Next();
    }();
    if (!fetched.ok()) {
      HandleScanFault(page_index, fetched.status());
      continue;
    }
    const storage::Page* raw = fetched.value();
    if (raw == nullptr) continue;  // empty fact table

    BatchPtr batch = batch_pool_.Acquire();
    batch->fact_page = fact_->SharePage(page_index);
    batch->page_index = page_index;
    {
      // Annotate every tuple with the active-query bitmap (paper: the
      // preprocessor attaches the bitmaps). The batch comes from the
      // recycling pool, so in steady state these resizes stay within the
      // vectors' retained capacity — no allocation.
      ScopedComponentTimer t(Component::kMisc);
      batch->ResetFor(raw->tuple_count(), static_cast<uint32_t>(words_),
                      static_cast<uint32_t>(filters_.size()));
      const uint64_t* mask = active_mask_.words();
      if (words_ == 1) {
        // ≤64-slot fast path: one word per tuple.
        std::fill(batch->bits.begin(), batch->bits.end(), mask[0]);
      } else {
        for (uint32_t i = 0; i < batch->num_tuples; ++i) {
          bits::Copy(batch->tuple_bits(i), mask, words_);
        }
      }
      if (options_.fact_preds_in_preprocessor) {
        // §3.2 variant: the preprocessor evaluates fact predicates per
        // query per tuple — fewer tuples flow, but the single-threaded
        // pipeline head slows down (the paper rejected this trade).
        const storage::Schema& fs = fact_->schema();
        for (size_t s = active_mask_.FindNextSet(0); s < active_mask_.size();
             s = active_mask_.FindNextSet(s + 1)) {
          const ActiveQuery* aq = slots_[s].get();
          if (aq == nullptr || aq->fact_pred.IsTrue()) continue;
          for (uint32_t i = 0; i < batch->num_tuples; ++i) {
            if (!aq->fact_pred.EvalAt(fs, *batch->fact_page, i)) {
              bits::Clear(batch->tuple_bits(i), s);
            }
          }
        }
        // Re-derive liveness: tuples failing every query's predicate are
        // dead before they reach the first filter.
        for (uint32_t i = 0; i < batch->num_tuples; ++i) {
          if (!bits::Any(batch->tuple_bits(i), words_)) batch->kill_tuple(i);
        }
      }
    }

    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (!to_filters_.Put(std::move(batch))) {
      // Queue closed mid-shutdown: the batch will never reach the
      // distributor, so rebalance the in-flight count here or DrainPipeline
      // would hang forever waiting on the dropped batch.
      ForgetDroppedBatch();
    }

    progress_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(mu_);
      ++stats_.fact_pages_scanned;
      for (size_t s = active_mask_.FindNextSet(0); s < active_mask_.size();
           s = active_mask_.FindNextSet(s + 1)) {
        ActiveQuery* aq = slots_[s].get();
        if (aq == nullptr || aq->completion_queued) continue;
        // Cycle complete, or the query's consumers detached (cancel,
        // deadline, row-limit truncation): either way the slot retires at
        // the next pause instead of scanning on. Group (SP) signals are
        // re-evaluated every K pages only — the cached atomic answers in
        // between, keeping the registry lock off the per-page path. Folded
        // satellites keep their own page counts and detach signals: any due
        // rider queues the slot once; CompleteQueryLocked sorts out which
        // riders actually finish.
        bool due = false;
        if (!aq->client_done &&
            (--aq->pages_remaining == 0 ||
             aq->DetachedThrottled(options_.detach_check_interval_pages))) {
          due = true;
        }
        for (auto& sat : aq->satellites) {
          if (--sat->pages_remaining == 0 ||
              sat->DetachedThrottled(options_.detach_check_interval_pages)) {
            due = true;
          }
        }
        if (due) {
          aq->completion_queued = true;
          completions_due_.push_back(static_cast<uint32_t>(s));
        }
      }
    }
  }
}

void CjoinPipeline::HandleScanFault(uint64_t page_index, const Status& why) {
  // Taxonomy mapping (common/status.h): a permanent page fault is data loss
  // for the queries attached to this scan epoch; anything else that escaped
  // the cursor's transient retries surfaces as kUnavailable (retryable by
  // resubmission — the page range may come back).
  const StatusCode code = why.code() == StatusCode::kDataLoss
                              ? StatusCode::kDataLoss
                              : StatusCode::kUnavailable;
  const Status fault(code, "CJOIN scan: fact page " +
                               std::to_string(page_index) + " of '" +
                               fact_->name() + "' unreadable: " +
                               why.message());
  progress_.fetch_add(1, std::memory_order_relaxed);  // the page was skipped
  MutexLock lock(mu_);
  ++stats_.scan_read_errors;
  for (size_t s = active_mask_.FindNextSet(0); s < active_mask_.size();
       s = active_mask_.FindNextSet(s + 1)) {
    ActiveQuery* aq = slots_[s].get();
    if (aq == nullptr) continue;
    // Fail every rider attached at this epoch — the slot's own query and
    // its folded satellites: their result streams already miss the page's
    // tuples. The fault status wins over the cancel status in
    // CompleteQueryLocked; the cached detach bit stops the distributor from
    // emitting more of their output meanwhile. Riders that already finished
    // their cycle (pages_remaining == 0), already faulted, or already
    // detached are past this epoch's page and keep their own status.
    bool any_marked = false;
    auto mark = [&](ActiveQuery* r) {
      if (!r->fault_status.ok() || r->pages_remaining == 0 ||
          r->detached_cache.load(std::memory_order_relaxed)) {
        return;
      }
      r->fault_status = fault;
      r->detached_cache.store(true, std::memory_order_relaxed);
      any_marked = true;
    };
    if (!aq->client_done) mark(aq);
    for (auto& sat : aq->satellites) mark(sat.get());
    if (any_marked && !aq->completion_queued) {
      aq->completion_queued = true;
      completions_due_.push_back(static_cast<uint32_t>(s));
    }
  }
}

void CjoinPipeline::DrainPipeline() {
  MutexLock lock(drain_mu_);
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    drain_cv_.Wait(drain_mu_);
  }
}

void CjoinPipeline::ForgetDroppedBatch() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(drain_mu_);
    drain_cv_.NotifyAll();
  }
}

void CjoinPipeline::CompleteQueryLocked(uint32_t slot) {
  ActiveQuery* aq = slots_[slot].get();
  SDW_CHECK(aq != nullptr);
  aq->completion_queued = false;
  // Which riders of this slot are actually done? A rider is due when a
  // storage fault terminated it, its scan cycle completed, or its consumers
  // detached (the preprocessor queued the slot because at least one rider
  // hit one of these; the others keep scanning).
  auto rider_due = [](const ActiveQuery* r) {
    return !r->fault_status.ok() || r->pages_remaining == 0 ||
           r->detached_cache.load(std::memory_order_relaxed);
  };
  const bool host_due = !aq->client_done && rider_due(aq);
  bool merge_needed =
      host_due && aq->aggregate && aq->agg_group != nullptr;
  for (const auto& sat : aq->satellites) {
    if (sat->aggregate && sat->agg_group != nullptr && rider_due(sat.get())) {
      merge_needed = true;
    }
  }
  SharedAggregator::Group* g =
      aq->agg_group != nullptr ? aq->agg_group : nullptr;
  for (const auto& sat : aq->satellites) {
    if (g == nullptr && sat->agg_group != nullptr) g = sat->agg_group;
  }
  if (merge_needed) {
    // Partials hold every fold since the last pause-side merge; both the
    // result slices and the survivor-safe retirements below read the merged
    // table. All of this slot's aggregate riders share ONE group (folding
    // requires AggSignature equality), so one merge serves them all. The
    // pipeline is drained here, so no part is folding — the merge is
    // single-threaded on the preprocessor, and its cost is the pause-time
    // tax agg_merge_nanos makes visible (the future radix-merge baseline).
    SDW_CHECK(g != nullptr);
    WallTimer merge_timer;
    SharedAggregator::MergePartials(g);
    stats_.agg_merge_nanos +=
        static_cast<int64_t>(merge_timer.ElapsedSeconds() * 1e9);
    ++stats_.agg_merges;
  }
  // Batch slice: every due rider about to emit shares this slot's one
  // group, so cut all their slices in a single merged-table pass instead
  // of one traversal per rider — the drain that ends a scan cycle finishes
  // every rider of the slot at once. The predicate mirrors
  // FinishRiderLocked's emit path: faulted or detached-early riders fail
  // without results and need no slice.
  std::vector<uint32_t> slice_bits;
  std::vector<ActiveQuery*> slice_riders;
  if (options_.shared_aggregation) {
    auto emits_slice = [&](ActiveQuery* r) {
      return rider_due(r) && r->aggregate && r->agg_group != nullptr &&
             r->fault_status.ok() && r->pages_remaining == 0;
    };
    for (const auto& sat : aq->satellites) {
      if (emits_slice(sat.get())) {
        slice_bits.push_back(sat->agg_bit);
        slice_riders.push_back(sat.get());
      }
    }
    if (host_due && emits_slice(aq)) {
      slice_bits.push_back(aq->agg_bit);
      slice_riders.push_back(aq);
    }
  }
  std::vector<SharedAggregator::AccTable> slices;
  if (!slice_bits.empty()) shared_agg_.SliceMembers(*g, slice_bits, &slices);
  auto slice_for = [&](ActiveQuery* r) -> SharedAggregator::AccTable* {
    for (size_t i = 0; i < slice_riders.size(); ++i) {
      if (slice_riders[i] == r) return &slices[i];
    }
    return nullptr;
  };
  // Finish due satellites first (their slices must be cut before the host's
  // retirement could destroy an emptied group), then the host's own client.
  for (auto it = aq->satellites.begin(); it != aq->satellites.end();) {
    if (rider_due(it->get())) {
      FinishRiderLocked(it->get(), slice_for(it->get()));
      it = aq->satellites.erase(it);
    } else {
      ++it;
    }
  }
  if (host_due) {
    FinishRiderLocked(aq, slice_for(aq));
    aq->client_done = true;
  }
  if (!aq->client_done || !aq->satellites.empty()) {
    // The slot survives this pause: riders remain. A host whose own client
    // just finished promotes the slot to its surviving satellites — they
    // keep riding its filter verdicts until their own cycles complete.
    if (host_due && !aq->satellites.empty()) ++stats_.fold_promotions;
    return;
  }
  active_mask_.Clear(slot);
  --active_count_;
  for (auto& f : filters_) f->RemoveQuery(slot);
  dirty_slots_.push_back(slot);
  slots_[slot].reset();
}

void CjoinPipeline::FinishRiderLocked(ActiveQuery* r,
                                      SharedAggregator::AccTable* slice) {
  const bool faulted = !r->fault_status.ok();
  const bool early = faulted || r->pages_remaining > 0;
  Status final_status = Status::Ok();
  if (early) {
    // Early retire: a storage fault terminated the rider's scan epoch, or
    // its consumers detached (cancel/deadline/truncation). Either way drop
    // buffered output and fail through the shared finish-before-close
    // sequence. The pipeline is drained at every retire point, so no
    // EmitGroup/EmitRows races the sink here.
    if (faulted) {
      final_status = r->fault_status;
    } else {
      final_status = r->life != nullptr ? r->life->cancel_status()
                                        : Status::Cancelled("query detached");
    }
    FailQuery(r->life, r->on_complete, r->sink.get(), final_status);
  } else if (r->aggregate) {
    EmitAggResultLocked(r, slice);
    if (r->on_complete) r->on_complete(final_status);
  } else {
    {
      MutexLock out_lock(r->out_mu);
      r->out_buf.DrainInto(r->sink.get());
      r->sink->Close();
    }
    if (r->on_complete) r->on_complete(final_status);
  }
  if (r->aggregate && r->agg_group != nullptr) {
    // Unbind from the aggregation group. Under sharing the rider's member
    // bit (its slot, or its fold bit) folds out of every table entry —
    // survivors' slices are untouched, and the recycled bit re-enters any
    // group clean. A private scalar group dies with its only member (its
    // keys carry no bitmap to fold).
    if (!options_.shared_aggregation ||
        shared_agg_.RetireSlot(r->agg_group, r->agg_bit)) {
      shared_agg_.DestroyGroup(r->agg_group);
    }
    r->agg_group = nullptr;
  }
  if (r->folded && r->aggregate) {
    // The fold bit was claimed at fold time, whether or not the group
    // binding happened (an admission fault can fail the satellite first).
    free_fold_bits_.push_back(r->agg_bit);
  }
  if (faulted) {
    ++stats_.queries_failed;
  } else if (early) {
    ++stats_.queries_cancelled;
  } else {
    ++stats_.queries_completed;
  }
  if (options_.memory_budget != nullptr) {
    options_.memory_budget->Release(kAdmissionCostBytes);
  }
}

void CjoinPipeline::DoCompletionsLocked() {
  for (uint32_t slot : completions_due_) CompleteQueryLocked(slot);
  completions_due_.clear();
}

uint32_t CjoinPipeline::TryAllocSlotLocked() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if (dirty_slots_.empty()) return kNoSlot;  // capacity exhausted
  const uint32_t slot = dirty_slots_.back();
  dirty_slots_.pop_back();
  ++stats_.slot_recycles;
  // Cleanse stale match bits left by the slot's previous occupant.
  for (auto& f : filters_) f->CleanSlot(slot);
  return slot;
}

void CjoinPipeline::FailQuery(
    const std::shared_ptr<core::QueryLifecycle>& life,
    const std::function<void(const Status&)>& on_complete,
    core::PageSink* sink, const Status& why) {
  // Order is load-bearing: lifecycles (the owner's, and under SP every
  // consumer's via on_complete) must complete with the error BEFORE the
  // sink closes — closing wakes client drains on a truncated stream, and
  // their Finish(Ok) must lose the first-wins race against this error.
  if (life != nullptr) life->Finish(why);
  if (on_complete) on_complete(why);
  if (sink != nullptr) sink->Close();
}

void CjoinPipeline::RejectPendingLocked(PendingQuery* p, const Status& why) {
  FailQuery(p->life, p->on_complete, p->sink.get(), why);
}

Filter* CjoinPipeline::GetOrCreateFilterLocked(const query::DimJoin& dim) {
  const storage::Table* dim_table = catalog_->MustGetTable(dim.dim_table);
  for (auto& f : filters_) {
    if (f->Matches(dim_table, dim.fact_fk_column, dim.dim_pk_column)) {
      return f.get();
    }
  }
  // New dimension: extend the GQP with a new filter. Queries already active
  // do not reference it, so they pass through.
  auto filter = std::make_unique<Filter>(dim_table, dim.fact_fk_column,
                                         dim.dim_pk_column, filters_.size(),
                                         options_.max_queries);
  for (size_t s = active_mask_.FindNextSet(0); s < active_mask_.size();
       s = active_mask_.FindNextSet(s + 1)) {
    filter->SetPass(static_cast<uint32_t>(s));
  }
  filter->BindFactColumn(fact_->schema());
  filters_.push_back(std::move(filter));
  return filters_.back().get();
}

std::vector<JoinRowMove> CjoinPipeline::BuildJoinMoves(
    const query::StarQuery& q, const storage::Schema& out_schema) {
  const query::Planner planner(catalog_);
  const storage::Schema& fact_schema = fact_->schema();
  std::vector<JoinRowMove> moves;
  size_t dst = 0;
  for (size_t col : planner.FactProjection(q)) {
    moves.push_back({true, 0, col, fact_schema.offset(col),
                     out_schema.offset(dst), fact_schema.column(col).width()});
    ++dst;
  }
  for (const auto& dim : q.dims) {
    const storage::Table* dim_table = catalog_->MustGetTable(dim.dim_table);
    size_t filter_pos = 0;
    for (const auto& f : filters_) {
      if (f->Matches(dim_table, dim.fact_fk_column, dim.dim_pk_column)) {
        filter_pos = f->position();
        break;
      }
    }
    const storage::Schema& ds = dim_table->schema();
    for (const auto& payload : dim.payload_columns) {
      const size_t col = ds.MustColumnIndex(payload);
      moves.push_back({false, filter_pos, col, ds.offset(col),
                       out_schema.offset(dst), ds.column(col).width()});
      ++dst;
    }
  }
  SDW_CHECK_MSG(dst == out_schema.num_columns(),
                "CJOIN projection does not cover the output schema");
  return moves;
}

void CjoinPipeline::BindAggGroupLocked(ActiveQuery* aq) {
  std::string sig = aq->q.AggSignature();
  SharedAggregator::Group* g = nullptr;
  if (options_.shared_aggregation) {
    g = shared_agg_.FindGroup(sig);
    if (g != nullptr) ++stats_.agg_groups_shared;
  } else {
    // Scalar reference: a unique signature keeps every group private, so
    // each query aggregates alone (the pre-sharing behavior).
    sig += "#slot" + std::to_string(aq->slot);
  }
  if (g == nullptr) {
    g = shared_agg_.CreateGroup(std::move(sig));
    const query::Planner planner(catalog_);
    g->join_schema = planner.JoinOutputSchema(aq->q);
    g->join_row_size = g->join_schema.tuple_size();
    g->moves = BuildJoinMoves(aq->q, g->join_schema);
    query::AggShape shape = query::Planner::BindAggShape(g->join_schema, aq->q);
    g->group_cols = std::move(shape.group_cols);
    g->aggs = std::move(shape.aggs);
    g->out_schema = std::move(shape.out_schema);
    size_t key_width = 0;
    for (size_t c : g->group_cols) {
      key_width += g->join_schema.column(c).width();
    }
    g->key_width = key_width;
  }
  SDW_CHECK_MSG(
      g->out_schema.num_columns() == aq->out_schema.num_columns() &&
          g->out_schema.tuple_size() == aq->out_schema.tuple_size(),
      "aggregate submission out_schema does not match its bound shape");
  shared_agg_.AddMember(g, aq->slot, aq->fact_pred);
  aq->agg_group = g;
  aq->agg_bit = aq->slot;
}

void CjoinPipeline::BindFoldedAggLocked(ActiveQuery* host, ActiveQuery* sat) {
  SharedAggregator::Group* g = host->agg_group;
  SDW_CHECK(g != nullptr);
  SDW_CHECK_MSG(
      g->out_schema.num_columns() == sat->out_schema.num_columns() &&
          g->out_schema.tuple_size() == sat->out_schema.tuple_size(),
      "folded aggregate out_schema does not match its host's shape");
  // The fold bit was claimed from free_fold_bits_ in FoldOntoHostLocked.
  shared_agg_.AddFoldedMember(g, sat->agg_bit, host->slot, sat->fact_pred,
                              sat->residuals);
  sat->agg_group = g;
}

void CjoinPipeline::EmitAggResultLocked(ActiveQuery* aq,
                                        SharedAggregator::AccTable* slice) {
  SharedAggregator::Group* g = aq->agg_group;
  SDW_CHECK(g != nullptr);
  std::vector<std::string> rows;
  if (slice != nullptr) {
    SharedAggregator::RenderSlice(*g, *slice, &rows);
  } else if (options_.shared_aggregation) {
    SharedAggregator::AccTable cut;
    SharedAggregator::SliceSlot(*g, aq->agg_bit, &cut);
    SharedAggregator::RenderSlice(*g, cut, &rows);
  } else {
    // A private group's table is already exactly this query's aggregate.
    SharedAggregator::RenderSlice(*g, g->merged, &rows);
  }
  ++stats_.agg_slice_emits;
  storage::PagePtr page;
  bool ok = true;
  for (const std::string& row : rows) {
    if (page == nullptr) page = storage::Page::Make(aq->out_tuple_size);
    std::byte* dst = page->AppendTuple();
    if (dst == nullptr) {
      ok = aq->sink->Put(std::move(page));
      if (!ok) break;  // consumers gone
      page = storage::Page::Make(aq->out_tuple_size);
      dst = page->AppendTuple();
    }
    std::memcpy(dst, row.data(), row.size());
  }
  if (ok && page != nullptr) aq->sink->Put(std::move(page));
  aq->sink->Close();
}

CjoinPipeline::ActiveQuery* CjoinPipeline::FindFoldHostLocked(
    const PendingQuery& p, const std::vector<uint32_t>& epoch_slots) {
  // Scalar (non-shared) aggregation keys carry no member bitmap, so there
  // is nothing for an aggregate satellite to ride; and a folded aggregate
  // needs a private fold bit for its slice.
  if (p.aggregate &&
      (!options_.shared_aggregation || free_fold_bits_.empty())) {
    return nullptr;
  }
  auto candidate = [&](uint32_t s) -> ActiveQuery* {
    ActiveQuery* aq = slots_[s].get();
    if (aq == nullptr) return nullptr;
    // Only a healthy host whose own client is still scanning: a retiring,
    // faulted or detached host's filter verdicts are about to stop.
    if (aq->client_done || aq->completion_queued) return nullptr;
    if (!aq->fault_status.ok()) return nullptr;
    if (aq->detached_cache.load(std::memory_order_relaxed)) return nullptr;
    if (aq->aggregate != p.aggregate) return nullptr;
    if (!query::QuerySubsumes(aq->q, p.q)) return nullptr;
    return aq;
  };
  for (size_t s = active_mask_.FindNextSet(0); s < active_mask_.size();
       s = active_mask_.FindNextSet(s + 1)) {
    if (ActiveQuery* aq = candidate(static_cast<uint32_t>(s))) return aq;
  }
  // Same-epoch hosts: queries materialized earlier in THIS pause, not yet
  // in active_mask_. Essential at small slot caps, where a whole similar
  // burst arrives in one admission batch.
  for (uint32_t s : epoch_slots) {
    if (ActiveQuery* aq = candidate(s)) return aq;
  }
  return nullptr;
}

void CjoinPipeline::FoldOntoHostLocked(ActiveQuery* host, PendingQuery* p) {
  auto sat = std::make_unique<ActiveQuery>();
  sat->slot = host->slot;
  sat->folded = true;
  sat->q = p->q;
  sat->out_schema = std::move(p->out_schema);
  sat->out_tuple_size = sat->out_schema.tuple_size();
  sat->sink = std::move(p->sink);
  sat->life = std::move(p->life);
  sat->cancelled = std::move(p->cancelled);
  sat->on_complete = std::move(p->on_complete);
  sat->aggregate = p->aggregate;
  sat->fact_pred = sat->q.fact_pred.Bind(fact_->schema());
  // The satellite's point of entry is the scan's current position, exactly
  // like a slot admission: one full circular cycle from here. Its host's
  // slot stays annotated (and its filters' match bits live) at least that
  // long — a host client finishing first promotes the slot, never frees it.
  sat->pages_remaining = fact_->num_pages();
  sat->residuals = BuildResiduals(*host, sat->q);
  if (!sat->aggregate) sat->moves = BuildJoinMoves(sat->q, sat->out_schema);
  if (sat->life != nullptr) {
    sat->life->SetAdmissionEpoch(stats_.admission_batches + 1);
    sat->life->MarkRunStart();
  }
  ActiveQuery* sp = sat.get();
  host->satellites.push_back(std::move(sat));
  if (sp->aggregate) {
    // Claim the fold bit now (FindFoldHostLocked checked availability), so
    // capacity accounting stays exact across a pause that folds several
    // aggregates; the group binding happens immediately for an active host
    // and in admission phase 4 for a same-epoch one.
    SDW_CHECK(!free_fold_bits_.empty());
    sp->agg_bit = free_fold_bits_.back();
    free_fold_bits_.pop_back();
    if (host->agg_group != nullptr) BindFoldedAggLocked(host, sp);
  }
}

std::vector<SharedAggregator::Residual> CjoinPipeline::BuildResiduals(
    const ActiveQuery& host, const query::StarQuery& q) {
  std::vector<SharedAggregator::Residual> out;
  for (size_t i = 0; i < q.dims.size(); ++i) {
    const query::DimJoin& dim = q.dims[i];
    // A dimension predicate identical to the host's needs no residual: the
    // host's filter verdict is already exact for the satellite there.
    if (dim.pred.Signature() == host.q.dims[i].pred.Signature()) continue;
    const storage::Table* dim_table = catalog_->MustGetTable(dim.dim_table);
    SharedAggregator::Residual r;
    for (const auto& f : filters_) {
      if (f->Matches(dim_table, dim.fact_fk_column, dim.dim_pk_column)) {
        r.filter_pos = f->position();
        break;
      }
    }
    r.dim_schema = &dim_table->schema();
    r.pred = dim.pred.Bind(dim_table->schema());
    // Memoize the verdict per dimension row (tables are immutable): one
    // pass over a small dimension here buys bit-test residual checks on
    // the fact-scan hot path for the satellite's whole lifetime.
    r.row_pass.assign(bits::WordsFor(dim_table->num_rows()), 0);
    for (size_t row = 0; row < dim_table->num_rows(); ++row) {
      if (r.pred.Eval(*r.dim_schema, dim_table->row(row))) {
        bits::Set(r.row_pass.data(), row);
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

void CjoinPipeline::DoAdmissionsLocked() {
  if (pending_.empty()) return;
  WallTimer timer;

  // Scheduling: admit by (priority desc, arrival). pending_ is already in
  // arrival order and the sort is stable, so equal priorities keep FIFO
  // fairness; when slots are scarce the tail of this order is what gets
  // rejected — a high-priority query never waits behind (or loses its slot
  // to) a long low-priority backlog. Dynamic priorities (SP shared packets)
  // are evaluated once, here, at the pause.
  if (options_.priority_admission && pending_.size() > 1) {
    std::vector<int> eff(pending_.size());
    for (size_t i = 0; i < pending_.size(); ++i) {
      const PendingQuery& p = pending_[i];
      eff[i] = p.priority;
      if (p.priority_fn) eff[i] = std::max(eff[i], p.priority_fn());
    }
    std::vector<size_t> order(pending_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return eff[a] > eff[b]; });
    std::vector<PendingQuery> sorted;
    sorted.reserve(pending_.size());
    for (size_t i : order) sorted.push_back(std::move(pending_[i]));
    pending_ = std::move(sorted);
  }

  // Phase 1 — materialize: allocate slots, build the ActiveQuery state, and
  // create/look up every referenced filter, grouping the epoch's pending
  // (slot, predicate) pairs by filter so phase 3 runs ONE dimension scan
  // per filter for the whole epoch, however many queries were waiting.
  std::vector<uint32_t> epoch_slots;
  epoch_slots.reserve(pending_.size());
  std::vector<std::pair<Filter*, std::vector<Filter::AdmitRequest>>> scans;
  const int64_t now = NowNanos();
  for (auto& p : pending_) {
    // Deadline-driven admission: an expired query is rejected here, before
    // it costs a slot or any dimension scan. Likewise a query whose client
    // already detached (cancelled while pending / during this pause).
    // A shared packet (group `cancelled` override installed) is exempt from
    // the owner-deadline rejection: satellites without deadlines may depend
    // on it, so the owner's expiry only detaches the owner (its drain stops
    // at the deadline) and the packet retires via the group signal.
    if (!p.cancelled && p.life != nullptr && p.life->deadline_nanos() != 0 &&
        now > p.life->deadline_nanos()) {
      RejectPendingLocked(&p, Status::DeadlineExceeded(
                                  "deadline expired before CJOIN admission"));
      ++stats_.queries_expired;
      continue;
    }
    if ((p.cancelled && p.cancelled()) ||
        (!p.cancelled && p.life != nullptr && p.life->Detached())) {
      RejectPendingLocked(
          &p, p.life != nullptr ? p.life->cancel_status()
                                : Status::Cancelled("cancelled while pending"));
      ++stats_.queries_cancelled;
      continue;
    }
    // Overload gate: reserve the query's memory cost before it takes a slot
    // or triggers any dimension scan. Shedding here — with a retry_after
    // hint — is the graceful-degradation path: the client resubmits when
    // capacity frees instead of the engine queueing unboundedly.
    if (options_.memory_budget != nullptr &&
        !options_.memory_budget->TryReserve(kAdmissionCostBytes)) {
      RejectPendingLocked(
          &p, ResourceExhaustedWithRetryAfter(
                  "CJOIN admission shed: memory budget exhausted (" +
                      std::to_string(options_.memory_budget->used()) + "/" +
                      std::to_string(options_.memory_budget->capacity()) +
                      " bytes reserved)",
                  options_.overload_retry_after_nanos));
      ++stats_.queries_rejected_overload;
      continue;
    }
    // Dynamic query folding: a pending query provably subsumed by an
    // in-flight (or just-materialized same-epoch) query rides that host's
    // slot as a post-filter instead of costing a slot and dimension scans.
    // Running inside the (priority desc, arrival)-ordered walk keeps the
    // admission order honest: a fold consumes NO slot, so it can never take
    // one from a higher-priority pending query processed before it. The
    // budget reservation above stays charged and releases when the
    // satellite retires.
    if (options_.query_folding) {
      ++stats_.fold_checks;
      if (ActiveQuery* host = FindFoldHostLocked(p, epoch_slots)) {
        FoldOntoHostLocked(host, &p);
        ++stats_.queries_folded;
        ++stats_.queries_admitted;
        continue;
      }
    }
    const uint32_t slot = TryAllocSlotLocked();
    if (slot == kNoSlot) {
      if (options_.memory_budget != nullptr) {
        options_.memory_budget->Release(kAdmissionCostBytes);
      }
      RejectPendingLocked(
          &p, Status::ResourceExhausted(
                  "CJOIN query-slot capacity (" +
                  std::to_string(options_.max_queries) + ") exhausted"));
      ++stats_.queries_rejected;
      continue;
    }
    auto aq = std::make_unique<ActiveQuery>();
    aq->slot = slot;
    aq->q = p.q;
    aq->out_schema = std::move(p.out_schema);
    aq->out_tuple_size = aq->out_schema.tuple_size();
    aq->sink = std::move(p.sink);
    aq->life = std::move(p.life);
    aq->cancelled = std::move(p.cancelled);
    aq->on_complete = std::move(p.on_complete);
    aq->aggregate = p.aggregate;
    aq->fact_pred = aq->q.fact_pred.Bind(fact_->schema());
    slots_[slot] = std::move(aq);
    epoch_slots.push_back(slot);
    // The predicate pointers reference the ActiveQuery's own copy of the
    // query, which stays put in slots_ through the phase-3 scans.
    for (const auto& dim : slots_[slot]->q.dims) {
      Filter* f = GetOrCreateFilterLocked(dim);
      auto it = std::find_if(scans.begin(), scans.end(),
                             [f](const auto& e) { return e.first == f; });
      if (it == scans.end()) {
        scans.emplace_back(f, std::vector<Filter::AdmitRequest>{});
        it = std::prev(scans.end());
      }
      it->second.push_back({slot, &dim.pred});
    }
  }
  pending_.clear();

  // Phase 2 — wire the GQP: every filter the epoch needed now exists, so
  // pass-through masks and projection plans see filters created by *any*
  // query of the epoch, not only earlier-submitted ones.
  for (uint32_t slot : epoch_slots) {
    ActiveQuery* aq = slots_[slot].get();
    for (auto& f : filters_) {
      bool referenced = false;
      for (const auto& dim : aq->q.dims) {
        if (f->Matches(catalog_->MustGetTable(dim.dim_table),
                       dim.fact_fk_column, dim.dim_pk_column)) {
          referenced = true;
          break;
        }
      }
      if (!referenced) f->SetPass(slot);
    }
    // Aggregate queries materialize rows through their group's moves (built
    // at binding, phase 4) — their out_schema is the aggregate schema, not
    // the join output.
    if (!aq->aggregate) aq->moves = BuildJoinMoves(aq->q, aq->out_schema);
  }

  // Phase 3 — one scan per referenced dimension for the whole epoch (the
  // SharedDB-style amortized admission; stat-asserted by the stress test).
  // A failed dimension scan leaves the filter internally consistent but its
  // batch's match bits incomplete (see Filter::AdmitQueryBatch) — the
  // queries that referenced that dimension are marked faulted and phase 4
  // fails them instead of activating; the epoch's other queries admit
  // normally (fault isolation at admission).
  for (auto& [f, reqs] : scans) {
    const Status s = f->AdmitQueryBatch(reqs.data(), reqs.size(), pool_);
    if (s.ok()) continue;
    const StatusCode code = s.code() == StatusCode::kDataLoss
                                ? StatusCode::kDataLoss
                                : StatusCode::kUnavailable;
    const Status fault(code, "CJOIN admission: dimension '" +
                                 f->dim_table()->name() +
                                 "' scan failed: " + s.message());
    for (size_t r = 0; r < reqs.size(); ++r) {
      ActiveQuery* aq = slots_[reqs[r].slot].get();
      if (aq->fault_status.ok()) aq->fault_status = fault;
    }
  }

  // Phase 4 — activate: point of entry is the circular scan's current
  // position; each query completes after one full cycle.
  for (uint32_t slot : epoch_slots) {
    ActiveQuery* aq = slots_[slot].get();
    if (!aq->fault_status.ok()) {
      // Admission fault: the query never activates. Satellites folded onto
      // it this epoch fail with it — their subsumption proof is against a
      // host that will never scan. Its slot goes back to the dirty pool
      // (CleanSlot erases the partial match bits on reuse) and its
      // reservation releases — exactly the completed-query cleanup, minus
      // the active bookkeeping it never acquired.
      for (auto& sat : aq->satellites) {
        sat->fault_status = aq->fault_status;
        FinishRiderLocked(sat.get());
      }
      aq->satellites.clear();
      FailQuery(aq->life, aq->on_complete, aq->sink.get(), aq->fault_status);
      ++stats_.queries_failed;
      for (auto& f : filters_) f->RemoveQuery(slot);
      if (options_.memory_budget != nullptr) {
        options_.memory_budget->Release(kAdmissionCostBytes);
      }
      dirty_slots_.push_back(slot);
      slots_[slot].reset();
      continue;
    }
    if (aq->aggregate) {
      BindAggGroupLocked(aq);
      // Aggregate satellites folded onto this same-epoch host bind now that
      // the host's group exists (active hosts bind theirs at fold time).
      for (auto& sat : aq->satellites) {
        if (sat->agg_group == nullptr) BindFoldedAggLocked(aq, sat.get());
      }
    }
    aq->pages_remaining = fact_->num_pages();
    active_mask_.Set(slot);
    ++active_count_;
    ++stats_.queries_admitted;
    if (aq->life != nullptr) {
      aq->life->SetAdmissionEpoch(stats_.admission_batches + 1);
      // Pending → running: queue wait ends at admission activation.
      aq->life->MarkRunStart();
    }
    if (aq->pages_remaining == 0) {
      CompleteQueryLocked(slot);  // empty fact table: nothing to join
    }
  }
  ++stats_.admission_batches;
  stats_.admission_seconds += timer.ElapsedSeconds();
  progress_.fetch_add(1, std::memory_order_relaxed);
}

// ------------------------------------------------------------ filter workers

void CjoinPipeline::FilterWorkerLoop() {
  // Per-worker scratch: grows to the high-water batch size once, then all
  // Process calls run allocation-free.
  FilterScratch scratch;
  while (BatchPtr batch = to_filters_.Take()) {
    for (uint32_t f = 0; f < batch->num_filters; ++f) {
      filters_[f]->Process(batch.get(), &scratch);
    }
    if (!to_distributor_.Put(std::move(batch))) ForgetDroppedBatch();
  }
}

// --------------------------------------------------------- distributor parts

namespace {

/// Applies `fn(tuple_index, slot)` to every set query bit of every live
/// tuple — the scalar reference's (slot, tuple) pair enumeration. The
/// batched path (DistributePartBatched) carries its own copy of this decode
/// loop because it fuses the `seen[w] |= word` touched-slot OR into it;
/// changes to the walk order or slot decoding must be mirrored there (the
/// differential test pins the two against each other). Walking the live
/// mask first makes fully-filtered tuples cost one skipped mask bit instead
/// of `words` bitmap loads each.
template <typename Fn>
inline void ForEachLiveSlotPair(const TupleBatch& batch, Fn&& fn) {
  const size_t words = batch.words_per_tuple;
  const uint64_t* live = batch.live_words();
  const size_t live_words = bits::WordsFor(batch.num_tuples);
  for (size_t lw = 0; lw < live_words; ++lw) {
    uint64_t lword = live[lw];
    while (lword != 0) {
      const uint32_t i = static_cast<uint32_t>(
          lw * 64 + static_cast<size_t>(std::countr_zero(lword)));
      lword &= lword - 1;
      const uint64_t* tb = batch.tuple_bits(i);
      if (words == 1) {
        // ≤64-slot fast path: single-word slot extraction.
        uint64_t word = tb[0];
        while (word != 0) {
          fn(i, static_cast<uint32_t>(std::countr_zero(word)));
          word &= word - 1;
        }
        continue;
      }
      for (size_t w = 0; w < words; ++w) {
        uint64_t word = tb[w];
        while (word != 0) {
          fn(i, static_cast<uint32_t>(
                    w * 64 + static_cast<size_t>(std::countr_zero(word))));
          word &= word - 1;
        }
      }
    }
  }
}

}  // namespace

size_t DistributePartBatched(const TupleBatch& batch,
                             DistributorScratch* scratch) {
  // Capacity snapshot: any growth below makes this an allocating batch.
  const size_t cap_arena = scratch->arena.capacity();
  const size_t cap_counts = scratch->counts.capacity();
  const size_t cap_touched = scratch->touched.capacity();
  const size_t cap_seen = scratch->seen.capacity();

  // Reset: zero only the cursors the previous batch touched, so the
  // per-batch cost is O(active slots), not O(slot capacity).
  for (uint32_t s : scratch->touched) scratch->counts[s] = 0;
  scratch->touched.clear();
  const size_t words = batch.words_per_tuple;
  const size_t max_slots = words * 64;
  if (scratch->counts.size() < max_slots) {
    scratch->counts.resize(max_slots, 0);
  }
  scratch->seen.assign(words, 0);
  // Bucket stride: room for every tuple of the largest page seen so far.
  // Monotonic and geometry-driven — slot churn never resizes the arena.
  if (batch.num_tuples > scratch->stride) scratch->stride = batch.num_tuples;
  const size_t stride = scratch->stride;
  if (scratch->arena.size() < max_slots * stride) {
    scratch->arena.resize(max_slots * stride);
  }

  // One decode pass: store each (slot, tuple) pair straight into its slot's
  // arena bucket via the slot's fill cursor. Touched-slot discovery is an
  // OR per bitmap word (`seen`), not a per-pair branch.
  {
    uint32_t* arena = scratch->arena.data();
    uint32_t* counts = scratch->counts.data();
    uint64_t* seen = scratch->seen.data();
    const uint64_t* live = batch.live_words();
    const size_t live_words = bits::WordsFor(batch.num_tuples);
    for (size_t lw = 0; lw < live_words; ++lw) {
      uint64_t lword = live[lw];
      while (lword != 0) {
        const uint32_t i = static_cast<uint32_t>(
            lw * 64 + static_cast<size_t>(std::countr_zero(lword)));
        lword &= lword - 1;
        const uint64_t* tb = batch.tuple_bits(i);
        if (words == 1) {
          const uint64_t word0 = tb[0];
          seen[0] |= word0;
          uint64_t word = word0;
          while (word != 0) {
            const uint32_t slot =
                static_cast<uint32_t>(std::countr_zero(word));
            word &= word - 1;
            arena[slot * stride + counts[slot]++] = i;
          }
          continue;
        }
        // Multi-word bitmaps: one SIMD pass fuses the touched-slot OR with
        // the any-bit check, so tuples whose stale live bit survived an
        // all-zero bitmap skip the decode loop entirely. Emission order is
        // unchanged (the scalar decode below still walks words in order).
        if (simd::OrAccumulateAny(seen, tb, words) == 0) continue;
        for (size_t w = 0; w < words; ++w) {
          uint64_t word = tb[w];
          while (word != 0) {
            const uint32_t slot = static_cast<uint32_t>(
                w * 64 + static_cast<size_t>(std::countr_zero(word)));
            word &= word - 1;
            arena[slot * stride + counts[slot]++] = i;
          }
        }
      }
    }
  }

  // Touched slots fall out of the seen words, in ascending slot order.
  size_t total = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t sw = scratch->seen[w];
    while (sw != 0) {
      const uint32_t slot = static_cast<uint32_t>(
          w * 64 + static_cast<size_t>(std::countr_zero(sw)));
      sw &= sw - 1;
      scratch->touched.push_back(slot);
      total += scratch->counts[slot];
    }
  }

  const bool grew = scratch->arena.capacity() != cap_arena ||
                    scratch->counts.capacity() != cap_counts ||
                    scratch->touched.capacity() != cap_touched ||
                    scratch->seen.capacity() != cap_seen;
  ++(grew ? scratch->grows : scratch->reuses);
  return total;
}

void DistributePartScalar(
    const TupleBatch& batch,
    std::unordered_map<uint32_t, std::vector<uint32_t>>* by_slot) {
  by_slot->clear();
  ForEachLiveSlotPair(batch, [&](uint32_t i, uint32_t slot) {
    (*by_slot)[slot].push_back(i);
  });
}

void CjoinPipeline::EmitGroup(uint32_t slot, const TupleBatch& batch,
                              const storage::Schema& fact_schema,
                              const uint32_t* idxs, size_t n) {
  ActiveQuery* aq = slots_[slot].get();
  SDW_DCHECK(aq != nullptr);
  // Aggregate riders produce nothing here: their join output folds into the
  // aggregation stage's tables and the sink gets rendered aggregate pages
  // at completion. A host whose own client finished (promotion) stops
  // emitting for itself but its satellites ride on.
  if (!aq->aggregate && !aq->client_done) {
    EmitRows(aq, batch, fact_schema, idxs, n);
  }
  // Folded satellites share the slot's group: same filter verdicts, each
  // with its own fact predicate and dimension residuals applied in
  // EmitRows. The satellites vector mutates only at admission pauses
  // (drain-barrier protocol), so this lock-free walk is safe mid-batch.
  for (auto& sat : aq->satellites) {
    if (!sat->aggregate) EmitRows(sat.get(), batch, fact_schema, idxs, n);
  }
}

void CjoinPipeline::EmitRows(ActiveQuery* aq, const TupleBatch& batch,
                             const storage::Schema& fact_schema,
                             const uint32_t* idxs, size_t n) {
  // Stale-rider suppression: once the query's consumers detached (cancel /
  // deadline / row-limit), stop projecting for it — batches annotated
  // before the cancel was observed may still carry its bit until the rider
  // retires at the next admission pause. Under SP the signal is group-wide,
  // so a host with live SP satellites keeps emitting. Reads the
  // preprocessor's per-page cached decision: a relaxed load, no locks on
  // this path.
  if (aq->detached_cache.load(std::memory_order_relaxed)) return;
  // Take exclusive ownership of one of the query's open output pages — the
  // critical section is a pointer swap; predicate evaluation and projection
  // below run without the lock.
  storage::PagePtr page;
  {
    MutexLock out_lock(aq->out_mu);
    if (!aq->out_buf.ok()) return;  // consumers gone
    page = aq->out_buf.TakePage();
  }
  // Fact predicates are evaluated on CJOIN's output tuples unless the
  // preprocessor already applied them (§3.2) — and ALWAYS for folded
  // satellites, which the preprocessor knows nothing about (it clears bits
  // for the HOST's predicate only, a superset of the satellite's tuples by
  // the admission containment proof).
  const bool eval_fact_pred =
      aq->folded || !options_.fact_preds_in_preprocessor;
  const storage::Page& fact_page = *batch.fact_page;
  const bool columnar = fact_page.columnar();
  for (size_t k = 0; k < n; ++k) {
    const uint32_t i = idxs[k];
    const std::byte* fact_row = columnar ? nullptr : fact_page.tuple(i);
    if (eval_fact_pred && !aq->fact_pred.IsTrue() &&
        !aq->fact_pred.EvalAt(fact_schema, fact_page, i)) {
      continue;
    }
    const uint32_t* dim_rows = batch.tuple_dim_rows(i);
    // A satellite's own dimension predicates, where narrower than its
    // host's, re-check against the joined dimension rows (the host's filter
    // verdict admits a superset).
    if (!aq->residuals.empty()) {
      bool pass = true;
      for (const auto& r : aq->residuals) {
        const uint32_t row = dim_rows[r.filter_pos];
        SDW_DCHECK(row != kNoDimRow);
        if (r.row_pass.empty()
                ? !r.pred.Eval(*r.dim_schema,
                               filters_[r.filter_pos]->dim_table()->row(row))
                : !bits::Test(r.row_pass.data(), row)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
    }
    if (page == nullptr) page = storage::Page::Make(aq->out_tuple_size);
    std::byte* dst = page->AppendTuple();
    if (dst == nullptr) {
      // Page full: hand it to the sink and start a fresh one. Emission
      // order across parts is insignificant (query results are multisets).
      bool ok;
      {
        MutexLock out_lock(aq->out_mu);
        ok = aq->out_buf.ok() && aq->sink->Put(std::move(page));
        if (!ok) aq->out_buf.MarkFailed();
      }
      if (!ok) return;  // consumers gone
      page = storage::Page::Make(aq->out_tuple_size);
      dst = page->AppendTuple();
    }
    for (const auto& m : aq->moves) {
      const std::byte* src;
      if (m.from_fact) {
        // PAX pages project straight out of the column's minipage.
        src = columnar ? fact_page.field(fact_schema, m.src_col, i)
                       : fact_row + m.src_off;
      } else {
        const uint32_t row = dim_rows[m.filter_pos];
        SDW_DCHECK(row != kNoDimRow);
        src = filters_[m.filter_pos]->dim_table()->row(row) + m.src_off;
      }
      std::memcpy(dst + m.dst_off, src, m.len);
    }
  }
  if (page != nullptr) {
    MutexLock out_lock(aq->out_mu);
    aq->out_buf.PutBack(std::move(page));
  }
}

void CjoinPipeline::DistributorPartLoop(size_t part) {
  const storage::Schema& fact_schema = fact_->schema();
  // Per-part scratch: recycled flat slot→tuple-index grouping (counting-sort
  // layout). It grows to the high-water mark once; after that every batch is
  // grouped with zero heap allocation — tracked by the scratch-reuse stats.
  DistributorScratch scratch;
  SharedAggregator::FoldScratch fold_scratch;

  while (BatchPtr batch = to_distributor_.Take()) {
    {
      ScopedComponentTimer t(Component::kMisc);
      const uint64_t grows_before = scratch.grows;
      DistributePartBatched(*batch, &scratch);
      (scratch.grows == grows_before ? dist_scratch_reuses_
                                     : dist_scratch_grows_)
          .Add(1);
      for (size_t g = 0; g < scratch.num_groups(); ++g) {
        EmitGroup(scratch.group_slot(g), *batch, fact_schema,
                  scratch.group_begin(g), scratch.group_size(g));
      }
      // Fold the batch once into every aggregation group. Safe without mu_:
      // the group list and shapes mutate only while the pipeline is drained,
      // and this part writes only its own partial tables.
      for (const auto& g : shared_agg_.groups()) {
        if (options_.shared_aggregation) {
          shared_agg_.FoldBatch(g.get(), *batch, fact_schema, dim_row_fn_,
                                part, options_.fact_preds_in_preprocessor,
                                &fold_scratch);
        } else {
          AggregateScalar(*g, g->members[0], *batch, fact_schema, dim_row_fn_,
                          options_.fact_preds_in_preprocessor,
                          &g->partials[part]);
        }
        agg_batches_folded_.Add(1);
      }
    }

    // Retire the batch into the recycling pool before releasing the drain:
    // its vectors keep their capacity for the preprocessor's next page.
    batch_pool_.Release(std::move(batch));
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(drain_mu_);
      drain_cv_.NotifyAll();
    }
  }
}

}  // namespace sdw::cjoin
