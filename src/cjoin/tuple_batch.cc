#include "cjoin/tuple_batch.h"

namespace sdw::cjoin {

void BatchQueue::Put(BatchPtr batch) {
  std::unique_lock<std::mutex> lock(mu_);
  put_cv_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
  if (closed_) return;
  queue_.push_back(std::move(batch));
  take_cv_.notify_one();
}

BatchPtr BatchQueue::Take() {
  std::unique_lock<std::mutex> lock(mu_);
  take_cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return nullptr;
  BatchPtr batch = std::move(queue_.front());
  queue_.pop_front();
  put_cv_.notify_one();
  return batch;
}

void BatchQueue::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  closed_ = true;
  put_cv_.notify_all();
  take_cv_.notify_all();
}

}  // namespace sdw::cjoin
