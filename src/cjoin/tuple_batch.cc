#include "cjoin/tuple_batch.h"

#include <bit>

namespace sdw::cjoin {

BatchQueue::BatchQueue(size_t capacity)
    : capacity_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity)),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool BatchQueue::TryPut(BatchPtr* batch) {
  size_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& s = slots_[pos & mask_];
    const size_t seq = s.seq.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        s.batch = std::move(*batch);
        s.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // full
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

bool BatchQueue::TryTake(BatchPtr* batch) {
  size_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& s = slots_[pos & mask_];
    const size_t seq = s.seq.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        *batch = std::move(s.batch);
        s.seq.store(pos + capacity_, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // empty
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool BatchQueue::Put(BatchPtr batch) {
  if (closed_.load(std::memory_order_acquire)) return false;
  bool ok = TryPut(&batch);
  if (!ok) {
    // Full: park on the slow path until a consumer frees a slot or close.
    MutexLock lock(mu_);
    waiting_producers_.fetch_add(1, std::memory_order_seq_cst);
    // Fence the count increment against the ring re-check below: pairs with
    // the fast path's fence (ring update, then count read), so either our
    // re-check sees the free slot or the consumer sees our registration and
    // notifies — the lost-wakeup interleaving is forbidden, no timed
    // backstop needed.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    bool waited = false;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) break;
      if (TryPut(&batch)) {
        ok = true;
        break;
      }
      if (waited) futile_wakeups_.fetch_add(1, std::memory_order_relaxed);
      not_full_.Wait(mu_);
      waited = true;
    }
    waiting_producers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  if (ok) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiting_consumers_.load(std::memory_order_relaxed) != 0) {
      MutexLock lock(mu_);
      not_empty_.NotifyOne();
    }
  }
  return ok;
}

BatchPtr BatchQueue::Take() {
  BatchPtr batch;
  bool ok = TryTake(&batch);
  if (!ok) {
    MutexLock lock(mu_);
    waiting_consumers_.fetch_add(1, std::memory_order_seq_cst);
    // See Put: the fence makes registration-then-recheck atomic against the
    // fast path's update-then-count-read, closing the pre-park window.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    bool waited = false;
    for (;;) {
      if (TryTake(&batch)) {
        ok = true;
        break;
      }
      // Closed and (post-check) empty: drained. Producers must stop before
      // Close for a complete drain; the pipeline joins them first.
      if (closed_.load(std::memory_order_acquire)) break;
      if (waited) futile_wakeups_.fetch_add(1, std::memory_order_relaxed);
      not_empty_.Wait(mu_);
      waited = true;
    }
    waiting_consumers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  if (ok) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiting_producers_.load(std::memory_order_relaxed) != 0) {
      MutexLock lock(mu_);
      not_full_.NotifyOne();
    }
  }
  return batch;
}

void BatchQueue::Close() {
  closed_.store(true, std::memory_order_seq_cst);
  MutexLock lock(mu_);
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
}

storage::PagePtr SlotOutputBuffer::TakePage() {
  if (open_.empty()) return nullptr;
  storage::PagePtr page = std::move(open_.back());
  open_.pop_back();
  return page;
}

void SlotOutputBuffer::PutBack(storage::PagePtr page) {
  if (page != nullptr) open_.push_back(std::move(page));
}

void SlotOutputBuffer::DrainInto(core::PageSink* sink) {
  for (auto& page : open_) {
    if (page != nullptr && !page->empty()) {
      if (!sink->Put(std::move(page))) ok_ = false;
    }
  }
  open_.clear();
}

BatchPtr BatchPool::Acquire() {
  {
    MutexLock lock(mu_);
    if (!free_.empty()) {
      BatchPtr batch = std::move(free_.back());
      free_.pop_back();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return batch;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<TupleBatch>();
}

void BatchPool::Release(BatchPtr batch) {
  if (batch == nullptr || batch.use_count() != 1) return;
  batch->fact_page.reset();  // return the page to its owner promptly
  MutexLock lock(mu_);
  if (free_.size() < max_cached_) free_.push_back(std::move(batch));
}

}  // namespace sdw::cjoin
