// Annotated fact-tuple batches flowing through the CJOIN pipeline, and the
// bounded MPMC queue connecting the preprocessor, filter workers and
// distributor parts (paper §2.5, Figure 4).

#ifndef SDW_CJOIN_TUPLE_BATCH_H_
#define SDW_CJOIN_TUPLE_BATCH_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "storage/page.h"

namespace sdw::cjoin {

/// Row index placeholder for "no joined dimension tuple".
inline constexpr uint32_t kNoDimRow = ~uint32_t{0};

/// One fact page's tuples annotated with per-tuple query bitmaps and the
/// joined dimension row ids accumulated as the batch passes the filters.
struct TupleBatch {
  storage::PagePtr fact_page;  // keeps the tuples alive
  uint64_t page_index = 0;     // fact page index (circular scan position)

  uint32_t num_tuples = 0;
  uint32_t words_per_tuple = 0;  // bitmap words per tuple
  uint32_t num_filters = 0;      // width of the dim_rows matrix

  /// num_tuples × words_per_tuple bitmap words (tuple-major).
  std::vector<uint64_t> bits;
  /// num_tuples × num_filters joined dimension row ids (tuple-major).
  std::vector<uint32_t> dim_rows;

  uint64_t* tuple_bits(uint32_t t) { return bits.data() + t * words_per_tuple; }
  const uint64_t* tuple_bits(uint32_t t) const {
    return bits.data() + t * words_per_tuple;
  }
  uint32_t* tuple_dim_rows(uint32_t t) {
    return dim_rows.data() + t * num_filters;
  }
  const uint32_t* tuple_dim_rows(uint32_t t) const {
    return dim_rows.data() + t * num_filters;
  }
  const std::byte* fact_tuple(uint32_t t) const { return fact_page->tuple(t); }
};

using BatchPtr = std::shared_ptr<TupleBatch>;

/// Bounded multi-producer / multi-consumer batch queue.
class BatchQueue {
 public:
  explicit BatchQueue(size_t capacity) : capacity_(capacity) {}
  SDW_DISALLOW_COPY(BatchQueue);

  /// Blocks while full; no-op when closed.
  void Put(BatchPtr batch);

  /// Blocks for the next batch; nullptr once closed and drained.
  BatchPtr Take();

  /// Wakes all waiters; Take drains remaining batches then returns nullptr.
  void Close();

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable put_cv_;
  std::condition_variable take_cv_;
  std::deque<BatchPtr> queue_;
  bool closed_ = false;
};

}  // namespace sdw::cjoin

#endif  // SDW_CJOIN_TUPLE_BATCH_H_
