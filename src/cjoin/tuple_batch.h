// Annotated fact-tuple batches flowing through the CJOIN pipeline, the
// bounded MPMC queue connecting the preprocessor, filter workers and
// distributor parts (paper §2.5, Figure 4), and the batch recycling pool
// that makes the steady-state pipeline allocation-free.

#ifndef SDW_CJOIN_TUPLE_BATCH_H_
#define SDW_CJOIN_TUPLE_BATCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitmap.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "core/page_channel.h"
#include "storage/page.h"

namespace sdw::cjoin {

/// Row index placeholder for "no joined dimension tuple".
inline constexpr uint32_t kNoDimRow = ~uint32_t{0};

/// One fact page's tuples annotated with per-tuple query bitmaps and the
/// joined dimension row ids accumulated as the batch passes the filters.
struct TupleBatch {
  storage::PagePtr fact_page;  // keeps the tuples alive
  uint64_t page_index = 0;     // fact page index (circular scan position)

  uint32_t num_tuples = 0;
  uint32_t words_per_tuple = 0;  // bitmap words per tuple
  uint32_t num_filters = 0;      // width of the dim_rows matrix

  /// num_tuples × words_per_tuple bitmap words (tuple-major).
  std::vector<uint64_t> bits;
  /// num_tuples × num_filters joined dimension row ids (tuple-major).
  std::vector<uint32_t> dim_rows;
  /// WordsFor(num_tuples) liveness words: bit t stays set while tuple t can
  /// still match at least one query. Filters clear the bit the moment a
  /// tuple's bitmap goes empty, so downstream stages skip dead tuples
  /// without touching their (possibly multi-word) bitmap rows.
  std::vector<uint64_t> live;

  uint64_t* tuple_bits(uint32_t t) { return bits.data() + t * words_per_tuple; }
  const uint64_t* tuple_bits(uint32_t t) const {
    return bits.data() + t * words_per_tuple;
  }
  uint32_t* tuple_dim_rows(uint32_t t) {
    return dim_rows.data() + t * num_filters;
  }
  const uint32_t* tuple_dim_rows(uint32_t t) const {
    return dim_rows.data() + t * num_filters;
  }
  /// Row-major pages only — PAX batches have no per-tuple base pointer;
  /// columnar consumers read fields via Page::field / Predicate EvalAt.
  const std::byte* fact_tuple(uint32_t t) const { return fact_page->tuple(t); }

  uint64_t* live_words() { return live.data(); }
  const uint64_t* live_words() const { return live.data(); }
  bool tuple_live(uint32_t t) const { return bits::Test(live.data(), t); }
  void kill_tuple(uint32_t t) { bits::Clear(live.data(), t); }

  /// Sizes the annotation arrays for a page of `n` tuples, reusing whatever
  /// capacity survived from the batch's previous life in the pool. All
  /// tuples start live; `bits` content is left for the caller to fill.
  void ResetFor(uint32_t n, uint32_t words, uint32_t filters) {
    num_tuples = n;
    words_per_tuple = words;
    num_filters = filters;
    bits.resize(static_cast<size_t>(n) * words);
    dim_rows.assign(static_cast<size_t>(n) * filters, kNoDimRow);
    live.resize(bits::WordsFor(n));
    bits::FillOnes(live.data(), n);
  }
};

using BatchPtr = std::shared_ptr<TupleBatch>;

/// Bounded multi-producer / multi-consumer batch queue.
///
/// The common case — a slot is free to produce into / an item is ready to
/// consume — runs on a lock-free bounded ring buffer (per-slot sequence
/// numbers, Vyukov-style). The mutex + condition variables are touched only
/// on the blocking slow path (queue full / queue empty / close).
class BatchQueue {
 public:
  /// `capacity` is rounded up to a power of two (min 2).
  explicit BatchQueue(size_t capacity);
  SDW_DISALLOW_COPY(BatchQueue);

  /// Blocks while full. Returns true when the batch was enqueued; false when
  /// the queue was closed first — the batch is dropped and the caller must
  /// rebalance any in-flight accounting (see CjoinPipeline::DrainPipeline).
  bool Put(BatchPtr batch);

  /// Blocks for the next batch; nullptr once closed and drained.
  BatchPtr Take();

  /// Wakes all waiters; Take drains remaining batches then returns nullptr,
  /// Put returns false.
  void Close();

  size_t capacity() const { return capacity_; }

  /// Wakeups that found neither an item / free slot nor a close and went
  /// back to sleep. The notify protocol is precise — a quiescent queue must
  /// hold its waiters asleep indefinitely (zero futile wakeups; stress-test
  /// asserted). Contended hand-offs can still produce a few (notify_one
  /// racing another thread to the slot), so this counts occurrences, not
  /// errors.
  uint64_t futile_wakeups() const {
    return futile_wakeups_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<size_t> seq;
    BatchPtr batch;
  };

  /// Non-blocking enqueue; false when the ring is full.
  bool TryPut(BatchPtr* batch);
  /// Non-blocking dequeue; false when the ring is empty.
  bool TryTake(BatchPtr* batch);

  const size_t capacity_;  // power of two
  const size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<size_t> tail_{0};  // next Put ticket
  alignas(64) std::atomic<size_t> head_{0};  // next Take ticket
  alignas(64) std::atomic<bool> closed_{false};

  // Slow path only. Waiter counts let the fast path skip the mutex when
  // nobody is blocked. The notify protocol is precise (untimed waits): the
  // store-buffering outcome "fast path reads waiter-count 0 AND the parking
  // waiter's ring re-check misses the item" is forbidden by a seq_cst fence
  // on BOTH sides — between the ring update and the count read (fast path),
  // and between the count increment and the ring re-check (waiter). Once a
  // waiter is parked, every notify happens under mu_, which the waiter held
  // from before its re-check — no wakeup can fall into the gap.
  Mutex mu_{lock_rank::Rank::kBatchQueue};
  CondVar not_full_;
  CondVar not_empty_;
  std::atomic<int> waiting_producers_{0};
  std::atomic<int> waiting_consumers_{0};
  std::atomic<uint64_t> futile_wakeups_{0};
};

/// Per-query output page buffering for the distributor parts.
///
/// A part takes exclusive ownership of one open (partially filled) output
/// page — a pointer swap under the query's output mutex — appends projected
/// tuples to it without the lock, and puts the partial page back; pages that
/// fill up go straight to the query's sink. The buffer holds at most one
/// partial page per distributor part, so the critical section the parts
/// contend on shrinks from "evaluate + project every matching tuple" to two
/// pointer moves per (batch, query) pair.
///
/// Synchronization is the *caller's* job: every method requires the owning
/// query's output mutex to be held.
class SlotOutputBuffer {
 public:
  SlotOutputBuffer() = default;
  SDW_DISALLOW_COPY(SlotOutputBuffer);

  /// Pops an open partial page, or nullptr when none is buffered (the caller
  /// starts a fresh page lazily, outside the lock).
  storage::PagePtr TakePage();

  /// Returns a partial (possibly empty) page for a later emitter to fill.
  void PutBack(storage::PagePtr page);

  /// Sink failure latch: once a Put reports no consumers remain, emitters
  /// stop producing for this query.
  bool ok() const { return ok_; }
  void MarkFailed() { ok_ = false; }

  /// Flushes every buffered non-empty page into `sink` (completion path) and
  /// drops the rest.
  void DrainInto(core::PageSink* sink);

 private:
  std::vector<storage::PagePtr> open_;  // bounded by the distributor parts
  bool ok_ = true;
};

/// Recycling pool for TupleBatch objects: the preprocessor acquires, the
/// distributor releases once a batch retires. Recycled batches keep their
/// vector capacities, so a warm pipeline performs zero heap allocations per
/// batch; the hit/miss counters make that steady state observable
/// (CjoinStats::batch_pool_{hits,misses}).
class BatchPool {
 public:
  /// At most `max_cached` idle batches are retained.
  explicit BatchPool(size_t max_cached) : max_cached_(max_cached) {}
  SDW_DISALLOW_COPY(BatchPool);

  /// Pops a recycled batch, or allocates a fresh one (a pool miss).
  BatchPtr Acquire();

  /// Returns a retired batch to the pool (drops it when the pool is full or
  /// someone else still holds a reference).
  void Release(BatchPtr batch);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  const size_t max_cached_;
  Mutex mu_{lock_rank::Rank::kLeaf};  // terminal: never acquires another lock
  std::vector<BatchPtr> free_ GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace sdw::cjoin

#endif  // SDW_CJOIN_TUPLE_BATCH_H_
